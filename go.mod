module leakbound

go 1.22
