// Quickstart: the smallest end-to-end use of leakbound.
//
// It simulates one benchmark on the paper's Alpha-like machine, extracts
// the cache access intervals, and asks: with perfect knowledge of the
// future, how much of the instruction cache's leakage power could be
// eliminated?
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"leakbound/internal/experiments"
	"leakbound/internal/leakage"
	"leakbound/internal/power"
)

func main() {
	// A Suite simulates benchmarks and caches their interval distributions.
	// Scale 0.25 keeps this example under a second.
	suite, err := experiments.New(experiments.WithScale(0.25))
	if err != nil {
		log.Fatal(err)
	}
	data, err := suite.Data("gzip")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated gzip: %d instructions in %d cycles (IPC %.2f)\n",
		data.Result.Instructions, data.Result.Cycles, data.Result.IPC())

	// The 70nm technology node, calibrated to the paper's Table 1.
	tech := power.Default()
	a, b, err := tech.InflectionPoints()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("inflection points at %s: active-drowsy %.0f cycles, drowsy-sleep %.0f cycles\n",
		tech.Name, a, b)

	// Evaluate the oracle hybrid policy (Theorem 1's assignment) against
	// an always-active baseline.
	ev, err := leakage.Evaluate(tech, data.ICache, leakage.OPTHybrid{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instruction cache leakage removed by the oracle: %s\n", ev)
	fmt.Printf("(energy %.3g vs baseline %.3g, model units)\n", ev.Energy, ev.Baseline)
}
