// Loop intervals: the paper's Figure 2 example, executed.
//
// The paper motivates interval analysis with a two-level loop from a
// human-resource application: the interval between consecutive executions
// of the `add: total += sum` instruction depends on the inner loop's range
// |high(i) - low(i)|. Small ranges keep the add line active; medium ranges
// make drowsy optimal; large ranges make sleep optimal.
//
// This example builds exactly that loop as a synthetic workload, runs it
// through the timing simulator for several inner-loop ranges, extracts the
// add line's access intervals, and shows which operating mode the
// inflection points assign.
//
//	go run ./examples/loop_intervals
package main

import (
	"fmt"
	"log"
	"os"

	"leakbound/internal/interval"
	"leakbound/internal/leakage"
	"leakbound/internal/power"
	"leakbound/internal/report"
	"leakbound/internal/sim/cache"
	"leakbound/internal/sim/cpu"
	"leakbound/internal/sim/trace"
	"leakbound/internal/workload"
)

// figure2Loop is the paper's example program:
//
//	for (total = 0, i = 0; i < 12; i++) {
//	    for (sum = 0, j = low(i); j < high(i); j++)
//	        sum += a[j];
//	    sum *= i;
//	    add: total += sum;
//	}
type figure2Loop struct {
	innerRange int // |high(i) - low(i)|
}

func (f *figure2Loop) Name() string        { return fmt.Sprintf("figure2(range=%d)", f.innerRange) }
func (f *figure2Loop) Description() string { return "the paper's two-level loop example" }

// Code layout: the inner loop body lives in its own cache lines; the
// `add` instruction sits on a separate line so its intervals are clean.
const (
	innerPC = 0x400000 // inner loop body: sum += a[j]
	addPC   = 0x400100 // the add: total += sum line (line 0x10004)
	arrayA  = 0x10000000
)

func (f *figure2Loop) Emit(yield func(workload.Instr) bool) {
	emit := func(in workload.Instr) bool { return yield(in) }
	for i := 0; i < 12; i++ {
		// Inner loop: load a[j], add — 4 instructions per iteration.
		for j := 0; j < f.innerRange; j++ {
			if !emit(workload.Instr{PC: innerPC, Kind: workload.Load, Addr: arrayA + uint64(j)*4}) {
				return
			}
			for k := 1; k < 4; k++ {
				if !emit(workload.Instr{PC: innerPC + uint64(k)*4, Kind: workload.Op}) {
					return
				}
			}
		}
		// sum *= i; add: total += sum (the instrumented line).
		for k := 0; k < 4; k++ {
			if !emit(workload.Instr{PC: addPC + uint64(k)*4, Kind: workload.Op}) {
				return
			}
		}
	}
}

func main() {
	tech := power.Default()
	a, b, err := tech.InflectionPoints()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("inflection points at %s: a=%.0f, b=%.0f cycles\n\n", tech.Name, a, b)

	t := report.NewTable("The add line's access intervals vs the inner loop range (Figure 2)",
		"inner range", "median interval (cycles)", "optimal mode")
	for _, rng := range []int{2, 40, 400, 4000} {
		med, err := addLineInterval(rng)
		if err != nil {
			log.Fatal(err)
		}
		mode, err := leakage.OptimalMode(tech, med)
		if err != nil {
			log.Fatal(err)
		}
		t.MustAddRow(fmt.Sprintf("%d", rng), fmt.Sprintf("%.0f", med), mode.String())
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nExactly the paper's point: the same static instruction wants a different")
	fmt.Println("power mode depending on a loop bound the hardware cannot see — which is")
	fmt.Println("why an oracle (or a prefetcher approximating one) is needed to pick it.")
}

// addLineInterval simulates the loop and returns the median interior
// interval of the cache frame holding the add instruction.
func addLineInterval(innerRange int) (float64, error) {
	w := &figure2Loop{innerRange: innerRange}
	hier, err := cache.NewHierarchy(cache.AlphaLike())
	if err != nil {
		return 0, err
	}
	// Find the frame the add line will occupy by probing after a warmup
	// run is wasteful; instead collect intervals for all frames and read
	// the add line's set.
	col, err := interval.NewCollector(trace.L1I, uint32(hier.L1I().Config().NumLines()), nil)
	if err != nil {
		return 0, err
	}
	addLine := uint64(addPC) >> 6
	var addFrame uint32
	seen := false
	var sinkErr error
	res, err := cpu.Run(w, hier, cpu.DefaultConfig(), func(e trace.Event) {
		if sinkErr != nil || e.Cache != trace.L1I {
			return
		}
		if e.LineAddr == addLine {
			addFrame = e.Frame
			seen = true
		}
		sinkErr = col.Add(e)
	})
	if err != nil {
		return 0, err
	}
	if sinkErr != nil {
		return 0, sinkErr
	}
	if !seen {
		return 0, fmt.Errorf("add line never fetched")
	}
	dist, err := col.Finish(res.Cycles)
	if err != nil {
		return 0, err
	}
	_ = addFrame
	// The add line's interior intervals dominate its frame; take the
	// median interior interval length near the add line's reuse period.
	var lengths []float64
	dist.Each(func(l uint64, f interval.Flags, c uint64) bool {
		if f.Interior() {
			for i := uint64(0); i < c; i++ {
				lengths = append(lengths, float64(l))
			}
		}
		return true
	})
	if len(lengths) == 0 {
		return 0, fmt.Errorf("no interior intervals")
	}
	// The outer loop runs 12 times; the add line closes 11 interior
	// intervals, which are the longest in this tiny program. Take the
	// median of the top 11.
	top := topK(lengths, 11)
	return median(top), nil
}

func topK(xs []float64, k int) []float64 {
	out := make([]float64, 0, k)
	tmp := append([]float64(nil), xs...)
	for i := 0; i < k && len(tmp) > 0; i++ {
		best := 0
		for j := range tmp {
			if tmp[j] > tmp[best] {
				best = j
			}
		}
		out = append(out, tmp[best])
		tmp = append(tmp[:best], tmp[best+1:]...)
	}
	return out
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	tmp := append([]float64(nil), xs...)
	for i := range tmp {
		for j := i + 1; j < len(tmp); j++ {
			if tmp[j] < tmp[i] {
				tmp[i], tmp[j] = tmp[j], tmp[i]
			}
		}
	}
	return tmp[len(tmp)/2]
}
