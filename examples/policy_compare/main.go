// Policy comparison: the Figure 8 experiment on a single benchmark.
//
// It runs one pointer-chasing workload (ammp) and one streaming workload
// (applu), then evaluates all six management schemes on both caches — the
// contrast shows why sleep mode matters more for the data cache and why
// prefetch-guided management struggles on pointer chasing.
//
//	go run ./examples/policy_compare
package main

import (
	"fmt"
	"log"
	"os"

	"leakbound/internal/experiments"
	"leakbound/internal/leakage"
	"leakbound/internal/power"
	"leakbound/internal/report"
)

func main() {
	suite, err := experiments.New(experiments.WithScale(0.25))
	if err != nil {
		log.Fatal(err)
	}
	tech := power.Default()

	for _, bench := range []string{"ammp", "applu"} {
		data, err := suite.Data(bench)
		if err != nil {
			log.Fatal(err)
		}
		t := report.NewTable(
			fmt.Sprintf("%s at %s (%d cycles)", bench, tech.Name, data.Result.Cycles),
			"policy", "I-cache", "D-cache")
		for _, p := range experiments.Figure8Policies() {
			iEv, err := leakage.Evaluate(tech, data.ICache, p)
			if err != nil {
				log.Fatal(err)
			}
			dEv, err := leakage.Evaluate(tech, data.DCache, p)
			if err != nil {
				log.Fatal(err)
			}
			t.MustAddRow(p.Name(), report.Pct(iEv.Savings), report.Pct(dEv.Savings))
		}
		if err := t.Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}

	fmt.Println("Note how Prefetch-A/B trail the oracle much more on ammp (neighbor-list")
	fmt.Println("pointer chasing defeats both prefetchers) than on applu (constant-stride")
	fmt.Println("sweeps are exactly what the stride predictor catches).")
}
