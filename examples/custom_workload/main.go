// Custom workload: apply the limit study to your own application's access
// pattern, declared in a JSON workload spec instead of Go code.
//
// The spec format (internal/workload/spec) composes the same kernels the
// SPEC2000 stand-ins use — sequential streams, blocked strided sweeps,
// pointer chases, hot scalars — into a synthetic model of an arbitrary
// program. examples/specs/kvstore.json models a simple in-memory
// key-value store: a hot request loop probing a hash index, chasing into
// a large value heap, and periodically compacting a log. This program
// compiles the spec, simulates it on the paper's machine, and asks how
// much of the cache's leakage an oracle could remove.
//
// The same spec file runs unmodified through the other surfaces:
//
//	go run ./cmd/experiments -specs examples/specs -only kvstore
//	go run ./cmd/tracegen -spec examples/specs/kvstore.json -record kv.trc
//	curl -d '{"spec": <kvstore.json>}' localhost:8091/api/v1/eval
//
// Run from the repository root:
//
//	go run ./examples/custom_workload
package main

import (
	"fmt"
	"log"
	"os"

	"leakbound/internal/interval"
	"leakbound/internal/leakage"
	"leakbound/internal/power"
	"leakbound/internal/report"
	"leakbound/internal/sim/cache"
	"leakbound/internal/sim/cpu"
	"leakbound/internal/sim/trace"
	"leakbound/internal/workload/spec"
)

func main() {
	// Load and compile the declarative description of the application.
	src, err := spec.LoadFile("examples/specs/kvstore.json")
	if err != nil {
		log.Fatal(err)
	}
	wl, err := src.Workload(1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s (spec digest %s)\n\n", src.ScenarioName(), src.ScenarioDigest()[:12])

	// Simulate on the paper's machine and collect D-cache intervals.
	hier, err := cache.NewHierarchy(cache.AlphaLike())
	if err != nil {
		log.Fatal(err)
	}
	col, err := interval.NewCollector(trace.L1D, uint32(hier.L1D().Config().NumLines()), nil)
	if err != nil {
		log.Fatal(err)
	}
	var sinkErr error
	res, err := cpu.Run(wl, hier, cpu.DefaultConfig(), func(e trace.Event) {
		if sinkErr == nil && e.Cache == trace.L1D {
			sinkErr = col.Add(e)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	if sinkErr != nil {
		log.Fatal(sinkErr)
	}
	dist, err := col.Finish(res.Cycles)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("kvstore: %d instructions, %d cycles (IPC %.2f), L1D miss %.2f%%\n\n",
		res.Instructions, res.Cycles, res.IPC(), 100*res.L1D.MissRate())

	// What could management policies do with this D-cache?
	tech := power.Default()
	t := report.NewTable("Leakage savings potential for the kvstore D-cache (70nm)",
		"policy", "savings")
	evs, err := leakage.EvaluateAll(tech, dist, []leakage.Policy{
		leakage.SleepDecay{Theta: 10000},
		leakage.PeriodicDrowsy{Window: 2000},
		leakage.OPTDrowsy{},
		leakage.OPTHybrid{},
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, ev := range evs {
		t.MustAddRow(ev.Policy, report.Pct(ev.Savings))
	}
	adaptive, err := leakage.EvaluateAdaptiveDecay(tech, dist)
	if err != nil {
		log.Fatal(err)
	}
	t.MustAddRow(adaptive.Policy, report.Pct(adaptive.Savings))
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Where does the oracle's residual energy go?
	bd, err := leakage.HybridBreakdown(tech, dist)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\noracle residual: %.1f%% active, %.1f%% drowsy leak, %.1f%% transitions, "+
		"%.1f%% induced misses, %.1f%% sleep leak\n",
		bd.ActiveShare*100, bd.DrowsyShare*100, bd.TransitionShare*100,
		bd.InducedMissShare*100, bd.SleepShare*100)
}
