// Custom workload: apply the limit study to your own application's access
// pattern.
//
// The workload Builder composes the same kernels the SPEC2000 stand-ins
// use — sequential streams, blocked strided sweeps, pointer chases, hot
// scalars — into a synthetic model of an arbitrary program. Here we model
// a simple in-memory key-value store: a hot request loop probing a hash
// index, chasing into a large value heap, and periodically compacting a
// log, then ask how much of its cache leakage an oracle could remove.
//
//	go run ./examples/custom_workload
package main

import (
	"fmt"
	"log"
	"os"

	"leakbound/internal/interval"
	"leakbound/internal/leakage"
	"leakbound/internal/power"
	"leakbound/internal/report"
	"leakbound/internal/sim/cache"
	"leakbound/internal/sim/cpu"
	"leakbound/internal/sim/trace"
	"leakbound/internal/workload"
)

func main() {
	// Describe the application.
	b := workload.NewBuilder("kvstore")
	locals := b.Hot(12)                  // request-handling locals
	index := b.Sequential(64<<10, 128)   // hash index probes (skips lines)
	heap := b.Chase(16384, 64, 0xBEEF)   // 1MB value heap, pointer-chased
	logBuf := b.Sequential(4<<20, 64)    // append-only log, streamed
	compactIn := b.Sequential(2<<20, 64) // compaction reads
	wl, err := b.
		// Steady-state serving: small hot code, index + heap traffic.
		Phase(workload.PhaseSpec{
			BodyInstrs: 2400, Iterations: 900,
			Loads:   []workload.Pattern{locals, index, heap},
			Stores:  []workload.Pattern{locals, logBuf},
			Weights: []int{20, 3, 2, 8, 1},
		}).
		// Periodic compaction: different code, streaming reads/writes.
		Phase(workload.PhaseSpec{
			BodyInstrs: 3200, Iterations: 120,
			Loads:   []workload.Pattern{compactIn, locals},
			Stores:  []workload.Pattern{logBuf},
			Weights: []int{3, 8, 2},
		}).
		Build()
	if err != nil {
		log.Fatal(err)
	}

	// Simulate on the paper's machine and collect D-cache intervals.
	hier, err := cache.NewHierarchy(cache.AlphaLike())
	if err != nil {
		log.Fatal(err)
	}
	col, err := interval.NewCollector(trace.L1D, uint32(hier.L1D().Config().NumLines()), nil)
	if err != nil {
		log.Fatal(err)
	}
	var sinkErr error
	res, err := cpu.Run(wl, hier, cpu.DefaultConfig(), func(e trace.Event) {
		if sinkErr == nil && e.Cache == trace.L1D {
			sinkErr = col.Add(e)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	if sinkErr != nil {
		log.Fatal(sinkErr)
	}
	dist, err := col.Finish(res.Cycles)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("kvstore: %d instructions, %d cycles (IPC %.2f), L1D miss %.2f%%\n\n",
		res.Instructions, res.Cycles, res.IPC(), 100*res.L1D.MissRate())

	// What could management policies do with this D-cache?
	tech := power.Default()
	t := report.NewTable("Leakage savings potential for the kvstore D-cache (70nm)",
		"policy", "savings")
	evs, err := leakage.EvaluateAll(tech, dist, []leakage.Policy{
		leakage.SleepDecay{Theta: 10000},
		leakage.PeriodicDrowsy{Window: 2000},
		leakage.OPTDrowsy{},
		leakage.OPTHybrid{},
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, ev := range evs {
		t.MustAddRow(ev.Policy, report.Pct(ev.Savings))
	}
	adaptive, err := leakage.EvaluateAdaptiveDecay(tech, dist)
	if err != nil {
		log.Fatal(err)
	}
	t.MustAddRow(adaptive.Policy, report.Pct(adaptive.Savings))
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Where does the oracle's residual energy go?
	bd, err := leakage.HybridBreakdown(tech, dist)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\noracle residual: %.1f%% active, %.1f%% drowsy leak, %.1f%% transitions, "+
		"%.1f%% induced misses, %.1f%% sleep leak\n",
		bd.ActiveShare*100, bd.DrowsyShare*100, bd.TransitionShare*100,
		bd.InducedMissShare*100, bd.SleepShare*100)
}
