// Prefetch-guided low power (Section 5 of the paper): approximate the
// oracle's perfect future knowledge with real predictors.
//
// This example builds the prefetchability analysis directly — classifier,
// collector, Figure 9 breakdown — then shows how far Prefetch-B gets toward
// the OPT-Hybrid bound on the data cache, where both next-line and stride
// predictors are active.
//
//	go run ./examples/prefetch_guided
package main

import (
	"fmt"
	"log"

	"leakbound/internal/interval"
	"leakbound/internal/leakage"
	"leakbound/internal/power"
	"leakbound/internal/prefetch"
	"leakbound/internal/sim/cache"
	"leakbound/internal/sim/cpu"
	"leakbound/internal/sim/trace"
	"leakbound/internal/workload"
)

func main() {
	// Wire the pipeline by hand (instead of experiments.Suite) to show the
	// pieces: workload -> timing core -> classifier+collector.
	w, err := workload.New("applu", 0.3)
	if err != nil {
		log.Fatal(err)
	}
	hier, err := cache.NewHierarchy(cache.AlphaLike())
	if err != nil {
		log.Fatal(err)
	}
	classifier, err := prefetch.NewClassifier(prefetch.ForDCache())
	if err != nil {
		log.Fatal(err)
	}
	collector, err := interval.NewCollector(trace.L1D,
		uint32(hier.L1D().Config().NumLines()), classifier)
	if err != nil {
		log.Fatal(err)
	}

	var collectErr error
	res, err := cpu.Run(w, hier, cpu.DefaultConfig(), func(e trace.Event) {
		if collectErr == nil && e.Cache == trace.L1D {
			collectErr = collector.Add(e)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	if collectErr != nil {
		log.Fatal(collectErr)
	}
	dist, err := collector.Finish(res.Cycles)
	if err != nil {
		log.Fatal(err)
	}

	tech := power.Default()
	a, b, err := tech.InflectionPoints()
	if err != nil {
		log.Fatal(err)
	}

	// Figure 9 for this one benchmark: which intervals could a prefetcher
	// have predicted?
	p := prefetch.Analyze(dist, a, b)
	nl, stride := classifier.Stats()
	fmt.Printf("applu D-cache: %d interior intervals\n", p.Total())
	fmt.Printf("  next-line prefetchable: %.1f%% (%d closings)\n", 100*p.NLShare(), nl)
	fmt.Printf("  stride prefetchable:    %.1f%% (%d closings)\n", 100*p.StrideShare(), stride)

	// How much of the oracle bound does prefetch-guided management recover?
	for _, pol := range []leakage.Policy{
		leakage.OPTHybrid{},
		leakage.PrefetchB(),
		leakage.PrefetchA(),
		leakage.SleepDecay{Theta: 10000},
	} {
		ev, err := leakage.Evaluate(tech, dist, pol)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-14s %.1f%% leakage savings\n", pol.Name(), ev.Savings*100)
	}
	fmt.Println("\nThe counter-intuitive result of Section 5: prefetching — a latency")
	fmt.Println("technique — lowers power, because hiding the wakeup lets lines sleep")
	fmt.Println("aggressively without stalling the pipeline.")
}
