// Technology sweep: the generalized model of Section 3.3 applied beyond
// the paper's four process nodes.
//
// The model takes arbitrary circuit parameters — per-mode leakage powers,
// transition energies, induced-miss cost — and produces the inflection
// points and the optimal-policy savings. Here we reproduce the built-in
// nodes and then extrapolate a hypothetical "45nm" node to show how the
// study keeps working as technology changes, which is exactly the purpose
// the paper states for the model.
//
//	go run ./examples/technology_sweep
package main

import (
	"fmt"
	"log"
	"math"
	"os"

	"leakbound/internal/experiments"
	"leakbound/internal/leakage"
	"leakbound/internal/power"
	"leakbound/internal/report"
)

func main() {
	suite, err := experiments.New(experiments.WithScale(0.25))
	if err != nil {
		log.Fatal(err)
	}
	data, err := suite.Data("mesa")
	if err != nil {
		log.Fatal(err)
	}

	// A hypothetical node past the paper's horizon: leakage keeps growing,
	// refetch keeps getting cheaper. The calibration helper solves for a
	// CD that puts the inflection point at 500 cycles.
	dur := power.PaperDurations()
	pa := 1.6
	cd, err := power.CalibrateCD(pa, pa/3, pa/100, dur, 500)
	if err != nil {
		log.Fatal(err)
	}
	future := power.Technology{
		Name: "45nm (hypothetical)", FeatureNm: 45, Vdd: 0.8, Vth: 0.15,
		PActive: pa, PDrowsy: pa / 3, PSleep: pa / 100,
		CD: cd, CounterLeak: pa * 0.004, Durations: dur,
	}

	techs := append(power.Technologies(), future)
	t := report.NewTable("Optimal savings on mesa's instruction cache across technology nodes",
		"technology", "a", "b", "OPT-Drowsy", "OPT-Sleep", "OPT-Hybrid")
	for _, tech := range techs {
		a, b, err := tech.InflectionPoints()
		if err != nil {
			log.Fatal(err)
		}
		// Build the Figure 6 state machine and confirm it agrees with the
		// closed-form solver before using it.
		m := leakage.NewModel(tech)
		ma, mb, err := m.InflectionPoints()
		if err != nil {
			log.Fatal(err)
		}
		if math.Abs(ma-a) > 1e-6 || math.Abs(mb-b) > 1e-3 {
			log.Fatalf("%s: model (%g, %g) disagrees with solver (%g, %g)", tech.Name, ma, mb, a, b)
		}

		row := []string{tech.Name, fmt.Sprintf("%.0f", a), fmt.Sprintf("%.0f", b)}
		for _, pol := range []leakage.Policy{
			leakage.OPTDrowsy{},
			leakage.OPTSleep{Theta: uint64(math.Round(b))},
			leakage.OPTHybrid{},
		} {
			ev, err := leakage.Evaluate(tech, data.ICache, pol)
			if err != nil {
				log.Fatal(err)
			}
			row = append(row, report.Pct(ev.Savings))
		}
		t.MustAddRow(row...)
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nAs feature size shrinks, the drowsy-sleep inflection point falls and the")
	fmt.Println("achievable savings rise — the trend of the paper's Table 2, extended one")
	fmt.Println("node into the future.")
}
