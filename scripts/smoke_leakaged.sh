#!/bin/sh
# Smoke test for cmd/leakaged: build the daemon, boot it on an ephemeral
# port, probe /readyz and one figure endpoint, then SIGTERM it and require
# a clean (exit 0) graceful drain. Run via `make smoke`; CI runs it on
# every push.
set -eu

GO=${GO:-go}
workdir=$(mktemp -d)
bin="$workdir/leakaged"
log="$workdir/leakaged.log"
trap 'kill "$pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT

"$GO" build -o "$bin" ./cmd/leakaged

"$bin" -addr 127.0.0.1:0 -scale 0.05 -quiet >"$log" 2>&1 &
pid=$!

# The daemon announces its bound address once the listener is up.
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/^leakaged: listening on //p' "$log")
    [ -n "$addr" ] && break
    kill -0 "$pid" 2>/dev/null || { echo "leakaged died at startup:"; cat "$log"; exit 1; }
    sleep 0.1
done
[ -n "$addr" ] || { echo "leakaged never announced its address:"; cat "$log"; exit 1; }
base="http://$addr"

# Readiness, then one real figure computation.
for _ in $(seq 1 50); do
    if curl -fsS "$base/readyz" >/dev/null 2>&1; then break; fi
    sleep 0.1
done
curl -fsS "$base/readyz" | grep -q ok || { echo "/readyz not ready"; exit 1; }
curl -fsS "$base/api/v1/inflections?tech=70nm" | grep -q '"b"' || {
    echo "/api/v1/inflections gave no inflection data"; exit 1; }
curl -fsS "$base/api/v1/figures/7?cache=i" | grep -q '"hybrid"' || {
    echo "/api/v1/figures/7 gave no series data"; exit 1; }

# Graceful drain: SIGTERM must exit 0.
kill -TERM "$pid"
status=0
wait "$pid" || status=$?
if [ "$status" -ne 0 ]; then
    echo "leakaged exited $status on SIGTERM (want 0):"; cat "$log"; exit 1
fi
echo "smoke: leakaged served and drained cleanly"
