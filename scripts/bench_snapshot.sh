#!/bin/sh
# bench_snapshot.sh — run the core benchmark set and freeze the results
# into a BENCH_<date>[_<label>].json snapshot at the repo root, via the
# cmd/benchsnap normalizer. Usage:
#
#   scripts/bench_snapshot.sh [label]
#
# Environment:
#   GO          go binary (default: go)
#   BENCH       -bench regexp (default: the end-to-end + pipeline set)
#   BENCHTIME   -benchtime (default: 100ms — the heavy suite benches
#               exceed it and still run once per -count, while the
#               microsecond-scale kernel benches get enough iterations
#               to be stable; raise for publication numbers)
#   COUNT       -count (default: 3; repeated runs fold best-of-N)
#   OUT         output directory (default: repo root)
#   ALLOW_MISSING=1  skip the coverage check against the newest committed
#               snapshot (by default the script fails, writing nothing,
#               when a benchmark recorded in that snapshot is absent from
#               this run — e.g. a deliberately narrowed BENCH)
#
# The benchmark selection is intentionally the *end-to-end* set: the
# full-suite simulation (BenchmarkSuiteAll) that the ≥5x streaming claim
# is made against, plus the per-benchmark pipeline and grid benches.
# Micro-benches churn too much to gate on.
set -eu

cd "$(dirname "$0")/.."

GO="${GO:-go}"
BENCH="${BENCH:-^(BenchmarkSuiteAll|BenchmarkPipelineSimulateGzip|BenchmarkPipelineSimulateGzipSharded|BenchmarkGridFigure8Workers1|BenchmarkSweepDense256Reference|BenchmarkSweepDense256Aggregates|BenchmarkParetoPopulation|BenchmarkSpecCompile|BenchmarkReplayPass)\$}"
BENCHTIME="${BENCHTIME:-100ms}"
COUNT="${COUNT:-3}"
OUT="${OUT:-.}"
LABEL="${1:-}"

DATE=$(date +%Y-%m-%d)
COMMIT=$(git rev-parse --short HEAD 2>/dev/null || echo "")

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

echo "running: $GO test -run '^\$' -bench '$BENCH' -benchmem -benchtime $BENCHTIME -count $COUNT ." >&2
$GO test -run '^$' -bench "$BENCH" -benchmem -benchtime "$BENCHTIME" -count "$COUNT" . | tee "$tmp" >&2

set -- -out "$OUT" -date "$DATE" -commit "$COMMIT"
if [ -n "$LABEL" ]; then
    set -- "$@" -label "$LABEL"
fi
if [ "${ALLOW_MISSING:-}" != "1" ]; then
    set -- "$@" -require-coverage
fi
$GO run ./cmd/benchsnap "$@" <"$tmp"
