package leakbound_test

// One benchmark per table and figure of the paper's evaluation, plus
// ablation benches for the design choices DESIGN.md calls out. Each bench
// regenerates its experiment end-to-end (policy evaluation over cached
// interval distributions) and reports the headline number the paper quotes
// as a custom metric, so `go test -bench=. -benchmem` doubles as a results
// summary.

import (
	"bytes"
	"context"
	"math"
	"sync"
	"testing"

	"leakbound/internal/experiments"
	"leakbound/internal/leakage"
	"leakbound/internal/power"
	"leakbound/internal/workload"
	"leakbound/internal/workload/spec"
)

// benchScale keeps full-suite simulation around a few seconds; EXPERIMENTS.md
// records the scale-1.0 numbers.
const benchScale = 0.25

var (
	suiteOnce sync.Once
	suite     *experiments.Suite

	// benchSink defeats dead-code elimination in the evaluation benches.
	benchSink float64
)

// sharedSuite simulates all six benchmarks once per `go test` process,
// through the context-aware API so the cancellation-checking path is what
// every downstream bench measures.
func sharedSuite(b *testing.B) *experiments.Suite {
	b.Helper()
	suiteOnce.Do(func() {
		suite = experiments.MustNew(experiments.WithScale(benchScale))
		if _, err := suite.AllContext(context.Background()); err != nil {
			panic(err)
		}
	})
	return suite
}

// BenchmarkSuiteAll is the repo's headline end-to-end number: simulate all
// six benchmarks from scratch (generator -> CPU sim -> interval collection)
// at benchScale. The committed BENCH_*.json snapshots track this benchmark;
// the streaming-pipeline speedup claim is made against it.
func BenchmarkSuiteAll(b *testing.B) {
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		s := experiments.MustNew(experiments.WithScale(benchScale))
		if _, err := s.AllContext(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure1_ITRSProjection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.Figure1() == nil {
			b.Fatal("nil table")
		}
	}
}

func BenchmarkTable1_InflectionPoints(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1(); err != nil {
			b.Fatal(err)
		}
		_, bb, err := power.Default().InflectionPoints()
		if err != nil {
			b.Fatal(err)
		}
		last = bb
	}
	b.ReportMetric(last, "drowsy-sleep-70nm-cycles")
}

func BenchmarkTable2_TechnologyScaling(b *testing.B) {
	s := sharedSuite(b)
	b.ResetTimer()
	var hybrid70 float64
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table2(s); err != nil {
			b.Fatal(err)
		}
		v, err := experiments.Table2Value(s, "OPT-Hybrid", true, power.Default())
		if err != nil {
			b.Fatal(err)
		}
		hybrid70 = v
	}
	b.ReportMetric(hybrid70*100, "icache-hybrid-70nm-%")
}

func BenchmarkFigure7_HybridVsSleepSweep(b *testing.B) {
	s := sharedSuite(b)
	b.ResetTimer()
	var gapAt10K float64
	for i := 0; i < b.N; i++ {
		sleep, hybrid, err := experiments.Figure7(s, true)
		if err != nil {
			b.Fatal(err)
		}
		n := len(sleep.Y) - 1
		gapAt10K = hybrid.Y[n] - sleep.Y[n]
	}
	b.ReportMetric(gapAt10K*100, "icache-gap-at-10K-%")
}

func BenchmarkFigure8_SchemeComparison(b *testing.B) {
	s := sharedSuite(b)
	b.ResetTimer()
	var hybridI float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure8(s, true)
		if err != nil {
			b.Fatal(err)
		}
		avg := rows[len(rows)-1]
		for j, p := range experiments.Figure8Policies() {
			if p.Name() == "OPT-Hybrid" {
				hybridI = avg.Savings[j]
			}
		}
		if _, err := experiments.Figure8(s, false); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(hybridI*100, "icache-OPT-Hybrid-%")
}

func BenchmarkFigure9_Prefetchability(b *testing.B) {
	s := sharedSuite(b)
	b.ResetTimer()
	var dTotal float64
	for i := 0; i < b.N; i++ {
		iP, err := experiments.Figure9(s, true)
		if err != nil {
			b.Fatal(err)
		}
		dP, err := experiments.Figure9(s, false)
		if err != nil {
			b.Fatal(err)
		}
		_ = iP
		dTotal = dP.PrefetchableShare()
	}
	b.ReportMetric(dTotal*100, "dcache-prefetchable-%")
}

func BenchmarkFigure10_EnergyEnvelope(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure10(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3_PrefetchRules(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.Table3() == nil {
			b.Fatal("nil table")
		}
	}
}

// Pipeline benches: the end-to-end cost of producing one benchmark's
// interval distributions (simulation + classification + collection).

func BenchmarkPipelineSimulateGzip(b *testing.B) {
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		s := experiments.MustNew(experiments.WithScale(0.05))
		if _, err := s.DataContext(ctx, "gzip"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelineSimulateGzipSharded is the same end-to-end pipeline
// with interval collection sharded over 4 workers; compare against
// BenchmarkPipelineSimulateGzip for the intra-benchmark speedup (on a
// multi-core host; on one core the inline path above wins).
func BenchmarkPipelineSimulateGzipSharded(b *testing.B) {
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		s := experiments.MustNew(experiments.WithScale(0.05), experiments.WithWorkers(4))
		if _, err := s.DataContext(ctx, "gzip"); err != nil {
			b.Fatal(err)
		}
	}
}

// Grid benches: the Figure 8 evaluation cell set (6 benchmarks x 6
// schemes x both caches) through EvaluateGrid at different worker counts.
// Cells carry their own distributions, so the grid suites need no
// simulation of their own.

func benchGrid(b *testing.B, workers int) {
	b.Helper()
	s := sharedSuite(b)
	all, err := s.All()
	if err != nil {
		b.Fatal(err)
	}
	tech := power.Default()
	var cells []experiments.Cell
	for _, bd := range all {
		for _, p := range experiments.Figure8Policies() {
			cells = append(cells,
				experiments.Cell{Tech: tech, Policy: p, Dist: bd.ICache},
				experiments.Cell{Tech: tech, Policy: p, Dist: bd.DCache})
		}
	}
	gs := experiments.MustNew(experiments.WithWorkers(workers))
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gs.EvaluateGrid(ctx, cells); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGridFigure8Workers1(b *testing.B) { benchGrid(b, 1) }
func BenchmarkGridFigure8Workers4(b *testing.B) { benchGrid(b, 4) }

// Ablation benches (design choices called out in DESIGN.md):

// BenchmarkAblationHybridVsSleepOnly quantifies what the drowsy mode adds on
// top of an optimally-managed sleep-only cache at the inflection point.
func BenchmarkAblationHybridVsSleepOnly(b *testing.B) {
	s := sharedSuite(b)
	tech := power.Default()
	data, err := s.Data("gcc")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var delta float64
	for i := 0; i < b.N; i++ {
		hy, err := leakage.Evaluate(tech, data.ICache, leakage.OPTHybrid{})
		if err != nil {
			b.Fatal(err)
		}
		sl, err := leakage.Evaluate(tech, data.ICache, leakage.OPTSleep{Theta: 1057})
		if err != nil {
			b.Fatal(err)
		}
		delta = hy.Savings - sl.Savings
	}
	b.ReportMetric(delta*100, "drowsy-adds-%")
}

// BenchmarkAblationDecayTheta sweeps the decay interval, the knob the
// cache-decay literature tunes, showing the cost of not knowing the future.
func BenchmarkAblationDecayTheta(b *testing.B) {
	s := sharedSuite(b)
	tech := power.Default()
	data, err := s.Data("vortex")
	if err != nil {
		b.Fatal(err)
	}
	thetas := []uint64{1057, 5000, 10000, 50000, 100000}
	b.ResetTimer()
	var best float64
	for i := 0; i < b.N; i++ {
		best = 0
		for _, th := range thetas {
			ev, err := leakage.Evaluate(tech, data.DCache, leakage.SleepDecay{Theta: th})
			if err != nil {
				b.Fatal(err)
			}
			if ev.Savings > best {
				best = ev.Savings
			}
		}
	}
	b.ReportMetric(best*100, "best-decay-%")
}

// BenchmarkAblationCounterOverhead isolates the decay counter leakage the
// paper's footnote 2 accounts for.
func BenchmarkAblationCounterOverhead(b *testing.B) {
	s := sharedSuite(b)
	data, err := s.Data("mesa")
	if err != nil {
		b.Fatal(err)
	}
	with := power.Default()
	without := with
	without.CounterLeak = 0
	b.ResetTimer()
	var cost float64
	for i := 0; i < b.N; i++ {
		evWith, err := leakage.Evaluate(with, data.DCache, leakage.SleepDecay{Theta: 10000})
		if err != nil {
			b.Fatal(err)
		}
		evWithout, err := leakage.Evaluate(without, data.DCache, leakage.SleepDecay{Theta: 10000})
		if err != nil {
			b.Fatal(err)
		}
		cost = evWithout.Savings - evWith.Savings
	}
	b.ReportMetric(cost*100, "counter-cost-%")
}

// BenchmarkAblationWorkloadGeneration measures raw generator throughput —
// the substrate must not be the experiment bottleneck.
func BenchmarkAblationWorkloadGeneration(b *testing.B) {
	w := workload.MustNew("gcc", 1)
	b.ResetTimer()
	n := 0
	w.Emit(func(in workload.Instr) bool {
		n++
		return n < b.N
	})
}

// Extension benches (beyond the paper's evaluation):

// BenchmarkExtensionL2Study evaluates the oracle on the 2MB L2, the
// natural next target the paper's conclusion implies.
func BenchmarkExtensionL2Study(b *testing.B) {
	s := sharedSuite(b)
	b.ResetTimer()
	var avg float64
	for i := 0; i < b.N; i++ {
		data, err := s.Data("gcc")
		if err != nil {
			b.Fatal(err)
		}
		ev, err := leakage.Evaluate(power.Default(), data.L2Cache, leakage.OPTHybrid{})
		if err != nil {
			b.Fatal(err)
		}
		avg = ev.Savings
	}
	b.ReportMetric(avg*100, "gcc-L2-hybrid-%")
}

// BenchmarkExtensionAdaptiveDecay measures the feedback-tuned decay
// baseline (Velusamy et al.) against the oracle gap.
func BenchmarkExtensionAdaptiveDecay(b *testing.B) {
	s := sharedSuite(b)
	data, err := s.Data("vortex")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var savings float64
	for i := 0; i < b.N; i++ {
		ev, err := leakage.EvaluateAdaptiveDecay(power.Default(), data.DCache)
		if err != nil {
			b.Fatal(err)
		}
		savings = ev.Savings
	}
	b.ReportMetric(savings*100, "vortex-adaptive-decay-%")
}

// BenchmarkExtensionWriteback quantifies the dirty-line write-back cost
// the paper leaves unmodelled.
func BenchmarkExtensionWriteback(b *testing.B) {
	s := sharedSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.WritebackAblation(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtensionTemperature sweeps junction temperature through the
// analytical leakage model.
func BenchmarkExtensionTemperature(b *testing.B) {
	s := sharedSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.TemperatureSweepContext(context.Background(), s, "gzip"); err != nil {
			b.Fatal(err)
		}
	}
}

// denseSweepThetas is the 256-point geometric theta ladder the dense-sweep
// benches share — the serving layer's default span at its default density.
func denseSweepThetas() []uint64 {
	const from, to, points = 1057, 103084, 256
	ratio := math.Pow(float64(to)/float64(from), 1/float64(points-1))
	out := make([]uint64, 0, points)
	last := uint64(0)
	for i := 0; i < points; i++ {
		v := uint64(math.Round(float64(from) * math.Pow(ratio, float64(i))))
		if v <= last {
			continue
		}
		out = append(out, v)
		last = v
	}
	return out
}

// BenchmarkSweepDense256Reference answers a 256-point opt-sleep theta sweep
// over every benchmark's I-cache through the reference per-bucket walk —
// the pre-aggregate cost of one dense sweep.
func BenchmarkSweepDense256Reference(b *testing.B) {
	s := sharedSuite(b)
	all, err := s.AllContext(context.Background())
	if err != nil {
		b.Fatal(err)
	}
	thetas := denseSweepThetas()
	tech := power.Default()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sink float64
		for _, theta := range thetas {
			pol := leakage.OPTSleep{Theta: theta}
			for _, bd := range all {
				ev, err := leakage.Evaluate(tech, bd.ICache, pol)
				if err != nil {
					b.Fatal(err)
				}
				sink += ev.Savings
			}
		}
		benchSink = sink
	}
}

// BenchmarkSweepDense256Aggregates answers the identical sweep through the
// aggregate kernel (leakage.EvaluateMany over the suite's cached prefix
// summaries) — the fast path behind SweepParamContext and the serving
// layer's 256-point default.
func BenchmarkSweepDense256Aggregates(b *testing.B) {
	s := sharedSuite(b)
	all, err := s.AllContext(context.Background())
	if err != nil {
		b.Fatal(err)
	}
	thetas := denseSweepThetas()
	tech := power.Default()
	pols := make([]leakage.Policy, len(thetas))
	for i, theta := range thetas {
		pols[i] = leakage.OPTSleep{Theta: theta}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sink float64
		for _, bd := range all {
			evs, err := leakage.EvaluateMany(tech, bd.IAgg, pols)
			if err != nil {
				b.Fatal(err)
			}
			for _, ev := range evs {
				sink += ev.Savings
			}
		}
		benchSink = sink
	}
}

// benchSpecJSON is a representative two-phase workload spec (kernel mix,
// schedule shaping, cold code) for the spec-subsystem benches below.
var benchSpecJSON = []byte(`{
  "version": 1, "name": "bench-spec", "seed": 7,
  "phases": [
    {"name": "serve", "body_instrs": 2000, "iterations": 400, "mem_every": 4,
     "schedule": {"kind": "bursty", "steps": 4, "duty": 0.25},
     "mix": [
       {"kernel": "hot", "weight": 8, "lines": 12},
       {"kernel": "loop", "weight": 3, "bytes": 262144, "stride": 128},
       {"kernel": "chase", "weight": 2, "elems": 4096, "elem_bytes": 64}
     ]},
    {"name": "drain", "body_instrs": 2400, "iterations": 200,
     "cold_code_bytes": 8192,
     "schedule": {"kind": "drain", "steps": 4},
     "mix": [
       {"kernel": "stride", "weight": 2, "bytes": 524288, "block": 16384, "stride": 128},
       {"kernel": "loop", "weight": 1, "bytes": 131072, "store": true}
     ]}
  ]
}`)

// BenchmarkSpecCompile is the declarative front door's fixed cost: parse,
// validate, canonicalize, and lower a two-phase spec onto the workload
// Builder. This runs once per POSTed spec before any simulation, so it
// must stay microseconds, not milliseconds.
func BenchmarkSpecCompile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sp, err := spec.Parse(benchSpecJSON)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sp.Compile(1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReplayPass measures one full Emit pass over a recorded trace —
// the replay side of the record/replay scenario path. Instruction delivery
// from the decoded recording must not be slower than generating the same
// stream from the spec.
func BenchmarkReplayPass(b *testing.B) {
	sp, err := spec.Parse(benchSpecJSON)
	if err != nil {
		b.Fatal(err)
	}
	wl, err := sp.Workload(0.25)
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := spec.Record(&buf, wl); err != nil {
		b.Fatal(err)
	}
	rp, err := spec.ReadReplay(bytes.NewReader(buf.Bytes()), "bench-replay")
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(buf.Len()))
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i++ {
		rp.Emit(func(in workload.Instr) bool {
			n++
			return true
		})
	}
	b.ReportMetric(float64(rp.Len()), "instrs/pass")
	benchSink = float64(n)
}

// BenchmarkParetoPopulation populates the default Pareto frontier (both
// axes, every registered family, every benchmark) through the aggregate
// kernel.
func BenchmarkParetoPopulation(b *testing.B) {
	s := sharedSuite(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts, err := s.ParetoFrontierContext(ctx, true, power.Default(), nil)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = pts[0].NormalizedLeakage
	}
}
