// Command leakagesim runs one benchmark through the simulated Alpha-like
// machine and evaluates the leakage policies of the paper on the resulting
// cache access intervals.
//
// Usage:
//
//	leakagesim -bench gzip [-scale 0.5] [-tech 70nm] [-cache I|D|both]
//
// The standard observability flags (-metrics, -cpuprofile, -memprofile,
// -metrics-addr) are also accepted.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"leakbound/internal/experiments"
	"leakbound/internal/interval"
	"leakbound/internal/leakage"
	"leakbound/internal/power"
	"leakbound/internal/report"
	"leakbound/internal/telemetry"
	"leakbound/internal/workload"
)

func main() {
	bench := flag.String("bench", "gzip", "benchmark: "+strings.Join(workload.Names(), ", "))
	scale := flag.Float64("scale", 0.5, "workload scale (1.0 = full study length)")
	techName := flag.String("tech", "70nm", "technology node: 70nm, 100nm, 130nm, 180nm")
	cacheSide := flag.String("cache", "both", "which cache to evaluate: I, D, or both")
	showStats := flag.Bool("stats", false, "also print the interior interval length distribution")
	timeout := flag.Duration("timeout", 0, "abort the run after this duration (0 = no limit)")
	obs := telemetry.RegisterFlags(flag.CommandLine)
	flag.Parse()

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	if *timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	stop, err := obs.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "leakagesim:", err)
		os.Exit(1)
	}
	err = run(ctx, *bench, *scale, *techName, *cacheSide, *showStats)
	if stopErr := stop(); err == nil {
		err = stopErr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "leakagesim:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, bench string, scale float64, techName, cacheSide string, showStats bool) error {
	if err := workload.Validate(bench); err != nil {
		return err
	}
	tech, err := power.TechnologyByName(techName)
	if err != nil {
		return err
	}
	suite, err := experiments.New(experiments.WithScale(scale))
	if err != nil {
		return err
	}
	data, err := suite.DataContext(ctx, bench)
	if err != nil {
		return err
	}

	res := data.Result
	fmt.Printf("%s @ scale %.2f on %s:\n", bench, scale, tech.Name)
	fmt.Printf("  %d instructions, %d cycles (IPC %.2f)\n",
		res.Instructions, res.Cycles, res.IPC())
	fmt.Printf("  L1I: %d accesses, miss rate %.4f\n", res.L1I.Accesses, res.L1I.MissRate())
	fmt.Printf("  L1D: %d accesses, miss rate %.4f\n", res.L1D.Accesses, res.L1D.MissRate())
	a, b, err := tech.InflectionPoints()
	if err != nil {
		return err
	}
	fmt.Printf("  inflection points: active-drowsy %.0f, drowsy-sleep %.0f\n\n", a, b)

	sides := []struct {
		label string
		dist  *interval.Distribution
	}{}
	if cacheSide == "I" || cacheSide == "both" {
		sides = append(sides, struct {
			label string
			dist  *interval.Distribution
		}{"Instruction cache", data.ICache})
	}
	if cacheSide == "D" || cacheSide == "both" {
		sides = append(sides, struct {
			label string
			dist  *interval.Distribution
		}{"Data cache", data.DCache})
	}
	if len(sides) == 0 {
		return fmt.Errorf("unknown -cache %q (want I, D, or both)", cacheSide)
	}

	for _, side := range sides {
		t := report.NewTable(side.label, "policy", "savings")
		evals, err := leakage.EvaluateAll(tech, side.dist, experiments.Figure8Policies())
		if err != nil {
			return err
		}
		for _, ev := range evals {
			t.MustAddRow(ev.Policy, report.Pct(ev.Savings))
		}
		if err := t.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
		if showStats {
			st, err := experiments.IntervalStatsTable(side.label+" interval lengths", side.dist)
			if err != nil {
				return err
			}
			if err := st.Render(os.Stdout); err != nil {
				return err
			}
			fmt.Println()
		}
	}
	return nil
}
