package main

import (
	"context"
	"testing"
)

func TestRunBothCaches(t *testing.T) {
	if err := run(context.Background(), "gzip", 0.02, "70nm", "both", true); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleCacheOtherTech(t *testing.T) {
	if err := run(context.Background(), "applu", 0.02, "180nm", "I", false); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	if err := run(context.Background(), "nope", 0.02, "70nm", "both", false); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if err := run(context.Background(), "gzip", 0.02, "7nm", "both", false); err == nil {
		t.Error("unknown technology accepted")
	}
	if err := run(context.Background(), "gzip", 0.02, "70nm", "Z", false); err == nil {
		t.Error("unknown cache side accepted")
	}
}
