// Command leakbound-lint is the repo's multichecker: it runs the five
// leakbound analyzers over the requested packages and exits nonzero if
// any diagnostic survives directive filtering. `make lint` runs it as
// `go run ./cmd/leakbound-lint ./...` alongside go vet, gofmt, and
// staticcheck, so the determinism/context/telemetry invariants the
// paper's oracle argument rests on are machine-checked on every push.
//
// A diagnostic is suppressed by a directive comment on the same line or
// the line above:
//
//	//lint:ignore <analyzer>[,<analyzer>] <reason>
//
// The reason is mandatory; "all" matches every analyzer.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"leakbound/internal/analysis"
	"leakbound/internal/analysis/ctxflow"
	"leakbound/internal/analysis/determinism"
	"leakbound/internal/analysis/errwrap"
	"leakbound/internal/analysis/locks"
	"leakbound/internal/analysis/telemetryscope"
)

// analyzers is the full suite in presentation order.
var analyzers = []*analysis.Analyzer{
	ctxflow.Analyzer,
	determinism.Analyzer,
	errwrap.Analyzer,
	locks.Analyzer,
	telemetryscope.Analyzer,
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the multichecker: 0 clean, 1 findings, 2 usage or load
// failure.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("leakbound-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: leakbound-lint [flags] [packages]\n\n")
		fmt.Fprintf(stderr, "Runs the leakbound analyzer suite (defaults to ./...):\n\n")
		for _, a := range analyzers {
			fmt.Fprintf(stderr, "  %-15s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(stderr, "\nFlags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-15s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	selected, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	findings, err := analysis.Run(pkgs, selected)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	for _, f := range findings {
		fmt.Fprintln(stdout, f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "leakbound-lint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// selectAnalyzers resolves the -only flag against the suite.
func selectAnalyzers(only string) ([]*analysis.Analyzer, error) {
	if only == "" {
		return analyzers, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(analyzers))
	for _, a := range analyzers {
		byName[a.Name] = a
	}
	var selected []*analysis.Analyzer
	for _, name := range splitComma(only) {
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("leakbound-lint: unknown analyzer %q (see -list)", name)
		}
		selected = append(selected, a)
	}
	return selected, nil
}

// splitComma splits on commas, dropping empty elements.
func splitComma(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
