// Command leakbound-lint is the repo's multichecker: it runs the eight
// leakbound analyzers over the requested packages and exits nonzero if
// any diagnostic survives directive filtering. `make lint` runs it as
// `go run ./cmd/leakbound-lint ./...` alongside go vet, gofmt, and
// staticcheck, so the determinism/context/telemetry invariants the
// paper's oracle argument rests on are machine-checked on every push.
//
// Five analyzers work a package at a time (ctxflow, determinism,
// errwrap, locks, telemetryscope); three are interprocedural and see the
// whole load at once (hotalloc, detflow, ctxpair), chasing facts through
// the call graph bottom-up.
//
// A diagnostic is suppressed by a directive comment on the same line or
// the line above:
//
//	//lint:ignore <analyzer>[,<analyzer>] <reason>
//
// The reason is mandatory; "all" matches every analyzer. Interprocedural
// findings carry the call chain, and a directive on any call site along
// the chain suppresses the finding too.
//
// -sarif writes the findings as a SARIF 2.1.0 log (for GitHub code
// scanning upload); -timing prints per-analyzer wall time to stderr.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"leakbound/internal/analysis"
	"leakbound/internal/analysis/ctxflow"
	"leakbound/internal/analysis/ctxpair"
	"leakbound/internal/analysis/determinism"
	"leakbound/internal/analysis/detflow"
	"leakbound/internal/analysis/errwrap"
	"leakbound/internal/analysis/hotalloc"
	"leakbound/internal/analysis/locks"
	"leakbound/internal/analysis/telemetryscope"
)

// analyzers is the full suite in presentation order.
var analyzers = []*analysis.Analyzer{
	ctxflow.Analyzer,
	ctxpair.Analyzer,
	determinism.Analyzer,
	detflow.Analyzer,
	errwrap.Analyzer,
	hotalloc.Analyzer,
	locks.Analyzer,
	telemetryscope.Analyzer,
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the multichecker: 0 clean, 1 findings, 2 usage or load
// failure.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("leakbound-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	sarif := fs.String("sarif", "", "also write findings as SARIF 2.1.0 to this file")
	timing := fs.Bool("timing", false, "print per-analyzer wall time to stderr")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: leakbound-lint [flags] [packages]\n\n")
		fmt.Fprintf(stderr, "Runs the leakbound analyzer suite (defaults to ./...):\n\n")
		for _, a := range analyzers {
			fmt.Fprintf(stderr, "  %-15s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(stderr, "\nFlags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-15s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	selected, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	findings, timings, err := analysis.RunTimed(pkgs, selected)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if *timing {
		for _, tm := range timings {
			fmt.Fprintf(stderr, "leakbound-lint: %-15s %v\n", tm.Name, tm.Duration.Round(timingResolution))
		}
	}
	if *sarif != "" {
		if err := writeSARIFFile(*sarif, selected, findings); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	}
	for _, f := range findings {
		fmt.Fprintln(stdout, f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "leakbound-lint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// timingResolution keeps -timing output readable without burying the
// signal in nanoseconds.
const timingResolution = 100 * time.Microsecond

// writeSARIFFile writes the findings as a SARIF log rooted at the
// current directory (so artifact URIs are repo-relative).
func writeSARIFFile(path string, selected []*analysis.Analyzer, findings []analysis.Finding) error {
	root, err := os.Getwd()
	if err != nil {
		return fmt.Errorf("leakbound-lint: %w", err)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("leakbound-lint: %w", err)
	}
	if err := analysis.WriteSARIF(f, root, selected, findings); err != nil {
		f.Close()
		return fmt.Errorf("leakbound-lint: %w", err)
	}
	return f.Close()
}

// selectAnalyzers resolves the -only flag against the suite; unknown
// names are a usage error listing the registry, mirroring the
// ErrUnknownScheme style in internal/leakage.
func selectAnalyzers(only string) ([]*analysis.Analyzer, error) {
	if only == "" {
		return analyzers, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(analyzers))
	known := make([]string, 0, len(analyzers))
	for _, a := range analyzers {
		byName[a.Name] = a
		known = append(known, a.Name)
	}
	var selected []*analysis.Analyzer
	for _, name := range splitComma(only) {
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("leakbound-lint: unknown analyzer %q (known: %s)", name, strings.Join(known, ", "))
		}
		selected = append(selected, a)
	}
	return selected, nil
}

// splitComma splits on commas, dropping empty elements.
func splitComma(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
