package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestListPrintsEveryAnalyzer(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("run(-list) = %d, stderr %q", code, errb.String())
	}
	for _, name := range []string{"ctxflow", "determinism", "errwrap", "locks", "telemetryscope"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, out.String())
		}
	}
}

func TestUnknownAnalyzerRejected(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-only", "nosuch"}, &out, &errb); code != 2 {
		t.Fatalf("run(-only nosuch) = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown analyzer") {
		t.Errorf("stderr %q does not name the unknown analyzer", errb.String())
	}
}

func TestSelectAnalyzers(t *testing.T) {
	sel, err := selectAnalyzers("errwrap,locks")
	if err != nil || len(sel) != 2 || sel[0].Name != "errwrap" || sel[1].Name != "locks" {
		t.Errorf("selectAnalyzers(errwrap,locks) = %v, %v", sel, err)
	}
	if sel, err := selectAnalyzers(""); err != nil || len(sel) != len(analyzers) {
		t.Errorf("selectAnalyzers(\"\") = %d analyzers, %v; want the full suite", len(sel), err)
	}
}

// TestRepoIsClean dogfoods the whole suite over the module: the repo must
// stay lint-clean, the same gate `make lint` and CI apply.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping full-module lint in -short mode")
	}
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root := filepath.Dir(filepath.Dir(wd)) // cmd/leakbound-lint -> module root
	if err := os.Chdir(root); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := os.Chdir(wd); err != nil {
			t.Fatal(err)
		}
	}()
	var out, errb strings.Builder
	if code := run([]string{"./..."}, &out, &errb); code != 0 {
		t.Errorf("leakbound-lint ./... = %d\n%s%s", code, out.String(), errb.String())
	}
}
