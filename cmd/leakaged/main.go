// Command leakaged serves the experiment suite over HTTP/JSON: the
// paper's figures and tables, inflection points, per-(technology x policy
// x cache) evaluations, and parameterized sweep queries, behind an LRU
// result cache, request coalescing, and bounded admission control.
//
// Usage:
//
//	leakaged [-addr :8080] [-scale f] [-workers n] [-cache dir]
//	         [-specs dir] [-cache-entries n] [-queue-depth n]
//	         [-queue-wait d] [-request-timeout d] [-drain-timeout d]
//
// The daemon prints "leakaged: listening on ADDR" once the listener is
// bound (use -addr 127.0.0.1:0 for an ephemeral port), then serves until
// SIGINT/SIGTERM, at which point it drains gracefully: the listener
// closes, /readyz flips to 503, in-flight requests get -drain-timeout to
// finish, and whatever still runs is cancelled. A clean drain exits 0.
//
// Endpoints: /healthz, /readyz, /api/v1/{benchmarks,figures/{1,7,8,9,10},
// tables/{1,2,3},inflections,policies,eval,sweep,pareto}, plus the
// telemetry surface (/metrics, /metrics.json, /debug/vars,
// /debug/pprof/*) on the same mux. /api/v1/policies lists the registered
// schemes with their parameter schemas; eval and sweep accept POST bodies
// with structured policy specs ({"scheme": ..., "params": {...}}) and
// inline workload specs ({"spec": {...}}, evaluated ad hoc and cached by
// digest) in addition to the GET query spellings; -specs serves a
// directory of workload specs as extra benchmarks; /api/v1/pareto
// evaluates a policy
// population on both (normalized leakage, induced miss rate) axes and
// marks the non-dominated frontier. See the README's "Serving" section
// for parameters and semantics.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"leakbound/internal/experiments"
	"leakbound/internal/server"
	"leakbound/internal/telemetry"
	"leakbound/internal/workload/spec"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address (host:port; :0 for ephemeral)")
	scale := flag.Float64("scale", experiments.DefaultScale, "workload scale (1.0 = full study length)")
	workers := flag.Int("workers", 0, "parallelism bound shared by the pipeline and admission control (0 = GOMAXPROCS)")
	cacheDir := flag.String("cache", "", "directory for on-disk simulation caching (empty = off)")
	specsDir := flag.String("specs", "", "directory of workload specs (.json) and recordings (.trc) served as extra benchmarks")
	cacheEntries := flag.Int("cache-entries", server.DefaultCacheEntries, "LRU result-cache bound (negative disables result caching)")
	queueDepth := flag.Int("queue-depth", server.DefaultQueueDepth, "max requests waiting for admission before 429")
	queueWait := flag.Duration("queue-wait", server.DefaultQueueWait, "max time one request waits for admission before 503")
	requestTimeout := flag.Duration("request-timeout", 5*time.Minute, "per-request wall-time cap (0 = none)")
	drainTimeout := flag.Duration("drain-timeout", server.DefaultDrainTimeout, "graceful-drain bound on shutdown")
	quiet := flag.Bool("quiet", false, "suppress the access log")
	obs := telemetry.RegisterFlags(flag.CommandLine)
	flag.Parse()

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	stop, err := obs.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "leakaged:", err)
		os.Exit(1)
	}
	err = run(ctx, appConfig{
		addr:           *addr,
		scale:          *scale,
		workers:        *workers,
		cacheDir:       *cacheDir,
		specsDir:       *specsDir,
		cacheEntries:   *cacheEntries,
		queueDepth:     *queueDepth,
		queueWait:      *queueWait,
		requestTimeout: *requestTimeout,
		drainTimeout:   *drainTimeout,
		quiet:          *quiet,
	}, nil)
	if stopErr := stop(); err == nil {
		err = stopErr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "leakaged:", err)
		os.Exit(1)
	}
}

// appConfig carries the parsed flags into run.
type appConfig struct {
	addr           string
	scale          float64
	workers        int
	cacheDir       string
	specsDir       string
	cacheEntries   int
	queueDepth     int
	queueWait      time.Duration
	requestTimeout time.Duration
	drainTimeout   time.Duration
	quiet          bool
}

// run builds the suite and server, binds the listener, announces the
// bound address (onReady, when non-nil, also receives it — tests use
// this), and serves until ctx is cancelled. A clean drain returns nil.
func run(ctx context.Context, cfg appConfig, onReady func(net.Addr)) error {
	opts := []experiments.Option{
		experiments.WithScale(cfg.scale),
		experiments.WithWorkers(cfg.workers),
		experiments.WithCacheDir(cfg.cacheDir),
	}
	if cfg.specsDir != "" {
		srcs, err := spec.LoadDir(cfg.specsDir)
		if err != nil {
			return err
		}
		scs := make([]experiments.Scenario, len(srcs))
		for i, src := range srcs {
			scs[i] = src
		}
		opts = append(opts, experiments.WithScenarios(scs...))
	}
	suite, err := experiments.New(opts...)
	if err != nil {
		return err
	}
	var accessLog *os.File
	if !cfg.quiet {
		accessLog = os.Stderr
	}
	srv, err := server.New(server.Config{
		Suite:          suite,
		Workers:        cfg.workers,
		CacheEntries:   cfg.cacheEntries,
		QueueDepth:     cfg.queueDepth,
		QueueWait:      cfg.queueWait,
		RequestTimeout: cfg.requestTimeout,
		DrainTimeout:   cfg.drainTimeout,
		AccessLog:      accessLog,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	fmt.Printf("leakaged: listening on %s\n", ln.Addr())
	if onReady != nil {
		onReady(ln.Addr())
	}
	return srv.Serve(ctx, ln)
}
