package main

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"testing"
	"time"
)

// TestRunServesAndDrains boots the daemon on an ephemeral port, exercises
// the health and API surface, then cancels the context (the SIGTERM path)
// and requires a clean exit.
func TestRunServesAndDrains(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, appConfig{
			addr:         "127.0.0.1:0",
			scale:        0.02,
			cacheEntries: 16,
			queueDepth:   4,
			queueWait:    time.Second,
			drainTimeout: 5 * time.Second,
			quiet:        true,
		}, func(a net.Addr) { ready <- a })
	}()
	var base string
	select {
	case a := <-ready:
		base = "http://" + a.String()
	case err := <-done:
		t.Fatalf("run exited before ready: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never became ready")
	}

	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, body
	}
	if status, body := get("/healthz"); status != http.StatusOK {
		t.Errorf("healthz: %d %s", status, body)
	}
	if status, body := get("/readyz"); status != http.StatusOK {
		t.Errorf("readyz: %d %s", status, body)
	}
	status, body := get("/api/v1/inflections?tech=70nm")
	if status != http.StatusOK {
		t.Fatalf("inflections: %d %s", status, body)
	}
	var infl map[string]any
	if err := json.Unmarshal(body, &infl); err != nil {
		t.Fatalf("inflections JSON: %v", err)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after drain, want nil", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("run did not return after cancel")
	}
}

// TestRunRejectsBadConfig: an invalid scale fails fast, before binding.
func TestRunRejectsBadConfig(t *testing.T) {
	err := run(context.Background(), appConfig{addr: "127.0.0.1:0", scale: -1, quiet: true}, nil)
	if err == nil {
		t.Fatal("run accepted a negative scale")
	}
}
