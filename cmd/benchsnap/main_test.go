package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"leakbound/internal/bench"
)

const benchOutput = `goos: linux
goarch: amd64
cpu: TestCPU v1
BenchmarkA-1	10	1000 ns/op	100 B/op	5 allocs/op
BenchmarkB-1	20	2000 ns/op	200 B/op	10 allocs/op
PASS
`

func runCLI(t *testing.T, args []string, stdin string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, strings.NewReader(stdin), &out, &errb)
	return code, out.String(), errb.String()
}

func TestSnapshotMode(t *testing.T) {
	dir := t.TempDir()
	code, stdout, stderr := runCLI(t,
		[]string{"-out", dir, "-date", "2026-08-07", "-label", "r1", "-commit", "abc1234"},
		benchOutput)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	path := filepath.Join(dir, "BENCH_2026-08-07_r1.json")
	if !strings.Contains(stdout, path) {
		t.Errorf("stdout %q missing path", stdout)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("snapshot not written: %v", err)
	}
	var s bench.Snapshot
	if err := json.Unmarshal(raw, &s); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if s.SchemaVersion != bench.SchemaVersion || s.Date != "2026-08-07" || s.Label != "r1" || s.Commit != "abc1234" {
		t.Errorf("metadata: %+v", s)
	}
	if s.Host.CPU != "TestCPU v1" || s.Host.GOMAXPROCS != 1 {
		t.Errorf("host: %+v", s.Host)
	}
	if len(s.Results) != 2 || s.Results[0].Name != "BenchmarkA" {
		t.Errorf("results: %+v", s.Results)
	}
}

func TestCompareModePassAndFail(t *testing.T) {
	dir := t.TempDir()
	if code, _, stderr := runCLI(t, []string{"-out", dir, "-date", "2026-08-07"}, benchOutput); code != 0 {
		t.Fatalf("baseline snapshot: exit %d, %s", code, stderr)
	}
	baseline := filepath.Join(dir, "BENCH_2026-08-07.json")

	// Identical run passes.
	code, stdout, _ := runCLI(t, []string{"-compare", baseline}, benchOutput)
	if code != 0 {
		t.Fatalf("identical compare: exit %d\n%s", code, stdout)
	}

	// Alloc regression fails with exit 1 even though the baseline CPU matches.
	regressed := strings.Replace(benchOutput, "5 allocs/op", "50 allocs/op", 1)
	code, stdout, stderr := runCLI(t, []string{"-compare", baseline}, regressed)
	if code != 1 {
		t.Fatalf("regressed compare: exit %d, want 1\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "allocs/op") {
		t.Errorf("table should name the regression:\n%s", stdout)
	}

	// Warn-only demotes the same regression to exit 0.
	code, _, _ = runCLI(t, []string{"-compare", baseline, "-warn-only"}, regressed)
	if code != 0 {
		t.Fatalf("warn-only compare: exit %d, want 0", code)
	}
}

func TestCompareModePicksNewestFromDirectory(t *testing.T) {
	dir := t.TempDir()
	old := strings.Replace(benchOutput, "5 allocs/op", "1000 allocs/op", 1)
	if code, _, _ := runCLI(t, []string{"-out", dir, "-date", "2026-01-01"}, old); code != 0 {
		t.Fatal("old snapshot failed")
	}
	if code, _, _ := runCLI(t, []string{"-out", dir, "-date", "2026-08-07", "-label", "r2-streaming"}, benchOutput); code != 0 {
		t.Fatal("new snapshot failed")
	}
	// Current run matches the NEWEST baseline (5 allocs/op); against the old
	// one it would be a huge improvement either way, but a regression vs the
	// old snapshot proves newest-wins: bump allocs to 20 (fails vs newest's
	// 5, passes vs old's 1000).
	regressed := strings.Replace(benchOutput, "5 allocs/op", "20 allocs/op", 1)
	code, _, stderr := runCLI(t, []string{"-compare", dir}, regressed)
	if code != 1 {
		t.Fatalf("exit %d, want 1 (gate must use newest snapshot): %s", code, stderr)
	}
	if !strings.Contains(stderr, "r2-streaming") {
		t.Errorf("stderr should name the newest baseline: %s", stderr)
	}
}

func TestCompareSummaryFile(t *testing.T) {
	dir := t.TempDir()
	if code, _, _ := runCLI(t, []string{"-out", dir, "-date", "2026-08-07"}, benchOutput); code != 0 {
		t.Fatal("snapshot failed")
	}
	summary := filepath.Join(dir, "summary.md")
	code, _, stderr := runCLI(t, []string{"-compare", dir, "-summary", summary}, benchOutput)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr)
	}
	raw, err := os.ReadFile(summary)
	if err != nil {
		t.Fatalf("summary not written: %v", err)
	}
	if !strings.Contains(string(raw), "| BenchmarkA |") {
		t.Errorf("summary content:\n%s", raw)
	}
}

func TestUsageErrors(t *testing.T) {
	if code, _, _ := runCLI(t, nil, "no benchmarks here\n"); code != 2 {
		t.Errorf("empty input: exit %d, want 2", code)
	}
	if code, _, _ := runCLI(t, []string{"-compare", "/nonexistent/path.json"}, benchOutput); code != 2 {
		t.Errorf("missing baseline: exit %d, want 2", code)
	}
	if code, _, _ := runCLI(t, []string{"-compare", t.TempDir()}, benchOutput); code != 2 {
		t.Errorf("empty baseline dir: exit %d, want 2", code)
	}
	bad := filepath.Join(t.TempDir(), "BENCH_2026-01-01.json")
	if err := os.WriteFile(bad, []byte(`{"schema_version": 99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, stderr := runCLI(t, []string{"-compare", bad}, benchOutput); code != 2 {
		t.Errorf("schema mismatch: exit %d, want 2 (%s)", code, stderr)
	}
}

func TestSnapshotRequireCoverage(t *testing.T) {
	dir := t.TempDir()
	// No committed baseline yet: the first snapshot must still write.
	code, _, stderr := runCLI(t,
		[]string{"-out", dir, "-date", "2026-08-07", "-require-coverage"}, benchOutput)
	if code != 0 {
		t.Fatalf("first snapshot: exit %d, stderr: %s", code, stderr)
	}

	// A run dropping BenchmarkB must fail loudly and write nothing.
	narrowed := `goos: linux
goarch: amd64
cpu: TestCPU v1
BenchmarkA-1	10	1000 ns/op	100 B/op	5 allocs/op
PASS
`
	code, _, stderr = runCLI(t,
		[]string{"-out", dir, "-date", "2026-08-08", "-require-coverage"}, narrowed)
	if code != 1 {
		t.Fatalf("dropped benchmark: exit %d, want 1 (stderr: %s)", code, stderr)
	}
	if !strings.Contains(stderr, "BenchmarkB") {
		t.Errorf("stderr %q does not name the missing benchmark", stderr)
	}
	if _, err := os.Stat(filepath.Join(dir, "BENCH_2026-08-08.json")); !os.IsNotExist(err) {
		t.Errorf("snapshot written despite failed coverage check: %v", err)
	}

	// Without the flag the narrowed run still snapshots (explicit opt-out).
	code, _, stderr = runCLI(t, []string{"-out", dir, "-date", "2026-08-08"}, narrowed)
	if code != 0 {
		t.Fatalf("opt-out: exit %d, stderr: %s", code, stderr)
	}

	// A superset run passes the check: the 2026-08-08 baseline has only
	// BenchmarkA, and extra benchmarks in the run are fine.
	code, _, stderr = runCLI(t,
		[]string{"-out", dir, "-date", "2026-08-09", "-require-coverage"}, benchOutput)
	if code != 0 {
		t.Fatalf("superset: exit %d, stderr: %s", code, stderr)
	}
}
