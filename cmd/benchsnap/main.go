// Command benchsnap freezes and gates benchmark results.
//
// Snapshot mode (default) reads `go test -bench -benchmem` output on
// stdin and writes a BENCH_<date>[_<label>].json snapshot:
//
//	go test -bench='...' -benchmem | benchsnap -date 2026-08-07 -label r1 -out .
//
// With -require-coverage, snapshot mode first checks the run against the
// newest committed snapshot in -out and refuses (exit 1, nothing
// written) when any baseline benchmark is missing from the run — a
// renamed or dropped bench must be an explicit decision, not a silent
// hole in the next baseline.
//
// Compare mode reads the same output on stdin and gates it against a
// committed baseline snapshot:
//
//	go test -bench='...' -benchmem | benchsnap -compare BENCH_2026-08-07.json
//
// Exit codes in compare mode: 0 = within thresholds (warnings allowed),
// 1 = gate-blocking regression, 2 = usage or I/O failure. The gate
// policy (see internal/bench): allocs/op regressions always block,
// ns/op regressions beyond -threshold block only when the baseline was
// taken on the same CPU model — cross-machine timing deltas are
// advisory. -warn-only demotes every failure to a warning.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"time"

	"leakbound/internal/bench"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchsnap", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		out       = fs.String("out", ".", "directory to write the snapshot into")
		date      = fs.String("date", "", "snapshot date (YYYY-MM-DD); defaults to today")
		label     = fs.String("label", "", "snapshot label, appended to the filename (e.g. r2-streaming)")
		commit    = fs.String("commit", "", "abbreviated git revision to record")
		compare   = fs.String("compare", "", "baseline BENCH_*.json (or a directory to pick the newest from); switches to compare mode")
		threshold = fs.Float64("threshold", 0.20, "fractional ns/op regression tolerated before failing")
		allocTol  = fs.Float64("alloc-threshold", 0.02, "fractional allocs/op regression tolerated before failing")
		warnOnly  = fs.Bool("warn-only", false, "report regressions but exit 0")
		summary   = fs.String("summary", "", "append a markdown comparison table to this file (compare mode)")
		coverage  = fs.Bool("require-coverage", false, "snapshot mode: fail (exit 1, nothing written) when a benchmark in the newest committed snapshot is missing from this run")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	parsed, err := bench.Parse(stdin)
	if err != nil {
		fmt.Fprintf(stderr, "benchsnap: %v\n", err)
		return 2
	}
	snap := snapshotFrom(parsed, *date, *label, *commit)

	if *compare == "" {
		if *coverage {
			if missing, basePath := missingFromBaseline(*out, snap); len(missing) > 0 {
				fmt.Fprintf(stderr, "benchsnap: benchmarks in %s missing from this run: %v\n", basePath, missing)
				fmt.Fprintf(stderr, "benchsnap: refusing to write a snapshot that silently drops them (narrow BENCH on purpose? rerun without -require-coverage)\n")
				return 1
			}
		}
		path := filepath.Join(*out, snapshotFilename(snap))
		raw, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			fmt.Fprintf(stderr, "benchsnap: %v\n", err)
			return 2
		}
		if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
			fmt.Fprintf(stderr, "benchsnap: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "wrote %s (%d benchmarks)\n", path, len(snap.Results))
		return 0
	}

	basePath, err := resolveBaseline(*compare)
	if err != nil {
		fmt.Fprintf(stderr, "benchsnap: %v\n", err)
		return 2
	}
	base, err := readSnapshot(basePath)
	if err != nil {
		fmt.Fprintf(stderr, "benchsnap: %v\n", err)
		return 2
	}
	deltas := bench.Compare(base, snap, bench.CompareOptions{
		NsThreshold:    *threshold,
		AllocThreshold: *allocTol,
		WarnOnly:       *warnOnly,
	})
	table := bench.MarkdownTable(base, snap, deltas)
	fmt.Fprintln(stdout, table)
	if *summary != "" {
		f, err := os.OpenFile(*summary, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			fmt.Fprintf(stderr, "benchsnap: %v\n", err)
			return 2
		}
		_, werr := fmt.Fprintln(f, table)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(stderr, "benchsnap: %v\n", werr)
			return 2
		}
	}
	if bench.AnyFail(deltas) {
		fmt.Fprintf(stderr, "benchsnap: performance gate failed against %s\n", basePath)
		return 1
	}
	return 0
}

// snapshotFrom assembles a snapshot, preferring host facts printed by the
// benchmark run itself over this process's runtime (they can differ when
// the output was produced elsewhere and only normalized here).
func snapshotFrom(parsed *bench.RunOutput, date, label, commit string) *bench.Snapshot {
	if date == "" {
		date = time.Now().Format("2006-01-02")
	}
	host := bench.Host{
		GoVersion:  runtime.Version(),
		GOOS:       orDefault(parsed.GOOS, runtime.GOOS),
		GOARCH:     orDefault(parsed.GOARCH, runtime.GOARCH),
		CPU:        parsed.CPU,
		GOMAXPROCS: parsed.GOMAXPROCS,
	}
	if host.GOMAXPROCS == 0 {
		host.GOMAXPROCS = runtime.GOMAXPROCS(0)
	}
	return &bench.Snapshot{
		SchemaVersion: bench.SchemaVersion,
		Date:          date,
		Label:         label,
		Commit:        commit,
		Host:          host,
		Results:       parsed.Results,
	}
}

func orDefault(v, def string) string {
	if v == "" {
		return def
	}
	return v
}

func snapshotFilename(s *bench.Snapshot) string {
	name := "BENCH_" + s.Date
	if s.Label != "" {
		name += "_" + s.Label
	}
	return name + ".json"
}

// missingFromBaseline resolves the newest committed snapshot in dir and
// returns the benchmark names it records that the new snapshot lacks,
// sorted. No committed baseline (or an unreadable one) means nothing to
// enforce: the first snapshot of a repo must still be writable.
func missingFromBaseline(dir string, snap *bench.Snapshot) (missing []string, basePath string) {
	basePath, err := resolveBaseline(dir)
	if err != nil {
		return nil, ""
	}
	base, err := readSnapshot(basePath)
	if err != nil {
		return nil, ""
	}
	have := make(map[string]bool, len(snap.Results))
	for _, r := range snap.Results {
		have[r.Name] = true
	}
	for _, r := range base.Results {
		if !have[r.Name] {
			missing = append(missing, r.Name)
		}
	}
	sort.Strings(missing)
	return missing, basePath
}

var benchFilePat = regexp.MustCompile(`^BENCH_\d{4}-\d{2}-\d{2}.*\.json$`)

// resolveBaseline accepts either a snapshot file or a directory, in which
// case the lexicographically greatest BENCH_*.json wins — the filename
// discipline (date, then label) makes that the newest snapshot.
func resolveBaseline(path string) (string, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return "", err
	}
	if !fi.IsDir() {
		return path, nil
	}
	entries, err := os.ReadDir(path)
	if err != nil {
		return "", err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && benchFilePat.MatchString(e.Name()) {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return "", fmt.Errorf("no BENCH_*.json snapshots in %s", path)
	}
	sort.Strings(names)
	return filepath.Join(path, names[len(names)-1]), nil
}

func readSnapshot(path string) (*bench.Snapshot, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s bench.Snapshot
	if err := json.Unmarshal(raw, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if s.SchemaVersion != bench.SchemaVersion {
		return nil, fmt.Errorf("%s: schema version %d (want %d)", path, s.SchemaVersion, bench.SchemaVersion)
	}
	return &s, nil
}
