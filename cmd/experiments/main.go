// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-scale f] [-workers n] [-timeout d] [-only item[,item...]]
//	            [-specs dir]
//
// where item is one of: fig1, table1, table2, table3, fig7, fig8, fig9,
// fig10, profile, extensions, policies, pareto, families, sweep. With no
// -only, everything is produced in paper order followed by the extension
// studies; "policies" prints the registered-scheme catalog, "pareto" the
// (normalized leakage, induced miss rate) frontier per cache side,
// "families" the related-work technique families against the bound, and
// "sweep" (opt-in only, never in the default run) a 256-point dense theta
// sweep per cache side through the aggregate evaluation kernel.
// -specs loads a directory of declarative workload specs (.json) and
// recorded traces (.trc) as extra benchmarks evaluated alongside the
// built-in six in every table, sweep, and frontier.
// -scale stretches the benchmark lengths (1.0 = the full study length);
// -workers bounds the parallel pipeline (benchmark fan-out, per-benchmark
// collection shards, and evaluation-grid workers; 0 = GOMAXPROCS);
// -timeout aborts the whole run after a duration. Ctrl-C (SIGINT/SIGTERM)
// cancels cleanly: in-flight simulations stop at their next cancellation
// check and partial telemetry is still flushed.
//
// Observability: -metrics prints a telemetry snapshot (per-benchmark
// simulation time, event counts, disk-cache hits/misses, pool utilization)
// to stderr after the run; -cpuprofile/-memprofile write pprof profiles;
// -metrics-addr serves /metrics, expvar and pprof over HTTP for long
// sweeps.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"leakbound/internal/experiments"
	"leakbound/internal/power"
	"leakbound/internal/report"
	"leakbound/internal/telemetry"
	"leakbound/internal/workload/spec"
)

func main() {
	scale := flag.Float64("scale", experiments.DefaultScale, "workload scale (1.0 = full study length)")
	workers := flag.Int("workers", 0, "parallelism bound: benchmark fan-out, per-benchmark shards, grid workers (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 0, "abort the whole run after this duration (0 = no limit)")
	only := flag.String("only", "", "comma-separated subset: fig1,table1,table2,table3,fig7,fig8,fig9,fig10,profile,extensions,policies,pareto,families,sweep")
	cacheDir := flag.String("cache", "", "directory for on-disk simulation caching (empty = off)")
	specsDir := flag.String("specs", "", "directory of workload specs (.json) and recordings (.trc) to evaluate alongside the built-in benchmarks")
	format := flag.String("format", "text", "output format: text, markdown, or csv")
	obs := telemetry.RegisterFlags(flag.CommandLine)
	flag.Parse()

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	if *timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	stop, err := obs.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	err = run(ctx, *scale, *workers, *only, *cacheDir, *specsDir, *format)
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "experiments: aborted:", err)
	}
	if stopErr := stop(); err == nil {
		err = stopErr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, scale float64, workers int, only, cacheDir, specsDir, format string) error {
	var render func(*report.Table) error
	switch format {
	case "text":
		render = func(t *report.Table) error { return t.Render(os.Stdout) }
	case "markdown":
		render = func(t *report.Table) error { return t.RenderMarkdown(os.Stdout) }
	case "csv":
		render = func(t *report.Table) error { return t.RenderCSV(os.Stdout) }
	default:
		return fmt.Errorf("unknown -format %q (want text, markdown, or csv)", format)
	}
	opts := []experiments.Option{
		experiments.WithScale(scale),
		experiments.WithWorkers(workers),
		experiments.WithCacheDir(cacheDir),
	}
	if specsDir != "" {
		srcs, err := spec.LoadDir(specsDir)
		if err != nil {
			return err
		}
		scs := make([]experiments.Scenario, len(srcs))
		for i, src := range srcs {
			scs[i] = src
		}
		opts = append(opts, experiments.WithScenarios(scs...))
	}
	suite, err := experiments.New(opts...)
	if err != nil {
		return err
	}
	want := map[string]bool{}
	if only != "" {
		for _, item := range strings.Split(only, ",") {
			want[strings.TrimSpace(item)] = true
		}
	}
	selected := func(name string) bool { return len(want) == 0 || want[name] }
	out := os.Stdout

	if selected("fig1") {
		if err := render(experiments.Figure1()); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	if selected("table1") {
		t, err := experiments.Table1()
		if err != nil {
			return err
		}
		if err := render(t); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	if selected("fig7") {
		for _, iCache := range []bool{true, false} {
			sleep, hybrid, err := experiments.Figure7Context(ctx, suite, iCache)
			if err != nil {
				return err
			}
			side := "(a) Instruction Cache"
			if !iCache {
				side = "(b) Data Cache"
			}
			if err := report.RenderSeries(out,
				"Figure 7"+side+": hybrid vs sleep, swept minimum sleep interval",
				"interval", sleep, hybrid); err != nil {
				return err
			}
			fmt.Fprintln(out)
		}
	}
	if selected("fig8") {
		for _, iCache := range []bool{true, false} {
			t, err := experiments.Figure8TableContext(ctx, suite, iCache)
			if err != nil {
				return err
			}
			if err := render(t); err != nil {
				return err
			}
			fmt.Fprintln(out)
		}
		pb, opt, gap, err := experiments.GapToOptimalContext(ctx, suite, true)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "I-cache: Prefetch-B %s vs OPT-Hybrid %s (gap %.1f%%)\n",
			report.Pct(pb), report.Pct(opt), gap*100)
		pb, opt, gap, err = experiments.GapToOptimalContext(ctx, suite, false)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "D-cache: Prefetch-B %s vs OPT-Hybrid %s (gap %.1f%%)\n\n",
			report.Pct(pb), report.Pct(opt), gap*100)
	}
	if selected("table2") {
		t, err := experiments.Table2Context(ctx, suite)
		if err != nil {
			return err
		}
		if err := render(t); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	if selected("table3") {
		if err := experiments.Table3().Render(out); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	if selected("fig9") {
		for _, iCache := range []bool{true, false} {
			t, err := experiments.Figure9TableContext(ctx, suite, iCache)
			if err != nil {
				return err
			}
			if err := render(t); err != nil {
				return err
			}
			fmt.Fprintln(out)
		}
	}
	if selected("fig10") {
		t, err := experiments.Figure10Table()
		if err != nil {
			return err
		}
		if err := render(t); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	if selected("extensions") {
		ext, err := experiments.ExtendedSchemesTableContext(ctx, suite)
		if err != nil {
			return err
		}
		if err := render(ext); err != nil {
			return err
		}
		fmt.Fprintln(out)
		l2, err := experiments.L2StudyContext(ctx, suite)
		if err != nil {
			return err
		}
		if err := render(l2); err != nil {
			return err
		}
		fmt.Fprintln(out)
		wb, err := experiments.WritebackAblationContext(ctx, suite)
		if err != nil {
			return err
		}
		if err := render(wb); err != nil {
			return err
		}
		fmt.Fprintln(out)
		ts, err := experiments.TemperatureSweepContext(ctx, suite, "gzip")
		if err != nil {
			return err
		}
		if err := render(ts); err != nil {
			return err
		}
		fmt.Fprintln(out)
		pq, err := experiments.PrefetcherQualityTableContext(ctx, suite)
		if err != nil {
			return err
		}
		if err := render(pq); err != nil {
			return err
		}
		fmt.Fprintln(out)
		// The geometry sweep re-simulates every configuration; run it at a
		// reduced scale to keep the full run under a minute.
		geomScale := scale
		if geomScale > 0.25 {
			geomScale = 0.25
		}
		geo, err := experiments.GeometrySweepContext(ctx, geomScale)
		if err != nil {
			return err
		}
		if err := render(geo); err != nil {
			return err
		}
		fmt.Fprintln(out)
		ld, err := experiments.LiveDeadStudyContext(ctx, suite)
		if err != nil {
			return err
		}
		if err := render(ld); err != nil {
			return err
		}
		fmt.Fprintln(out)
		bk, err := experiments.BreakdownTableContext(ctx, suite)
		if err != nil {
			return err
		}
		if err := render(bk); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	if selected("profile") {
		all, err := suite.AllContext(ctx)
		if err != nil {
			return err
		}
		t := report.NewTable("Interval mass profile per benchmark (fraction of frame-cycles)",
			"benchmark", "cache", "(0,6]", "(6,1057]", "(1057,10K]", "(10K,103K]", "(103K,+inf)")
		for _, bd := range all {
			for _, side := range []string{"I", "D"} {
				dist := bd.ICache
				if side == "D" {
					dist = bd.DCache
				}
				p := experiments.MassProfile(dist)
				t.MustAddRow(bd.Name, side,
					report.Pct(p["(0,6]"]), report.Pct(p["(6,1057]"]),
					report.Pct(p["(1057,10K]"]), report.Pct(p["(10K,103K]"]),
					report.Pct(p["(103K,+inf)"]))
			}
		}
		if err := render(t); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	if selected("policies") {
		if err := render(experiments.PolicyTable()); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	// "sweep" is opt-in only (never part of the default everything run):
	// a 256-point dense theta ladder per cache side, affordable because
	// each benchmark answers the whole ladder in one aggregate-kernel
	// pass.
	if len(want) != 0 && want["sweep"] {
		thetas := denseThetas(1057, 103084, 256)
		for _, iCache := range []bool{true, false} {
			side := "(a) Instruction Cache"
			if !iCache {
				side = "(b) Data Cache"
			}
			series := make([]*report.Series, 0, 2)
			for _, scheme := range []string{"opt-sleep", "opt-hybrid"} {
				pts, err := suite.SweepThetaContext(ctx, scheme, iCache, power.Default(), thetas)
				if err != nil {
					return err
				}
				sr := &report.Series{Name: scheme}
				for _, p := range pts {
					sr.Add(float64(p.Theta), p.Savings)
				}
				series = append(series, sr)
			}
			if err := report.RenderSeries(out,
				"Dense sweep "+side+": savings over 256 theta points",
				"theta", series...); err != nil {
				return err
			}
			fmt.Fprintln(out)
		}
	}
	if selected("pareto") {
		for _, iCache := range []bool{true, false} {
			t, err := suite.ParetoTableContext(ctx, iCache, power.Default(), nil)
			if err != nil {
				return err
			}
			if err := render(t); err != nil {
				return err
			}
			fmt.Fprintln(out)
		}
	}
	if selected("families") {
		for _, iCache := range []bool{true, false} {
			t, err := suite.TechniqueFamiliesTableContext(ctx, iCache, power.Default())
			if err != nil {
				return err
			}
			if err := render(t); err != nil {
				return err
			}
			fmt.Fprintln(out)
		}
	}
	return nil
}

// denseThetas builds a geometrically spaced theta ladder from from to to
// with up to points samples, deduplicated after rounding — the same
// spacing the serving layer's sweep endpoint defaults to.
func denseThetas(from, to uint64, points int) []uint64 {
	if points <= 1 || from >= to {
		return []uint64{from}
	}
	ratio := math.Pow(float64(to)/float64(from), 1/float64(points-1))
	out := make([]uint64, 0, points)
	last := uint64(0)
	for i := 0; i < points; i++ {
		v := uint64(math.Round(float64(from) * math.Pow(ratio, float64(i))))
		if v <= last {
			continue
		}
		out = append(out, v)
		last = v
	}
	return out
}
