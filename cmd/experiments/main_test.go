package main

import (
	"testing"
)

func TestRunSubsets(t *testing.T) {
	// Static items are fast; simulated items run at a tiny scale.
	for _, only := range []string{"fig1", "table1", "table3", "fig10"} {
		if err := run(0.02, only, "", "text"); err != nil {
			t.Errorf("run(%q): %v", only, err)
		}
	}
}

func TestRunSimulatedSubset(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates the full suite")
	}
	if err := run(0.02, "fig8,fig9", "", "markdown"); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	if err := run(0, "table1", "", "text"); err == nil {
		t.Error("zero scale accepted")
	}
	if err := run(0.02, "table1", "", "html"); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestRunWithDiskCache(t *testing.T) {
	dir := t.TempDir()
	if err := run(0.02, "table1", dir, "csv"); err != nil {
		t.Fatal(err)
	}
}
