package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"leakbound/internal/telemetry"
)

func TestRunSubsets(t *testing.T) {
	// Static items are fast; simulated items run at a tiny scale.
	for _, only := range []string{"fig1", "table1", "table3", "fig10"} {
		if err := run(context.Background(), 0.02, 0, only, "", "", "text"); err != nil {
			t.Errorf("run(%q): %v", only, err)
		}
	}
}

func TestRunSimulatedSubset(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates the full suite")
	}
	if err := run(context.Background(), 0.02, 2, "fig8,fig9", "", "", "markdown"); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	if err := run(context.Background(), 0, 0, "table1", "", "", "text"); err == nil {
		t.Error("zero scale accepted")
	}
	if err := run(context.Background(), 0.02, 0, "table1", "", "", "html"); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestRunWithDiskCache(t *testing.T) {
	dir := t.TempDir()
	if err := run(context.Background(), 0.02, 0, "table1", dir, "", "csv"); err != nil {
		t.Fatal(err)
	}
}

// TestRunWithSpecsDir loads a workload-spec directory and checks the
// scenario rides through a full-suite item next to the builtins.
func TestRunWithSpecsDir(t *testing.T) {
	dir := t.TempDir()
	specJSON := `{"version":1,"name":"cli-spec","seed":4,"phases":[
		{"body_instrs":200,"iterations":40,"mix":[{"kernel":"hot","lines":8}]}]}`
	if err := os.WriteFile(filepath.Join(dir, "cli-spec.json"), []byte(specJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), 0.02, 0, "profile", "", dir, "text"); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), 0.02, 0, "table1", "", filepath.Join(dir, "missing"), "text"); err == nil {
		t.Error("missing specs dir accepted")
	}
}

// TestRunWithMetricsSnapshot exercises what `experiments -metrics` does in
// main: run a full-suite item, then print the telemetry snapshot. The
// snapshot must report per-benchmark simulation time, event counts, and
// disk-cache hit/miss counters.
func TestRunWithMetricsSnapshot(t *testing.T) {
	var buf bytes.Buffer
	stop, err := (telemetry.Observability{Metrics: true, MetricsOut: &buf}).Start()
	if err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), 0.02, 0, "profile", t.TempDir(), "", "text"); err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"suite:", "sim_ms/gzip", "events/gzip",
		"diskcache:", "hits", "misses",
		"pool:", "tasks_completed",
		"cpu:", "events_emitted",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics snapshot missing %q:\n%s", want, out)
		}
	}
}
