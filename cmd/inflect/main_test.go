package main

import (
	"testing"

	"leakbound/internal/power"
)

func TestRunBuiltinTable(t *testing.T) {
	if err := run(0, 0, 0, 0, power.PaperDurations()); err != nil {
		t.Fatalf("built-in table failed: %v", err)
	}
}

func TestRunCustomParameters(t *testing.T) {
	if err := run(0.8, 0.8/3, 0.008, 250, power.PaperDurations()); err != nil {
		t.Fatalf("custom parameters failed: %v", err)
	}
}

func TestRunRejectsDegenerate(t *testing.T) {
	// Drowsy power below sleep power: no crossover exists.
	if err := run(0.8, 0.001, 0.01, 250, power.PaperDurations()); err == nil {
		t.Error("degenerate parameters accepted")
	}
	// Invalid durations.
	if err := run(0.8, 0.8/3, 0.008, 250, power.Durations{}); err == nil {
		t.Error("zero durations accepted")
	}
}
