// Command inflect computes the two inflection points of Section 3.2 for
// arbitrary circuit parameters — the generalized model of Section 3.3 as a
// calculator. With no overrides it prints Table 1 for the built-in
// technology nodes.
//
// Usage:
//
//	inflect                                    # built-in nodes (Table 1)
//	inflect -pa 0.8 -pd 0.27 -ps 0.008 -cd 250 # custom parameters
//
// The standard observability flags (-metrics, -cpuprofile, -memprofile,
// -metrics-addr) are also accepted.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"leakbound/internal/power"
	"leakbound/internal/report"
	"leakbound/internal/telemetry"
)

func main() {
	pa := flag.Float64("pa", 0, "active leakage power per line per cycle")
	pd := flag.Float64("pd", 0, "drowsy leakage power")
	ps := flag.Float64("ps", 0, "sleep leakage power")
	cd := flag.Float64("cd", 0, "induced-miss dynamic energy")
	s1 := flag.Int("s1", 30, "cycles: high -> off")
	s3 := flag.Int("s3", 3, "cycles: off -> high")
	s4 := flag.Int("s4", 4, "cycles: extra wait for the L2 fetch")
	d1 := flag.Int("d1", 3, "cycles: high -> low")
	d3 := flag.Int("d3", 3, "cycles: low -> high")
	obs := telemetry.RegisterFlags(flag.CommandLine)
	flag.Parse()

	stop, err := obs.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "inflect:", err)
		os.Exit(1)
	}
	err = run(*pa, *pd, *ps, *cd, power.Durations{S1: *s1, S3: *s3, S4: *s4, D1: *d1, D3: *d3})
	if stopErr := stop(); err == nil {
		err = stopErr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "inflect:", err)
		os.Exit(1)
	}
}

func run(pa, pd, ps, cd float64, dur power.Durations) error {
	if pa == 0 && pd == 0 && ps == 0 && cd == 0 {
		t := report.NewTable("Inflection points for the built-in technology nodes (Table 1)",
			"technology", "Vdd", "Vth", "active-drowsy", "drowsy-sleep", "CD")
		for _, tech := range power.Technologies() {
			a, b, err := tech.InflectionPoints()
			if err != nil {
				return err
			}
			t.MustAddRow(tech.Name,
				fmt.Sprintf("%.1f", tech.Vdd), fmt.Sprintf("%.4f", tech.Vth),
				fmt.Sprintf("%d", int(math.Round(a))),
				fmt.Sprintf("%d", int(math.Round(b))),
				fmt.Sprintf("%.1f", tech.CD))
		}
		return t.Render(os.Stdout)
	}
	tech := power.Technology{
		Name:      "custom",
		PActive:   pa,
		PDrowsy:   pd,
		PSleep:    ps,
		CD:        cd,
		Durations: dur,
	}
	a, b, err := tech.InflectionPoints()
	if err != nil {
		return err
	}
	fmt.Printf("active-drowsy inflection: %.0f cycles\n", a)
	fmt.Printf("drowsy-sleep inflection:  %.1f cycles\n", b)
	fmt.Printf("policy: active on (0,%.0f], drowsy on (%.0f,%.1f], sleep on (%.1f,+inf)\n", a, a, b, b)
	return nil
}
