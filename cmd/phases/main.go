// Command phases runs the SimPoint-style phase analysis (BBV + k-means) on
// a benchmark and prints the discovered phases with their weights and
// representative windows — the methodology step the paper uses (via
// SimPoint) to pick simulation windows.
//
// Usage:
//
//	phases -bench gcc [-scale 0.2] [-window 100000] [-k 6]
//
// The standard observability flags (-metrics, -cpuprofile, -memprofile,
// -metrics-addr) are also accepted.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"leakbound/internal/report"
	"leakbound/internal/simpoint"
	"leakbound/internal/telemetry"
	"leakbound/internal/workload"
)

func main() {
	bench := flag.String("bench", "gcc", "benchmark: "+strings.Join(workload.Names(), ", "))
	scale := flag.Float64("scale", 0.2, "workload scale")
	window := flag.Int("window", 100000, "instructions per BBV window")
	k := flag.Int("k", 6, "maximum number of phases")
	obs := telemetry.RegisterFlags(flag.CommandLine)
	flag.Parse()

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	stop, err := obs.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "phases:", err)
		os.Exit(1)
	}
	err = run(ctx, *bench, *scale, *window, *k)
	if stopErr := stop(); err == nil {
		err = stopErr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "phases:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, bench string, scale float64, window, k int) error {
	w, err := workload.New(bench, scale)
	if err != nil {
		return err
	}
	res, err := simpoint.PickSimPointsContext(ctx, w, window, k)
	if err != nil {
		return err
	}
	t := report.NewTable(
		fmt.Sprintf("Phases of %s (window %d instructions, k<=%d)", bench, window, k),
		"phase", "weight", "windows", "representative window")
	for i, p := range res.Phases {
		t.MustAddRow(
			fmt.Sprintf("%d", i),
			report.Pct(p.Weight),
			fmt.Sprintf("%d", p.Size),
			fmt.Sprintf("#%d (instr %d..%d)", p.Representative,
				p.Representative*window, (p.Representative+1)*window),
		)
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}

	// A compact phase timeline: one character per window.
	fmt.Println("\ntimeline (one symbol per window):")
	const symbols = "0123456789abcdefghijklmnop"
	var b strings.Builder
	for i, ph := range res.Assignment {
		if i > 0 && i%80 == 0 {
			b.WriteByte('\n')
		}
		if ph < len(symbols) {
			b.WriteByte(symbols[ph])
		} else {
			b.WriteByte('?')
		}
	}
	fmt.Println(b.String())
	return nil
}
