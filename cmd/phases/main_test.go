package main

import (
	"context"
	"testing"
)

func TestRunPhases(t *testing.T) {
	if err := run(context.Background(), "mesa", 0.05, 50000, 4); err != nil {
		t.Fatal(err)
	}
}

func TestRunPhasesErrors(t *testing.T) {
	if err := run(context.Background(), "nope", 0.05, 50000, 4); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if err := run(context.Background(), "mesa", 0.05, 0, 4); err == nil {
		t.Error("zero window accepted")
	}
	if err := run(context.Background(), "mesa", 0.05, 50000, 0); err == nil {
		t.Error("zero k accepted")
	}
}
