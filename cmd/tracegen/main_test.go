package main

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"leakbound/internal/sim/trace"
	"leakbound/internal/workload"
)

const testSpecJSON = `{"version":1,"name":"test-spec","seed":3,"phases":[
	{"body_instrs":200,"iterations":40,"mix":[
		{"kernel":"loop","bytes":16384},{"kernel":"hot"}]}]}`

func writeSpec(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestGenerateAndSummarize(t *testing.T) {
	out := filepath.Join(t.TempDir(), "t.trc")
	if err := runGenerate(context.Background(), "gzip", "", "D", out, 0.02); err != nil {
		t.Fatal(err)
	}
	if err := runSummarize(out); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateICacheAndL2(t *testing.T) {
	dir := t.TempDir()
	for _, side := range []string{"I", "L2"} {
		out := filepath.Join(dir, side+".trc")
		if err := runGenerate(context.Background(), "ammp", "", side, out, 0.02); err != nil {
			t.Fatalf("%s: %v", side, err)
		}
	}
}

func TestGenerateFromSpec(t *testing.T) {
	dir := t.TempDir()
	specPath := writeSpec(t, dir, "w.json", testSpecJSON)
	out := filepath.Join(dir, "spec.trc")
	if err := runGenerate(context.Background(), "", specPath, "D", out, 1); err != nil {
		t.Fatal(err)
	}
	if err := runSummarize(out); err != nil {
		t.Fatal(err)
	}
}

func TestRecordAndReplay(t *testing.T) {
	dir := t.TempDir()
	specPath := writeSpec(t, dir, "w.json", testSpecJSON)
	rec := filepath.Join(dir, "w.trc")
	if err := runRecord("", specPath, rec, 1); err != nil {
		t.Fatal(err)
	}
	// The recording replays through -spec: generating from the spec and
	// from its recording must produce identical cache event traces.
	fromSpec := filepath.Join(dir, "from_spec.trc")
	fromRec := filepath.Join(dir, "from_rec.trc")
	if err := runGenerate(context.Background(), "", specPath, "D", fromSpec, 1); err != nil {
		t.Fatal(err)
	}
	if err := runGenerate(context.Background(), "", rec, "D", fromRec, 1); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(fromSpec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(fromRec)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("replayed recording diverged from the spec's own trace")
	}
	// Recording a built-in benchmark works too.
	if err := runRecord("gzip", "", filepath.Join(dir, "g.trc"), 0.02); err != nil {
		t.Fatal(err)
	}
}

func TestCheckAndList(t *testing.T) {
	dir := t.TempDir()
	writeSpec(t, dir, "a.json", testSpecJSON)
	var sb strings.Builder
	if err := runCheck(&sb, dir); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "test-spec") || !strings.Contains(sb.String(), "1 scenarios valid") {
		t.Errorf("check output: %q", sb.String())
	}
	sb.Reset()
	if err := runCheck(&sb, filepath.Join(dir, "a.json")); err != nil {
		t.Fatal(err)
	}
	writeSpec(t, dir, "bad.json", `{"version":1,"name":"bad","phases":[]}`)
	if err := runCheck(&sb, dir); err == nil {
		t.Error("invalid spec passed check")
	}
	if err := runCheck(&sb, filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file passed check")
	}

	sb.Reset()
	if err := runList(&sb); err != nil {
		t.Fatal(err)
	}
	for _, name := range workload.Names() {
		if !strings.Contains(sb.String(), name) {
			t.Errorf("list output missing %q", name)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	ctx := context.Background()
	if err := runGenerate(ctx, "gzip", "", "D", "", 0.02); !errors.Is(err, ErrMissingOutput) {
		t.Errorf("missing output: %v", err)
	}
	if err := runGenerate(ctx, "gzip", "", "Q", "x.trc", 0.02); !errors.Is(err, ErrUnknownCache) {
		t.Errorf("unknown cache: %v", err)
	}
	if err := runGenerate(ctx, "nope", "", "D", "x.trc", 0.02); !errors.Is(err, workload.ErrUnknownBenchmark) {
		t.Errorf("unknown benchmark: %v", err)
	}
	if err := runGenerate(ctx, "gzip", "also.json", "D", "x.trc", 0.02); !errors.Is(err, ErrConflictingSource) {
		t.Errorf("bench+spec: %v", err)
	}
	if err := runRecord("gzip", "", "", 0.02); !errors.Is(err, ErrMissingOutput) {
		t.Errorf("record missing output: %v", err)
	}
	if err := runSummarize(filepath.Join(t.TempDir(), "missing.trc")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestCacheID(t *testing.T) {
	for side, want := range map[string]trace.CacheID{"I": trace.L1I, "D": trace.L1D, "L2": trace.L2} {
		got, err := cacheID(side)
		if err != nil || got != want {
			t.Errorf("cacheID(%q) = %v, %v", side, got, err)
		}
	}
}
