package main

import (
	"context"
	"path/filepath"
	"testing"

	"leakbound/internal/sim/trace"
)

func TestGenerateAndSummarize(t *testing.T) {
	out := filepath.Join(t.TempDir(), "t.trc")
	if err := runGenerate(context.Background(), "gzip", "D", out, 0.02); err != nil {
		t.Fatal(err)
	}
	if err := runSummarize(out); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateICacheAndL2(t *testing.T) {
	dir := t.TempDir()
	for _, side := range []string{"I", "L2"} {
		out := filepath.Join(dir, side+".trc")
		if err := runGenerate(context.Background(), "ammp", side, out, 0.02); err != nil {
			t.Fatalf("%s: %v", side, err)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	if err := runGenerate(context.Background(), "gzip", "D", "", 0.02); err == nil {
		t.Error("missing output accepted")
	}
	if err := runGenerate(context.Background(), "gzip", "Q", "x.trc", 0.02); err == nil {
		t.Error("unknown cache accepted")
	}
	if err := runGenerate(context.Background(), "nope", "D", "x.trc", 0.02); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if err := runSummarize(filepath.Join(t.TempDir(), "missing.trc")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestCacheID(t *testing.T) {
	for side, want := range map[string]trace.CacheID{"I": trace.L1I, "D": trace.L1D, "L2": trace.L2} {
		got, err := cacheID(side)
		if err != nil || got != want {
			t.Errorf("cacheID(%q) = %v, %v", side, got, err)
		}
	}
}
