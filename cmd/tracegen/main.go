// Command tracegen generates a synthetic benchmark's timed cache access
// trace and writes it in leakbound's binary trace format, or summarizes an
// existing trace file.
//
// Usage:
//
//	tracegen -bench ammp -cache D -o ammp_d.trc [-scale 0.2]
//	tracegen -summarize ammp_d.trc
//
// The standard observability flags (-metrics, -cpuprofile, -memprofile,
// -metrics-addr) are also accepted.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"leakbound/internal/sim/cache"
	"leakbound/internal/sim/cpu"
	"leakbound/internal/sim/trace"
	"leakbound/internal/telemetry"
	"leakbound/internal/workload"
)

func main() {
	bench := flag.String("bench", "gzip", "benchmark to trace")
	side := flag.String("cache", "D", "which cache to trace: I, D, or L2")
	out := flag.String("o", "", "output file (required unless -summarize)")
	scale := flag.Float64("scale", 0.2, "workload scale")
	summarize := flag.String("summarize", "", "summarize an existing trace file instead of generating")
	obs := telemetry.RegisterFlags(flag.CommandLine)
	flag.Parse()

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	stop, err := obs.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	if *summarize != "" {
		err = runSummarize(*summarize)
	} else {
		err = runGenerate(ctx, *bench, *side, *out, *scale)
	}
	if stopErr := stop(); err == nil {
		err = stopErr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func cacheID(side string) (trace.CacheID, error) {
	switch side {
	case "I":
		return trace.L1I, nil
	case "D":
		return trace.L1D, nil
	case "L2":
		return trace.L2, nil
	default:
		return 0, fmt.Errorf("unknown cache %q (want I, D, or L2)", side)
	}
}

func runGenerate(ctx context.Context, bench, side, out string, scale float64) error {
	if out == "" {
		return fmt.Errorf("missing -o output file")
	}
	id, err := cacheID(side)
	if err != nil {
		return err
	}
	w, err := workload.New(bench, scale)
	if err != nil {
		return err
	}
	hier, err := cache.NewHierarchy(cache.AlphaLike())
	if err != nil {
		return err
	}
	stream, res, err := cpu.RunToStreamContext(ctx, w, hier, cpu.DefaultConfig(), id)
	if err != nil {
		return err
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := trace.Write(f, stream); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("%s: %d %s events over %d cycles -> %s\n",
		bench, stream.Len(), id, res.Cycles, out)
	return nil
}

func runSummarize(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	s, err := trace.Read(f)
	if err != nil {
		return err
	}
	var misses, loads, stores, fetches uint64
	frames := map[uint32]struct{}{}
	for _, e := range s.Events {
		if e.Miss {
			misses++
		}
		switch e.Kind {
		case trace.Load:
			loads++
		case trace.Store:
			stores++
		case trace.Fetch:
			fetches++
		}
		frames[e.Frame] = struct{}{}
	}
	fmt.Printf("%s:\n", path)
	fmt.Printf("  events:  %d (%d fetches, %d loads, %d stores)\n", s.Len(), fetches, loads, stores)
	fmt.Printf("  cycles:  %d\n", s.TotalCycles)
	fmt.Printf("  frames:  %d touched of %d\n", len(frames), s.NumFrames)
	if s.Len() > 0 {
		fmt.Printf("  misses:  %d (%.2f%%)\n", misses, 100*float64(misses)/float64(s.Len()))
	}
	return nil
}
