// Command tracegen generates a synthetic benchmark's timed cache access
// trace and writes it in leakbound's binary trace format, records a
// workload's instruction stream for later replay, summarizes an existing
// trace file, or validates workload spec files.
//
// Usage:
//
//	tracegen -bench ammp -cache D -o ammp_d.trc [-scale 0.2]
//	tracegen -spec workload.json -cache D -o custom_d.trc
//	tracegen -spec workload.json -record custom.trc
//	tracegen -spec recording.trc -cache I -o replayed_i.trc
//	tracegen -summarize ammp_d.trc
//	tracegen -check examples/specs
//	tracegen -list
//
// -bench selects a built-in benchmark; -spec selects a declarative
// workload spec (.json, compiled) or a recorded instruction trace (.trc,
// replayed) instead. -record captures the workload's instruction stream
// as a recording that replays bit-identically; -o runs the cache
// simulation and traces one cache's event stream. -check validates one
// spec file or every spec in a directory and prints each scenario's
// digest. The standard observability flags (-metrics, -cpuprofile,
// -memprofile, -metrics-addr) are also accepted.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"syscall"

	"leakbound/internal/sim/cache"
	"leakbound/internal/sim/cpu"
	"leakbound/internal/sim/trace"
	"leakbound/internal/telemetry"
	"leakbound/internal/workload"
	"leakbound/internal/workload/spec"
)

// Sentinel errors for argument validation; match with errors.Is.
var (
	// ErrUnknownCache reports a -cache selector outside {I, D, L2}.
	ErrUnknownCache = errors.New("tracegen: unknown cache")

	// ErrMissingOutput reports a generate run without -o or -record.
	ErrMissingOutput = errors.New("tracegen: missing output file")

	// ErrConflictingSource reports -bench and -spec given together.
	ErrConflictingSource = errors.New("tracegen: -bench and -spec are mutually exclusive")
)

func main() {
	bench := flag.String("bench", "", "built-in benchmark to trace (default gzip; see -list)")
	specPath := flag.String("spec", "", "workload spec (.json) or recorded trace (.trc) to use instead of -bench")
	side := flag.String("cache", "D", "which cache to trace: I, D, or L2")
	out := flag.String("o", "", "output trace file for the cache event stream")
	record := flag.String("record", "", "output file for an instruction recording (replayable via -spec)")
	scale := flag.Float64("scale", 0.2, "workload scale")
	summarize := flag.String("summarize", "", "summarize an existing trace file instead of generating")
	check := flag.String("check", "", "validate one spec file or every spec in a directory, then exit")
	list := flag.Bool("list", false, "list the built-in benchmarks and exit")
	obs := telemetry.RegisterFlags(flag.CommandLine)
	flag.Parse()

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	stop, err := obs.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	switch {
	case *list:
		err = runList(os.Stdout)
	case *check != "":
		err = runCheck(os.Stdout, *check)
	case *summarize != "":
		err = runSummarize(*summarize)
	case *record != "":
		err = runRecord(*bench, *specPath, *record, *scale)
	default:
		err = runGenerate(ctx, *bench, *specPath, *side, *out, *scale)
	}
	if stopErr := stop(); err == nil {
		err = stopErr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func cacheID(side string) (trace.CacheID, error) {
	switch side {
	case "I":
		return trace.L1I, nil
	case "D":
		return trace.L1D, nil
	case "L2":
		return trace.L2, nil
	default:
		return 0, fmt.Errorf("%w %q (want I, D, or L2)", ErrUnknownCache, side)
	}
}

// resolveWorkload builds the workload a run traces: a spec file or
// recording when -spec is given, a built-in benchmark otherwise.
func resolveWorkload(bench, specPath string, scale float64) (workload.Workload, string, error) {
	if specPath != "" {
		if bench != "" {
			return nil, "", ErrConflictingSource
		}
		src, err := spec.LoadFile(specPath)
		if err != nil {
			return nil, "", err
		}
		w, err := src.Workload(scale)
		if err != nil {
			return nil, "", err
		}
		return w, src.ScenarioName(), nil
	}
	if bench == "" {
		bench = "gzip"
	}
	w, err := workload.New(bench, scale)
	if err != nil {
		return nil, "", err
	}
	return w, bench, nil
}

func runGenerate(ctx context.Context, bench, specPath, side, out string, scale float64) error {
	if out == "" {
		return fmt.Errorf("%w (-o)", ErrMissingOutput)
	}
	id, err := cacheID(side)
	if err != nil {
		return err
	}
	w, name, err := resolveWorkload(bench, specPath, scale)
	if err != nil {
		return err
	}
	hier, err := cache.NewHierarchy(cache.AlphaLike())
	if err != nil {
		return err
	}
	stream, res, err := cpu.RunToStreamContext(ctx, w, hier, cpu.DefaultConfig(), id)
	if err != nil {
		return err
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := trace.Write(f, stream); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("%s: %d %s events over %d cycles -> %s\n",
		name, stream.Len(), id, res.Cycles, out)
	return nil
}

// runRecord captures the workload's instruction stream as a replayable
// recording: feeding the recording back through -spec reproduces the
// exact same simulation inputs, independent of -scale.
func runRecord(bench, specPath, out string, scale float64) error {
	if out == "" {
		return fmt.Errorf("%w (-record)", ErrMissingOutput)
	}
	w, name, err := resolveWorkload(bench, specPath, scale)
	if err != nil {
		return err
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	n, err := spec.Record(f, w)
	if err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("%s: recorded %d instructions -> %s\n", name, n, out)
	return nil
}

// runCheck validates one spec file, or every spec and recording in a
// directory, printing each scenario's name and digest. Any invalid file
// fails the whole check (backs `make check-specs`).
func runCheck(w io.Writer, path string) error {
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	var srcs []spec.Source
	if info.IsDir() {
		if srcs, err = spec.LoadDir(path); err != nil {
			return err
		}
	} else {
		src, err := spec.LoadFile(path)
		if err != nil {
			return err
		}
		srcs = []spec.Source{src}
	}
	for _, src := range srcs {
		digest := src.ScenarioDigest()
		if len(digest) > 12 {
			digest = digest[:12]
		}
		fmt.Fprintf(w, "ok\t%s\t%s\n", src.ScenarioName(), digest)
	}
	if info.IsDir() {
		fmt.Fprintf(w, "%s: %d scenarios valid\n", filepath.Clean(path), len(srcs))
	}
	return nil
}

// runList prints the built-in benchmark inventory.
func runList(w io.Writer) error {
	names := workload.Names()
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	for _, name := range sorted {
		wl, err := workload.New(name, 1)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s\t%s\n", name, wl.Description())
	}
	return nil
}

func runSummarize(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	s, err := trace.Read(f)
	if err != nil {
		return err
	}
	var misses, loads, stores, fetches uint64
	frames := map[uint32]struct{}{}
	for _, e := range s.Events {
		if e.Miss {
			misses++
		}
		switch e.Kind {
		case trace.Load:
			loads++
		case trace.Store:
			stores++
		case trace.Fetch:
			fetches++
		}
		frames[e.Frame] = struct{}{}
	}
	fmt.Printf("%s:\n", path)
	fmt.Printf("  events:  %d (%d fetches, %d loads, %d stores)\n", s.Len(), fetches, loads, stores)
	fmt.Printf("  cycles:  %d\n", s.TotalCycles)
	fmt.Printf("  frames:  %d touched of %d\n", len(frames), s.NumFrames)
	if s.Len() > 0 {
		fmt.Printf("  misses:  %d (%.2f%%)\n", misses, 100*float64(misses)/float64(s.Len()))
	}
	return nil
}
