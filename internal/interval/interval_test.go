package interval

import (
	"encoding/json"
	"math/rand"
	"testing"
	"testing/quick"

	"leakbound/internal/sim/trace"
)

func mkEvent(cycle uint64, frame uint32) trace.Event {
	return trace.Event{Cycle: cycle, Frame: frame, Cache: trace.L1D, Kind: trace.Load}
}

func TestFlags(t *testing.T) {
	if !NLPrefetchable.Prefetchable() || !StridePrefetchable.Prefetchable() {
		t.Error("prefetch flags not prefetchable")
	}
	if Leading.Prefetchable() || Flags(0).Prefetchable() {
		t.Error("non-prefetch flags prefetchable")
	}
	if !Flags(0).Interior() || Leading.Interior() || Trailing.Interior() || Untouched.Interior() {
		t.Error("Interior() wrong")
	}
	if Flags(0).String() != "interior" {
		t.Errorf("zero flags = %q", Flags(0).String())
	}
	if got := (NLPrefetchable | StridePrefetchable).String(); got != "nl|stride" {
		t.Errorf("flags string = %q", got)
	}
	if got := Untouched.String(); got != "leading|trailing" {
		t.Errorf("untouched string = %q", got)
	}
}

func TestFlagsMarshalJSON(t *testing.T) {
	for _, c := range []struct {
		f    Flags
		want string
	}{
		{0, `"interior"`},
		{NLPrefetchable | Dirty, `"nl|dirty"`},
		{Untouched, `"leading|trailing"`},
	} {
		b, err := json.Marshal(c.f)
		if err != nil {
			t.Fatalf("Marshal(%v): %v", c.f, err)
		}
		if string(b) != c.want {
			t.Errorf("Marshal(%v) = %s, want %s", c.f, b, c.want)
		}
	}
}

func TestDistributionAdd(t *testing.T) {
	d := NewDistribution(4, 100)
	d.Add(5, 0, 3)
	d.Add(10000, Leading, 2) // sparse path
	d.Add(0, 0, 7)           // zero-length ignored
	d.Add(5, 0, 0)           // zero count ignored
	if d.NumIntervals() != 5 {
		t.Errorf("NumIntervals = %d, want 5", d.NumIntervals())
	}
	if d.Mass() != 5*3+10000*2 {
		t.Errorf("Mass = %d", d.Mass())
	}
}

func TestDistributionEachOrdered(t *testing.T) {
	d := NewDistribution(1, 1)
	d.Add(9000, 0, 1)
	d.Add(3, Leading, 2)
	d.Add(8500, NLPrefetchable, 1)
	d.Add(3, 0, 1)
	var got []Key
	d.Each(func(length uint64, flags Flags, count uint64) bool {
		got = append(got, Key{length, flags})
		return true
	})
	want := []Key{{3, 0}, {3, Leading}, {8500, NLPrefetchable}, {9000, 0}}
	if len(got) != len(want) {
		t.Fatalf("buckets = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestDistributionEachEarlyStop(t *testing.T) {
	d := NewDistribution(1, 1)
	d.Add(1, 0, 1)
	d.Add(2, 0, 1)
	n := 0
	d.Each(func(length uint64, flags Flags, count uint64) bool {
		n++
		return false
	})
	if n != 1 {
		t.Errorf("early stop visited %d buckets", n)
	}
}

func TestDistributionCountAndMass(t *testing.T) {
	d := NewDistribution(1, 1)
	d.Add(5, 0, 10)
	d.Add(100, NLPrefetchable, 4)
	d.Add(20000, Trailing, 1)
	long := d.Count(func(l uint64, f Flags) bool { return l > 50 })
	if long != 5 {
		t.Errorf("Count(long) = %d, want 5", long)
	}
	m := d.MassWhere(func(l uint64, f Flags) bool { return f.Prefetchable() })
	if m != 400 {
		t.Errorf("MassWhere(prefetchable) = %d, want 400", m)
	}
}

func TestDistributionMerge(t *testing.T) {
	a := NewDistribution(2, 50)
	a.Add(5, 0, 1)
	b := NewDistribution(3, 80)
	b.Add(5, 0, 2)
	b.Add(9999, Leading, 1)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.NumFrames != 5 || a.TotalCycles != 80 {
		t.Errorf("merged metadata: frames=%d cycles=%d", a.NumFrames, a.TotalCycles)
	}
	if a.NumIntervals() != 4 || a.Mass() != 5*3+9999 {
		t.Errorf("merged contents: n=%d mass=%d", a.NumIntervals(), a.Mass())
	}
	if err := a.Merge(nil); err == nil {
		t.Error("nil merge accepted")
	}
}

func TestCollectorValidation(t *testing.T) {
	if _, err := NewCollector(trace.CacheID(9), 4, nil); err == nil {
		t.Error("bad cache id accepted")
	}
	if _, err := NewCollector(trace.L1D, 0, nil); err == nil {
		t.Error("zero frames accepted")
	}
}

func TestCollectorBasicTimeline(t *testing.T) {
	c, err := NewCollector(trace.L1D, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Frame 0 accessed at cycles 10, 30, 31; frame 1 never accessed.
	for _, cy := range []uint64{10, 30, 31} {
		if err := c.Add(mkEvent(cy, 0)); err != nil {
			t.Fatal(err)
		}
	}
	d, err := c.Finish(100)
	if err != nil {
		t.Fatal(err)
	}
	type rec struct {
		l uint64
		f Flags
		n uint64
	}
	var got []rec
	d.Each(func(l uint64, f Flags, n uint64) bool {
		got = append(got, rec{l, f, n})
		return true
	})
	want := []rec{
		{1, 0, 1},           // 30 -> 31
		{10, Leading, 1},    // 0 -> 10
		{20, 0, 1},          // 10 -> 30
		{69, Trailing, 1},   // 31 -> 100
		{100, Untouched, 1}, // frame 1
	}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
	// Conservation: total mass = frames * cycles.
	if d.Mass() != 2*100 {
		t.Errorf("mass = %d, want 200", d.Mass())
	}
}

func TestCollectorFirstAccessAtZero(t *testing.T) {
	c, _ := NewCollector(trace.L1D, 1, nil)
	if err := c.Add(mkEvent(0, 0)); err != nil {
		t.Fatal(err)
	}
	d, err := c.Finish(50)
	if err != nil {
		t.Fatal(err)
	}
	// No leading gap; one trailing gap of 50.
	if d.NumIntervals() != 1 || d.Mass() != 50 {
		t.Errorf("n=%d mass=%d", d.NumIntervals(), d.Mass())
	}
}

func TestCollectorSimultaneousAccesses(t *testing.T) {
	c, _ := NewCollector(trace.L1D, 1, nil)
	c.Add(mkEvent(5, 0))
	c.Add(mkEvent(5, 0)) // zero-length interval: skipped
	c.Add(mkEvent(9, 0))
	d, err := c.Finish(10)
	if err != nil {
		t.Fatal(err)
	}
	if d.Mass() != 10 {
		t.Errorf("mass = %d, want 10 (conservation with simultaneous events)", d.Mass())
	}
}

func TestCollectorErrors(t *testing.T) {
	c, _ := NewCollector(trace.L1D, 2, nil)
	if err := c.Add(mkEvent(1, 5)); err == nil {
		t.Error("out-of-range frame accepted")
	}
	c.Add(mkEvent(10, 0))
	if err := c.Add(mkEvent(5, 0)); err == nil {
		t.Error("time travel accepted")
	}
	if _, err := c.Finish(5); err == nil {
		t.Error("horizon before last event accepted")
	}
	if _, err := c.Finish(20); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(mkEvent(30, 0)); err == nil {
		t.Error("Add after Finish accepted")
	}
	if _, err := c.Finish(30); err == nil {
		t.Error("double Finish accepted")
	}
}

func TestCollectorIgnoresOtherCaches(t *testing.T) {
	c, _ := NewCollector(trace.L1D, 1, nil)
	e := mkEvent(5, 0)
	e.Cache = trace.L1I
	if err := c.Add(e); err != nil {
		t.Fatal(err)
	}
	d, _ := c.Finish(10)
	// Only the untouched record.
	if d.NumIntervals() != 1 {
		t.Errorf("foreign event recorded: %d intervals", d.NumIntervals())
	}
}

// recordingClassifier checks the Classify-before-Observe contract.
type recordingClassifier struct {
	classified []uint64 // start cycles passed to Classify
	observed   int
	lastWasObs bool
	violation  bool
}

func (r *recordingClassifier) Classify(e trace.Event, start uint64) Flags {
	r.classified = append(r.classified, start)
	r.lastWasObs = false
	return NLPrefetchable
}

func (r *recordingClassifier) Observe(e trace.Event) {
	r.observed++
	r.lastWasObs = true
}

func TestCollectorClassifierContract(t *testing.T) {
	rc := &recordingClassifier{}
	c, _ := NewCollector(trace.L1D, 1, rc)
	c.Add(mkEvent(10, 0))
	c.Add(mkEvent(50, 0))
	d, err := c.Finish(60)
	if err != nil {
		t.Fatal(err)
	}
	if rc.observed != 2 {
		t.Errorf("Observe called %d times, want 2", rc.observed)
	}
	if len(rc.classified) != 1 || rc.classified[0] != 10 {
		t.Errorf("Classify calls = %v, want [10]", rc.classified)
	}
	// The interior interval must carry the classifier's flag.
	n := d.Count(func(l uint64, f Flags) bool { return f == NLPrefetchable })
	if n != 1 {
		t.Errorf("flagged intervals = %d, want 1", n)
	}
}

// TestConservationProperty: for random event streams, per-frame mass always
// telescopes to frames * totalCycles.
func TestConservationProperty(t *testing.T) {
	f := func(seed int64, framesRaw, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		frames := uint32(framesRaw)%16 + 1
		n := int(nRaw) % 200
		c, err := NewCollector(trace.L1D, frames, nil)
		if err != nil {
			return false
		}
		cycle := uint64(0)
		for i := 0; i < n; i++ {
			cycle += uint64(rng.Intn(50))
			if err := c.Add(mkEvent(cycle, uint32(rng.Intn(int(frames))))); err != nil {
				return false
			}
		}
		total := cycle + uint64(rng.Intn(100)) + 1
		d, err := c.Finish(total)
		if err != nil {
			return false
		}
		return d.Mass() == uint64(frames)*total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestChunkingInvariance: splitting a stream across two collectors of the
// same shape is NOT the invariant (state is per-collector); instead verify
// that processing the same stream twice yields identical distributions.
func TestDeterministicCollection(t *testing.T) {
	build := func() *Distribution {
		rng := rand.New(rand.NewSource(99))
		c, _ := NewCollector(trace.L1D, 8, nil)
		cycle := uint64(0)
		for i := 0; i < 500; i++ {
			cycle += uint64(rng.Intn(20))
			c.Add(mkEvent(cycle, uint32(rng.Intn(8))))
		}
		d, _ := c.Finish(cycle + 10)
		return d
	}
	a, b := build(), build()
	if a.Mass() != b.Mass() || a.NumIntervals() != b.NumIntervals() {
		t.Fatal("non-deterministic collection")
	}
	var bufA, bufB []Key
	a.Each(func(l uint64, f Flags, n uint64) bool { bufA = append(bufA, Key{l, f}); return true })
	b.Each(func(l uint64, f Flags, n uint64) bool { bufB = append(bufB, Key{l, f}); return true })
	if len(bufA) != len(bufB) {
		t.Fatal("bucket sets differ")
	}
	for i := range bufA {
		if bufA[i] != bufB[i] {
			t.Fatal("bucket order differs")
		}
	}
}

func BenchmarkCollectorAdd(b *testing.B) {
	c, _ := NewCollector(trace.L1D, 1024, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Add(mkEvent(uint64(i), uint32(i%1024)))
	}
}

func BenchmarkDistributionEach(b *testing.B) {
	d := NewDistribution(1024, 1<<20)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100000; i++ {
		d.Add(uint64(rng.Intn(20000)+1), Flags(rng.Intn(4)), 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var total uint64
		d.Each(func(l uint64, f Flags, n uint64) bool {
			total += n
			return true
		})
	}
}
