package interval

// Sharded collection: the per-frame independence of interval extraction
// (the appendix's lower-envelope argument treats intervals independently)
// means a cache's frames can be partitioned across workers. The producer —
// cpu.Run's sink goroutine — keeps everything that genuinely needs global
// stream order (cycle monotonicity checks and prefetch classification) and
// routes each event, with its already-computed prefetch flags, to the shard
// owning its frame over a single-producer/single-consumer queue. Shards
// own disjoint frame sets, so they never share mutable state; their
// per-shard distributions recombine with Distribution.Merge into a result
// bit-identical to the sequential Collector, preserving the conservation
// invariant (summed lengths == frames x cycles).

import (
	"errors"
	"fmt"
	"sync"

	"leakbound/internal/sim/trace"
	"leakbound/internal/telemetry"
)

// shardBatchSize amortizes channel operations: the producer ships events
// to a shard in batches of this many.
const shardBatchSize = 256

// shardQueueDepth bounds each SPSC queue to a few in-flight batches; the
// producer blocks (back-pressure) rather than buffering unboundedly.
const shardQueueDepth = 8

// shardEvent is one routed event: the trace event with its frame remapped
// to the shard-local index, plus the producer-computed prefetch flags.
type shardEvent struct {
	e   trace.Event
	pre Flags
}

// ShardedCollector is a drop-in parallel replacement for Collector: same
// Add/Finish contract on the producer side, with collection fanned out
// over shard workers. With one shard it degenerates to a synchronous
// in-line collector (no goroutines, no queues), so callers can size it
// with GOMAXPROCS unconditionally.
//
// Add and Finish must be called from a single goroutine, exactly like
// Collector — cpu.Run's sink contract already guarantees that. Close
// releases the shard workers without producing a distribution; it is the
// cancellation path and is safe to call at any point, including after
// Finish (where it is a no-op).
type ShardedCollector struct {
	cache      trace.CacheID
	numFrames  uint32
	classifier Classifier

	// lastAccess mirrors, on the producer side, each frame's previous
	// access cycle (+1; 0 = never) — needed only to call Classify with the
	// same interval start the sequential collector would.
	lastAccess []uint64

	shards  []*Collector
	queues  []chan []shardEvent
	pending [][]shardEvent
	workers sync.WaitGroup
	// errs[i] is written only by shard worker i before workers.Done and
	// read only after workers.Wait, so it needs no lock.
	errs []error

	lastCycle uint64
	events    uint64
	closed    bool
	finished  bool
}

// NewShardedCollector creates a collector for the given cache whose
// numFrames physical lines are partitioned round-robin (frame mod shards)
// across the given number of shard workers. classifier may be nil; when
// present it runs on the producer goroutine in global stream order, so
// sharding never changes the flags an interval receives. shards is clamped
// to [1, numFrames].
func NewShardedCollector(cacheID trace.CacheID, numFrames uint32, classifier Classifier, shards int) (*ShardedCollector, error) {
	if !cacheID.Valid() {
		return nil, fmt.Errorf("interval: invalid cache id %d", cacheID)
	}
	if numFrames == 0 {
		return nil, errors.New("interval: zero frames")
	}
	if shards < 1 {
		shards = 1
	}
	if uint32(shards) > numFrames {
		shards = int(numFrames)
	}
	sc := &ShardedCollector{
		cache:      cacheID,
		numFrames:  numFrames,
		classifier: classifier,
		lastAccess: make([]uint64, numFrames),
		shards:     make([]*Collector, shards),
		errs:       make([]error, shards),
	}
	n := uint32(shards)
	for i := range sc.shards {
		// Shard i owns global frames {i, i+n, i+2n, ...}; the local frame
		// index is frame/n. Local frame count = |{g < numFrames : g%n == i}|.
		local := (numFrames - uint32(i) + n - 1) / n
		col, err := NewCollector(cacheID, local, nil)
		if err != nil {
			return nil, err
		}
		sc.shards[i] = col
	}
	if shards > 1 {
		sc.queues = make([]chan []shardEvent, shards)
		sc.pending = make([][]shardEvent, shards)
		for i := range sc.queues {
			sc.queues[i] = make(chan []shardEvent, shardQueueDepth)
			sc.pending[i] = make([]shardEvent, 0, shardBatchSize)
		}
		sc.workers.Add(shards)
		for i := range sc.queues {
			go sc.worker(i)
		}
		telemetry.Default().Scope("interval").Counter("shard_workers_started").Add(uint64(shards))
	}
	return sc, nil
}

// Shards returns the number of shard workers (1 means in-line collection).
func (sc *ShardedCollector) Shards() int { return len(sc.shards) }

// worker drains shard i's queue. After the first error the worker keeps
// draining (so the producer never blocks) but stops collecting.
func (sc *ShardedCollector) worker(i int) {
	defer sc.workers.Done()
	col := sc.shards[i]
	for batch := range sc.queues[i] {
		if sc.errs[i] != nil {
			continue
		}
		for _, ev := range batch {
			if err := col.add(ev.e, ev.pre, false); err != nil {
				sc.errs[i] = err
				break
			}
		}
	}
}

// Add consumes one event on the producer goroutine: order and range checks,
// classification in stream order, then routing to the owning shard. Events
// for other caches are ignored, exactly like Collector.Add.
func (sc *ShardedCollector) Add(e trace.Event) error {
	if sc.closed {
		return fmt.Errorf("%w: Add after Finish", ErrFinished)
	}
	if e.Cache != sc.cache {
		return nil
	}
	if e.Frame >= sc.numFrames {
		return fmt.Errorf("%w: frame %d (have %d)", ErrFrameRange, e.Frame, sc.numFrames)
	}
	if e.Cycle < sc.lastCycle {
		return fmt.Errorf("%w: cycle %d before %d", ErrOutOfOrder, e.Cycle, sc.lastCycle)
	}
	sc.lastCycle = e.Cycle
	sc.events++

	// Classification must see the exact (event, interval-start) pairs and
	// Observe order the sequential collector would produce.
	var pre Flags
	if sc.classifier != nil {
		if prev := sc.lastAccess[e.Frame]; prev != 0 && e.Cycle > prev-1 {
			pre = sc.classifier.Classify(e, prev-1) & (NLPrefetchable | StridePrefetchable)
		}
		sc.classifier.Observe(e)
	}
	sc.lastAccess[e.Frame] = e.Cycle + 1

	n := uint32(len(sc.shards))
	if n == 1 {
		return sc.shards[0].add(e, pre, false)
	}
	si := e.Frame % n
	le := e
	le.Frame = e.Frame / n
	sc.pending[si] = append(sc.pending[si], shardEvent{e: le, pre: pre})
	if len(sc.pending[si]) >= shardBatchSize {
		sc.queues[si] <- sc.pending[si]
		sc.pending[si] = make([]shardEvent, 0, shardBatchSize)
	}
	return nil
}

// drain flushes pending batches, closes the queues and joins the workers.
// Idempotent; a no-op for the single-shard in-line configuration.
func (sc *ShardedCollector) drain() {
	if sc.closed {
		return
	}
	sc.closed = true
	for i := range sc.queues {
		if len(sc.pending[i]) > 0 {
			sc.queues[i] <- sc.pending[i]
			sc.pending[i] = nil
		}
		close(sc.queues[i])
	}
	sc.workers.Wait()
}

// Close tears the collector down without producing a distribution — the
// cancellation path. It flushes the partial event count to telemetry so an
// aborted run still leaves an audit trail, and releases every shard
// worker. Safe to call multiple times and after Finish.
func (sc *ShardedCollector) Close() {
	if sc.finished {
		return
	}
	wasClosed := sc.closed
	sc.drain()
	if !wasClosed {
		scope := telemetry.Default().Scope("interval")
		scope.Counter("collectors_aborted").Add(1)
		scope.Counter("events_discarded").Add(sc.events)
	}
}

// Finish closes all trailing gaps at the simulation horizon on every shard
// and merges the per-shard distributions. The merged result is
// bit-identical to what a sequential Collector over the same stream
// produces (same buckets, same NumFrames, same TotalCycles), so callers
// can switch shard counts freely without perturbing any downstream number.
func (sc *ShardedCollector) Finish(totalCycles uint64) (*Distribution, error) {
	if sc.finished {
		return nil, fmt.Errorf("%w: Finish called twice", ErrFinished)
	}
	if totalCycles < sc.lastCycle {
		return nil, fmt.Errorf("%w: horizon %d, last event %d", ErrHorizon, totalCycles, sc.lastCycle)
	}
	sc.drain()
	sc.finished = true
	for i, err := range sc.errs {
		if err != nil {
			return nil, fmt.Errorf("interval: shard %d: %w", i, err)
		}
	}
	merged := NewDistribution(0, totalCycles)
	for _, col := range sc.shards {
		d, err := col.Finish(totalCycles)
		if err != nil {
			return nil, err
		}
		if err := merged.Merge(d); err != nil {
			return nil, err
		}
	}
	telemetry.Default().Scope("interval").Counter("sharded_finished").Add(1)
	return merged, nil
}
