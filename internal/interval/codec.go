package interval

// Binary serialization for Distributions: the experiment harness caches
// per-benchmark distributions on disk so that repeated runs (and the
// Figure 7 / Table 2 parameter sweeps across sessions) skip re-simulation.
// The format is a little-endian header followed by varint-delta-encoded
// (length, flags, count) records in Each() order, which is ascending and
// therefore delta-friendly.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

var distMagic = [8]byte{'L', 'K', 'B', 'D', 'I', 'S', 'T', '1'}

// WriteDistribution serializes d to w.
func WriteDistribution(w io.Writer, d *Distribution) error {
	if d == nil {
		return errors.New("interval: nil distribution")
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(distMagic[:]); err != nil {
		return err
	}
	var buckets uint64
	d.Each(func(length uint64, flags Flags, count uint64) bool {
		buckets++
		return true
	})
	var hdr [8 + 8 + 4]byte
	binary.LittleEndian.PutUint64(hdr[0:], buckets)
	binary.LittleEndian.PutUint64(hdr[8:], d.TotalCycles)
	binary.LittleEndian.PutUint32(hdr[16:], d.NumFrames)
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var tmp [binary.MaxVarintLen64]byte
	var prevLen uint64
	var werr error
	d.Each(func(length uint64, flags Flags, count uint64) bool {
		n := binary.PutUvarint(tmp[:], length-prevLen)
		if _, err := bw.Write(tmp[:n]); err != nil {
			werr = err
			return false
		}
		prevLen = length
		if err := bw.WriteByte(byte(flags)); err != nil {
			werr = err
			return false
		}
		n = binary.PutUvarint(tmp[:], count)
		if _, err := bw.Write(tmp[:n]); err != nil {
			werr = err
			return false
		}
		return true
	})
	if werr != nil {
		return werr
	}
	return bw.Flush()
}

// ReadDistribution deserializes a distribution written by
// WriteDistribution.
func ReadDistribution(r io.Reader) (*Distribution, error) {
	br := bufio.NewReader(r)
	var m [8]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("interval: reading magic: %w", err)
	}
	if m != distMagic {
		return nil, errors.New("interval: bad magic, not a distribution file")
	}
	var hdr [20]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("interval: reading header: %w", err)
	}
	buckets := binary.LittleEndian.Uint64(hdr[0:])
	const maxBuckets = 1 << 30
	if buckets > maxBuckets {
		return nil, fmt.Errorf("interval: implausible bucket count %d", buckets)
	}
	d := NewDistribution(binary.LittleEndian.Uint32(hdr[16:]), binary.LittleEndian.Uint64(hdr[8:]))
	var length uint64
	for i := uint64(0); i < buckets; i++ {
		delta, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("interval: bucket %d length: %w", i, err)
		}
		length += delta
		fb, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("interval: bucket %d flags: %w", i, err)
		}
		if uint64(fb) >= flagSpace {
			return nil, fmt.Errorf("interval: bucket %d has invalid flags %#x", i, fb)
		}
		count, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("interval: bucket %d count: %w", i, err)
		}
		if count == 0 || length == 0 {
			return nil, fmt.Errorf("interval: bucket %d has zero length or count", i)
		}
		d.Add(length, Flags(fb), count)
	}
	return d, nil
}

// Equal reports whether two distributions contain identical buckets and
// metadata; used by tests and cache validation.
func (d *Distribution) Equal(other *Distribution) bool {
	if other == nil {
		return false
	}
	if d.NumFrames != other.NumFrames || d.TotalCycles != other.TotalCycles ||
		d.numIntervals != other.numIntervals || d.mass != other.mass {
		return false
	}
	type rec struct {
		l uint64
		f Flags
		c uint64
	}
	var a, b []rec
	d.Each(func(l uint64, f Flags, c uint64) bool { a = append(a, rec{l, f, c}); return true })
	other.Each(func(l uint64, f Flags, c uint64) bool { b = append(b, rec{l, f, c}); return true })
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
