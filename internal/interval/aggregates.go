package interval

// Prefix-sum sufficient statistics for the evaluation fast path. Every
// builtin policy's IntervalEnergy is piecewise affine in the interval
// length for a fixed flags value (internal/leakage's closed forms), so
// evaluating a policy over a distribution reduces to, per flags class and
// per affine piece, "how many intervals and how much mass fall in this
// length range" — a binary search into sorted prefix arrays instead of a
// walk over every bucket. Aggregates is that summary: built once per
// Distribution (the Suite caches it next to the distribution itself) and
// then shared read-only by any number of concurrent sweep points.

import "sort"

// FlagsClass is the prefix-sum summary of one flags value: the distinct
// interval lengths recorded under that flags combination in ascending
// order, with cumulative interval counts and cumulative mass
// (sum of length*count, exact in uint64). The leading/trailing/untouched
// decompositions the policy formulas dispatch on are preserved exactly,
// because the dispatch key — the flags value — is the class key.
type FlagsClass struct {
	// Flags is the class key every bucket in this class carries.
	Flags Flags
	// Lengths holds the distinct bucket lengths, strictly ascending.
	Lengths []uint64
	// CumCount[i] is the total interval count over Lengths[0..i].
	CumCount []uint64
	// CumMass[i] is the total mass (sum length*count) over Lengths[0..i].
	CumMass []uint64
}

// TotalCount returns the class's interval count.
func (c *FlagsClass) TotalCount() uint64 {
	if len(c.CumCount) == 0 {
		return 0
	}
	return c.CumCount[len(c.CumCount)-1]
}

// TotalMass returns the class's mass (summed lengths).
func (c *FlagsClass) TotalMass() uint64 {
	if len(c.CumMass) == 0 {
		return 0
	}
	return c.CumMass[len(c.CumMass)-1]
}

// Prefix returns the interval count and mass of the buckets whose length,
// converted to float64, is <= cut — the half-open complement of the
// policies' strict "length > threshold" branch conditions, so a piecewise
// policy evaluates each piece as a difference of two Prefix queries.
// Comparison happens in float64 exactly as the reference path compares
// float64(length) against its thresholds, keeping the two paths'
// branch decisions aligned bucket for bucket.
func (c *FlagsClass) Prefix(cut float64) (count, mass uint64) {
	// Inline binary search (sort.Search semantics: smallest i with
	// float64(Lengths[i]) > cut) — Prefix runs twice per policy piece per
	// flags class on the closed-form fast path, and the sort.Search
	// closure capturing c and cut was the path's one allocation site.
	lo, hi := 0, len(c.Lengths)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if float64(c.Lengths[mid]) > cut {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo == 0 {
		return 0, 0
	}
	return c.CumCount[lo-1], c.CumMass[lo-1]
}

// Aggregates is an immutable prefix-sum summary of a Distribution,
// organized per flags class. Build it with NewAggregates once the
// distribution is final (no Add/Merge afterwards); it is then safe for
// concurrent use.
type Aggregates struct {
	src     *Distribution
	classes []FlagsClass

	numFrames    uint32
	totalCycles  uint64
	numIntervals uint64
	mass         uint64
}

// NewAggregates builds the prefix-sum summary of d in one ordered walk.
// It returns nil for a nil distribution. The walk compacts d's sparse
// tail as a side effect, so building the aggregates on the goroutine
// that finished the distribution also makes later concurrent Each walks
// race-free by construction.
func NewAggregates(d *Distribution) *Aggregates {
	if d == nil {
		return nil
	}
	a := &Aggregates{
		src:          d,
		numFrames:    d.NumFrames,
		totalCycles:  d.TotalCycles,
		numIntervals: d.NumIntervals(),
		mass:         d.Mass(),
	}
	var idx [flagSpace]int
	for i := range idx {
		idx[i] = -1
	}
	// Each yields ascending (length, flags); collecting per class keeps
	// every class's Lengths ascending without any re-sort.
	d.Each(func(length uint64, flags Flags, count uint64) bool {
		j := idx[flags]
		if j < 0 {
			j = len(a.classes)
			idx[flags] = j
			a.classes = append(a.classes, FlagsClass{Flags: flags})
		}
		c := &a.classes[j]
		cumCount, cumMass := uint64(0), uint64(0)
		if n := len(c.Lengths); n > 0 {
			cumCount, cumMass = c.CumCount[n-1], c.CumMass[n-1]
		}
		c.Lengths = append(c.Lengths, length)
		c.CumCount = append(c.CumCount, cumCount+count)
		c.CumMass = append(c.CumMass, cumMass+length*count)
		return true
	})
	// Classes surface in first-appearance order of the length-major walk;
	// fix them to ascending flags value so every consumer folds classes in
	// one deterministic order.
	sort.Slice(a.classes, func(i, j int) bool { return a.classes[i].Flags < a.classes[j].Flags })
	return a
}

// Source returns the distribution the aggregates were built from — the
// reference path for policies without a closed form.
func (a *Aggregates) Source() *Distribution { return a.src }

// Classes returns the per-flags summaries in ascending flags order.
// Callers must not mutate the returned slice.
func (a *Aggregates) Classes() []FlagsClass { return a.classes }

// NumFrames returns the source distribution's frame count.
func (a *Aggregates) NumFrames() uint32 { return a.numFrames }

// TotalCycles returns the source distribution's time horizon.
func (a *Aggregates) TotalCycles() uint64 { return a.totalCycles }

// NumIntervals returns the total recorded interval count.
func (a *Aggregates) NumIntervals() uint64 { return a.numIntervals }

// Mass returns the summed interval lengths (frame-cycles).
func (a *Aggregates) Mass() uint64 { return a.mass }
