package interval_test

import (
	"fmt"

	"leakbound/internal/interval"
	"leakbound/internal/sim/trace"
)

// A frame's timeline decomposes exactly into leading gap, interior
// intervals, and trailing gap — the conservation invariant behind all
// energy accounting.
func ExampleCollector() {
	col, err := interval.NewCollector(trace.L1D, 1, nil)
	if err != nil {
		panic(err)
	}
	for _, cycle := range []uint64{100, 250, 900} {
		if err := col.Add(trace.Event{Cycle: cycle, Frame: 0, Cache: trace.L1D, Kind: trace.Load}); err != nil {
			panic(err)
		}
	}
	dist, err := col.Finish(1000)
	if err != nil {
		panic(err)
	}
	dist.Each(func(length uint64, flags interval.Flags, count uint64) bool {
		fmt.Printf("%4d cycles x%d (%s)\n", length, count, flags)
		return true
	})
	fmt.Printf("mass %d = frames x cycles %d\n", dist.Mass(), 1*1000)
	// Each iterates ascending by (length, flags), so both 100-cycle edge
	// gaps come first.
	// Output:
	//  100 cycles x1 (leading)
	//  100 cycles x1 (trailing)
	//  150 cycles x1 (interior)
	//  650 cycles x1 (interior)
	// mass 1000 = frames x cycles 1000
}

// Distributions answer aggregate questions directly.
func ExampleDistribution_MassWhere() {
	d := interval.NewDistribution(4, 10000)
	d.Add(500, 0, 10)
	d.Add(5000, interval.NLPrefetchable, 2)
	long := d.MassWhere(func(l uint64, f interval.Flags) bool { return l > 1057 })
	fmt.Printf("sleepable mass: %d of %d\n", long, d.Mass())
	// Output:
	// sleepable mass: 10000 of 15000
}
