package interval

import "errors"

// Sentinel errors for the conditions callers are expected to branch on.
// They are always returned wrapped (via %w) with situational detail, so
// match them with errors.Is rather than comparing messages.
var (
	// ErrOutOfOrder reports an event whose cycle precedes an already
	// accepted event; collectors require non-decreasing cycle order.
	ErrOutOfOrder = errors.New("interval: event out of cycle order")

	// ErrFinished reports use of a collector after Finish.
	ErrFinished = errors.New("interval: collector already finished")

	// ErrFrameRange reports an event whose frame index does not exist in
	// the collected cache.
	ErrFrameRange = errors.New("interval: frame out of range")

	// ErrNilDistribution reports a Merge with a nil operand.
	ErrNilDistribution = errors.New("interval: nil distribution")

	// ErrHorizon reports a Finish horizon earlier than the last event.
	ErrHorizon = errors.New("interval: horizon before last event")
)
