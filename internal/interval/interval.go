// Package interval implements the cache access interval analysis at the
// heart of the limit study (Section 3.1 of the paper): breaking each cache
// frame's lifetime into the stretches between consecutive accesses, and
// summarizing those stretches into a compact distribution that the policy
// engine (internal/leakage) evaluates.
//
// An interval is attributed to a physical cache frame — leakage is per
// line of SRAM, regardless of which memory block occupies it — and a
// frame's timeline decomposes exactly as:
//
//	leading gap (cycle 0 .. first access)
//	interior intervals (access .. next access)
//	trailing gap (last access .. end of simulation)
//
// so the summed lengths over a frame always equal the simulated cycle
// count, which is the package's central conservation invariant.
package interval

import (
	"cmp"
	"errors"
	"fmt"
	"slices"
	"sort"
	"strconv"

	"leakbound/internal/sim/stream"
	"leakbound/internal/sim/trace"
	"leakbound/internal/telemetry"
)

// Flags annotate an interval with properties the policies care about.
type Flags uint8

const (
	// NLPrefetchable marks an interior interval whose closing access was
	// predictable by next-line prefetching (Section 5.1: an access to the
	// preceding cache line occurred within the interval).
	NLPrefetchable Flags = 1 << iota
	// StridePrefetchable marks an interval predictable by per-PC
	// stride prefetching (Farkas-style: same stride seen at least twice).
	StridePrefetchable
	// Leading marks the gap from cycle 0 to a frame's first access. Its
	// re-fetch is the compulsory fill the baseline pays too, so sleep
	// policies close it without the induced-miss energy.
	Leading
	// Trailing marks the gap from a frame's last access to the end of the
	// simulation; nothing re-fetches after it.
	Trailing
	// Dirty marks an interval during which the frame held modified data:
	// gating the line (sleep) first requires a write-back, which costs
	// dynamic energy. State-preserving drowsy mode does not. The paper
	// does not model this cost; leakbound tracks it as an extension
	// (see the write-back ablation in EXPERIMENTS.md).
	Dirty
	// DeadEnd marks an interval closed by a miss: the block that rested
	// in the frame during the gap was never referenced again (it was
	// evicted by the closing fill), so the gap was a dead period in the
	// cache-decay sense (Section 3.1's live/dead distinction). The paper
	// argues dead periods add little beyond interval length for an
	// optimal policy; the live/dead experiment verifies that claim.
	DeadEnd
)

// Untouched marks a frame that was never accessed: one full-length gap.
const Untouched = Leading | Trailing

// Prefetchable reports whether either prefetch flag is set.
func (f Flags) Prefetchable() bool {
	return f&(NLPrefetchable|StridePrefetchable) != 0
}

// Interior reports whether the interval is a true access-to-access
// interval (neither leading nor trailing).
func (f Flags) Interior() bool { return f&(Leading|Trailing) == 0 }

// String implements fmt.Stringer.
func (f Flags) String() string {
	if f == 0 {
		return "interior"
	}
	s := ""
	add := func(name string) {
		if s != "" {
			s += "|"
		}
		s += name
	}
	if f&NLPrefetchable != 0 {
		add("nl")
	}
	if f&StridePrefetchable != 0 {
		add("stride")
	}
	if f&Leading != 0 {
		add("leading")
	}
	if f&Trailing != 0 {
		add("trailing")
	}
	if f&Dirty != 0 {
		add("dirty")
	}
	if f&DeadEnd != 0 {
		add("dead")
	}
	return s
}

// MarshalJSON implements json.Marshaler, encoding the same readable form
// String produces ("interior", "nl|leading", ...) so API payloads carry
// names rather than a bitmask clients would have to decode.
func (f Flags) MarshalJSON() ([]byte, error) {
	return strconv.AppendQuote(nil, f.String()), nil
}

// Key identifies one (length, flags) bucket in a distribution.
type Key struct {
	Length uint64
	Flags  Flags
}

// Distribution is a multiset of intervals, compactly stored as counts per
// (length, flags). Short lengths — the overwhelming majority — live in
// dense per-flag rows, allocated lazily the first time a flag combination
// appears (a real run uses a dozen of the 64 combinations, so the old
// always-allocated 8192x64 table wasted both the 4MB zeroing and the
// cache locality); the long tail lives in an open-addressed sparse table.
type Distribution struct {
	NumFrames   uint32
	TotalCycles uint64

	rows    [flagSpace][]uint64 // rows[flags][length] for length < denseLimit; nil until used
	maxLen  [flagSpace]uint32   // highest populated length per row, bounds iteration
	present []uint8             // flags with non-nil rows, ascending

	// tail holds the long buckets (length >= denseLimit) as an append log
	// of packed (length<<6|flags, count) pairs, sorted and merged lazily by
	// compact. Long interval lengths are nearly all distinct, so a hash
	// table buys no dedup during collection and costs a cache-missing probe
	// per Add plus rehash churn; appending is a sequential store, and the
	// one sort at read time replaces the sort Each needed anyway.
	tail      []tailBucket
	tailClean int // len(tail) when last compacted; == len(tail) means sorted+merged

	numIntervals uint64 // total recorded intervals (all kinds)
	mass         uint64 // sum of length*count
}

const (
	denseLimit = 8192
	flagSpace  = 64 // nl|stride|leading|trailing|dirty|deadend fit in 6 bits
)

// tailBucket is one long bucket: key = length<<6 | flags, so numeric key
// order IS (length, flags) order.
type tailBucket struct{ key, count uint64 }

// compact sorts the tail log and merges duplicate keys, making it a
// deterministic ascending bucket list. Idempotent and cheap when nothing
// was appended since the last call.
func (d *Distribution) compact() {
	if d.tailClean == len(d.tail) {
		return
	}
	slices.SortFunc(d.tail, func(a, b tailBucket) int { return cmp.Compare(a.key, b.key) })
	out := d.tail[:0]
	for _, b := range d.tail {
		if n := len(out); n > 0 && out[n-1].key == b.key {
			out[n-1].count += b.count
			continue
		}
		out = append(out, b)
	}
	d.tail = out
	d.tailClean = len(out)
}

// NewDistribution creates an empty distribution for a cache with the given
// frame count and time horizon.
func NewDistribution(numFrames uint32, totalCycles uint64) *Distribution {
	return &Distribution{
		NumFrames:   numFrames,
		TotalCycles: totalCycles,
	}
}

// row returns the dense row for flags, sized to index need, growing it
// geometrically. Rows start small and double as longer intervals appear:
// most flag combinations only ever see short intervals, and keeping their
// rows at a few cache lines (instead of an eager 64KB each) is what keeps
// the per-event row[length] increment resident in cache.
func (d *Distribution) row(flags Flags, need uint64) []uint64 {
	r := d.rows[flags]
	if r == nil {
		i := sort.Search(len(d.present), func(i int) bool { return d.present[i] >= uint8(flags) })
		d.present = append(d.present, 0)
		copy(d.present[i+1:], d.present[i:])
		d.present[i] = uint8(flags)
	}
	size := uint64(64)
	for size <= need {
		size *= 2
	}
	if size > denseLimit {
		size = denseLimit
	}
	grown := make([]uint64, size)
	copy(grown, r)
	d.rows[flags] = grown
	return grown
}

// Add records count intervals of the given length and flags.
func (d *Distribution) Add(length uint64, flags Flags, count uint64) {
	if count == 0 || length == 0 {
		return
	}
	d.numIntervals += count
	d.mass += length * count
	if length < denseLimit {
		row := d.rows[flags]
		if uint64(len(row)) <= length {
			row = d.row(flags, length)
		}
		row[length] += count
		if uint32(length) > d.maxLen[flags] {
			d.maxLen[flags] = uint32(length)
		}
		return
	}
	d.tail = append(d.tail, tailBucket{length<<6 | uint64(flags), count})
}

// NumIntervals returns the number of recorded intervals.
func (d *Distribution) NumIntervals() uint64 { return d.numIntervals }

// Mass returns the summed interval lengths (frame-cycles). When the
// distribution was built by a Collector, Mass == NumFrames * TotalCycles.
func (d *Distribution) Mass() uint64 { return d.mass }

// Each calls fn for every (length, flags, count) bucket in deterministic
// order: ascending length, ties broken by ascending flags value — i.e.
// lexicographic (length, flags). Within one flags class the lengths are
// therefore strictly ascending, which is the invariant the prefix-sum
// aggregate builder (NewAggregates) and the bit-identical reduction
// discipline both depend on. The order is independent of insertion order,
// of Merge (rows add positionally; tail logs concatenate and re-sort on
// the next walk), and of compact (sorting by the packed length<<6|flags
// key IS the (length, flags) order; dense lengths are all below the tail's
// denseLimit floor, so the dense walk strictly precedes the tail walk).
// TestEachOrderDeterministic pins this. Iteration stops if fn returns
// false.
//
// The first Each after new tail appends compacts the tail in place, so it
// must not race with other walks; walk once (e.g. via NewAggregates) on
// the goroutine that finished the distribution before sharing it.
func (d *Distribution) Each(fn func(length uint64, flags Flags, count uint64) bool) {
	var max uint64
	for _, f := range d.present {
		if l := uint64(d.maxLen[f]); l > max {
			max = l
		}
	}
	for length := uint64(1); length <= max; length++ {
		for _, f := range d.present {
			if uint32(length) > d.maxLen[f] {
				continue
			}
			if c := d.rows[f][length]; c > 0 {
				if !fn(length, Flags(f), c) {
					return
				}
			}
		}
	}
	d.compact()
	for _, b := range d.tail {
		if !fn(b.key>>6, Flags(b.key&(flagSpace-1)), b.count) {
			return
		}
	}
}

// Merge folds other into d. Frame counts add — the operands are treated as
// disjoint frame populations observed over the same run, which covers both
// uses: recombining per-shard distributions from a ShardedCollector
// (bit-identical to the unsharded result, since bucket counts, interval
// counts and mass are all additive) and aggregating benchmarks for
// suite-wide views. Time horizons are maxed so the conservation invariant
// (Mass == NumFrames x TotalCycles) survives merging same-horizon shards.
//
// Merge adds rows directly rather than iterating buckets through Each, so
// folding a shard in costs a few row sweeps, not a full ordered walk.
func (d *Distribution) Merge(other *Distribution) error {
	if other == nil {
		return fmt.Errorf("%w: merge operand", ErrNilDistribution)
	}
	d.NumFrames += other.NumFrames
	if d.TotalCycles < other.TotalCycles {
		d.TotalCycles = other.TotalCycles
	}
	for _, f := range other.present {
		src := other.rows[f]
		n := uint64(other.maxLen[f])
		dst := d.rows[f]
		if uint64(len(dst)) <= n {
			dst = d.row(Flags(f), n)
		}
		for l := uint64(1); l <= n; l++ {
			dst[l] += src[l]
		}
		if other.maxLen[f] > d.maxLen[f] {
			d.maxLen[f] = other.maxLen[f]
		}
	}
	d.tail = append(d.tail, other.tail...)
	d.numIntervals += other.numIntervals
	d.mass += other.mass
	return nil
}

// Count returns the number of intervals matching the predicate.
func (d *Distribution) Count(pred func(length uint64, flags Flags) bool) uint64 {
	var n uint64
	d.Each(func(length uint64, flags Flags, count uint64) bool {
		if pred(length, flags) {
			n += count
		}
		return true
	})
	return n
}

// MassWhere returns the summed lengths of intervals matching the predicate.
func (d *Distribution) MassWhere(pred func(length uint64, flags Flags) bool) uint64 {
	var m uint64
	d.Each(func(length uint64, flags Flags, count uint64) bool {
		if pred(length, flags) {
			m += length * count
		}
		return true
	})
	return m
}

// Classifier flags interval closings for prefetchability. Implementations
// live in internal/prefetch; the zero classifier (nil) flags nothing.
type Classifier interface {
	// Classify is called when an access at event e closes an interval that
	// opened at cycle start, before Observe sees e. It returns the
	// prefetch flags for that interval.
	Classify(e trace.Event, start uint64) Flags
	// Observe is called for every access in stream order so the
	// classifier can maintain its prediction tables.
	Observe(e trace.Event)
}

// StreamClassifier is the fused fast path for classifiers that can flag and
// observe one access in a single call against stream columns, avoiding a
// trace.Event round-trip per access. When closing is true the returned
// flags must be computed against the table state as of *before* this
// access's observation — exactly what Classify-then-Observe would yield.
type StreamClassifier interface {
	Classifier
	ClassifyObserve(cycle, lineAddr, pc uint64, kind trace.Kind, start uint64, closing bool) Flags
}

// Collector builds a Distribution from a timed access stream for one cache.
type Collector struct {
	cache      trace.CacheID
	numFrames  uint32
	classifier Classifier
	streamCl   StreamClassifier // non-nil when classifier supports the fused path

	lastAccess []uint64 // per frame; access cycle + 1 (0 = never accessed)
	dirty      []bool   // per frame; true if the resident block is modified
	dist       *Distribution
	finished   bool
	lastCycle  uint64
	events     uint64 // accepted events, flushed to telemetry at Finish
}

// NewCollector creates a collector for the given cache with numFrames
// physical lines. classifier may be nil.
func NewCollector(cacheID trace.CacheID, numFrames uint32, classifier Classifier) (*Collector, error) {
	if !cacheID.Valid() {
		return nil, fmt.Errorf("interval: invalid cache id %d", cacheID)
	}
	if numFrames == 0 {
		return nil, errors.New("interval: zero frames")
	}
	streamCl, _ := classifier.(StreamClassifier)
	return &Collector{
		cache:      cacheID,
		numFrames:  numFrames,
		classifier: classifier,
		streamCl:   streamCl,
		lastAccess: make([]uint64, numFrames),
		dirty:      make([]bool, numFrames),
		dist:       NewDistribution(numFrames, 0),
	}, nil
}

// Add consumes one event. Events for other caches are ignored, so a single
// simulator sink can fan out to several collectors. Events must arrive in
// non-decreasing cycle order.
func (c *Collector) Add(e trace.Event) error {
	return c.add(e, 0, true)
}

// add is the collection core. When classify is true the collector's own
// classifier computes the prefetch flags in stream order; when false the
// caller supplies them in pre (the sharded path classifies on the producer
// side, where global stream order is still visible, and ships the flags
// with the event).
func (c *Collector) add(e trace.Event, pre Flags, classify bool) error {
	if c.finished {
		return fmt.Errorf("%w: Add after Finish", ErrFinished)
	}
	if e.Cache != c.cache {
		return nil
	}
	if e.Frame >= c.numFrames {
		return fmt.Errorf("%w: frame %d (have %d)", ErrFrameRange, e.Frame, c.numFrames)
	}
	if e.Cycle < c.lastCycle {
		return fmt.Errorf("%w: cycle %d before %d", ErrOutOfOrder, e.Cycle, c.lastCycle)
	}
	c.lastCycle = e.Cycle
	c.events++

	prev := c.lastAccess[e.Frame]
	switch {
	case prev == 0:
		// First access: the leading gap runs from cycle 0.
		if e.Cycle > 0 {
			c.dist.Add(e.Cycle, Leading, 1)
		}
	default:
		start := prev - 1
		length := e.Cycle - start
		if length > 0 {
			flags := pre & (NLPrefetchable | StridePrefetchable)
			if classify && c.classifier != nil {
				flags = c.classifier.Classify(e, start) & (NLPrefetchable | StridePrefetchable)
			}
			if c.dirty[e.Frame] {
				flags |= Dirty
			}
			if e.Miss {
				// The closing access replaced the resident block: the gap
				// was the old block's dead period.
				flags |= DeadEnd
			}
			c.dist.Add(length, flags, 1)
		}
	}
	if classify && c.classifier != nil {
		c.classifier.Observe(e)
	}
	c.lastAccess[e.Frame] = e.Cycle + 1
	// Track modified state: a store dirties the resident block; a miss
	// fill replaces it (the eviction write-back, if any, is charged to
	// the closing interval's Dirty flag above), so dirtiness restarts
	// from this access's own kind.
	switch {
	case e.Miss:
		c.dirty[e.Frame] = e.Kind == trace.Store
	case e.Kind == trace.Store:
		c.dirty[e.Frame] = true
	}
	return nil
}

// AddBatch consumes one column batch from the streaming pipeline. It is
// equivalent to calling Add for each event in batch order, but skips the
// trace.Event materialization on the hot path. Events for other caches are
// ignored, as in Add.
func (c *Collector) AddBatch(b *stream.Batch) error {
	if c.finished {
		return fmt.Errorf("%w: Add after Finish", ErrFinished)
	}
	if c.classifier != nil && c.streamCl == nil {
		// Classifier without a fused fast path: fall back to event form so
		// Classify/Observe see exactly what Add would hand them.
		for i, n := 0, b.Len(); i < n; i++ {
			if err := c.add(b.Event(i), 0, true); err != nil {
				return err
			}
		}
		return nil
	}
	n := b.Len()
	for i := 0; i < n; i++ {
		if b.Caches[i] != c.cache {
			continue
		}
		if err := c.addCols(b.Cycles[i], b.LineAddrs[i], b.PCs[i], b.Frames[i], b.Kinds[i], b.Misses[i]); err != nil {
			return err
		}
	}
	return nil
}

// AddCols is Add by columns — one event, no trace.Event box. Events for
// other caches are ignored, as in Add.
//
//lint:hotpath entry
func (c *Collector) AddCols(cycle, lineAddr, pc uint64, frame uint32, cacheID trace.CacheID, kind trace.Kind, miss bool) error {
	if cacheID != c.cache {
		return nil
	}
	if c.finished {
		return fmt.Errorf("%w: Add after Finish", ErrFinished)
	}
	if c.classifier != nil && c.streamCl == nil {
		return c.add(trace.Event{
			Cycle: cycle, LineAddr: lineAddr, Frame: frame, PC: pc,
			Cache: cacheID, Kind: kind, Miss: miss,
		}, 0, true)
	}
	return c.addCols(cycle, lineAddr, pc, frame, kind, miss)
}

// addCols is the column-form collection core; the caller has already
// routed the event to this collector's cache and checked finished.
func (c *Collector) addCols(cycle, lineAddr, pc uint64, frame uint32, kind trace.Kind, miss bool) error {
	if frame >= c.numFrames {
		return fmt.Errorf("%w: frame %d (have %d)", ErrFrameRange, frame, c.numFrames)
	}
	if cycle < c.lastCycle {
		return fmt.Errorf("%w: cycle %d before %d", ErrOutOfOrder, cycle, c.lastCycle)
	}
	c.lastCycle = cycle
	c.events++

	prev := c.lastAccess[frame]
	if prev == 0 {
		// First access: the leading gap runs from cycle 0.
		if cycle > 0 {
			c.dist.Add(cycle, Leading, 1)
		}
		if c.streamCl != nil {
			c.streamCl.ClassifyObserve(cycle, lineAddr, pc, kind, 0, false)
		}
	} else {
		start := prev - 1
		length := cycle - start
		var flags Flags
		if c.streamCl != nil {
			flags = c.streamCl.ClassifyObserve(cycle, lineAddr, pc, kind, start, length > 0) &
				(NLPrefetchable | StridePrefetchable)
		}
		if length > 0 {
			if c.dirty[frame] {
				flags |= Dirty
			}
			if miss {
				flags |= DeadEnd
			}
			c.dist.Add(length, flags, 1)
		}
	}
	c.lastAccess[frame] = cycle + 1
	switch {
	case miss:
		c.dirty[frame] = kind == trace.Store
	case kind == trace.Store:
		c.dirty[frame] = true
	}
	return nil
}

// Finish closes all trailing gaps at the simulation horizon and returns the
// distribution. totalCycles must be at least the cycle of the last event.
func (c *Collector) Finish(totalCycles uint64) (*Distribution, error) {
	if c.finished {
		return nil, fmt.Errorf("%w: Finish called twice", ErrFinished)
	}
	if totalCycles < c.lastCycle {
		return nil, fmt.Errorf("%w: horizon %d, last event %d", ErrHorizon, totalCycles, c.lastCycle)
	}
	c.finished = true
	c.dist.TotalCycles = totalCycles
	var untouched uint64
	for frame, prev := range c.lastAccess {
		if prev == 0 {
			untouched++
			continue
		}
		last := prev - 1
		if totalCycles > last {
			flags := Trailing
			if c.dirty[frame] {
				flags |= Dirty
			}
			c.dist.Add(totalCycles-last, flags, 1)
		}
	}
	if untouched > 0 && totalCycles > 0 {
		c.dist.Add(totalCycles, Untouched, untouched)
	}
	// One flush per collector lifetime keeps telemetry off the per-event
	// path (millions of Add calls per benchmark).
	sc := telemetry.Default().Scope("interval")
	sc.Counter("collectors_finished").Add(1)
	sc.Counter("events").Add(c.events)
	sc.Counter("intervals_closed").Add(c.dist.numIntervals)
	sc.Counter("frames_untouched").Add(untouched)
	return c.dist, nil
}
