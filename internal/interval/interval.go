// Package interval implements the cache access interval analysis at the
// heart of the limit study (Section 3.1 of the paper): breaking each cache
// frame's lifetime into the stretches between consecutive accesses, and
// summarizing those stretches into a compact distribution that the policy
// engine (internal/leakage) evaluates.
//
// An interval is attributed to a physical cache frame — leakage is per
// line of SRAM, regardless of which memory block occupies it — and a
// frame's timeline decomposes exactly as:
//
//	leading gap (cycle 0 .. first access)
//	interior intervals (access .. next access)
//	trailing gap (last access .. end of simulation)
//
// so the summed lengths over a frame always equal the simulated cycle
// count, which is the package's central conservation invariant.
package interval

import (
	"errors"
	"fmt"
	"sort"

	"leakbound/internal/sim/trace"
	"leakbound/internal/telemetry"
)

// Flags annotate an interval with properties the policies care about.
type Flags uint8

const (
	// NLPrefetchable marks an interior interval whose closing access was
	// predictable by next-line prefetching (Section 5.1: an access to the
	// preceding cache line occurred within the interval).
	NLPrefetchable Flags = 1 << iota
	// StridePrefetchable marks an interval predictable by per-PC
	// stride prefetching (Farkas-style: same stride seen at least twice).
	StridePrefetchable
	// Leading marks the gap from cycle 0 to a frame's first access. Its
	// re-fetch is the compulsory fill the baseline pays too, so sleep
	// policies close it without the induced-miss energy.
	Leading
	// Trailing marks the gap from a frame's last access to the end of the
	// simulation; nothing re-fetches after it.
	Trailing
	// Dirty marks an interval during which the frame held modified data:
	// gating the line (sleep) first requires a write-back, which costs
	// dynamic energy. State-preserving drowsy mode does not. The paper
	// does not model this cost; leakbound tracks it as an extension
	// (see the write-back ablation in EXPERIMENTS.md).
	Dirty
	// DeadEnd marks an interval closed by a miss: the block that rested
	// in the frame during the gap was never referenced again (it was
	// evicted by the closing fill), so the gap was a dead period in the
	// cache-decay sense (Section 3.1's live/dead distinction). The paper
	// argues dead periods add little beyond interval length for an
	// optimal policy; the live/dead experiment verifies that claim.
	DeadEnd
)

// Untouched marks a frame that was never accessed: one full-length gap.
const Untouched = Leading | Trailing

// Prefetchable reports whether either prefetch flag is set.
func (f Flags) Prefetchable() bool {
	return f&(NLPrefetchable|StridePrefetchable) != 0
}

// Interior reports whether the interval is a true access-to-access
// interval (neither leading nor trailing).
func (f Flags) Interior() bool { return f&(Leading|Trailing) == 0 }

// String implements fmt.Stringer.
func (f Flags) String() string {
	if f == 0 {
		return "interior"
	}
	s := ""
	add := func(name string) {
		if s != "" {
			s += "|"
		}
		s += name
	}
	if f&NLPrefetchable != 0 {
		add("nl")
	}
	if f&StridePrefetchable != 0 {
		add("stride")
	}
	if f&Leading != 0 {
		add("leading")
	}
	if f&Trailing != 0 {
		add("trailing")
	}
	if f&Dirty != 0 {
		add("dirty")
	}
	if f&DeadEnd != 0 {
		add("dead")
	}
	return s
}

// Key identifies one (length, flags) bucket in a distribution.
type Key struct {
	Length uint64
	Flags  Flags
}

// Distribution is a multiset of intervals, compactly stored as counts per
// (length, flags). Short lengths — the overwhelming majority — live in a
// dense table; the long tail in a map.
type Distribution struct {
	NumFrames   uint32
	TotalCycles uint64

	dense  []uint64 // index = length*flagSpace + flags, for length < denseLimit
	sparse map[Key]uint64

	numIntervals uint64 // total recorded intervals (all kinds)
	mass         uint64 // sum of length*count
}

const (
	denseLimit = 8192
	flagSpace  = 64 // nl|stride|leading|trailing|dirty|deadend fit in 6 bits
)

// NewDistribution creates an empty distribution for a cache with the given
// frame count and time horizon.
func NewDistribution(numFrames uint32, totalCycles uint64) *Distribution {
	return &Distribution{
		NumFrames:   numFrames,
		TotalCycles: totalCycles,
		dense:       make([]uint64, denseLimit*flagSpace),
		sparse:      make(map[Key]uint64),
	}
}

// Add records count intervals of the given length and flags.
func (d *Distribution) Add(length uint64, flags Flags, count uint64) {
	if count == 0 || length == 0 {
		return
	}
	d.numIntervals += count
	d.mass += length * count
	if length < denseLimit {
		d.dense[length*flagSpace+uint64(flags)] += count
		return
	}
	d.sparse[Key{Length: length, Flags: flags}] += count
}

// NumIntervals returns the number of recorded intervals.
func (d *Distribution) NumIntervals() uint64 { return d.numIntervals }

// Mass returns the summed interval lengths (frame-cycles). When the
// distribution was built by a Collector, Mass == NumFrames * TotalCycles.
func (d *Distribution) Mass() uint64 { return d.mass }

// Each calls fn for every (length, flags, count) bucket in deterministic
// order (ascending length, then flags). Iteration stops if fn returns
// false.
func (d *Distribution) Each(fn func(length uint64, flags Flags, count uint64) bool) {
	for length := uint64(1); length < denseLimit; length++ {
		base := length * flagSpace
		for f := uint64(0); f < flagSpace; f++ {
			if c := d.dense[base+f]; c > 0 {
				if !fn(length, Flags(f), c) {
					return
				}
			}
		}
	}
	keys := make([]Key, 0, len(d.sparse))
	for k := range d.sparse {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Length != keys[j].Length {
			return keys[i].Length < keys[j].Length
		}
		return keys[i].Flags < keys[j].Flags
	})
	for _, k := range keys {
		if !fn(k.Length, k.Flags, d.sparse[k]) {
			return
		}
	}
}

// Merge folds other into d. Frame counts add — the operands are treated as
// disjoint frame populations observed over the same run, which covers both
// uses: recombining per-shard distributions from a ShardedCollector
// (bit-identical to the unsharded result, since bucket counts, interval
// counts and mass are all additive) and aggregating benchmarks for
// suite-wide views. Time horizons are maxed so the conservation invariant
// (Mass == NumFrames x TotalCycles) survives merging same-horizon shards.
func (d *Distribution) Merge(other *Distribution) error {
	if other == nil {
		return fmt.Errorf("%w: merge operand", ErrNilDistribution)
	}
	d.NumFrames += other.NumFrames
	if d.TotalCycles < other.TotalCycles {
		d.TotalCycles = other.TotalCycles
	}
	other.Each(func(length uint64, flags Flags, count uint64) bool {
		d.Add(length, flags, count)
		return true
	})
	return nil
}

// Count returns the number of intervals matching the predicate.
func (d *Distribution) Count(pred func(length uint64, flags Flags) bool) uint64 {
	var n uint64
	d.Each(func(length uint64, flags Flags, count uint64) bool {
		if pred(length, flags) {
			n += count
		}
		return true
	})
	return n
}

// MassWhere returns the summed lengths of intervals matching the predicate.
func (d *Distribution) MassWhere(pred func(length uint64, flags Flags) bool) uint64 {
	var m uint64
	d.Each(func(length uint64, flags Flags, count uint64) bool {
		if pred(length, flags) {
			m += length * count
		}
		return true
	})
	return m
}

// Classifier flags interval closings for prefetchability. Implementations
// live in internal/prefetch; the zero classifier (nil) flags nothing.
type Classifier interface {
	// Classify is called when an access at event e closes an interval that
	// opened at cycle start, before Observe sees e. It returns the
	// prefetch flags for that interval.
	Classify(e trace.Event, start uint64) Flags
	// Observe is called for every access in stream order so the
	// classifier can maintain its prediction tables.
	Observe(e trace.Event)
}

// Collector builds a Distribution from a timed access stream for one cache.
type Collector struct {
	cache      trace.CacheID
	numFrames  uint32
	classifier Classifier

	lastAccess []uint64 // per frame; access cycle + 1 (0 = never accessed)
	dirty      []bool   // per frame; true if the resident block is modified
	dist       *Distribution
	finished   bool
	lastCycle  uint64
	events     uint64 // accepted events, flushed to telemetry at Finish
}

// NewCollector creates a collector for the given cache with numFrames
// physical lines. classifier may be nil.
func NewCollector(cacheID trace.CacheID, numFrames uint32, classifier Classifier) (*Collector, error) {
	if !cacheID.Valid() {
		return nil, fmt.Errorf("interval: invalid cache id %d", cacheID)
	}
	if numFrames == 0 {
		return nil, errors.New("interval: zero frames")
	}
	return &Collector{
		cache:      cacheID,
		numFrames:  numFrames,
		classifier: classifier,
		lastAccess: make([]uint64, numFrames),
		dirty:      make([]bool, numFrames),
		dist:       NewDistribution(numFrames, 0),
	}, nil
}

// Add consumes one event. Events for other caches are ignored, so a single
// simulator sink can fan out to several collectors. Events must arrive in
// non-decreasing cycle order.
func (c *Collector) Add(e trace.Event) error {
	return c.add(e, 0, true)
}

// add is the collection core. When classify is true the collector's own
// classifier computes the prefetch flags in stream order; when false the
// caller supplies them in pre (the sharded path classifies on the producer
// side, where global stream order is still visible, and ships the flags
// with the event).
func (c *Collector) add(e trace.Event, pre Flags, classify bool) error {
	if c.finished {
		return fmt.Errorf("%w: Add after Finish", ErrFinished)
	}
	if e.Cache != c.cache {
		return nil
	}
	if e.Frame >= c.numFrames {
		return fmt.Errorf("%w: frame %d (have %d)", ErrFrameRange, e.Frame, c.numFrames)
	}
	if e.Cycle < c.lastCycle {
		return fmt.Errorf("%w: cycle %d before %d", ErrOutOfOrder, e.Cycle, c.lastCycle)
	}
	c.lastCycle = e.Cycle
	c.events++

	prev := c.lastAccess[e.Frame]
	switch {
	case prev == 0:
		// First access: the leading gap runs from cycle 0.
		if e.Cycle > 0 {
			c.dist.Add(e.Cycle, Leading, 1)
		}
	default:
		start := prev - 1
		length := e.Cycle - start
		if length > 0 {
			flags := pre & (NLPrefetchable | StridePrefetchable)
			if classify && c.classifier != nil {
				flags = c.classifier.Classify(e, start) & (NLPrefetchable | StridePrefetchable)
			}
			if c.dirty[e.Frame] {
				flags |= Dirty
			}
			if e.Miss {
				// The closing access replaced the resident block: the gap
				// was the old block's dead period.
				flags |= DeadEnd
			}
			c.dist.Add(length, flags, 1)
		}
	}
	if classify && c.classifier != nil {
		c.classifier.Observe(e)
	}
	c.lastAccess[e.Frame] = e.Cycle + 1
	// Track modified state: a store dirties the resident block; a miss
	// fill replaces it (the eviction write-back, if any, is charged to
	// the closing interval's Dirty flag above), so dirtiness restarts
	// from this access's own kind.
	switch {
	case e.Miss:
		c.dirty[e.Frame] = e.Kind == trace.Store
	case e.Kind == trace.Store:
		c.dirty[e.Frame] = true
	}
	return nil
}

// Finish closes all trailing gaps at the simulation horizon and returns the
// distribution. totalCycles must be at least the cycle of the last event.
func (c *Collector) Finish(totalCycles uint64) (*Distribution, error) {
	if c.finished {
		return nil, fmt.Errorf("%w: Finish called twice", ErrFinished)
	}
	if totalCycles < c.lastCycle {
		return nil, fmt.Errorf("%w: horizon %d, last event %d", ErrHorizon, totalCycles, c.lastCycle)
	}
	c.finished = true
	c.dist.TotalCycles = totalCycles
	var untouched uint64
	for frame, prev := range c.lastAccess {
		if prev == 0 {
			untouched++
			continue
		}
		last := prev - 1
		if totalCycles > last {
			flags := Trailing
			if c.dirty[frame] {
				flags |= Dirty
			}
			c.dist.Add(totalCycles-last, flags, 1)
		}
	}
	if untouched > 0 && totalCycles > 0 {
		c.dist.Add(totalCycles, Untouched, untouched)
	}
	// One flush per collector lifetime keeps telemetry off the per-event
	// path (millions of Add calls per benchmark).
	sc := telemetry.Default().Scope("interval")
	sc.Counter("collectors_finished").Add(1)
	sc.Counter("events").Add(c.events)
	sc.Counter("intervals_closed").Add(c.dist.numIntervals)
	sc.Counter("frames_untouched").Add(untouched)
	return c.dist, nil
}
