package interval

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func randomDist(rng *rand.Rand, n int) *Distribution {
	d := NewDistribution(uint32(rng.Intn(2048)+1), uint64(rng.Intn(1e6)+1))
	for i := 0; i < n; i++ {
		length := uint64(rng.Intn(200000) + 1)
		flags := Flags(rng.Intn(int(DeadEnd) * 2)) // any 6-bit combination
		count := uint64(rng.Intn(100) + 1)
		d.Add(length, flags, count)
	}
	return d
}

func TestDistributionCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 50, 5000} {
		d := randomDist(rng, n)
		var buf bytes.Buffer
		if err := WriteDistribution(&buf, d); err != nil {
			t.Fatalf("n=%d write: %v", n, err)
		}
		got, err := ReadDistribution(&buf)
		if err != nil {
			t.Fatalf("n=%d read: %v", n, err)
		}
		if !d.Equal(got) {
			t.Fatalf("n=%d round trip changed distribution", n)
		}
	}
}

func TestDistributionCodecProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		d := randomDist(rng, int(nRaw))
		var buf bytes.Buffer
		if err := WriteDistribution(&buf, d); err != nil {
			return false
		}
		got, err := ReadDistribution(&buf)
		if err != nil {
			return false
		}
		return d.Equal(got) && got.Equal(d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestWriteDistributionNil(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteDistribution(&buf, nil); err == nil {
		t.Error("nil distribution accepted")
	}
}

func TestReadDistributionGarbage(t *testing.T) {
	if _, err := ReadDistribution(strings.NewReader("nope")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadDistribution(strings.NewReader("LKBDIST1")); err == nil {
		t.Error("truncated header accepted")
	}
	// Valid magic+header claiming buckets, then truncated payload.
	var buf bytes.Buffer
	buf.Write(distMagic[:])
	hdr := make([]byte, 20)
	hdr[0] = 9
	buf.Write(hdr)
	if _, err := ReadDistribution(&buf); err == nil {
		t.Error("truncated payload accepted")
	}
	// Absurd bucket count.
	buf.Reset()
	buf.Write(distMagic[:])
	for i := 0; i < 8; i++ {
		hdr[i] = 0xFF
	}
	buf.Write(hdr)
	if _, err := ReadDistribution(&buf); err == nil {
		t.Error("absurd bucket count accepted")
	}
}

func TestReadDistributionRejectsBadFlags(t *testing.T) {
	// Hand-craft one bucket with flags out of range.
	var buf bytes.Buffer
	buf.Write(distMagic[:])
	hdr := make([]byte, 20)
	hdr[0] = 1  // one bucket
	hdr[8] = 10 // cycles
	hdr[16] = 1 // frames
	buf.Write(hdr)
	buf.WriteByte(5)    // length varint = 5
	buf.WriteByte(0xFF) // flags: invalid
	buf.WriteByte(1)    // count = 1
	if _, err := ReadDistribution(&buf); err == nil {
		t.Error("invalid flags accepted")
	}
}

func TestDistributionEqual(t *testing.T) {
	a := NewDistribution(4, 100)
	a.Add(5, 0, 2)
	b := NewDistribution(4, 100)
	b.Add(5, 0, 2)
	if !a.Equal(b) {
		t.Error("identical distributions not equal")
	}
	b.Add(6, 0, 1)
	if a.Equal(b) {
		t.Error("different distributions equal")
	}
	if a.Equal(nil) {
		t.Error("nil equal")
	}
	c := NewDistribution(5, 100)
	c.Add(5, 0, 2)
	if a.Equal(c) {
		t.Error("different frame counts equal")
	}
}

func BenchmarkDistributionCodec(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	d := randomDist(rng, 50000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := WriteDistribution(&buf, d); err != nil {
			b.Fatal(err)
		}
		if _, err := ReadDistribution(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// FuzzReadDistribution throws arbitrary bytes at the distribution codec; it
// must never panic or over-allocate, and anything it accepts must survive a
// re-encode round trip.
func FuzzReadDistribution(f *testing.F) {
	rng := rand.New(rand.NewSource(1))
	d := randomDist(rng, 30)
	var buf bytes.Buffer
	if err := WriteDistribution(&buf, d); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("LKBDIST1"))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadDistribution(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteDistribution(&out, got); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		again, err := ReadDistribution(&out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !got.Equal(again) {
			t.Fatal("round trip changed distribution")
		}
	})
}
