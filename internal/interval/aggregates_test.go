package interval

import (
	"math/rand"
	"testing"
)

// buildTestDist records a mix of dense and tail buckets, with duplicate
// tail appends left uncompacted, across several flags classes.
func buildTestDist(t *testing.T) *Distribution {
	t.Helper()
	d := NewDistribution(64, 1<<20)
	d.Add(1, 0, 10)
	d.Add(1, Leading, 2)
	d.Add(3, Dirty, 4)
	d.Add(2, 0, 7)
	d.Add(denseLimit-1, Trailing|Dirty, 1)
	// Tail buckets, appended out of order and with a duplicate key.
	d.Add(denseLimit+100, 0, 3)
	d.Add(denseLimit+5, NLPrefetchable, 2)
	d.Add(denseLimit+100, 0, 5)
	d.Add(1<<19, Untouched, 6)
	return d
}

// TestEachOrderDeterministic is the regression net for the documented
// Each order: lexicographic ascending (length, flags), with strictly
// ascending lengths inside every flags class, stable across repeated
// walks, compaction, and Merge.
func TestEachOrderDeterministic(t *testing.T) {
	type bucket struct {
		length uint64
		flags  Flags
		count  uint64
	}
	walk := func(d *Distribution) []bucket {
		var out []bucket
		d.Each(func(length uint64, flags Flags, count uint64) bool {
			out = append(out, bucket{length, flags, count})
			return true
		})
		return out
	}
	check := func(name string, got []bucket) {
		t.Helper()
		for i := 1; i < len(got); i++ {
			p, q := got[i-1], got[i]
			if q.length < p.length || (q.length == p.length && q.flags <= p.flags) {
				t.Fatalf("%s: bucket %d (len=%d flags=%v) not after (len=%d flags=%v)",
					name, i, q.length, q.flags, p.length, p.flags)
			}
		}
	}

	d := buildTestDist(t)
	first := walk(d) // compacts the tail
	check("first walk", first)
	second := walk(d)
	if len(first) != len(second) {
		t.Fatalf("walk changed length after compaction: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("walk %d differs after compaction: %+v vs %+v", i, first[i], second[i])
		}
	}

	// Merge must not perturb the order: fold in a shard with overlapping
	// dense rows and fresh tail appends, then re-check.
	other := NewDistribution(64, 1<<20)
	other.Add(2, 0, 1)
	other.Add(denseLimit+100, 0, 1)
	other.Add(denseLimit+1, Trailing, 9)
	if err := d.Merge(other); err != nil {
		t.Fatalf("Merge: %v", err)
	}
	check("after Merge", walk(d))

	// Randomized: any insertion order yields a sorted walk.
	rng := rand.New(rand.NewSource(7))
	rd := NewDistribution(16, 1<<30)
	for i := 0; i < 2000; i++ {
		length := uint64(rng.Intn(3*denseLimit)) + 1
		rd.Add(length, Flags(rng.Intn(flagSpace)), uint64(rng.Intn(4))+1)
	}
	check("randomized", walk(rd))
}

func TestAggregatesMatchDistribution(t *testing.T) {
	d := buildTestDist(t)
	a := NewAggregates(d)
	if a == nil {
		t.Fatal("nil aggregates from non-nil distribution")
	}
	if a.Source() != d {
		t.Fatal("Source must return the built-from distribution")
	}
	if a.NumIntervals() != d.NumIntervals() || a.Mass() != d.Mass() {
		t.Fatalf("totals mismatch: aggregates (%d, %d), distribution (%d, %d)",
			a.NumIntervals(), a.Mass(), d.NumIntervals(), d.Mass())
	}
	if a.NumFrames() != d.NumFrames || a.TotalCycles() != d.TotalCycles {
		t.Fatal("header mismatch")
	}

	// Classes ascend by flags, each with strictly ascending lengths and
	// non-decreasing cumulative arrays.
	var sumCount, sumMass uint64
	for i, c := range a.Classes() {
		if i > 0 && c.Flags <= a.Classes()[i-1].Flags {
			t.Fatalf("class %d flags %v not after %v", i, c.Flags, a.Classes()[i-1].Flags)
		}
		if len(c.Lengths) != len(c.CumCount) || len(c.Lengths) != len(c.CumMass) {
			t.Fatalf("class %v ragged arrays", c.Flags)
		}
		for j := 1; j < len(c.Lengths); j++ {
			if c.Lengths[j] <= c.Lengths[j-1] {
				t.Fatalf("class %v lengths not strictly ascending at %d", c.Flags, j)
			}
			if c.CumCount[j] < c.CumCount[j-1] || c.CumMass[j] < c.CumMass[j-1] {
				t.Fatalf("class %v cumulative arrays decrease at %d", c.Flags, j)
			}
		}
		sumCount += c.TotalCount()
		sumMass += c.TotalMass()
	}
	if sumCount != d.NumIntervals() || sumMass != d.Mass() {
		t.Fatalf("class totals (%d, %d) do not recover distribution totals (%d, %d)",
			sumCount, sumMass, d.NumIntervals(), d.Mass())
	}

	// Prefix queries agree with brute-force filters at and around every
	// recorded length and at the extremes.
	for _, c := range a.Classes() {
		cuts := []float64{0, 0.5, 1e18}
		for _, l := range c.Lengths {
			cuts = append(cuts, float64(l)-0.5, float64(l), float64(l)+0.5)
		}
		for _, cut := range cuts {
			wantCount := uint64(0)
			wantMass := uint64(0)
			flags := c.Flags
			d.Each(func(length uint64, f Flags, count uint64) bool {
				if f == flags && float64(length) <= cut {
					wantCount += count
					wantMass += length * count
				}
				return true
			})
			gotCount, gotMass := c.Prefix(cut)
			if gotCount != wantCount || gotMass != wantMass {
				t.Fatalf("class %v Prefix(%g) = (%d, %d), want (%d, %d)",
					flags, cut, gotCount, gotMass, wantCount, wantMass)
			}
		}
	}
}

func TestAggregatesNil(t *testing.T) {
	if a := NewAggregates(nil); a != nil {
		t.Fatal("NewAggregates(nil) must be nil")
	}
	empty := NewAggregates(NewDistribution(0, 0))
	if empty == nil || empty.NumIntervals() != 0 || empty.Mass() != 0 || len(empty.Classes()) != 0 {
		t.Fatal("empty distribution must yield empty aggregates")
	}
}
