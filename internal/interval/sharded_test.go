package interval_test

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"leakbound/internal/interval"
	"leakbound/internal/sim/trace"
)

// randomStream builds a valid (non-decreasing cycle) event stream for one
// cache from a seeded RNG, plus the horizon that closes it.
func randomStream(rng *rand.Rand, numFrames uint32, n int) ([]trace.Event, uint64) {
	events := make([]trace.Event, 0, n)
	var cycle uint64
	for i := 0; i < n; i++ {
		cycle += uint64(rng.Intn(50)) // may stay equal: superscalar same-cycle accesses
		events = append(events, trace.Event{
			Cycle:    cycle,
			LineAddr: uint64(rng.Intn(64)),
			Frame:    uint32(rng.Intn(int(numFrames))),
			PC:       uint64(rng.Intn(32)) * 4,
			Cache:    trace.L1D,
			Kind:     trace.Kind(rng.Intn(3)),
			Miss:     rng.Intn(4) == 0,
		})
	}
	return events, cycle + uint64(rng.Intn(100)) + 1
}

// collectSequential runs the plain Collector over the stream.
func collectSequential(t *testing.T, events []trace.Event, numFrames uint32, horizon uint64, cl interval.Classifier) *interval.Distribution {
	t.Helper()
	col, err := interval.NewCollector(trace.L1D, numFrames, cl)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		if err := col.Add(e); err != nil {
			t.Fatal(err)
		}
	}
	d, err := col.Finish(horizon)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// collectSharded runs the ShardedCollector over the same stream.
func collectSharded(t *testing.T, events []trace.Event, numFrames uint32, horizon uint64, cl interval.Classifier, shards int) *interval.Distribution {
	t.Helper()
	sc, err := interval.NewShardedCollector(trace.L1D, numFrames, cl, shards)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	for _, e := range events {
		if err := sc.Add(e); err != nil {
			t.Fatal(err)
		}
	}
	d, err := sc.Finish(horizon)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestMergePropertySharding is the satellite property test: merging an
// arbitrary per-frame sharding of a random event stream equals the
// unsharded distribution, and the conservation invariant (summed lengths
// == frames x cycles) holds on both sides of the merge.
func TestMergePropertySharding(t *testing.T) {
	prop := func(seed int64, framesRaw uint8, eventsRaw uint16, shardsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		numFrames := uint32(framesRaw%16) + 1
		n := int(eventsRaw % 2000)
		shards := int(shardsRaw%7) + 1
		events, horizon := randomStream(rng, numFrames, n)

		whole := collectSequential(t, events, numFrames, horizon, nil)

		// Arbitrary per-frame sharding: assign each frame to a random part,
		// collect each part with its own sequential Collector (frames
		// remapped to dense local indices), then Merge.
		owner := make([]int, numFrames)
		local := make([]uint32, numFrames)
		counts := make([]uint32, shards)
		for f := range owner {
			p := rng.Intn(shards)
			owner[f] = p
			local[f] = counts[p]
			counts[p]++
		}
		merged := interval.NewDistribution(0, horizon)
		for p := 0; p < shards; p++ {
			if counts[p] == 0 {
				continue
			}
			col, err := interval.NewCollector(trace.L1D, counts[p], nil)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range events {
				if owner[e.Frame] != p {
					continue
				}
				le := e
				le.Frame = local[e.Frame]
				if err := col.Add(le); err != nil {
					t.Fatal(err)
				}
			}
			d, err := col.Finish(horizon)
			if err != nil {
				t.Fatal(err)
			}
			if err := merged.Merge(d); err != nil {
				t.Fatal(err)
			}
		}

		if !merged.Equal(whole) {
			t.Logf("seed %d: merged != whole (frames %d, events %d, shards %d)", seed, numFrames, n, shards)
			return false
		}
		want := uint64(numFrames) * horizon
		if whole.Mass() != want || merged.Mass() != want {
			t.Logf("seed %d: conservation broken: whole %d, merged %d, want %d", seed, whole.Mass(), merged.Mass(), want)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestShardedCollectorMatchesSequential drives the real concurrent
// ShardedCollector (live shard workers and SPSC queues; run under -race in
// CI) against the sequential Collector over identical streams and demands
// bit-identical distributions for every shard count.
func TestShardedCollectorMatchesSequential(t *testing.T) {
	for _, tc := range []struct {
		numFrames uint32
		n         int
		shards    int
	}{
		{1, 500, 4},  // shards clamp to numFrames
		{7, 3000, 3}, // non-divisible partition
		{64, 20000, 4},
		{64, 20000, 8},
		{256, 50000, 5},
	} {
		rng := rand.New(rand.NewSource(int64(tc.numFrames)*1000 + int64(tc.shards)))
		events, horizon := randomStream(rng, tc.numFrames, tc.n)
		whole := collectSequential(t, events, tc.numFrames, horizon, nil)
		sharded := collectSharded(t, events, tc.numFrames, horizon, nil, tc.shards)
		if !sharded.Equal(whole) {
			t.Errorf("frames=%d events=%d shards=%d: sharded distribution differs from sequential",
				tc.numFrames, tc.n, tc.shards)
		}
		if got, want := sharded.Mass(), uint64(tc.numFrames)*horizon; got != want {
			t.Errorf("frames=%d shards=%d: mass %d, want %d (conservation)", tc.numFrames, tc.shards, got, want)
		}
	}
}

// orderClassifier is a deliberately stateful, stream-order-dependent
// classifier: it flags an interval NL-prefetchable when the immediately
// preceding event in the *global* stream touched the previous cache line.
// Any reordering or per-shard splitting of classification would change its
// output — proving the producer-side classification of the sharded path
// sees exactly the sequential order.
type orderClassifier struct {
	prevLine uint64
	seen     bool
}

func (o *orderClassifier) Classify(e trace.Event, start uint64) interval.Flags {
	if o.seen && o.prevLine+1 == e.LineAddr {
		return interval.NLPrefetchable
	}
	return 0
}

func (o *orderClassifier) Observe(e trace.Event) {
	o.prevLine = e.LineAddr
	o.seen = true
}

// TestShardedCollectorClassifierOrder verifies flags computed through a
// stream-order-sensitive classifier are identical between the sequential
// and the sharded paths.
func TestShardedCollectorClassifierOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const numFrames, n = 32, 20000
	events, horizon := randomStream(rng, numFrames, n)
	whole := collectSequential(t, events, numFrames, horizon, &orderClassifier{})
	sharded := collectSharded(t, events, numFrames, horizon, &orderClassifier{}, 4)
	if !sharded.Equal(whole) {
		t.Fatal("classifier flags differ between sequential and sharded collection")
	}
	// The stream must actually have produced some flagged intervals, or
	// the comparison proves nothing.
	flagged := whole.Count(func(l uint64, f interval.Flags) bool { return f.Prefetchable() })
	if flagged == 0 {
		t.Fatal("degenerate test: no prefetchable intervals were flagged")
	}
}

// TestShardedCollectorErrors exercises the sentinel errors via errors.Is —
// the contract that replaced message matching.
func TestShardedCollectorErrors(t *testing.T) {
	sc, err := interval.NewShardedCollector(trace.L1D, 8, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	if err := sc.Add(trace.Event{Cycle: 100, Frame: 3, Cache: trace.L1D}); err != nil {
		t.Fatal(err)
	}
	if err := sc.Add(trace.Event{Cycle: 99, Frame: 3, Cache: trace.L1D}); !errors.Is(err, interval.ErrOutOfOrder) {
		t.Fatalf("out-of-order: got %v, want ErrOutOfOrder", err)
	}
	if err := sc.Add(trace.Event{Cycle: 100, Frame: 8, Cache: trace.L1D}); !errors.Is(err, interval.ErrFrameRange) {
		t.Fatalf("frame range: got %v, want ErrFrameRange", err)
	}
	if _, err := sc.Finish(10); !errors.Is(err, interval.ErrHorizon) {
		t.Fatalf("horizon: got %v, want ErrHorizon", err)
	}
	if _, err := sc.Finish(200); err != nil {
		t.Fatal(err)
	}
	if err := sc.Add(trace.Event{Cycle: 300, Frame: 1, Cache: trace.L1D}); !errors.Is(err, interval.ErrFinished) {
		t.Fatalf("add after finish: got %v, want ErrFinished", err)
	}
	if _, err := sc.Finish(300); !errors.Is(err, interval.ErrFinished) {
		t.Fatalf("double finish: got %v, want ErrFinished", err)
	}

	var d *interval.Distribution = interval.NewDistribution(1, 10)
	if err := d.Merge(nil); !errors.Is(err, interval.ErrNilDistribution) {
		t.Fatalf("nil merge: got %v, want ErrNilDistribution", err)
	}
}

// TestShardedCollectorCloseIsSafe covers the cancellation path: Close
// before Finish, double Close, Close after Finish.
func TestShardedCollectorCloseIsSafe(t *testing.T) {
	sc, err := interval.NewShardedCollector(trace.L1D, 16, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if err := sc.Add(trace.Event{Cycle: uint64(i), Frame: uint32(i % 16), Cache: trace.L1D}); err != nil {
			t.Fatal(err)
		}
	}
	sc.Close()
	sc.Close() // idempotent
	if err := sc.Add(trace.Event{Cycle: 2000, Frame: 0, Cache: trace.L1D}); !errors.Is(err, interval.ErrFinished) {
		t.Fatalf("add after close: got %v, want ErrFinished", err)
	}

	sc2, err := interval.NewShardedCollector(trace.L1D, 16, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc2.Finish(1); err != nil {
		t.Fatal(err)
	}
	sc2.Close() // no-op after Finish
}
