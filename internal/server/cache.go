package server

// The result cache: every servable result is a deterministic function of
// its canonicalized request parameters (the suite is fixed at startup and
// simulation is bit-reproducible), so responses are cached whole — body,
// content type, and ETag — under an LRU bound with hit/miss/eviction
// telemetry. There is no TTL: entries are only ever displaced by the size
// bound.

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"net/url"
	"sort"
	"strings"
	"sync"

	"leakbound/internal/telemetry"
)

// cachedResult is one materialized response.
type cachedResult struct {
	body        []byte
	contentType string
	etag        string
}

// etagFor derives a strong validator from the response bytes.
func etagFor(body []byte) string {
	sum := sha256.Sum256(body)
	return `"` + hex.EncodeToString(sum[:16]) + `"`
}

// etagMatch implements If-None-Match against a strong ETag: a "*" or any
// listed value (weak prefixes tolerated) matches.
func etagMatch(header, etag string) bool {
	for _, c := range strings.Split(header, ",") {
		c = strings.TrimSpace(c)
		c = strings.TrimPrefix(c, "W/")
		if c == "*" || c == etag {
			return true
		}
	}
	return false
}

// canonicalKey reduces a request to its cache identity: the path plus the
// query parameters re-encoded with sorted keys and sorted values, so
// ?a=1&b=2 and ?b=2&a=1 coalesce and share one cache entry.
func canonicalKey(path string, query url.Values) string {
	if len(query) == 0 {
		return path
	}
	keys := make([]string, 0, len(query))
	for k := range query {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(path)
	b.WriteByte('?')
	first := true
	for _, k := range keys {
		vals := append([]string(nil), query[k]...)
		sort.Strings(vals)
		for _, v := range vals {
			if !first {
				b.WriteByte('&')
			}
			first = false
			b.WriteString(url.QueryEscape(k))
			b.WriteByte('=')
			b.WriteString(url.QueryEscape(v))
		}
	}
	return b.String()
}

// cacheEntry is the LRU list payload.
type cacheEntry struct {
	key string
	res *cachedResult
}

// resultCache is a mutex-guarded LRU over canonical keys. A max of zero
// disables caching (every get misses, puts are dropped) — the coalescing
// and admission layers still apply.
type resultCache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element

	hits      *telemetry.Counter
	misses    *telemetry.Counter
	evictions *telemetry.Counter
	entries   *telemetry.Gauge
}

// newResultCache builds the cache and wires its telemetry into sc.
func newResultCache(max int, sc *telemetry.Scope) *resultCache {
	return &resultCache{
		max:       max,
		ll:        list.New(),
		items:     make(map[string]*list.Element),
		hits:      sc.Counter("cache/hits"),
		misses:    sc.Counter("cache/misses"),
		evictions: sc.Counter("cache/evictions"),
		entries:   sc.Gauge("cache/entries"),
	}
}

// get returns the cached result for key, refreshing its recency.
func (c *resultCache) get(key string) (*cachedResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.items[key]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.ll.MoveToFront(e)
	c.hits.Add(1)
	return e.Value.(*cacheEntry).res, true
}

// put inserts (or refreshes) key, evicting from the LRU tail past the
// size bound.
func (c *resultCache) put(key string, res *cachedResult) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.items[key]; ok {
		e.Value.(*cacheEntry).res = res
		c.ll.MoveToFront(e)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, res: res})
	for c.ll.Len() > c.max {
		tail := c.ll.Back()
		c.ll.Remove(tail)
		delete(c.items, tail.Value.(*cacheEntry).key)
		c.evictions.Add(1)
	}
	c.entries.Set(int64(c.ll.Len()))
}

// len reports the current entry count (for tests).
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
