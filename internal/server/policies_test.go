package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// post sends a JSON body and returns status, headers, and body.
func post(t *testing.T, client *http.Client, url, body string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := client.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, resp.Header, out
}

// TestPoliciesEndpoint is the acceptance check: /api/v1/policies lists at
// least 8 schemes, each with a name, doc, and parameter schemas.
func TestPoliciesEndpoint(t *testing.T) {
	s, _ := newTestServer(t, 0.02, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	status, _, body := get(t, ts.Client(), ts.URL+"/api/v1/policies", nil)
	if status != http.StatusOK {
		t.Fatalf("policies: %d %s", status, body)
	}
	var out struct {
		Schemes []struct {
			Name       string `json:"name"`
			Doc        string `json:"doc"`
			Positional string `json:"positional"`
			Params     []struct {
				Name    string `json:"name"`
				Kind    string `json:"kind"`
				Doc     string `json:"doc"`
				Default string `json:"default"`
			} `json:"params"`
		} `json:"schemes"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(out.Schemes) < 8 {
		t.Fatalf("policies lists %d schemes, want >= 8", len(out.Schemes))
	}
	byName := map[string]bool{}
	for _, sc := range out.Schemes {
		byName[sc.Name] = true
		if sc.Doc == "" {
			t.Errorf("scheme %q has no doc", sc.Name)
		}
	}
	for _, want := range []string{"opt-hybrid", "opt-sleep", "coloring", "waymemo"} {
		if !byName[want] {
			t.Errorf("policies missing scheme %q", want)
		}
	}
	for _, sc := range out.Schemes {
		if sc.Name != "opt-sleep" {
			continue
		}
		if sc.Positional != "theta" || len(sc.Params) != 1 || sc.Params[0].Kind != "uint" {
			t.Errorf("opt-sleep schema wrong: %+v", sc)
		}
	}
}

// TestEvalPost checks that the structured POST body evaluates identically
// to the equivalent GET spelling, and that different bodies do not share
// a cache entry.
func TestEvalPost(t *testing.T) {
	s, _ := newTestServer(t, 0.02, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, _, getBody := get(t, ts.Client(),
		ts.URL+"/api/v1/eval?benchmark=gzip&cache=i&policy=opt-sleep@5000", nil)
	status, _, postBody := post(t, ts.Client(), ts.URL+"/api/v1/eval",
		`{"benchmark":"gzip","cache":"i","policy":{"scheme":"opt-sleep","params":{"theta":5000}}}`)
	if status != http.StatusOK {
		t.Fatalf("POST eval: %d %s", status, postBody)
	}
	if string(postBody) != string(getBody) {
		t.Errorf("structured POST diverges from GET spelling:\n%s\nvs\n%s", postBody, getBody)
	}
	// Spec-string policy in the body works too.
	status, _, strBody := post(t, ts.Client(), ts.URL+"/api/v1/eval",
		`{"benchmark":"gzip","cache":"i","policy":"opt-sleep@5000"}`)
	if status != http.StatusOK || string(strBody) != string(getBody) {
		t.Errorf("string-policy POST: %d, equal=%v", status, string(strBody) == string(getBody))
	}
	// A different body must not hit the first body's cache entry.
	status, hdr, otherBody := post(t, ts.Client(), ts.URL+"/api/v1/eval",
		`{"benchmark":"gzip","cache":"i","policy":"opt-sleep@9000"}`)
	if status != http.StatusOK {
		t.Fatalf("POST eval (other): %d %s", status, otherBody)
	}
	if hdr.Get("X-Cache") == "hit" {
		t.Error("different POST body served from cache")
	}
	if string(otherBody) == string(getBody) {
		t.Error("different theta returned identical evaluation")
	}
	// Identical repeat POST is a cache hit.
	_, hdr2, _ := post(t, ts.Client(), ts.URL+"/api/v1/eval",
		`{"benchmark":"gzip","cache":"i","policy":"opt-sleep@9000"}`)
	if hdr2.Get("X-Cache") != "hit" {
		t.Errorf("repeat POST X-Cache = %q, want hit", hdr2.Get("X-Cache"))
	}
}

// TestSweepPostGeneralized sweeps a non-theta parameter (waymemo accuracy)
// through the structured body.
func TestSweepPostGeneralized(t *testing.T) {
	s, _ := newTestServer(t, 0.02, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	status, _, body := post(t, ts.Client(), ts.URL+"/api/v1/sweep",
		`{"policy":"waymemo","param":"accuracy","cache":"i","values":[0.5,0.9,1.0]}`)
	if status != http.StatusOK {
		t.Fatalf("POST sweep: %d %s", status, body)
	}
	var out struct {
		Policy string `json:"policy"`
		Param  string `json:"param"`
		Points []struct {
			Value   float64 `json:"value"`
			Savings float64 `json:"savings"`
		} `json:"points"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if out.Policy != "waymemo" || out.Param != "accuracy" || len(out.Points) != 3 {
		t.Fatalf("sweep shape wrong: %+v", out)
	}
	// Higher accuracy never loses savings (fewer mispredict charges).
	if out.Points[0].Savings > out.Points[2].Savings {
		t.Errorf("savings not monotone in accuracy: %+v", out.Points)
	}
	// Positional default: omitting param sweeps the scheme's positional.
	status, _, body = post(t, ts.Client(), ts.URL+"/api/v1/sweep",
		`{"policy":"coloring","cache":"i","values":[4,64,1024]}`)
	if status != http.StatusOK {
		t.Fatalf("POST sweep coloring: %d %s", status, body)
	}
}

// TestParetoEndpoint is the acceptance check: the frontier is non-empty,
// contains the OPT-Hybrid point, and every frontier point is genuinely
// non-dominated within the response.
func TestParetoEndpoint(t *testing.T) {
	s, _ := newTestServer(t, 0.02, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	status, _, body := get(t, ts.Client(), ts.URL+"/api/v1/pareto?cache=i", nil)
	if status != http.StatusOK {
		t.Fatalf("pareto: %d %s", status, body)
	}
	var out struct {
		Cache  string `json:"cache"`
		Points []struct {
			Spec              string  `json:"spec"`
			Policy            string  `json:"policy"`
			NormalizedLeakage float64 `json:"normalized_leakage"`
			InducedMissRate   float64 `json:"induced_miss_rate"`
			Frontier          bool    `json:"frontier"`
		} `json:"points"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(out.Points) < 8 {
		t.Fatalf("pareto evaluated %d points, want >= 8", len(out.Points))
	}
	foundHybrid := false
	for _, p := range out.Points {
		if p.Spec == "opt-hybrid" {
			foundHybrid = true
			if !p.Frontier {
				t.Error("opt-hybrid not on the frontier")
			}
		}
		if p.Spec == "active" && p.Frontier {
			t.Error("always-active on the frontier despite opt-drowsy dominating it")
		}
	}
	if !foundHybrid {
		t.Error("opt-hybrid point missing from the default pareto population")
	}
	// Cross-check the frontier marks against the dominance definition.
	for i, p := range out.Points {
		dominated := false
		for j, q := range out.Points {
			if i == j {
				continue
			}
			if q.NormalizedLeakage <= p.NormalizedLeakage && q.InducedMissRate <= p.InducedMissRate &&
				(q.NormalizedLeakage < p.NormalizedLeakage || q.InducedMissRate < p.InducedMissRate) {
				dominated = true
				break
			}
		}
		if p.Frontier == dominated {
			t.Errorf("%s: frontier=%v but dominated=%v", p.Spec, p.Frontier, dominated)
		}
	}
	// Explicit population through the POST body.
	status, _, body = post(t, ts.Client(), ts.URL+"/api/v1/pareto",
		`{"cache":"i","policies":["opt-hybrid","opt-drowsy",{"scheme":"coloring","params":{"colors":8}}]}`)
	if status != http.StatusOK {
		t.Fatalf("POST pareto: %d %s", status, body)
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("decode POST pareto: %v", err)
	}
	if len(out.Points) != 3 {
		t.Errorf("POST pareto returned %d points, want 3", len(out.Points))
	}
}

// TestNewEndpointBadRequests pins the 400 surface of the new API.
func TestNewEndpointBadRequests(t *testing.T) {
	s, _ := newTestServer(t, 0.02, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	for _, c := range []struct{ path, body string }{
		{"/api/v1/eval", `{"benchmark":"gzip","policy":"nope"}`},
		{"/api/v1/eval", `{"benchmark":"gzip","policy":{"scheme":""}}`},
		{"/api/v1/eval", `{"benchmark":"gzip","policy":{"scheme":"opt-sleep","params":{"bogus":1}}}`},
		{"/api/v1/eval", `{"unknown_field":1}`},
		{"/api/v1/eval", `not json`},
		{"/api/v1/sweep", `{"policy":"nope","values":[1]}`},
		{"/api/v1/sweep", `{"policy":"opt-sleep","param":"bogus","values":[1]}`},
		{"/api/v1/sweep", `{"policy":"waymemo","values":[]}`}, // waymemo positional is a float, not a theta ladder
		{"/api/v1/pareto", `{"policies":["nope"]}`},
	} {
		status, _, body := post(t, ts.Client(), ts.URL+c.path, c.body)
		if status != http.StatusBadRequest {
			t.Errorf("POST %s %s: status %d, want 400 (body %s)", c.path, c.body, status, body)
		}
	}
	if status, _, body := get(t, ts.Client(), ts.URL+"/api/v1/pareto?policy=nope", nil); status != http.StatusBadRequest {
		t.Errorf("GET pareto?policy=nope: %d, want 400 (%s)", status, body)
	}
}
