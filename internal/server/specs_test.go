package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"leakbound/internal/experiments"
	"leakbound/internal/telemetry"
	"leakbound/internal/workload/spec"
)

// testSpecJSON is a tiny spec small enough to simulate inside a handler.
const testSpecJSON = `{"version":1,"name":"posted-spec","seed":21,"phases":[
	{"body_instrs":200,"iterations":50,"mix":[
		{"kernel":"loop","bytes":16384},{"kernel":"hot","lines":8}]}]}`

// TestEvalPostSpec drives an inline workload spec through POST eval:
// the evaluation lands on the spec's own simulation, repeats are cache
// hits, and benchmark+spec together are rejected.
func TestEvalPostSpec(t *testing.T) {
	s, _ := newTestServer(t, 0.5, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"spec":` + testSpecJSON + `,"cache":"i","policy":"opt-hybrid"}`
	status, _, out := post(t, ts.Client(), ts.URL+"/api/v1/eval", body)
	if status != http.StatusOK {
		t.Fatalf("POST eval spec: %d %s", status, out)
	}
	var cell experiments.CellEvaluation
	if err := json.Unmarshal(out, &cell); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if cell.Benchmark != "posted-spec" || cell.Cache != "i" {
		t.Fatalf("bad coordinates: %+v", cell)
	}
	if cell.Baseline <= 0 || cell.Energy <= 0 {
		t.Errorf("implausible energies: %+v", cell)
	}
	// Identical repeat is an HTTP cache hit (body sha256 keys the entry).
	_, hdr, _ := post(t, ts.Client(), ts.URL+"/api/v1/eval", body)
	if hdr.Get("X-Cache") != "hit" {
		t.Errorf("repeat spec POST X-Cache = %q, want hit", hdr.Get("X-Cache"))
	}
	// benchmark and spec are mutually exclusive.
	status, _, out = post(t, ts.Client(), ts.URL+"/api/v1/eval",
		`{"benchmark":"gzip","spec":`+testSpecJSON+`}`)
	if status != http.StatusBadRequest {
		t.Errorf("benchmark+spec: %d %s", status, out)
	}
}

// TestEvalPostSpecValidation pins the 400 surface: invalid specs come
// back with the spec package's positional message.
func TestEvalPostSpecValidation(t *testing.T) {
	s, _ := newTestServer(t, 0.5, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	bad := `{"spec":{"version":1,"name":"bad","phases":[
		{"body_instrs":100,"iterations":1,"mix":[
			{"kernel":"hot","weight":0}]}]},"cache":"i"}`
	status, _, out := post(t, ts.Client(), ts.URL+"/api/v1/eval", bad)
	if status != http.StatusBadRequest {
		t.Fatalf("invalid spec: %d %s", status, out)
	}
	if !strings.Contains(string(out), "spec.phases[0].mix: weights sum to 0") {
		t.Errorf("400 body lacks positional message: %s", out)
	}
	status, _, out = post(t, ts.Client(), ts.URL+"/api/v1/eval",
		`{"spec":{"version":99},"cache":"i"}`)
	if status != http.StatusBadRequest {
		t.Errorf("bad version: %d %s", status, out)
	}
}

// TestSweepPostSpec sweeps over the posted spec's workload alone and
// checks the response names it.
func TestSweepPostSpec(t *testing.T) {
	s, _ := newTestServer(t, 0.5, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	status, _, out := post(t, ts.Client(), ts.URL+"/api/v1/sweep",
		`{"policy":"opt-sleep","cache":"i","spec":`+testSpecJSON+`,"values":[1000,10000,100000]}`)
	if status != http.StatusOK {
		t.Fatalf("POST sweep spec: %d %s", status, out)
	}
	var sweep struct {
		Policy    string `json:"policy"`
		Benchmark string `json:"benchmark"`
		Points    []struct {
			Value   float64 `json:"value"`
			Savings float64 `json:"savings"`
		} `json:"points"`
	}
	if err := json.Unmarshal(out, &sweep); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if sweep.Benchmark != "posted-spec" || len(sweep.Points) != 3 {
		t.Fatalf("sweep shape wrong: %+v", sweep)
	}
	// The theta-ladder shape works with a spec too.
	status, _, out = post(t, ts.Client(), ts.URL+"/api/v1/sweep?thetas=1057,5000",
		`{"policy":"opt-sleep","cache":"i","spec":`+testSpecJSON+`}`)
	if status != http.StatusOK {
		t.Fatalf("POST sweep spec thetas: %d %s", status, out)
	}
	var ladder struct {
		Benchmark string `json:"benchmark"`
		Points    []struct {
			Theta   uint64  `json:"theta"`
			Savings float64 `json:"savings"`
		} `json:"points"`
	}
	if err := json.Unmarshal(out, &ladder); err != nil {
		t.Fatalf("decode ladder: %v", err)
	}
	if ladder.Benchmark != "posted-spec" || len(ladder.Points) != 2 {
		t.Fatalf("ladder shape wrong: %+v", ladder)
	}
	// Invalid spec on sweep is a 400 as well.
	status, _, out = post(t, ts.Client(), ts.URL+"/api/v1/sweep",
		`{"policy":"opt-sleep","spec":{"version":1},"values":[1000]}`)
	if status != http.StatusBadRequest {
		t.Errorf("invalid sweep spec: %d %s", status, out)
	}
}

// TestBenchmarksListsScenarios registers a scenario at construction and
// checks it appears in the inventory and resolves through GET eval.
func TestBenchmarksListsScenarios(t *testing.T) {
	sp, err := spec.Parse([]byte(`{"version":1,"name":"registered-spec","seed":5,"phases":[
		{"body_instrs":200,"iterations":50,"mix":[{"kernel":"hot","lines":8}]}]}`))
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	suite := experiments.MustNew(
		experiments.WithScale(0.5),
		experiments.WithMetrics(reg),
		experiments.WithScenarios(sp),
	)
	s, err := New(Config{Suite: suite, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	status, _, out := get(t, ts.Client(), ts.URL+"/api/v1/benchmarks", nil)
	if status != http.StatusOK {
		t.Fatalf("benchmarks: %d %s", status, out)
	}
	var inv struct {
		Benchmarks []string `json:"benchmarks"`
	}
	if err := json.Unmarshal(out, &inv); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range inv.Benchmarks {
		found = found || n == "registered-spec"
	}
	if !found {
		t.Errorf("registered scenario missing from inventory: %v", inv.Benchmarks)
	}
	status, _, out = get(t, ts.Client(),
		ts.URL+"/api/v1/eval?benchmark=registered-spec&cache=i&policy=opt-hybrid", nil)
	if status != http.StatusOK {
		t.Fatalf("eval registered scenario: %d %s", status, out)
	}
	var cell experiments.CellEvaluation
	if err := json.Unmarshal(out, &cell); err != nil {
		t.Fatal(err)
	}
	if cell.Benchmark != "registered-spec" {
		t.Errorf("cell benchmark = %q", cell.Benchmark)
	}
}
