package server

import (
	"net/url"
	"testing"

	"leakbound/internal/telemetry"
)

func newTestCache(max int) (*resultCache, *telemetry.Registry) {
	reg := telemetry.NewRegistry()
	return newResultCache(max, reg.Scope("server")), reg
}

func TestCanonicalKeyOrderInsensitive(t *testing.T) {
	a, _ := url.ParseQuery("cache=i&tech=70nm&benchmark=gzip")
	b, _ := url.ParseQuery("benchmark=gzip&tech=70nm&cache=i")
	if ka, kb := canonicalKey("/eval", a), canonicalKey("/eval", b); ka != kb {
		t.Errorf("reordered queries produced different keys: %q vs %q", ka, kb)
	}
	// Repeated values are sorted too.
	c, _ := url.ParseQuery("x=2&x=1")
	d, _ := url.ParseQuery("x=1&x=2")
	if kc, kd := canonicalKey("/p", c), canonicalKey("/p", d); kc != kd {
		t.Errorf("reordered repeated values differ: %q vs %q", kc, kd)
	}
	if k := canonicalKey("/p", nil); k != "/p" {
		t.Errorf("empty query key = %q, want bare path", k)
	}
	// Distinct values must not collide.
	e, _ := url.ParseQuery("cache=i")
	f, _ := url.ParseQuery("cache=d")
	if canonicalKey("/p", e) == canonicalKey("/p", f) {
		t.Error("distinct queries collided")
	}
}

func TestEtagMatch(t *testing.T) {
	etag := etagFor([]byte("body"))
	cases := []struct {
		header string
		want   bool
	}{
		{etag, true},
		{"*", true},
		{`"other", ` + etag, true},
		{"W/" + etag, true},
		{`"other"`, false},
		{"", false},
	}
	for _, c := range cases {
		if got := etagMatch(c.header, etag); got != c.want {
			t.Errorf("etagMatch(%q) = %v, want %v", c.header, got, c.want)
		}
	}
	if etagFor([]byte("a")) == etagFor([]byte("b")) {
		t.Error("distinct bodies share an ETag")
	}
}

func TestResultCacheLRUEviction(t *testing.T) {
	c, reg := newTestCache(2)
	r := func(s string) *cachedResult { return &cachedResult{body: []byte(s)} }
	c.put("a", r("a"))
	c.put("b", r("b"))
	if _, ok := c.get("a"); !ok { // refresh a: now b is least recent
		t.Fatal("a missing before eviction")
	}
	c.put("c", r("c")) // evicts b
	if _, ok := c.get("b"); ok {
		t.Error("b survived past the LRU bound")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.get(k); !ok {
			t.Errorf("%s evicted out of LRU order", k)
		}
	}
	if c.len() != 2 {
		t.Errorf("len = %d, want 2", c.len())
	}
	sc := reg.Scope("server")
	if v := sc.Counter("cache/evictions").Value(); v != 1 {
		t.Errorf("evictions = %d, want 1", v)
	}
	if v := sc.Gauge("cache/entries").Value(); v != 2 {
		t.Errorf("entries gauge = %d, want 2", v)
	}
	// Re-putting an existing key refreshes in place.
	c.put("a", r("a2"))
	if c.len() != 2 {
		t.Errorf("len after refresh = %d, want 2", c.len())
	}
	if got, _ := c.get("a"); string(got.body) != "a2" {
		t.Errorf("refresh did not replace the payload: %q", got.body)
	}
}

func TestResultCacheDisabled(t *testing.T) {
	c, reg := newTestCache(0)
	c.put("a", &cachedResult{body: []byte("a")})
	if _, ok := c.get("a"); ok {
		t.Error("disabled cache returned a hit")
	}
	if c.len() != 0 {
		t.Errorf("disabled cache holds %d entries", c.len())
	}
	if v := reg.Scope("server").Counter("cache/misses").Value(); v != 1 {
		t.Errorf("misses = %d, want 1", v)
	}
}
