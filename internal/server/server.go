// Package server is the HTTP serving subsystem behind cmd/leakaged: it
// exposes the experiment suite — figures, tables, inflection points, and
// parameterized (technology x policy x cache) queries — as JSON endpoints
// shaped for production traffic rather than batch runs.
//
// Every compute endpoint goes through the same pipeline:
//
//	result cache -> request coalescing -> admission control -> simulate
//
// The LRU result cache serves repeated queries without touching the
// simulator (deterministic results, strong ETags, 304 on If-None-Match);
// coalescing collapses N concurrent identical queries into one
// computation; the weighted admission semaphore — sized off the suite's
// WithWorkers bound — keeps the simulator from oversubscribing the
// machine, with bounded queueing and honest 429/503 + Retry-After
// responses past the bound. Each request's context is tied to its client
// connection and to the server's lifetime, and flows into cpu.RunContext,
// so a hung-up client or a drain cancels the simulation it was paying
// for.
//
// Shutdown is a graceful drain: stop accepting, flip /readyz to 503,
// finish in-flight requests up to DrainTimeout, then cancel the base
// context to abort whatever remains. Telemetry (request counters, status
// classes, per-route log2 latency histograms, cache/coalesce/admission
// counters) lands in the same registry the simulation pipeline reports
// into, served live on /metrics from the same mux.
package server

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"sync/atomic"
	"time"

	"leakbound/internal/experiments"
	"leakbound/internal/telemetry"
)

// Config parameterizes a Server; Suite is the only required field.
type Config struct {
	// Suite provides the simulation products; required.
	Suite *experiments.Suite
	// Registry receives the server's telemetry and backs /metrics;
	// defaults to telemetry.Default().
	Registry *telemetry.Registry
	// Workers is the admission semaphore's capacity; defaults to the
	// suite's resolved worker bound (WithWorkers / GOMAXPROCS).
	Workers int
	// CacheEntries bounds the LRU result cache. Zero means
	// DefaultCacheEntries; a negative value disables result caching.
	CacheEntries int
	// QueueDepth bounds how many requests may wait for admission; beyond
	// it clients get 429. Defaults to DefaultQueueDepth when <= 0.
	QueueDepth int
	// QueueWait bounds how long one request may wait for admission;
	// beyond it clients get 503. Defaults to DefaultQueueWait when <= 0.
	QueueWait time.Duration
	// RequestTimeout caps one compute request's wall time (504 past it);
	// 0 means no cap.
	RequestTimeout time.Duration
	// DrainTimeout bounds the graceful drain; in-flight requests still
	// running when it expires are cancelled. Defaults to
	// DefaultDrainTimeout when <= 0.
	DrainTimeout time.Duration
	// AccessLog receives one structured line per request; nil disables
	// access logging.
	AccessLog io.Writer
}

// Defaults for the zero-value Config knobs.
const (
	DefaultCacheEntries = 256
	DefaultQueueDepth   = 64
	DefaultQueueWait    = 2 * time.Second
	DefaultDrainTimeout = 10 * time.Second
)

// Server serves the experiment suite over HTTP. Construct with New; it is
// safe for concurrent use.
type Server struct {
	cfg      Config
	suite    *experiments.Suite
	reg      *telemetry.Registry
	scope    *telemetry.Scope
	mux      *http.ServeMux
	cache    *resultCache
	flights  *flightGroup
	sem      *admission
	logger   *log.Logger
	draining atomic.Bool

	// base is the server-lifetime context: cancelled only when a drain
	// gives up waiting, aborting every in-flight simulation.
	base       context.Context
	baseCancel context.CancelFunc
}

// New validates cfg, applies defaults, and builds the route table.
func New(cfg Config) (*Server, error) {
	if cfg.Suite == nil {
		return nil, errors.New("server: Config.Suite is required")
	}
	if cfg.Registry == nil {
		cfg.Registry = telemetry.Default()
	}
	if cfg.Workers <= 0 {
		cfg.Workers = cfg.Suite.Workers()
	}
	if cfg.CacheEntries == 0 {
		cfg.CacheEntries = DefaultCacheEntries
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.QueueWait <= 0 {
		cfg.QueueWait = DefaultQueueWait
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = DefaultDrainTimeout
	}
	//lint:ignore ctxflow the server's base context is the lifecycle root every request context merges into; it is detached from any caller by design
	base, cancel := context.WithCancel(context.Background())
	sc := cfg.Registry.Scope("server")
	s := &Server{
		cfg:        cfg,
		suite:      cfg.Suite,
		reg:        cfg.Registry,
		scope:      sc,
		mux:        http.NewServeMux(),
		cache:      newResultCache(cfg.CacheEntries, sc),
		flights:    newFlightGroup(sc),
		sem:        newAdmission(int64(cfg.Workers), cfg.QueueDepth, cfg.QueueWait, sc),
		base:       base,
		baseCancel: cancel,
	}
	if cfg.AccessLog != nil {
		s.logger = log.New(cfg.AccessLog, "", 0)
	}
	s.registerRoutes()
	return s, nil
}

// Handler returns the server's mux (API routes plus the telemetry/pprof
// debug surface), for tests and for embedding.
func (s *Server) Handler() http.Handler { return s.mux }

// Close releases the server's lifetime context, cancelling any
// still-running computations. Serve calls it on the way out; tests using
// Handler directly should defer it.
func (s *Server) Close() { s.baseCancel() }

// Serve accepts on ln until ctx is cancelled (the daemon wires SIGTERM
// into ctx), then drains gracefully: /readyz flips to 503, the listener
// closes, in-flight requests get up to DrainTimeout to finish, and
// whatever still runs is cancelled through the base context. It returns
// nil on a clean drain and the shutdown error when the drain had to force.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	srv := &http.Server{
		Handler:           s.mux,
		ReadHeaderTimeout: 10 * time.Second,
		BaseContext:       func(net.Listener) context.Context { return s.base },
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	select {
	case err := <-errCh:
		s.baseCancel()
		return fmt.Errorf("server: %w", err)
	case <-ctx.Done():
	}
	s.draining.Store(true)
	s.scope.Counter("drains").Add(1)
	start := time.Now()
	//lint:ignore ctxflow graceful drain must outlive every caller context; it is bounded by DrainTimeout instead
	shCtx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	err := srv.Shutdown(shCtx)
	// Whether the drain finished or timed out, the lifetime context goes:
	// on a clean drain nothing is listening to it anymore, and on a
	// timeout it is what aborts the remaining simulations.
	s.baseCancel()
	if err != nil {
		_ = srv.Close()
		<-errCh
		s.scope.Gauge("drain_ms").Set(time.Since(start).Milliseconds())
		return fmt.Errorf("server: drain: %w", err)
	}
	<-errCh // http.ErrServerClosed
	s.scope.Gauge("drain_ms").Set(time.Since(start).Milliseconds())
	return nil
}

// computeFn produces one response body from validated request
// parameters. It must honor ctx: the context ends when the client
// disconnects, the request times out, or the server drains.
type computeFn func(ctx context.Context, r *http.Request) (body []byte, contentType string, err error)

// handleCompute mounts fn at pattern behind the full serving pipeline.
// weight is the admission cost: weightLight for single-benchmark or
// constant-time work, weightHeavy (the whole capacity) for full-suite
// sweeps.
func (s *Server) handleCompute(pattern, route string, weight int64, fn computeFn) {
	s.mux.Handle(pattern, s.instrument(route, s.computeHandler(weight, fn)))
}

// maxBodyBytes caps a POST body so one request cannot buffer unbounded
// input into the cache key and the JSON decoder.
const maxBodyBytes = 1 << 20

// computeHandler runs the cache -> coalesce -> admit -> compute pipeline.
// POST bodies are buffered up front (capped at maxBodyBytes) so the body
// digest joins the cache key — two POSTs with equal path, query, and body
// coalesce and share one cache entry, and the compute fn re-reads the
// body from the buffer.
func (s *Server) computeHandler(weight int64, fn computeFn) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		key := canonicalKey(r.URL.Path, r.URL.Query())
		if r.Method == http.MethodPost {
			body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
			if err != nil {
				s.writeError(w, r, badRequestf("server: reading request body: %v", err))
				return
			}
			if len(body) > maxBodyBytes {
				s.writeError(w, r, badRequestf("server: request body over %d bytes", maxBodyBytes))
				return
			}
			if len(body) > 0 {
				sum := sha256.Sum256(body)
				key += "#" + hex.EncodeToString(sum[:16])
			}
			r.Body = io.NopCloser(bytes.NewReader(body))
		}
		if res, ok := s.cache.get(key); ok {
			s.writeResult(w, r, res, true)
			return
		}
		// The compute context: the client's connection context (which the
		// net/http server cancels on disconnect), additionally cancelled
		// when the server's lifetime ends mid-drain, optionally deadlined.
		ctx, cancel := context.WithCancel(r.Context())
		defer cancel()
		stop := context.AfterFunc(s.base, cancel)
		defer stop()
		if s.cfg.RequestTimeout > 0 {
			var tcancel context.CancelFunc
			ctx, tcancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
			defer tcancel()
		}
		res, err := s.flights.Do(ctx, key, func() (*cachedResult, error) {
			if err := s.sem.Acquire(ctx, weight); err != nil {
				return nil, err
			}
			defer s.sem.Release(weight)
			body, contentType, err := fn(ctx, r)
			if err != nil {
				return nil, err
			}
			res := &cachedResult{body: body, contentType: contentType, etag: etagFor(body)}
			s.cache.put(key, res)
			return res, nil
		})
		if err != nil {
			s.writeError(w, r, err)
			return
		}
		s.writeResult(w, r, res, false)
	})
}

// writeResult sends a materialized response, honoring If-None-Match
// against the strong ETag.
func (s *Server) writeResult(w http.ResponseWriter, r *http.Request, res *cachedResult, hit bool) {
	h := w.Header()
	h.Set("ETag", res.etag)
	h.Set("Content-Type", res.contentType)
	if hit {
		h.Set("X-Cache", "hit")
	} else {
		h.Set("X-Cache", "miss")
	}
	if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatch(inm, res.etag) {
		s.scope.Counter("etag/not_modified").Add(1)
		w.WriteHeader(http.StatusNotModified)
		return
	}
	_, _ = w.Write(res.body)
}

// badRequestError marks a parameter-validation failure for a 400.
type badRequestError struct{ err error }

func (e *badRequestError) Error() string { return e.err.Error() }
func (e *badRequestError) Unwrap() error { return e.err }

// badRequestf builds a badRequestError.
func badRequestf(format string, args ...any) error {
	return &badRequestError{err: fmt.Errorf(format, args...)}
}

// writeError maps pipeline failures onto HTTP statuses: overload to
// 429/503 with Retry-After, request deadlines to 504, a drain to 503, a
// vanished client to nothing at all, parameter errors to 400, and the
// remainder to 500.
func (s *Server) writeError(w http.ResponseWriter, r *http.Request, err error) {
	var ov *overloadError
	var bad *badRequestError
	switch {
	case errors.As(err, &ov):
		secs := int64(ov.retryAfter / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
		http.Error(w, ov.Error(), ov.status)
	case errors.As(err, &bad):
		http.Error(w, bad.Error(), http.StatusBadRequest)
	case errors.Is(err, context.DeadlineExceeded):
		http.Error(w, "server: request deadline exceeded", http.StatusGatewayTimeout)
	case errors.Is(err, context.Canceled) && r.Context().Err() != nil:
		// The client hung up; there is no one to answer. The net/http
		// machinery discards whatever we write, so just count it.
		s.scope.Counter("client_disconnects").Add(1)
	case errors.Is(err, context.Canceled) && s.base.Err() != nil:
		w.Header().Set("Retry-After", "1")
		http.Error(w, "server: draining", http.StatusServiceUnavailable)
	default:
		s.scope.Counter("internal_errors").Add(1)
		http.Error(w, "server: "+err.Error(), http.StatusInternalServerError)
	}
}
