package server

// Request instrumentation: every route is wrapped in the telemetry HTTP
// middleware (per-route counters, status classes, log2 latency
// histograms) and, when configured, a structured access log — one
// logfmt-style line per completed request.

import (
	"net/http"
	"time"

	"leakbound/internal/telemetry"
)

// logRecorder captures status and size for the access log.
type logRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (r *logRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *logRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	n, err := r.ResponseWriter.Write(b)
	r.bytes += int64(n)
	return n, err
}

// instrument wraps h in the standard middleware stack for a route.
func (s *Server) instrument(route string, h http.Handler) http.Handler {
	h = s.accessLog(h)
	return telemetry.HTTPMetrics(s.reg, "http", route, h)
}

// accessLog emits one structured line per request when a log sink is
// configured.
func (s *Server) accessLog(h http.Handler) http.Handler {
	if s.logger == nil {
		return h
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &logRecorder{ResponseWriter: w}
		h.ServeHTTP(rec, r)
		if rec.status == 0 {
			rec.status = http.StatusOK
		}
		s.logger.Printf("ts=%s method=%s path=%q status=%d bytes=%d dur_ms=%d remote=%q",
			start.UTC().Format(time.RFC3339Nano), r.Method, r.URL.RequestURI(),
			rec.status, rec.bytes, time.Since(start).Milliseconds(), r.RemoteAddr)
	})
}
