package server

// The endpoint catalog. Everything under /api/v1 is a compute endpoint
// behind the cache/coalesce/admission pipeline; /healthz, /readyz, and
// the telemetry/pprof debug surface bypass it.
//
//	GET /healthz                 liveness (always 200 while the process runs)
//	GET /readyz                  readiness (503 once draining)
//	GET /api/v1/benchmarks       suite inventory: names, scale, workers
//	GET /api/v1/figures/1        ITRS leakage projection series
//	GET /api/v1/figures/7        sleep-vs-hybrid theta sweep   ?cache=i|d
//	GET /api/v1/figures/8        per-benchmark scheme savings  ?cache=i|d
//	GET /api/v1/figures/9        prefetchability breakdown     ?cache=i|d
//	GET /api/v1/figures/10       energy envelope (70nm)
//	GET /api/v1/tables/1         inflection points per technology
//	GET /api/v1/tables/2         technology-scaling savings
//	GET /api/v1/tables/3         Prefetch-A/B mode assignment
//	GET /api/v1/inflections      ?tech=70nm (default: all nodes)
//	GET /api/v1/policies         registered schemes + parameter schemas
//	GET /api/v1/eval             ?benchmark=&cache=&tech=&policy=spec
//	POST /api/v1/eval            {"benchmark"|"spec","cache","tech","policy"}
//	                             (policy: spec string or {"scheme","params"};
//	                             spec: inline workload spec evaluated ad hoc)
//	GET /api/v1/sweep            ?policy=&cache=&tech=&thetas=a,b,c |
//	                             ?from=&to=&points= (geometric spacing)
//	POST /api/v1/sweep           {"policy","param","cache","tech","values",
//	                             "spec"} (sweep any declared numeric
//	                             parameter; with spec, over that workload
//	                             alone instead of the suite average)
//	GET /api/v1/pareto           ?cache=&tech=&policy=spec (repeatable;
//	                             default: every scheme at its defaults)
//	POST /api/v1/pareto          {"cache","tech","policies":[...]}
//	GET /metrics, /metrics.json, /debug/vars, /debug/pprof/*

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"

	"leakbound/internal/experiments"
	"leakbound/internal/leakage"
	"leakbound/internal/power"
	"leakbound/internal/report"
	"leakbound/internal/telemetry"
	"leakbound/internal/workload/spec"
)

// Admission weights: light endpoints take one unit; heavy ones (full-suite
// sweeps) take the whole capacity (clamped by the semaphore).
const (
	weightLight int64 = 1
	weightHeavy int64 = 1 << 62
)

// maxSweepPoints bounds a parameterized sweep so one query cannot request
// unbounded grid work.
const maxSweepPoints = 256

// registerRoutes builds the route table.
func (s *Server) registerRoutes() {
	s.mux.Handle("GET /healthz", s.instrument("/healthz",
		http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprintln(w, "ok")
		})))
	s.mux.Handle("GET /readyz", s.instrument("/readyz",
		http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			if s.draining.Load() {
				w.Header().Set("Retry-After", "1")
				http.Error(w, "draining", http.StatusServiceUnavailable)
				return
			}
			fmt.Fprintln(w, "ok")
		})))
	telemetry.RegisterDebugIn(s.mux, s.reg)

	s.handleCompute("GET /api/v1/benchmarks", "/api/v1/benchmarks", weightLight, s.handleBenchmarks)
	s.handleCompute("GET /api/v1/figures/1", "/api/v1/figures/1", weightLight, s.handleFigure1)
	s.handleCompute("GET /api/v1/figures/7", "/api/v1/figures/7", weightHeavy, s.handleFigure7)
	s.handleCompute("GET /api/v1/figures/8", "/api/v1/figures/8", weightHeavy, s.handleFigure8)
	s.handleCompute("GET /api/v1/figures/9", "/api/v1/figures/9", weightHeavy, s.handleFigure9)
	s.handleCompute("GET /api/v1/figures/10", "/api/v1/figures/10", weightLight, s.handleFigure10)
	s.handleCompute("GET /api/v1/tables/1", "/api/v1/tables/1", weightLight, s.handleTable1)
	s.handleCompute("GET /api/v1/tables/2", "/api/v1/tables/2", weightHeavy, s.handleTable2)
	s.handleCompute("GET /api/v1/tables/3", "/api/v1/tables/3", weightLight, s.handleTable3)
	s.handleCompute("GET /api/v1/inflections", "/api/v1/inflections", weightLight, s.handleInflections)
	s.handleCompute("GET /api/v1/policies", "/api/v1/policies", weightLight, s.handlePolicies)
	s.handleCompute("GET /api/v1/eval", "/api/v1/eval", weightLight, s.handleEval)
	s.handleCompute("POST /api/v1/eval", "/api/v1/eval", weightLight, s.handleEval)
	s.handleCompute("GET /api/v1/sweep", "/api/v1/sweep", weightHeavy, s.handleSweep)
	s.handleCompute("POST /api/v1/sweep", "/api/v1/sweep", weightHeavy, s.handleSweep)
	s.handleCompute("GET /api/v1/pareto", "/api/v1/pareto", weightHeavy, s.handlePareto)
	s.handleCompute("POST /api/v1/pareto", "/api/v1/pareto", weightHeavy, s.handlePareto)
}

// jsonBody marshals a response value; encoding/json is deterministic for
// a fixed value, which is what makes the ETag/cache layer sound.
func jsonBody(v any) ([]byte, string, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, "", fmt.Errorf("server: encoding response: %w", err)
	}
	return append(b, '\n'), "application/json; charset=utf-8", nil
}

// queryCacheSide parses the ?cache= selector (default: instruction side).
func queryCacheSide(r *http.Request) (bool, error) {
	iCache, err := experiments.ParseCacheSide(r.URL.Query().Get("cache"))
	if err != nil {
		return false, &badRequestError{err: err}
	}
	return iCache, nil
}

// queryTechnology parses the ?tech= selector (default: the paper's 70nm).
func queryTechnology(r *http.Request) (power.Technology, error) {
	tech, err := experiments.ParseTechnology(r.URL.Query().Get("tech"))
	if err != nil {
		return power.Technology{}, &badRequestError{err: err}
	}
	return tech, nil
}

// cacheSideLabel renders the side the way responses spell it.
func cacheSideLabel(iCache bool) string {
	if iCache {
		return "i"
	}
	return "d"
}

func (s *Server) handleBenchmarks(_ context.Context, _ *http.Request) ([]byte, string, error) {
	return jsonBody(struct {
		Scale      float64  `json:"scale"`
		Workers    int      `json:"workers"`
		Benchmarks []string `json:"benchmarks"`
		Simulated  []string `json:"simulated"`
		Policies   []string `json:"policies"`
	}{
		Scale:      s.suite.Scale(),
		Workers:    s.suite.Workers(),
		Benchmarks: s.suite.BenchmarkNames(),
		Simulated:  s.suite.SortedNames(),
		Policies:   experiments.PolicyNames(),
	})
}

func (s *Server) handleFigure1(_ context.Context, _ *http.Request) ([]byte, string, error) {
	return jsonBody(struct {
		Series *report.Series `json:"series"`
	}{Series: experiments.Figure1Series()})
}

func (s *Server) handleFigure7(ctx context.Context, r *http.Request) ([]byte, string, error) {
	iCache, err := queryCacheSide(r)
	if err != nil {
		return nil, "", err
	}
	sleep, hybrid, err := experiments.Figure7Context(ctx, s.suite, iCache)
	if err != nil {
		return nil, "", err
	}
	return jsonBody(struct {
		Cache  string         `json:"cache"`
		Sleep  *report.Series `json:"sleep"`
		Hybrid *report.Series `json:"hybrid"`
	}{Cache: cacheSideLabel(iCache), Sleep: sleep, Hybrid: hybrid})
}

func (s *Server) handleFigure8(ctx context.Context, r *http.Request) ([]byte, string, error) {
	iCache, err := queryCacheSide(r)
	if err != nil {
		return nil, "", err
	}
	rows, err := experiments.Figure8Context(ctx, s.suite, iCache)
	if err != nil {
		return nil, "", err
	}
	policies := make([]string, 0, len(experiments.Figure8Policies()))
	for _, p := range experiments.Figure8Policies() {
		policies = append(policies, p.Name())
	}
	type rowJSON struct {
		Benchmark string    `json:"benchmark"`
		Savings   []float64 `json:"savings"`
	}
	out := make([]rowJSON, 0, len(rows))
	for _, row := range rows {
		out = append(out, rowJSON{Benchmark: row.Benchmark, Savings: row.Savings})
	}
	return jsonBody(struct {
		Cache    string    `json:"cache"`
		Policies []string  `json:"policies"`
		Rows     []rowJSON `json:"rows"`
	}{Cache: cacheSideLabel(iCache), Policies: policies, Rows: out})
}

func (s *Server) handleFigure9(ctx context.Context, r *http.Request) ([]byte, string, error) {
	iCache, err := queryCacheSide(r)
	if err != nil {
		return nil, "", err
	}
	p, err := experiments.Figure9Context(ctx, s.suite, iCache)
	if err != nil {
		return nil, "", err
	}
	return jsonBody(struct {
		Cache             string  `json:"cache"`
		A                 float64 `json:"a"`
		B                 float64 `json:"b"`
		ShortCount        uint64  `json:"short_count"`
		MidCount          uint64  `json:"mid_count"`
		LongCount         uint64  `json:"long_count"`
		MidNL             uint64  `json:"mid_nl"`
		MidStride         uint64  `json:"mid_stride"`
		LongNL            uint64  `json:"long_nl"`
		LongStride        uint64  `json:"long_stride"`
		PrefetchableShare float64 `json:"prefetchable_share"`
		NLShare           float64 `json:"nl_share"`
		StrideShare       float64 `json:"stride_share"`
	}{
		Cache: cacheSideLabel(iCache), A: p.A, B: p.B,
		ShortCount: p.ShortCount, MidCount: p.MidCount, LongCount: p.LongCount,
		MidNL: p.MidNL, MidStride: p.MidStride, LongNL: p.LongNL, LongStride: p.LongStride,
		PrefetchableShare: p.PrefetchableShare(), NLShare: p.NLShare(), StrideShare: p.StrideShare(),
	})
}

func (s *Server) handleFigure10(_ context.Context, _ *http.Request) ([]byte, string, error) {
	pts, err := experiments.Figure10()
	if err != nil {
		return nil, "", err
	}
	type pointJSON struct {
		Length   float64 `json:"length"`
		Active   float64 `json:"active"`
		Drowsy   float64 `json:"drowsy,omitempty"`
		Sleep    float64 `json:"sleep,omitempty"`
		Envelope float64 `json:"envelope"`
		Best     string  `json:"best"`
	}
	out := make([]pointJSON, 0, len(pts))
	for _, p := range pts {
		// +Inf (mode does not fit) is not representable in JSON; omit.
		pj := pointJSON{Length: p.Length, Active: p.Active, Envelope: p.Minimum, Best: p.Best.String()}
		if !math.IsInf(p.Drowsy, 1) {
			pj.Drowsy = p.Drowsy
		}
		if !math.IsInf(p.Sleep, 1) {
			pj.Sleep = p.Sleep
		}
		out = append(out, pj)
	}
	return jsonBody(struct {
		Technology string      `json:"technology"`
		Points     []pointJSON `json:"points"`
	}{Technology: power.Default().Name, Points: out})
}

func (s *Server) handleTable1(_ context.Context, _ *http.Request) ([]byte, string, error) {
	t, err := experiments.Table1()
	if err != nil {
		return nil, "", err
	}
	return jsonBody(t)
}

func (s *Server) handleTable2(ctx context.Context, _ *http.Request) ([]byte, string, error) {
	t, err := experiments.Table2Context(ctx, s.suite)
	if err != nil {
		return nil, "", err
	}
	return jsonBody(t)
}

func (s *Server) handleTable3(_ context.Context, _ *http.Request) ([]byte, string, error) {
	return jsonBody(experiments.Table3())
}

func (s *Server) handleInflections(_ context.Context, r *http.Request) ([]byte, string, error) {
	techs := power.Technologies()
	if name := r.URL.Query().Get("tech"); name != "" {
		tech, err := queryTechnology(r)
		if err != nil {
			return nil, "", err
		}
		techs = []power.Technology{tech}
	}
	type inflectionJSON struct {
		Technology string  `json:"technology"`
		Vdd        float64 `json:"vdd"`
		Vth        float64 `json:"vth"`
		A          float64 `json:"a"`
		B          float64 `json:"b"`
	}
	out := make([]inflectionJSON, 0, len(techs))
	for _, tech := range techs {
		a, b, err := tech.InflectionPoints()
		if err != nil {
			return nil, "", fmt.Errorf("server: %s: %w", tech.Name, err)
		}
		out = append(out, inflectionJSON{Technology: tech.Name, Vdd: tech.Vdd, Vth: tech.Vth, A: a, B: b})
	}
	return jsonBody(struct {
		Inflections []inflectionJSON `json:"inflections"`
	}{Inflections: out})
}

// decodeBody decodes an optional JSON request body into dst. An absent or
// empty body leaves dst untouched; a malformed one is a 400.
func decodeBody(r *http.Request, dst any) error {
	if r.Body == nil {
		return nil
	}
	b, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
	if err != nil {
		return badRequestf("server: reading request body: %v", err)
	}
	if len(bytes.TrimSpace(b)) == 0 {
		return nil
	}
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return badRequestf("server: bad request body: %v", err)
	}
	return nil
}

// policySpecJSON accepts a policy in a POST body as either a spec string
// ("opt-sleep@8192") or a structured object ({"scheme": "opt-sleep",
// "params": {"theta": 8192}}).
type policySpecJSON struct {
	spec leakage.PolicySpec
	set  bool
}

func (p *policySpecJSON) UnmarshalJSON(b []byte) error {
	b = bytes.TrimSpace(b)
	if len(b) == 0 || string(b) == "null" {
		return nil
	}
	if b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		ps, err := experiments.ParsePolicySpec(s)
		if err != nil {
			return err
		}
		p.spec, p.set = ps, true
		return nil
	}
	var ps leakage.PolicySpec
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&ps); err != nil {
		return err
	}
	if strings.TrimSpace(ps.Scheme) == "" {
		return fmt.Errorf("policy object missing scheme (known: %s)", strings.Join(experiments.PolicyNames(), ", "))
	}
	p.spec, p.set = ps, true
	return nil
}

// override returns the body field when set, otherwise the query value.
func override(body, query string) string {
	if strings.TrimSpace(body) != "" {
		return body
	}
	return query
}

// asBadPolicy downgrades policy parse/build failures to 400s while letting
// pipeline errors keep their status.
func asBadPolicy(err error) error {
	if errors.Is(err, experiments.ErrUnknownPolicy) {
		return &badRequestError{err: err}
	}
	return err
}

func (s *Server) handlePolicies(_ context.Context, _ *http.Request) ([]byte, string, error) {
	return jsonBody(struct {
		Schemes []leakage.Registration `json:"schemes"`
	}{Schemes: leakage.DefaultRegistry().Schemes()})
}

// specPresent reports whether a raw "spec" body field carries a value.
func specPresent(raw json.RawMessage) bool {
	b := bytes.TrimSpace(raw)
	return len(b) > 0 && string(b) != "null"
}

// parseSpecScenario parses an inline workload spec from a request body.
// Parse and validation failures surface as 400s carrying the spec
// package's positional message (e.g. "spec.phases[2].mix: weights sum
// to 0") so clients can point at the offending field.
func parseSpecScenario(raw json.RawMessage) (*spec.Spec, error) {
	sp, err := spec.Parse(raw)
	if err != nil {
		return nil, &badRequestError{err: fmt.Errorf("server: bad workload spec: %w", err)}
	}
	return sp, nil
}

func (s *Server) handleEval(ctx context.Context, r *http.Request) ([]byte, string, error) {
	q := r.URL.Query()
	var body struct {
		Benchmark string          `json:"benchmark"`
		Spec      json.RawMessage `json:"spec"`
		Cache     string          `json:"cache"`
		Tech      string          `json:"tech"`
		Policy    policySpecJSON  `json:"policy"`
	}
	if err := decodeBody(r, &body); err != nil {
		return nil, "", err
	}
	benchmark := strings.TrimSpace(override(body.Benchmark, q.Get("benchmark")))
	hasSpec := specPresent(body.Spec)
	if hasSpec && benchmark != "" {
		return nil, "", badRequestf("server: benchmark and spec are mutually exclusive")
	}
	if !hasSpec && benchmark == "" {
		return nil, "", badRequestf("server: missing required parameter benchmark (known: %s)",
			strings.Join(s.suite.BenchmarkNames(), ", "))
	}
	if !hasSpec && !s.suite.KnownBenchmark(benchmark) {
		return nil, "", badRequestf("server: unknown benchmark %q (known: %s)",
			benchmark, strings.Join(s.suite.BenchmarkNames(), ", "))
	}
	iCache, err := experiments.ParseCacheSide(override(body.Cache, q.Get("cache")))
	if err != nil {
		return nil, "", &badRequestError{err: err}
	}
	tech, err := experiments.ParseTechnology(override(body.Tech, q.Get("tech")))
	if err != nil {
		return nil, "", &badRequestError{err: err}
	}
	var pol leakage.Policy
	if body.Policy.set {
		pol, err = experiments.BuildPolicy(body.Policy.spec, tech)
	} else {
		policySpec := q.Get("policy")
		if policySpec == "" {
			policySpec = "opt-hybrid"
		}
		pol, err = experiments.ParsePolicy(policySpec, tech)
	}
	if err != nil {
		return nil, "", &badRequestError{err: err}
	}
	var ev experiments.CellEvaluation
	if hasSpec {
		sp, err := parseSpecScenario(body.Spec)
		if err != nil {
			return nil, "", err
		}
		ev, err = s.suite.EvaluateScenarioCellContext(ctx, sp, iCache, tech, pol)
		if err != nil {
			return nil, "", err
		}
	} else {
		ev, err = s.suite.EvaluateCellContext(ctx, benchmark, iCache, tech, pol)
		if err != nil {
			return nil, "", err
		}
	}
	return jsonBody(ev)
}

func (s *Server) handleSweep(ctx context.Context, r *http.Request) ([]byte, string, error) {
	q := r.URL.Query()
	var body struct {
		Policy string               `json:"policy"`
		Param  string               `json:"param"`
		Cache  string               `json:"cache"`
		Tech   string               `json:"tech"`
		Spec   json.RawMessage      `json:"spec"`
		Values []leakage.ParamValue `json:"values"`
	}
	if err := decodeBody(r, &body); err != nil {
		return nil, "", err
	}
	var scenario *spec.Spec
	if specPresent(body.Spec) {
		sp, err := parseSpecScenario(body.Spec)
		if err != nil {
			return nil, "", err
		}
		scenario = sp
	}
	scheme := strings.ToLower(strings.TrimSpace(override(body.Policy, q.Get("policy"))))
	if scheme == "" {
		scheme = "opt-hybrid"
	}
	reg, ok := leakage.DefaultRegistry().Lookup(scheme)
	if !ok {
		return nil, "", badRequestf("server: unknown policy scheme %q (known: %s)",
			scheme, strings.Join(experiments.PolicyNames(), ", "))
	}
	iCache, err := experiments.ParseCacheSide(override(body.Cache, q.Get("cache")))
	if err != nil {
		return nil, "", &badRequestError{err: err}
	}
	tech, err := experiments.ParseTechnology(override(body.Tech, q.Get("tech")))
	if err != nil {
		return nil, "", &badRequestError{err: err}
	}
	if len(body.Values) > 0 {
		// Generalized sweep: any declared numeric parameter.
		if len(body.Values) > maxSweepPoints {
			return nil, "", badRequestf("server: sweep capped at %d values, got %d", maxSweepPoints, len(body.Values))
		}
		param := strings.ToLower(strings.TrimSpace(body.Param))
		var points []experiments.ParamSweepPoint
		var benchmark string
		if scenario != nil {
			points, err = s.suite.SweepParamScenarioContext(ctx, scenario, scheme, param, iCache, tech, body.Values)
			benchmark = scenario.ScenarioName()
		} else {
			points, err = s.suite.SweepParamContext(ctx, scheme, param, iCache, tech, body.Values)
		}
		if err != nil {
			return nil, "", asBadPolicy(err)
		}
		if param == "" {
			param = reg.Positional
		}
		return jsonBody(struct {
			Policy     string                        `json:"policy"`
			Param      string                        `json:"param"`
			Cache      string                        `json:"cache"`
			Technology string                        `json:"technology"`
			Benchmark  string                        `json:"benchmark,omitempty"`
			Points     []experiments.ParamSweepPoint `json:"points"`
		}{Policy: scheme, Param: param, Cache: cacheSideLabel(iCache), Technology: tech.Name, Benchmark: benchmark, Points: points})
	}
	// Theta ladder: any scheme whose positional parameter is a uint.
	if sch, ok := reg.Schema(reg.Positional); reg.Positional == "" || !ok || sch.Kind != leakage.UintParam {
		return nil, "", badRequestf("server: theta sweep needs a scheme with a uint positional parameter (e.g. opt-sleep, opt-hybrid, sleep-decay), not %q", scheme)
	}
	thetas, err := sweepThetas(q.Get("thetas"), q.Get("from"), q.Get("to"), q.Get("points"))
	if err != nil {
		return nil, "", err
	}
	var points []experiments.SweepPoint
	var benchmark string
	if scenario != nil {
		// The spec's own theta ladder: one EvaluateMany pass over the
		// scenario's aggregates instead of the suite-wide average.
		values := make([]leakage.ParamValue, len(thetas))
		for i, theta := range thetas {
			values[i] = leakage.Uint(theta)
		}
		pts, err := s.suite.SweepParamScenarioContext(ctx, scenario, scheme, "", iCache, tech, values)
		if err != nil {
			return nil, "", asBadPolicy(err)
		}
		points = make([]experiments.SweepPoint, len(pts))
		for i, p := range pts {
			points[i] = experiments.SweepPoint{Theta: thetas[i], Savings: p.Savings}
		}
		benchmark = scenario.ScenarioName()
	} else {
		points, err = s.suite.SweepThetaContext(ctx, scheme, iCache, tech, thetas)
		if err != nil {
			return nil, "", asBadPolicy(err)
		}
	}
	return jsonBody(struct {
		Policy     string                   `json:"policy"`
		Cache      string                   `json:"cache"`
		Technology string                   `json:"technology"`
		Benchmark  string                   `json:"benchmark,omitempty"`
		Points     []experiments.SweepPoint `json:"points"`
	}{Policy: scheme, Cache: cacheSideLabel(iCache), Technology: tech.Name, Benchmark: benchmark, Points: points})
}

func (s *Server) handlePareto(ctx context.Context, r *http.Request) ([]byte, string, error) {
	q := r.URL.Query()
	var body struct {
		Cache    string           `json:"cache"`
		Tech     string           `json:"tech"`
		Policies []policySpecJSON `json:"policies"`
	}
	if err := decodeBody(r, &body); err != nil {
		return nil, "", err
	}
	iCache, err := experiments.ParseCacheSide(override(body.Cache, q.Get("cache")))
	if err != nil {
		return nil, "", &badRequestError{err: err}
	}
	tech, err := experiments.ParseTechnology(override(body.Tech, q.Get("tech")))
	if err != nil {
		return nil, "", &badRequestError{err: err}
	}
	var specs []leakage.PolicySpec
	for _, p := range body.Policies {
		if p.set {
			specs = append(specs, p.spec)
		}
	}
	if len(specs) == 0 {
		for _, raw := range q["policy"] {
			ps, err := experiments.ParsePolicySpec(raw)
			if err != nil {
				return nil, "", &badRequestError{err: err}
			}
			specs = append(specs, ps)
		}
	}
	if len(specs) > maxSweepPoints {
		return nil, "", badRequestf("server: pareto capped at %d policies, got %d", maxSweepPoints, len(specs))
	}
	points, err := s.suite.ParetoFrontierContext(ctx, iCache, tech, specs)
	if err != nil {
		return nil, "", asBadPolicy(err)
	}
	return jsonBody(struct {
		Cache      string                    `json:"cache"`
		Technology string                    `json:"technology"`
		Points     []experiments.ParetoPoint `json:"points"`
	}{Cache: cacheSideLabel(iCache), Technology: tech.Name, Points: points})
}

// sweepThetas resolves the sweep's sample points: an explicit csv list, or
// a geometric from/to/points ladder defaulting to the Figure 7 span.
func sweepThetas(csv, fromStr, toStr, pointsStr string) ([]uint64, error) {
	if csv != "" {
		parts := strings.Split(csv, ",")
		if len(parts) > maxSweepPoints {
			return nil, badRequestf("server: sweep capped at %d thetas, got %d", maxSweepPoints, len(parts))
		}
		out := make([]uint64, 0, len(parts))
		for _, p := range parts {
			v, err := strconv.ParseUint(strings.TrimSpace(p), 10, 64)
			if err != nil || v == 0 {
				return nil, badRequestf("server: bad theta %q (want positive integers)", p)
			}
			out = append(out, v)
		}
		return out, nil
	}
	// 256 dense default points: the aggregate fast path answers a sweep
	// point in O(log buckets), so the full ladder costs what a dozen
	// points used to.
	from, to, points := uint64(1057), uint64(10000), 256
	var err error
	if fromStr != "" {
		if from, err = strconv.ParseUint(fromStr, 10, 64); err != nil || from == 0 {
			return nil, badRequestf("server: bad from %q", fromStr)
		}
	}
	if toStr != "" {
		if to, err = strconv.ParseUint(toStr, 10, 64); err != nil || to == 0 {
			return nil, badRequestf("server: bad to %q", toStr)
		}
	}
	if pointsStr != "" {
		if points, err = strconv.Atoi(pointsStr); err != nil || points < 1 {
			return nil, badRequestf("server: bad points %q", pointsStr)
		}
	}
	if to < from {
		return nil, badRequestf("server: sweep range inverted: from=%d > to=%d", from, to)
	}
	if points > maxSweepPoints {
		return nil, badRequestf("server: sweep capped at %d points, got %d", maxSweepPoints, points)
	}
	if points == 1 || from == to {
		return []uint64{from}, nil
	}
	// Geometric spacing, deduplicated after rounding.
	ratio := math.Pow(float64(to)/float64(from), 1/float64(points-1))
	out := make([]uint64, 0, points)
	last := uint64(0)
	for i := 0; i < points; i++ {
		v := uint64(math.Round(float64(from) * math.Pow(ratio, float64(i))))
		if v <= last {
			continue
		}
		out = append(out, v)
		last = v
	}
	return out, nil
}
