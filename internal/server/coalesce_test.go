package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"leakbound/internal/telemetry"
)

func newTestFlights() (*flightGroup, *telemetry.Registry) {
	reg := telemetry.NewRegistry()
	return newFlightGroup(reg.Scope("server")), reg
}

// TestFlightGroupCoalesces: N concurrent calls on one key run fn once and
// all observe the leader's result.
func TestFlightGroupCoalesces(t *testing.T) {
	fg, reg := newTestFlights()
	var runs atomic.Int64
	gate := make(chan struct{})
	fn := func() (*cachedResult, error) {
		runs.Add(1)
		<-gate
		return &cachedResult{body: []byte("shared")}, nil
	}
	const n = 8
	var wg sync.WaitGroup
	results := make([]*cachedResult, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = fg.Do(context.Background(), "k", fn)
		}(i)
	}
	// Let every goroutine reach the flight before the leader finishes.
	deadline := time.Now().Add(5 * time.Second)
	for reg.Scope("server").Counter("coalesce/coalesced_waits").Value() < n-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d waiters coalesced",
				reg.Scope("server").Counter("coalesce/coalesced_waits").Value())
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("call %d: %v", i, errs[i])
		}
		if string(results[i].body) != "shared" {
			t.Fatalf("call %d got %q", i, results[i].body)
		}
	}
	if got := runs.Load(); got != 1 {
		t.Errorf("fn ran %d times, want 1", got)
	}
	if got := reg.Scope("server").Counter("coalesce/leader_runs").Value(); got != 1 {
		t.Errorf("leader_runs = %d, want 1", got)
	}
}

// TestFlightGroupDistinctKeys run independently.
func TestFlightGroupDistinctKeys(t *testing.T) {
	fg, _ := newTestFlights()
	var runs atomic.Int64
	fn := func() (*cachedResult, error) {
		runs.Add(1)
		return &cachedResult{}, nil
	}
	for _, k := range []string{"a", "b", "a"} {
		if _, err := fg.Do(context.Background(), k, fn); err != nil {
			t.Fatal(err)
		}
	}
	// Sequential calls never coalesce: the flight is gone once Do returns.
	if got := runs.Load(); got != 3 {
		t.Errorf("fn ran %d times, want 3", got)
	}
}

// TestFlightGroupWaiterRetriesAfterLeaderFailure: a leader cancelled by
// its own client must not poison waiters — a surviving waiter retries and
// becomes the next leader.
func TestFlightGroupWaiterRetriesAfterLeaderFailure(t *testing.T) {
	fg, reg := newTestFlights()
	leaderIn := make(chan struct{})
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	var calls atomic.Int64
	fn := func() (*cachedResult, error) {
		if calls.Add(1) == 1 {
			close(leaderIn)
			<-leaderCtx.Done()
			return nil, leaderCtx.Err()
		}
		return &cachedResult{body: []byte("retried")}, nil
	}
	leaderErr := make(chan error, 1)
	go func() {
		_, err := fg.Do(leaderCtx, "k", fn)
		leaderErr <- err
	}()
	<-leaderIn
	waiterRes := make(chan *cachedResult, 1)
	go func() {
		res, err := fg.Do(context.Background(), "k", fn)
		if err != nil {
			t.Errorf("waiter failed: %v", err)
		}
		waiterRes <- res
	}()
	waitForCounter(t, reg.Scope("server").Counter("coalesce/coalesced_waits"), 1)
	cancelLeader()
	if err := <-leaderErr; !errors.Is(err, context.Canceled) {
		t.Errorf("leader error = %v, want Canceled", err)
	}
	select {
	case res := <-waiterRes:
		if string(res.body) != "retried" {
			t.Errorf("waiter result = %q, want %q", res.body, "retried")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("waiter never recovered from leader failure")
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("fn ran %d times, want 2 (failed leader + retrying waiter)", got)
	}
}

// TestFlightGroupWaiterCancel: a waiter that gives up returns its own
// context error without disturbing the leader.
func TestFlightGroupWaiterCancel(t *testing.T) {
	fg, reg := newTestFlights()
	leaderIn := make(chan struct{})
	gate := make(chan struct{})
	fn := func() (*cachedResult, error) {
		close(leaderIn)
		<-gate
		return &cachedResult{body: []byte("done")}, nil
	}
	leaderRes := make(chan *cachedResult, 1)
	go func() {
		res, err := fg.Do(context.Background(), "k", fn)
		if err != nil {
			t.Errorf("leader failed: %v", err)
		}
		leaderRes <- res
	}()
	<-leaderIn
	wctx, cancelWaiter := context.WithCancel(context.Background())
	waiterErr := make(chan error, 1)
	go func() {
		_, err := fg.Do(wctx, "k", fn)
		waiterErr <- err
	}()
	waitForCounter(t, reg.Scope("server").Counter("coalesce/coalesced_waits"), 1)
	cancelWaiter()
	if err := <-waiterErr; !errors.Is(err, context.Canceled) {
		t.Errorf("waiter error = %v, want Canceled", err)
	}
	close(gate)
	if res := <-leaderRes; string(res.body) != "done" {
		t.Errorf("leader result = %q, want %q", res.body, "done")
	}
}
