package server

// Request coalescing: the HTTP-layer extension of the suite's
// per-benchmark singleflight (experiments.Suite.DataContext). N concurrent
// requests with the same canonical key run the compute function once — the
// first caller leads, the rest wait on its result or their own context,
// whichever finishes first. A leader that fails does not poison waiters:
// its failure may be its own client hanging up, so each waiter loops and
// the next one through takes leadership (the same retry discipline the
// suite uses, lifted to whole responses).

import (
	"context"
	"sync"

	"leakbound/internal/telemetry"
)

// flight is one in-progress computation; the leader closes done after
// publishing res/err, and waiters read them only after <-done.
type flight struct {
	done chan struct{}
	res  *cachedResult
	err  error
}

// flightGroup deduplicates concurrent computations by canonical key.
type flightGroup struct {
	mu       sync.Mutex
	inflight map[string]*flight

	leaders   *telemetry.Counter
	coalesced *telemetry.Counter
}

// newFlightGroup builds the group and wires its telemetry into sc.
func newFlightGroup(sc *telemetry.Scope) *flightGroup {
	return &flightGroup{
		inflight:  make(map[string]*flight),
		leaders:   sc.Counter("coalesce/leader_runs"),
		coalesced: sc.Counter("coalesce/coalesced_waits"),
	}
}

// Do returns the result of fn for key, running fn at most once across all
// concurrent callers with the same key. fn must honor the leader's
// context; a waiter whose own ctx ends first returns ctx.Err() without
// disturbing the flight.
func (g *flightGroup) Do(ctx context.Context, key string, fn func() (*cachedResult, error)) (*cachedResult, error) {
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		g.mu.Lock()
		if f, ok := g.inflight[key]; ok {
			g.mu.Unlock()
			g.coalesced.Add(1)
			select {
			case <-f.done:
				if f.err == nil {
					return f.res, nil
				}
				// The leader failed — possibly on its own cancelled
				// context. Loop: a deterministic failure fails again under
				// this caller's leadership; a leader-only cancellation
				// must not fail everyone else.
				continue
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		f := &flight{done: make(chan struct{})}
		g.inflight[key] = f
		g.mu.Unlock()
		g.leaders.Add(1)

		res, err := fn()
		g.mu.Lock()
		delete(g.inflight, key)
		g.mu.Unlock()
		f.res, f.err = res, err
		close(f.done)
		return res, err
	}
}
