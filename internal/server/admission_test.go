package server

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"leakbound/internal/telemetry"
)

func newTestAdmission(capacity int64, depth int, wait time.Duration) (*admission, *telemetry.Registry) {
	reg := telemetry.NewRegistry()
	return newAdmission(capacity, depth, wait, reg.Scope("server")), reg
}

// TestAdmissionWeightsAndClamp: an oversized weight is clamped to
// capacity, so heavy requests serialize instead of deadlocking.
func TestAdmissionWeightsAndClamp(t *testing.T) {
	adm, _ := newTestAdmission(2, 4, time.Second)
	ctx := context.Background()
	if err := adm.Acquire(ctx, weightHeavy); err != nil {
		t.Fatalf("heavy acquire on idle semaphore: %v", err)
	}
	// Capacity exhausted: a light acquire must queue, not pass.
	done := make(chan error, 1)
	go func() { done <- adm.Acquire(ctx, 1) }()
	select {
	case err := <-done:
		t.Fatalf("light acquire passed a saturated semaphore (err=%v)", err)
	case <-time.After(50 * time.Millisecond):
	}
	adm.Release(weightHeavy)
	if err := <-done; err != nil {
		t.Fatalf("queued acquire after release: %v", err)
	}
	adm.Release(1)
}

// TestAdmissionFIFO: waiters are granted in arrival order even when a
// later, smaller request would fit sooner.
func TestAdmissionFIFO(t *testing.T) {
	adm, _ := newTestAdmission(2, 8, time.Minute)
	ctx := context.Background()
	if err := adm.Acquire(ctx, 2); err != nil {
		t.Fatal(err)
	}
	firstIn := make(chan struct{})
	secondIn := make(chan struct{})
	go func() { adm.Acquire(ctx, 2); close(firstIn) }()
	// Let the weight-2 waiter enqueue first.
	waitForGauge(t, adm.queued, 1)
	go func() { adm.Acquire(ctx, 1); close(secondIn) }()
	waitForGauge(t, adm.queued, 2)

	adm.Release(1) // one unit free: fits the weight-1 waiter, but it is second
	select {
	case <-secondIn:
		t.Fatal("weight-1 waiter jumped the queue past the weight-2 head")
	case <-time.After(50 * time.Millisecond):
	}
	adm.Release(1) // now the head fits
	<-firstIn
	adm.Release(2)
	<-secondIn
}

// TestOverloadQueueFull429: with capacity saturated and the queue at its
// bound, the next request is rejected immediately with 429 + Retry-After.
func TestOverloadQueueFull429(t *testing.T) {
	before := runtime.NumGoroutine()
	s, reg := newTestServer(t, 0.02, func(c *Config) {
		c.Workers = 1
		c.QueueDepth = 1
		c.QueueWait = time.Minute
		c.CacheEntries = -1 // every request must reach admission
	})
	release := make(chan struct{})
	started := make(chan struct{}, 16)
	s.handleCompute("GET /hold", "/hold", weightLight,
		func(ctx context.Context, _ *http.Request) ([]byte, string, error) {
			started <- struct{}{}
			select {
			case <-release:
				return []byte("ok\n"), "text/plain", nil
			case <-ctx.Done():
				return nil, "", ctx.Err()
			}
		})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer close(release)

	// Distinct query strings defeat coalescing so each request reaches the
	// semaphore on its own.
	resp := make(chan int, 2)
	go func() {
		r, err := ts.Client().Get(ts.URL + "/hold?k=a")
		if err == nil {
			r.Body.Close()
			resp <- r.StatusCode
		}
	}()
	<-started // a holds the only unit
	go func() {
		r, err := ts.Client().Get(ts.URL + "/hold?k=b")
		if err == nil {
			r.Body.Close()
			resp <- r.StatusCode
		}
	}()
	waitForGauge(t, s.sem.queued, 1) // b occupies the whole queue

	r, err := ts.Client().Get(ts.URL + "/hold?k=c")
	if err != nil {
		t.Fatalf("third request: %v", err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("queue-full status = %d, want 429", r.StatusCode)
	}
	if r.Header.Get("Retry-After") == "" {
		t.Error("429 missing Retry-After")
	}
	if v := reg.Scope("server").Counter("admission/rejected_queue_full").Value(); v != 1 {
		t.Errorf("rejected_queue_full = %d, want 1", v)
	}
	release <- struct{}{}
	release <- struct{}{}
	for i := 0; i < 2; i++ {
		if code := <-resp; code != http.StatusOK {
			t.Errorf("held request %d finished with %d, want 200", i, code)
		}
	}
	waitForGoroutines(t, before)
}

// TestOverloadWaitTimeout503: a queued request whose bounded wait expires
// is rejected with 503 + Retry-After.
func TestOverloadWaitTimeout503(t *testing.T) {
	before := runtime.NumGoroutine()
	s, reg := newTestServer(t, 0.02, func(c *Config) {
		c.Workers = 1
		c.QueueDepth = 4
		c.QueueWait = 50 * time.Millisecond
		c.CacheEntries = -1
	})
	release := make(chan struct{})
	started := make(chan struct{}, 16)
	s.handleCompute("GET /hold", "/hold", weightLight,
		func(ctx context.Context, _ *http.Request) ([]byte, string, error) {
			started <- struct{}{}
			select {
			case <-release:
				return []byte("ok\n"), "text/plain", nil
			case <-ctx.Done():
				return nil, "", ctx.Err()
			}
		})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	holderDone := make(chan int, 1)
	go func() {
		r, err := ts.Client().Get(ts.URL + "/hold?k=a")
		if err == nil {
			r.Body.Close()
			holderDone <- r.StatusCode
		}
	}()
	<-started

	r, err := ts.Client().Get(ts.URL + "/hold?k=b")
	if err != nil {
		t.Fatalf("queued request: %v", err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("wait-timeout status = %d, want 503", r.StatusCode)
	}
	if r.Header.Get("Retry-After") == "" {
		t.Error("503 missing Retry-After")
	}
	if v := reg.Scope("server").Counter("admission/rejected_wait_timeout").Value(); v != 1 {
		t.Errorf("rejected_wait_timeout = %d, want 1", v)
	}
	close(release)
	if code := <-holderDone; code != http.StatusOK {
		t.Errorf("holder finished with %d, want 200", code)
	}
	waitForGoroutines(t, before)
}

// TestClientDisconnectCancelsCompute: dropping the connection mid-compute
// must cancel the underlying work (the simulation context) and leak no
// goroutines — the server must not keep simulating for a client that left.
func TestClientDisconnectCancelsCompute(t *testing.T) {
	before := runtime.NumGoroutine()
	s, reg := newTestServer(t, 0.02, func(c *Config) { c.CacheEntries = -1 })
	started := make(chan struct{})
	cancelled := make(chan error, 1)
	s.handleCompute("GET /watch", "/watch", weightLight,
		func(ctx context.Context, _ *http.Request) ([]byte, string, error) {
			close(started)
			select {
			case <-ctx.Done():
				cancelled <- ctx.Err()
				return nil, "", ctx.Err()
			case <-time.After(30 * time.Second):
				return nil, "", errors.New("compute outlived its client")
			}
		})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	reqCtx, cancelReq := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(reqCtx, http.MethodGet, ts.URL+"/watch", nil)
	go ts.Client().Do(req) //nolint:errcheck // the error is the point: context canceled

	<-started
	cancelReq()
	select {
	case err := <-cancelled:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("compute context ended with %v, want Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("compute context not cancelled after client disconnect")
	}
	waitForCounter(t, reg.Scope("server").Counter("client_disconnects"), 1)
	waitForGoroutines(t, before)
}

// waitForGauge polls a gauge until it reaches want.
func waitForGauge(t *testing.T, g *telemetry.Gauge, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for g.Value() != want {
		if time.Now().After(deadline) {
			t.Fatalf("gauge stuck at %d, want %d", g.Value(), want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// waitForCounter polls a counter until it reaches at least want.
func waitForCounter(t *testing.T, c *telemetry.Counter, want uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for c.Value() < want {
		if time.Now().After(deadline) {
			t.Fatalf("counter stuck at %d, want >= %d", c.Value(), want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
