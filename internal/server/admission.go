package server

// Admission control: a weighted semaphore sized off the suite's worker
// bound, so HTTP concurrency and simulation concurrency draw from one
// budget. Heavy endpoints (full-suite sweeps) acquire the whole capacity;
// light ones acquire a single unit. Overload is bounded twice: at most
// queueDepth requests may wait, and none waits longer than maxWait —
// beyond either bound the client gets an immediate, honest overload
// status with a Retry-After hint instead of an unbounded queue:
//
//	queue full   -> 429 Too Many Requests, Retry-After: 1
//	wait expired -> 503 Service Unavailable, Retry-After: ~maxWait
//
// Grants are FIFO (a heavy waiter at the head blocks later light ones),
// which trades a little utilization for starvation-freedom.

import (
	"container/list"
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"

	"leakbound/internal/telemetry"
)

// overloadError is the admission layer's refusal; writeError turns it
// into the HTTP status and Retry-After header.
type overloadError struct {
	status     int
	retryAfter time.Duration
	reason     string
}

func (e *overloadError) Error() string {
	return fmt.Sprintf("server: overloaded (%s)", e.reason)
}

// admWaiter is one queued acquisition; ready is closed under the
// admission lock when the units are granted.
type admWaiter struct {
	n     int64
	ready chan struct{}
}

// admission is the weighted semaphore.
type admission struct {
	capacity   int64
	queueDepth int
	maxWait    time.Duration

	mu      sync.Mutex
	cur     int64
	waiters list.List // of *admWaiter, FIFO

	inflight    *telemetry.Gauge
	queued      *telemetry.Gauge
	admitted    *telemetry.Counter
	fullRejects *telemetry.Counter
	waitExpired *telemetry.Counter
	abandoned   *telemetry.Counter
}

// newAdmission builds the semaphore and wires its telemetry into sc.
func newAdmission(capacity int64, queueDepth int, maxWait time.Duration, sc *telemetry.Scope) *admission {
	if capacity < 1 {
		capacity = 1
	}
	return &admission{
		capacity:    capacity,
		queueDepth:  queueDepth,
		maxWait:     maxWait,
		inflight:    sc.Gauge("admission/inflight_units"),
		queued:      sc.Gauge("admission/queued"),
		admitted:    sc.Counter("admission/admitted"),
		fullRejects: sc.Counter("admission/rejected_queue_full"),
		waitExpired: sc.Counter("admission/rejected_wait_timeout"),
		abandoned:   sc.Counter("admission/abandoned_waits"),
	}
}

// clamp bounds a weight to the capacity so "the whole machine" requests
// stay grantable.
func (a *admission) clamp(n int64) int64 {
	if n < 1 {
		return 1
	}
	if n > a.capacity {
		return a.capacity
	}
	return n
}

// Acquire obtains n units (clamped to capacity), waiting at most maxWait
// behind at most queueDepth other waiters. It returns an *overloadError
// when a bound is exceeded, or ctx.Err() if the caller gave up first.
func (a *admission) Acquire(ctx context.Context, n int64) error {
	n = a.clamp(n)
	a.mu.Lock()
	if a.cur+n <= a.capacity && a.waiters.Len() == 0 {
		a.cur += n
		a.mu.Unlock()
		a.admitted.Add(1)
		a.inflight.Add(n)
		return nil
	}
	if a.waiters.Len() >= a.queueDepth {
		a.mu.Unlock()
		a.fullRejects.Add(1)
		return &overloadError{
			status:     http.StatusTooManyRequests,
			retryAfter: time.Second,
			reason:     "admission queue full",
		}
	}
	w := &admWaiter{n: n, ready: make(chan struct{})}
	elem := a.waiters.PushBack(w)
	a.mu.Unlock()
	a.queued.Add(1)
	defer a.queued.Add(-1)

	timer := time.NewTimer(a.maxWait)
	defer timer.Stop()
	select {
	case <-w.ready:
		a.admitted.Add(1)
		a.inflight.Add(n)
		return nil
	case <-ctx.Done():
		if a.abandon(elem, w) {
			a.abandoned.Add(1)
			return ctx.Err()
		}
		// Granted concurrently with cancellation: hand the units back.
		a.release(n)
		return ctx.Err()
	case <-timer.C:
		if a.abandon(elem, w) {
			a.waitExpired.Add(1)
			retry := a.maxWait
			if retry < time.Second {
				retry = time.Second
			}
			return &overloadError{
				status:     http.StatusServiceUnavailable,
				retryAfter: retry,
				reason:     fmt.Sprintf("no capacity within %v", a.maxWait),
			}
		}
		// Granted just as the timer fired: keep the grant.
		a.admitted.Add(1)
		a.inflight.Add(n)
		return nil
	}
}

// abandon removes a still-ungranted waiter; it reports false if the grant
// already happened (in which case the caller owns the units).
func (a *admission) abandon(elem *list.Element, w *admWaiter) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	select {
	case <-w.ready:
		return false
	default:
	}
	a.waiters.Remove(elem)
	return true
}

// Release returns n units (clamped the same way Acquire clamped them) and
// grants queued waiters FIFO while they fit.
func (a *admission) Release(n int64) {
	n = a.clamp(n)
	a.inflight.Add(-n)
	a.release(n)
}

// release is Release without the telemetry (used on the
// granted-but-cancelled path, where inflight was never incremented).
func (a *admission) release(n int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.cur -= n
	if a.cur < 0 {
		panic("server: admission released more than acquired")
	}
	for e := a.waiters.Front(); e != nil; {
		w := e.Value.(*admWaiter)
		if a.cur+w.n > a.capacity {
			break // FIFO: never let a later light request starve the head
		}
		a.cur += w.n
		next := e.Next()
		a.waiters.Remove(e)
		close(w.ready)
		e = next
	}
}
