package server

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"leakbound/internal/experiments"
	"leakbound/internal/telemetry"
	"leakbound/internal/workload"
)

// newTestServer builds a server over a tiny suite with a private registry.
func newTestServer(t *testing.T, scale float64, mutate func(*Config)) (*Server, *telemetry.Registry) {
	t.Helper()
	reg := telemetry.NewRegistry()
	suite := experiments.MustNew(
		experiments.WithScale(scale),
		experiments.WithMetrics(reg),
	)
	cfg := Config{Suite: suite, Registry: reg}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(s.Close)
	return s, reg
}

// get fetches a URL and returns status, headers, and body.
func get(t *testing.T, client *http.Client, url string, hdr map[string]string) (int, http.Header, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatalf("NewRequest: %v", err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, resp.Header, body
}

// TestEndpointsServeJSON drives every endpoint once and checks status and
// JSON well-formedness.
func TestEndpointsServeJSON(t *testing.T) {
	s, _ := newTestServer(t, 0.02, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	jsonPaths := []string{
		"/api/v1/benchmarks",
		"/api/v1/figures/1",
		"/api/v1/figures/7?cache=i",
		"/api/v1/figures/8?cache=d",
		"/api/v1/figures/9?cache=i",
		"/api/v1/figures/10",
		"/api/v1/tables/1",
		"/api/v1/tables/2",
		"/api/v1/tables/3",
		"/api/v1/inflections",
		"/api/v1/inflections?tech=180nm",
		"/api/v1/eval?benchmark=gzip&cache=i&policy=opt-hybrid",
		"/api/v1/eval?benchmark=gzip&cache=d&policy=opt-sleep@5000&tech=100nm",
		"/api/v1/sweep?policy=opt-sleep&cache=i&thetas=1057,2000,5000",
		"/metrics.json",
	}
	for _, p := range jsonPaths {
		status, hdr, body := get(t, ts.Client(), ts.URL+p, nil)
		if status != http.StatusOK {
			t.Errorf("%s: status %d, body %s", p, status, body)
			continue
		}
		if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "json") {
			t.Errorf("%s: content type %q", p, ct)
		}
		var v any
		if err := json.Unmarshal(body, &v); err != nil {
			t.Errorf("%s: invalid JSON: %v", p, err)
		}
	}
	for _, p := range []string{"/healthz", "/readyz", "/metrics"} {
		if status, _, body := get(t, ts.Client(), ts.URL+p, nil); status != http.StatusOK {
			t.Errorf("%s: status %d, body %s", p, status, body)
		}
	}
}

// TestBadRequests pins the 400 surface: unknown benchmark, cache side,
// technology, policy, and malformed sweeps.
func TestBadRequests(t *testing.T) {
	s, _ := newTestServer(t, 0.02, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	for _, p := range []string{
		"/api/v1/eval",
		"/api/v1/eval?benchmark=nope",
		"/api/v1/eval?benchmark=gzip&cache=x",
		"/api/v1/eval?benchmark=gzip&tech=12nm",
		"/api/v1/eval?benchmark=gzip&policy=nope",
		"/api/v1/sweep?policy=prefetch-a",
		"/api/v1/sweep?thetas=0",
		"/api/v1/sweep?thetas=a,b",
		"/api/v1/sweep?from=10&to=5",
		"/api/v1/sweep?points=100000",
	} {
		if status, _, body := get(t, ts.Client(), ts.URL+p, nil); status != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (body %s)", p, status, body)
		}
	}
}

// TestETagAndResultCache checks the deterministic-response contract: a
// repeat request is a cache hit with the same ETag, and If-None-Match
// yields 304 with an empty body.
func TestETagAndResultCache(t *testing.T) {
	s, reg := newTestServer(t, 0.02, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	url := ts.URL + "/api/v1/eval?benchmark=gzip&cache=i&policy=opt-drowsy"

	status, hdr, body := get(t, ts.Client(), url, nil)
	if status != http.StatusOK {
		t.Fatalf("first GET: %d %s", status, body)
	}
	etag := hdr.Get("ETag")
	if etag == "" {
		t.Fatal("no ETag on compute response")
	}
	if v := hdr.Get("X-Cache"); v != "miss" {
		t.Errorf("first GET X-Cache = %q, want miss", v)
	}

	status2, hdr2, body2 := get(t, ts.Client(), url, nil)
	if status2 != http.StatusOK || string(body2) != string(body) {
		t.Fatalf("repeat GET: %d, body equal=%v", status2, string(body2) == string(body))
	}
	if v := hdr2.Get("X-Cache"); v != "hit" {
		t.Errorf("repeat GET X-Cache = %q, want hit", v)
	}
	if hdr2.Get("ETag") != etag {
		t.Errorf("ETag changed across identical requests: %q vs %q", hdr2.Get("ETag"), etag)
	}
	if hits := reg.Scope("server").Counter("cache/hits").Value(); hits == 0 {
		t.Error("cache hit counter did not move")
	}

	status3, _, body3 := get(t, ts.Client(), url, map[string]string{"If-None-Match": etag})
	if status3 != http.StatusNotModified {
		t.Fatalf("If-None-Match GET: %d, want 304", status3)
	}
	if len(body3) != 0 {
		t.Errorf("304 carried a body: %q", body3)
	}
	// Query-parameter order must not defeat the cache.
	status4, hdr4, _ := get(t, ts.Client(),
		ts.URL+"/api/v1/eval?policy=opt-drowsy&cache=i&benchmark=gzip", nil)
	if status4 != http.StatusOK || hdr4.Get("X-Cache") != "hit" {
		t.Errorf("reordered query: status %d X-Cache %q, want 200 hit", status4, hdr4.Get("X-Cache"))
	}
}

// TestCoalescedFigureRequests is the acceptance criterion: concurrent
// identical figure requests run exactly one computation — one coalesce
// leader, and one fresh simulation per benchmark (not per request).
func TestCoalescedFigureRequests(t *testing.T) {
	s, reg := newTestServer(t, 0.02, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	url := ts.URL + "/api/v1/figures/7?cache=i"

	const n = 4
	var wg sync.WaitGroup
	start := make(chan struct{})
	bodies := make([][]byte, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			resp, err := ts.Client().Get(url)
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs[i] = errors.New(resp.Status)
				return
			}
			bodies[i], errs[i] = io.ReadAll(resp.Body)
		}(i)
	}
	close(start)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if string(bodies[i]) != string(bodies[0]) {
			t.Fatalf("request %d: body diverges from request 0", i)
		}
	}
	sc := reg.Scope("server")
	if leaders := sc.Counter("coalesce/leader_runs").Value(); leaders != 1 {
		t.Errorf("leader_runs = %d, want 1", leaders)
	}
	if waits := sc.Counter("coalesce/coalesced_waits").Value(); waits < n-1 {
		t.Errorf("coalesced_waits = %d, want >= %d", waits, n-1)
	}
	wantSims := uint64(len(workload.Names()))
	if sims := reg.Scope("suite").Counter("fresh_sims").Value(); sims != wantSims {
		t.Errorf("fresh_sims = %d, want exactly %d (one per benchmark)", sims, wantSims)
	}
}

// TestGracefulDrain cancels the serve context while a request is in
// flight: the request must complete, Serve must return nil, and no
// pipeline goroutine may linger.
func TestGracefulDrain(t *testing.T) {
	before := runtime.NumGoroutine()
	s, _ := newTestServer(t, 0.02, func(c *Config) { c.DrainTimeout = 5 * time.Second })
	// A slow compute endpoint the drain must wait for.
	inHandler := make(chan struct{})
	s.handleCompute("GET /slow", "/slow", weightLight,
		func(ctx context.Context, _ *http.Request) ([]byte, string, error) {
			close(inHandler)
			select {
			case <-time.After(300 * time.Millisecond):
				return []byte("done\n"), "text/plain", nil
			case <-ctx.Done():
				return nil, "", ctx.Err()
			}
		})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(ctx, ln) }()

	reqErr := make(chan error, 1)
	var status int
	go func() {
		resp, err := http.Get("http://" + ln.Addr().String() + "/slow")
		if err != nil {
			reqErr <- err
			return
		}
		defer resp.Body.Close()
		_, _ = io.Copy(io.Discard, resp.Body)
		status = resp.StatusCode
		reqErr <- nil
	}()
	<-inHandler
	cancel() // SIGTERM equivalent: drain with the request in flight
	if err := <-reqErr; err != nil {
		t.Fatalf("in-flight request failed during drain: %v", err)
	}
	if status != http.StatusOK {
		t.Fatalf("in-flight request status %d, want 200", status)
	}
	select {
	case err := <-serveErr:
		if err != nil {
			t.Fatalf("Serve returned %v, want nil (clean drain)", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after drain")
	}
	waitForGoroutines(t, before)
}

// TestDrainTimeoutForcesCancel pins the force path: a request that never
// finishes on its own is cancelled through the base context when the
// drain bound expires, and Serve reports the forced drain.
func TestDrainTimeoutForcesCancel(t *testing.T) {
	before := runtime.NumGoroutine()
	s, _ := newTestServer(t, 0.02, func(c *Config) { c.DrainTimeout = 100 * time.Millisecond })
	inHandler := make(chan struct{})
	sawCancel := make(chan error, 1)
	s.handleCompute("GET /hang", "/hang", weightLight,
		func(ctx context.Context, _ *http.Request) ([]byte, string, error) {
			close(inHandler)
			<-ctx.Done()
			sawCancel <- ctx.Err()
			return nil, "", ctx.Err()
		})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(ctx, ln) }()

	go func() {
		resp, err := http.Get("http://" + ln.Addr().String() + "/hang")
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-inHandler
	cancel()
	select {
	case err := <-sawCancel:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("handler context ended with %v, want Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("handler context never cancelled by forced drain")
	}
	select {
	case err := <-serveErr:
		if err == nil {
			t.Error("Serve returned nil, want forced-drain error")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after forced drain")
	}
	waitForGoroutines(t, before)
}

// TestReadyzDuringDrain checks the readiness flip.
func TestReadyzDuringDrain(t *testing.T) {
	s, _ := newTestServer(t, 0.02, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if status, _, _ := get(t, ts.Client(), ts.URL+"/readyz", nil); status != http.StatusOK {
		t.Fatalf("readyz before drain: %d", status)
	}
	s.draining.Store(true)
	status, hdr, _ := get(t, ts.Client(), ts.URL+"/readyz", nil)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain: %d, want 503", status)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("draining readyz missing Retry-After")
	}
}

// waitForGoroutines polls until the goroutine count returns near the
// baseline (the same tolerance the experiments leak tests use).
func waitForGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
