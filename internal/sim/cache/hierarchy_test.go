package cache

import (
	"testing"

	"leakbound/internal/sim/trace"
)

func TestAlphaLikeValid(t *testing.T) {
	hc := AlphaLike()
	if err := hc.Validate(); err != nil {
		t.Fatalf("AlphaLike invalid: %v", err)
	}
	if hc.L1I.NumLines() != 1024 {
		t.Errorf("L1I lines = %d, want 1024 (64KB/64B)", hc.L1I.NumLines())
	}
	if hc.L1D.NumSets() != 512 {
		t.Errorf("L1D sets = %d, want 512", hc.L1D.NumSets())
	}
	if hc.L2.Assoc != 1 || hc.L2.NumLines() != 32768 {
		t.Errorf("L2 geometry wrong: assoc=%d lines=%d", hc.L2.Assoc, hc.L2.NumLines())
	}
	if hc.L1I.HitLatency != 1 || hc.L1D.HitLatency != 3 || hc.L2.HitLatency != 7 {
		t.Error("latencies do not match the paper's Section 4.1")
	}
}

func TestHierarchyValidateRejects(t *testing.T) {
	hc := AlphaLike()
	hc.MemoryLatency = -5
	if err := hc.Validate(); err == nil {
		t.Error("negative memory latency accepted")
	}
	hc = AlphaLike()
	hc.L1D.BlockBytes = 32
	if err := hc.Validate(); err == nil {
		t.Error("mismatched block sizes accepted")
	}
	hc = AlphaLike()
	hc.L1I.SizeBytes = 1000
	if _, err := NewHierarchy(hc); err == nil {
		t.Error("bad L1I accepted by NewHierarchy")
	}
}

func TestHierarchyLatencies(t *testing.T) {
	h, err := NewHierarchy(AlphaLike())
	if err != nil {
		t.Fatal(err)
	}
	// Cold fetch: L1I miss + L2 miss -> 1 + 7 + 100.
	out := h.Fetch(0x40000)
	if out.Latency != 1+7+100 {
		t.Errorf("cold fetch latency = %d, want 108", out.Latency)
	}
	if !out.L2Used || out.L2.Hit {
		t.Errorf("cold fetch L2 outcome wrong: %+v", out)
	}
	// Warm fetch: L1I hit -> 1.
	out = h.Fetch(0x40000)
	if out.Latency != 1 || out.L2Used {
		t.Errorf("warm fetch: %+v", out)
	}
	// Cold load: 3 + 7 + 100.
	out = h.Data(0x80000)
	if out.Latency != 110 {
		t.Errorf("cold load latency = %d, want 110", out.Latency)
	}
	// Warm load: 3.
	out = h.Data(0x80000)
	if out.Latency != 3 {
		t.Errorf("warm load latency = %d, want 3", out.Latency)
	}
}

func TestHierarchyL2HitPath(t *testing.T) {
	h, err := NewHierarchy(AlphaLike())
	if err != nil {
		t.Fatal(err)
	}
	// Load a block, then evict it from tiny L1D set by conflict while it
	// stays in the huge L2, then reload: L1D miss + L2 hit -> 3 + 7.
	base := uint64(0x100000)
	h.Data(base)
	// L1D is 64KB 2-way with 512 sets: conflict stride = 512 * 64 = 32KB.
	h.Data(base + 32<<10)
	h.Data(base + 64<<10) // evicts base from L1D
	out := h.Data(base)
	if out.Latency != 3+7 {
		t.Errorf("L2-hit load latency = %d, want 10 (%+v)", out.Latency, out)
	}
	if !out.L2Used || !out.L2.Hit {
		t.Errorf("expected L2 hit: %+v", out)
	}
}

func TestHierarchySplitL1(t *testing.T) {
	h, err := NewHierarchy(AlphaLike())
	if err != nil {
		t.Fatal(err)
	}
	h.Fetch(0x1000)
	// Same address via data port must miss L1D (split caches) but hit L2.
	out := h.Data(0x1000)
	if out.L1.Hit {
		t.Error("data access hit in L1I-filled state: caches not split")
	}
	if !out.L2.Hit {
		t.Error("unified L2 did not retain instruction-fetched block")
	}
}

func TestCacheByID(t *testing.T) {
	h, err := NewHierarchy(AlphaLike())
	if err != nil {
		t.Fatal(err)
	}
	if h.CacheByID(trace.L1I) != h.L1I() || h.CacheByID(trace.L1D) != h.L1D() || h.CacheByID(trace.L2) != h.L2() {
		t.Error("CacheByID routing wrong")
	}
	if h.CacheByID(trace.CacheID(9)) != nil {
		t.Error("bogus id returned a cache")
	}
}

func BenchmarkHierarchyData(b *testing.B) {
	h, err := NewHierarchy(AlphaLike())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Data(uint64(i%100000) * 64)
	}
}
