package cache

import (
	"fmt"

	"leakbound/internal/sim/trace"
)

// HierarchyConfig describes the paper's three-level memory system plus the
// latency of main memory behind the L2.
type HierarchyConfig struct {
	L1I           Config
	L1D           Config
	L2            Config
	MemoryLatency int // cycles for an L2 miss
}

// AlphaLike returns the configuration from Section 4.1: a memory hierarchy
// resembling the Compaq Alpha 21264 as modelled by SimpleScalar — 64KB 2-way
// L1I (1-cycle hit), 64KB 2-way L1D (3-cycle hit), unified 2MB direct-mapped
// L2 (7-cycle hit), LRU replacement, 64-byte blocks.
func AlphaLike() HierarchyConfig {
	return HierarchyConfig{
		L1I: Config{
			Name: "L1I", SizeBytes: 64 << 10, BlockBytes: 64, Assoc: 2,
			HitLatency: 1, Policy: LRU,
		},
		L1D: Config{
			Name: "L1D", SizeBytes: 64 << 10, BlockBytes: 64, Assoc: 2,
			HitLatency: 3, Policy: LRU,
		},
		L2: Config{
			Name: "L2", SizeBytes: 2 << 20, BlockBytes: 64, Assoc: 1,
			HitLatency: 7, Policy: LRU,
		},
		MemoryLatency: 100,
	}
}

// Validate checks all three cache configurations.
func (hc HierarchyConfig) Validate() error {
	for _, c := range []Config{hc.L1I, hc.L1D, hc.L2} {
		if err := c.Validate(); err != nil {
			return err
		}
	}
	if hc.MemoryLatency < 0 {
		return fmt.Errorf("cache: negative memory latency %d", hc.MemoryLatency)
	}
	if hc.L1I.BlockBytes != hc.L2.BlockBytes || hc.L1D.BlockBytes != hc.L2.BlockBytes {
		return fmt.Errorf("cache: block size mismatch across levels (L1I=%d L1D=%d L2=%d)",
			hc.L1I.BlockBytes, hc.L1D.BlockBytes, hc.L2.BlockBytes)
	}
	return nil
}

// AccessOutcome summarizes one hierarchy access for the timing model.
type AccessOutcome struct {
	Latency int // total cycles to satisfy the access
	L1      AccessResult
	L2      AccessResult // meaningful only if !L1.Hit
	L2Used  bool
}

// Hierarchy instantiates the three caches and routes accesses.
type Hierarchy struct {
	cfg HierarchyConfig
	l1i *Cache
	l1d *Cache
	l2  *Cache
}

// NewHierarchy builds the hierarchy from cfg.
func NewHierarchy(cfg HierarchyConfig) (*Hierarchy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	l1i, err := New(cfg.L1I)
	if err != nil {
		return nil, err
	}
	l1d, err := New(cfg.L1D)
	if err != nil {
		return nil, err
	}
	l2, err := New(cfg.L2)
	if err != nil {
		return nil, err
	}
	return &Hierarchy{cfg: cfg, l1i: l1i, l1d: l1d, l2: l2}, nil
}

// Config returns the hierarchy configuration.
func (h *Hierarchy) Config() HierarchyConfig { return h.cfg }

// L1I returns the instruction cache.
func (h *Hierarchy) L1I() *Cache { return h.l1i }

// L1D returns the data cache.
func (h *Hierarchy) L1D() *Cache { return h.l1d }

// L2 returns the unified second-level cache.
func (h *Hierarchy) L2() *Cache { return h.l2 }

// CacheByID returns the cache for a trace.CacheID.
func (h *Hierarchy) CacheByID(id trace.CacheID) *Cache {
	switch id {
	case trace.L1I:
		return h.l1i
	case trace.L1D:
		return h.l1d
	case trace.L2:
		return h.l2
	default:
		return nil
	}
}

// Fetch performs an instruction fetch at addr through L1I (and L2 on miss),
// returning the combined outcome.
func (h *Hierarchy) Fetch(addr uint64) AccessOutcome {
	return h.access(h.l1i, addr)
}

// Data performs a load/store at addr through L1D (and L2 on miss).
func (h *Hierarchy) Data(addr uint64) AccessOutcome {
	return h.access(h.l1d, addr)
}

func (h *Hierarchy) access(l1 *Cache, addr uint64) AccessOutcome {
	r1 := l1.Access(addr)
	out := AccessOutcome{Latency: r1.Latency, L1: r1}
	if r1.Hit {
		return out
	}
	r2 := h.l2.Access(addr)
	out.L2 = r2
	out.L2Used = true
	if r2.Hit {
		out.Latency += r2.Latency
	} else {
		out.Latency += r2.Latency + h.cfg.MemoryLatency
	}
	return out
}
