package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func smallConfig() Config {
	return Config{Name: "t", SizeBytes: 1024, BlockBytes: 64, Assoc: 2, HitLatency: 1, Policy: LRU}
}

func TestConfigValidate(t *testing.T) {
	good := smallConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero size", func(c *Config) { c.SizeBytes = 0 }},
		{"non-pow2 size", func(c *Config) { c.SizeBytes = 1000 }},
		{"non-pow2 block", func(c *Config) { c.BlockBytes = 48 }},
		{"zero assoc", func(c *Config) { c.Assoc = 0 }},
		{"assoc not dividing", func(c *Config) { c.Assoc = 3 }},
		{"negative latency", func(c *Config) { c.HitLatency = -1 }},
		{"bad policy", func(c *Config) { c.Policy = ReplacementPolicy(9) }},
	}
	for _, tc := range cases {
		c := smallConfig()
		tc.mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestConfigGeometry(t *testing.T) {
	c := smallConfig()
	if c.NumLines() != 16 {
		t.Errorf("NumLines = %d, want 16", c.NumLines())
	}
	if c.NumSets() != 8 {
		t.Errorf("NumSets = %d, want 8", c.NumSets())
	}
}

func TestPolicyString(t *testing.T) {
	if LRU.String() != "LRU" || FIFO.String() != "FIFO" || Random.String() != "Random" {
		t.Error("policy strings wrong")
	}
	if ReplacementPolicy(9).String() != "ReplacementPolicy(9)" {
		t.Error("unknown policy string wrong")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew did not panic")
		}
	}()
	MustNew(Config{})
}

func TestColdMissThenHit(t *testing.T) {
	c := MustNew(smallConfig())
	r := c.Access(0x1000)
	if r.Hit {
		t.Error("cold access hit")
	}
	if r.Evicted {
		t.Error("cold fill evicted")
	}
	r = c.Access(0x1000)
	if !r.Hit {
		t.Error("second access missed")
	}
	r = c.Access(0x1004) // same 64B block
	if !r.Hit {
		t.Error("same-block access missed")
	}
	st := c.Stats()
	if st.Accesses != 3 || st.Hits != 2 || st.Misses != 1 || st.Fills != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSetMapping(t *testing.T) {
	c := MustNew(smallConfig()) // 8 sets, 64B blocks
	if c.SetIndex(0) != 0 {
		t.Error("addr 0 not in set 0")
	}
	if c.SetIndex(64) != 1 {
		t.Error("addr 64 not in set 1")
	}
	if c.SetIndex(64*8) != 0 {
		t.Error("addr 512 did not wrap to set 0")
	}
	if c.LineAddr(130) != 2 {
		t.Errorf("LineAddr(130) = %d, want 2", c.LineAddr(130))
	}
}

func TestLRUEviction(t *testing.T) {
	c := MustNew(smallConfig()) // 2-way, 8 sets
	// Three conflicting blocks in set 0: 0, 512, 1024 (block 64, 8 sets -> stride 512).
	a, b, d := uint64(0), uint64(512), uint64(1024)
	c.Access(a)
	c.Access(b)
	c.Access(a) // a is now MRU, b is LRU
	r := c.Access(d)
	if r.Hit || !r.Evicted {
		t.Fatalf("conflict access: %+v", r)
	}
	if r.VictimTag != c.LineAddr(b) {
		t.Errorf("victim = line %d, want line of b (%d)", r.VictimTag, c.LineAddr(b))
	}
	if _, res := c.Probe(a); !res {
		t.Error("a (MRU) was evicted")
	}
	if _, res := c.Probe(b); res {
		t.Error("b (LRU) still resident")
	}
}

func TestFIFOEviction(t *testing.T) {
	cfg := smallConfig()
	cfg.Policy = FIFO
	c := MustNew(cfg)
	a, b, d := uint64(0), uint64(512), uint64(1024)
	c.Access(a)
	c.Access(b)
	c.Access(a) // recency does not matter for FIFO; a is oldest fill
	r := c.Access(d)
	if r.VictimTag != c.LineAddr(a) {
		t.Errorf("FIFO victim = %d, want line of a", r.VictimTag)
	}
}

func TestRandomEvictionDeterministic(t *testing.T) {
	run := func() []uint64 {
		cfg := smallConfig()
		cfg.Policy = Random
		c := MustNew(cfg)
		var victims []uint64
		for i := uint64(0); i < 64; i++ {
			r := c.Access(i * 512) // all in set 0
			if r.Evicted {
				victims = append(victims, r.VictimTag)
			}
		}
		return victims
	}
	v1, v2 := run(), run()
	if len(v1) == 0 {
		t.Fatal("no evictions")
	}
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatal("Random replacement not deterministic across runs")
		}
	}
}

func TestProbeDoesNotDisturb(t *testing.T) {
	c := MustNew(smallConfig())
	c.Access(0)
	c.Access(512)
	// Probing 0 must not refresh its recency.
	if _, res := c.Probe(0); !res {
		t.Fatal("probe missed resident line")
	}
	st := c.Stats()
	if st.Accesses != 2 {
		t.Errorf("probe counted as access: %+v", st)
	}
	r := c.Access(1024)
	if r.VictimTag != 0 {
		t.Errorf("probe disturbed LRU order: victim %d, want 0", r.VictimTag)
	}
	if _, res := c.Probe(99999); res {
		t.Error("probe hit absent line")
	}
}

func TestFlush(t *testing.T) {
	c := MustNew(smallConfig())
	for i := uint64(0); i < 16; i++ {
		c.Access(i * 64)
	}
	if c.ResidentLines() != 16 {
		t.Fatalf("resident = %d, want 16", c.ResidentLines())
	}
	c.Flush()
	if c.ResidentLines() != 0 {
		t.Errorf("resident after flush = %d", c.ResidentLines())
	}
	if !c.Access(0).Hit == false {
		t.Error("flushed line still hit")
	}
}

func TestFrameIdentity(t *testing.T) {
	c := MustNew(smallConfig())
	r1 := c.Access(64) // set 1
	if r1.Frame != r1.Set*2+r1.Way {
		t.Errorf("frame %d != set*assoc+way", r1.Frame)
	}
	r2 := c.Access(64)
	if r2.Frame != r1.Frame {
		t.Error("re-access moved frames")
	}
}

func TestStatsConservation(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		c := MustNew(smallConfig())
		n := int(nRaw)%2000 + 1
		for i := 0; i < n; i++ {
			c.Access(uint64(rng.Intn(64)) * 64)
		}
		st := c.Stats()
		if st.Accesses != st.Hits+st.Misses {
			return false
		}
		if st.Misses != st.Fills+st.Evictions {
			return false
		}
		return st.Accesses == uint64(n) && c.ResidentLines() <= c.Config().NumLines()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestLRUStackProperty: with a fixed access stream, a larger-associativity
// LRU cache of the same set count hits at least as often (inclusion
// property of LRU stacks per set).
func TestLRUStackProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func(assoc int) *Cache {
			return MustNew(Config{
				Name: "p", SizeBytes: 64 * 8 * assoc, BlockBytes: 64,
				Assoc: assoc, HitLatency: 1, Policy: LRU,
			})
		}
		small, big := mk(2), mk(4) // both 8 sets
		for i := 0; i < 3000; i++ {
			addr := uint64(rng.Intn(128)) * 64
			small.Access(addr)
			big.Access(addr)
		}
		return big.Stats().Hits >= small.Stats().Hits
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestMissRate(t *testing.T) {
	var s Stats
	if s.MissRate() != 0 {
		t.Error("empty miss rate not 0")
	}
	s = Stats{Accesses: 10, Misses: 3}
	if s.MissRate() != 0.3 {
		t.Errorf("miss rate = %g", s.MissRate())
	}
}

func BenchmarkAccessHit(b *testing.B) {
	c := MustNew(Config{Name: "b", SizeBytes: 64 << 10, BlockBytes: 64, Assoc: 2, HitLatency: 1})
	c.Access(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(0)
	}
}

func BenchmarkAccessMixed(b *testing.B) {
	c := MustNew(Config{Name: "b", SizeBytes: 64 << 10, BlockBytes: 64, Assoc: 2, HitLatency: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i%4096) * 64)
	}
}
