// Package cache implements the set-associative cache model used as the
// memory-hierarchy substrate for the limit study: configuration and geometry
// checks, LRU/FIFO/Random replacement, per-access results rich enough to
// drive timing and interval analysis, and the paper's three-level hierarchy
// (64KB 2-way L1I with 1-cycle hits, 64KB 2-way L1D with 3-cycle hits, and a
// unified 2MB direct-mapped L2 with 7-cycle hits, LRU everywhere).
package cache

import (
	"fmt"
	"math/bits"
)

// ReplacementPolicy selects the victim way on a miss in a full set.
type ReplacementPolicy uint8

const (
	// LRU evicts the least recently used way (the paper's policy throughout).
	LRU ReplacementPolicy = iota
	// FIFO evicts the oldest-filled way.
	FIFO
	// Random evicts a pseudo-random way (xorshift, deterministic per cache).
	Random
)

// String implements fmt.Stringer.
func (p ReplacementPolicy) String() string {
	switch p {
	case LRU:
		return "LRU"
	case FIFO:
		return "FIFO"
	case Random:
		return "Random"
	default:
		return fmt.Sprintf("ReplacementPolicy(%d)", uint8(p))
	}
}

// Config describes a cache's geometry and timing.
type Config struct {
	Name       string
	SizeBytes  int
	BlockBytes int
	Assoc      int
	HitLatency int // cycles
	Policy     ReplacementPolicy
}

// Validate checks the geometry: powers of two, consistent sizes.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.BlockBytes <= 0 || c.Assoc <= 0 {
		return fmt.Errorf("cache %q: non-positive geometry (size=%d block=%d assoc=%d)",
			c.Name, c.SizeBytes, c.BlockBytes, c.Assoc)
	}
	if bits.OnesCount(uint(c.SizeBytes)) != 1 {
		return fmt.Errorf("cache %q: size %d not a power of two", c.Name, c.SizeBytes)
	}
	if bits.OnesCount(uint(c.BlockBytes)) != 1 {
		return fmt.Errorf("cache %q: block %d not a power of two", c.Name, c.BlockBytes)
	}
	lines := c.SizeBytes / c.BlockBytes
	if lines*c.BlockBytes != c.SizeBytes {
		return fmt.Errorf("cache %q: size %d not a multiple of block %d", c.Name, c.SizeBytes, c.BlockBytes)
	}
	if lines%c.Assoc != 0 {
		return fmt.Errorf("cache %q: %d lines not divisible by associativity %d", c.Name, lines, c.Assoc)
	}
	sets := lines / c.Assoc
	if bits.OnesCount(uint(sets)) != 1 {
		return fmt.Errorf("cache %q: %d sets not a power of two", c.Name, sets)
	}
	if c.HitLatency < 0 {
		return fmt.Errorf("cache %q: negative hit latency %d", c.Name, c.HitLatency)
	}
	if c.Policy > Random {
		return fmt.Errorf("cache %q: unknown replacement policy %d", c.Name, c.Policy)
	}
	return nil
}

// NumLines returns the number of cache frames.
func (c Config) NumLines() int { return c.SizeBytes / c.BlockBytes }

// NumSets returns the number of sets.
func (c Config) NumSets() int { return c.NumLines() / c.Assoc }

// Stats accumulates access counters.
type Stats struct {
	Accesses  uint64
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Fills     uint64 // misses that filled a previously empty frame
}

// MissRate returns Misses/Accesses, or 0 with no accesses.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// AccessResult describes the outcome of one cache access.
type AccessResult struct {
	Hit       bool
	Set       int
	Way       int
	Frame     int    // Set*Assoc + Way
	Latency   int    // cycles to satisfy at this level (hit latency; miss handled by caller)
	Evicted   bool   // a valid block was displaced
	VictimTag uint64 // line address of the displaced block, if Evicted
}

// line is one cache frame's metadata.
type line struct {
	tag      uint64 // full block-aligned address (we store the line address, not just the tag bits)
	valid    bool
	lastUsed uint64 // LRU timestamp
	filled   uint64 // FIFO timestamp
}

// Cache is a set-associative cache with configurable replacement. It is a
// functional model: it tracks presence and recency, not data contents.
type Cache struct {
	cfg       Config
	lines     []line // flat frame array: frame = set*assoc + way
	assoc     int
	stats     Stats
	tick      uint64 // logical access counter for recency
	rngState  uint64 // xorshift64 state for Random replacement
	indexMask uint64
	blockLog2 uint
}

// New builds a cache from cfg, validating geometry.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	numSets := cfg.NumSets()
	return &Cache{
		cfg:       cfg,
		lines:     make([]line, numSets*cfg.Assoc),
		assoc:     cfg.Assoc,
		rngState:  0x9E3779B97F4A7C15, // fixed seed: deterministic runs
		indexMask: uint64(numSets - 1),
		blockLog2: uint(bits.TrailingZeros(uint(cfg.BlockBytes))),
	}, nil
}

// MustNew is New that panics on configuration errors; for fixed hierarchies.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a copy of the counters so far.
func (c *Cache) Stats() Stats { return c.stats }

// LineAddr converts a byte address to its block-aligned line address.
func (c *Cache) LineAddr(addr uint64) uint64 { return addr >> c.blockLog2 }

// SetIndex returns the set an address maps to.
func (c *Cache) SetIndex(addr uint64) int {
	return int(c.LineAddr(addr) & c.indexMask)
}

// Access performs one access to byte address addr. On a miss the block is
// filled (this model assumes the lower level always supplies it); the caller
// adds lower-level latency based on Hit.
func (c *Cache) Access(addr uint64) AccessResult {
	lineAddr := c.LineAddr(addr)
	setIdx := int(lineAddr & c.indexMask)
	set := c.set(setIdx)
	c.tick++
	c.stats.Accesses++

	for w := range set {
		if set[w].valid && set[w].tag == lineAddr {
			set[w].lastUsed = c.tick
			c.stats.Hits++
			return AccessResult{
				Hit:     true,
				Set:     setIdx,
				Way:     w,
				Frame:   setIdx*c.cfg.Assoc + w,
				Latency: c.cfg.HitLatency,
			}
		}
	}

	// Miss: pick a victim.
	c.stats.Misses++
	victim := c.pickVictim(set)
	res := AccessResult{
		Hit:     false,
		Set:     setIdx,
		Way:     victim,
		Frame:   setIdx*c.cfg.Assoc + victim,
		Latency: c.cfg.HitLatency,
	}
	if set[victim].valid {
		res.Evicted = true
		res.VictimTag = set[victim].tag
		c.stats.Evictions++
	} else {
		c.stats.Fills++
	}
	set[victim] = line{tag: lineAddr, valid: true, lastUsed: c.tick, filled: c.tick}
	return res
}

// set returns setIdx's ways as a subslice of the flat frame array; the
// header is computed, not loaded, so hot paths touch only the frames.
func (c *Cache) set(setIdx int) []line {
	base := setIdx * c.assoc
	return c.lines[base : base+c.assoc]
}

// AccessLine is Access specialized for the streaming hot path: identical
// state transitions (tick, recency, stats, victim choice) but only the
// frame and hit flag come back, so nothing is copied per access beyond
// two registers. Access and AccessLine may be interleaved freely — they
// drive the same state machine. The CPU model calls this directly per
// fetch group, so it deliberately has no wrapper layers around it.
func (c *Cache) AccessLine(addr uint64) (frame uint32, hit bool) {
	lineAddr := addr >> c.blockLog2
	base := int(lineAddr&c.indexMask) * c.assoc
	c.tick++
	c.stats.Accesses++

	for w := base; w < base+c.assoc; w++ {
		ln := &c.lines[w]
		if ln.valid && ln.tag == lineAddr {
			ln.lastUsed = c.tick
			c.stats.Hits++
			return uint32(w), true
		}
	}

	c.stats.Misses++
	set := c.lines[base : base+c.assoc]
	victim := c.pickVictim(set)
	if set[victim].valid {
		c.stats.Evictions++
	} else {
		c.stats.Fills++
	}
	set[victim] = line{tag: lineAddr, valid: true, lastUsed: c.tick, filled: c.tick}
	return uint32(base + victim), false
}

// Probe reports whether addr is resident without updating recency or stats.
func (c *Cache) Probe(addr uint64) (frame int, resident bool) {
	lineAddr := c.LineAddr(addr)
	setIdx := int(lineAddr & c.indexMask)
	for w, ln := range c.set(setIdx) {
		if ln.valid && ln.tag == lineAddr {
			return setIdx*c.assoc + w, true
		}
	}
	return 0, false
}

// Flush invalidates all frames and clears recency state (stats are kept).
func (c *Cache) Flush() {
	for i := range c.lines {
		c.lines[i] = line{}
	}
}

func (c *Cache) pickVictim(set []line) int {
	// Prefer an invalid way.
	for w := range set {
		if !set[w].valid {
			return w
		}
	}
	switch c.cfg.Policy {
	case LRU:
		best := 0
		for w := 1; w < len(set); w++ {
			if set[w].lastUsed < set[best].lastUsed {
				best = w
			}
		}
		return best
	case FIFO:
		best := 0
		for w := 1; w < len(set); w++ {
			if set[w].filled < set[best].filled {
				best = w
			}
		}
		return best
	case Random:
		// xorshift64
		x := c.rngState
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		c.rngState = x
		return int(x % uint64(len(set)))
	default:
		return 0
	}
}

// ResidentLines returns the number of currently valid frames; useful for
// occupancy assertions in tests.
func (c *Cache) ResidentLines() int {
	n := 0
	for _, ln := range c.lines {
		if ln.valid {
			n++
		}
	}
	return n
}
