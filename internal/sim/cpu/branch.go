package cpu

// Optional branch-prediction model. The paper's machine (a 21264 as
// modelled by SimpleScalar) includes a branch predictor; the default
// timing configuration here omits it — the interval distributions the
// limit study consumes are insensitive to a uniform pipeline-refill tax —
// but the model is available for sensitivity studies: enabling it adds a
// misprediction penalty per control-flow discontinuity the predictor gets
// wrong, stretching interval lengths non-uniformly on branchy code.
//
// The predictor is a classic bimodal table of 2-bit saturating counters
// indexed by the branch's PC, predicting the direction of the transition
// at the end of each fetch group (sequential fall-through vs. taken).

// BranchConfig controls the optional predictor.
type BranchConfig struct {
	// Enabled turns the model on; when false the other fields are ignored
	// and timing matches the paper-calibrated default exactly.
	Enabled bool
	// MispredictPenalty is the pipeline refill cost in cycles (the 21264
	// pays ~7).
	MispredictPenalty int
	// TableBits sizes the bimodal table at 2^TableBits counters
	// (default 12 -> 4096 entries).
	TableBits int
}

// DefaultBranchConfig returns a 21264-ish predictor setup (disabled; set
// Enabled to use it).
func DefaultBranchConfig() BranchConfig {
	return BranchConfig{MispredictPenalty: 7, TableBits: 12}
}

// validate normalizes the configuration.
func (c *BranchConfig) validate() error {
	if !c.Enabled {
		return nil
	}
	if c.MispredictPenalty < 0 {
		return errBranchPenalty
	}
	if c.TableBits <= 0 || c.TableBits > 24 {
		return errBranchTable
	}
	return nil
}

var (
	errBranchPenalty = errorString("cpu: negative mispredict penalty")
	errBranchTable   = errorString("cpu: branch table bits outside (0, 24]")
)

// errorString is a tiny allocation-free error type.
type errorString string

func (e errorString) Error() string { return string(e) }

// BranchStats reports the predictor's behaviour over a run.
type BranchStats struct {
	Branches    uint64 // fetch-group transitions observed
	Mispredicts uint64
}

// MispredictRate returns Mispredicts/Branches.
func (s BranchStats) MispredictRate() float64 {
	if s.Branches == 0 {
		return 0
	}
	return float64(s.Mispredicts) / float64(s.Branches)
}

// bimodal is the 2-bit saturating counter table.
type bimodal struct {
	counters []uint8
	mask     uint64
	stats    BranchStats
}

func newBimodal(bits int) *bimodal {
	n := 1 << bits
	c := make([]uint8, n)
	// Initialize weakly taken: loops are the common case.
	for i := range c {
		c[i] = 2
	}
	return &bimodal{counters: c, mask: uint64(n - 1)}
}

// predictAndUpdate records the transition ending the group at pc (taken =
// the next group is not sequential) and returns whether the prediction was
// wrong.
func (b *bimodal) predictAndUpdate(pc uint64, taken bool) bool {
	idx := (pc >> 2) & b.mask
	ctr := b.counters[idx]
	predictedTaken := ctr >= 2
	b.stats.Branches++
	mispredict := predictedTaken != taken
	if mispredict {
		b.stats.Mispredicts++
	}
	if taken {
		if ctr < 3 {
			b.counters[idx] = ctr + 1
		}
	} else {
		if ctr > 0 {
			b.counters[idx] = ctr - 1
		}
	}
	return mispredict
}
