package cpu

import (
	"testing"

	"leakbound/internal/sim/cache"
	"leakbound/internal/sim/trace"
	"leakbound/internal/workload"
)

// scripted is a test workload replaying a fixed instruction slice.
type scripted struct {
	name string
	ins  []workload.Instr
}

func (s *scripted) Name() string        { return s.name }
func (s *scripted) Description() string { return "scripted test workload" }
func (s *scripted) Emit(yield func(workload.Instr) bool) {
	for _, in := range s.ins {
		if !yield(in) {
			return
		}
	}
}

func straightLine(base uint64, n int) []workload.Instr {
	ins := make([]workload.Instr, n)
	for i := range ins {
		ins[i] = workload.Instr{PC: base + uint64(i)*4, Kind: workload.Op}
	}
	return ins
}

func newHier(t testing.TB) *cache.Hierarchy {
	t.Helper()
	h, err := cache.NewHierarchy(cache.AlphaLike())
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{Width: 0}).Validate(); err == nil {
		t.Error("zero width accepted")
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestRunNilArgs(t *testing.T) {
	h := newHier(t)
	if _, err := Run(nil, h, DefaultConfig(), nil); err == nil {
		t.Error("nil workload accepted")
	}
	w := &scripted{name: "w"}
	if _, err := Run(w, nil, DefaultConfig(), nil); err == nil {
		t.Error("nil hierarchy accepted")
	}
	if _, err := Run(w, h, Config{}, nil); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestFetchGrouping(t *testing.T) {
	// 8 sequential ops in one 64B line -> 2 groups of 4 (width limit).
	w := &scripted{name: "seq", ins: straightLine(0x400000, 8)}
	res, err := Run(w, newHier(t), DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Instructions != 8 {
		t.Errorf("instructions = %d", res.Instructions)
	}
	if res.FetchGroups != 2 {
		t.Errorf("groups = %d, want 2", res.FetchGroups)
	}
	if res.L1I.Accesses != 2 {
		t.Errorf("L1I accesses = %d, want 2", res.L1I.Accesses)
	}
	// First group misses (cold), costs 108; second hits, costs 1.
	if res.Cycles != 108+1 {
		t.Errorf("cycles = %d, want 109", res.Cycles)
	}
}

func TestGroupBreaksAtLineBoundary(t *testing.T) {
	// 4 ops straddling a 64B line boundary: 0x40003c is the last slot of a
	// line, so the group must split 1 + 3.
	w := &scripted{name: "straddle", ins: straightLine(0x40003c, 4)}
	res, err := Run(w, newHier(t), DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.FetchGroups != 2 {
		t.Errorf("groups = %d, want 2 (line-boundary split)", res.FetchGroups)
	}
	if res.L1I.Misses != 2 {
		t.Errorf("L1I misses = %d, want 2 (two distinct lines)", res.L1I.Misses)
	}
}

func TestGroupBreaksAtDiscontinuity(t *testing.T) {
	// Two ops at the same line but non-sequential PCs -> separate groups
	// (taken branch).
	ins := []workload.Instr{
		{PC: 0x400000, Kind: workload.Op},
		{PC: 0x400020, Kind: workload.Op},
	}
	res, err := Run(&scripted{name: "br", ins: ins}, newHier(t), DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.FetchGroups != 2 {
		t.Errorf("groups = %d, want 2", res.FetchGroups)
	}
}

func TestDataStallOnlyOnMiss(t *testing.T) {
	h := newHier(t)
	ins := []workload.Instr{
		{PC: 0x400000, Kind: workload.Load, Addr: 0x10000000},
		{PC: 0x400004, Kind: workload.Load, Addr: 0x10000000},
	}
	res, err := Run(&scripted{name: "ld", ins: ins}, h, DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// One group: cold I-miss 108 + cold D-miss stall (110-3) = 215; the
	// second load hits and is pipelined (no extra cycles).
	if res.Cycles != 108+107 {
		t.Errorf("cycles = %d, want 215", res.Cycles)
	}
	if res.L1D.Accesses != 2 || res.L1D.Misses != 1 {
		t.Errorf("L1D stats: %+v", res.L1D)
	}
}

func TestEventStreamShape(t *testing.T) {
	ins := []workload.Instr{
		{PC: 0x400000, Kind: workload.Op},
		{PC: 0x400004, Kind: workload.Load, Addr: 0x10000040},
		{PC: 0x400008, Kind: workload.Store, Addr: 0x10000080},
	}
	var events []trace.Event
	_, err := Run(&scripted{name: "ev", ins: ins}, newHier(t), DefaultConfig(), func(e trace.Event) {
		events = append(events, e)
	})
	if err != nil {
		t.Fatal(err)
	}
	// 1 L1I + 1 L2 (I miss) + 2 L1D + 2 L2 (D misses) = 6 events.
	if len(events) != 6 {
		t.Fatalf("events = %d, want 6: %+v", len(events), events)
	}
	var prev uint64
	counts := map[trace.CacheID]int{}
	for _, e := range events {
		if e.Cycle < prev {
			t.Errorf("events out of order: %d after %d", e.Cycle, prev)
		}
		prev = e.Cycle
		counts[e.Cache]++
	}
	if counts[trace.L1I] != 1 || counts[trace.L1D] != 2 || counts[trace.L2] != 3 {
		t.Errorf("event mix: %v", counts)
	}
	// The store event must carry the store kind and its PC.
	found := false
	for _, e := range events {
		if e.Cache == trace.L1D && e.Kind == trace.Store {
			found = true
			if e.PC != 0x400008 {
				t.Errorf("store PC = %#x", e.PC)
			}
			if e.LineAddr != 0x10000080>>6 {
				t.Errorf("store line = %#x", e.LineAddr)
			}
		}
	}
	if !found {
		t.Error("no store event")
	}
}

func TestMaxInstrs(t *testing.T) {
	w := workload.MustNew("gzip", 1)
	cfg := DefaultConfig()
	cfg.MaxInstrs = 5000
	res, err := Run(w, newHier(t), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Instructions != 5000 {
		t.Errorf("instructions = %d, want exactly 5000", res.Instructions)
	}
}

func TestMaxCycles(t *testing.T) {
	w := workload.MustNew("ammp", 1)
	cfg := DefaultConfig()
	cfg.MaxCycles = 2000
	res, err := Run(w, newHier(t), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The bound is checked per instruction, so we may overshoot by at most
	// one group's stall, but not wildly.
	if res.Cycles < 2000 || res.Cycles > 3000 {
		t.Errorf("cycles = %d, want ~2000", res.Cycles)
	}
}

func TestIPCSane(t *testing.T) {
	w := workload.MustNew("gzip", 0.02)
	res, err := Run(w, newHier(t), DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	ipc := res.IPC()
	// Short runs are dominated by cold startup misses, so the floor is low.
	if ipc < 0.2 || ipc > 4 {
		t.Errorf("IPC = %.2f, want within (0.2, 4) for a 4-wide core", ipc)
	}
	if (Result{}).IPC() != 0 {
		t.Error("IPC of empty result not 0")
	}
}

func TestRunToStream(t *testing.T) {
	w := workload.MustNew("gzip", 0.01)
	s, res, err := RunToStream(w, newHier(t), DefaultConfig(), trace.L1D)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() == 0 {
		t.Fatal("empty stream")
	}
	if s.NumFrames != 1024 {
		t.Errorf("NumFrames = %d, want 1024", s.NumFrames)
	}
	if s.TotalCycles < res.Cycles {
		t.Errorf("TotalCycles %d < run cycles %d", s.TotalCycles, res.Cycles)
	}
	if err := s.Validate(); err != nil {
		t.Errorf("stream invalid: %v", err)
	}
	for _, e := range s.Events {
		if e.Cache != trace.L1D {
			t.Fatalf("foreign event: %+v", e)
		}
	}
}

func TestDeterministicTiming(t *testing.T) {
	run := func() Result {
		w := workload.MustNew("vortex", 0.01)
		res, err := Run(w, newHier(t), DefaultConfig(), nil)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("non-deterministic results:\n%+v\n%+v", a, b)
	}
}

func TestFrameWithinRange(t *testing.T) {
	w := workload.MustNew("mesa", 0.02)
	h := newHier(t)
	bad := 0
	_, err := Run(w, h, DefaultConfig(), func(e trace.Event) {
		c := h.CacheByID(e.Cache)
		if int(e.Frame) >= c.Config().NumLines() {
			bad++
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if bad > 0 {
		t.Errorf("%d events with out-of-range frames", bad)
	}
}

func BenchmarkRunGzip(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h, err := cache.NewHierarchy(cache.AlphaLike())
		if err != nil {
			b.Fatal(err)
		}
		w := workload.MustNew("gzip", 0.05)
		if _, err := Run(w, h, DefaultConfig(), func(e trace.Event) {}); err != nil {
			b.Fatal(err)
		}
	}
}
