package cpu

import (
	"context"
	"errors"
	"testing"
	"time"

	"leakbound/internal/sim/cache"
	"leakbound/internal/sim/trace"
	"leakbound/internal/workload"
)

// TestRunContextCancelled verifies an already-cancelled context stops the
// run almost immediately, returns ctx.Err(), and never calls the sink
// after RunContext returns.
func TestRunContextCancelled(t *testing.T) {
	w := workload.MustNew("gzip", 0.2)
	hier, err := cache.NewHierarchy(cache.AlphaLike())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var events uint64
	res, err := RunContext(ctx, w, hier, DefaultConfig(), func(e trace.Event) { events++ })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	// The pre-cancelled context is observed on the very first check.
	if res.Instructions > ctxCheckMask+1 {
		t.Fatalf("ran %d instructions after cancellation (check mask %d)", res.Instructions, ctxCheckMask)
	}
	if events > 0 && res.Cycles == 0 {
		t.Fatalf("sink saw %d events but result reports no cycles", events)
	}
}

// TestRunContextDeadline verifies a deadline mid-run stops promptly with
// DeadlineExceeded and a partial result.
func TestRunContextDeadline(t *testing.T) {
	w := workload.MustNew("gcc", 1.0)
	hier, err := cache.NewHierarchy(cache.AlphaLike())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := RunContext(ctx, w, hier, DefaultConfig(), nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v, want prompt stop", elapsed)
	}
	// A full gcc run is millions of instructions; a 1ms budget must have
	// stopped it early, and the partial result must still be coherent.
	full, err := Run(workload.MustNew("gcc", 1.0), mustHierarchy(t), DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Instructions >= full.Instructions {
		t.Fatalf("deadline run executed %d instructions, full run %d — not cancelled early",
			res.Instructions, full.Instructions)
	}
}

// TestRunContextBackgroundMatchesRun proves the context plumbing does not
// perturb the simulation: Run and RunContext(Background) produce identical
// results and identical event streams.
func TestRunContextBackgroundMatchesRun(t *testing.T) {
	mk := func() (workload.Workload, *cache.Hierarchy) {
		return workload.MustNew("gzip", 0.05), mustHierarchy(t)
	}
	w1, h1 := mk()
	var n1 uint64
	r1, err := Run(w1, h1, DefaultConfig(), func(e trace.Event) { n1++ })
	if err != nil {
		t.Fatal(err)
	}
	w2, h2 := mk()
	var n2 uint64
	r2, err := RunContext(context.Background(), w2, h2, DefaultConfig(), func(e trace.Event) { n2++ })
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 || n1 != n2 {
		t.Fatalf("Run %+v (%d events) != RunContext %+v (%d events)", r1, n1, r2, n2)
	}
}

func mustHierarchy(t *testing.T) *cache.Hierarchy {
	t.Helper()
	h, err := cache.NewHierarchy(cache.AlphaLike())
	if err != nil {
		t.Fatal(err)
	}
	return h
}
