// Package cpu implements the cycle-level timing core that stands in for
// SimpleScalar's sim-alpha in the paper's methodology (Section 4.1): a
// 4-wide in-order front end fetching through the L1 instruction cache, with
// loads and stores going through the L1 data cache and a unified L2 behind
// both. Misses stall the pipeline for the hierarchy latency; hits are fully
// pipelined.
//
// The model's job is not absolute IPC fidelity — the limit study consumes
// only the *timed cache-line access stream* — so the core is deliberately
// simple: fetch groups of up to Width sequential instructions break at
// I-cache line boundaries and control-flow discontinuities, each group costs
// one cycle plus any miss stalls, and data accesses issue in program order
// within their group.
package cpu

import (
	"context"
	"errors"
	"fmt"

	"leakbound/internal/sim/cache"
	"leakbound/internal/sim/trace"
	"leakbound/internal/telemetry"
	"leakbound/internal/workload"
)

// Config controls the timing core.
type Config struct {
	// Width is the fetch width in instructions per cycle (the paper's
	// machine is 4-wide).
	Width int
	// MaxInstrs bounds the dynamic instruction count; 0 means unlimited.
	MaxInstrs uint64
	// MaxCycles bounds simulated time; 0 means unlimited.
	MaxCycles uint64
	// Branch optionally enables the branch-prediction model (see
	// branch.go); disabled by default to match the paper-calibrated
	// timing.
	Branch BranchConfig
}

// DefaultConfig returns the paper's 4-wide configuration with no bounds.
func DefaultConfig() Config { return Config{Width: 4} }

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Width <= 0 {
		return fmt.Errorf("cpu: non-positive width %d", c.Width)
	}
	return c.Branch.validate()
}

// Sink receives timed cache access events as the simulation runs. Events
// arrive in non-decreasing cycle order.
//
// Contract: Run invokes sink synchronously, on the goroutine Run itself was
// called from, and never after Run returns. A sink therefore needs no
// internal synchronization for state owned by that one Run call (e.g. an
// error variable the caller inspects afterwards) — but state shared between
// concurrent Run calls must be synchronized by the caller.
type Sink func(trace.Event)

// Result summarizes one simulation run.
type Result struct {
	Cycles       uint64
	Instructions uint64
	FetchGroups  uint64
	L1I          cache.Stats
	L1D          cache.Stats
	L2           cache.Stats
	Branch       BranchStats
}

// IPC returns instructions per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// Run simulates the workload through the hierarchy, pushing every L1I, L1D
// and L2 access to sink (which may be nil to collect statistics only).
// It is RunContext with a background context.
func Run(w workload.Workload, hier *cache.Hierarchy, cfg Config, sink Sink) (Result, error) {
	return RunContext(context.Background(), w, hier, cfg, sink)
}

// ctxCheckMask throttles cancellation checks to every 4096 instructions —
// frequent enough that a multi-million-instruction run stops within
// microseconds of cancellation, rare enough that the hot loop never feels
// the context's mutex.
const ctxCheckMask = 1<<12 - 1

// RunContext is Run with cooperative cancellation: the simulation polls
// ctx every few thousand instructions and, once the context is done, stops
// emitting, flushes its partial run totals to telemetry (so an aborted
// sweep still leaves an audit trail), and returns the partial Result
// together with ctx.Err(). The sink contract is unchanged: it is invoked
// synchronously on this goroutine and never after RunContext returns.
func RunContext(ctx context.Context, w workload.Workload, hier *cache.Hierarchy, cfg Config, sink Sink) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if w == nil {
		return Result{}, errors.New("cpu: nil workload")
	}
	if hier == nil {
		return Result{}, errors.New("cpu: nil hierarchy")
	}
	m := &machine{cfg: cfg, hier: hier, sink: sink, ctx: ctx}
	if cfg.Branch.Enabled {
		m.predictor = newBimodal(cfg.Branch.TableBits)
	}
	w.Emit(m.consume)
	m.flushGroup()
	res := Result{
		Cycles:       m.cycle,
		Instructions: m.instrs,
		FetchGroups:  m.groups,
		L1I:          hier.L1I().Stats(),
		L1D:          hier.L1D().Stats(),
		L2:           hier.L2().Stats(),
	}
	if m.predictor != nil {
		res.Branch = m.predictor.stats
	}
	// Flush run totals to telemetry in one shot — the per-event path stays
	// free of shared-memory traffic. Cancelled runs flush too, tagged by
	// the runs_cancelled counter.
	sc := telemetry.Default().Scope("cpu")
	sc.Counter("runs").Add(1)
	sc.Counter("instructions").Add(res.Instructions)
	sc.Counter("cycles").Add(res.Cycles)
	sc.Counter("events_emitted").Add(m.events)
	sc.Histogram("run_cycles").Record(res.Cycles)
	if m.ctxErr != nil {
		sc.Counter("runs_cancelled").Add(1)
		return res, m.ctxErr
	}
	return res, nil
}

// machine holds the in-flight fetch group and the cycle clock.
type machine struct {
	cfg    Config
	hier   *cache.Hierarchy
	sink   Sink
	ctx    context.Context
	ctxErr error

	cycle  uint64
	instrs uint64
	groups uint64
	events uint64

	group     []workload.Instr
	stopping  bool
	predictor *bimodal
	penalty   uint64 // pending mispredict refill cycles
}

// consume receives one instruction from the workload generator and returns
// false once a configured bound is reached.
func (m *machine) consume(in workload.Instr) bool {
	if m.stopping {
		return false
	}
	if m.instrs&ctxCheckMask == 0 {
		if err := m.ctx.Err(); err != nil {
			m.ctxErr = err
			m.stopping = true
			return false
		}
	}
	if len(m.group) > 0 {
		last := m.group[len(m.group)-1]
		sameLine := (in.PC >> 6) == (m.group[0].PC >> 6)
		sequential := in.PC == last.PC+4
		if len(m.group) >= m.cfg.Width || !sequential || !sameLine {
			if m.predictor != nil {
				// The group ends in a control transfer (taken) or a
				// fall-through (not taken); a misprediction costs a
				// pipeline refill before the next group fetches.
				if m.predictor.predictAndUpdate(last.PC, !sequential) {
					m.penalty += uint64(m.cfg.Branch.MispredictPenalty)
				}
			}
			m.flushGroup()
		}
	}
	m.group = append(m.group, in)
	m.instrs++
	if m.cfg.MaxInstrs > 0 && m.instrs >= m.cfg.MaxInstrs {
		m.stopping = true
		return false
	}
	if m.cfg.MaxCycles > 0 && m.cycle >= m.cfg.MaxCycles {
		m.stopping = true
		return false
	}
	return true
}

// flushGroup retires the pending fetch group, advancing the clock.
func (m *machine) flushGroup() {
	if len(m.group) == 0 {
		return
	}
	m.groups++
	m.cycle += m.penalty
	m.penalty = 0
	pc := m.group[0].PC
	fetchCycle := m.cycle

	out := m.hier.Fetch(pc)
	m.emit(trace.Event{
		Cycle:    fetchCycle,
		LineAddr: pc >> 6,
		Frame:    uint32(out.L1.Frame),
		PC:       pc,
		Cache:    trace.L1I,
		Kind:     trace.Fetch,
		Miss:     !out.L1.Hit,
	})
	if out.L2Used {
		m.emit(trace.Event{
			Cycle:    fetchCycle,
			LineAddr: pc >> 6,
			Frame:    uint32(out.L2.Frame),
			PC:       pc,
			Cache:    trace.L2,
			Kind:     trace.Fetch,
			Miss:     !out.L2.Hit,
		})
	}
	if out.L1.Hit {
		m.cycle++ // fetch fully pipelined
	} else {
		m.cycle += uint64(out.Latency) // stall for the refill
	}

	for _, in := range m.group {
		if in.Kind == workload.Op {
			continue
		}
		kind := trace.Load
		if in.Kind == workload.Store {
			kind = trace.Store
		}
		dout := m.hier.Data(in.Addr)
		m.emit(trace.Event{
			Cycle:    m.cycle,
			LineAddr: in.Addr >> 6,
			Frame:    uint32(dout.L1.Frame),
			PC:       in.PC,
			Cache:    trace.L1D,
			Kind:     kind,
			Miss:     !dout.L1.Hit,
		})
		if dout.L2Used {
			m.emit(trace.Event{
				Cycle:    m.cycle,
				LineAddr: in.Addr >> 6,
				Frame:    uint32(dout.L2.Frame),
				PC:       in.PC,
				Cache:    trace.L2,
				Kind:     kind,
				Miss:     !dout.L2.Hit,
			})
		}
		if !dout.L1.Hit {
			// Stall for the portion beyond the pipelined L1 hit latency.
			m.cycle += uint64(dout.Latency - m.hier.Config().L1D.HitLatency)
		}
	}
	m.group = m.group[:0]
}

func (m *machine) emit(e trace.Event) {
	m.events++
	if m.sink != nil {
		m.sink(e)
	}
}

// RunToStream is a convenience wrapper that collects all events for one
// cache into an in-memory trace.Stream; intended for tests and small tools,
// not full-length runs. It is RunToStreamContext with a background context.
func RunToStream(w workload.Workload, hier *cache.Hierarchy, cfg Config, id trace.CacheID) (*trace.Stream, Result, error) {
	return RunToStreamContext(context.Background(), w, hier, cfg, id)
}

// RunToStreamContext is RunToStream with cooperative cancellation; see
// RunContext for the cancellation semantics.
func RunToStreamContext(ctx context.Context, w workload.Workload, hier *cache.Hierarchy, cfg Config, id trace.CacheID) (*trace.Stream, Result, error) {
	s := &trace.Stream{}
	res, err := RunContext(ctx, w, hier, cfg, func(e trace.Event) {
		if e.Cache == id {
			if err := s.Append(e); err != nil {
				panic(err) // Run guarantees monotone cycles; a failure here is a bug
			}
		}
	})
	if err != nil {
		return nil, Result{}, err
	}
	if res.Cycles > s.TotalCycles {
		s.TotalCycles = res.Cycles
	}
	c := hier.CacheByID(id)
	if c != nil {
		s.NumFrames = uint32(c.Config().NumLines())
	}
	return s, res, nil
}
