// Package cpu implements the cycle-level timing core that stands in for
// SimpleScalar's sim-alpha in the paper's methodology (Section 4.1): a
// 4-wide in-order front end fetching through the L1 instruction cache, with
// loads and stores going through the L1 data cache and a unified L2 behind
// both. Misses stall the pipeline for the hierarchy latency; hits are fully
// pipelined.
//
// The model's job is not absolute IPC fidelity — the limit study consumes
// only the *timed cache-line access stream* — so the core is deliberately
// simple: fetch groups of up to Width sequential instructions break at
// I-cache line boundaries and control-flow discontinuities, each group costs
// one cycle plus any miss stalls, and data accesses issue in program order
// within their group.
package cpu

import (
	"context"
	"errors"
	"fmt"

	"leakbound/internal/sim/cache"
	"leakbound/internal/sim/stream"
	"leakbound/internal/sim/trace"
	"leakbound/internal/telemetry"
	"leakbound/internal/workload"
)

// Config controls the timing core.
type Config struct {
	// Width is the fetch width in instructions per cycle (the paper's
	// machine is 4-wide).
	Width int
	// MaxInstrs bounds the dynamic instruction count; 0 means unlimited.
	MaxInstrs uint64
	// MaxCycles bounds simulated time; 0 means unlimited.
	MaxCycles uint64
	// Branch optionally enables the branch-prediction model (see
	// branch.go); disabled by default to match the paper-calibrated
	// timing.
	Branch BranchConfig
}

// DefaultConfig returns the paper's 4-wide configuration with no bounds.
func DefaultConfig() Config { return Config{Width: 4} }

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Width <= 0 {
		return fmt.Errorf("cpu: non-positive width %d", c.Width)
	}
	return c.Branch.validate()
}

// Sink receives timed cache access events as the simulation runs. Events
// arrive in non-decreasing cycle order.
//
// Contract: Run invokes sink synchronously, on the goroutine Run itself was
// called from, and never after Run returns. A sink therefore needs no
// internal synchronization for state owned by that one Run call (e.g. an
// error variable the caller inspects afterwards) — but state shared between
// concurrent Run calls must be synchronized by the caller.
type Sink func(trace.Event)

// Result summarizes one simulation run.
type Result struct {
	Cycles       uint64
	Instructions uint64
	FetchGroups  uint64
	L1I          cache.Stats
	L1D          cache.Stats
	L2           cache.Stats
	Branch       BranchStats
}

// IPC returns instructions per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// Run simulates the workload through the hierarchy, pushing every L1I, L1D
// and L2 access to sink (which may be nil to collect statistics only).
// It is RunContext with a background context.
func Run(w workload.Workload, hier *cache.Hierarchy, cfg Config, sink Sink) (Result, error) {
	return RunContext(context.Background(), w, hier, cfg, sink)
}

// ctxCheckMask throttles cancellation checks to every 4096 instructions —
// frequent enough that a multi-million-instruction run stops within
// microseconds of cancellation, rare enough that the hot loop never feels
// the context's mutex.
const ctxCheckMask = 1<<12 - 1

// RunContext is Run with cooperative cancellation: the simulation polls
// ctx every few thousand instructions and, once the context is done, stops
// emitting, flushes its partial run totals to telemetry (so an aborted
// sweep still leaves an audit trail), and returns the partial Result
// together with ctx.Err(). The sink contract is unchanged: it is invoked
// synchronously on this goroutine and never after RunContext returns.
func RunContext(ctx context.Context, w workload.Workload, hier *cache.Hierarchy, cfg Config, sink Sink) (Result, error) {
	m, err := newMachine(ctx, w, hier, cfg)
	if err != nil {
		return Result{}, err
	}
	m.sink = sink
	return m.run(w)
}

// RunStream simulates the workload, delivering events to sink in
// fixed-capacity struct-of-arrays batches instead of one callback per
// event — the single-pass streaming path: no event slice is ever
// materialized, and the one batch buffer is reused for the whole run.
// It is RunStreamContext with a background context.
//
//lint:hotpath entry
func RunStream(w workload.Workload, hier *cache.Hierarchy, cfg Config, sink stream.Sink) (Result, error) {
	return RunStreamContext(context.Background(), w, hier, cfg, sink)
}

// RunStreamContext is RunStream with cooperative cancellation (see
// RunContext). sink runs synchronously on this goroutine, roughly once
// per cancellation-poll window; the batch it receives is reused as soon
// as it returns. A sink error stops the simulation and is returned with
// the partial Result. Event order and timing are bit-identical to
// RunContext over the same inputs.
func RunStreamContext(ctx context.Context, w workload.Workload, hier *cache.Hierarchy, cfg Config, sink stream.Sink) (Result, error) {
	if sink == nil {
		return Result{}, errors.New("cpu: nil batch sink")
	}
	m, err := newMachine(ctx, w, hier, cfg)
	if err != nil {
		return Result{}, err
	}
	m.batch = stream.NewBatch(stream.DefaultBatchEvents)
	m.flushFn = func(b *stream.Batch) (*stream.Batch, error) {
		//lint:ignore hotalloc one indirect sink call per full batch, amortized over DefaultBatchEvents events
		err := sink(b)
		b.Reset()
		return b, err
	}
	m.finishFn = func(b *stream.Batch) error {
		if b.Len() == 0 {
			return nil
		}
		//lint:ignore hotalloc final partial-batch flush, once per run
		return sink(b)
	}
	return m.run(w)
}

// RunRingContext is RunStreamContext decoupled through an SPSC ring: the
// simulation (producer) fills batches from the ring's free list and a
// consumer goroutine drains them (typically via Ring.Consume),
// overlapping simulation with analysis on multi-core hosts. The ring is
// always closed before RunRingContext returns — including on
// cancellation — so the consumer terminates; callers must still wait for
// the consumer to finish before reading its results.
//
//lint:hotpath entry
func RunRingContext(ctx context.Context, w workload.Workload, hier *cache.Hierarchy, cfg Config, ring *stream.Ring) (Result, error) {
	if ring == nil {
		return Result{}, errors.New("cpu: nil ring")
	}
	m, err := newMachine(ctx, w, hier, cfg)
	if err != nil {
		return Result{}, err
	}
	defer ring.Close()
	m.batch = ring.Get()
	m.flushFn = func(b *stream.Batch) (*stream.Batch, error) {
		ring.Send(b)
		return ring.Get(), nil
	}
	m.finishFn = func(b *stream.Batch) error {
		if b.Len() > 0 {
			ring.Send(b)
		}
		return nil
	}
	return m.run(w)
}

func newMachine(ctx context.Context, w workload.Workload, hier *cache.Hierarchy, cfg Config) (*machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if w == nil {
		return nil, errors.New("cpu: nil workload")
	}
	if hier == nil {
		return nil, errors.New("cpu: nil hierarchy")
	}
	hc := hier.Config()
	m := &machine{
		cfg: cfg, hier: hier, ctx: ctx,
		l1i: hier.L1I(), l1d: hier.L1D(), l2: hier.L2(),
		l1iHitLat: uint64(hc.L1I.HitLatency),
		l1dHitLat: uint64(hc.L1D.HitLatency),
		l2HitLat:  uint64(hc.L2.HitLatency),
		memLat:    uint64(hc.MemoryLatency),
	}
	if cfg.Branch.Enabled {
		m.predictor = newBimodal(cfg.Branch.TableBits)
	}
	return m, nil
}

// run drives the instruction stream to completion (or cancellation) and
// assembles the Result; shared by the per-event and batched entry points.
func (m *machine) run(w workload.Workload) (Result, error) {
	w.Emit(m.consume)
	m.flushGroup()
	if m.finishFn != nil && m.sinkErr == nil && m.ctxErr == nil {
		m.sinkErr = m.finishFn(m.batch)
	}
	res := Result{
		Cycles:       m.cycle,
		Instructions: m.instrs,
		FetchGroups:  m.groups,
		L1I:          m.hier.L1I().Stats(),
		L1D:          m.hier.L1D().Stats(),
		L2:           m.hier.L2().Stats(),
	}
	if m.predictor != nil {
		res.Branch = m.predictor.stats
	}
	// Flush run totals to telemetry in one shot — the per-event path stays
	// free of shared-memory traffic. Cancelled runs flush too, tagged by
	// the runs_cancelled counter.
	sc := telemetry.Default().Scope("cpu")
	sc.Counter("runs").Add(1)
	sc.Counter("instructions").Add(res.Instructions)
	sc.Counter("cycles").Add(res.Cycles)
	sc.Counter("events_emitted").Add(m.events)
	sc.Histogram("run_cycles").Record(res.Cycles)
	if m.ctxErr != nil {
		sc.Counter("runs_cancelled").Add(1)
		return res, m.ctxErr
	}
	if m.sinkErr != nil {
		return res, m.sinkErr
	}
	return res, nil
}

// machine holds the in-flight fetch group and the cycle clock. Exactly
// one of sink (per-event mode) or batch+flushFn (streaming mode) is set.
type machine struct {
	cfg    Config
	hier   *cache.Hierarchy
	sink   Sink
	ctx    context.Context
	ctxErr error

	// Direct cache references and hoisted latencies: flushGroup walks the
	// hierarchy itself (L1 probe, then L2 on a miss) rather than calling
	// through wrapper methods that repack the outcome per access.
	l1i, l1d, l2                           *cache.Cache
	l1iHitLat, l1dHitLat, l2HitLat, memLat uint64

	// Streaming mode: emit appends columns to batch; when it fills,
	// flushFn delivers it and returns the next buffer to fill (the same
	// one reset, or a fresh ring batch). finishFn delivers the final
	// partial batch after the last fetch group retires.
	batch    *stream.Batch
	flushFn  func(*stream.Batch) (*stream.Batch, error)
	finishFn func(*stream.Batch) error
	sinkErr  error

	cycle  uint64
	instrs uint64
	groups uint64
	events uint64

	group     []workload.Instr
	stopping  bool
	predictor *bimodal
	penalty   uint64 // pending mispredict refill cycles
}

// consume receives one instruction from the workload generator and returns
// false once a configured bound is reached.
func (m *machine) consume(in workload.Instr) bool {
	if m.stopping {
		return false
	}
	if m.instrs&ctxCheckMask == 0 {
		//lint:ignore hotalloc cancellation poll: one interface dispatch per ctxCheckMask-sized window, not per event
		if err := m.ctx.Err(); err != nil {
			m.ctxErr = err
			m.stopping = true
			return false
		}
	}
	if len(m.group) > 0 {
		last := m.group[len(m.group)-1]
		sameLine := (in.PC >> 6) == (m.group[0].PC >> 6)
		sequential := in.PC == last.PC+4
		if len(m.group) >= m.cfg.Width || !sequential || !sameLine {
			if m.predictor != nil {
				// The group ends in a control transfer (taken) or a
				// fall-through (not taken); a misprediction costs a
				// pipeline refill before the next group fetches.
				if m.predictor.predictAndUpdate(last.PC, !sequential) {
					m.penalty += uint64(m.cfg.Branch.MispredictPenalty)
				}
			}
			m.flushGroup()
		}
	}
	//lint:ignore hotalloc group buffer reaches fetch-width capacity within the first few groups and is reused via m.group[:0]
	m.group = append(m.group, in)
	m.instrs++
	if m.cfg.MaxInstrs > 0 && m.instrs >= m.cfg.MaxInstrs {
		m.stopping = true
		return false
	}
	if m.cfg.MaxCycles > 0 && m.cycle >= m.cfg.MaxCycles {
		m.stopping = true
		return false
	}
	return true
}

// flushGroup retires the pending fetch group, advancing the clock. It
// walks the hierarchy directly — L1 probe, then L2 on a miss — with the
// same state transitions and timing as Hierarchy.Fetch/Data, but without
// a wrapper call and outcome-struct copy per access.
func (m *machine) flushGroup() {
	if len(m.group) == 0 {
		return
	}
	m.groups++
	m.cycle += m.penalty
	m.penalty = 0
	pc := m.group[0].PC
	fetchCycle := m.cycle

	f1, hit1 := m.l1i.AccessLine(pc)
	m.emit(fetchCycle, pc>>6, pc, f1, trace.L1I, trace.Fetch, !hit1)
	if hit1 {
		m.cycle++ // fetch fully pipelined
	} else {
		f2, hit2 := m.l2.AccessLine(pc)
		m.emit(fetchCycle, pc>>6, pc, f2, trace.L2, trace.Fetch, !hit2)
		lat := m.l1iHitLat + m.l2HitLat
		if !hit2 {
			lat += m.memLat
		}
		m.cycle += lat // stall for the refill
	}

	for _, in := range m.group {
		if in.Kind == workload.Op {
			continue
		}
		kind := trace.Load
		if in.Kind == workload.Store {
			kind = trace.Store
		}
		df1, dhit1 := m.l1d.AccessLine(in.Addr)
		m.emit(m.cycle, in.Addr>>6, in.PC, df1, trace.L1D, kind, !dhit1)
		if !dhit1 {
			df2, dhit2 := m.l2.AccessLine(in.Addr)
			m.emit(m.cycle, in.Addr>>6, in.PC, df2, trace.L2, kind, !dhit2)
			// Stall for the portion beyond the pipelined L1 hit latency.
			lat := m.l2HitLat
			if !dhit2 {
				lat += m.memLat
			}
			m.cycle += lat
		}
	}
	m.group = m.group[:0]
}

// emit delivers one event by columns: appended to the current batch in
// streaming mode (flushing when full), or boxed into a trace.Event for
// the per-event sink.
func (m *machine) emit(cycle, lineAddr, pc uint64, frame uint32, cacheID trace.CacheID, kind trace.Kind, miss bool) {
	m.events++
	if m.batch != nil {
		//lint:ignore hotalloc batch columns are fixed-capacity and Full() flushes before any append could grow them
		m.batch.Append(cycle, lineAddr, pc, frame, cacheID, kind, miss)
		if m.batch.Full() {
			m.flushBatch()
		}
		return
	}
	if m.sink != nil {
		//lint:ignore hotalloc per-event sink is the compatibility path; the streaming entry points leave m.sink nil
		m.sink(trace.Event{
			Cycle:    cycle,
			LineAddr: lineAddr,
			Frame:    frame,
			PC:       pc,
			Cache:    cacheID,
			Kind:     kind,
			Miss:     miss,
		})
	}
}

func (m *machine) flushBatch() {
	if m.sinkErr != nil {
		m.batch.Reset()
		return
	}
	//lint:ignore hotalloc one indirect flush per full batch
	next, err := m.flushFn(m.batch)
	if err != nil {
		m.sinkErr = err
		m.stopping = true
		m.batch.Reset()
		return
	}
	m.batch = next
}

// RunToStream is a convenience wrapper that collects all events for one
// cache into an in-memory trace.Stream; intended for tests and small tools,
// not full-length runs. It is RunToStreamContext with a background context.
func RunToStream(w workload.Workload, hier *cache.Hierarchy, cfg Config, id trace.CacheID) (*trace.Stream, Result, error) {
	return RunToStreamContext(context.Background(), w, hier, cfg, id)
}

// RunToStreamContext is RunToStream with cooperative cancellation; see
// RunContext for the cancellation semantics.
func RunToStreamContext(ctx context.Context, w workload.Workload, hier *cache.Hierarchy, cfg Config, id trace.CacheID) (*trace.Stream, Result, error) {
	s := &trace.Stream{}
	res, err := RunContext(ctx, w, hier, cfg, func(e trace.Event) {
		if e.Cache == id {
			if err := s.Append(e); err != nil {
				panic(err) // Run guarantees monotone cycles; a failure here is a bug
			}
		}
	})
	if err != nil {
		return nil, Result{}, err
	}
	if res.Cycles > s.TotalCycles {
		s.TotalCycles = res.Cycles
	}
	c := hier.CacheByID(id)
	if c != nil {
		s.NumFrames = uint32(c.Config().NumLines())
	}
	return s, res, nil
}
