package cpu

import (
	"testing"

	"leakbound/internal/sim/cache"
	"leakbound/internal/workload"
)

func TestBranchConfigValidate(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Branch = DefaultBranchConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("disabled branch config rejected: %v", err)
	}
	cfg.Branch.Enabled = true
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default enabled config rejected: %v", err)
	}
	cfg.Branch.MispredictPenalty = -1
	if cfg.Validate() == nil {
		t.Error("negative penalty accepted")
	}
	cfg.Branch = BranchConfig{Enabled: true, MispredictPenalty: 7, TableBits: 0}
	if cfg.Validate() == nil {
		t.Error("zero table bits accepted")
	}
	cfg.Branch.TableBits = 30
	if cfg.Validate() == nil {
		t.Error("absurd table bits accepted")
	}
}

func TestBranchDisabledMatchesBaseline(t *testing.T) {
	run := func(enabled bool) Result {
		cfg := DefaultConfig()
		cfg.Branch = DefaultBranchConfig()
		cfg.Branch.Enabled = enabled
		cfg.Branch.MispredictPenalty = 0 // even when enabled, zero penalty
		w := workload.MustNew("gzip", 0.02)
		res, err := Run(w, newHier(t), cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	off, onZero := run(false), run(true)
	if off.Cycles != onZero.Cycles || off.Instructions != onZero.Instructions {
		t.Errorf("zero-penalty predictor changed timing: %d vs %d cycles", off.Cycles, onZero.Cycles)
	}
	if onZero.Branch.Branches == 0 {
		t.Error("enabled predictor observed no branches")
	}
	if off.Branch.Branches != 0 {
		t.Error("disabled predictor recorded branches")
	}
}

func TestBranchPenaltyStretchesTime(t *testing.T) {
	run := func(penalty int) Result {
		cfg := DefaultConfig()
		cfg.Branch = BranchConfig{Enabled: true, MispredictPenalty: penalty, TableBits: 12}
		w := workload.MustNew("gcc", 0.02)
		res, err := Run(w, newHier(t), cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base, taxed := run(0), run(7)
	if taxed.Cycles <= base.Cycles {
		t.Errorf("mispredict penalty did not stretch time: %d vs %d", base.Cycles, taxed.Cycles)
	}
	// The stretch must equal mispredicts * penalty exactly.
	want := base.Cycles + 7*taxed.Branch.Mispredicts
	if taxed.Cycles != want {
		t.Errorf("cycles = %d, want %d (base %d + 7*%d mispredicts)",
			taxed.Cycles, want, base.Cycles, taxed.Branch.Mispredicts)
	}
}

func TestBranchPredictorLearnsLoops(t *testing.T) {
	// A tight loop is maximally predictable: after warmup the bimodal
	// counters lock onto "taken" and the mispredict rate collapses.
	var ins []workload.Instr
	for iter := 0; iter < 500; iter++ {
		for i := 0; i < 8; i++ {
			ins = append(ins, workload.Instr{PC: 0x400000 + uint64(i)*4, Kind: workload.Op})
		}
	}
	cfg := DefaultConfig()
	cfg.Branch = BranchConfig{Enabled: true, MispredictPenalty: 7, TableBits: 12}
	h, err := cache.NewHierarchy(cache.AlphaLike())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(&scripted{name: "loop", ins: ins}, h, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rate := res.Branch.MispredictRate(); rate > 0.05 {
		t.Errorf("loop mispredict rate %.3f, want near 0", rate)
	}
}

func TestBranchPredictorStruggles(t *testing.T) {
	// Alternating taken/not-taken at the same PC defeats a bimodal
	// predictor; the rate must be far worse than on the pure loop.
	var ins []workload.Instr
	pc := uint64(0x400000)
	for iter := 0; iter < 500; iter++ {
		// 4 sequential (fall-through at width boundary = not taken), then
		// a jump (taken), from the same group-ending PC pattern.
		for i := 0; i < 8; i++ {
			ins = append(ins, workload.Instr{PC: pc + uint64(i)*4, Kind: workload.Op})
		}
		pc += 0x1000 // jump far away, alternating the ending behaviour
		if pc > 0x500000 {
			pc = 0x400000
		}
	}
	cfg := DefaultConfig()
	cfg.Branch = BranchConfig{Enabled: true, MispredictPenalty: 7, TableBits: 12}
	h, err := cache.NewHierarchy(cache.AlphaLike())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(&scripted{name: "jumpy", ins: ins}, h, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Branch.Branches == 0 {
		t.Fatal("no branches observed")
	}
}

func TestMispredictRateEmpty(t *testing.T) {
	var s BranchStats
	if s.MispredictRate() != 0 {
		t.Error("empty rate not 0")
	}
}

func TestBimodalSaturation(t *testing.T) {
	b := newBimodal(4)
	pc := uint64(0x1000)
	// Drive to strongly taken; then a single not-taken must still predict
	// taken next time (hysteresis).
	for i := 0; i < 4; i++ {
		b.predictAndUpdate(pc, true)
	}
	b.predictAndUpdate(pc, false) // mispredict, counter 3->2
	if mp := b.predictAndUpdate(pc, true); mp {
		t.Error("lost taken bias after a single not-taken (no hysteresis)")
	}
	// Drive to strongly not-taken and check the floor.
	for i := 0; i < 8; i++ {
		b.predictAndUpdate(pc, false)
	}
	if mp := b.predictAndUpdate(pc, false); mp {
		t.Error("not-taken not learned")
	}
}
