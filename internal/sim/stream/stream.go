// Package stream is the single-pass conduit between the timing simulator
// and its consumers: instead of materializing a []trace.Event (or calling
// a per-event closure with a 48-byte struct), the producer fills
// fixed-capacity struct-of-arrays Batches and hands each one to a
// consumer, which processes it and releases it for reuse. No intermediate
// trace ever exists in memory — at any moment the pipeline holds at most
// a handful of batches, regardless of run length.
//
// Two wirings share the Batch type:
//
//   - Inline (one goroutine): the producer invokes a Sink synchronously
//     per full batch and reuses the same buffer afterwards. This is the
//     default path — on one core it is strictly faster than any
//     cross-goroutine handoff.
//   - Ring (two goroutines): a fixed-depth SPSC ring built from a pair of
//     channels (filled and free) decouples the simulator from a consumer
//     goroutine, recycling batches so steady state allocates nothing.
//
// The struct-of-arrays layout is deliberate: consumers that filter by
// cache scan one byte per event (the Caches column) and touch the wide
// columns only for matching events, and the producer appends to seven
// small arrays instead of copying whole structs through an interface.
package stream

import (
	"errors"

	"leakbound/internal/sim/trace"
)

// DefaultBatchEvents is the default batch capacity. It matches the CPU
// core's 4096-instruction cancellation-poll granularity: one batch is
// roughly one poll window of events, so a cancelled run abandons at most
// a window of buffered work.
const DefaultBatchEvents = 4096

// Batch is a struct-of-arrays block of timed cache-access events. All
// columns share one length; event i is the i-th element of each column.
// Within a batch, cycles are non-decreasing (the producer emits in
// simulation order).
type Batch struct {
	Cycles    []uint64
	LineAddrs []uint64
	PCs       []uint64
	Frames    []uint32
	Caches    []trace.CacheID
	Kinds     []trace.Kind
	Misses    []bool
}

// NewBatch returns an empty batch with the given capacity (events).
func NewBatch(capacity int) *Batch {
	if capacity <= 0 {
		capacity = DefaultBatchEvents
	}
	return &Batch{
		Cycles:    make([]uint64, 0, capacity),
		LineAddrs: make([]uint64, 0, capacity),
		PCs:       make([]uint64, 0, capacity),
		Frames:    make([]uint32, 0, capacity),
		Caches:    make([]trace.CacheID, 0, capacity),
		Kinds:     make([]trace.Kind, 0, capacity),
		Misses:    make([]bool, 0, capacity),
	}
}

// Len returns the number of events in the batch.
func (b *Batch) Len() int { return len(b.Cycles) }

// Full reports whether the batch has reached its capacity.
func (b *Batch) Full() bool { return len(b.Cycles) == cap(b.Cycles) }

// Reset empties the batch, keeping its capacity for reuse.
func (b *Batch) Reset() {
	b.Cycles = b.Cycles[:0]
	b.LineAddrs = b.LineAddrs[:0]
	b.PCs = b.PCs[:0]
	b.Frames = b.Frames[:0]
	b.Caches = b.Caches[:0]
	b.Kinds = b.Kinds[:0]
	b.Misses = b.Misses[:0]
}

// Append adds one event by columns.
func (b *Batch) Append(cycle, lineAddr, pc uint64, frame uint32, cache trace.CacheID, kind trace.Kind, miss bool) {
	b.Cycles = append(b.Cycles, cycle)
	b.LineAddrs = append(b.LineAddrs, lineAddr)
	b.PCs = append(b.PCs, pc)
	b.Frames = append(b.Frames, frame)
	b.Caches = append(b.Caches, cache)
	b.Kinds = append(b.Kinds, kind)
	b.Misses = append(b.Misses, miss)
}

// AppendEvent adds one trace.Event; for taps and tests (the hot producer
// uses Append to keep the event out of a struct entirely).
func (b *Batch) AppendEvent(e trace.Event) {
	b.Append(e.Cycle, e.LineAddr, e.PC, e.Frame, e.Cache, e.Kind, e.Miss)
}

// Event reconstructs event i as a trace.Event; for taps (e.g. the
// record/replay codec in cmd/tracegen) and tests, not the hot path.
func (b *Batch) Event(i int) trace.Event {
	return trace.Event{
		Cycle:    b.Cycles[i],
		LineAddr: b.LineAddrs[i],
		PC:       b.PCs[i],
		Frame:    b.Frames[i],
		Cache:    b.Caches[i],
		Kind:     b.Kinds[i],
		Miss:     b.Misses[i],
	}
}

// Sink consumes one batch. The batch is only valid for the duration of
// the call: the producer reuses it as soon as Sink returns. A non-nil
// error stops the producer, which returns the error to its caller.
type Sink func(*Batch) error

// ErrRingClosed reports a send on a closed ring.
var ErrRingClosed = errors.New("stream: ring closed")

// Ring is a fixed-depth single-producer single-consumer batch queue: the
// producer takes empty batches from the free list, fills and Sends them;
// the consumer Recvs, processes, and Recycles. Both directions are
// buffered channels, so the ring never allocates after construction and
// applies backpressure when the consumer lags by more than depth batches.
//
// The SPSC contract: exactly one goroutine calls Get/Send/Close and
// exactly one calls Recv/Recycle. (The channels would tolerate more, but
// batch recycling makes reuse single-owner by design.)
type Ring struct {
	filled chan *Batch
	free   chan *Batch
}

// NewRing builds a ring of depth batches, each with capacity batchEvents
// (DefaultBatchEvents if <= 0). Depth 2 already decouples producer and
// consumer; deeper rings only smooth bursty consumers.
func NewRing(depth, batchEvents int) *Ring {
	if depth < 2 {
		depth = 2
	}
	r := &Ring{
		filled: make(chan *Batch, depth),
		free:   make(chan *Batch, depth),
	}
	for i := 0; i < depth; i++ {
		r.free <- NewBatch(batchEvents)
	}
	return r
}

// Get blocks until an empty batch is available.
func (r *Ring) Get() *Batch { return <-r.free }

// Send hands a filled batch to the consumer.
func (r *Ring) Send(b *Batch) { r.filled <- b }

// Close signals the consumer that no more batches will arrive. The
// producer must not Send after Close.
func (r *Ring) Close() { close(r.filled) }

// Recv blocks for the next filled batch; ok is false after Close drains.
func (r *Ring) Recv() (b *Batch, ok bool) {
	b, ok = <-r.filled
	return b, ok
}

// Recycle returns a consumed batch to the producer's free list.
func (r *Ring) Recycle(b *Batch) {
	b.Reset()
	r.free <- b
}

// Consume drains the ring into sink until the ring closes or sink fails,
// recycling every batch. It is the standard consumer-goroutine body.
func (r *Ring) Consume(sink Sink) error {
	for {
		b, ok := r.Recv()
		if !ok {
			return nil
		}
		err := sink(b)
		r.Recycle(b)
		if err != nil {
			// Keep draining so the producer never blocks on a full ring,
			// but drop the data: the pipeline is already failed.
			for {
				b, ok := r.Recv()
				if !ok {
					return err
				}
				r.Recycle(b)
			}
		}
	}
}
