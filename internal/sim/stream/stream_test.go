package stream

import (
	"errors"
	"sync"
	"testing"

	"leakbound/internal/sim/trace"
)

func TestBatchAppendAndEvent(t *testing.T) {
	b := NewBatch(4)
	e := trace.Event{Cycle: 10, LineAddr: 20, PC: 30, Frame: 40, Cache: trace.L1D, Kind: trace.Store, Miss: true}
	b.AppendEvent(e)
	b.Append(11, 21, 31, 41, trace.L2, trace.Load, false)
	if b.Len() != 2 {
		t.Fatalf("Len = %d", b.Len())
	}
	if got := b.Event(0); got != e {
		t.Errorf("Event(0) = %+v, want %+v", got, e)
	}
	if got := b.Event(1); got.Cycle != 11 || got.Cache != trace.L2 || got.Miss {
		t.Errorf("Event(1) = %+v", got)
	}
	if b.Full() {
		t.Error("Full at 2/4")
	}
	b.Append(12, 0, 0, 0, trace.L1I, trace.Fetch, false)
	b.Append(13, 0, 0, 0, trace.L1I, trace.Fetch, false)
	if !b.Full() {
		t.Error("not Full at 4/4")
	}
	b.Reset()
	if b.Len() != 0 || b.Full() {
		t.Error("Reset did not empty")
	}
	if cap(b.Cycles) != 4 {
		t.Error("Reset lost capacity")
	}
}

func TestNewBatchDefaultCapacity(t *testing.T) {
	b := NewBatch(0)
	if cap(b.Cycles) != DefaultBatchEvents {
		t.Fatalf("default capacity = %d", cap(b.Cycles))
	}
}

func TestRingRoundTrip(t *testing.T) {
	r := NewRing(2, 8)
	const total = 100
	var got []uint64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := r.Consume(func(b *Batch) error {
			got = append(got, b.Cycles...)
			return nil
		}); err != nil {
			t.Errorf("Consume: %v", err)
		}
	}()
	b := r.Get()
	for c := uint64(0); c < total; c++ {
		b.Append(c, 0, 0, 0, trace.L1I, trace.Fetch, false)
		if b.Full() {
			r.Send(b)
			b = r.Get()
		}
	}
	if b.Len() > 0 {
		r.Send(b)
	}
	r.Close()
	wg.Wait()
	if len(got) != total {
		t.Fatalf("consumed %d events, want %d", len(got), total)
	}
	for i, c := range got {
		if c != uint64(i) {
			t.Fatalf("event %d has cycle %d (order broken)", i, c)
		}
	}
}

func TestRingConsumerErrorDoesNotBlockProducer(t *testing.T) {
	r := NewRing(2, 4)
	sentinel := errors.New("boom")
	done := make(chan error, 1)
	go func() {
		done <- r.Consume(func(b *Batch) error { return sentinel })
	}()
	// Keep producing well past ring depth; a consumer that stopped
	// recycling would deadlock this loop.
	for i := 0; i < 50; i++ {
		b := r.Get()
		b.Append(uint64(i), 0, 0, 0, trace.L1I, trace.Fetch, false)
		r.Send(b)
	}
	r.Close()
	if err := <-done; !errors.Is(err, sentinel) {
		t.Fatalf("Consume error = %v, want sentinel", err)
	}
}

func TestRingRecyclesBatches(t *testing.T) {
	r := NewRing(2, 4)
	b1, b2 := r.Get(), r.Get() // drain the free list: depth 2 = two batches
	r.Send(b1)
	got, ok := r.Recv()
	if !ok || got != b1 {
		t.Fatal("Recv did not deliver the sent batch")
	}
	got.Append(1, 0, 0, 0, trace.L1I, trace.Fetch, false)
	r.Recycle(got)
	b3 := r.Get()
	if b3 != b1 && b3 != b2 {
		t.Fatal("Get returned a batch outside the fixed pool")
	}
	if b3.Len() != 0 {
		t.Fatal("Recycle did not reset the batch")
	}
}
