package trace

import (
	"bytes"
	"testing"
)

// FuzzRead throws arbitrary bytes at the binary codec; it must never panic
// and must either return a valid stream or an error.
func FuzzRead(f *testing.F) {
	// Seed with a real trace and some mutations.
	var s Stream
	for i := uint64(0); i < 20; i++ {
		_ = s.Append(Event{Cycle: i * 3, LineAddr: i, Frame: uint32(i % 8), Cache: L1D, Kind: Load})
	}
	var buf bytes.Buffer
	if err := Write(&buf, &s); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	var buf2 bytes.Buffer
	if err := WriteTagged(&buf2, InstrRecording, &s); err != nil {
		f.Fatal(err)
	}
	f.Add(buf2.Bytes())
	f.Add([]byte{})
	f.Add([]byte("LKBTRC01"))
	f.Add([]byte("LKBTRC02"))
	f.Add(append(append([]byte{}, magic[:]...), make([]byte, 20)...))
	f.Add(append(append([]byte{}, magicV2[:]...), 0, 0, 0, 0, 0, 0, 0, 0))

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever decodes must re-encode and decode identically.
		var out bytes.Buffer
		if err := Write(&out, got); err != nil {
			t.Fatalf("re-encode of decoded stream failed: %v", err)
		}
		again, err := Read(&out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(again.Events) != len(got.Events) {
			t.Fatalf("round trip changed event count: %d != %d", len(again.Events), len(got.Events))
		}
	})
}
