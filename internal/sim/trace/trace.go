// Package trace defines the timed memory-access event stream that flows from
// the timing simulator (internal/sim/cpu) into the interval analyzer
// (internal/interval) and the prefetchability classifier (internal/prefetch).
//
// In the paper's methodology this corresponds to the address trace with cycle
// timing produced by SimpleScalar; the limit study consumes nothing else.
// Events are emitted at cache-line granularity for a specific cache (L1I,
// L1D, or L2) and carry the frame the line landed in, so downstream analysis
// can reconstruct per-frame access intervals exactly.
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// CacheID identifies which cache in the simulated hierarchy an event
// belongs to.
type CacheID uint8

const (
	// L1I is the level-1 instruction cache (64KB 2-way in the paper's setup).
	L1I CacheID = iota
	// L1D is the level-1 data cache (64KB 2-way, 3-cycle hit).
	L1D
	// L2 is the unified level-2 cache (2MB direct-mapped, 7-cycle hit).
	L2
	numCacheIDs
)

// String implements fmt.Stringer.
func (c CacheID) String() string {
	switch c {
	case L1I:
		return "L1I"
	case L1D:
		return "L1D"
	case L2:
		return "L2"
	default:
		return fmt.Sprintf("CacheID(%d)", uint8(c))
	}
}

// Valid reports whether c names a real cache.
func (c CacheID) Valid() bool { return c < numCacheIDs }

// Kind distinguishes the access type that produced an event.
type Kind uint8

const (
	// Fetch is an instruction fetch.
	Fetch Kind = iota
	// Load is a data read.
	Load
	// Store is a data write.
	Store
	numKinds
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Fetch:
		return "fetch"
	case Load:
		return "load"
	case Store:
		return "store"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Valid reports whether k names a real access kind.
func (k Kind) Valid() bool { return k < numKinds }

// Event is one cache access with timing. LineAddr is the block-aligned
// address (address >> log2(blockSize)); Frame is the physical frame index
// (set*assoc + way) the block occupies after the access, which is what the
// interval analysis keys on, since leakage is per physical cache line.
type Event struct {
	Cycle    uint64  // completion cycle of the access
	LineAddr uint64  // block-aligned memory address
	Frame    uint32  // physical frame index in the cache
	PC       uint64  // static instruction address (for stride prefetch)
	Cache    CacheID // which cache
	Kind     Kind    // fetch / load / store
	Miss     bool    // true if the access missed in this cache
}

// Validate checks internal consistency of the event.
func (e Event) Validate() error {
	if !e.Cache.Valid() {
		return fmt.Errorf("trace: invalid cache id %d", e.Cache)
	}
	if !e.Kind.Valid() {
		return fmt.Errorf("trace: invalid kind %d", e.Kind)
	}
	return nil
}

// Stream is an in-memory sequence of events ordered by cycle, plus the
// total simulated cycle count (needed to close trailing intervals).
type Stream struct {
	Events      []Event
	TotalCycles uint64
	NumFrames   uint32 // frames in the traced cache (lines), for baselines
}

// Append adds an event, enforcing cycle monotonicity (events may share a
// cycle; a superscalar core accesses several lines per cycle).
func (s *Stream) Append(e Event) error {
	if err := e.Validate(); err != nil {
		return err
	}
	if n := len(s.Events); n > 0 && e.Cycle < s.Events[n-1].Cycle {
		return fmt.Errorf("trace: non-monotonic cycle %d after %d", e.Cycle, s.Events[n-1].Cycle)
	}
	s.Events = append(s.Events, e)
	if e.Cycle >= s.TotalCycles {
		s.TotalCycles = e.Cycle + 1
	}
	return nil
}

// Len returns the number of events.
func (s *Stream) Len() int { return len(s.Events) }

// FilterCache returns a new stream containing only events for the given
// cache, sharing the cycle horizon of the original.
func (s *Stream) FilterCache(c CacheID) *Stream {
	out := &Stream{TotalCycles: s.TotalCycles, NumFrames: s.NumFrames}
	for _, e := range s.Events {
		if e.Cache == c {
			out.Events = append(out.Events, e)
		}
	}
	return out
}

// Validate checks ordering and per-event consistency of the whole stream.
func (s *Stream) Validate() error {
	var prev uint64
	for i, e := range s.Events {
		if err := e.Validate(); err != nil {
			return fmt.Errorf("event %d: %w", i, err)
		}
		if e.Cycle < prev {
			return fmt.Errorf("trace: event %d cycle %d < previous %d", i, e.Cycle, prev)
		}
		if e.Cycle >= s.TotalCycles {
			return fmt.Errorf("trace: event %d cycle %d beyond horizon %d", i, e.Cycle, s.TotalCycles)
		}
		prev = e.Cycle
	}
	return nil
}

// Binary codec
//
// The on-disk format is a little-endian fixed header followed by
// delta-encoded event records. Cycles are stored as varint deltas from the
// previous event, line addresses and PCs as varints, so loop-heavy traces
// compress well without any external dependency.

var magic = [8]byte{'L', 'K', 'B', 'T', 'R', 'C', '0', '1'}

// Write serializes the stream to w.
func Write(w io.Writer, s *Stream) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	var hdr [8 + 8 + 4]byte
	binary.LittleEndian.PutUint64(hdr[0:], uint64(len(s.Events)))
	binary.LittleEndian.PutUint64(hdr[8:], s.TotalCycles)
	binary.LittleEndian.PutUint32(hdr[16:], s.NumFrames)
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	var prevCycle uint64
	for i := range s.Events {
		e := &s.Events[i]
		n := binary.PutUvarint(buf[:], e.Cycle-prevCycle)
		if _, err := bw.Write(buf[:n]); err != nil {
			return err
		}
		prevCycle = e.Cycle
		n = binary.PutUvarint(buf[:], e.LineAddr)
		if _, err := bw.Write(buf[:n]); err != nil {
			return err
		}
		n = binary.PutUvarint(buf[:], uint64(e.Frame))
		if _, err := bw.Write(buf[:n]); err != nil {
			return err
		}
		n = binary.PutUvarint(buf[:], e.PC)
		if _, err := bw.Write(buf[:n]); err != nil {
			return err
		}
		flags := byte(e.Cache) | byte(e.Kind)<<2
		if e.Miss {
			flags |= 1 << 4
		}
		if err := bw.WriteByte(flags); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read deserializes a stream written with Write or WriteTagged — either
// container version is accepted; the content kind of v2 files is dropped
// (use ReadTagged to see it).
func Read(r io.Reader) (*Stream, error) {
	tg, err := ReadTagged(r)
	if err != nil {
		return nil, err
	}
	return tg.Stream, nil
}

// readV1Body decodes everything after the v1 magic.
func readV1Body(br *bufio.Reader) (*Stream, error) {
	var hdr [20]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	count := binary.LittleEndian.Uint64(hdr[0:])
	const maxEvents = 1 << 32
	if count > maxEvents {
		return nil, fmt.Errorf("trace: implausible event count %d", count)
	}
	// The count is attacker-controlled until the payload actually decodes:
	// cap the allocation hint and let append grow the slice as real
	// records arrive (a truncated file then fails fast on ReadUvarint
	// instead of pre-allocating gigabytes).
	capHint := count
	if capHint > 1<<16 {
		capHint = 1 << 16
	}
	s := &Stream{
		Events:      make([]Event, 0, capHint),
		TotalCycles: binary.LittleEndian.Uint64(hdr[8:]),
		NumFrames:   binary.LittleEndian.Uint32(hdr[16:]),
	}
	var cycle uint64
	for i := uint64(0); i < count; i++ {
		e, next, err := readEvent(br, cycle, int(i))
		if err != nil {
			return nil, err
		}
		cycle = next
		s.Events = append(s.Events, e)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}
