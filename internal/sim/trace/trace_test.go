package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestCacheIDString(t *testing.T) {
	cases := map[CacheID]string{L1I: "L1I", L1D: "L1D", L2: "L2", CacheID(9): "CacheID(9)"}
	for id, want := range cases {
		if got := id.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", id, got, want)
		}
	}
	if !L1I.Valid() || !L2.Valid() || CacheID(3).Valid() {
		t.Error("CacheID.Valid wrong")
	}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{Fetch: "fetch", Load: "load", Store: "store", Kind(7): "Kind(7)"}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", k, got, want)
		}
	}
	if !Fetch.Valid() || Kind(3).Valid() {
		t.Error("Kind.Valid wrong")
	}
}

func TestEventValidate(t *testing.T) {
	if err := (Event{Cache: L1D, Kind: Load}).Validate(); err != nil {
		t.Errorf("valid event rejected: %v", err)
	}
	if err := (Event{Cache: CacheID(5)}).Validate(); err == nil {
		t.Error("bad cache accepted")
	}
	if err := (Event{Kind: Kind(5)}).Validate(); err == nil {
		t.Error("bad kind accepted")
	}
}

func TestStreamAppendOrdering(t *testing.T) {
	var s Stream
	if err := s.Append(Event{Cycle: 10, Cache: L1I, Kind: Fetch}); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(Event{Cycle: 10, Cache: L1D, Kind: Load}); err != nil {
		t.Errorf("same-cycle append rejected: %v", err)
	}
	if err := s.Append(Event{Cycle: 9, Cache: L1D, Kind: Load}); err == nil {
		t.Error("backwards cycle accepted")
	}
	if s.TotalCycles != 11 {
		t.Errorf("TotalCycles = %d, want 11", s.TotalCycles)
	}
	if err := s.Append(Event{Cycle: 5, Cache: CacheID(9)}); err == nil {
		t.Error("invalid event accepted")
	}
}

func TestStreamFilterCache(t *testing.T) {
	var s Stream
	for i := uint64(0); i < 10; i++ {
		c := L1I
		if i%2 == 1 {
			c = L1D
		}
		if err := s.Append(Event{Cycle: i, Cache: c, Kind: Fetch}); err != nil {
			t.Fatal(err)
		}
	}
	s.NumFrames = 77
	d := s.FilterCache(L1D)
	if d.Len() != 5 {
		t.Errorf("filtered len = %d, want 5", d.Len())
	}
	if d.TotalCycles != s.TotalCycles || d.NumFrames != 77 {
		t.Error("filter dropped horizon metadata")
	}
	for _, e := range d.Events {
		if e.Cache != L1D {
			t.Errorf("foreign event in filtered stream: %v", e)
		}
	}
}

func TestStreamValidate(t *testing.T) {
	s := &Stream{
		Events:      []Event{{Cycle: 5, Cache: L1I}, {Cycle: 3, Cache: L1I}},
		TotalCycles: 10,
	}
	if err := s.Validate(); err == nil {
		t.Error("out-of-order stream validated")
	}
	s = &Stream{Events: []Event{{Cycle: 15, Cache: L1I}}, TotalCycles: 10}
	if err := s.Validate(); err == nil {
		t.Error("event beyond horizon validated")
	}
	s = &Stream{Events: []Event{{Cycle: 1, Cache: L1I}}, TotalCycles: 10}
	if err := s.Validate(); err != nil {
		t.Errorf("good stream rejected: %v", err)
	}
}

func randomStream(rng *rand.Rand, n int) *Stream {
	s := &Stream{NumFrames: uint32(rng.Intn(4096) + 1)}
	cycle := uint64(0)
	for i := 0; i < n; i++ {
		cycle += uint64(rng.Intn(100))
		e := Event{
			Cycle:    cycle,
			LineAddr: rng.Uint64() >> 6,
			Frame:    uint32(rng.Intn(2048)),
			PC:       rng.Uint64() >> 20,
			Cache:    CacheID(rng.Intn(3)),
			Kind:     Kind(rng.Intn(3)),
			Miss:     rng.Intn(4) == 0,
		}
		if err := s.Append(e); err != nil {
			panic(err)
		}
	}
	return s
}

func TestCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{0, 1, 17, 1000} {
		s := randomStream(rng, n)
		var buf bytes.Buffer
		if err := Write(&buf, s); err != nil {
			t.Fatalf("write n=%d: %v", n, err)
		}
		got, err := Read(&buf)
		if err != nil {
			t.Fatalf("read n=%d: %v", n, err)
		}
		if got.TotalCycles != s.TotalCycles || got.NumFrames != s.NumFrames {
			t.Errorf("n=%d metadata mismatch", n)
		}
		if len(got.Events) != len(s.Events) {
			t.Fatalf("n=%d event count %d != %d", n, len(got.Events), len(s.Events))
		}
		for i := range s.Events {
			if !reflect.DeepEqual(got.Events[i], s.Events[i]) {
				t.Fatalf("n=%d event %d: got %+v want %+v", n, i, got.Events[i], s.Events[i])
			}
		}
	}
}

func TestCodecRoundTripProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomStream(rng, int(nRaw))
		var buf bytes.Buffer
		if err := Write(&buf, s); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got.Events, s.Events) || (len(got.Events) == 0 && len(s.Events) == 0)
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("not a trace at all...")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Read(strings.NewReader("LKBTRC01")); err == nil {
		t.Error("truncated header accepted")
	}
	// valid magic + header claiming events, but no payload
	var buf bytes.Buffer
	buf.Write(magic[:])
	hdr := make([]byte, 20)
	hdr[0] = 5 // 5 events
	buf.Write(hdr)
	if _, err := Read(&buf); err == nil {
		t.Error("truncated payload accepted")
	}
}

func TestReadRejectsImplausibleCount(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(magic[:])
	hdr := make([]byte, 20)
	for i := 0; i < 8; i++ {
		hdr[i] = 0xFF
	}
	buf.Write(hdr)
	if _, err := Read(&buf); err == nil {
		t.Error("absurd event count accepted")
	}
}

func BenchmarkStreamAppend(b *testing.B) {
	var s Stream
	for i := 0; i < b.N; i++ {
		_ = s.Append(Event{Cycle: uint64(i), Cache: L1D, Kind: Load, LineAddr: uint64(i)})
	}
}

func BenchmarkCodecWrite(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	s := randomStream(rng, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := Write(&buf, s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCodecRead(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	s := randomStream(rng, 10000)
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Read(bytes.NewReader(raw)); err != nil {
			b.Fatal(err)
		}
	}
}
