package trace

// Version-2 container: the same varint event encoding as v1, wrapped in a
// tagged streaming frame so a producer can append events without knowing the
// final count up front, and so a file can declare what KIND of stream it
// carries. v1 files hold exactly one thing — timed cache events from the
// simulator; v2 adds instruction recordings (a workload's raw Emit stream
// captured for bit-identical replay, see internal/workload/spec).
//
// Layout:
//
//	magic "LKBTRC02" | content byte | numFrames uint32 LE
//	( tag 0x01 | cycleDelta uvarint | lineAddr uvarint | frame uvarint |
//	  pc uvarint | flags byte )*
//	tag 0x00 | count uvarint | totalCycles uvarint
//
// The footer count must match the number of tagged records, so truncation is
// always detected even though the header carries no length.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

var magicV2 = [8]byte{'L', 'K', 'B', 'T', 'R', 'C', '0', '2'}

// Content declares what a v2 trace file carries.
type Content uint8

const (
	// CacheEvents is a timed cache-access stream from the simulator —
	// the only thing v1 files can hold.
	CacheEvents Content = iota
	// InstrRecording is a workload's instruction stream recorded for
	// replay: Cycle is the instruction index, LineAddr the byte address,
	// Kind maps Op→Fetch / Load→Load / Store→Store.
	InstrRecording
	numContents
)

// String implements fmt.Stringer.
func (c Content) String() string {
	switch c {
	case CacheEvents:
		return "cache-events"
	case InstrRecording:
		return "instr-recording"
	default:
		return fmt.Sprintf("Content(%d)", uint8(c))
	}
}

// Valid reports whether c names a defined content kind.
func (c Content) Valid() bool { return c < numContents }

// Record tags in the v2 body.
const (
	tagEnd   = 0x00
	tagEvent = 0x01
)

// Tagged is a decoded v2 file (or a v1 file lifted into the v2 model with
// Content == CacheEvents).
type Tagged struct {
	Content Content
	Stream  *Stream
}

// Writer appends events to a v2 trace incrementally. Unlike Write it needs
// no up-front event count: Append streams each record out through a buffered
// writer and Close seals the file with the footer.
type Writer struct {
	bw        *bufio.Writer
	count     uint64
	prevCycle uint64
	total     uint64 // explicit horizon, 0 = derive from last event
	closed    bool
	err       error
}

// NewWriter starts a v2 trace of the given content kind on w. numFrames is
// the traced cache's frame count (0 for instruction recordings, which have
// no cache geometry).
func NewWriter(w io.Writer, content Content, numFrames uint32) (*Writer, error) {
	if !content.Valid() {
		return nil, fmt.Errorf("trace: invalid content kind %d", content)
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magicV2[:]); err != nil {
		return nil, err
	}
	if err := bw.WriteByte(byte(content)); err != nil {
		return nil, err
	}
	var nf [4]byte
	binary.LittleEndian.PutUint32(nf[:], numFrames)
	if _, err := bw.Write(nf[:]); err != nil {
		return nil, err
	}
	return &Writer{bw: bw}, nil
}

// SetTotalCycles fixes the stream horizon written by Close. Without it the
// horizon is last event cycle + 1. Use it when the simulation ran past the
// final event (trailing idle cycles matter to interval analysis).
func (w *Writer) SetTotalCycles(n uint64) { w.total = n }

// Append writes one event record. Events must arrive in non-decreasing
// cycle order, exactly as Stream.Append enforces.
func (w *Writer) Append(e Event) error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return errors.New("trace: append after close")
	}
	if err := e.Validate(); err != nil {
		w.err = err
		return err
	}
	if w.count > 0 && e.Cycle < w.prevCycle {
		w.err = fmt.Errorf("trace: non-monotonic cycle %d after %d", e.Cycle, w.prevCycle)
		return w.err
	}
	var buf [binary.MaxVarintLen64]byte
	if err := w.bw.WriteByte(tagEvent); err != nil {
		w.err = err
		return err
	}
	n := binary.PutUvarint(buf[:], e.Cycle-w.prevCycle)
	if _, err := w.bw.Write(buf[:n]); err != nil {
		w.err = err
		return err
	}
	w.prevCycle = e.Cycle
	n = binary.PutUvarint(buf[:], e.LineAddr)
	if _, err := w.bw.Write(buf[:n]); err != nil {
		w.err = err
		return err
	}
	n = binary.PutUvarint(buf[:], uint64(e.Frame))
	if _, err := w.bw.Write(buf[:n]); err != nil {
		w.err = err
		return err
	}
	n = binary.PutUvarint(buf[:], e.PC)
	if _, err := w.bw.Write(buf[:n]); err != nil {
		w.err = err
		return err
	}
	flags := byte(e.Cache) | byte(e.Kind)<<2
	if e.Miss {
		flags |= 1 << 4
	}
	if err := w.bw.WriteByte(flags); err != nil {
		w.err = err
		return err
	}
	w.count++
	return nil
}

// Close writes the terminator and footer and flushes. The Writer is
// unusable afterwards.
func (w *Writer) Close() error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return errors.New("trace: double close")
	}
	w.closed = true
	total := w.total
	if derived := w.prevCycle + 1; w.count > 0 && total < derived {
		total = derived
	}
	var buf [binary.MaxVarintLen64]byte
	if err := w.bw.WriteByte(tagEnd); err != nil {
		return err
	}
	n := binary.PutUvarint(buf[:], w.count)
	if _, err := w.bw.Write(buf[:n]); err != nil {
		return err
	}
	n = binary.PutUvarint(buf[:], total)
	if _, err := w.bw.Write(buf[:n]); err != nil {
		return err
	}
	return w.bw.Flush()
}

// WriteTagged serializes a complete stream in the v2 container.
func WriteTagged(w io.Writer, content Content, s *Stream) error {
	tw, err := NewWriter(w, content, s.NumFrames)
	if err != nil {
		return err
	}
	for i := range s.Events {
		if err := tw.Append(s.Events[i]); err != nil {
			return err
		}
	}
	tw.SetTotalCycles(s.TotalCycles)
	return tw.Close()
}

// ReadTagged deserializes either container version. v1 files decode with
// Content == CacheEvents; v2 files carry their declared content kind.
func ReadTagged(r io.Reader) (*Tagged, error) {
	br := bufio.NewReader(r)
	var m [8]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	switch m {
	case magic:
		s, err := readV1Body(br)
		if err != nil {
			return nil, err
		}
		return &Tagged{Content: CacheEvents, Stream: s}, nil
	case magicV2:
		return readV2Body(br)
	default:
		return nil, errors.New("trace: bad magic, not a leakbound trace")
	}
}

// readV2Body decodes everything after the v2 magic.
func readV2Body(br *bufio.Reader) (*Tagged, error) {
	cb, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("trace: reading content kind: %w", err)
	}
	content := Content(cb)
	if !content.Valid() {
		return nil, fmt.Errorf("trace: invalid content kind %d", cb)
	}
	var nf [4]byte
	if _, err := io.ReadFull(br, nf[:]); err != nil {
		return nil, fmt.Errorf("trace: reading frame count: %w", err)
	}
	s := &Stream{NumFrames: binary.LittleEndian.Uint32(nf[:])}
	var cycle uint64
	const maxEvents = 1 << 32
	for {
		tag, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("trace: record %d tag: %w", len(s.Events), err)
		}
		if tag == tagEnd {
			break
		}
		if tag != tagEvent {
			return nil, fmt.Errorf("trace: record %d has unknown tag 0x%02x", len(s.Events), tag)
		}
		if uint64(len(s.Events)) >= maxEvents {
			return nil, fmt.Errorf("trace: implausible event count > %d", uint64(maxEvents))
		}
		e, next, err := readEvent(br, cycle, len(s.Events))
		if err != nil {
			return nil, err
		}
		cycle = next
		s.Events = append(s.Events, e)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: footer count: %w", err)
	}
	if count != uint64(len(s.Events)) {
		return nil, fmt.Errorf("trace: footer count %d != %d records read", count, len(s.Events))
	}
	s.TotalCycles, err = binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: footer total cycles: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &Tagged{Content: content, Stream: s}, nil
}

// readEvent decodes one varint event record given the running cycle.
func readEvent(br *bufio.Reader, cycle uint64, i int) (Event, uint64, error) {
	delta, err := binary.ReadUvarint(br)
	if err != nil {
		return Event{}, 0, fmt.Errorf("trace: event %d cycle: %w", i, err)
	}
	cycle += delta
	lineAddr, err := binary.ReadUvarint(br)
	if err != nil {
		return Event{}, 0, fmt.Errorf("trace: event %d lineaddr: %w", i, err)
	}
	frame, err := binary.ReadUvarint(br)
	if err != nil {
		return Event{}, 0, fmt.Errorf("trace: event %d frame: %w", i, err)
	}
	if frame > 0xFFFFFFFF {
		return Event{}, 0, fmt.Errorf("trace: event %d frame %d overflows uint32", i, frame)
	}
	pc, err := binary.ReadUvarint(br)
	if err != nil {
		return Event{}, 0, fmt.Errorf("trace: event %d pc: %w", i, err)
	}
	flags, err := br.ReadByte()
	if err != nil {
		return Event{}, 0, fmt.Errorf("trace: event %d flags: %w", i, err)
	}
	e := Event{
		Cycle:    cycle,
		LineAddr: lineAddr,
		Frame:    uint32(frame),
		PC:       pc,
		Cache:    CacheID(flags & 0x3),
		Kind:     Kind((flags >> 2) & 0x3),
		Miss:     flags&(1<<4) != 0,
	}
	if err := e.Validate(); err != nil {
		return Event{}, 0, fmt.Errorf("trace: event %d: %w", i, err)
	}
	return e, cycle, nil
}
