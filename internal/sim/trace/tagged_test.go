package trace

import (
	"bytes"
	"strings"
	"testing"
)

func sampleStream(t *testing.T) *Stream {
	t.Helper()
	var s Stream
	for i := uint64(0); i < 50; i++ {
		e := Event{
			Cycle:    i * 7,
			LineAddr: 0x1000 + i*3,
			Frame:    uint32(i % 16),
			PC:       0x40_0000 + i*4,
			Cache:    CacheID(i % 3),
			Kind:     Kind(i % 3),
			Miss:     i%5 == 0,
		}
		if err := s.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	s.TotalCycles = 1000
	s.NumFrames = 512
	return &s
}

func TestTaggedRoundTrip(t *testing.T) {
	s := sampleStream(t)
	for _, content := range []Content{CacheEvents, InstrRecording} {
		var buf bytes.Buffer
		if err := WriteTagged(&buf, content, s); err != nil {
			t.Fatalf("%v: write: %v", content, err)
		}
		tg, err := ReadTagged(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%v: read: %v", content, err)
		}
		if tg.Content != content {
			t.Errorf("content = %v, want %v", tg.Content, content)
		}
		if tg.Stream.TotalCycles != s.TotalCycles || tg.Stream.NumFrames != s.NumFrames {
			t.Errorf("header mismatch: %+v", tg.Stream)
		}
		if len(tg.Stream.Events) != len(s.Events) {
			t.Fatalf("event count %d != %d", len(tg.Stream.Events), len(s.Events))
		}
		for i := range s.Events {
			if tg.Stream.Events[i] != s.Events[i] {
				t.Fatalf("event %d: %+v != %+v", i, tg.Stream.Events[i], s.Events[i])
			}
		}
	}
}

func TestReadAcceptsBothVersions(t *testing.T) {
	s := sampleStream(t)
	var v1, v2 bytes.Buffer
	if err := Write(&v1, s); err != nil {
		t.Fatal(err)
	}
	if err := WriteTagged(&v2, CacheEvents, s); err != nil {
		t.Fatal(err)
	}
	for name, buf := range map[string]*bytes.Buffer{"v1": &v1, "v2": &v2} {
		got, err := Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(got.Events) != len(s.Events) || got.TotalCycles != s.TotalCycles {
			t.Errorf("%s: stream mismatch", name)
		}
	}
	// And a v1 file read through ReadTagged reports CacheEvents.
	tg, err := ReadTagged(bytes.NewReader(v1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if tg.Content != CacheEvents {
		t.Errorf("v1 content = %v, want CacheEvents", tg.Content)
	}
}

func TestWriterStreaming(t *testing.T) {
	s := sampleStream(t)
	var buf bytes.Buffer
	w, err := NewWriter(&buf, InstrRecording, s.NumFrames)
	if err != nil {
		t.Fatal(err)
	}
	for i := range s.Events {
		if err := w.Append(s.Events[i]); err != nil {
			t.Fatal(err)
		}
	}
	w.SetTotalCycles(s.TotalCycles)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err == nil {
		t.Error("double close succeeded")
	}
	if err := w.Append(Event{}); err == nil {
		t.Error("append after close succeeded")
	}
	tg, err := ReadTagged(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if tg.Stream.TotalCycles != s.TotalCycles || len(tg.Stream.Events) != len(s.Events) {
		t.Errorf("streamed write mismatch: %d events, %d cycles",
			len(tg.Stream.Events), tg.Stream.TotalCycles)
	}
}

func TestWriterDerivedHorizon(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, CacheEvents, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(Event{Cycle: 41, Cache: L1D, Kind: Load}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	tg, err := ReadTagged(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if tg.Stream.TotalCycles != 42 {
		t.Errorf("derived horizon = %d, want 42", tg.Stream.TotalCycles)
	}
}

func TestWriterRejectsNonMonotonic(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, CacheEvents, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(Event{Cycle: 10, Cache: L1D, Kind: Load}); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(Event{Cycle: 9, Cache: L1D, Kind: Load}); err == nil {
		t.Fatal("out-of-order append succeeded")
	}
}

func TestReadTaggedErrors(t *testing.T) {
	s := sampleStream(t)
	var good bytes.Buffer
	if err := WriteTagged(&good, CacheEvents, s); err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":        {},
		"bad magic":    []byte("LKBTRC99xxxxxxxxxxxx"),
		"bad content":  append(append([]byte{}, magicV2[:]...), 0xFF, 0, 0, 0, 0),
		"truncated":    good.Bytes()[:good.Len()/2],
		"no footer":    good.Bytes()[:good.Len()-2],
		"unknown tag":  append(append([]byte{}, magicV2[:]...), byte(CacheEvents), 0, 0, 0, 0, 0x7F),
		"count zeroed": func() []byte { b := append([]byte{}, good.Bytes()...); b[good.Len()-3] = 0x09; return b }(),
	}
	for name, data := range cases {
		if _, err := ReadTagged(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	if _, err := NewWriter(&bytes.Buffer{}, numContents, 0); err == nil {
		t.Error("invalid content accepted")
	}
}

func TestContentString(t *testing.T) {
	if got := CacheEvents.String(); got != "cache-events" {
		t.Errorf("CacheEvents = %q", got)
	}
	if got := InstrRecording.String(); got != "instr-recording" {
		t.Errorf("InstrRecording = %q", got)
	}
	if !strings.Contains(Content(9).String(), "9") {
		t.Errorf("unknown content String: %q", Content(9))
	}
	if Content(9).Valid() {
		t.Error("Content(9) valid")
	}
}
