package leakage

// The closed forms behind the aggregate fast path: every builtin policy
// declares its IntervalEnergy (and IntervalMisses) as a piecewise-affine
// Curve per flags value. The curves mirror the reference implementations
// in policy.go/extended.go/coloring.go/waymemo.go branch for branch —
// same threshold comparisons on float64(length), same flag dispatch —
// differing only by floating-point regrouping of each branch's affine
// arithmetic. TestClosedFormsMatchReference pins the agreement pointwise
// across every flags value, technology node, and threshold neighborhood;
// the aggregate property tests pin it distribution-wide.
//
// Custom registry schemes that do not implement ClosedForm (no declared
// threshold structure) simply bypass the fast path: EvaluateAggregate
// falls back to the reference walk over Aggregates.Source().

import (
	"leakbound/internal/interval"
	"leakbound/internal/power"
)

// ClosedForm is implemented by policies whose IntervalEnergy is piecewise
// affine in the interval length for any fixed flags value. EnergyCurve
// returns the curve for one flags value; ok=false means the policy cannot
// express this flags class in closed form and the caller must fall back
// to the bucket-walking reference path for the whole distribution.
type ClosedForm interface {
	EnergyCurve(t power.Technology, flags interval.Flags) (Curve, bool)
}

// MissClosedForm is the induced-miss counterpart of ClosedForm: the
// piecewise form of MissModel.IntervalMisses for one flags value.
type MissClosedForm interface {
	MissCurve(t power.Technology, flags interval.Flags) (Curve, bool)
}

// Shared building blocks, mirroring the helpers in policy.go.

func activeCurve(t power.Technology) Curve { return affine(0, t.PActive) }

// drowsyForCurve mirrors drowsyEnergyFor: active for L <= DrowsyOverhead,
// DrowsyEnergy past it.
func drowsyForCurve(t power.Technology) Curve {
	oh := float64(t.Durations.DrowsyOverhead())
	drowsy := affine(oh*t.PActive-oh*t.PDrowsy, t.PDrowsy)
	return switchAt(oh, activeCurve(t), drowsy)
}

// leadingSleepCurve mirrors leadingSleepEnergy: active when the wake
// cannot fit (L < S3+S4, i.e. the cut sits at wake-0.5 for the integer
// lengths distributions record), off-then-wake otherwise.
func leadingSleepCurve(t power.Technology) Curve {
	wake := float64(t.Durations.S3 + t.Durations.S4)
	slept := affine(wake*t.PActive-wake*t.PSleep, t.PSleep)
	return switchAt(wake-0.5, activeCurve(t), slept)
}

// trailingSleepCurve mirrors trailingSleepEnergy: active for L < S1.
func trailingSleepCurve(t power.Technology) Curve {
	s1 := float64(t.Durations.S1)
	slept := affine(s1*t.PActive-s1*t.PSleep, t.PSleep)
	return switchAt(s1-0.5, activeCurve(t), slept)
}

func untouchedSleepCurve(t power.Technology) Curve { return affine(0, t.PSleep) }

// sleepForCurve mirrors sleepEnergyFor's flag dispatch, including the
// write-back charge riding on trailing and interior dirty intervals.
func sleepForCurve(t power.Technology, flags interval.Flags) Curve {
	var wb float64
	if flags&interval.Dirty != 0 {
		wb = t.WBEnergy
	}
	switch {
	case flags&interval.Untouched == interval.Untouched:
		return untouchedSleepCurve(t)
	case flags&interval.Leading != 0:
		return leadingSleepCurve(t)
	case flags&interval.Trailing != 0:
		return trailingSleepCurve(t).plusConst(wb)
	default:
		ohS := float64(t.Durations.SleepOverhead())
		return affine(ohS*t.PActive-ohS*t.PSleep+t.CD+wb, t.PSleep)
	}
}

// zeroCurve is the all-zero miss curve.
func zeroCurve() Curve { return constant(0) }

// EnergyCurve implements ClosedForm.
func (AlwaysActive) EnergyCurve(t power.Technology, flags interval.Flags) (Curve, bool) {
	return activeCurve(t), true
}

// MissCurve implements MissClosedForm.
func (AlwaysActive) MissCurve(power.Technology, interval.Flags) (Curve, bool) {
	return zeroCurve(), true
}

// EnergyCurve implements ClosedForm.
func (OPTDrowsy) EnergyCurve(t power.Technology, flags interval.Flags) (Curve, bool) {
	return drowsyForCurve(t), true
}

// MissCurve implements MissClosedForm.
func (OPTDrowsy) MissCurve(power.Technology, interval.Flags) (Curve, bool) {
	return zeroCurve(), true
}

// optSleepTheta applies the reference's clamp: theta never drops below
// the sleep overhead.
func (p OPTSleep) theta(t power.Technology) float64 {
	theta := float64(p.Theta)
	if m := float64(t.Durations.SleepOverhead()); theta < m {
		theta = m
	}
	return theta
}

// EnergyCurve implements ClosedForm.
func (p OPTSleep) EnergyCurve(t power.Technology, flags interval.Flags) (Curve, bool) {
	return switchAt(p.theta(t), activeCurve(t), sleepForCurve(t, flags)), true
}

// MissCurve implements MissClosedForm.
func (p OPTSleep) MissCurve(t power.Technology, flags interval.Flags) (Curve, bool) {
	if !flags.Interior() {
		return zeroCurve(), true
	}
	return switchAt(p.theta(t), zeroCurve(), constant(1)), true
}

// EnergyCurve implements ClosedForm.
func (p SleepDecay) EnergyCurve(t power.Technology, flags interval.Flags) (Curve, bool) {
	d := t.Durations
	counter := t.CounterLeak
	switch {
	case flags&interval.Untouched == interval.Untouched:
		return untouchedSleepCurve(t).plusSlope(counter), true
	case flags&interval.Leading != 0:
		return leadingSleepCurve(t).plusSlope(counter), true
	}
	theta := float64(p.Theta)
	need := theta + float64(d.S1)
	if flags&interval.Trailing == 0 {
		need += float64(d.S3 + d.S4)
	}
	var wb float64
	if flags&interval.Dirty != 0 {
		wb = t.WBEnergy
	}
	var gated Curve
	if flags&interval.Trailing != 0 {
		gated = affine(theta*t.PActive+float64(d.S1)*t.PActive-(theta+float64(d.S1))*t.PSleep+wb, t.PSleep)
	} else {
		wake := float64(d.S3+d.S4) * t.PActive
		gated = affine(theta*t.PActive+float64(d.S1)*t.PActive+wake+t.CD+wb-need*t.PSleep, t.PSleep)
	}
	return switchAt(need, activeCurve(t), gated).plusSlope(counter), true
}

// MissCurve implements MissClosedForm.
func (p SleepDecay) MissCurve(t power.Technology, flags interval.Flags) (Curve, bool) {
	if !flags.Interior() {
		return zeroCurve(), true
	}
	d := t.Durations
	need := float64(p.Theta) + float64(d.S1) + float64(d.S3+d.S4)
	return switchAt(need, zeroCurve(), constant(1)), true
}

// EnergyCurve implements ClosedForm.
func (p OPTHybrid) EnergyCurve(t power.Technology, flags interval.Flags) (Curve, bool) {
	_, b, err := t.InflectionPoints()
	if err != nil {
		return activeCurve(t), true
	}
	theta := b
	if p.SleepTheta > 0 {
		theta = float64(p.SleepTheta)
	}
	return switchAt(theta, drowsyForCurve(t), sleepForCurve(t, flags)), true
}

// MissCurve implements MissClosedForm.
func (p OPTHybrid) MissCurve(t power.Technology, flags interval.Flags) (Curve, bool) {
	if !flags.Interior() {
		return zeroCurve(), true
	}
	_, b, err := t.InflectionPoints()
	if err != nil {
		return zeroCurve(), true
	}
	theta := b
	if p.SleepTheta > 0 {
		theta = float64(p.SleepTheta)
	}
	return switchAt(theta, zeroCurve(), constant(1)), true
}

// EnergyCurve implements ClosedForm.
func (p PeriodicDrowsy) EnergyCurve(t power.Technology, flags interval.Flags) (Curve, bool) {
	w := float64(p.Window)
	if w <= 0 {
		return activeCurve(t), true
	}
	wait := w / 2
	if flags&interval.Leading != 0 || flags&interval.Trailing != 0 {
		idle := affine(wait*t.PActive-wait*t.PDrowsy+float64(t.Durations.D1)*t.PActive, t.PDrowsy)
		return switchAt(wait, activeCurve(t), idle), true
	}
	oh := float64(t.Durations.DrowsyOverhead())
	drowsed := affine(wait*t.PActive+oh*t.PActive-(wait+oh)*t.PDrowsy, t.PDrowsy)
	return switchAt(wait+oh, activeCurve(t), drowsed), true
}

// MissCurve implements MissClosedForm.
func (PeriodicDrowsy) MissCurve(power.Technology, interval.Flags) (Curve, bool) {
	return zeroCurve(), true
}

// EnergyCurve implements ClosedForm.
func (p PrefetchGuided) EnergyCurve(t power.Technology, flags interval.Flags) (Curve, bool) {
	switch {
	case flags&interval.Untouched == interval.Untouched:
		return untouchedSleepCurve(t), true
	case flags&interval.Leading != 0:
		return leadingSleepCurve(t), true
	}
	_, b, err := t.InflectionPoints()
	if err != nil {
		return activeCurve(t), true
	}
	if flags.Prefetchable() {
		return switchAt(b, drowsyForCurve(t), sleepForCurve(t, flags)), true
	}
	if p.PowerBiased {
		return drowsyForCurve(t), true
	}
	return activeCurve(t), true
}

// MissCurve implements MissClosedForm.
func (p PrefetchGuided) MissCurve(t power.Technology, flags interval.Flags) (Curve, bool) {
	if !flags.Interior() || !flags.Prefetchable() {
		return zeroCurve(), true
	}
	_, b, err := t.InflectionPoints()
	if err != nil {
		return zeroCurve(), true
	}
	return switchAt(b, zeroCurve(), constant(1)), true
}

// EnergyCurve implements ClosedForm: the decay base curve with the tag
// array's share of any sleep savings given back.
func (p AMCSleep) EnergyCurve(t power.Technology, flags interval.Flags) (Curve, bool) {
	base, ok := SleepDecay{Theta: p.Theta}.EnergyCurve(t, flags)
	if !ok {
		return Curve{}, false
	}
	return tagTransform(base, p.TagFraction, t.PActive), true
}

// MissCurve implements MissClosedForm: same decisions as the decay core.
func (p AMCSleep) MissCurve(t power.Technology, flags interval.Flags) (Curve, bool) {
	return SleepDecay{Theta: p.Theta}.MissCurve(t, flags)
}

// dirtyTheta mirrors DirtyAwareHybrid's per-flag crossover.
func dirtyTheta(t power.Technology, b float64, flags interval.Flags) float64 {
	if flags&interval.Dirty != 0 {
		return b + t.WBEnergy/(t.PDrowsy-t.PSleep)
	}
	return b
}

// EnergyCurve implements ClosedForm.
func (DirtyAwareHybrid) EnergyCurve(t power.Technology, flags interval.Flags) (Curve, bool) {
	_, b, err := t.InflectionPoints()
	if err != nil {
		return activeCurve(t), true
	}
	return switchAt(dirtyTheta(t, b, flags), drowsyForCurve(t), sleepForCurve(t, flags)), true
}

// MissCurve implements MissClosedForm.
func (DirtyAwareHybrid) MissCurve(t power.Technology, flags interval.Flags) (Curve, bool) {
	if !flags.Interior() {
		return zeroCurve(), true
	}
	_, b, err := t.InflectionPoints()
	if err != nil {
		return zeroCurve(), true
	}
	return switchAt(dirtyTheta(t, b, flags), zeroCurve(), constant(1)), true
}

// EnergyCurve implements ClosedForm: the dead-interior branch gates
// wherever CD-free sleep beats the drowsy schedule (for L >= the sleep
// overhead), everything else follows OPT-Hybrid.
func (DeadAwareHybrid) EnergyCurve(t power.Technology, flags interval.Flags) (Curve, bool) {
	if flags&interval.DeadEnd == 0 || !flags.Interior() {
		return OPTHybrid{}.EnergyCurve(t, flags)
	}
	if _, _, err := t.InflectionPoints(); err != nil {
		return activeCurve(t), true
	}
	ohS := float64(t.Durations.SleepOverhead())
	var wb float64
	if flags&interval.Dirty != 0 {
		wb = t.WBEnergy
	}
	sleepNR := affine(ohS*t.PActive-ohS*t.PSleep+wb, t.PSleep)
	base := drowsyForCurve(t)
	return switchAt(ohS-0.5, base, pickBelow(base, sleepNR)), true
}

// MissCurve implements MissClosedForm: gated dead intervals never
// re-fetch.
func (DeadAwareHybrid) MissCurve(t power.Technology, flags interval.Flags) (Curve, bool) {
	if flags&interval.DeadEnd != 0 && flags.Interior() {
		return zeroCurve(), true
	}
	return OPTHybrid{}.MissCurve(t, flags)
}

// EnergyCurve implements ClosedForm.
func (p Coloring) EnergyCurve(t power.Technology, flags interval.Flags) (Curve, bool) {
	switch {
	case flags&interval.Untouched == interval.Untouched:
		return untouchedSleepCurve(t), true
	case flags&interval.Leading != 0:
		return leadingSleepCurve(t), true
	}
	return switchAt(p.regionTheta(t), activeCurve(t), sleepForCurve(t, flags)), true
}

// MissCurve implements MissClosedForm.
func (p Coloring) MissCurve(t power.Technology, flags interval.Flags) (Curve, bool) {
	if !flags.Interior() {
		return zeroCurve(), true
	}
	return switchAt(p.regionTheta(t), zeroCurve(), constant(1)), true
}

// EnergyCurve implements ClosedForm.
func (p WayMemo) EnergyCurve(t power.Technology, flags interval.Flags) (Curve, bool) {
	switch {
	case flags&interval.Untouched == interval.Untouched:
		return untouchedSleepCurve(t), true
	case flags&interval.Leading != 0:
		return leadingSleepCurve(t), true
	}
	if !flags.Prefetchable() {
		return activeCurve(t), true
	}
	_, b, err := t.InflectionPoints()
	if err != nil {
		return activeCurve(t), true
	}
	slept := sleepForCurve(t, flags)
	if flags.Interior() {
		slept = slept.plusConst((1 - p.Accuracy) * t.CD)
	}
	return switchAt(b, drowsyForCurve(t), slept), true
}

// MissCurve implements MissClosedForm.
func (p WayMemo) MissCurve(t power.Technology, flags interval.Flags) (Curve, bool) {
	if !flags.Interior() || !flags.Prefetchable() {
		return zeroCurve(), true
	}
	_, b, err := t.InflectionPoints()
	if err != nil {
		return zeroCurve(), true
	}
	return switchAt(b, zeroCurve(), constant(1+(1-p.Accuracy))), true
}
