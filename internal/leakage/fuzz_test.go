package leakage

import (
	"errors"
	"math"
	"testing"

	"leakbound/internal/interval"
	"leakbound/internal/power"
)

// fuzzDistribution decodes a byte stream into a distribution: five bytes
// per bucket — three of length (biased so the dense rows, the threshold
// neighborhoods, and the deep tail all get coverage), one of flags, one
// of count. An empty stream yields an empty distribution, exercising the
// ErrEmptyDistribution parity.
func fuzzDistribution(data []byte) *interval.Distribution {
	d := interval.NewDistribution(64, 1<<22)
	for len(data) >= 5 {
		raw := uint64(data[0]) | uint64(data[1])<<8 | uint64(data[2])<<16
		length := raw%(1<<21) + 1
		flags := interval.Flags(data[3] % 64)
		count := uint64(data[4]%64) + 1
		d.Add(length, flags, count)
		data = data[5:]
	}
	return d
}

// FuzzEvaluateFastPath throws randomized distributions and randomized
// registered policy specs at the aggregate fast path and asserts
// agreement with the reference walk: same error sentinels, ulp-scale
// energy agreement, exact induced-miss agreement. Wired into
// `make fuzz-regress` so the committed corpus replays in CI.
func FuzzEvaluateFastPath(f *testing.F) {
	f.Add(uint8(0), uint64(0), 0.0, []byte{})
	f.Add(uint8(2), uint64(1057), 0.9, []byte{37, 0, 0, 1, 5, 0, 20, 0, 9, 3})
	f.Add(uint8(4), uint64(10000), 0.06, []byte{255, 255, 31, 63, 63, 5, 0, 0, 0, 1})
	f.Add(uint8(9), uint64(2000), 0.5, []byte{36, 0, 0, 2, 1, 38, 0, 0, 2, 1, 232, 3, 0, 4, 7})

	techs := power.Technologies()
	schemes := DefaultRegistry().Schemes()

	f.Fuzz(func(t *testing.T, schemeIdx uint8, up uint64, fp float64, data []byte) {
		reg := schemes[int(schemeIdx)%len(schemes)]
		tech := techs[int(up)%len(techs)]

		// Fill every declared parameter from the fuzzed scalars, clamped
		// to the kind's sane range so Build rarely rejects.
		params := make(Params, len(reg.Params))
		for _, sch := range reg.Params {
			switch sch.Kind {
			case UintParam:
				params[sch.Name] = Uint(up % (1 << 22))
			case FloatParam:
				v := math.Abs(fp)
				if !(v <= 1) { // also catches NaN
					v = 0.5
				}
				params[sch.Name] = Float(v)
			case BoolParam:
				params[sch.Name] = Bool(up&1 == 1)
			}
		}
		pol, err := DefaultRegistry().Build(PolicySpec{Scheme: reg.Name, Params: params}, tech)
		if err != nil {
			t.Skip() // factory rejected the clamped params; nothing to check
		}

		d := fuzzDistribution(data)
		agg := interval.NewAggregates(d)

		ref, refErr := Evaluate(tech, d, pol)
		fast, fastErr := EvaluateAggregate(tech, agg, pol)
		if (refErr == nil) != (fastErr == nil) {
			t.Fatalf("%s: error mismatch: ref %v, fast %v", pol.Name(), refErr, fastErr)
		}
		if refErr != nil {
			if !errors.Is(refErr, ErrEmptyDistribution) || !errors.Is(fastErr, ErrEmptyDistribution) {
				t.Fatalf("%s: unexpected sentinels: ref %v, fast %v", pol.Name(), refErr, fastErr)
			}
			return
		}
		if fast.Policy != ref.Policy || fast.Baseline != ref.Baseline {
			t.Fatalf("%s: metadata mismatch: %+v vs %+v", pol.Name(), fast, ref)
		}
		if d := math.Abs(fast.Energy - ref.Energy); d > 1e-12 &&
			d > 1e-9*math.Max(math.Abs(fast.Energy), math.Abs(ref.Energy)) {
			t.Fatalf("%s @%s: energy fast %.17g, ref %.17g", pol.Name(), tech.Name, fast.Energy, ref.Energy)
		}

		if _, ok := pol.(MissModel); ok {
			refMiss, refMissErr := InducedMissRate(tech, d, pol)
			fastMiss, fastMissErr := InducedMissRateAggregate(tech, agg, pol)
			if (refMissErr == nil) != (fastMissErr == nil) {
				t.Fatalf("%s: miss error mismatch: ref %v, fast %v", pol.Name(), refMissErr, fastMissErr)
			}
			if refMissErr == nil {
				if d := math.Abs(fastMiss - refMiss); d > 1e-12 && d > 1e-9*math.Abs(refMiss) {
					t.Fatalf("%s: miss rate fast %.17g, ref %.17g", pol.Name(), fastMiss, refMiss)
				}
			}
		}
	})
}
