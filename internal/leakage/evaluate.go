package leakage

import (
	"fmt"

	"leakbound/internal/interval"
	"leakbound/internal/power"
)

// Evaluation reports how a policy performed over one interval distribution.
type Evaluation struct {
	Policy   string
	Energy   float64 // leakage + transition + induced-miss energy spent
	Baseline float64 // energy of the always-active cache over the same span
	// Savings is the paper's y-axis: the fraction of total leakage power
	// removed versus a cache whose lines are constantly active.
	Savings float64
}

// String renders the evaluation the way the paper quotes numbers.
func (e Evaluation) String() string {
	return fmt.Sprintf("%s: %.1f%% leakage savings", e.Policy, e.Savings*100)
}

// Evaluate folds the policy over every interval in the distribution and
// compares against the always-active baseline (Pactive x frames x cycles).
func Evaluate(t power.Technology, d *interval.Distribution, p Policy) (Evaluation, error) {
	if err := t.Validate(); err != nil {
		return Evaluation{}, err
	}
	if d == nil {
		return Evaluation{}, ErrNilDistribution
	}
	if p == nil {
		return Evaluation{}, ErrNilPolicy
	}
	baseline := t.PActive * float64(d.Mass())
	if baseline == 0 {
		return Evaluation{}, fmt.Errorf("%w: zero mass", ErrEmptyDistribution)
	}
	var energy float64
	d.Each(func(length uint64, flags interval.Flags, count uint64) bool {
		energy += p.IntervalEnergy(t, length, flags) * float64(count)
		return true
	})
	return Evaluation{
		Policy:   p.Name(),
		Energy:   energy,
		Baseline: baseline,
		Savings:  1 - energy/baseline,
	}, nil
}

// EvaluateAll runs several policies over the same distribution.
func EvaluateAll(t power.Technology, d *interval.Distribution, ps []Policy) ([]Evaluation, error) {
	out := make([]Evaluation, 0, len(ps))
	for _, p := range ps {
		ev, err := Evaluate(t, d, p)
		if err != nil {
			return nil, fmt.Errorf("leakage: evaluating %s: %w", p.Name(), err)
		}
		out = append(out, ev)
	}
	return out, nil
}

// AverageSavings averages the savings of per-benchmark evaluations of the
// same policy, the way Figure 8's rightmost bars are built.
func AverageSavings(evals []Evaluation) (float64, error) {
	if len(evals) == 0 {
		return 0, ErrNoEvaluations
	}
	var s float64
	for _, e := range evals {
		s += e.Savings
	}
	return s / float64(len(evals)), nil
}
