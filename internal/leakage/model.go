package leakage

import (
	"fmt"
	"math"

	"leakbound/internal/power"
)

// Model is the generalized optimal-leakage-savings model of Section 3.3 and
// Figure 6: three states (Active, Drowsy, Sleep), a static power per state,
// and transition energies on the edges. All individual assumptions —
// durations, transition energies, per-mode leakage, and the induced-miss
// cost — are parameterized, so the model keeps working as implementation
// technology changes over time (the paper's stated purpose for it).
type Model struct {
	// P is the static power of each state, per line per cycle.
	P [3]float64
	// E holds transition energies: E[from][to]. Diagonal entries are zero
	// (self edges consume only the state's static power).
	E [3][3]float64
	// WakeCycles is the time to return to Active from each state; it
	// bounds which intervals a mode can cover (the transition must fit).
	WakeCycles [3]int
	// EntryCycles is the time to enter each state from Active.
	EntryCycles [3]int
	// CD is the dynamic induced-miss energy paid when a slept line is
	// re-fetched.
	CD float64
}

// NewModel builds the Figure 6 model from a calibrated technology node.
func NewModel(t power.Technology) Model {
	tr := t.Transitions()
	d := t.Durations
	var m Model
	m.P = [3]float64{t.PActive, t.PDrowsy, t.PSleep}
	m.E[Active][Drowsy] = tr.EAD
	m.E[Drowsy][Active] = tr.EDA
	m.E[Active][Sleep] = tr.EAS
	m.E[Sleep][Active] = tr.ESA
	// Drowsy<->Sleep edges: the paper's scheme never uses them mid-interval
	// (an optimal policy picks one mode per interval), but the model keeps
	// them for generality: through-Active composition.
	m.E[Drowsy][Sleep] = tr.EDA + tr.EAS
	m.E[Sleep][Drowsy] = tr.ESA + tr.EAD
	m.WakeCycles = [3]int{0, d.D3, d.S3 + d.S4}
	m.EntryCycles = [3]int{0, d.D1, d.S1}
	m.CD = t.CD
	return m
}

// Validate checks the model's internal consistency.
func (m Model) Validate() error {
	if m.P[Active] <= 0 {
		return fmt.Errorf("leakage: model active power %g not positive", m.P[Active])
	}
	if !(m.P[Active] > m.P[Drowsy] && m.P[Drowsy] > m.P[Sleep]) {
		return fmt.Errorf("leakage: model powers not strictly ordered: %v", m.P)
	}
	if m.P[Sleep] < 0 || m.CD < 0 {
		return fmt.Errorf("leakage: negative power or CD")
	}
	for i := range m.E {
		if m.E[i][i] != 0 {
			return fmt.Errorf("leakage: non-zero self transition energy at %v", Mode(i))
		}
		for j := range m.E[i] {
			if m.E[i][j] < 0 {
				return fmt.Errorf("leakage: negative transition energy %v->%v", Mode(i), Mode(j))
			}
		}
	}
	return nil
}

// overhead returns the cycles an interval must donate to enter and leave
// the mode.
func (m Model) overhead(mode Mode) int {
	return m.EntryCycles[mode] + m.WakeCycles[mode]
}

// IntervalEnergy returns the energy of covering an interior interval of the
// given length entirely in the given mode: the entry transition, the rest
// at the state's static power, the wake transition, and (for sleep) the
// induced-miss re-fetch. It returns +Inf when the transitions do not fit,
// so the lower envelope (Figure 10) is well defined everywhere.
func (m Model) IntervalEnergy(length float64, mode Mode) float64 {
	if !mode.Valid() {
		return math.Inf(1)
	}
	if mode == Active {
		return length * m.P[Active]
	}
	oh := float64(m.overhead(mode))
	if length < oh {
		return math.Inf(1)
	}
	e := m.E[Active][mode] + (length-oh)*m.P[mode] + m.E[mode][Active]
	if mode == Sleep {
		e += m.CD
	}
	return e
}

// OptimalMode returns the cheapest mode for an interval of the given
// length, i.e. the argmin of the Figure 10 lower envelope.
func (m Model) OptimalMode(length float64) Mode {
	best, bestE := Active, m.IntervalEnergy(length, Active)
	for _, mode := range []Mode{Drowsy, Sleep} {
		if e := m.IntervalEnergy(length, mode); e < bestE {
			best, bestE = mode, e
		}
	}
	return best
}

// Envelope returns the minimal energy over all modes for the given length:
// the lower-envelope function E(Ii, Tj) of Figure 10.
func (m Model) Envelope(length float64) float64 {
	return m.IntervalEnergy(length, m.OptimalMode(length))
}

// InflectionPoints returns (a, b) computed from the model's own parameters:
// a is the drowsy overhead (entry+wake), and b solves
// sleepEnergy(L) = drowsyEnergy(L). This mirrors
// power.Technology.InflectionPoints but works for arbitrary hand-built
// models, which is what makes the model useful for future technologies.
func (m Model) InflectionPoints() (a, b float64, err error) {
	if err := m.Validate(); err != nil {
		return 0, 0, err
	}
	a = float64(m.overhead(Drowsy))
	// Both energies are affine in L beyond their overheads:
	//   E_s(L) = alphaS + Ps*L, E_d(L) = alphaD + Pd*L.
	ohS, ohD := float64(m.overhead(Sleep)), float64(m.overhead(Drowsy))
	alphaS := m.E[Active][Sleep] + m.E[Sleep][Active] + m.CD - ohS*m.P[Sleep]
	alphaD := m.E[Active][Drowsy] + m.E[Drowsy][Active] - ohD*m.P[Drowsy]
	b = (alphaS - alphaD) / (m.P[Drowsy] - m.P[Sleep])
	if b < ohS {
		return 0, 0, fmt.Errorf("leakage: model inflection %g below sleep overhead %g; sleep never wins", b, ohS)
	}
	if b <= a {
		return 0, 0, fmt.Errorf("leakage: model inflection b=%g not above a=%g", b, a)
	}
	return a, b, nil
}

// EnvelopeSeries samples the three mode-energy curves and the lower
// envelope at the given interval lengths; this is the data behind
// Figure 10.
type EnvelopePoint struct {
	Length  float64
	Active  float64
	Drowsy  float64 // +Inf where the mode does not fit
	Sleep   float64 // +Inf where the mode does not fit
	Minimum float64
	Best    Mode
}

// EnvelopeSeries evaluates the model at each length.
func (m Model) EnvelopeSeries(lengths []float64) []EnvelopePoint {
	out := make([]EnvelopePoint, len(lengths))
	for i, L := range lengths {
		best := m.OptimalMode(L)
		out[i] = EnvelopePoint{
			Length:  L,
			Active:  m.IntervalEnergy(L, Active),
			Drowsy:  m.IntervalEnergy(L, Drowsy),
			Sleep:   m.IntervalEnergy(L, Sleep),
			Minimum: m.IntervalEnergy(L, best),
			Best:    best,
		}
	}
	return out
}
