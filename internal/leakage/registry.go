package leakage

// The policy registry: each scheme registers a factory from (technology,
// params) to Policy together with its declared parameter schemas, and the
// registry provides parsing (ParseSpec), validated construction (Build),
// and the single source of truth for the scheme catalog (Names, Schemes)
// that error messages, /api/v1/policies, and the README table all render
// from. The six paper policies and the extension baselines are registered
// in builtins.go; custom schemes — typically built on the Figure 6 Model
// construction kit — register the same way (see DESIGN.md §12 for a
// worked example).

import (
	"fmt"
	"strings"
	"sync"

	"leakbound/internal/power"
)

// Factory builds one policy from a calibrated technology node and the
// normalized parameter map. Absent parameters mean "use the scheme's
// default"; factories must return an error wrapping ErrBadParam for
// out-of-range values.
type Factory func(power.Technology, Params) (Policy, error)

// Registration describes one scheme: its canonical (lowercase) name, a
// one-line doc, the declared parameters, which parameter the legacy
// positional "scheme@N" shorthand binds to (empty = the scheme takes no
// positional), and the factory.
type Registration struct {
	Name       string        `json:"name"`
	Doc        string        `json:"doc"`
	Positional string        `json:"positional,omitempty"`
	Params     []ParamSchema `json:"params,omitempty"`
	// Refines names the scheme this one is a strictly-better-informed
	// refinement of (e.g. the write-back- and dead-block-aware hybrid
	// oracles refine "opt-hybrid"). Refinements dominate their base by
	// construction, so family-level comparisons like the default Pareto
	// population keep one representative per family and skip them.
	Refines string  `json:"refines,omitempty"`
	Factory Factory `json:"-"`
}

// Schema returns the declared schema for a parameter name.
func (r Registration) Schema(name string) (ParamSchema, bool) {
	for _, p := range r.Params {
		if p.Name == name {
			return p, true
		}
	}
	return ParamSchema{}, false
}

// paramNames lists the declared parameter names for error messages.
func (r Registration) paramNames() string {
	if len(r.Params) == 0 {
		return "none"
	}
	names := make([]string, 0, len(r.Params))
	for _, p := range r.Params {
		names = append(names, p.Name)
	}
	return strings.Join(names, ", ")
}

// Registry maps scheme names to registrations, preserving registration
// order for presentation. It is safe for concurrent use.
type Registry struct {
	mu     sync.RWMutex
	byName map[string]Registration
	order  []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]Registration)}
}

// Register adds a scheme. The name must be non-empty, lowercase, and
// unused (a duplicate returns ErrDuplicateScheme); parameter names must be
// lowercase and unique; Positional, when set, must name a declared
// parameter; the factory must be non-nil.
func (r *Registry) Register(reg Registration) error {
	if reg.Name == "" {
		return fmt.Errorf("%w: empty scheme name", ErrBadParam)
	}
	if reg.Name != strings.ToLower(reg.Name) || strings.ContainsAny(reg.Name, "@=, \t") {
		return fmt.Errorf("%w: scheme name %q must be lowercase without @, =, comma, or spaces", ErrBadParam, reg.Name)
	}
	if reg.Factory == nil {
		return fmt.Errorf("%w: scheme %q has a nil factory", ErrBadParam, reg.Name)
	}
	seen := make(map[string]bool, len(reg.Params))
	for _, p := range reg.Params {
		if p.Name == "" || p.Name != strings.ToLower(p.Name) || strings.ContainsAny(p.Name, "@=, \t") {
			return fmt.Errorf("%w: scheme %q parameter %q must be lowercase without @, =, comma, or spaces", ErrBadParam, reg.Name, p.Name)
		}
		if seen[p.Name] {
			return fmt.Errorf("%w: scheme %q declares parameter %q twice", ErrBadParam, reg.Name, p.Name)
		}
		seen[p.Name] = true
	}
	if reg.Positional != "" && !seen[reg.Positional] {
		return fmt.Errorf("%w: scheme %q positional %q is not a declared parameter", ErrBadParam, reg.Name, reg.Positional)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[reg.Name]; dup {
		return fmt.Errorf("%w: %q", ErrDuplicateScheme, reg.Name)
	}
	r.byName[reg.Name] = reg
	r.order = append(r.order, reg.Name)
	return nil
}

// MustRegister is Register that panics; for the package's own builtins
// and for init-time registration of custom schemes.
func (r *Registry) MustRegister(reg Registration) {
	if err := r.Register(reg); err != nil {
		panic(err)
	}
}

// Lookup returns the registration for a canonical (lowercase) name.
func (r *Registry) Lookup(name string) (Registration, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	reg, ok := r.byName[name]
	return reg, ok
}

// Names lists the registered scheme names in registration order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, len(r.order))
	copy(out, r.order)
	return out
}

// Schemes lists the registrations in registration order.
func (r *Registry) Schemes() []Registration {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Registration, 0, len(r.order))
	for _, name := range r.order {
		out = append(out, r.byName[name])
	}
	return out
}

// ParseSpec parses the policy-spec grammar, case- and space-folded:
//
//	scheme                      no parameters
//	scheme@VALUE                positional shorthand (the scheme's declared
//	                            positional parameter; legacy "@theta")
//	scheme@key=value,key=value  named parameters
//
// Unknown schemes return ErrUnknownScheme; unknown keys, duplicate keys,
// positional values on schemes with no positional parameter, and
// malformed values return ErrBadParam. Values parse under the declared
// kind with strconv semantics (uints are base-10 only, full 64-bit range).
func (r *Registry) ParseSpec(s string) (PolicySpec, error) {
	text := strings.ToLower(strings.TrimSpace(s))
	name, rest, hasParams := strings.Cut(text, "@")
	reg, ok := r.Lookup(name)
	if !ok {
		return PolicySpec{}, fmt.Errorf("%w: %q (known: %s)", ErrUnknownScheme, name, strings.Join(r.Names(), ", "))
	}
	spec := PolicySpec{Scheme: name}
	if !hasParams {
		return spec, nil
	}
	params := make(Params)
	if !strings.Contains(rest, "=") {
		// Positional shorthand: "scheme@N".
		if reg.Positional == "" {
			return PolicySpec{}, fmt.Errorf("%w: scheme %q takes no positional parameter (declared: %s)",
				ErrBadParam, name, reg.paramNames())
		}
		sch, _ := reg.Schema(reg.Positional)
		v, err := parseParamValue(sch.Kind, rest)
		if err != nil {
			return PolicySpec{}, fmt.Errorf("%w: %s in %q: %w", ErrBadParam, sch.Name, s, err)
		}
		params[sch.Name] = v
		spec.Params = params
		return spec, nil
	}
	for _, kv := range strings.Split(rest, ",") {
		key, val, ok := strings.Cut(kv, "=")
		key = strings.TrimSpace(key)
		if !ok || key == "" {
			return PolicySpec{}, fmt.Errorf("%w: %q in %q (want key=value)", ErrBadParam, kv, s)
		}
		sch, declared := reg.Schema(key)
		if !declared {
			return PolicySpec{}, fmt.Errorf("%w: unknown parameter %q for scheme %q (declared: %s)",
				ErrBadParam, key, name, reg.paramNames())
		}
		if _, dup := params[sch.Name]; dup {
			return PolicySpec{}, fmt.Errorf("%w: duplicate parameter %q in %q", ErrBadParam, key, s)
		}
		v, err := parseParamValue(sch.Kind, strings.TrimSpace(val))
		if err != nil {
			return PolicySpec{}, fmt.Errorf("%w: %s in %q: %w", ErrBadParam, sch.Name, s, err)
		}
		params[sch.Name] = v
	}
	spec.Params = params
	return spec, nil
}

// Build validates the spec against the scheme's declared schema and runs
// the factory. Parameter values of the wrong kind are coerced when exact
// (a JSON 8192 for a float parameter, an integral float for a uint
// parameter); anything else returns ErrBadParam. Unknown schemes return
// ErrUnknownScheme.
func (r *Registry) Build(spec PolicySpec, tech power.Technology) (Policy, error) {
	name := strings.ToLower(strings.TrimSpace(spec.Scheme))
	reg, ok := r.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("%w: %q (known: %s)", ErrUnknownScheme, spec.Scheme, strings.Join(r.Names(), ", "))
	}
	params := make(Params, len(spec.Params))
	for _, key := range spec.Params.sortedKeys() {
		sch, declared := reg.Schema(strings.ToLower(strings.TrimSpace(key)))
		if !declared {
			return nil, fmt.Errorf("%w: unknown parameter %q for scheme %q (declared: %s)",
				ErrBadParam, key, name, reg.paramNames())
		}
		v, err := coerceParam(sch, spec.Params[key])
		if err != nil {
			return nil, fmt.Errorf("%w: %s for scheme %q: %w", ErrBadParam, sch.Name, name, err)
		}
		params[sch.Name] = v
	}
	pol, err := reg.Factory(tech, params)
	if err != nil {
		return nil, fmt.Errorf("leakage: building %q: %w", name, err)
	}
	if pol == nil {
		return nil, fmt.Errorf("leakage: scheme %q factory returned a nil policy", name)
	}
	return pol, nil
}

// coerceParam fits a provided value to the declared kind, allowing only
// exact conversions.
func coerceParam(sch ParamSchema, v ParamValue) (ParamValue, error) {
	if v.Kind() == sch.Kind {
		return v, nil
	}
	switch sch.Kind {
	case UintParam:
		if u, ok := v.AsUint(); ok {
			return Uint(u), nil
		}
	case FloatParam:
		if f, ok := v.AsFloat(); ok {
			return Float(f), nil
		}
	}
	return ParamValue{}, fmt.Errorf("value %s is not a valid %s", v, sch.Kind)
}

// DefaultRegistry returns the package registry holding the built-in
// schemes (the paper's six policies plus the extension baselines and the
// related-work families). Custom schemes may be registered on it at init
// time.
func DefaultRegistry() *Registry { return defaultRegistry }

// PolicyNames lists the registered scheme names of the default registry in
// registration order — the single source of truth behind
// experiments.PolicyNames, /api/v1/policies, and parse errors.
func PolicyNames() []string { return defaultRegistry.Names() }
