package leakage

// Cache-coloring leakage management (Mittal's survey family,
// arXiv:1309.5647): the frame array is partitioned into Colors equal
// regions ("colors"), and the controller gates cold colors wholesale
// instead of individual frames. Coarse granularity is cheap in control
// logic but can only harvest an idle period when an entire region is
// idle, so the per-frame threshold scales with the region size: a region
// of g = Frames/Colors frames is modelled as gated only during intervals
// of at least g times the drowsy-sleep inflection point b (the expected
// wait for g frames to be simultaneously idle grows linearly in g).
// With Colors == Frames the model collapses to per-frame OPT-Sleep(b);
// with Colors == 1 the whole cache must be idle, the conservative
// extreme. Untouched frames and leading gaps are gated as usual — invalid
// lines start powered off regardless of the gating granularity.

import (
	"fmt"
	"math"

	"leakbound/internal/interval"
	"leakbound/internal/power"
)

// DefaultColoringFrames is the study's L1 frame count (64KB / 64B lines),
// the default region base for the coloring model.
const DefaultColoringFrames = 1024

// Coloring is the cache-coloring policy: Colors regions over Frames
// frames, cold regions gated wholesale.
type Coloring struct {
	// Colors is the number of color regions (>= 1).
	Colors uint64
	// Frames is the number of cache frames partitioned (>= Colors);
	// DefaultColoringFrames matches the study's L1 caches.
	Frames uint64
}

// Name implements Policy.
func (p Coloring) Name() string { return fmt.Sprintf("Coloring(%d)", p.Colors) }

// regionTheta is the minimum interval length the region-gating model can
// harvest: the inflection point b scaled by the region size.
func (p Coloring) regionTheta(t power.Technology) float64 {
	_, b, err := t.InflectionPoints()
	if err != nil || p.Colors == 0 || p.Frames < p.Colors {
		return math.Inf(1) // degenerate: never gate
	}
	return b * (float64(p.Frames) / float64(p.Colors))
}

// IntervalEnergy implements Policy.
func (p Coloring) IntervalEnergy(t power.Technology, length uint64, flags interval.Flags) float64 {
	L := float64(length)
	switch {
	case flags&interval.Untouched == interval.Untouched:
		return untouchedSleepEnergy(t, L)
	case flags&interval.Leading != 0:
		return leadingSleepEnergy(t, L)
	}
	if L > p.regionTheta(t) {
		return sleepEnergyFor(t, L, flags)
	}
	return t.ActiveEnergy(L)
}
