package leakage

import (
	"math"
	"strings"
	"testing"

	"leakbound/internal/interval"
	"leakbound/internal/power"
)

func TestPeriodicDrowsyName(t *testing.T) {
	if (PeriodicDrowsy{Window: 2000}).Name() != "Drowsy(2000)" {
		t.Error("name wrong")
	}
}

func TestPeriodicDrowsyShortIntervalStaysActive(t *testing.T) {
	tech := power.Default()
	p := PeriodicDrowsy{Window: 2000}
	// Interval shorter than the expected wait: full active energy.
	e := p.IntervalEnergy(tech, 500, 0)
	if math.Abs(e-tech.ActiveEnergy(500)) > 1e-9 {
		t.Errorf("short interval energy %g != active %g", e, tech.ActiveEnergy(500))
	}
}

func TestPeriodicDrowsyLongIntervalSaves(t *testing.T) {
	tech := power.Default()
	p := PeriodicDrowsy{Window: 2000}
	L := uint64(100000)
	e := p.IntervalEnergy(tech, L, 0)
	active := tech.ActiveEnergy(float64(L))
	if e >= active {
		t.Errorf("long interval saved nothing: %g >= %g", e, active)
	}
	// But it can never beat OPT-Drowsy, which skips the active wait.
	opt := OPTDrowsy{}.IntervalEnergy(tech, L, 0)
	if e < opt {
		t.Errorf("periodic (%g) beat the drowsy oracle (%g)", e, opt)
	}
}

func TestPeriodicDrowsyEdgeGaps(t *testing.T) {
	tech := power.Default()
	p := PeriodicDrowsy{Window: 2000}
	lead := p.IntervalEnergy(tech, 100000, interval.Leading)
	trail := p.IntervalEnergy(tech, 100000, interval.Trailing)
	active := tech.ActiveEnergy(100000)
	if lead >= active || trail >= active {
		t.Error("edge gaps not drowsed")
	}
	if p.IntervalEnergy(tech, 100, interval.Leading) != tech.ActiveEnergy(100) {
		t.Error("short edge gap not active")
	}
}

func TestPeriodicDrowsyZeroWindow(t *testing.T) {
	tech := power.Default()
	p := PeriodicDrowsy{}
	if p.IntervalEnergy(tech, 1000, 0) != tech.ActiveEnergy(1000) {
		t.Error("zero window did not degrade to active")
	}
}

func TestPeriodicDrowsyWindowMonotone(t *testing.T) {
	// Longer windows drowse later: more energy on long idle intervals.
	tech := power.Default()
	short := PeriodicDrowsy{Window: 1000}.IntervalEnergy(tech, 50000, 0)
	long := PeriodicDrowsy{Window: 8000}.IntervalEnergy(tech, 50000, 0)
	if short >= long {
		t.Errorf("window monotonicity broken: W=1000 %g >= W=8000 %g", short, long)
	}
}

func extTestDist() *interval.Distribution {
	d := interval.NewDistribution(8, 2e6)
	d.Add(4, 0, 500)
	d.Add(800, 0, 300)
	d.Add(5000, 0, 100)
	d.Add(40000, 0, 20)
	d.Add(500000, 0, 4)
	d.Add(2e6, uint64HackUntouched(), 2)
	return d
}

// uint64HackUntouched keeps the literal table above tidy.
func uint64HackUntouched() interval.Flags { return interval.Untouched }

func TestEvaluateAdaptiveDecay(t *testing.T) {
	tech := power.Default()
	d := extTestDist()
	adaptive, err := EvaluateAdaptiveDecay(tech, d)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(adaptive.Policy, "Adaptive-Decay(theta=") {
		t.Errorf("policy label %q", adaptive.Policy)
	}
	// Adaptive decay must match or beat every fixed theta on the ladder...
	for _, theta := range DecayThetaLadder() {
		fixed, err := Evaluate(tech, d, SleepDecay{Theta: theta})
		if err != nil {
			t.Fatal(err)
		}
		if adaptive.Energy > fixed.Energy+1e-9 {
			t.Errorf("adaptive (%g) lost to fixed theta=%d (%g)", adaptive.Energy, theta, fixed.Energy)
		}
	}
	// ...but never the oracle.
	oracle, err := Evaluate(tech, d, OPTHybrid{})
	if err != nil {
		t.Fatal(err)
	}
	if adaptive.Savings > oracle.Savings {
		t.Errorf("adaptive decay (%g) beat the oracle (%g)", adaptive.Savings, oracle.Savings)
	}
	if _, err := EvaluateAdaptiveDecay(tech, nil); err == nil {
		t.Error("nil distribution accepted")
	}
}

func TestAMCTagOverhead(t *testing.T) {
	tech := power.Default()
	// On a long interval, AMC saves less than plain decay by exactly the
	// tag fraction of the gated savings.
	L := uint64(200000)
	plain := SleepDecay{Theta: 10000}.IntervalEnergy(tech, L, 0)
	amc := AMCSleep{Theta: 10000, TagFraction: 0.06}.IntervalEnergy(tech, L, 0)
	if amc <= plain {
		t.Errorf("AMC (%g) not above plain decay (%g)", amc, plain)
	}
	slept := tech.ActiveEnergy(float64(L)) - plain
	wantExtra := 0.06 * slept
	if math.Abs((amc-plain)-wantExtra) > 1e-6*wantExtra {
		t.Errorf("tag overhead = %g, want %g", amc-plain, wantExtra)
	}
	// Short interval: nothing gated, no tag penalty on top of active.
	short := AMCSleep{Theta: 10000, TagFraction: 0.06}.IntervalEnergy(tech, 500, 0)
	plainShort := SleepDecay{Theta: 10000}.IntervalEnergy(tech, 500, 0)
	if short != plainShort {
		t.Error("short interval penalized")
	}
	if (AMCSleep{Theta: 10000}).Name() != "AMC(10000)" {
		t.Error("name wrong")
	}
}

func TestEvaluateAMC(t *testing.T) {
	tech := power.Default()
	d := extTestDist()
	amc, err := EvaluateAMC(tech, d, 0.06)
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := EvaluateAdaptiveDecay(tech, d)
	if err != nil {
		t.Fatal(err)
	}
	// The tag-alive overhead must cost AMC something versus pure decay.
	if amc.Savings >= adaptive.Savings {
		t.Errorf("AMC (%g) not below adaptive decay (%g)", amc.Savings, adaptive.Savings)
	}
	if !strings.HasPrefix(amc.Policy, "AMC(theta=") {
		t.Errorf("policy label %q", amc.Policy)
	}
	if _, err := EvaluateAMC(tech, d, -0.1); err == nil {
		t.Error("negative tag fraction accepted")
	}
	if _, err := EvaluateAMC(tech, d, 1.0); err == nil {
		t.Error("tag fraction 1.0 accepted")
	}
	if _, err := EvaluateAMC(tech, nil, 0.06); err == nil {
		t.Error("nil distribution accepted")
	}
}

func TestExtendedSchemesOrdering(t *testing.T) {
	// The full pecking order on a mixed distribution:
	// OPT-Hybrid >= adaptive decay >= AMC, and OPT-Drowsy >= periodic drowsy.
	tech := power.Default()
	d := extTestDist()
	hybrid, _ := Evaluate(tech, d, OPTHybrid{})
	adaptive, _ := EvaluateAdaptiveDecay(tech, d)
	amc, _ := EvaluateAMC(tech, d, 0.06)
	optDrowsy, _ := Evaluate(tech, d, OPTDrowsy{})
	periodic, _ := Evaluate(tech, d, PeriodicDrowsy{Window: 2000})
	if !(hybrid.Savings >= adaptive.Savings && adaptive.Savings >= amc.Savings) {
		t.Errorf("sleep-family ordering broken: hybrid %.4f adaptive %.4f amc %.4f",
			hybrid.Savings, adaptive.Savings, amc.Savings)
	}
	if optDrowsy.Savings < periodic.Savings {
		t.Errorf("drowsy-family ordering broken: opt %.4f periodic %.4f",
			optDrowsy.Savings, periodic.Savings)
	}
}

func TestDirtyIntervalCostsWriteback(t *testing.T) {
	tech := power.Default()
	tech.WBEnergy = 200
	clean := OPTHybrid{}.IntervalEnergy(tech, 50000, 0)
	dirty := OPTHybrid{}.IntervalEnergy(tech, 50000, interval.Dirty)
	if math.Abs((dirty-clean)-200) > 1e-9 {
		t.Errorf("dirty sleep surcharge = %g, want 200", dirty-clean)
	}
	// Drowsy mode preserves state: no write-back surcharge.
	cleanD := OPTDrowsy{}.IntervalEnergy(tech, 500, 0)
	dirtyD := OPTDrowsy{}.IntervalEnergy(tech, 500, interval.Dirty)
	if cleanD != dirtyD {
		t.Error("drowsy charged for dirty data")
	}
	// Decay pays it too when it gates a dirty line.
	cleanDecay := SleepDecay{Theta: 10000}.IntervalEnergy(tech, 50000, 0)
	dirtyDecay := SleepDecay{Theta: 10000}.IntervalEnergy(tech, 50000, interval.Dirty)
	if math.Abs((dirtyDecay-cleanDecay)-200) > 1e-9 {
		t.Errorf("decay dirty surcharge = %g, want 200", dirtyDecay-cleanDecay)
	}
	// With the default (paper) nodes, WBEnergy is zero and dirty is free.
	def := power.Default()
	dDirty := OPTHybrid{}.IntervalEnergy(def, 50000, interval.Dirty)
	dClean := OPTHybrid{}.IntervalEnergy(def, 50000, 0)
	if dDirty != dClean {
		t.Error("default node charged for write-back")
	}
}

func TestDirtyWritebackCanFlipModeChoice(t *testing.T) {
	// With a large enough write-back cost, sleeping a dirty line just past
	// the inflection point becomes worse than drowsing it — the dirty
	// inflection point sits later than the clean one.
	tech := power.Default()
	tech.WBEnergy = 300
	L := 1200.0 // just past b=1057
	sleepDirty := tech.SleepEnergy(L) + tech.WBEnergy
	drowsy := tech.DrowsyEnergy(L)
	if sleepDirty <= drowsy {
		t.Skip("write-back too cheap to flip at this length")
	}
	// OPTHybrid as implemented still sleeps (it uses the clean inflection
	// point); this test documents the gap an ideal dirty-aware policy
	// could close.
	got := OPTHybrid{}.IntervalEnergy(tech, uint64(L), interval.Dirty)
	if got < drowsy {
		t.Errorf("hybrid on dirty interval (%g) unexpectedly below drowsy (%g)", got, drowsy)
	}
}

func TestDirtyAwareHybridReducesToHybrid(t *testing.T) {
	// With zero write-back energy the two policies are identical.
	tech := power.Default()
	for _, L := range []uint64{3, 50, 1057, 1058, 5000, 1e6} {
		for _, f := range []interval.Flags{0, interval.Dirty, interval.Leading, interval.Trailing} {
			a := OPTHybrid{}.IntervalEnergy(tech, L, f)
			b := DirtyAwareHybrid{}.IntervalEnergy(tech, L, f)
			if a != b {
				t.Errorf("L=%d f=%v: hybrid %g != dirty-aware %g with WB=0", L, f, a, b)
			}
		}
	}
}

func TestDirtyAwareHybridBeatsHybridWithWriteback(t *testing.T) {
	tech := power.Default()
	tech.WBEnergy = 300
	bDirty, err := DirtyInflection(tech)
	if err != nil {
		t.Fatal(err)
	}
	_, b, _ := tech.InflectionPoints()
	if bDirty <= b {
		t.Fatalf("dirty inflection %g not after clean %g", bDirty, b)
	}
	// A dirty interval between the two inflection points: the naive hybrid
	// sleeps (and pays WB); the dirty-aware policy drowses and wins.
	L := uint64((b + bDirty) / 2)
	naive := OPTHybrid{}.IntervalEnergy(tech, L, interval.Dirty)
	aware := DirtyAwareHybrid{}.IntervalEnergy(tech, L, interval.Dirty)
	if aware >= naive {
		t.Errorf("dirty-aware (%g) not below naive hybrid (%g) at L=%d", aware, naive, L)
	}
	if aware != tech.DrowsyEnergy(float64(L)) {
		t.Errorf("dirty-aware did not drowse: %g", aware)
	}
	// Past the dirty inflection point, both sleep.
	L2 := uint64(bDirty * 2)
	awareFar := DirtyAwareHybrid{}.IntervalEnergy(tech, L2, interval.Dirty)
	naiveFar := OPTHybrid{}.IntervalEnergy(tech, L2, interval.Dirty)
	if awareFar != naiveFar {
		t.Error("policies differ beyond the dirty inflection point")
	}
	// Clean intervals are untouched by the extension.
	awareClean := DirtyAwareHybrid{}.IntervalEnergy(tech, L, 0)
	naiveClean := OPTHybrid{}.IntervalEnergy(tech, L, 0)
	if awareClean != naiveClean {
		t.Error("clean interval handling changed")
	}
}

func TestDirtyAwareHybridDominatesOnDistributions(t *testing.T) {
	// Over any distribution, the dirty-aware policy never loses to the
	// naive hybrid once write-backs cost energy (per-interval dominance).
	tech := power.Default()
	tech.WBEnergy = 150
	d := interval.NewDistribution(8, 2e6)
	d.Add(500, interval.Dirty, 100)
	d.Add(1500, interval.Dirty, 50)
	d.Add(1500, 0, 50)
	d.Add(90000, interval.Dirty, 10)
	naive, err := Evaluate(tech, d, OPTHybrid{})
	if err != nil {
		t.Fatal(err)
	}
	aware, err := Evaluate(tech, d, DirtyAwareHybrid{})
	if err != nil {
		t.Fatal(err)
	}
	if aware.Savings < naive.Savings {
		t.Errorf("dirty-aware (%g) below naive (%g)", aware.Savings, naive.Savings)
	}
	if (DirtyAwareHybrid{}).Name() != "OPT-Hybrid+WB" {
		t.Error("name wrong")
	}
}

func TestDeadAwareHybridDominatesLengthOnly(t *testing.T) {
	tech := power.Default()
	// For every interval shape, dead knowledge can only help.
	for _, L := range []uint64{3, 10, 50, 200, 1057, 1058, 5000, 1e6} {
		for _, f := range []interval.Flags{
			interval.DeadEnd, interval.DeadEnd | interval.Dirty,
			interval.DeadEnd | interval.NLPrefetchable, 0, interval.Leading,
		} {
			aware := DeadAwareHybrid{}.IntervalEnergy(tech, L, f)
			naive := OPTHybrid{}.IntervalEnergy(tech, L, f)
			if aware > naive+1e-9 {
				t.Errorf("L=%d f=%v: dead-aware (%g) above length-only (%g)", L, f, aware, naive)
			}
		}
	}
	// A mid-length dead interval (drowsy regime for length-only) must be
	// slept CD-free by the dead-aware oracle.
	L := uint64(500)
	aware := DeadAwareHybrid{}.IntervalEnergy(tech, L, interval.DeadEnd)
	if aware != tech.SleepEnergyNoRefetch(float64(L)) {
		t.Errorf("mid-length dead interval not slept CD-free: %g", aware)
	}
	// Live intervals are untouched.
	liveAware := DeadAwareHybrid{}.IntervalEnergy(tech, 500, 0)
	liveNaive := OPTHybrid{}.IntervalEnergy(tech, 500, 0)
	if liveAware != liveNaive {
		t.Error("live interval handling changed")
	}
	if (DeadAwareHybrid{}).Name() != "OPT-Hybrid+dead" {
		t.Error("name wrong")
	}
}

// TestBruteForceOptimality checks DirtyAwareHybrid against an exhaustive
// per-interval minimum over all feasible (mode, flag-semantics) choices:
// the closed-form inflection rules must always pick the cheapest option.
func TestBruteForceOptimality(t *testing.T) {
	tech := power.Default()
	tech.WBEnergy = 180
	bruteForce := func(L uint64, flags interval.Flags) float64 {
		// Candidates: active, drowsy (if it fits), sleep (if it fits, with
		// WB surcharge on dirty lines).
		best := tech.ActiveEnergy(float64(L))
		if float64(L) > float64(tech.Durations.DrowsyOverhead()) {
			if e := tech.DrowsyEnergy(float64(L)); e < best {
				best = e
			}
		}
		if float64(L) >= float64(tech.Durations.SleepOverhead()) && flags.Interior() {
			e := tech.SleepEnergy(float64(L))
			if flags&interval.Dirty != 0 {
				e += tech.WBEnergy
			}
			if e < best {
				best = e
			}
		}
		return best
	}
	for L := uint64(1); L < 5000; L += 7 {
		for _, f := range []interval.Flags{0, interval.Dirty} {
			got := DirtyAwareHybrid{}.IntervalEnergy(tech, L, f)
			want := bruteForce(L, f)
			if got > want+1e-9 {
				t.Fatalf("L=%d f=%v: policy %g above brute-force optimum %g", L, f, got, want)
			}
		}
	}
	// Also spot-check far beyond the dirty inflection point.
	for _, L := range []uint64{50000, 1e6, 1e8} {
		for _, f := range []interval.Flags{0, interval.Dirty} {
			got := DirtyAwareHybrid{}.IntervalEnergy(tech, L, f)
			want := bruteForce(L, f)
			if got > want+1e-6*want {
				t.Fatalf("L=%d f=%v: policy %g above optimum %g", L, f, got, want)
			}
		}
	}
}
