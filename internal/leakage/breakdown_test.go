package leakage

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"leakbound/internal/interval"
	"leakbound/internal/power"
)

func TestHybridBreakdownMatchesEvaluate(t *testing.T) {
	// The decomposition's implied total energy must equal the policy's
	// energy exactly, for a mixed distribution including edges and dirt.
	tech := power.Default()
	tech.WBEnergy = 120
	d := interval.NewDistribution(8, 2e6)
	d.Add(4, 0, 500)
	d.Add(300, 0, 200)
	d.Add(2000, 0, 100)
	d.Add(2000, interval.Dirty, 40)
	d.Add(90000, interval.Leading, 8)
	d.Add(90000, interval.Trailing|interval.Dirty, 8)
	d.Add(2e6, interval.Untouched, 2)

	bd, err := HybridBreakdown(tech, d)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := Evaluate(tech, d, OPTHybrid{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(bd.Savings-ev.Savings) > 1e-9 {
		t.Errorf("breakdown savings %.9f != evaluate %.9f", bd.Savings, ev.Savings)
	}
	if math.Abs(bd.Total()-1) > 1e-9 {
		t.Errorf("components total %.9f, want 1", bd.Total())
	}
	// Every component present in this distribution must be non-zero.
	if bd.ActiveShare <= 0 || bd.DrowsyShare <= 0 || bd.TransitionShare <= 0 ||
		bd.InducedMissShare <= 0 || bd.SleepShare <= 0 {
		t.Errorf("missing components: %+v", bd)
	}
}

func TestHybridBreakdownProperty(t *testing.T) {
	tech := power.Default()
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		d := interval.NewDistribution(4, 0)
		for i := 0; i < int(nRaw)%40+1; i++ {
			length := uint64(rng.Intn(300000) + 1)
			flags := interval.Flags(rng.Intn(32))
			d.Add(length, flags, uint64(rng.Intn(20)+1))
		}
		bd, err := HybridBreakdown(tech, d)
		if err != nil {
			return false
		}
		ev, err := Evaluate(tech, d, OPTHybrid{})
		if err != nil {
			return false
		}
		return math.Abs(bd.Savings-ev.Savings) < 1e-9 && math.Abs(bd.Total()-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestHybridBreakdownErrors(t *testing.T) {
	tech := power.Default()
	if _, err := HybridBreakdown(tech, nil); err == nil {
		t.Error("nil distribution accepted")
	}
	if _, err := HybridBreakdown(tech, interval.NewDistribution(1, 1)); err == nil {
		t.Error("empty distribution accepted")
	}
	bad := tech
	bad.PActive = 0
	d := interval.NewDistribution(1, 10)
	d.Add(10, 0, 1)
	if _, err := HybridBreakdown(bad, d); err == nil {
		t.Error("invalid technology accepted")
	}
}
