package leakage

// The structured policy-spec surface of the registry API: a PolicySpec is
// a scheme name plus a typed parameter map, with a canonical string form
// ("scheme" or "scheme@key=value,key=value", keys sorted) and JSON
// marshalling, so the serving layer, the CLIs, and the test corpus all
// speak the same grammar. Parameter values are a small sum type — uint64,
// float64, or bool — rather than bare float64, because the legacy
// "scheme@theta" spellings promise exact uint64 round-trips (theta =
// 18446744073709551615 must parse to exactly MaxUint64, which a float64
// cannot represent).

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ParamKind is the declared type of one policy parameter.
type ParamKind uint8

const (
	// UintParam is a non-negative integer parameter (cycle counts,
	// region counts); parsed with the full uint64 range.
	UintParam ParamKind = iota
	// FloatParam is a real-valued parameter (fractions, accuracies).
	FloatParam
	// BoolParam is a flag parameter.
	BoolParam
)

// String implements fmt.Stringer.
func (k ParamKind) String() string {
	switch k {
	case UintParam:
		return "uint"
	case FloatParam:
		return "float"
	case BoolParam:
		return "bool"
	default:
		return fmt.Sprintf("ParamKind(%d)", uint8(k))
	}
}

// MarshalJSON renders the kind as its canonical name.
func (k ParamKind) MarshalJSON() ([]byte, error) {
	return strconv.AppendQuote(nil, k.String()), nil
}

// ParamSchema declares one parameter a scheme accepts: its name, kind,
// one-line doc, and the human-readable default (defaults are often
// technology-dependent — "the drowsy-sleep inflection point b" — so the
// schema documents them rather than fixing a numeric value).
type ParamSchema struct {
	Name    string    `json:"name"`
	Kind    ParamKind `json:"kind"`
	Doc     string    `json:"doc"`
	Default string    `json:"default,omitempty"`
}

// ParamValue is one typed parameter value: exactly one of uint64, float64,
// or bool, preserving uint64 values bit-exactly (see the package note on
// why float64 alone would not do).
type ParamValue struct {
	kind ParamKind
	u    uint64
	f    float64
	b    bool
}

// Uint builds a uint-kinded value.
func Uint(v uint64) ParamValue { return ParamValue{kind: UintParam, u: v} }

// Float builds a float-kinded value.
func Float(v float64) ParamValue { return ParamValue{kind: FloatParam, f: v} }

// Bool builds a bool-kinded value.
func Bool(v bool) ParamValue { return ParamValue{kind: BoolParam, b: v} }

// Kind reports the value's kind. The zero ParamValue is Uint(0).
func (v ParamValue) Kind() ParamKind { return v.kind }

// AsUint returns the value as a uint64: exact for UintParam, converted for
// a FloatParam that holds an exact non-negative integer. ok is false
// otherwise.
func (v ParamValue) AsUint() (u uint64, ok bool) {
	switch v.kind {
	case UintParam:
		return v.u, true
	case FloatParam:
		// Exact integral floats convert losslessly below 2^53; beyond it
		// the float cannot distinguish neighbors, so refuse.
		if v.f >= 0 && v.f == math.Trunc(v.f) && v.f < 1<<53 {
			return uint64(v.f), true
		}
	}
	return 0, false
}

// AsFloat returns the value as a float64: exact for FloatParam, converted
// for UintParam (lossy above 2^53, as any numeric sweep is). ok is false
// for bools.
func (v ParamValue) AsFloat() (f float64, ok bool) {
	switch v.kind {
	case UintParam:
		return float64(v.u), true
	case FloatParam:
		return v.f, true
	}
	return 0, false
}

// AsBool returns the value as a bool; ok is false for numeric kinds.
func (v ParamValue) AsBool() (b, ok bool) {
	if v.kind == BoolParam {
		return v.b, true
	}
	return false, false
}

// String renders the canonical text form: plain digits for uints, the
// shortest round-tripping decimal for floats, true/false for bools.
func (v ParamValue) String() string {
	switch v.kind {
	case UintParam:
		return strconv.FormatUint(v.u, 10)
	case FloatParam:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case BoolParam:
		return strconv.FormatBool(v.b)
	default:
		return fmt.Sprintf("ParamValue(%d)", uint8(v.kind))
	}
}

// MarshalJSON renders uints and floats as JSON numbers and bools as JSON
// booleans, matching the canonical text form.
func (v ParamValue) MarshalJSON() ([]byte, error) {
	switch v.kind {
	case UintParam:
		return strconv.AppendUint(nil, v.u, 10), nil
	case FloatParam:
		if math.IsNaN(v.f) || math.IsInf(v.f, 0) {
			return nil, fmt.Errorf("leakage: parameter value %v is not representable in JSON", v.f)
		}
		return strconv.AppendFloat(nil, v.f, 'g', -1, 64), nil
	case BoolParam:
		return strconv.AppendBool(nil, v.b), nil
	default:
		return nil, fmt.Errorf("leakage: invalid parameter kind %d", v.kind)
	}
}

// UnmarshalJSON accepts JSON numbers (integers become UintParam when they
// fit uint64 exactly, everything else FloatParam) and booleans. Strings
// are rejected: parameters are typed values, not spellings.
func (v *ParamValue) UnmarshalJSON(data []byte) error {
	s := strings.TrimSpace(string(data))
	switch s {
	case "true":
		*v = Bool(true)
		return nil
	case "false":
		*v = Bool(false)
		return nil
	}
	if u, err := strconv.ParseUint(s, 10, 64); err == nil {
		*v = Uint(u)
		return nil
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil || math.IsNaN(f) || math.IsInf(f, 0) {
		return fmt.Errorf("%w: %s is not a number or boolean", ErrBadParam, s)
	}
	*v = Float(f)
	return nil
}

// parseParamValue parses the text form of one parameter under its declared
// kind, with the same strconv semantics the legacy "@theta" suffix used
// (base-10 uint64: "0x10" and "-1" fail, MaxUint64 parses exactly).
func parseParamValue(kind ParamKind, text string) (ParamValue, error) {
	switch kind {
	case UintParam:
		u, err := strconv.ParseUint(text, 10, 64)
		if err != nil {
			return ParamValue{}, fmt.Errorf("parsing %q as uint: %w", text, err)
		}
		return Uint(u), nil
	case FloatParam:
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return ParamValue{}, fmt.Errorf("parsing %q as float: %w", text, err)
		}
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return ParamValue{}, fmt.Errorf("parsing %q as float: not finite", text)
		}
		return Float(f), nil
	case BoolParam:
		b, err := strconv.ParseBool(text)
		if err != nil {
			return ParamValue{}, fmt.Errorf("parsing %q as bool: %w", text, err)
		}
		return Bool(b), nil
	default:
		return ParamValue{}, fmt.Errorf("invalid parameter kind %d", kind)
	}
}

// Params is a policy's typed parameter map, keyed by declared parameter
// name.
type Params map[string]ParamValue

// Uint returns the named parameter as a uint64 (see ParamValue.AsUint);
// ok is false when absent or not convertible.
func (p Params) Uint(name string) (u uint64, ok bool) {
	v, present := p[name]
	if !present {
		return 0, false
	}
	return v.AsUint()
}

// Float returns the named parameter as a float64; ok is false when absent
// or boolean.
func (p Params) Float(name string) (f float64, ok bool) {
	v, present := p[name]
	if !present {
		return 0, false
	}
	return v.AsFloat()
}

// Bool returns the named parameter as a bool; ok is false when absent or
// numeric.
func (p Params) Bool(name string) (b, ok bool) {
	v, present := p[name]
	if !present {
		return false, false
	}
	return v.AsBool()
}

// sortedKeys returns the parameter names in ascending order, for the
// deterministic canonical form.
func (p Params) sortedKeys() []string {
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// PolicySpec is a structured policy reference: a scheme name plus typed
// parameters. Build it by hand, parse it from the canonical grammar with
// Registry.ParseSpec, or unmarshal it from JSON; Registry.Build turns it
// into a Policy.
type PolicySpec struct {
	Scheme string `json:"scheme"`
	Params Params `json:"params,omitempty"`
}

// String renders the canonical text form: "scheme" when there are no
// parameters, otherwise "scheme@key=value,key=value" with keys sorted.
// ParseSpec of the result yields an equal spec.
func (s PolicySpec) String() string {
	if len(s.Params) == 0 {
		return s.Scheme
	}
	parts := make([]string, 0, len(s.Params))
	for _, k := range s.Params.sortedKeys() {
		parts = append(parts, k+"="+s.Params[k].String())
	}
	return s.Scheme + "@" + strings.Join(parts, ",")
}

// Equal reports whether two specs name the same scheme with the same
// parameter values.
func (s PolicySpec) Equal(o PolicySpec) bool {
	if s.Scheme != o.Scheme || len(s.Params) != len(o.Params) {
		return false
	}
	for k, v := range s.Params {
		if ov, ok := o.Params[k]; !ok || ov != v {
			return false
		}
	}
	return true
}
