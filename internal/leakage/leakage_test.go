package leakage

import (
	"math"
	"testing"
	"testing/quick"

	"leakbound/internal/interval"
	"leakbound/internal/power"
)

func tech70() power.Technology { return power.Default() }

func TestModeString(t *testing.T) {
	if Active.String() != "active" || Drowsy.String() != "drowsy" || Sleep.String() != "sleep" {
		t.Error("mode strings wrong")
	}
	if Mode(9).String() != "Mode(9)" {
		t.Error("unknown mode string wrong")
	}
	if !Active.Valid() || Mode(3).Valid() {
		t.Error("Valid wrong")
	}
	if len(Modes()) != 3 {
		t.Error("Modes() wrong")
	}
}

func TestEnergyWithModeFeasibility(t *testing.T) {
	tech := tech70()
	if _, err := EnergyWithMode(tech, 5, Drowsy); err == nil {
		t.Error("drowsy accepted below overhead 6")
	}
	if _, err := EnergyWithMode(tech, 36, Sleep); err == nil {
		t.Error("sleep accepted below overhead 37")
	}
	if _, err := EnergyWithMode(tech, 5, Active); err != nil {
		t.Error("active rejected")
	}
	if _, err := EnergyWithMode(tech, 100, Mode(7)); err == nil {
		t.Error("bad mode accepted")
	}
	e, err := EnergyWithMode(tech, 100, Drowsy)
	if err != nil || math.Abs(e-tech.DrowsyEnergy(100)) > 1e-12 {
		t.Errorf("drowsy energy mismatch: %g, %v", e, err)
	}
}

func TestOptimalModeRegimes(t *testing.T) {
	tech := tech70()
	cases := []struct {
		length float64
		want   Mode
	}{
		{1, Active},
		{6, Active},
		{7, Drowsy},
		{1057, Drowsy},
		{1058, Sleep},
		{1e6, Sleep},
	}
	for _, c := range cases {
		got, err := OptimalMode(tech, c.length)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("OptimalMode(%g) = %v, want %v", c.length, got, c.want)
		}
	}
}

// distOf builds a distribution from explicit (length, flags, count) rows.
func distOf(frames uint32, cycles uint64, rows ...[3]uint64) *interval.Distribution {
	d := interval.NewDistribution(frames, cycles)
	for _, r := range rows {
		d.Add(r[0], interval.Flags(r[1]), r[2])
	}
	return d
}

func TestEvaluateBaseline(t *testing.T) {
	tech := tech70()
	d := distOf(1, 100, [3]uint64{100, uint64(interval.Untouched), 1})
	ev, err := Evaluate(tech, d, AlwaysActive{})
	if err != nil {
		t.Fatal(err)
	}
	if ev.Savings != 0 {
		t.Errorf("always-active savings = %g, want 0", ev.Savings)
	}
	if ev.Energy != ev.Baseline {
		t.Errorf("energy %g != baseline %g", ev.Energy, ev.Baseline)
	}
}

func TestEvaluateErrors(t *testing.T) {
	tech := tech70()
	if _, err := Evaluate(tech, nil, AlwaysActive{}); err == nil {
		t.Error("nil distribution accepted")
	}
	if _, err := Evaluate(tech, distOf(1, 1), AlwaysActive{}); err == nil {
		t.Error("empty distribution accepted")
	}
	if _, err := Evaluate(tech, distOf(1, 10, [3]uint64{10, 0, 1}), nil); err == nil {
		t.Error("nil policy accepted")
	}
	bad := tech
	bad.PActive = 0
	if _, err := Evaluate(bad, distOf(1, 10, [3]uint64{10, 0, 1}), AlwaysActive{}); err == nil {
		t.Error("invalid technology accepted")
	}
}

func TestOPTDrowsySavesTwoThirds(t *testing.T) {
	// One giant interior interval: OPT-Drowsy's savings approach
	// 1 - PDrowsy/PActive = 2/3.
	tech := tech70()
	d := distOf(1, 1e6, [3]uint64{1e6, 0, 1})
	ev, err := Evaluate(tech, d, OPTDrowsy{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ev.Savings-2.0/3) > 0.01 {
		t.Errorf("OPT-Drowsy savings = %g, want ~0.667", ev.Savings)
	}
}

func TestOPTSleepApproachesFullSavings(t *testing.T) {
	tech := tech70()
	d := distOf(1, 1e7, [3]uint64{1e7, 0, 1})
	ev, err := Evaluate(tech, d, OPTSleep{Theta: 1057})
	if err != nil {
		t.Fatal(err)
	}
	if ev.Savings < 0.98 {
		t.Errorf("OPT-Sleep on one huge interval saved only %g", ev.Savings)
	}
	// Short intervals stay active: zero savings.
	d = distOf(1, 600, [3]uint64{100, 0, 6})
	ev, err = Evaluate(tech, d, OPTSleep{Theta: 1057})
	if err != nil {
		t.Fatal(err)
	}
	if ev.Savings != 0 {
		t.Errorf("OPT-Sleep slept sub-theta intervals: savings %g", ev.Savings)
	}
}

func TestHybridDominatesComponents(t *testing.T) {
	// A mixed distribution: hybrid must beat both pure policies (it can
	// always mimic either).
	tech := tech70()
	d := distOf(4, 2e6,
		[3]uint64{4, 0, 1000},   // active regime
		[3]uint64{500, 0, 2000}, // drowsy regime
		[3]uint64{50000, 0, 30}, // sleep regime
		[3]uint64{2e6, uint64(interval.Untouched), 1},
	)
	hybrid, err := Evaluate(tech, d, OPTHybrid{})
	if err != nil {
		t.Fatal(err)
	}
	sleepOnly, err := Evaluate(tech, d, OPTSleep{Theta: 1057})
	if err != nil {
		t.Fatal(err)
	}
	drowsyOnly, err := Evaluate(tech, d, OPTDrowsy{})
	if err != nil {
		t.Fatal(err)
	}
	if hybrid.Savings < sleepOnly.Savings || hybrid.Savings < drowsyOnly.Savings {
		t.Errorf("hybrid %.4f below components (sleep %.4f, drowsy %.4f)",
			hybrid.Savings, sleepOnly.Savings, drowsyOnly.Savings)
	}
}

func TestDecayWastesVersusOracle(t *testing.T) {
	// For an interval just above theta, the decay scheme burns theta active
	// cycles that OPT-Sleep(theta) does not.
	tech := tech70()
	d := distOf(1, 4e4, [3]uint64{30000, 0, 1})
	decay, err := Evaluate(tech, d, SleepDecay{Theta: 10000})
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := Evaluate(tech, d, OPTSleep{Theta: 10000})
	if err != nil {
		t.Fatal(err)
	}
	if decay.Savings >= oracle.Savings {
		t.Errorf("decay (%.4f) not worse than oracle (%.4f)", decay.Savings, oracle.Savings)
	}
	if decay.Savings <= 0 {
		t.Errorf("decay saved nothing on a 30K interval: %.4f", decay.Savings)
	}
}

func TestDecayShortIntervalPaysCounter(t *testing.T) {
	// Intervals below theta stay active AND pay the counter: slightly
	// negative savings.
	tech := tech70()
	d := distOf(1, 1e4, [3]uint64{5000, 0, 2})
	decay, err := Evaluate(tech, d, SleepDecay{Theta: 10000})
	if err != nil {
		t.Fatal(err)
	}
	if decay.Savings >= 0 {
		t.Errorf("decay on short intervals should cost counter energy, got savings %.5f", decay.Savings)
	}
}

func TestEdgeGapHandling(t *testing.T) {
	tech := tech70()
	// Leading gap: slept with no CD. Compare to an interior interval of the
	// same length, which must cost more (it pays CD and the entry).
	lead := OPTHybrid{}.IntervalEnergy(tech, 100000, interval.Leading)
	inner := OPTHybrid{}.IntervalEnergy(tech, 100000, 0)
	if lead >= inner {
		t.Errorf("leading gap (%g) not cheaper than interior (%g)", lead, inner)
	}
	trail := OPTHybrid{}.IntervalEnergy(tech, 100000, interval.Trailing)
	if trail >= inner {
		t.Errorf("trailing gap (%g) not cheaper than interior (%g)", trail, inner)
	}
	unt := OPTHybrid{}.IntervalEnergy(tech, 100000, interval.Untouched)
	if unt >= lead || unt >= trail {
		t.Errorf("untouched (%g) not cheapest (lead %g, trail %g)", unt, lead, trail)
	}
}

func TestPrefetchPolicies(t *testing.T) {
	tech := tech70()
	// A long prefetchable interval is slept by both A and B.
	a := PrefetchA().IntervalEnergy(tech, 50000, interval.NLPrefetchable)
	b := PrefetchB().IntervalEnergy(tech, 50000, interval.NLPrefetchable)
	if a != b {
		t.Errorf("prefetchable intervals differ between A (%g) and B (%g)", a, b)
	}
	if a >= tech.ActiveEnergy(50000)*0.2 {
		t.Errorf("prefetchable long interval not slept: %g", a)
	}
	// A long non-prefetchable interval: A stays active, B drowses.
	aN := PrefetchA().IntervalEnergy(tech, 50000, 0)
	bN := PrefetchB().IntervalEnergy(tech, 50000, 0)
	if aN != tech.ActiveEnergy(50000) {
		t.Errorf("Prefetch-A non-prefetchable not active: %g", aN)
	}
	if bN >= aN {
		t.Errorf("Prefetch-B (%g) not below Prefetch-A (%g) on non-prefetchable", bN, aN)
	}
	if PrefetchA().Name() != "Prefetch-A" || PrefetchB().Name() != "Prefetch-B" {
		t.Error("prefetch policy names wrong")
	}
}

func TestPolicyNames(t *testing.T) {
	if (OPTSleep{Theta: 10000}).Name() != "OPT-Sleep(10000)" {
		t.Error("OPTSleep name wrong")
	}
	if (SleepDecay{Theta: 10000}).Name() != "Sleep(10000)" {
		t.Error("SleepDecay name wrong")
	}
	if (OPTHybrid{}).Name() != "OPT-Hybrid" {
		t.Error("OPTHybrid name wrong")
	}
	if (OPTHybrid{SleepTheta: 2000}).Name() != "OPT-Hybrid(2000)" {
		t.Error("OPTHybrid theta name wrong")
	}
	if (OPTDrowsy{}).Name() != "OPT-Drowsy" || (AlwaysActive{}).Name() != "Active" {
		t.Error("policy names wrong")
	}
}

func TestEvaluateAllAndAverage(t *testing.T) {
	tech := tech70()
	d := distOf(1, 1e5, [3]uint64{1e5, 0, 1})
	evs, err := EvaluateAll(tech, d, []Policy{OPTDrowsy{}, OPTHybrid{}})
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 {
		t.Fatalf("got %d evaluations", len(evs))
	}
	avg, err := AverageSavings(evs)
	if err != nil {
		t.Fatal(err)
	}
	if avg < evs[0].Savings || avg > evs[1].Savings {
		t.Errorf("average %g outside [%g, %g]", avg, evs[0].Savings, evs[1].Savings)
	}
	if _, err := AverageSavings(nil); err == nil {
		t.Error("empty average accepted")
	}
}

func TestSavingsWithinUnitInterval(t *testing.T) {
	// Property: for random distributions, every oracle policy's savings lie
	// in [0, 1); the decay policy may dip slightly negative (counters) but
	// never below -CounterLeak/PActive.
	tech := tech70()
	f := func(lens []uint16, counts []uint8) bool {
		d := interval.NewDistribution(8, 0)
		n := len(lens)
		if len(counts) < n {
			n = len(counts)
		}
		var mass uint64
		for i := 0; i < n; i++ {
			l := uint64(lens[i]) + 1
			c := uint64(counts[i])%16 + 1
			d.Add(l, 0, c)
			mass += l * c
		}
		if mass == 0 {
			return true
		}
		for _, p := range []Policy{OPTDrowsy{}, OPTSleep{Theta: 1057}, OPTHybrid{}, PrefetchA(), PrefetchB()} {
			ev, err := Evaluate(tech, d, p)
			if err != nil {
				return false
			}
			if ev.Savings < -1e-9 || ev.Savings >= 1 {
				return false
			}
		}
		// The decay scheme can genuinely waste energy (counter leakage,
		// and an induced miss that barely amortizes): allow a bounded dip
		// below zero but never a large one.
		ev, err := Evaluate(tech, d, SleepDecay{Theta: 10000})
		if err != nil {
			return false
		}
		return ev.Savings >= -0.5 && ev.Savings < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestEvaluationString(t *testing.T) {
	ev := Evaluation{Policy: "X", Savings: 0.964}
	if ev.String() != "X: 96.4% leakage savings" {
		t.Errorf("String = %q", ev.String())
	}
}
