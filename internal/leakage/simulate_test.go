package leakage

import (
	"math"
	"testing"

	"leakbound/internal/interval"
	"leakbound/internal/power"
	"leakbound/internal/sim/cache"
	"leakbound/internal/sim/cpu"
	"leakbound/internal/sim/trace"
	"leakbound/internal/workload"
)

func simEvent(cycle uint64, frame uint32) trace.Event {
	return trace.Event{Cycle: cycle, Frame: frame, Cache: trace.L1D, Kind: trace.Load}
}

func TestSimulatorValidation(t *testing.T) {
	tech := power.Default()
	if _, err := NewSimulator(tech, nil, 4); err == nil {
		t.Error("nil policy accepted")
	}
	if _, err := NewSimulator(tech, NewDecaySimulation(100), 0); err == nil {
		t.Error("zero frames accepted")
	}
	bad := tech
	bad.PActive = 0
	if _, err := NewSimulator(bad, NewDecaySimulation(100), 4); err == nil {
		t.Error("invalid technology accepted")
	}
	s, err := NewSimulator(tech, NewDecaySimulation(100), 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Access(simEvent(1, 99)); err == nil {
		t.Error("out-of-range frame accepted")
	}
	s.Access(simEvent(10, 0))
	if err := s.Access(simEvent(5, 0)); err == nil {
		t.Error("time travel accepted")
	}
	if _, err := s.Finish(5); err == nil {
		t.Error("early horizon accepted")
	}
	if _, err := s.Finish(20); err != nil {
		t.Fatal(err)
	}
	if err := s.Access(simEvent(30, 0)); err == nil {
		t.Error("Access after Finish accepted")
	}
	if _, err := s.Finish(30); err == nil {
		t.Error("double Finish accepted")
	}
}

func TestSimulatorUntouchedFramesGated(t *testing.T) {
	tech := power.Default()
	s, _ := NewSimulator(tech, NewDecaySimulation(1000), 10)
	// No events at all: every frame sleeps for the whole run.
	ev, err := s.Finish(100000)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 - tech.PSleep/tech.PActive
	if math.Abs(ev.Savings-want) > 1e-9 {
		t.Errorf("untouched savings = %g, want %g", ev.Savings, want)
	}
}

func TestSimulatorDecayTimeline(t *testing.T) {
	// One frame, two accesses 100K apart, theta=10K: the frame burns 10K
	// active after each access, then sleeps; the second access pays the
	// induced miss.
	tech := power.Default()
	s, _ := NewSimulator(tech, NewDecaySimulation(10000), 1)
	s.Access(simEvent(0, 0))
	s.Access(simEvent(100000, 0))
	ev, err := s.Finish(100001)
	if err != nil {
		t.Fatal(err)
	}
	tr := tech.Transitions()
	// The decay boundary is inclusive: the frame stays active through
	// cycle lastAccess+theta and sleeps from the next cycle, so the
	// active window is theta+1 cycles.
	want := 10001*tech.PActive + // active window after access 0
		89999*tech.PSleep + // asleep until access 1
		tr.EAS + tr.ESA + tech.CD + // turn-off, wake, re-fetch
		1*tech.PActive // the final cycle after access 1 (active window)
	if math.Abs(ev.Energy-want) > 1e-6*want {
		t.Errorf("energy = %g, want %g", ev.Energy, want)
	}
}

func TestSimulatorMatchesIntervalModelOnTrace(t *testing.T) {
	// The headline cross-check: simulate cache decay directly on a real
	// benchmark trace and compare with the interval-based analytical
	// evaluation. The two make different micro-approximations (the
	// analytical model folds wake/turn-off segments into per-interval
	// formulas; counter leakage is analytical-only), so agreement within
	// ~2 points is the assertion.
	tech := power.Default()
	tech.CounterLeak = 0 // the simulator does not model decay counters

	// Build the event stream and interval distribution from one run.
	runCheck := func(theta uint64) {
		sim, err := NewSimulator(tech, NewDecaySimulation(theta), 1024)
		if err != nil {
			t.Fatal(err)
		}
		col := newTestCollector(t)
		events, total := testTraceEvents(t)
		for _, e := range events {
			if err := sim.Access(e); err != nil {
				t.Fatal(err)
			}
			if err := col.Add(e); err != nil {
				t.Fatal(err)
			}
		}
		simEv, err := sim.Finish(total)
		if err != nil {
			t.Fatal(err)
		}
		dist, err := col.Finish(total)
		if err != nil {
			t.Fatal(err)
		}
		anaEv, err := Evaluate(tech, dist, SleepDecay{Theta: theta})
		if err != nil {
			t.Fatal(err)
		}
		if diff := math.Abs(simEv.Savings - anaEv.Savings); diff > 0.02 {
			t.Errorf("theta=%d: simulated %.4f vs analytical %.4f (diff %.4f)",
				theta, simEv.Savings, anaEv.Savings, diff)
		}
	}
	runCheck(10000)
	runCheck(2000)
}

func TestSimulatorPeriodicDrowsyAgainstExpectation(t *testing.T) {
	// The analytical PeriodicDrowsy uses an expected W/2 wait; the
	// simulator uses exact boundaries. On a long idle frame they must be
	// within the wait-quantization error.
	tech := power.Default()
	s, _ := NewSimulator(tech, NewPeriodicDrowsySimulation(2000), 1)
	s.Access(simEvent(0, 0))
	ev, err := s.Finish(1000000)
	if err != nil {
		t.Fatal(err)
	}
	// Exact: 2000 active + rest drowsy (+ one EAD transition).
	tr := tech.Transitions()
	want := 2000*tech.PActive + 998000*tech.PDrowsy + tr.EAD
	if math.Abs(ev.Energy-want) > 1e-6*want {
		t.Errorf("periodic drowsy energy = %g, want %g", ev.Energy, want)
	}
	if ev.Policy != "Drowsy(2000) (simulated)" {
		t.Errorf("policy label %q", ev.Policy)
	}
}

// Test helpers: one shared benchmark trace for the cross-validation tests.

var (
	sharedEvents []trace.Event
	sharedTotal  uint64
)

func testTraceEvents(t *testing.T) ([]trace.Event, uint64) {
	t.Helper()
	if sharedEvents != nil {
		return sharedEvents, sharedTotal
	}
	w := workload.MustNew("gzip", 0.05)
	hier, err := cache.NewHierarchy(cache.AlphaLike())
	if err != nil {
		t.Fatal(err)
	}
	res, err := cpu.Run(w, hier, cpu.DefaultConfig(), func(e trace.Event) {
		if e.Cache == trace.L1D {
			sharedEvents = append(sharedEvents, e)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	sharedTotal = res.Cycles
	return sharedEvents, sharedTotal
}

func newTestCollector(t *testing.T) *interval.Collector {
	t.Helper()
	col, err := interval.NewCollector(trace.L1D, 1024, nil)
	if err != nil {
		t.Fatal(err)
	}
	return col
}
