package leakage

// Extended baseline policies from the related work the paper surveys
// (Section 2). These are not part of the paper's Figure 8, but they are
// the schemes the oracle bounds are meant to be compared against, so the
// library implements them as additional baselines:
//
//   - PeriodicDrowsy — Flautner/Kim et al.'s drowsy cache: every line is
//     dropped to the retention voltage on a fixed period, regardless of
//     access pattern.
//   - EvaluateAdaptiveDecay — Velusamy et al.'s feedback-controlled decay:
//     the decay interval is tuned at run time; its steady state is modelled
//     as the best fixed interval from a ladder.
//   - EvaluateAMC — Zhou et al.'s adaptive mode control: like decay, but
//     the tags stay powered so the controller can observe would-be hits;
//     the data array sleeps, the tag array keeps leaking.

import (
	"fmt"

	"leakbound/internal/interval"
	"leakbound/internal/power"
)

// PeriodicDrowsy models the drowsy cache of Kim, Flautner, Blaauw and
// Mudge: all cache lines are placed into drowsy mode every Window cycles.
// A line that is accessed wakes up (1-2 cycle stall, energy equal to the
// wake transition) and stays awake until the next period boundary.
//
// Over one access interval of length L, the line stays active until the
// first period boundary — W/2 cycles in expectation under a uniformly
// distributed phase — and is drowsy for the remainder. The policy is
// evaluated in this expected-value form.
type PeriodicDrowsy struct {
	// Window is the drowse period in cycles (the literature uses 2000-4000).
	Window uint64
}

// Name implements Policy.
func (p PeriodicDrowsy) Name() string { return fmt.Sprintf("Drowsy(%d)", p.Window) }

// IntervalEnergy implements Policy.
func (p PeriodicDrowsy) IntervalEnergy(t power.Technology, length uint64, flags interval.Flags) float64 {
	L := float64(length)
	w := float64(p.Window)
	if w <= 0 {
		return t.ActiveEnergy(L)
	}
	if flags&interval.Leading != 0 || flags&interval.Trailing != 0 {
		// Idle frames end up drowsy within one period and stay there.
		wait := w / 2
		if L <= wait {
			return t.ActiveEnergy(L)
		}
		return wait*t.PActive + (L-wait)*t.PDrowsy + float64(t.Durations.D1)*t.PActive
	}
	wait := w / 2 // expected cycles until the next drowse boundary
	oh := float64(t.Durations.DrowsyOverhead())
	if L <= wait+oh {
		return t.ActiveEnergy(L)
	}
	// Active until the boundary, then a standard drowsy residency with
	// wake on the closing access.
	return wait*t.PActive + t.DrowsyEnergy(L-wait)
}

// DecayThetaLadder is the set of decay intervals an adaptive controller
// explores (Velusamy et al. sweep a comparable range).
func DecayThetaLadder() []uint64 {
	return []uint64{1000, 2000, 4000, 8000, 16000, 32000, 64000, 128000}
}

// EvaluateAdaptiveDecay models feedback-controlled cache decay at its
// steady state: the controller converges to the decay interval that
// minimizes energy for the observed workload, so the scheme's energy is
// the minimum of SleepDecay over the ladder. The returned evaluation is
// labelled "Adaptive-Decay" and records which theta won via the Policy
// field ("Adaptive-Decay(theta=N)").
func EvaluateAdaptiveDecay(t power.Technology, d *interval.Distribution) (Evaluation, error) {
	if d == nil {
		return Evaluation{}, ErrNilDistribution
	}
	var best Evaluation
	var bestTheta uint64
	first := true
	for _, theta := range DecayThetaLadder() {
		ev, err := Evaluate(t, d, SleepDecay{Theta: theta})
		if err != nil {
			return Evaluation{}, err
		}
		if first || ev.Energy < best.Energy {
			best = ev
			bestTheta = theta
			first = false
		}
	}
	best.Policy = fmt.Sprintf("Adaptive-Decay(theta=%d)", bestTheta)
	return best, nil
}

// AMCSleep models adaptive mode control (Zhou, Toburen, Rotenberg, Conte):
// the data array of an idle line is gated after Theta cycles, but the tag
// array stays powered so the controller can count would-be hits. The tag
// fraction of a line's leakage therefore never goes away.
type AMCSleep struct {
	// Theta is the turn-off interval in cycles.
	Theta uint64
	// TagFraction is the share of per-line leakage in the tag array
	// (address tag + state bits vs. 64B of data); ~0.06 for a 64B line
	// with a ~40-bit tag.
	TagFraction float64
}

// Name implements Policy.
func (p AMCSleep) Name() string { return fmt.Sprintf("AMC(%d)", p.Theta) }

// IntervalEnergy implements Policy.
func (p AMCSleep) IntervalEnergy(t power.Technology, length uint64, flags interval.Flags) float64 {
	base := SleepDecay{Theta: p.Theta}.IntervalEnergy(t, length, flags)
	// Whatever the decay scheme did, the tag keeps leaking at active power
	// for the whole interval; remove the tag's share of any sleep savings.
	tagAlwaysOn := p.TagFraction * t.PActive * float64(length)
	slept := t.ActiveEnergy(float64(length)) - base
	if slept <= 0 {
		return base // nothing was gated; tags were already counted
	}
	tagGivenBack := p.TagFraction * slept
	_ = tagAlwaysOn
	return base + tagGivenBack
}

// EvaluateAMC models AMC's adaptive turn-off interval the same way as
// EvaluateAdaptiveDecay: steady state = best theta on the ladder, with the
// tag array always powered.
func EvaluateAMC(t power.Technology, d *interval.Distribution, tagFraction float64) (Evaluation, error) {
	if d == nil {
		return Evaluation{}, ErrNilDistribution
	}
	if tagFraction < 0 || tagFraction >= 1 {
		return Evaluation{}, fmt.Errorf("leakage: tag fraction %g outside [0,1)", tagFraction)
	}
	var best Evaluation
	var bestTheta uint64
	first := true
	for _, theta := range DecayThetaLadder() {
		ev, err := Evaluate(t, d, AMCSleep{Theta: theta, TagFraction: tagFraction})
		if err != nil {
			return Evaluation{}, err
		}
		if first || ev.Energy < best.Energy {
			best = ev
			bestTheta = theta
			first = false
		}
	}
	best.Policy = fmt.Sprintf("AMC(theta=%d)", bestTheta)
	return best, nil
}

// DirtyAwareHybrid extends OPT-Hybrid with write-back awareness: when
// gating a dirty line costs WBEnergy, the drowsy-sleep crossover for dirty
// intervals moves later — E_sleep(L) + WB = E_drowsy(L) solves at
// b_dirty = b + WB/(PDrowsy - PSleep) — and the policy uses the per-flag
// inflection point. With WBEnergy = 0 it reduces exactly to OPTHybrid.
// This is the optimal policy for the write-back-aware cost model, by the
// same lower-envelope argument as the appendix theorem.
type DirtyAwareHybrid struct{}

// Name implements Policy.
func (DirtyAwareHybrid) Name() string { return "OPT-Hybrid+WB" }

// DirtyInflection returns the drowsy-sleep crossover for dirty intervals.
func DirtyInflection(t power.Technology) (float64, error) {
	_, b, err := t.InflectionPoints()
	if err != nil {
		return 0, err
	}
	return b + t.WBEnergy/(t.PDrowsy-t.PSleep), nil
}

// IntervalEnergy implements Policy.
func (DirtyAwareHybrid) IntervalEnergy(t power.Technology, length uint64, flags interval.Flags) float64 {
	a, b, err := t.InflectionPoints()
	if err != nil {
		return t.ActiveEnergy(float64(length))
	}
	theta := b
	if flags&interval.Dirty != 0 {
		theta = b + t.WBEnergy/(t.PDrowsy-t.PSleep)
	}
	L := float64(length)
	switch {
	case L > theta:
		return sleepEnergyFor(t, L, flags)
	case L > a:
		return drowsyEnergyFor(t, L)
	default:
		return t.ActiveEnergy(L)
	}
}

// DeadAwareHybrid is the oracle with live/dead knowledge added (the
// refinement the paper's Section 3.1 considers and dismisses): a
// dead-ending interval's block is never referenced again, so gating it
// causes no induced miss — the sleep energy drops the CD term and the
// drowsy-sleep crossover for dead intervals collapses to just past the
// transition overhead. Live intervals are handled exactly as OPT-Hybrid.
type DeadAwareHybrid struct{}

// Name implements Policy.
func (DeadAwareHybrid) Name() string { return "OPT-Hybrid+dead" }

// IntervalEnergy implements Policy.
func (DeadAwareHybrid) IntervalEnergy(t power.Technology, length uint64, flags interval.Flags) float64 {
	if flags&interval.DeadEnd == 0 || !flags.Interior() {
		return OPTHybrid{}.IntervalEnergy(t, length, flags)
	}
	a, _, err := t.InflectionPoints()
	if err != nil {
		return t.ActiveEnergy(float64(length))
	}
	L := float64(length)
	// CD-free sleep: E = overhead*Pa + rest*Ps (+WB if dirty). It beats
	// drowsy as soon as the crossover without CD is passed.
	d := t.Durations
	oh := float64(d.SleepOverhead())
	if L >= oh {
		sleepE := t.SleepEnergyNoRefetch(L)
		if flags&interval.Dirty != 0 {
			sleepE += t.WBEnergy
		}
		drowsyE := drowsyEnergyFor(t, L)
		if sleepE < drowsyE {
			return sleepE
		}
	}
	switch {
	case L > a:
		return drowsyEnergyFor(t, L)
	default:
		return t.ActiveEnergy(L)
	}
}
