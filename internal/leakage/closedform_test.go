package leakage

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"leakbound/internal/interval"
	"leakbound/internal/power"
)

// testPolicies returns one representative per builtin policy type,
// covering every threshold shape: defaults, overrides below/above the
// inflection points, degenerate windows.
func testPolicies(t power.Technology) []Policy {
	_, b, err := t.InflectionPoints()
	if err != nil {
		b = 5000
	}
	return []Policy{
		AlwaysActive{},
		OPTDrowsy{},
		OPTSleep{Theta: 0},
		OPTSleep{Theta: 10},
		OPTSleep{Theta: uint64(b)},
		OPTSleep{Theta: 10000},
		SleepDecay{Theta: 0},
		SleepDecay{Theta: 10000},
		OPTHybrid{},
		OPTHybrid{SleepTheta: 3},
		OPTHybrid{SleepTheta: 10000},
		PeriodicDrowsy{Window: 0},
		PeriodicDrowsy{Window: 7},
		PeriodicDrowsy{Window: 2000},
		PrefetchA(),
		PrefetchB(),
		AMCSleep{Theta: 10000, TagFraction: 0.06},
		AMCSleep{Theta: 0, TagFraction: 0.5},
		DirtyAwareHybrid{},
		DeadAwareHybrid{},
		Coloring{Colors: 8, Frames: 1024},
		Coloring{Colors: 1024, Frames: 1024},
		Coloring{Colors: 0, Frames: 0}, // degenerate: never gates
		WayMemo{Accuracy: 0.9},
		WayMemo{Accuracy: 1},
		WayMemo{Accuracy: 0},
	}
}

// curveTestLengths returns the probe lengths for one curve: every cut's
// integer neighborhood plus a spread of interior points, so every piece
// and every boundary decision is exercised.
func curveTestLengths(c Curve) []uint64 {
	set := map[uint64]bool{}
	add := func(l float64) {
		if l < 1 || math.IsInf(l, 0) || math.IsNaN(l) || l > 1e15 {
			return
		}
		u := uint64(l)
		for d := -2; d <= 2; d++ {
			if v := int64(u) + int64(d); v >= 1 {
				set[uint64(v)] = true
			}
		}
	}
	for _, cut := range c.Cuts {
		add(cut)
		add(math.Ceil(cut))
	}
	for _, l := range []uint64{1, 2, 3, 5, 6, 7, 36, 37, 38, 100, 1000, 1057, 5088, 10327, 10328, 10329, 103084, 1 << 20, 1 << 40} {
		set[l] = true
	}
	out := make([]uint64, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	return out
}

func relClose(a, b, relTol, absTol float64) bool {
	d := math.Abs(a - b)
	if d <= absTol {
		return true
	}
	return d <= relTol*math.Max(math.Abs(a), math.Abs(b))
}

// TestClosedFormsMatchReference checks every builtin policy's
// EnergyCurve and MissCurve pointwise against its IntervalEnergy and
// IntervalMisses, for every flags value, at every builtin technology
// node, on lengths bracketing every curve cut. Energies may differ only
// by float regrouping (tight relative tolerance); miss counts must match
// exactly — their curves use the very same threshold comparisons.
func TestClosedFormsMatchReference(t *testing.T) {
	for _, tech := range power.Technologies() {
		for _, pol := range testPolicies(tech) {
			cf, ok := pol.(ClosedForm)
			if !ok {
				t.Fatalf("%s (%T) does not declare a ClosedForm", pol.Name(), pol)
			}
			mc, ok := pol.(MissClosedForm)
			if !ok {
				t.Fatalf("%s (%T) does not declare a MissClosedForm", pol.Name(), pol)
			}
			mm := pol.(MissModel)
			for f := 0; f < 64; f++ {
				flags := interval.Flags(f)
				curve, ok := cf.EnergyCurve(tech, flags)
				if !ok {
					t.Fatalf("%s: EnergyCurve !ok for flags %v", pol.Name(), flags)
				}
				missCurve, ok := mc.MissCurve(tech, flags)
				if !ok {
					t.Fatalf("%s: MissCurve !ok for flags %v", pol.Name(), flags)
				}
				if len(curve.Consts) != len(curve.Cuts)+1 || len(curve.Slopes) != len(curve.Consts) {
					t.Fatalf("%s flags %v: ragged curve %d cuts / %d consts / %d slopes",
						pol.Name(), flags, len(curve.Cuts), len(curve.Consts), len(curve.Slopes))
				}
				for i := 1; i < len(curve.Cuts); i++ {
					if curve.Cuts[i] < curve.Cuts[i-1] {
						t.Fatalf("%s flags %v: cuts not ascending: %v", pol.Name(), flags, curve.Cuts)
					}
				}
				for _, L := range curveTestLengths(curve) {
					want := pol.IntervalEnergy(tech, L, flags)
					got := curve.Eval(float64(L))
					if !relClose(got, want, 1e-9, 1e-9) {
						t.Fatalf("%s @%s flags=%v L=%d: curve %.17g, reference %.17g",
							pol.Name(), tech.Name, flags, L, got, want)
					}
				}
				for _, L := range curveTestLengths(missCurve) {
					want := mm.IntervalMisses(tech, L, flags)
					got := missCurve.Eval(float64(L))
					if got != want {
						t.Fatalf("%s @%s flags=%v L=%d: miss curve %g, reference %g",
							pol.Name(), tech.Name, flags, L, got, want)
					}
				}
			}
		}
	}
}

// randomDistribution builds a distribution with dense and tail buckets
// across random flags classes; integer lengths straddle every builtin
// threshold regime.
func randomDistribution(rng *rand.Rand) *interval.Distribution {
	d := interval.NewDistribution(uint32(rng.Intn(64)+1), 1<<22)
	n := rng.Intn(300) + 1
	for i := 0; i < n; i++ {
		var length uint64
		switch rng.Intn(4) {
		case 0:
			length = uint64(rng.Intn(64)) + 1 // around the overheads
		case 1:
			length = uint64(rng.Intn(8192)) + 1 // dense row range
		case 2:
			length = uint64(rng.Intn(200000)) + 8000 // tail, around b
		default:
			length = uint64(rng.Intn(1 << 21)) // deep tail
		}
		if length == 0 {
			length = 1
		}
		d.Add(length, interval.Flags(rng.Intn(64)), uint64(rng.Intn(50)+1))
	}
	return d
}

// TestEvaluateAggregateMatchesReference is the randomized property test
// of the tentpole: fast-path and reference evaluations agree to
// ulp-scale relative error on every builtin policy over randomized
// distributions, and the induced-miss folds agree exactly. Run it under
// -race (make race) to also pin the aggregates' concurrent-read safety.
func TestEvaluateAggregateMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	techs := power.Technologies()
	for iter := 0; iter < 60; iter++ {
		d := randomDistribution(rng)
		agg := interval.NewAggregates(d)
		tech := techs[rng.Intn(len(techs))]
		for _, pol := range testPolicies(tech) {
			ref, refErr := Evaluate(tech, d, pol)
			fast, fastErr := EvaluateAggregate(tech, agg, pol)
			if (refErr == nil) != (fastErr == nil) {
				t.Fatalf("iter %d %s: error mismatch: ref %v, fast %v", iter, pol.Name(), refErr, fastErr)
			}
			if refErr != nil {
				continue
			}
			if fast.Policy != ref.Policy || fast.Baseline != ref.Baseline {
				t.Fatalf("iter %d %s: metadata mismatch: %+v vs %+v", iter, pol.Name(), fast, ref)
			}
			if !relClose(fast.Energy, ref.Energy, 1e-9, 1e-12) {
				t.Fatalf("iter %d %s @%s: energy fast %.17g, ref %.17g (rel %.3g)",
					iter, pol.Name(), tech.Name, fast.Energy, ref.Energy,
					math.Abs(fast.Energy-ref.Energy)/math.Abs(ref.Energy))
			}
			if math.Abs(fast.Savings-ref.Savings) > 1e-9 {
				t.Fatalf("iter %d %s: savings fast %.17g, ref %.17g", iter, pol.Name(), fast.Savings, ref.Savings)
			}
			refMiss, refMissErr := InducedMissRate(tech, d, pol)
			fastMiss, fastMissErr := InducedMissRateAggregate(tech, agg, pol)
			if (refMissErr == nil) != (fastMissErr == nil) {
				t.Fatalf("iter %d %s: miss error mismatch: ref %v, fast %v", iter, pol.Name(), refMissErr, fastMissErr)
			}
			if refMissErr == nil && !relClose(fastMiss, refMiss, 1e-12, 1e-12) {
				t.Fatalf("iter %d %s: miss rate fast %.17g, ref %.17g", iter, pol.Name(), fastMiss, refMiss)
			}
		}
	}
}

// TestEvaluateManyMatchesEvaluateAll pins the batched kernel against the
// reference batch API on a shared distribution.
func TestEvaluateManyMatchesEvaluateAll(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := randomDistribution(rng)
	agg := interval.NewAggregates(d)
	tech := power.Default()
	pols := testPolicies(tech)
	ref, err := EvaluateAll(tech, d, pols)
	if err != nil {
		t.Fatalf("EvaluateAll: %v", err)
	}
	fast, err := EvaluateMany(tech, agg, pols)
	if err != nil {
		t.Fatalf("EvaluateMany: %v", err)
	}
	if len(fast) != len(ref) {
		t.Fatalf("length mismatch: %d vs %d", len(fast), len(ref))
	}
	for i := range ref {
		if fast[i].Policy != ref[i].Policy || !relClose(fast[i].Energy, ref[i].Energy, 1e-9, 1e-12) {
			t.Fatalf("policy %d (%s): %+v vs %+v", i, ref[i].Policy, fast[i], ref[i])
		}
	}
}

// noClosedForm is a custom policy without a declared closed form: the
// fast path must transparently fall back to the reference walk.
type noClosedForm struct{}

func (noClosedForm) Name() string { return "custom-opaque" }
func (noClosedForm) IntervalEnergy(t power.Technology, length uint64, flags interval.Flags) float64 {
	// Deliberately non-affine in length.
	return t.PActive * math.Sqrt(float64(length))
}

func TestEvaluateAggregateFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := randomDistribution(rng)
	agg := interval.NewAggregates(d)
	tech := power.Default()
	ref, err := Evaluate(tech, d, noClosedForm{})
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	fast, err := EvaluateAggregate(tech, agg, noClosedForm{})
	if err != nil {
		t.Fatalf("EvaluateAggregate: %v", err)
	}
	if fast != ref {
		t.Fatalf("fallback must be bit-identical to the reference: %+v vs %+v", fast, ref)
	}
	if _, err := InducedMissesAggregate(tech, agg, noClosedForm{}); !errors.Is(err, ErrNoMissModel) {
		t.Fatalf("want ErrNoMissModel for a policy without a miss model, got %v", err)
	}
}

// TestEvaluateAggregateErrors pins the sentinel parity with Evaluate.
func TestEvaluateAggregateErrors(t *testing.T) {
	tech := power.Default()
	if _, err := EvaluateAggregate(tech, nil, AlwaysActive{}); !errors.Is(err, ErrNilDistribution) {
		t.Fatalf("nil aggregates: want ErrNilDistribution, got %v", err)
	}
	empty := interval.NewAggregates(interval.NewDistribution(4, 0))
	if _, err := EvaluateAggregate(tech, empty, AlwaysActive{}); !errors.Is(err, ErrEmptyDistribution) {
		t.Fatalf("zero mass: want ErrEmptyDistribution, got %v", err)
	}
	if _, err := EvaluateAggregate(tech, empty, nil); !errors.Is(err, ErrNilPolicy) {
		t.Fatalf("nil policy: want ErrNilPolicy, got %v", err)
	}
	if _, err := InducedMissRateAggregate(tech, empty, AlwaysActive{}); !errors.Is(err, ErrEmptyDistribution) {
		t.Fatalf("no intervals: want ErrEmptyDistribution, got %v", err)
	}
}
