package leakage

// Direct policy simulation: execute a management scheme's per-frame state
// machine over the raw event stream, cycle-accurately, instead of through
// the interval-based analytical evaluation. The two paths make independent
// approximations, so their agreement is the library's strongest internal
// consistency check (tests assert they track each other closely on real
// traces).
//
// Only implementable (past-driven) schemes can be simulated this way; the
// OPT-* oracles need future knowledge by definition and exist only in the
// analytical path.

import (
	"errors"
	"fmt"

	"leakbound/internal/power"
	"leakbound/internal/sim/trace"
)

// frameState tracks one cache frame in the simulator.
type frameState struct {
	mode       Mode
	lastAccess uint64 // cycle of the most recent access
	everUsed   bool
}

// SimulatedPolicy is a per-frame state machine the simulator can run.
type SimulatedPolicy interface {
	// Name labels the scheme.
	Name() string
	// ModeAt returns the mode a frame is in at cycle `now`, given its last
	// access cycle. The simulator integrates leakage over the resulting
	// mode timeline and charges transition/induced-miss energies at mode
	// changes and wakeups.
	ModeAt(t power.Technology, now, lastAccess uint64) Mode
}

// decaySim is the cache-decay state machine: active for Theta cycles after
// the last access, then asleep.
type decaySim struct{ Theta uint64 }

func (d decaySim) Name() string { return fmt.Sprintf("Sleep(%d)", d.Theta) }

func (d decaySim) ModeAt(t power.Technology, now, lastAccess uint64) Mode {
	if now-lastAccess <= d.Theta {
		return Active
	}
	return Sleep
}

// periodicDrowsySim drops every frame to drowsy at fixed period boundaries.
type periodicDrowsySim struct{ Window uint64 }

func (p periodicDrowsySim) Name() string { return fmt.Sprintf("Drowsy(%d)", p.Window) }

func (p periodicDrowsySim) ModeAt(t power.Technology, now, lastAccess uint64) Mode {
	if p.Window == 0 {
		return Active
	}
	// The frame woke at lastAccess and drowses again at the next multiple
	// of Window after that.
	nextBoundary := (lastAccess/p.Window + 1) * p.Window
	if now < nextBoundary {
		return Active
	}
	return Drowsy
}

// NewDecaySimulation returns the simulated counterpart of SleepDecay.
func NewDecaySimulation(theta uint64) SimulatedPolicy { return decaySim{Theta: theta} }

// NewPeriodicDrowsySimulation returns the simulated counterpart of
// PeriodicDrowsy.
func NewPeriodicDrowsySimulation(window uint64) SimulatedPolicy {
	return periodicDrowsySim{Window: window}
}

// Simulator integrates a policy's energy over one cache's event stream.
// Feed events in cycle order via Access, then call Finish.
type Simulator struct {
	tech      power.Technology
	policy    SimulatedPolicy
	frames    []frameState
	energy    float64
	lastCycle uint64
	finished  bool
}

// NewSimulator builds a simulator for numFrames frames.
func NewSimulator(tech power.Technology, policy SimulatedPolicy, numFrames uint32) (*Simulator, error) {
	if err := tech.Validate(); err != nil {
		return nil, err
	}
	if policy == nil {
		return nil, errors.New("leakage: nil simulated policy")
	}
	if numFrames == 0 {
		return nil, errors.New("leakage: zero frames")
	}
	return &Simulator{
		tech:   tech,
		policy: policy,
		frames: make([]frameState, numFrames),
	}, nil
}

// modePower returns the static power of a mode.
func (s *Simulator) modePower(m Mode) float64 {
	switch m {
	case Drowsy:
		return s.tech.PDrowsy
	case Sleep:
		return s.tech.PSleep
	default:
		return s.tech.PActive
	}
}

// integrate charges the frame's leakage from its last account point to
// `now`, splitting the span at the policy's mode boundary. The policies
// simulated here have at most one transition per idle gap (active ->
// low-power at a policy-determined cycle), so a single split suffices.
func (s *Simulator) integrate(f *frameState, from, now uint64) {
	if now <= from {
		return
	}
	if !f.everUsed {
		// Untouched frames are gated from reset.
		s.energy += float64(now-from) * s.tech.PSleep
		return
	}
	// Find the transition cycle by probing the policy at both ends.
	mStart := s.policy.ModeAt(s.tech, from, f.lastAccess)
	mEnd := s.policy.ModeAt(s.tech, now, f.lastAccess)
	if mStart == mEnd {
		s.energy += float64(now-from) * s.modePower(mStart)
		return
	}
	// Binary-search the boundary (the mode timeline is a step function of
	// now for both simulated schemes).
	lo, hi := from, now
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if s.policy.ModeAt(s.tech, mid, f.lastAccess) == mStart {
			lo = mid
		} else {
			hi = mid
		}
	}
	s.energy += float64(hi-from) * s.modePower(mStart)
	s.energy += float64(now-hi) * s.modePower(mEnd)
	// Transition energy: entering the low-power mode.
	tr := s.tech.Transitions()
	switch mEnd {
	case Drowsy:
		s.energy += tr.EAD
	case Sleep:
		s.energy += tr.EAS
	}
}

// Access processes one event for this cache.
func (s *Simulator) Access(e trace.Event) error {
	if s.finished {
		return errors.New("leakage: Access after Finish")
	}
	if int(e.Frame) >= len(s.frames) {
		return fmt.Errorf("leakage: frame %d out of range", e.Frame)
	}
	if e.Cycle < s.lastCycle {
		return fmt.Errorf("leakage: event at %d before %d", e.Cycle, s.lastCycle)
	}
	f := &s.frames[e.Frame]
	// Integrate the gap since this frame's last account point.
	from := uint64(0)
	if f.everUsed {
		from = f.lastAccess
	}
	s.integrate(f, from, e.Cycle)
	// Wake-up costs if the frame was in a low-power mode when demanded.
	if f.everUsed {
		switch s.policy.ModeAt(s.tech, e.Cycle, f.lastAccess) {
		case Sleep:
			// Induced miss: the data was lost and must be re-fetched.
			tr := s.tech.Transitions()
			s.energy += tr.ESA + s.tech.CD
		case Drowsy:
			tr := s.tech.Transitions()
			s.energy += tr.EDA
		}
	}
	f.everUsed = true
	f.lastAccess = e.Cycle
	s.lastCycle = e.Cycle
	return nil
}

// Finish integrates every frame out to the horizon and returns the
// evaluation versus the always-active baseline.
func (s *Simulator) Finish(totalCycles uint64) (Evaluation, error) {
	if s.finished {
		return Evaluation{}, errors.New("leakage: Finish called twice")
	}
	if totalCycles < s.lastCycle {
		return Evaluation{}, fmt.Errorf("leakage: horizon %d before last event %d", totalCycles, s.lastCycle)
	}
	s.finished = true
	for i := range s.frames {
		f := &s.frames[i]
		from := uint64(0)
		if f.everUsed {
			from = f.lastAccess
		}
		s.integrate(f, from, totalCycles)
	}
	baseline := s.tech.PActive * float64(totalCycles) * float64(len(s.frames))
	if baseline == 0 {
		return Evaluation{}, errors.New("leakage: empty simulation")
	}
	return Evaluation{
		Policy:   s.policy.Name() + " (simulated)",
		Energy:   s.energy,
		Baseline: baseline,
		Savings:  1 - s.energy/baseline,
	}, nil
}
