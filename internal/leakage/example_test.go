package leakage_test

import (
	"fmt"

	"leakbound/internal/interval"
	"leakbound/internal/leakage"
	"leakbound/internal/power"
)

// The appendix's Theorem 1 in action: the optimal mode for each interval
// length regime.
func ExampleOptimalMode() {
	tech := power.Default()
	for _, L := range []float64{4, 500, 50000} {
		mode, err := leakage.OptimalMode(tech, L)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%6.0f cycles -> %s\n", L, mode)
	}
	// Output:
	//      4 cycles -> active
	//    500 cycles -> drowsy
	//  50000 cycles -> sleep
}

// Evaluating the oracle hybrid policy over an interval distribution — the
// core computation behind every bar of Figure 8.
func ExampleEvaluate() {
	tech := power.Default()
	d := interval.NewDistribution(4, 1_000_000)
	d.Add(4, 0, 1000)                       // hot: active regime
	d.Add(500, 0, 2000)                     // drowsy regime
	d.Add(50_000, 0, 50)                    // sleep regime
	d.Add(1_000_000, interval.Untouched, 1) // a frame never touched
	ev, err := leakage.Evaluate(tech, d, leakage.OPTHybrid{})
	if err != nil {
		panic(err)
	}
	fmt.Println(ev)
	// Output:
	// OPT-Hybrid: 91.2% leakage savings
}

// The Figure 5 algorithm: accumulate the optimal saving over a set of
// intervals.
func ExampleOptimalLeakageSaving() {
	tech := power.Default()
	saving, err := leakage.OptimalLeakageSaving(tech, []uint64{3, 500, 50000})
	if err != nil {
		panic(err)
	}
	// The 3-cycle interval contributes nothing; the others save most of
	// their active-energy cost.
	fmt.Printf("total saving: %.0f model units\n", saving)
	// Output:
	// total saving: 39587 model units
}

// The generalized model of Figure 6 applied to a hand-built future node.
func ExampleModel_InflectionPoints() {
	var m leakage.Model
	m.P = [3]float64{1.0, 1.0 / 3, 0.01}
	m.E[leakage.Active][leakage.Drowsy] = 3
	m.E[leakage.Drowsy][leakage.Active] = 3
	m.E[leakage.Active][leakage.Sleep] = 30
	m.E[leakage.Sleep][leakage.Active] = 7
	m.EntryCycles = [3]int{0, 3, 30}
	m.WakeCycles = [3]int{0, 3, 7}
	m.CD = 250
	a, b, err := m.InflectionPoints()
	if err != nil {
		panic(err)
	}
	fmt.Printf("a=%.0f b=%.0f\n", a, b)
	// Output:
	// a=6 b=874
}
