package leakage

import "errors"

// Sentinel errors for the conditions callers branch on. Match with
// errors.Is — the error may be wrapped with situational detail — instead
// of comparing message strings.
var (
	// ErrNilDistribution reports evaluation over a nil distribution.
	ErrNilDistribution = errors.New("leakage: nil distribution")

	// ErrNilPolicy reports evaluation with a nil policy.
	ErrNilPolicy = errors.New("leakage: nil policy")

	// ErrEmptyDistribution reports evaluation over a distribution with
	// zero mass (no frame-cycles): there is no baseline to compare
	// against.
	ErrEmptyDistribution = errors.New("leakage: empty distribution")

	// ErrNoEvaluations reports an average over zero evaluations.
	ErrNoEvaluations = errors.New("leakage: no evaluations to average")

	// ErrUnknownScheme reports a policy-spec scheme name with no
	// registration.
	ErrUnknownScheme = errors.New("leakage: unknown scheme")

	// ErrDuplicateScheme reports a second registration under a name the
	// registry already holds.
	ErrDuplicateScheme = errors.New("leakage: duplicate scheme")

	// ErrBadParam reports a malformed, unknown, duplicate, or
	// out-of-range policy parameter.
	ErrBadParam = errors.New("leakage: bad policy parameter")

	// ErrNoMissModel reports an induced-miss query against a policy that
	// does not implement MissModel.
	ErrNoMissModel = errors.New("leakage: policy has no miss model")
)
