package leakage

import "errors"

// Sentinel errors for the conditions callers branch on. Match with
// errors.Is — the error may be wrapped with situational detail — instead
// of comparing message strings.
var (
	// ErrNilDistribution reports evaluation over a nil distribution.
	ErrNilDistribution = errors.New("leakage: nil distribution")

	// ErrNilPolicy reports evaluation with a nil policy.
	ErrNilPolicy = errors.New("leakage: nil policy")

	// ErrEmptyDistribution reports evaluation over a distribution with
	// zero mass (no frame-cycles): there is no baseline to compare
	// against.
	ErrEmptyDistribution = errors.New("leakage: empty distribution")

	// ErrNoEvaluations reports an average over zero evaluations.
	ErrNoEvaluations = errors.New("leakage: no evaluations to average")
)
