package leakage

// The induced-miss side of the Pareto view: every sleep decision that
// charges the induced-miss re-fetch energy CD is also an extra fetch the
// memory system must perform, so counting expected CD charges per
// interval gives the performance axis the energy numbers alone hide.
// Policies report their own count through MissModel, mirroring the exact
// decision structure of their IntervalEnergy — an interval is counted iff
// its energy path charged CD (edge gaps never do: the leading re-fetch is
// the compulsory fill the baseline pays too, and trailing gaps are never
// re-fetched).

import (
	"fmt"

	"leakbound/internal/interval"
	"leakbound/internal/power"
)

// MissModel is optionally implemented by policies that can report the
// expected induced re-fetches (CD-equivalent events) their gating causes
// on one interval. All built-in registrations implement it.
type MissModel interface {
	IntervalMisses(t power.Technology, length uint64, flags interval.Flags) float64
}

// InducedMisses folds a policy's miss model over the distribution,
// returning the total expected induced re-fetches. Policies without a
// MissModel return ErrNoMissModel.
func InducedMisses(t power.Technology, d *interval.Distribution, p Policy) (float64, error) {
	if err := t.Validate(); err != nil {
		return 0, err
	}
	if d == nil {
		return 0, ErrNilDistribution
	}
	if p == nil {
		return 0, ErrNilPolicy
	}
	mm, ok := p.(MissModel)
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNoMissModel, p.Name())
	}
	var total float64
	d.Each(func(length uint64, flags interval.Flags, count uint64) bool {
		total += mm.IntervalMisses(t, length, flags) * float64(count)
		return true
	})
	return total, nil
}

// InducedMissRate returns the induced re-fetches per 1000 intervals — the
// Pareto frontier's performance axis.
func InducedMissRate(t power.Technology, d *interval.Distribution, p Policy) (float64, error) {
	misses, err := InducedMisses(t, d, p)
	if err != nil {
		return 0, err
	}
	n := d.NumIntervals()
	if n == 0 {
		return 0, fmt.Errorf("%w: no intervals", ErrEmptyDistribution)
	}
	return misses * 1000 / float64(n), nil
}

// IntervalMisses implements MissModel: the baseline never re-fetches.
func (AlwaysActive) IntervalMisses(power.Technology, uint64, interval.Flags) float64 { return 0 }

// IntervalMisses implements MissModel: drowsy wakeups preserve state and
// cost only the 1-2 cycle wake, never a re-fetch.
func (OPTDrowsy) IntervalMisses(power.Technology, uint64, interval.Flags) float64 { return 0 }

// IntervalMisses implements MissModel: drowsy-only, no re-fetches.
func (PeriodicDrowsy) IntervalMisses(power.Technology, uint64, interval.Flags) float64 { return 0 }

// IntervalMisses implements MissModel.
func (p OPTSleep) IntervalMisses(t power.Technology, length uint64, flags interval.Flags) float64 {
	if !flags.Interior() {
		return 0
	}
	theta := float64(p.Theta)
	if m := float64(t.Durations.SleepOverhead()); theta < m {
		theta = m
	}
	if float64(length) > theta {
		return 1
	}
	return 0
}

// IntervalMisses implements MissModel.
func (p SleepDecay) IntervalMisses(t power.Technology, length uint64, flags interval.Flags) float64 {
	if !flags.Interior() {
		return 0
	}
	d := t.Durations
	need := float64(p.Theta) + float64(d.S1) + float64(d.S3+d.S4)
	if float64(length) > need {
		return 1
	}
	return 0
}

// IntervalMisses implements MissModel.
func (p OPTHybrid) IntervalMisses(t power.Technology, length uint64, flags interval.Flags) float64 {
	if !flags.Interior() {
		return 0
	}
	_, b, err := t.InflectionPoints()
	if err != nil {
		return 0
	}
	theta := b
	if p.SleepTheta > 0 {
		theta = float64(p.SleepTheta)
	}
	if float64(length) > theta {
		return 1
	}
	return 0
}

// IntervalMisses implements MissModel.
func (p PrefetchGuided) IntervalMisses(t power.Technology, length uint64, flags interval.Flags) float64 {
	if !flags.Interior() || !flags.Prefetchable() {
		return 0 // non-prefetchable intervals stay active or drowsy
	}
	_, b, err := t.InflectionPoints()
	if err != nil {
		return 0
	}
	if float64(length) > b {
		return 1
	}
	return 0
}

// IntervalMisses implements MissModel: same decision as the decay core;
// the tag array staying powered changes energy, not re-fetch count.
func (p AMCSleep) IntervalMisses(t power.Technology, length uint64, flags interval.Flags) float64 {
	return SleepDecay{Theta: p.Theta}.IntervalMisses(t, length, flags)
}

// IntervalMisses implements MissModel.
func (DirtyAwareHybrid) IntervalMisses(t power.Technology, length uint64, flags interval.Flags) float64 {
	if !flags.Interior() {
		return 0
	}
	_, b, err := t.InflectionPoints()
	if err != nil {
		return 0
	}
	theta := b
	if flags&interval.Dirty != 0 {
		theta = b + t.WBEnergy/(t.PDrowsy-t.PSleep)
	}
	if float64(length) > theta {
		return 1
	}
	return 0
}

// IntervalMisses implements MissModel: a gated dead-ending interval is
// never re-fetched (that is the point of the dead oracle), so only the
// live slept intervals count.
func (DeadAwareHybrid) IntervalMisses(t power.Technology, length uint64, flags interval.Flags) float64 {
	if flags&interval.DeadEnd != 0 && flags.Interior() {
		return 0
	}
	return OPTHybrid{}.IntervalMisses(t, length, flags)
}

// IntervalMisses implements MissModel.
func (p Coloring) IntervalMisses(t power.Technology, length uint64, flags interval.Flags) float64 {
	if !flags.Interior() {
		return 0
	}
	if float64(length) > p.regionTheta(t) {
		return 1
	}
	return 0
}

// IntervalMisses implements MissModel: a slept predicted interval always
// re-fetches, and a mispredicted pre-wake adds one more CD-equivalent
// stall in expectation.
func (p WayMemo) IntervalMisses(t power.Technology, length uint64, flags interval.Flags) float64 {
	if !flags.Interior() || !flags.Prefetchable() {
		return 0
	}
	_, b, err := t.InflectionPoints()
	if err != nil {
		return 0
	}
	if float64(length) > b {
		return 1 + (1 - p.Accuracy)
	}
	return 0
}
