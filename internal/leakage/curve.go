package leakage

// Piecewise-affine energy curves: the closed-form backbone of the
// aggregate fast path. Every builtin policy's IntervalEnergy, for a fixed
// flags value, is piecewise affine in the interval length with at most a
// handful of pieces (a threshold theta, a drowse window, an accuracy
// cutoff), so a policy evaluation over a whole distribution collapses to,
// per piece, const*count + slope*mass of the lengths falling in the
// piece — two prefix-sum lookups (interval.FlagsClass.Prefix) instead of
// a walk over every bucket.
//
// Branch-boundary discipline: the reference implementations all branch on
// strict "float64(length) > threshold" comparisons (or their negations),
// and Prefix answers "float64(length) <= cut", so a Curve cut placed at
// the threshold reproduces the reference's branch decisions exactly.
// Conditions of the form "length >= k" with integer k are encoded as a
// cut at k - 0.5 (interval lengths are integers, so no length falls
// between). The only inexactness the fast path admits is floating-point
// reassociation: a piece's const+slope*L regroups the reference's
// arithmetic, and prefix sums reorder the additions — both bounded by
// ulp-scale relative error, pinned by TestClosedFormsMatchReference.

import (
	"math"
	"sort"
)

// Curve is a piecewise-affine function of interval length L > 0.
// Segment i covers (Cuts[i-1], Cuts[i]] (with Cuts[-1] = 0 and
// Cuts[len(Cuts)] = +inf implied) and has value Consts[i] + Slopes[i]*L.
// Cuts ascend; len(Consts) == len(Slopes) == len(Cuts)+1.
type Curve struct {
	Cuts   []float64
	Consts []float64
	Slopes []float64
}

// Eval returns the curve's value at length L.
func (c Curve) Eval(L float64) float64 {
	i := sort.Search(len(c.Cuts), func(i int) bool { return L <= c.Cuts[i] })
	return c.Consts[i] + c.Slopes[i]*L
}

// segments returns the number of affine pieces.
func (c Curve) segments() int { return len(c.Consts) }

// affine returns the single-piece curve const + slope*L.
func affine(cnst, slope float64) Curve {
	return Curve{Consts: []float64{cnst}, Slopes: []float64{slope}}
}

// constant returns the single-piece constant curve.
func constant(v float64) Curve { return affine(v, 0) }

// plusConst shifts every piece up by k.
func (c Curve) plusConst(k float64) Curve {
	if k == 0 {
		return c
	}
	out := Curve{Cuts: c.Cuts, Consts: make([]float64, len(c.Consts)), Slopes: c.Slopes}
	for i, v := range c.Consts {
		out.Consts[i] = v + k
	}
	return out
}

// plusSlope adds k to every piece's slope (e.g. an always-leaking decay
// counter).
func (c Curve) plusSlope(k float64) Curve {
	if k == 0 {
		return c
	}
	out := Curve{Cuts: c.Cuts, Consts: c.Consts, Slopes: make([]float64, len(c.Slopes))}
	for i, v := range c.Slopes {
		out.Slopes[i] = v + k
	}
	return out
}

// switchAt composes the curve that equals low for L <= cut and high for
// L > cut — the shape of every "length > theta" policy branch. A cut <= 0
// (or NaN) selects high everywhere; +inf selects low everywhere.
func switchAt(cut float64, low, high Curve) Curve {
	if !(cut > 0) {
		return high
	}
	if math.IsInf(cut, 1) {
		return low
	}
	var out Curve
	for i := 0; i < low.segments(); i++ {
		end := math.Inf(1)
		if i < len(low.Cuts) {
			end = low.Cuts[i]
		}
		start := 0.0
		if i > 0 {
			start = low.Cuts[i-1]
		}
		if start >= cut {
			break
		}
		segEnd := end
		if segEnd > cut {
			segEnd = cut
		}
		out.Cuts = append(out.Cuts, segEnd)
		out.Consts = append(out.Consts, low.Consts[i])
		out.Slopes = append(out.Slopes, low.Slopes[i])
		if end >= cut {
			break
		}
	}
	for i := 0; i < high.segments(); i++ {
		end := math.Inf(1)
		if i < len(high.Cuts) {
			end = high.Cuts[i]
		}
		if end <= cut {
			continue // piece entirely below the switch point
		}
		if i < len(high.Cuts) {
			out.Cuts = append(out.Cuts, end)
		}
		out.Consts = append(out.Consts, high.Consts[i])
		out.Slopes = append(out.Slopes, high.Slopes[i])
	}
	return out
}

// pickBelow composes the curve that equals alt wherever alt(L) is
// strictly below base(L), and base elsewhere — the dead-oracle's "gate
// whenever CD-free sleep beats the drowsy schedule" selection. Affine
// pieces cross at most once, so each elementary segment of the merged cut
// set splits at most once at the analytic crossover; both sides agree at
// the crossover itself, so any ulp-level disagreement with the
// reference's per-bucket comparison moves only values equal to within
// ulps.
func pickBelow(base, alt Curve) Curve {
	cuts := make([]float64, 0, len(base.Cuts)+len(alt.Cuts))
	cuts = append(cuts, base.Cuts...)
	cuts = append(cuts, alt.Cuts...)
	sort.Float64s(cuts)
	var out Curve
	emit := func(end float64, c Curve, seg int) {
		if !math.IsInf(end, 1) {
			out.Cuts = append(out.Cuts, end)
		}
		out.Consts = append(out.Consts, c.Consts[seg])
		out.Slopes = append(out.Slopes, c.Slopes[seg])
	}
	lo := 0.0
	for k := 0; k <= len(cuts); k++ {
		hi := math.Inf(1)
		if k < len(cuts) {
			hi = cuts[k]
		}
		if hi <= lo {
			continue // duplicate boundary
		}
		bi := segIndex(base, hi)
		ai := segIndex(alt, hi)
		bc, bs := base.Consts[bi], base.Slopes[bi]
		ac, as := alt.Consts[ai], alt.Slopes[ai]
		// Crossover of the two affine pieces inside (lo, hi), if any.
		bounds := []float64{hi}
		if bs != as {
			if x := (ac - bc) / (bs - as); x > lo && x < hi {
				bounds = []float64{x, hi}
			}
		}
		for _, end := range bounds {
			probe := (lo + end) / 2
			if math.IsInf(end, 1) {
				probe = lo + 1
			}
			if ac+as*probe < bc+bs*probe {
				emit(end, alt, ai)
			} else {
				emit(end, base, bi)
			}
			lo = end
		}
	}
	return out
}

// segIndex returns the index of the piece whose range contains lengths
// just below end (i.e. the piece covering (prevCut, end]).
func segIndex(c Curve, end float64) int {
	return sort.Search(len(c.Cuts), func(i int) bool { return end <= c.Cuts[i] })
}

// tagTransform applies the AMC tag-array correction to a decay base
// curve: wherever the base gated anything (slept(L) = PActive*L - base(L)
// > 0) the tag's share tf of the savings is given back, i.e. the value
// becomes (1-tf)*base(L) + tf*PActive*L. Per base piece slept is affine,
// so the sign changes at most once per piece.
func tagTransform(base Curve, tf, pActive float64) Curve {
	var out Curve
	emit := func(end, cnst, slope float64) {
		if !math.IsInf(end, 1) {
			out.Cuts = append(out.Cuts, end)
		}
		out.Consts = append(out.Consts, cnst)
		out.Slopes = append(out.Slopes, slope)
	}
	lo := 0.0
	for i := 0; i < base.segments(); i++ {
		hi := math.Inf(1)
		if i < len(base.Cuts) {
			hi = base.Cuts[i]
		}
		if hi <= lo {
			continue
		}
		cnst, slope := base.Consts[i], base.Slopes[i]
		// slept(L) = (pActive-slope)*L - cnst; transformed piece value:
		tc, ts := (1-tf)*cnst, slope+tf*(pActive-slope)
		bounds := []float64{hi}
		if d := pActive - slope; d != 0 {
			if x := cnst / d; x > lo && x < hi {
				bounds = []float64{x, hi}
			}
		}
		for _, end := range bounds {
			probe := (lo + end) / 2
			if math.IsInf(end, 1) {
				probe = lo + 1
			}
			if pActive*probe-(cnst+slope*probe) > 0 {
				emit(end, tc, ts)
			} else {
				emit(end, cnst, slope)
			}
			lo = end
		}
	}
	return out
}
