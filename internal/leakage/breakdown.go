package leakage

// Energy breakdown: where the oracle's residual energy goes. Figure 8's
// bars show a single savings number; this decomposition explains it —
// how much of the remaining energy is short intervals that must stay
// active, drowsy retention leakage, mode-transition overhead, induced-miss
// re-fetches, and residual sleep leakage. The calibration notes in
// EXPERIMENTS.md are expressed in exactly these terms.

import (
	"errors"
	"fmt"
	"math"

	"leakbound/internal/interval"
	"leakbound/internal/power"
)

// Breakdown decomposes OPT-Hybrid's energy over a distribution. All fields
// are fractions of the always-active baseline; Savings + the five
// components sum to 1 (up to rounding).
type Breakdown struct {
	// Savings is 1 - total/baseline, as in Evaluation.
	Savings float64
	// ActiveShare is energy from intervals too short for any mode.
	ActiveShare float64
	// DrowsyShare is retention leakage of drowsed intervals (their rest
	// portion at PDrowsy).
	DrowsyShare float64
	// TransitionShare is the mode-change overhead (entry/wake segments at
	// active power, for both drowsy and sleep intervals).
	TransitionShare float64
	// InducedMissShare is the dynamic CD re-fetch energy of slept
	// interior intervals (plus write-backs when modelled).
	InducedMissShare float64
	// SleepShare is residual leakage of gated intervals at PSleep.
	SleepShare float64
}

// Total returns the sum of all component fractions plus savings; always
// ~1 for a consistent decomposition.
func (b Breakdown) Total() float64 {
	return b.Savings + b.ActiveShare + b.DrowsyShare + b.TransitionShare +
		b.InducedMissShare + b.SleepShare
}

// HybridBreakdown decomposes the OPT-Hybrid policy's energy over d.
func HybridBreakdown(t power.Technology, d *interval.Distribution) (Breakdown, error) {
	if err := t.Validate(); err != nil {
		return Breakdown{}, err
	}
	if d == nil {
		return Breakdown{}, ErrNilDistribution
	}
	baseline := t.PActive * float64(d.Mass())
	if baseline == 0 {
		return Breakdown{}, fmt.Errorf("%w: zero mass", ErrEmptyDistribution)
	}
	a, b, err := t.InflectionPoints()
	if err != nil {
		return Breakdown{}, err
	}
	dur := t.Durations
	var out Breakdown
	d.Each(func(length uint64, flags interval.Flags, count uint64) bool {
		L := float64(length)
		n := float64(count)
		switch {
		case L > b:
			// Sleep. Edge gaps skip parts of the transition; mirror the
			// policy's formulas.
			switch {
			case flags&interval.Untouched == interval.Untouched:
				out.SleepShare += n * L * t.PSleep
			case flags&interval.Leading != 0:
				wake := float64(dur.S3 + dur.S4)
				if L < wake {
					out.ActiveShare += n * t.ActiveEnergy(L)
					return true
				}
				out.TransitionShare += n * wake * t.PActive
				out.SleepShare += n * (L - wake) * t.PSleep
			case flags&interval.Trailing != 0:
				if L < float64(dur.S1) {
					out.ActiveShare += n * t.ActiveEnergy(L)
					return true
				}
				out.TransitionShare += n * float64(dur.S1) * t.PActive
				out.SleepShare += n * (L - float64(dur.S1)) * t.PSleep
				if flags&interval.Dirty != 0 {
					out.InducedMissShare += n * t.WBEnergy
				}
			default:
				oh := float64(dur.SleepOverhead())
				out.TransitionShare += n * oh * t.PActive
				out.SleepShare += n * (L - oh) * t.PSleep
				out.InducedMissShare += n * t.CD
				if flags&interval.Dirty != 0 {
					out.InducedMissShare += n * t.WBEnergy
				}
			}
		case L > a:
			oh := float64(dur.DrowsyOverhead())
			out.TransitionShare += n * oh * t.PActive
			out.DrowsyShare += n * (L - oh) * t.PDrowsy
		default:
			out.ActiveShare += n * t.ActiveEnergy(L)
		}
		return true
	})
	out.ActiveShare /= baseline
	out.DrowsyShare /= baseline
	out.TransitionShare /= baseline
	out.InducedMissShare /= baseline
	out.SleepShare /= baseline
	out.Savings = 1 - (out.ActiveShare + out.DrowsyShare + out.TransitionShare +
		out.InducedMissShare + out.SleepShare)
	if math.IsNaN(out.Savings) {
		return Breakdown{}, errors.New("leakage: degenerate breakdown")
	}
	return out, nil
}
