// Package leakage is the paper's primary contribution: computing the limits
// of cache leakage power reduction. It provides:
//
//   - the three operating modes (active / drowsy / sleep) and their
//     per-interval energies (building on internal/power's Equations 1–3);
//   - the oracle policies of Section 4.4 (OPT-Drowsy, OPT-Sleep(θ),
//     Sleep(θ) decay, OPT-Hybrid) and the prefetch-guided policies of
//     Section 5.2 (Prefetch-A, Prefetch-B);
//   - Evaluate, which folds a policy over an interval distribution and
//     reports leakage savings versus an always-active cache;
//   - the generalized state-machine model of Section 3.3 / Figure 6; and
//   - the optimal-policy algorithm of Figure 5 with the appendix theorem's
//     lower-envelope characterization.
package leakage

import (
	"fmt"

	"leakbound/internal/power"
)

// Mode is a cache line operating mode (T in the appendix's Definition 2).
type Mode uint8

const (
	// Active keeps the line at full Vdd: instantly accessible, maximal
	// leakage.
	Active Mode = iota
	// Drowsy holds the line at a reduced supply voltage: state preserved,
	// ~3x lower leakage, small wake latency.
	Drowsy
	// Sleep gates Vdd entirely: near-zero leakage, state lost, re-fetch
	// required on the next access.
	Sleep
	numModes
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Active:
		return "active"
	case Drowsy:
		return "drowsy"
	case Sleep:
		return "sleep"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// Valid reports whether m names a real mode.
func (m Mode) Valid() bool { return m < numModes }

// Modes lists all modes in ascending aggressiveness.
func Modes() []Mode { return []Mode{Active, Drowsy, Sleep} }

// EnergyWithMode returns the energy of covering an interior interval of the
// given length with the given mode, or an error if the interval is too
// short to physically hold the mode's transitions.
func EnergyWithMode(t power.Technology, length float64, m Mode) (float64, error) {
	switch m {
	case Active:
		return t.ActiveEnergy(length), nil
	case Drowsy:
		if length < float64(t.Durations.DrowsyOverhead()) {
			return 0, fmt.Errorf("leakage: interval %g shorter than drowsy overhead %d",
				length, t.Durations.DrowsyOverhead())
		}
		return t.DrowsyEnergy(length), nil
	case Sleep:
		if length < float64(t.Durations.SleepOverhead()) {
			return 0, fmt.Errorf("leakage: interval %g shorter than sleep overhead %d",
				length, t.Durations.SleepOverhead())
		}
		return t.SleepEnergy(length), nil
	default:
		return 0, fmt.Errorf("leakage: invalid mode %d", m)
	}
}

// OptimalMode returns the mode the appendix's Theorem 1 assigns to an
// interior interval of the given length: active on (0,a], drowsy on (a,b],
// sleep on (b,+inf).
func OptimalMode(t power.Technology, length float64) (Mode, error) {
	a, b, err := t.InflectionPoints()
	if err != nil {
		return Active, err
	}
	switch {
	case length <= a:
		return Active, nil
	case length <= b:
		return Drowsy, nil
	default:
		return Sleep, nil
	}
}
