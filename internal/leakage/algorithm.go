package leakage

import (
	"errors"

	"leakbound/internal/power"
)

// This file transcribes Figure 5 ("the algorithm to compute the optimal
// leakage power saving") and the appendix's Theorem 1 machinery, operating
// on a plain set of interval lengths. The streaming evaluator in
// evaluate.go is the production path; this form exists because the paper
// presents it, and because tests use it to cross-check the evaluator and to
// verify the optimality theorem against adversarial mode assignments.

// OptimalLeakageSaving is Figure 5: given a set of interior interval
// lengths, classify each against the two inflection points and accumulate
// the energy saved versus leaving the line active. Intervals at or below
// the active-drowsy point contribute no saving.
func OptimalLeakageSaving(t power.Technology, intervals []uint64) (totalSaving float64, err error) {
	a, b, err := t.InflectionPoints()
	if err != nil {
		return 0, err
	}
	for _, li := range intervals {
		L := float64(li)
		switch {
		case L > b:
			totalSaving += t.ActiveEnergy(L) - t.SleepEnergy(L) // sleep_saving(|Ii|)
		case L > a:
			totalSaving += t.ActiveEnergy(L) - t.DrowsyEnergy(L) // drowsy_saving(|Ii|)
		default:
			// no leakage power saving can be obtained
		}
	}
	return totalSaving, nil
}

// Assignment maps each interval (by index) to an operating mode.
type Assignment []Mode

// AssignmentEnergy returns the total energy of covering each interval with
// its assigned mode; infeasible pairs (interval too short for the mode's
// transitions) fall back to active, mirroring how real hardware would have
// to behave.
func AssignmentEnergy(t power.Technology, intervals []uint64, modes Assignment) (float64, error) {
	if len(intervals) != len(modes) {
		return 0, errors.New("leakage: assignment length mismatch")
	}
	var total float64
	for i, li := range intervals {
		e, err := EnergyWithMode(t, float64(li), modes[i])
		if err != nil {
			e = t.ActiveEnergy(float64(li))
		}
		total += e
	}
	return total, nil
}

// OptimalAssignment returns Theorem 1's per-interval assignment: active on
// (0,a], drowsy on (a,b], sleep on (b,+inf).
func OptimalAssignment(t power.Technology, intervals []uint64) (Assignment, error) {
	out := make(Assignment, len(intervals))
	for i, li := range intervals {
		m, err := OptimalMode(t, float64(li))
		if err != nil {
			return nil, err
		}
		out[i] = m
	}
	return out, nil
}

// VerifyTheorem checks Theorem 1 for one interval set: the optimal
// assignment's energy must not exceed the given alternative assignment's
// energy. It returns the two energies for reporting.
func VerifyTheorem(t power.Technology, intervals []uint64, alternative Assignment) (optimal, alt float64, err error) {
	opt, err := OptimalAssignment(t, intervals)
	if err != nil {
		return 0, 0, err
	}
	optimal, err = AssignmentEnergy(t, intervals, opt)
	if err != nil {
		return 0, 0, err
	}
	alt, err = AssignmentEnergy(t, intervals, alternative)
	if err != nil {
		return 0, 0, err
	}
	return optimal, alt, nil
}
