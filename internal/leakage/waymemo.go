package leakage

// Way-memoization-style leakage management (Ishihara & Fallah,
// arXiv:0710.4703): the cache memoizes where the next access will land,
// and uses that prediction to pre-wake the predicted frame so a gated
// line is powered up before the access arrives. leakbound reuses the
// prefetch engine's published predictions as the memo — an interval whose
// closing access the next-line or stride predictor covered is exactly an
// interval the memo could have pre-woken — and parameterizes the memo's
// Accuracy: a correct prediction hides the wakeup like Prefetch-A, a
// mispredict stalls the access and is charged one extra induced-miss
// re-fetch energy (the mispredicted pre-wake fetched the wrong frame).
// Non-predicted intervals stay active (the memo has nothing to act on),
// so Accuracy = 1 makes WayMemo identical to Prefetch-A.

import (
	"fmt"

	"leakbound/internal/interval"
	"leakbound/internal/power"
)

// DefaultWayMemoAccuracy is the default memo hit rate; the suite's stride
// engines measure 0.9+ on the SPEC-like workloads, and the families table
// substitutes each benchmark's measured accuracy.
const DefaultWayMemoAccuracy = 0.9

// WayMemo is the way-memoization policy with a given memo accuracy in
// [0, 1].
type WayMemo struct {
	// Accuracy is the fraction of predicted accesses whose pre-wake hit
	// the right frame.
	Accuracy float64
}

// Name implements Policy.
func (p WayMemo) Name() string { return fmt.Sprintf("WayMemo(%.2f)", p.Accuracy) }

// IntervalEnergy implements Policy.
func (p WayMemo) IntervalEnergy(t power.Technology, length uint64, flags interval.Flags) float64 {
	L := float64(length)
	switch {
	case flags&interval.Untouched == interval.Untouched:
		return untouchedSleepEnergy(t, L)
	case flags&interval.Leading != 0:
		return leadingSleepEnergy(t, L)
	}
	if !flags.Prefetchable() {
		return t.ActiveEnergy(L)
	}
	a, b, err := t.InflectionPoints()
	if err != nil {
		return t.ActiveEnergy(L)
	}
	switch {
	case L > b:
		e := sleepEnergyFor(t, L, flags)
		if flags.Interior() {
			// A mispredicted pre-wake woke the wrong frame: the access
			// stalls for a full re-fetch, charged as induced-miss energy.
			e += (1 - p.Accuracy) * t.CD
		}
		return e
	case L > a:
		return drowsyEnergyFor(t, L)
	default:
		return t.ActiveEnergy(L)
	}
}
