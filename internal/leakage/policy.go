package leakage

import (
	"fmt"

	"leakbound/internal/interval"
	"leakbound/internal/power"
)

// Policy decides how much energy one cache frame spends over one interval.
// Implementations are the schemes compared in Figure 8. A policy sees the
// interval's length, its flags (prefetchability, leading/trailing), and the
// circuit parameters; it returns the leakage + transition + induced-miss
// energy it would spend. It never returns more than active energy unless the
// scheme genuinely wastes energy (e.g. decay counters).
type Policy interface {
	// Name is the scheme's label as used in the paper's figures.
	Name() string
	// IntervalEnergy returns the energy spent on one interval.
	IntervalEnergy(t power.Technology, length uint64, flags interval.Flags) float64
}

// Edge-gap energy helpers. A frame's leading gap starts with the line
// powered off (SRAM is invalid at reset), so sleeping it needs no
// entry transition and its re-fetch is the compulsory fill the baseline
// pays too; a trailing gap is never re-fetched.

// leadingSleepEnergy: off from cycle 0, wake just in time.
func leadingSleepEnergy(t power.Technology, length float64) float64 {
	d := t.Durations
	wakeCycles := float64(d.S3 + d.S4)
	rest := length - wakeCycles
	if rest < 0 {
		return t.ActiveEnergy(length) // cannot fit the wake; stay on
	}
	return rest*t.PSleep + wakeCycles*t.PActive
}

// trailingSleepEnergy: turn off after the last access, never wake.
func trailingSleepEnergy(t power.Technology, length float64) float64 {
	d := t.Durations
	if length < float64(d.S1) {
		return t.ActiveEnergy(length)
	}
	return float64(d.S1)*t.PActive + (length-float64(d.S1))*t.PSleep
}

// untouchedSleepEnergy: the frame is never filled; it stays gated the whole
// run.
func untouchedSleepEnergy(t power.Technology, length float64) float64 {
	return length * t.PSleep
}

// sleepEnergyFor dispatches an interval to the right sleep-energy formula
// based on its edge flags, charging the write-back energy when a dirty
// line is gated (zero on the paper-calibrated nodes; see power.WBEnergy).
func sleepEnergyFor(t power.Technology, length float64, flags interval.Flags) float64 {
	var wb float64
	if flags&interval.Dirty != 0 {
		wb = t.WBEnergy
	}
	switch {
	case flags&interval.Untouched == interval.Untouched:
		return untouchedSleepEnergy(t, length) // never filled, never dirty
	case flags&interval.Leading != 0:
		return leadingSleepEnergy(t, length)
	case flags&interval.Trailing != 0:
		return trailingSleepEnergy(t, length) + wb
	default:
		return t.SleepEnergy(length) + wb
	}
}

// drowsyEnergyFor covers an interval with drowsy mode, falling back to
// active when the transitions do not fit.
func drowsyEnergyFor(t power.Technology, length float64) float64 {
	if length <= float64(t.Durations.DrowsyOverhead()) {
		return t.ActiveEnergy(length)
	}
	return t.DrowsyEnergy(length)
}

// AlwaysActive is the baseline: no power management at all.
type AlwaysActive struct{}

// Name implements Policy.
func (AlwaysActive) Name() string { return "Active" }

// IntervalEnergy implements Policy.
func (AlwaysActive) IntervalEnergy(t power.Technology, length uint64, flags interval.Flags) float64 {
	return t.ActiveEnergy(float64(length))
}

// OPTDrowsy is the optimal drowsy-only cache: every interval longer than the
// active-drowsy point is drowsed, with just-in-time wakeup (no performance
// penalty, only transition energy).
type OPTDrowsy struct{}

// Name implements Policy.
func (OPTDrowsy) Name() string { return "OPT-Drowsy" }

// IntervalEnergy implements Policy.
func (OPTDrowsy) IntervalEnergy(t power.Technology, length uint64, flags interval.Flags) float64 {
	return drowsyEnergyFor(t, float64(length))
}

// OPTSleep is the optimal sleep-only cache with a minimum sleep interval
// Theta: any interval longer than Theta is gated for its whole duration and
// re-fetched just in time; shorter intervals stay active. Theta = the
// drowsy-sleep inflection point gives the paper's OPT-Sleep; Theta = 10000
// gives OPT-Sleep(10K).
type OPTSleep struct {
	// Theta is the minimum interval length put to sleep, in cycles.
	Theta uint64
}

// Name implements Policy.
func (p OPTSleep) Name() string { return fmt.Sprintf("OPT-Sleep(%d)", p.Theta) }

// IntervalEnergy implements Policy.
func (p OPTSleep) IntervalEnergy(t power.Technology, length uint64, flags interval.Flags) float64 {
	L := float64(length)
	theta := float64(p.Theta)
	if m := float64(t.Durations.SleepOverhead()); theta < m {
		theta = m
	}
	if L > theta {
		return sleepEnergyFor(t, L, flags)
	}
	return t.ActiveEnergy(L)
}

// SleepDecay models the cache-decay scheme of Kaxiras et al. with decay
// interval Theta (the paper's Sleep(10K)): a line stays active for Theta
// cycles after its last access, then is gated; the next access pays the
// induced miss. Unlike the OPT variants there is no future knowledge, so
// the first Theta cycles of every long interval leak at full power, and a
// per-line decay counter adds a constant leakage overhead.
type SleepDecay struct {
	// Theta is the decay interval in cycles.
	Theta uint64
}

// Name implements Policy.
func (p SleepDecay) Name() string { return fmt.Sprintf("Sleep(%d)", p.Theta) }

// IntervalEnergy implements Policy.
func (p SleepDecay) IntervalEnergy(t power.Technology, length uint64, flags interval.Flags) float64 {
	L := float64(length)
	counter := t.CounterLeak * L // the counter leaks for the whole interval
	d := t.Durations
	switch {
	case flags&interval.Untouched == interval.Untouched:
		// Never filled: the line stays gated (invalid lines are off).
		return untouchedSleepEnergy(t, L) + counter
	case flags&interval.Leading != 0:
		// Gated until the compulsory fill; the fill is a miss the baseline
		// pays too, and decay wakes the line as part of it.
		return leadingSleepEnergy(t, L) + counter
	}
	theta := float64(p.Theta)
	// The decay transition fits only if the remainder after the active wait
	// can hold the turn-off (and, for interior intervals, the wake).
	need := theta + float64(d.S1)
	if flags&interval.Trailing == 0 {
		need += float64(d.S3 + d.S4)
	}
	if L <= need {
		return t.ActiveEnergy(L) + counter
	}
	activePart := theta * t.PActive
	off := float64(d.S1) * t.PActive
	var wb float64
	if flags&interval.Dirty != 0 {
		wb = t.WBEnergy
	}
	if flags&interval.Trailing != 0 {
		rest := (L - theta - float64(d.S1)) * t.PSleep
		return activePart + off + rest + wb + counter
	}
	wake := float64(d.S3+d.S4) * t.PActive
	rest := (L - need) * t.PSleep
	return activePart + off + rest + wake + t.CD + wb + counter
}

// OPTHybrid optimally combines all three modes using the two inflection
// points: active on (0,a], drowsy on (a,b], sleep on (b,+inf). SleepTheta
// optionally raises the sleep threshold above b (the Figure 7 sweep); zero
// means "use the inflection point".
type OPTHybrid struct {
	// SleepTheta overrides the drowsy-sleep inflection point when > 0.
	SleepTheta uint64
}

// Name implements Policy.
func (p OPTHybrid) Name() string {
	if p.SleepTheta > 0 {
		return fmt.Sprintf("OPT-Hybrid(%d)", p.SleepTheta)
	}
	return "OPT-Hybrid"
}

// IntervalEnergy implements Policy.
func (p OPTHybrid) IntervalEnergy(t power.Technology, length uint64, flags interval.Flags) float64 {
	a, b, err := t.InflectionPoints()
	if err != nil {
		// Degenerate parameters: fall back to the safe mode.
		return t.ActiveEnergy(float64(length))
	}
	theta := b
	if p.SleepTheta > 0 {
		theta = float64(p.SleepTheta)
	}
	L := float64(length)
	switch {
	case L > theta:
		return sleepEnergyFor(t, L, flags)
	case L > a:
		return drowsyEnergyFor(t, L)
	default:
		return t.ActiveEnergy(L)
	}
}

// PrefetchGuided implements the Prefetch-A / Prefetch-B schemes of
// Section 5.2 (Table 3). Prefetchable intervals get the mode the inflection
// points prescribe, because the prefetcher can hide the wakeup; for
// non-prefetchable intervals Prefetch-A stays active (performance-first)
// while Prefetch-B drops to drowsy (power-first, accepting the 1–2 cycle
// wake stall). Leading gaps and untouched frames are gated — invalid lines
// start powered off, with no oracle needed.
type PrefetchGuided struct {
	// PowerBiased selects Prefetch-B semantics; false is Prefetch-A.
	PowerBiased bool
}

// PrefetchA returns the performance-biased scheme.
func PrefetchA() PrefetchGuided { return PrefetchGuided{PowerBiased: false} }

// PrefetchB returns the power-biased scheme.
func PrefetchB() PrefetchGuided { return PrefetchGuided{PowerBiased: true} }

// Name implements Policy.
func (p PrefetchGuided) Name() string {
	if p.PowerBiased {
		return "Prefetch-B"
	}
	return "Prefetch-A"
}

// IntervalEnergy implements Policy.
func (p PrefetchGuided) IntervalEnergy(t power.Technology, length uint64, flags interval.Flags) float64 {
	L := float64(length)
	switch {
	case flags&interval.Untouched == interval.Untouched:
		return untouchedSleepEnergy(t, L)
	case flags&interval.Leading != 0:
		return leadingSleepEnergy(t, L)
	}
	a, b, err := t.InflectionPoints()
	if err != nil {
		return t.ActiveEnergy(L)
	}
	if flags.Prefetchable() {
		switch {
		case L > b:
			return sleepEnergyFor(t, L, flags)
		case L > a:
			return drowsyEnergyFor(t, L)
		default:
			return t.ActiveEnergy(L)
		}
	}
	if p.PowerBiased && L > a {
		return drowsyEnergyFor(t, L)
	}
	return t.ActiveEnergy(L)
}
