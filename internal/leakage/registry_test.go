package leakage

import (
	"encoding/json"
	"errors"
	"math"
	"strings"
	"testing"

	"leakbound/internal/interval"
	"leakbound/internal/power"
)

func TestRegistryRegisterValidation(t *testing.T) {
	r := NewRegistry()
	ok := Registration{
		Name:    "custom",
		Factory: func(power.Technology, Params) (Policy, error) { return AlwaysActive{}, nil },
	}
	if err := r.Register(ok); err != nil {
		t.Fatalf("valid registration rejected: %v", err)
	}
	if err := r.Register(ok); !errors.Is(err, ErrDuplicateScheme) {
		t.Errorf("duplicate registration error = %v, want ErrDuplicateScheme", err)
	}
	cases := []Registration{
		{Factory: ok.Factory},                                      // empty name
		{Name: "Upper", Factory: ok.Factory},                       // not lowercase
		{Name: "has space", Factory: ok.Factory},                   // bad char
		{Name: "has@at", Factory: ok.Factory},                      // grammar char
		{Name: "nofactory"},                                        // nil factory
		{Name: "badpos", Factory: ok.Factory, Positional: "theta"}, // undeclared positional
		{Name: "dupparam", Factory: ok.Factory, Params: []ParamSchema{
			{Name: "x", Kind: UintParam}, {Name: "x", Kind: UintParam}}},
	}
	for _, reg := range cases {
		if err := r.Register(reg); !errors.Is(err, ErrBadParam) {
			t.Errorf("Register(%+v) error = %v, want ErrBadParam", reg.Name, err)
		}
	}
}

func TestRegistryNamesOrderAndLookup(t *testing.T) {
	names := PolicyNames()
	// The first eight names are the legacy experiments.PolicyNames list in
	// its historical order; every pre-registry spelling must keep parsing.
	legacy := []string{"active", "opt-drowsy", "opt-sleep", "opt-hybrid",
		"sleep-decay", "periodic-drowsy", "prefetch-a", "prefetch-b"}
	if len(names) < len(legacy) {
		t.Fatalf("registry has %d schemes, want >= %d", len(names), len(legacy))
	}
	for i, want := range legacy {
		if names[i] != want {
			t.Errorf("PolicyNames()[%d] = %q, want %q", i, names[i], want)
		}
	}
	if len(names) < 8 {
		t.Errorf("acceptance: registry lists %d schemes, want >= 8", len(names))
	}
	for _, name := range names {
		reg, ok := DefaultRegistry().Lookup(name)
		if !ok {
			t.Errorf("Lookup(%q) missing", name)
			continue
		}
		if reg.Doc == "" {
			t.Errorf("scheme %q has no doc line", name)
		}
		if reg.Positional != "" {
			if _, ok := reg.Schema(reg.Positional); !ok {
				t.Errorf("scheme %q positional %q undeclared", name, reg.Positional)
			}
		}
	}
	if got := DefaultRegistry().Schemes(); len(got) != len(names) {
		t.Errorf("Schemes() has %d entries, Names() has %d", len(got), len(names))
	}
}

func TestParseSpecGrammar(t *testing.T) {
	r := DefaultRegistry()
	cases := []struct {
		in   string
		want PolicySpec
	}{
		{"active", PolicySpec{Scheme: "active"}},
		{"  OPT-Hybrid  ", PolicySpec{Scheme: "opt-hybrid"}},
		{"opt-sleep@8192", PolicySpec{Scheme: "opt-sleep", Params: Params{"theta": Uint(8192)}}},
		{"opt-sleep@theta=8192", PolicySpec{Scheme: "opt-sleep", Params: Params{"theta": Uint(8192)}}},
		{"OPT-SLEEP@THETA=8192", PolicySpec{Scheme: "opt-sleep", Params: Params{"theta": Uint(8192)}}},
		{"opt-sleep@18446744073709551615",
			PolicySpec{Scheme: "opt-sleep", Params: Params{"theta": Uint(math.MaxUint64)}}},
		{"coloring@colors=4,frames=512",
			PolicySpec{Scheme: "coloring", Params: Params{"colors": Uint(4), "frames": Uint(512)}}},
		{"waymemo@0.75", PolicySpec{Scheme: "waymemo", Params: Params{"accuracy": Float(0.75)}}},
		{"waymemo@accuracy=0.75", PolicySpec{Scheme: "waymemo", Params: Params{"accuracy": Float(0.75)}}},
		{"amc@theta=8000,tag-fraction=0.06",
			PolicySpec{Scheme: "amc", Params: Params{"theta": Uint(8000), "tag-fraction": Float(0.06)}}},
	}
	for _, c := range cases {
		got, err := r.ParseSpec(c.in)
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", c.in, err)
			continue
		}
		if !got.Equal(c.want) {
			t.Errorf("ParseSpec(%q) = %+v, want %+v", c.in, got, c.want)
		}
		// The canonical string form reparses to an equal spec.
		again, err := r.ParseSpec(got.String())
		if err != nil || !again.Equal(got) {
			t.Errorf("ParseSpec(String(%q)=%q) = %+v, %v; want %+v", c.in, got.String(), again, err, got)
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	r := DefaultRegistry()
	unknown := []string{"", "bogus", "bogus@5", "@123"}
	for _, in := range unknown {
		if _, err := r.ParseSpec(in); !errors.Is(err, ErrUnknownScheme) {
			t.Errorf("ParseSpec(%q) error = %v, want ErrUnknownScheme", in, err)
		}
	}
	badParam := []string{
		"active@5",                       // no positional parameter
		"opt-sleep@",                     // empty positional
		"opt-sleep@-1",                   // uints are non-negative
		"opt-sleep@0x10",                 // base-10 only
		"opt-sleep@18446744073709551616", // one past MaxUint64
		"opt-sleep@bogus=1",              // unknown key
		"opt-sleep@theta=1,theta=2",      // duplicate key
		"opt-sleep@theta",                // missing value: "theta" is not a uint
		"opt-sleep@=5",                   // empty key
		"waymemo@accuracy=zzz",           // bad float
		"coloring@colors=4,bogus=1",
	}
	for _, in := range badParam {
		if _, err := r.ParseSpec(in); !errors.Is(err, ErrBadParam) {
			t.Errorf("ParseSpec(%q) error = %v, want ErrBadParam", in, err)
		}
	}
}

func TestBuildDefaultsMatchLegacy(t *testing.T) {
	tech := power.Default()
	r := DefaultRegistry()
	_, b, err := tech.InflectionPoints()
	if err != nil {
		t.Fatal(err)
	}
	wantTheta := uint64(b + 0.5)

	pol, err := r.Build(PolicySpec{Scheme: "opt-sleep"}, tech)
	if err != nil {
		t.Fatal(err)
	}
	if got := pol.(OPTSleep).Theta; got != wantTheta {
		t.Errorf("opt-sleep default theta = %d, want inflection b = %d", got, wantTheta)
	}
	pol, err = r.Build(PolicySpec{Scheme: "opt-sleep", Params: Params{"theta": Uint(0)}}, tech)
	if err != nil {
		t.Fatal(err)
	}
	if got := pol.(OPTSleep).Theta; got != wantTheta {
		t.Errorf("opt-sleep@0 theta = %d, want inflection default %d", got, wantTheta)
	}
	pol, err = r.Build(PolicySpec{Scheme: "sleep-decay"}, tech)
	if err != nil {
		t.Fatal(err)
	}
	if got := pol.(SleepDecay).Theta; got != wantTheta {
		t.Errorf("sleep-decay default theta = %d, want %d", got, wantTheta)
	}
	pol, err = r.Build(PolicySpec{Scheme: "periodic-drowsy"}, tech)
	if err != nil {
		t.Fatal(err)
	}
	if got := pol.(PeriodicDrowsy).Window; got != 2000 {
		t.Errorf("periodic-drowsy default window = %d, want 2000", got)
	}
	pol, err = r.Build(PolicySpec{Scheme: "opt-hybrid"}, tech)
	if err != nil {
		t.Fatal(err)
	}
	if got := pol.(OPTHybrid).SleepTheta; got != 0 {
		t.Errorf("opt-hybrid default override = %d, want 0", got)
	}
	// MaxUint64 survives construction exactly.
	pol, err = r.Build(PolicySpec{Scheme: "opt-sleep",
		Params: Params{"theta": Uint(math.MaxUint64)}}, tech)
	if err != nil {
		t.Fatal(err)
	}
	if got := pol.(OPTSleep).Theta; got != math.MaxUint64 {
		t.Errorf("MaxUint64 theta = %d, lost exactness", got)
	}
}

func TestBuildValidationErrors(t *testing.T) {
	tech := power.Default()
	r := DefaultRegistry()
	if _, err := r.Build(PolicySpec{Scheme: "bogus"}, tech); !errors.Is(err, ErrUnknownScheme) {
		t.Errorf("unknown scheme error = %v, want ErrUnknownScheme", err)
	}
	bad := []PolicySpec{
		{Scheme: "opt-sleep", Params: Params{"bogus": Uint(1)}},
		{Scheme: "opt-sleep", Params: Params{"theta": Float(1.5)}},   // not integral
		{Scheme: "opt-sleep", Params: Params{"theta": Bool(true)}},   // wrong kind
		{Scheme: "waymemo", Params: Params{"accuracy": Float(1.5)}},  // out of range
		{Scheme: "waymemo", Params: Params{"accuracy": Float(-0.1)}}, // out of range
		{Scheme: "amc", Params: Params{"tag-fraction": Float(1)}},    // out of range
		{Scheme: "coloring", Params: Params{"colors": Uint(0)}},
		{Scheme: "coloring", Params: Params{"colors": Uint(64), "frames": Uint(4)}},
	}
	for _, spec := range bad {
		if _, err := r.Build(spec, tech); !errors.Is(err, ErrBadParam) {
			t.Errorf("Build(%v) error = %v, want ErrBadParam", spec, err)
		}
	}
	// Exact kind coercions are accepted: an integral float for a uint
	// parameter, a uint for a float parameter.
	pol, err := r.Build(PolicySpec{Scheme: "opt-sleep", Params: Params{"theta": Float(8192)}}, tech)
	if err != nil || pol.(OPTSleep).Theta != 8192 {
		t.Errorf("integral float theta: %v, %v", pol, err)
	}
	pol, err = r.Build(PolicySpec{Scheme: "waymemo", Params: Params{"accuracy": Uint(1)}}, tech)
	if err != nil || pol.(WayMemo).Accuracy != 1 {
		t.Errorf("uint accuracy: %v, %v", pol, err)
	}
}

func TestPolicySpecJSON(t *testing.T) {
	spec := PolicySpec{Scheme: "coloring", Params: Params{"colors": Uint(4), "frames": Uint(512)}}
	b, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Map keys marshal sorted, so the encoding is deterministic.
	want := `{"scheme":"coloring","params":{"colors":4,"frames":512}}`
	if string(b) != want {
		t.Errorf("Marshal = %s, want %s", b, want)
	}
	var back PolicySpec
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !back.Equal(spec) {
		t.Errorf("roundtrip = %+v, want %+v", back, spec)
	}
	// Numeric kinds: integers decode as uints, decimals as floats, and
	// MaxUint64 survives exactly.
	var v ParamValue
	if err := json.Unmarshal([]byte("18446744073709551615"), &v); err != nil {
		t.Fatal(err)
	}
	if u, ok := v.AsUint(); !ok || u != math.MaxUint64 {
		t.Errorf("MaxUint64 JSON roundtrip = %v, %v", u, ok)
	}
	if err := json.Unmarshal([]byte("0.75"), &v); err != nil {
		t.Fatal(err)
	}
	if f, ok := v.AsFloat(); !ok || f != 0.75 || v.Kind() != FloatParam {
		t.Errorf("float JSON = %v (%v)", f, v.Kind())
	}
	if err := json.Unmarshal([]byte("true"), &v); err != nil {
		t.Fatal(err)
	}
	if b, ok := v.AsBool(); !ok || !b {
		t.Error("bool JSON decode failed")
	}
	if err := json.Unmarshal([]byte(`"opt-sleep"`), &v); err == nil {
		t.Error("string parameter value accepted")
	}
	// Schemas marshal their kind as a readable name.
	sb, err := json.Marshal(ParamSchema{Name: "theta", Kind: UintParam, Doc: "d"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(sb), `"kind":"uint"`) {
		t.Errorf("schema kind encoding = %s", sb)
	}
}

func TestBuiltinsEvaluateAndModelMisses(t *testing.T) {
	tech := power.Default()
	d := interval.NewDistribution(4, 200000)
	// Interior intervals across the regimes, plus prefetchable and edge
	// cases, with the conservation invariant satisfied by edge gaps.
	add := func(length uint64, flags interval.Flags, count uint64) {
		d.Add(length, flags, count)
	}
	add(5, 0, 10)
	add(500, 0, 3)
	add(50000, 0, 2)
	add(150000, interval.NLPrefetchable, 1)
	add(20000, interval.StridePrefetchable, 2)
	add(100000, interval.Leading, 1)
	add(38450, interval.Trailing, 1)
	add(200000, interval.Untouched, 1)
	rest := uint64(4*200000) - d.Mass()
	add(rest, interval.Leading, 1)

	for _, reg := range DefaultRegistry().Schemes() {
		pol, err := DefaultRegistry().Build(PolicySpec{Scheme: reg.Name}, tech)
		if err != nil {
			t.Errorf("Build(%s): %v", reg.Name, err)
			continue
		}
		ev, err := Evaluate(tech, d, pol)
		if err != nil {
			t.Errorf("Evaluate(%s): %v", reg.Name, err)
			continue
		}
		if math.IsNaN(ev.Savings) || ev.Savings > 1 {
			t.Errorf("%s savings = %v", reg.Name, ev.Savings)
		}
		// Every builtin reports induced misses for the Pareto axis.
		rate, err := InducedMissRate(tech, d, pol)
		if err != nil {
			t.Errorf("InducedMissRate(%s): %v", reg.Name, err)
			continue
		}
		if rate < 0 || math.IsNaN(rate) {
			t.Errorf("%s miss rate = %v", reg.Name, rate)
		}
	}
	// The drowsy-only schemes never induce a miss; the sleep oracles do on
	// this distribution.
	for _, name := range []string{"active", "opt-drowsy", "periodic-drowsy"} {
		pol, _ := DefaultRegistry().Build(PolicySpec{Scheme: name}, tech)
		if rate, _ := InducedMissRate(tech, d, pol); rate != 0 {
			t.Errorf("%s induced miss rate = %v, want 0", name, rate)
		}
	}
	for _, name := range []string{"opt-sleep", "opt-hybrid", "sleep-decay"} {
		pol, _ := DefaultRegistry().Build(PolicySpec{Scheme: name}, tech)
		if rate, _ := InducedMissRate(tech, d, pol); rate <= 0 {
			t.Errorf("%s induced miss rate = %v, want > 0", name, rate)
		}
	}
	// No miss model: a custom policy outside the builtins.
	if _, err := InducedMisses(tech, d, stubPolicy{}); !errors.Is(err, ErrNoMissModel) {
		t.Errorf("no-miss-model error = %v, want ErrNoMissModel", err)
	}
}

// stubPolicy is a registry-less policy without a MissModel.
type stubPolicy struct{}

func (stubPolicy) Name() string { return "stub" }
func (stubPolicy) IntervalEnergy(t power.Technology, length uint64, _ interval.Flags) float64 {
	return t.ActiveEnergy(float64(length))
}

func TestColoringAndWayMemoSemantics(t *testing.T) {
	tech := power.Default()
	_, b, err := tech.InflectionPoints()
	if err != nil {
		t.Fatal(err)
	}
	// Coloring with one frame per color behaves like OPT-Sleep at b for
	// interior intervals.
	fine := Coloring{Colors: 64, Frames: 64}
	opt := OPTSleep{Theta: uint64(b + 0.5)}
	for _, L := range []uint64{100, 2000, 50000} {
		got := fine.IntervalEnergy(tech, L, 0)
		want := opt.IntervalEnergy(tech, L, 0)
		if math.Abs(got-want) > 1e-9*math.Max(1, want) {
			t.Errorf("fine coloring at L=%d: %g, OPT-Sleep(b): %g", L, got, want)
		}
	}
	// Coarser regions gate strictly less: energy is monotone in colors.
	coarse := Coloring{Colors: 2, Frames: 1024}
	mid := Coloring{Colors: 64, Frames: 1024}
	L := uint64(40000)
	if !(coarse.IntervalEnergy(tech, L, 0) >= mid.IntervalEnergy(tech, L, 0)) {
		t.Error("coarser coloring gated an interval a finer one did not")
	}
	// WayMemo at accuracy 1 equals Prefetch-A everywhere.
	wm := WayMemo{Accuracy: 1}
	pa := PrefetchA()
	for _, c := range []struct {
		L     uint64
		flags interval.Flags
	}{
		{50000, interval.NLPrefetchable},
		{2000, interval.StridePrefetchable},
		{50000, 0},
		{100, interval.NLPrefetchable},
		{50000, interval.Leading},
		{50000, interval.Trailing | interval.NLPrefetchable},
	} {
		got := wm.IntervalEnergy(tech, c.L, c.flags)
		want := pa.IntervalEnergy(tech, c.L, c.flags)
		if got != want {
			t.Errorf("WayMemo(1) at L=%d flags=%v: %g, Prefetch-A: %g", c.L, c.flags, got, want)
		}
	}
	// Lower accuracy costs more on slept predicted intervals, by exactly
	// the mispredict share of CD.
	lo := WayMemo{Accuracy: 0.5}
	gotLo := lo.IntervalEnergy(tech, 50000, interval.NLPrefetchable)
	gotHi := wm.IntervalEnergy(tech, 50000, interval.NLPrefetchable)
	if math.Abs((gotLo-gotHi)-0.5*tech.CD) > 1e-9 {
		t.Errorf("mispredict penalty = %g, want %g", gotLo-gotHi, 0.5*tech.CD)
	}
}
