package leakage

// The aggregate evaluation kernel: Evaluate's fast path over
// interval.Aggregates. A policy with a ClosedForm answers one sweep point
// in O(flags-classes x log buckets) — per class, each affine piece of the
// curve costs one binary search into the prefix arrays — instead of the
// reference path's full walk over every (length, flags) bucket. Policies
// without a closed form (custom registry schemes with no declared
// threshold structure) transparently fall back to the reference walk over
// Aggregates.Source(), so EvaluateAggregate is safe to call with any
// policy.
//
// Determinism: classes fold in ascending flags order and pieces in
// ascending length order, so a given (technology, aggregates, policy)
// triple always produces bit-identical output. Against the reference
// path the values agree to ulp-scale relative error (the prefix sums are
// exact uint64; only the float regrouping differs) — pinned by
// TestEvaluateAggregateMatchesReference and FuzzEvaluateFastPath.

import (
	"fmt"

	"leakbound/internal/interval"
	"leakbound/internal/power"
)

// evalCurveOverClass folds one piecewise-affine curve over one flags
// class: sum over pieces of const*count + slope*mass of the lengths the
// piece covers, via prefix differences.
func evalCurveOverClass(c Curve, cls *interval.FlagsClass) float64 {
	var total float64
	var prevCount, prevMass uint64
	for i := 0; i < len(c.Consts); i++ {
		var count, mass uint64
		if i < len(c.Cuts) {
			count, mass = cls.Prefix(c.Cuts[i])
		} else {
			count, mass = cls.TotalCount(), cls.TotalMass()
		}
		if dc, dm := count-prevCount, mass-prevMass; dc != 0 || dm != 0 {
			total += c.Consts[i]*float64(dc) + c.Slopes[i]*float64(dm)
		}
		prevCount, prevMass = count, mass
	}
	return total
}

// EvaluateAggregate evaluates one policy over a prefix-aggregated
// distribution, with the same validation, error identities, and result
// semantics as Evaluate. It uses the closed-form fast path when the
// policy declares one and falls back to the reference bucket walk over
// agg.Source() otherwise.
//
//lint:hotpath entry
func EvaluateAggregate(t power.Technology, agg *interval.Aggregates, p Policy) (Evaluation, error) {
	if err := t.Validate(); err != nil {
		return Evaluation{}, err
	}
	if agg == nil {
		return Evaluation{}, ErrNilDistribution
	}
	if p == nil {
		return Evaluation{}, ErrNilPolicy
	}
	cf, ok := p.(ClosedForm)
	if !ok {
		//lint:ignore hotalloc policies without a closed form take the audited reference walk; no builtin policy hits this
		return Evaluate(t, agg.Source(), p)
	}
	baseline := t.PActive * float64(agg.Mass())
	if baseline == 0 {
		return Evaluation{}, fmt.Errorf("%w: zero mass", ErrEmptyDistribution)
	}
	var energy float64
	for i := range agg.Classes() {
		cls := &agg.Classes()[i]
		//lint:ignore hotalloc one virtual EnergyCurve dispatch per flags class (≤64), amortized over the whole curve
		curve, ok := cf.EnergyCurve(t, cls.Flags)
		if !ok {
			// No closed form for this flags class: the whole evaluation
			// falls back, never a mixed fast/reference sum.
			//lint:ignore hotalloc a class without a curve sends the whole evaluation down the audited reference walk
			return Evaluate(t, agg.Source(), p)
		}
		energy += evalCurveOverClass(curve, cls)
	}
	return Evaluation{
		//lint:ignore hotalloc one Name dispatch per evaluation to stamp the result
		Policy:   p.Name(),
		Energy:   energy,
		Baseline: baseline,
		Savings:  1 - energy/baseline,
	}, nil
}

// EvaluateMany answers a whole policy list against one aggregated
// distribution — the batched inner loop of the dense sweeps and the
// Pareto population. Results are indexed like policies; errors carry the
// failing policy's name, matching EvaluateAll.
//
//lint:hotpath entry
func EvaluateMany(t power.Technology, agg *interval.Aggregates, ps []Policy) ([]Evaluation, error) {
	out := make([]Evaluation, len(ps))
	for i, p := range ps {
		ev, err := EvaluateAggregate(t, agg, p)
		if err != nil {
			return nil, fmt.Errorf("leakage: evaluating %s: %w", p.Name(), err)
		}
		out[i] = ev
	}
	return out, nil
}

// InducedMissesAggregate is InducedMisses over aggregates: the total
// expected induced re-fetches via the policy's MissClosedForm, with the
// same fallback and error identities as the reference fold.
func InducedMissesAggregate(t power.Technology, agg *interval.Aggregates, p Policy) (float64, error) {
	if err := t.Validate(); err != nil {
		return 0, err
	}
	if agg == nil {
		return 0, ErrNilDistribution
	}
	if p == nil {
		return 0, ErrNilPolicy
	}
	if _, ok := p.(MissModel); !ok {
		return 0, fmt.Errorf("%w: %s", ErrNoMissModel, p.Name())
	}
	mc, ok := p.(MissClosedForm)
	if !ok {
		return InducedMisses(t, agg.Source(), p)
	}
	var total float64
	for i := range agg.Classes() {
		cls := &agg.Classes()[i]
		curve, ok := mc.MissCurve(t, cls.Flags)
		if !ok {
			return InducedMisses(t, agg.Source(), p)
		}
		total += evalCurveOverClass(curve, cls)
	}
	return total, nil
}

// InducedMissRateAggregate is InducedMissRate over aggregates: induced
// re-fetches per 1000 intervals.
func InducedMissRateAggregate(t power.Technology, agg *interval.Aggregates, p Policy) (float64, error) {
	misses, err := InducedMissesAggregate(t, agg, p)
	if err != nil {
		return 0, err
	}
	n := agg.NumIntervals()
	if n == 0 {
		return 0, fmt.Errorf("%w: no intervals", ErrEmptyDistribution)
	}
	return misses * 1000 / float64(n), nil
}
