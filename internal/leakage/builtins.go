package leakage

// The built-in registrations: the six paper policies of Figure 8, the
// related-work baselines of Section 2, the oracle refinements, and the
// two related-work technique families (cache coloring, way memoization).
// Registration order is presentation order — the first eight names match
// the legacy experiments.PolicyNames list, so every pre-registry spelling
// keeps meaning exactly what it meant.
//
// Factories replicate the legacy defaults bit for bit: a zero or absent
// theta means "the technology's drowsy-sleep inflection point b" for
// opt-sleep and sleep-decay (the paper's own default), zero for
// opt-hybrid's override (i.e. use b), and 2000 cycles for
// periodic-drowsy's window. Every factory returns the concrete policy
// type, so the evaluation grid's inner loop devirtualizes exactly as it
// did when the policies were constructed by hand.

import (
	"fmt"

	"leakbound/internal/power"
)

// defaultRegistry holds the built-in schemes; see DefaultRegistry.
var defaultRegistry = newBuiltinRegistry()

// inflectionTheta resolves the "0 means inflection point b" default shared
// by the sleep-threshold schemes.
func inflectionTheta(t power.Technology, theta uint64) (uint64, error) {
	if theta > 0 {
		return theta, nil
	}
	_, b, err := t.InflectionPoints()
	if err != nil {
		return 0, err
	}
	return uint64(b + 0.5), nil
}

// thetaSchema declares the common sleep-threshold parameter.
func thetaSchema(doc, def string) ParamSchema {
	return ParamSchema{Name: "theta", Kind: UintParam, Doc: doc, Default: def}
}

func newBuiltinRegistry() *Registry {
	r := NewRegistry()
	r.MustRegister(Registration{
		Name: "active",
		Doc:  "always-active baseline: no power management at all",
		Factory: func(power.Technology, Params) (Policy, error) {
			return AlwaysActive{}, nil
		},
	})
	r.MustRegister(Registration{
		Name: "opt-drowsy",
		Doc:  "optimal drowsy-only cache: every interval past the active-drowsy point drowses, just-in-time wakeup",
		Factory: func(power.Technology, Params) (Policy, error) {
			return OPTDrowsy{}, nil
		},
	})
	r.MustRegister(Registration{
		Name:       "opt-sleep",
		Doc:        "optimal sleep-only cache: intervals longer than theta are gated and re-fetched just in time",
		Positional: "theta",
		Params: []ParamSchema{
			thetaSchema("minimum interval length put to sleep, in cycles", "drowsy-sleep inflection point b"),
		},
		Factory: func(t power.Technology, p Params) (Policy, error) {
			theta, _ := p.Uint("theta")
			th, err := inflectionTheta(t, theta)
			if err != nil {
				return nil, err
			}
			return OPTSleep{Theta: th}, nil
		},
	})
	r.MustRegister(Registration{
		Name:       "opt-hybrid",
		Doc:        "optimal three-mode cache: active/drowsy/sleep split at the inflection points (the paper's bound)",
		Positional: "theta",
		Params: []ParamSchema{
			thetaSchema("sleep threshold override; 0 uses the inflection point b", "drowsy-sleep inflection point b"),
		},
		Factory: func(_ power.Technology, p Params) (Policy, error) {
			theta, _ := p.Uint("theta")
			return OPTHybrid{SleepTheta: theta}, nil
		},
	})
	r.MustRegister(Registration{
		Name:       "sleep-decay",
		Doc:        "cache decay (Kaxiras et al.): gate a line theta cycles after its last access, pay the induced miss",
		Positional: "theta",
		Params: []ParamSchema{
			thetaSchema("decay interval in cycles", "drowsy-sleep inflection point b"),
		},
		Factory: func(t power.Technology, p Params) (Policy, error) {
			theta, _ := p.Uint("theta")
			th, err := inflectionTheta(t, theta)
			if err != nil {
				return nil, err
			}
			return SleepDecay{Theta: th}, nil
		},
	})
	r.MustRegister(Registration{
		Name:       "periodic-drowsy",
		Doc:        "drowsy cache (Kim/Flautner et al.): all lines drop to retention voltage every window cycles",
		Positional: "window",
		Params: []ParamSchema{
			{Name: "window", Kind: UintParam, Doc: "drowse period in cycles", Default: "2000"},
		},
		Factory: func(_ power.Technology, p Params) (Policy, error) {
			window, _ := p.Uint("window")
			if window == 0 {
				window = 2000
			}
			return PeriodicDrowsy{Window: window}, nil
		},
	})
	r.MustRegister(Registration{
		Name: "prefetch-a",
		Doc:  "prefetch-guided, performance-biased: predicted intervals get the optimal mode, the rest stay active",
		Factory: func(power.Technology, Params) (Policy, error) {
			return PrefetchA(), nil
		},
	})
	r.MustRegister(Registration{
		Name: "prefetch-b",
		Doc:  "prefetch-guided, power-biased: like prefetch-a but non-predicted intervals drowse past the active-drowsy point",
		Factory: func(power.Technology, Params) (Policy, error) {
			return PrefetchB(), nil
		},
	})
	r.MustRegister(Registration{
		Name:       "amc",
		Doc:        "adaptive mode control (Zhou et al.): decay-gated data array, tag array stays powered to observe would-be hits",
		Positional: "theta",
		Params: []ParamSchema{
			thetaSchema("turn-off interval in cycles", "drowsy-sleep inflection point b"),
			{Name: "tag-fraction", Kind: FloatParam,
				Doc: "share of per-line leakage in the always-on tag array, in [0, 1)", Default: "0.06"},
		},
		Factory: func(t power.Technology, p Params) (Policy, error) {
			theta, _ := p.Uint("theta")
			th, err := inflectionTheta(t, theta)
			if err != nil {
				return nil, err
			}
			tagFraction, ok := p.Float("tag-fraction")
			if !ok {
				tagFraction = 0.06
			}
			if tagFraction < 0 || tagFraction >= 1 {
				return nil, fmt.Errorf("%w: tag-fraction %g outside [0, 1)", ErrBadParam, tagFraction)
			}
			return AMCSleep{Theta: th, TagFraction: tagFraction}, nil
		},
	})
	r.MustRegister(Registration{
		Name:    "opt-hybrid-wb",
		Doc:     "write-back-aware hybrid oracle: dirty intervals use the later crossover b + WB/(Pdrowsy-Psleep)",
		Refines: "opt-hybrid",
		Factory: func(power.Technology, Params) (Policy, error) {
			return DirtyAwareHybrid{}, nil
		},
	})
	r.MustRegister(Registration{
		Name:    "opt-hybrid-dead",
		Doc:     "live/dead-aware hybrid oracle: dead-ending intervals gate without the induced-miss re-fetch",
		Refines: "opt-hybrid",
		Factory: func(power.Technology, Params) (Policy, error) {
			return DeadAwareHybrid{}, nil
		},
	})
	r.MustRegister(Registration{
		Name:       "coloring",
		Doc:        "cache-coloring region gating (Mittal, arXiv:1309.5647): cold colors of frames/colors frames gated wholesale",
		Positional: "colors",
		Params: []ParamSchema{
			{Name: "colors", Kind: UintParam, Doc: "number of color regions, >= 1", Default: "8"},
			{Name: "frames", Kind: UintParam, Doc: "number of cache frames partitioned, >= colors",
				Default: fmt.Sprintf("%d (the study's 64KB L1)", DefaultColoringFrames)},
		},
		Factory: func(_ power.Technology, p Params) (Policy, error) {
			colors, ok := p.Uint("colors")
			if !ok {
				colors = 8
			}
			frames, ok := p.Uint("frames")
			if !ok {
				frames = DefaultColoringFrames
			}
			if colors == 0 {
				return nil, fmt.Errorf("%w: colors must be >= 1", ErrBadParam)
			}
			if frames < colors {
				return nil, fmt.Errorf("%w: frames %d < colors %d", ErrBadParam, frames, colors)
			}
			return Coloring{Colors: colors, Frames: frames}, nil
		},
	})
	r.MustRegister(Registration{
		Name:       "waymemo",
		Doc:        "way memoization (Ishihara & Fallah, arXiv:0710.4703): predicted frames pre-woken, mispredicts charged as induced misses",
		Positional: "accuracy",
		Params: []ParamSchema{
			{Name: "accuracy", Kind: FloatParam, Doc: "memo prediction accuracy, in [0, 1]",
				Default: fmt.Sprintf("%g", DefaultWayMemoAccuracy)},
		},
		Factory: func(_ power.Technology, p Params) (Policy, error) {
			accuracy, ok := p.Float("accuracy")
			if !ok {
				accuracy = DefaultWayMemoAccuracy
			}
			if accuracy < 0 || accuracy > 1 {
				return nil, fmt.Errorf("%w: accuracy %g outside [0, 1]", ErrBadParam, accuracy)
			}
			return WayMemo{Accuracy: accuracy}, nil
		},
	})
	return r
}
