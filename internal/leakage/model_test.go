package leakage

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"leakbound/internal/power"
)

func TestNewModelMatchesTechnology(t *testing.T) {
	// The Figure 6 model built from a technology node must agree with the
	// closed-form equations in internal/power for every mode and length.
	for _, tech := range power.Technologies() {
		m := NewModel(tech)
		if err := m.Validate(); err != nil {
			t.Fatalf("%s: %v", tech.Name, err)
		}
		for _, L := range []float64{6, 7, 37, 50, 1057, 5000, 1e6} {
			if got, want := m.IntervalEnergy(L, Active), tech.ActiveEnergy(L); math.Abs(got-want) > 1e-9 {
				t.Errorf("%s: active(%g) = %g, want %g", tech.Name, L, got, want)
			}
			if L >= float64(tech.Durations.DrowsyOverhead()) {
				if got, want := m.IntervalEnergy(L, Drowsy), tech.DrowsyEnergy(L); math.Abs(got-want) > 1e-9 {
					t.Errorf("%s: drowsy(%g) = %g, want %g", tech.Name, L, got, want)
				}
			}
			if L >= float64(tech.Durations.SleepOverhead()) {
				if got, want := m.IntervalEnergy(L, Sleep), tech.SleepEnergy(L); math.Abs(got-want) > 1e-9 {
					t.Errorf("%s: sleep(%g) = %g, want %g", tech.Name, L, got, want)
				}
			}
		}
	}
}

func TestModelInflectionMatchesTechnology(t *testing.T) {
	for _, tech := range power.Technologies() {
		m := NewModel(tech)
		ma, mb, err := m.InflectionPoints()
		if err != nil {
			t.Fatalf("%s: %v", tech.Name, err)
		}
		ta, tb, err := tech.InflectionPoints()
		if err != nil {
			t.Fatalf("%s: %v", tech.Name, err)
		}
		if math.Abs(ma-ta) > 1e-9 || math.Abs(mb-tb) > 1e-6 {
			t.Errorf("%s: model inflections (%g, %g) != technology (%g, %g)",
				tech.Name, ma, mb, ta, tb)
		}
	}
}

func TestModelInfeasibleIsInf(t *testing.T) {
	m := NewModel(power.Default())
	if !math.IsInf(m.IntervalEnergy(5, Drowsy), 1) {
		t.Error("drowsy on 5-cycle interval not +Inf")
	}
	if !math.IsInf(m.IntervalEnergy(20, Sleep), 1) {
		t.Error("sleep on 20-cycle interval not +Inf")
	}
	if !math.IsInf(m.IntervalEnergy(100, Mode(9)), 1) {
		t.Error("bad mode not +Inf")
	}
}

func TestModelOptimalModeMatchesRegimes(t *testing.T) {
	tech := power.Default()
	m := NewModel(tech)
	_, b, err := m.InflectionPoints()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		L    float64
		want Mode
	}{
		{3, Active}, {6, Active}, {10, Drowsy}, {b - 1, Drowsy}, {b + 2, Sleep}, {1e7, Sleep},
	}
	for _, c := range cases {
		if got := m.OptimalMode(c.L); got != c.want {
			t.Errorf("OptimalMode(%g) = %v, want %v", c.L, got, c.want)
		}
	}
}

func TestModelValidateRejects(t *testing.T) {
	good := NewModel(power.Default())
	bad := good
	bad.P[Active] = 0
	if bad.Validate() == nil {
		t.Error("zero active power accepted")
	}
	bad = good
	bad.P[Drowsy] = bad.P[Sleep]
	if bad.Validate() == nil {
		t.Error("unordered powers accepted")
	}
	bad = good
	bad.E[Active][Active] = 1
	if bad.Validate() == nil {
		t.Error("self-edge energy accepted")
	}
	bad = good
	bad.E[Active][Sleep] = -1
	if bad.Validate() == nil {
		t.Error("negative edge accepted")
	}
	bad = good
	bad.CD = -1
	if bad.Validate() == nil {
		t.Error("negative CD accepted")
	}
}

func TestEnvelopeSeries(t *testing.T) {
	m := NewModel(power.Default())
	pts := m.EnvelopeSeries([]float64{3, 100, 5000})
	if len(pts) != 3 {
		t.Fatalf("series len = %d", len(pts))
	}
	if pts[0].Best != Active || pts[1].Best != Drowsy || pts[2].Best != Sleep {
		t.Errorf("bests = %v %v %v", pts[0].Best, pts[1].Best, pts[2].Best)
	}
	for _, p := range pts {
		if p.Minimum > p.Active+1e-9 {
			t.Errorf("envelope above active at %g", p.Length)
		}
		if p.Minimum != m.Envelope(p.Length) {
			t.Errorf("Minimum != Envelope at %g", p.Length)
		}
	}
}

// TestEnvelopeMonotone: Figure 10 derivation 1 — the lower envelope is
// continuous and monotonically increasing in interval length.
func TestEnvelopeMonotone(t *testing.T) {
	for _, tech := range power.Technologies() {
		m := NewModel(tech)
		prev := 0.0
		for L := 1.0; L < 2e5; L *= 1.07 {
			e := m.Envelope(L)
			if e < prev-1e-9 {
				t.Fatalf("%s: envelope decreased at L=%g: %g -> %g", tech.Name, L, prev, e)
			}
			prev = e
		}
	}
}

// TestTheoremProperty: the appendix's Theorem 1 — no per-interval mode
// assignment beats the inflection-point assignment, over random interval
// sets and random assignments.
func TestTheoremProperty(t *testing.T) {
	techs := power.Technologies()
	f := func(seed int64, techIdx uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tech := techs[int(techIdx)%len(techs)]
		n := rng.Intn(40) + 1
		intervals := make([]uint64, n)
		for i := range intervals {
			// Mix tiny, mid, and huge intervals.
			switch rng.Intn(3) {
			case 0:
				intervals[i] = uint64(rng.Intn(10) + 1)
			case 1:
				intervals[i] = uint64(rng.Intn(2000) + 1)
			default:
				intervals[i] = uint64(rng.Intn(3_000_000) + 1)
			}
		}
		alt := make(Assignment, n)
		for i := range alt {
			alt[i] = Mode(rng.Intn(3))
		}
		opt, altE, err := VerifyTheorem(tech, intervals, alt)
		if err != nil {
			return false
		}
		return opt <= altE+1e-9*math.Max(1, altE)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFigure5MatchesAssignment(t *testing.T) {
	// The Figure 5 accumulation (savings form) must equal
	// baseline - optimal assignment energy.
	tech := power.Default()
	intervals := []uint64{3, 6, 7, 500, 1057, 1058, 40000, 2_000_000}
	saving, err := OptimalLeakageSaving(tech, intervals)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := OptimalAssignment(tech, intervals)
	if err != nil {
		t.Fatal(err)
	}
	optE, err := AssignmentEnergy(tech, intervals, opt)
	if err != nil {
		t.Fatal(err)
	}
	var baseline float64
	for _, li := range intervals {
		baseline += tech.ActiveEnergy(float64(li))
	}
	if math.Abs(saving-(baseline-optE)) > 1e-6 {
		t.Errorf("Figure 5 saving %g != baseline-optimal %g", saving, baseline-optE)
	}
	if saving <= 0 {
		t.Error("no saving on a mixed interval set")
	}
}

func TestAssignmentEnergyMismatch(t *testing.T) {
	tech := power.Default()
	if _, err := AssignmentEnergy(tech, []uint64{1, 2}, Assignment{Active}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestAssignmentInfeasibleFallsBack(t *testing.T) {
	// Assigning sleep to a 3-cycle interval must cost active energy, not
	// error out or under-count.
	tech := power.Default()
	e, err := AssignmentEnergy(tech, []uint64{3}, Assignment{Sleep})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e-tech.ActiveEnergy(3)) > 1e-12 {
		t.Errorf("infeasible assignment energy = %g, want active %g", e, tech.ActiveEnergy(3))
	}
}

func BenchmarkEvaluateHybrid(b *testing.B) {
	tech := power.Default()
	d := distOf(1024, 1<<21)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50000; i++ {
		d.Add(uint64(rng.Intn(100000)+1), 0, uint64(rng.Intn(5)+1))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Evaluate(tech, d, OPTHybrid{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkModelEnvelope(b *testing.B) {
	m := NewModel(power.Default())
	for i := 0; i < b.N; i++ {
		m.Envelope(float64(i%100000 + 1))
	}
}
