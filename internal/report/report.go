// Package report renders experiment results as aligned ASCII tables, CSV,
// and simple line series, so each experiment runner can print exactly the
// rows the paper's tables and figures show.
package report

import (
	"errors"
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned table with a title.
type Table struct {
	Title   string     `json:"title"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
}

// errNoColumns reports a render of a table with no columns.
var errNoColumns = errors.New("report: table has no columns")

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; it errors if the arity does not match the headers.
func (t *Table) AddRow(cells ...string) error {
	if len(cells) != len(t.Headers) {
		return fmt.Errorf("report: row has %d cells, table has %d columns", len(cells), len(t.Headers))
	}
	t.Rows = append(t.Rows, cells)
	return nil
}

// MustAddRow is AddRow that panics; for fixed-shape experiment output.
func (t *Table) MustAddRow(cells ...string) {
	if err := t.AddRow(cells...); err != nil {
		panic(err)
	}
}

// widths returns per-column display widths.
func (t *Table) widths() []int {
	w := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		w[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > w[i] {
				w[i] = len(c)
			}
		}
	}
	return w
}

// Render writes the table as aligned ASCII.
func (t *Table) Render(w io.Writer) error {
	if len(t.Headers) == 0 {
		return errNoColumns
	}
	widths := t.widths()
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		// Trim trailing spaces for clean diffs.
		s := b.String()
		b.Reset()
		b.WriteString(strings.TrimRight(s, " "))
		b.WriteByte('\n')
		_, _ = io.WriteString(w, b.String())
		b.Reset()
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	return nil
}

// String renders to a string, for tests and logs.
func (t *Table) String() string {
	var b strings.Builder
	if err := t.Render(&b); err != nil {
		return "report: " + err.Error()
	}
	return b.String()
}

// RenderCSV writes the table as RFC-4180-ish CSV (quoting cells that need
// it).
func (t *Table) RenderCSV(w io.Writer) error {
	if len(t.Headers) == 0 {
		return errNoColumns
	}
	writeRow := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			parts[i] = c
		}
		_, err := io.WriteString(w, strings.Join(parts, ",")+"\n")
		return err
	}
	if err := writeRow(t.Headers); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// Pct formats a fraction as the paper quotes percentages ("96.4%").
func Pct(frac float64) string { return fmt.Sprintf("%.1f%%", frac*100) }

// F formats a float compactly.
func F(v float64) string { return fmt.Sprintf("%.4g", v) }

// Series is a named sequence of (x, y) points — one line of a figure.
type Series struct {
	Name string    `json:"name"`
	X    []float64 `json:"x"`
	Y    []float64 `json:"y"`
}

// Add appends one point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Validate checks the series is well formed.
func (s *Series) Validate() error {
	if len(s.X) != len(s.Y) {
		return fmt.Errorf("report: series %q has %d x vs %d y", s.Name, len(s.X), len(s.Y))
	}
	return nil
}

// RenderSeries writes several series sharing an x-axis as a table: one x
// column, one column per series. All series must have identical X vectors.
func RenderSeries(w io.Writer, title, xLabel string, series ...*Series) error {
	if len(series) == 0 {
		return errors.New("report: no series")
	}
	for _, s := range series {
		if err := s.Validate(); err != nil {
			return err
		}
		if len(s.X) != len(series[0].X) {
			return fmt.Errorf("report: series %q length %d differs from %q length %d",
				s.Name, len(s.X), series[0].Name, len(series[0].X))
		}
		for i := range s.X {
			if s.X[i] != series[0].X[i] {
				return fmt.Errorf("report: series %q x-axis diverges at %d", s.Name, i)
			}
		}
	}
	headers := make([]string, 0, len(series)+1)
	headers = append(headers, xLabel)
	for _, s := range series {
		headers = append(headers, s.Name)
	}
	t := NewTable(title, headers...)
	for i := range series[0].X {
		row := make([]string, 0, len(headers))
		row = append(row, F(series[0].X[i]))
		for _, s := range series {
			row = append(row, Pct(s.Y[i]))
		}
		if err := t.AddRow(row...); err != nil {
			return err
		}
	}
	return t.Render(w)
}

// RenderMarkdown writes the table as a GitHub-flavored markdown table; the
// experiment binary uses it to emit results files that diff cleanly.
func (t *Table) RenderMarkdown(w io.Writer) error {
	if len(t.Headers) == 0 {
		return errNoColumns
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString("### ")
		b.WriteString(t.Title)
		b.WriteString("\n\n")
	}
	writeRow := func(cells []string) {
		b.WriteString("| ")
		for i, c := range cells {
			if i > 0 {
				b.WriteString(" | ")
			}
			b.WriteString(strings.ReplaceAll(c, "|", "\\|"))
		}
		b.WriteString(" |\n")
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = "---"
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	b.WriteString("\n")
	_, err := io.WriteString(w, b.String())
	return err
}
