package report

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestRenderJSONRoundTrip(t *testing.T) {
	tbl := &Table{
		Title:   "Demo",
		Headers: []string{"Benchmark", "Savings"},
		Rows: [][]string{
			{"gzip", "0.98"},
			{"mesa", "0.97"},
		},
	}
	var b strings.Builder
	if err := tbl.RenderJSON(&b); err != nil {
		t.Fatal(err)
	}
	var got Table
	if err := json.Unmarshal([]byte(b.String()), &got); err != nil {
		t.Fatalf("RenderJSON output does not parse: %v", err)
	}
	if got.Title != tbl.Title || len(got.Rows) != 2 || got.Rows[1][0] != "mesa" {
		t.Errorf("round trip lost data: %+v", got)
	}
	bs, err := tbl.JSONBytes()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(string(bs), "\n") {
		t.Error("JSONBytes output not newline-terminated")
	}
	bs2, _ := tbl.JSONBytes()
	if string(bs) != string(bs2) {
		t.Error("JSONBytes not deterministic")
	}
}

func TestRenderJSONRejectsEmptyTable(t *testing.T) {
	var b strings.Builder
	if err := (&Table{Title: "Empty"}).RenderJSON(&b); err == nil {
		t.Error("RenderJSON accepted a table with no columns")
	}
	if _, err := (&Table{}).JSONBytes(); err == nil {
		t.Error("JSONBytes accepted a table with no columns")
	}
}
