package report

// JSON rendering for the serving layer (cmd/leakaged): the same tables
// and series the CLIs print as text are marshaled deterministically, so
// HTTP responses can be byte-compared, cached, and ETagged.

import (
	"encoding/json"
	"io"
)

// RenderJSON writes the table as a JSON document {title, headers, rows}.
// The encoding is deterministic for a given table, so repeated renders of
// the same result are byte-identical (the property the server's ETag and
// result cache rely on).
func (t *Table) RenderJSON(w io.Writer) error {
	if len(t.Headers) == 0 {
		return errNoColumns
	}
	enc := json.NewEncoder(w)
	return enc.Encode(t)
}

// JSONBytes marshals the table to a single newline-terminated JSON line —
// the same bytes RenderJSON writes.
func (t *Table) JSONBytes() ([]byte, error) {
	if len(t.Headers) == 0 {
		return nil, errNoColumns
	}
	b, err := json.Marshal(t)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
