package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tab := NewTable("Title", "name", "value")
	tab.MustAddRow("x", "1")
	tab.MustAddRow("longer-name", "2")
	out := tab.String()
	if !strings.HasPrefix(out, "Title\n") {
		t.Errorf("missing title: %q", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title + header + separator + 2 rows
		t.Fatalf("lines = %d, want 5:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "name") || !strings.Contains(lines[2], "---") {
		t.Errorf("header/separator wrong:\n%s", out)
	}
	// Alignment: "value" column starts at the same offset in every row.
	idx := strings.Index(lines[1], "value")
	if lines[3][idx-2:idx] != "  " && !strings.HasPrefix(lines[3][idx:], "1") {
		t.Errorf("misaligned rows:\n%s", out)
	}
}

func TestTableArity(t *testing.T) {
	tab := NewTable("", "a", "b")
	if err := tab.AddRow("only-one"); err == nil {
		t.Error("wrong arity accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustAddRow did not panic")
		}
	}()
	tab.MustAddRow("x")
}

func TestTableNoColumns(t *testing.T) {
	tab := &Table{}
	if err := tab.Render(&strings.Builder{}); err == nil {
		t.Error("empty table rendered")
	}
	if err := tab.RenderCSV(&strings.Builder{}); err == nil {
		t.Error("empty table rendered as CSV")
	}
}

func TestTableCSV(t *testing.T) {
	tab := NewTable("ignored", "a", "b")
	tab.MustAddRow("plain", "with,comma")
	tab.MustAddRow("with\"quote", "with\nnewline")
	var b strings.Builder
	if err := tab.RenderCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	want := "a,b\nplain,\"with,comma\"\n\"with\"\"quote\",\"with\nnewline\"\n"
	if out != want {
		t.Errorf("csv = %q, want %q", out, want)
	}
}

func TestPctAndF(t *testing.T) {
	if Pct(0.964) != "96.4%" {
		t.Errorf("Pct = %q", Pct(0.964))
	}
	if Pct(0) != "0.0%" {
		t.Errorf("Pct(0) = %q", Pct(0))
	}
	if F(1057) != "1057" {
		t.Errorf("F = %q", F(1057))
	}
}

func TestSeries(t *testing.T) {
	s := &Series{Name: "sleep"}
	s.Add(1057, 0.95)
	s.Add(2000, 0.93)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	s.Y = s.Y[:1]
	if err := s.Validate(); err == nil {
		t.Error("ragged series validated")
	}
}

func TestRenderSeries(t *testing.T) {
	a := &Series{Name: "Sleep"}
	b := &Series{Name: "Sleep+Drowsy"}
	for _, x := range []float64{1057, 2000, 10000} {
		a.Add(x, 0.9)
		b.Add(x, 0.95)
	}
	var buf strings.Builder
	if err := RenderSeries(&buf, "Figure 7a", "interval", a, b); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Figure 7a") || !strings.Contains(out, "Sleep+Drowsy") {
		t.Errorf("missing content:\n%s", out)
	}
	if !strings.Contains(out, "90.0%") || !strings.Contains(out, "95.0%") {
		t.Errorf("missing values:\n%s", out)
	}
}

func TestRenderSeriesErrors(t *testing.T) {
	var buf strings.Builder
	if err := RenderSeries(&buf, "t", "x"); err == nil {
		t.Error("no series accepted")
	}
	a := &Series{Name: "a"}
	a.Add(1, 1)
	b := &Series{Name: "b"}
	if err := RenderSeries(&buf, "t", "x", a, b); err == nil {
		t.Error("mismatched lengths accepted")
	}
	b.Add(2, 1)
	if err := RenderSeries(&buf, "t", "x", a, b); err == nil {
		t.Error("diverging x accepted")
	}
}

func TestRenderMarkdown(t *testing.T) {
	tab := NewTable("My Title", "a", "b")
	tab.MustAddRow("x", "1")
	tab.MustAddRow("with|pipe", "2")
	var b strings.Builder
	if err := tab.RenderMarkdown(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "### My Title\n\n| a | b |\n| --- | --- |\n") {
		t.Errorf("markdown header wrong:\n%s", out)
	}
	if !strings.Contains(out, `with\|pipe`) {
		t.Errorf("pipe not escaped:\n%s", out)
	}
	empty := &Table{}
	if err := empty.RenderMarkdown(&b); err == nil {
		t.Error("empty table rendered as markdown")
	}
}
