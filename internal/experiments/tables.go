package experiments

import (
	"context"
	"fmt"
	"math"

	"leakbound/internal/power"
	"leakbound/internal/report"
)

// Figure1 returns the ITRS projection behind the paper's motivation figure:
// leakage power as a fraction of total power, 1999–2009. The series is
// digitized from the International Technology Roadmap for Semiconductors
// trend the paper plots (leakage crossing ~50% of total power near the end
// of the decade).
func Figure1() *report.Table {
	t := report.NewTable("Figure 1: projected leakage power / total power (ITRS)",
		"year", "leakage share")
	points := []struct {
		year  int
		share float64
	}{
		{1999, 0.06}, {2001, 0.12}, {2003, 0.22},
		{2005, 0.35}, {2007, 0.50}, {2009, 0.64},
	}
	for _, p := range points {
		t.MustAddRow(fmt.Sprintf("%d", p.year), report.Pct(p.share))
	}
	return t
}

// Figure1Series exposes the same data as x/y series for programmatic use.
func Figure1Series() *report.Series {
	s := &report.Series{Name: "leakage/total"}
	points := [][2]float64{{1999, 0.06}, {2001, 0.12}, {2003, 0.22}, {2005, 0.35}, {2007, 0.50}, {2009, 0.64}}
	for _, p := range points {
		s.Add(p[0], p[1])
	}
	return s
}

// Table1 recomputes the Active-Drowsy and Drowsy-Sleep inflection points for
// every built-in technology from the calibrated circuit parameters via the
// generic Equation 3 solver. This is the round-trip consistency check of
// DESIGN.md §4: the published values are calibration *targets*, and this
// table must land on them (70nm: 1057, 100nm: 5088, 130nm: 10328, 180nm:
// 103084, with a = 6 everywhere).
func Table1() (*report.Table, error) {
	t := report.NewTable("Table 1: inflection points (cycles) per technology",
		"technology", "active-drowsy", "drowsy-sleep")
	for _, tech := range power.Technologies() {
		a, b, err := tech.InflectionPoints()
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", tech.Name, err)
		}
		t.MustAddRow(tech.Name,
			fmt.Sprintf("%d", int(math.Round(a))),
			fmt.Sprintf("%d", int(math.Round(b))))
	}
	return t, nil
}

// Table2 reproduces the technology-scaling study: the average (over all
// benchmarks) optimal savings of OPT-Drowsy, OPT-Sleep (theta = the
// inflection point b) and OPT-Hybrid, for both caches, at each process
// node. The rows also carry Vdd and Vth as the paper's table does. It is
// Table2Context with a background context.
func Table2(s *Suite) (*report.Table, error) {
	return Table2Context(context.Background(), s)
}

// Table2Context is the cancellable Table2. The full
// (cache x scheme x technology x benchmark) nest evaluates concurrently
// on the suite's grid; cell averages are reduced in the sequential loop
// order, bit-identical to a sequential evaluation.
func Table2Context(ctx context.Context, s *Suite) (*report.Table, error) {
	all, err := s.AllContext(ctx)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Table 2: optimal leakage saving percentages with technology scaling",
		"cache", "metric", "70nm", "100nm", "130nm", "180nm")

	techs := power.Technologies()
	vddRow := make([]string, 0, len(techs)+2)
	vthRow := make([]string, 0, len(techs)+2)
	vddRow = append(vddRow, "-", "Vdd (V)")
	vthRow = append(vthRow, "-", "Vth (V)")
	for _, tech := range techs {
		vddRow = append(vddRow, fmt.Sprintf("%.1f", tech.Vdd))
		vthRow = append(vthRow, fmt.Sprintf("%.4f", tech.Vth))
	}
	t.MustAddRow(vddRow...)
	t.MustAddRow(vthRow...)

	sides := []string{"I-Cache", "D-Cache"}
	schemes := []string{"OPT-Drowsy", "OPT-Sleep", "OPT-Hybrid"}
	cells := make([]Cell, 0, len(sides)*len(schemes)*len(techs)*len(all))
	for _, cacheSide := range sides {
		for _, scheme := range schemes {
			for _, tech := range techs {
				pol, err := table2Policy(scheme, tech)
				if err != nil {
					return nil, err
				}
				for _, bd := range all {
					dist, agg := bd.Side(cacheSide != "D-Cache")
					cells = append(cells, Cell{Tech: tech, Policy: pol, Dist: dist, Agg: agg,
						Label: fmt.Sprintf("table2/%s/%s/%s/%s", cacheSide, scheme, tech.Name, bd.Name)})
				}
			}
		}
	}
	evs, err := s.EvaluateGrid(ctx, cells)
	if err != nil {
		return nil, err
	}
	k := 0
	for _, cacheSide := range sides {
		for _, scheme := range schemes {
			row := []string{cacheSide, scheme + " (%)"}
			for range techs {
				var sum float64
				for range all {
					sum += evs[k].Savings
					k++
				}
				row = append(row, fmt.Sprintf("%.1f", 100*sum/float64(len(all))))
			}
			t.MustAddRow(row...)
		}
	}
	return t, nil
}

// Table2Value computes one cell of Table 2 programmatically: the average
// savings for a scheme/cache/technology triple. Scheme is one of
// "OPT-Drowsy", "OPT-Sleep", "OPT-Hybrid"; iCache selects the cache side.
// It is Table2ValueContext with a background context.
func Table2Value(s *Suite, scheme string, iCache bool, tech power.Technology) (float64, error) {
	return Table2ValueContext(context.Background(), s, scheme, iCache, tech)
}

// Table2ValueContext is the cancellable Table2Value. Unknown schemes
// report ErrUnknownScheme.
func Table2ValueContext(ctx context.Context, s *Suite, scheme string, iCache bool, tech power.Technology) (float64, error) {
	all, err := s.AllContext(ctx)
	if err != nil {
		return 0, err
	}
	pol, err := table2Policy(scheme, tech)
	if err != nil {
		return 0, err
	}
	cells := make([]Cell, 0, len(all))
	for _, bd := range all {
		dist, agg := bd.Side(iCache)
		cells = append(cells, Cell{Tech: tech, Policy: pol, Dist: dist, Agg: agg,
			Label: fmt.Sprintf("table2/%s/%s/%s", scheme, tech.Name, bd.Name)})
	}
	evs, err := s.EvaluateGrid(ctx, cells)
	if err != nil {
		return 0, err
	}
	var sum float64
	for _, ev := range evs {
		sum += ev.Savings
	}
	return sum / float64(len(all)), nil
}

// Table3 renders the Prefetch-A / Prefetch-B mode-assignment rules of
// Section 5.2: both schemes apply the inflection-point mode to prefetchable
// intervals; they differ on non-prefetchable ones.
func Table3() *report.Table {
	t := report.NewTable("Table 3: Prefetch-A and Prefetch-B mode assignment",
		"interval", "prefetchable", "Prefetch-A", "Prefetch-B")
	t.MustAddRow("(0, a]", "counted non-prefetchable", "active", "active")
	t.MustAddRow("(a, b]", "yes", "drowsy", "drowsy")
	t.MustAddRow("(a, b]", "no", "active", "drowsy")
	t.MustAddRow("(b, +inf)", "yes", "sleep", "sleep")
	t.MustAddRow("(b, +inf)", "no", "active", "drowsy")
	t.MustAddRow("objective", "-", "high performance", "high power saving")
	return t
}
