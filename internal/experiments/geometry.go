package experiments

// Cache-geometry sensitivity: the paper fixes the 64KB 2-way L1s of the
// Alpha 21264; this extension re-runs the limit study across L1 sizes and
// associativities to show how the bound moves with geometry — bigger
// caches idle more of their frames, so the recoverable fraction grows,
// which is the structural reason leakage management matters more as
// caches grow.

import (
	"context"
	"fmt"

	"leakbound/internal/interval"
	"leakbound/internal/leakage"
	"leakbound/internal/power"
	"leakbound/internal/report"
	"leakbound/internal/sim/cache"
	"leakbound/internal/sim/cpu"
	"leakbound/internal/sim/trace"
	"leakbound/internal/workload"
)

// SimulateCustom runs one benchmark on an arbitrary hierarchy and returns
// the flagged interval distribution of the selected cache. It exists for
// geometry sweeps and one-off studies outside the fixed-config Suite. It
// is SimulateCustomContext with a background context.
func SimulateCustom(name string, scale float64, hc cache.HierarchyConfig, side trace.CacheID) (*interval.Distribution, cpu.Result, error) {
	return SimulateCustomContext(context.Background(), name, scale, hc, side)
}

// SimulateCustomContext is the cancellable SimulateCustom.
func SimulateCustomContext(ctx context.Context, name string, scale float64, hc cache.HierarchyConfig, side trace.CacheID) (*interval.Distribution, cpu.Result, error) {
	w, err := workload.New(name, scale)
	if err != nil {
		return nil, cpu.Result{}, err
	}
	hier, err := cache.NewHierarchy(hc)
	if err != nil {
		return nil, cpu.Result{}, err
	}
	target := hier.CacheByID(side)
	if target == nil {
		return nil, cpu.Result{}, fmt.Errorf("experiments: invalid cache side %v", side)
	}
	col, err := interval.NewCollector(side, uint32(target.Config().NumLines()), nil)
	if err != nil {
		return nil, cpu.Result{}, err
	}
	var sinkErr error
	res, err := cpu.RunContext(ctx, w, hier, cpu.DefaultConfig(), func(e trace.Event) {
		if sinkErr == nil && e.Cache == side {
			sinkErr = col.Add(e)
		}
	})
	if err != nil {
		return nil, cpu.Result{}, err
	}
	if sinkErr != nil {
		return nil, cpu.Result{}, sinkErr
	}
	dist, err := col.Finish(res.Cycles)
	if err != nil {
		return nil, cpu.Result{}, err
	}
	return dist, res, nil
}

// GeometryPoint describes one swept configuration.
type GeometryPoint struct {
	SizeKB int
	Assoc  int
}

// GeometrySweepPoints returns the swept L1 configurations: the paper's
// 64KB/2-way plus half, quarter, double sizes and a 4-way variant.
func GeometrySweepPoints() []GeometryPoint {
	return []GeometryPoint{
		{16, 2}, {32, 2}, {64, 2}, {128, 2}, {64, 4},
	}
}

// GeometrySweepContext evaluates OPT-Hybrid and Sleep(10K) on the D-cache
// across L1 geometries, averaged over the benchmark suite at the given
// scale. Each simulated distribution is aggregated once and both policies
// are answered in one leakage.EvaluateMany pass.
func GeometrySweepContext(ctx context.Context, scale float64) (*report.Table, error) {
	if scale <= 0 {
		return nil, fmt.Errorf("%w: %g", ErrNonPositiveScale, scale)
	}
	tech := power.Default()
	pols := []leakage.Policy{leakage.OPTHybrid{}, leakage.SleepDecay{Theta: 10000}}
	t := report.NewTable("Extension: L1 D-cache geometry sweep (70nm, benchmark average)",
		"L1 size", "assoc", "frames", "OPT-Hybrid", "Sleep(10K)")
	for _, pt := range GeometrySweepPoints() {
		hc := cache.AlphaLike()
		hc.L1D.SizeBytes = pt.SizeKB << 10
		hc.L1D.Assoc = pt.Assoc
		hc.L1I.SizeBytes = pt.SizeKB << 10
		hc.L1I.Assoc = pt.Assoc
		var hySum, dcSum float64
		var frames int
		for _, name := range workload.Names() {
			dist, _, err := SimulateCustomContext(ctx, name, scale, hc, trace.L1D)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s at %dKB/%d-way: %w", name, pt.SizeKB, pt.Assoc, err)
			}
			frames = int(dist.NumFrames)
			evs, err := leakage.EvaluateMany(tech, interval.NewAggregates(dist), pols)
			if err != nil {
				return nil, err
			}
			hySum += evs[0].Savings
			dcSum += evs[1].Savings
		}
		n := float64(len(workload.Names()))
		t.MustAddRow(
			fmt.Sprintf("%dKB", pt.SizeKB),
			fmt.Sprintf("%d", pt.Assoc),
			fmt.Sprintf("%d", frames),
			report.Pct(hySum/n),
			report.Pct(dcSum/n),
		)
	}
	return t, nil
}
