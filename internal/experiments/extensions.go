package experiments

// Extension experiments beyond the paper's evaluation, exercising the
// library's generality (the "future work" directions Section 6 gestures
// at): the L2 cache, extra baseline schemes from the related work, the
// dirty-line write-back cost, and temperature sensitivity.

import (
	"context"
	"fmt"

	"leakbound/internal/interval"
	"leakbound/internal/leakage"
	"leakbound/internal/power"
	"leakbound/internal/report"
)

// ExtendedSchemesTable compares the related-work baselines (periodic
// drowsy, feedback-tuned decay, AMC) against the paper's oracle bounds, on
// both caches, at 70nm. This is the comparison Section 2's survey implies
// but the paper never plots.
func ExtendedSchemesTable(s *Suite) (*report.Table, error) {
	return ExtendedSchemesTableContext(context.Background(), s)
}

// ExtendedSchemesTableContext is the cancellable ExtendedSchemesTable.
func ExtendedSchemesTableContext(ctx context.Context, s *Suite) (*report.Table, error) {
	all, err := s.AllContext(ctx)
	if err != nil {
		return nil, err
	}
	tech := power.Default()
	t := report.NewTable("Extension: related-work schemes vs the oracle bounds (70nm, benchmark average)",
		"scheme", "I-cache", "D-cache")

	type rowFn func(d *BenchmarkData, iCache bool) (float64, error)
	rows := []struct {
		label string
		fn    rowFn
	}{
		{"Drowsy(2000) periodic", func(d *BenchmarkData, iCache bool) (float64, error) {
			dist := d.ICache
			if !iCache {
				dist = d.DCache
			}
			ev, err := leakage.Evaluate(tech, dist, leakage.PeriodicDrowsy{Window: 2000})
			return ev.Savings, err
		}},
		{"Drowsy(4000) periodic", func(d *BenchmarkData, iCache bool) (float64, error) {
			dist := d.ICache
			if !iCache {
				dist = d.DCache
			}
			ev, err := leakage.Evaluate(tech, dist, leakage.PeriodicDrowsy{Window: 4000})
			return ev.Savings, err
		}},
		{"Adaptive decay (feedback)", func(d *BenchmarkData, iCache bool) (float64, error) {
			dist := d.ICache
			if !iCache {
				dist = d.DCache
			}
			ev, err := leakage.EvaluateAdaptiveDecay(tech, dist)
			return ev.Savings, err
		}},
		{"AMC (tags alive)", func(d *BenchmarkData, iCache bool) (float64, error) {
			dist := d.ICache
			if !iCache {
				dist = d.DCache
			}
			ev, err := leakage.EvaluateAMC(tech, dist, 0.06)
			return ev.Savings, err
		}},
		{"OPT-Drowsy (bound)", func(d *BenchmarkData, iCache bool) (float64, error) {
			dist := d.ICache
			if !iCache {
				dist = d.DCache
			}
			ev, err := leakage.Evaluate(tech, dist, leakage.OPTDrowsy{})
			return ev.Savings, err
		}},
		{"OPT-Hybrid (bound)", func(d *BenchmarkData, iCache bool) (float64, error) {
			dist := d.ICache
			if !iCache {
				dist = d.DCache
			}
			ev, err := leakage.Evaluate(tech, dist, leakage.OPTHybrid{})
			return ev.Savings, err
		}},
	}
	for _, r := range rows {
		var iSum, dSum float64
		for _, bd := range all {
			iv, err := r.fn(bd, true)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s on %s: %w", r.label, bd.Name, err)
			}
			dv, err := r.fn(bd, false)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s on %s: %w", r.label, bd.Name, err)
			}
			iSum += iv
			dSum += dv
		}
		n := float64(len(all))
		t.MustAddRow(r.label, report.Pct(iSum/n), report.Pct(dSum/n))
	}
	return t, nil
}

// L2Study evaluates the oracle policies on the unified 2MB L2 — a cache
// 32x larger than the L1s whose frames are touched only on L1 misses, so
// nearly all of its (much larger) leakage is recoverable. The paper
// restricts itself to the L1s; this is the natural next target its
// conclusion implies.
func L2Study(s *Suite) (*report.Table, error) {
	return L2StudyContext(context.Background(), s)
}

// L2StudyContext is the cancellable L2Study.
func L2StudyContext(ctx context.Context, s *Suite) (*report.Table, error) {
	all, err := s.AllContext(ctx)
	if err != nil {
		return nil, err
	}
	tech := power.Default()
	t := report.NewTable("Extension: L2 leakage savings (2MB unified, 70nm)",
		"benchmark", "frames touched", "OPT-Drowsy", "OPT-Sleep(10K)", "OPT-Hybrid")
	policies := []leakage.Policy{
		leakage.OPTDrowsy{},
		leakage.OPTSleep{Theta: 10000},
		leakage.OPTHybrid{},
	}
	var sums [3]float64
	for _, bd := range all {
		cells := []string{bd.Name}
		untouchedMass := bd.L2Cache.MassWhere(func(l uint64, f interval.Flags) bool {
			return f&interval.Untouched == interval.Untouched
		})
		total := bd.L2Cache.Mass()
		frac := 1 - float64(untouchedMass)/float64(total)
		cells = append(cells, report.Pct(frac))
		for i, p := range policies {
			ev, err := leakage.Evaluate(tech, bd.L2Cache, p)
			if err != nil {
				return nil, err
			}
			cells = append(cells, report.Pct(ev.Savings))
			sums[i] += ev.Savings
		}
		t.MustAddRow(cells...)
	}
	n := float64(len(all))
	t.MustAddRow("average", "-", report.Pct(sums[0]/n), report.Pct(sums[1]/n), report.Pct(sums[2]/n))
	return t, nil
}

// WritebackAblation quantifies the cost the paper leaves unmodelled: a
// dirty line must be written back before it can be gated. The write-back
// energy is swept from zero (the paper's implicit assumption) to the full
// induced-miss energy, and OPT-Hybrid's D-cache savings re-evaluated.
func WritebackAblation(s *Suite) (*report.Table, error) {
	return WritebackAblationContext(context.Background(), s)
}

// WritebackAblationContext is the cancellable WritebackAblation.
func WritebackAblationContext(ctx context.Context, s *Suite) (*report.Table, error) {
	all, err := s.AllContext(ctx)
	if err != nil {
		return nil, err
	}
	base := power.Default()
	t := report.NewTable("Extension: write-back cost ablation (OPT-Hybrid, D-cache, 70nm)",
		"WB energy / CD", "average savings", "delta vs free")
	var free float64
	for _, ratio := range []float64{0, 0.25, 0.5, 1.0} {
		tech := base
		tech.WBEnergy = ratio * tech.CD
		var sum float64
		for _, bd := range all {
			ev, err := leakage.Evaluate(tech, bd.DCache, leakage.OPTHybrid{})
			if err != nil {
				return nil, err
			}
			sum += ev.Savings
		}
		avg := sum / float64(len(all))
		if ratio == 0 {
			free = avg
		}
		t.MustAddRow(fmt.Sprintf("%.2f", ratio), report.Pct(avg),
			fmt.Sprintf("%+.2f pts", (avg-free)*100))
	}
	return t, nil
}

// TemperatureSweepContext shows how the drowsy-sleep inflection point and
// the oracle savings move with junction temperature: leakage scales
// exponentially with T while the induced-miss energy does not, so hot
// silicon should sleep more aggressively. The paper's generalized model
// exists exactly to answer questions like this. Each temperature point
// evaluates through the aggregate fast path over the benchmark's cached
// summary — the sweep never re-walks the distribution.
func TemperatureSweepContext(ctx context.Context, s *Suite, benchmark string) (*report.Table, error) {
	bd, err := s.DataContext(ctx, benchmark)
	if err != nil {
		return nil, err
	}
	base := power.Default()
	t := report.NewTable(
		fmt.Sprintf("Extension: temperature sensitivity (%s I-cache, 70nm)", benchmark),
		"temp (K)", "P_active scale", "inflection b", "OPT-Hybrid savings")
	for _, temp := range []float64{300, 330, 353, 380, 400} {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		tech, err := power.TemperatureScaledTechnology(base, temp)
		if err != nil {
			return nil, err
		}
		_, b, err := tech.InflectionPoints()
		if err != nil {
			return nil, err
		}
		ev, err := leakage.EvaluateAggregate(tech, bd.IAgg, leakage.OPTHybrid{})
		if err != nil {
			return nil, err
		}
		t.MustAddRow(
			fmt.Sprintf("%.0f", temp),
			fmt.Sprintf("%.2fx", tech.PActive/base.PActive),
			fmt.Sprintf("%.0f", b),
			report.Pct(ev.Savings),
		)
	}
	return t, nil
}

// PrefetcherQualityTable reports the hardware prefetch engines' coverage
// and accuracy per benchmark — the implementable check of Section 5's
// premise (citing Sair, Sherwood & Calder) that next-line and stride
// prefetching capture most cache misses.
func PrefetcherQualityTable(s *Suite) (*report.Table, error) {
	return PrefetcherQualityTableContext(context.Background(), s)
}

// PrefetcherQualityTableContext is the cancellable PrefetcherQualityTable.
func PrefetcherQualityTableContext(ctx context.Context, s *Suite) (*report.Table, error) {
	all, err := s.AllContext(ctx)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Extension: hardware prefetcher quality (next-line I / next-line+stride D)",
		"benchmark", "I coverage", "I accuracy", "D coverage", "D accuracy")
	var iCov, iAcc, dCov, dAcc float64
	for _, bd := range all {
		t.MustAddRow(bd.Name,
			report.Pct(bd.IEngine.Coverage()), report.Pct(bd.IEngine.Accuracy()),
			report.Pct(bd.DEngine.Coverage()), report.Pct(bd.DEngine.Accuracy()))
		iCov += bd.IEngine.Coverage()
		iAcc += bd.IEngine.Accuracy()
		dCov += bd.DEngine.Coverage()
		dAcc += bd.DEngine.Accuracy()
	}
	n := float64(len(all))
	t.MustAddRow("average", report.Pct(iCov/n), report.Pct(iAcc/n),
		report.Pct(dCov/n), report.Pct(dAcc/n))
	return t, nil
}

// LiveDeadStudy verifies the paper's Section 3.1 claim: "dead periods did
// not contribute a large amount of leakage savings in the optimal case,
// because any long interval would be turned off whether live or dead.
// Thus the only additional savings that are achieved from considering dead
// intervals are from short dead intervals, of which there are very few."
//
// The length-only OPT-Hybrid treats every interior interval identically; a
// dead-aware oracle additionally knows that a dead-ending gap's block is
// never referenced again, so sleeping it incurs no induced-miss energy and
// pays off at much shorter lengths. The delta between the two is exactly
// the savings attributable to live/dead knowledge — per the paper, it
// should be small.
func LiveDeadStudy(s *Suite) (*report.Table, error) {
	return LiveDeadStudyContext(context.Background(), s)
}

// LiveDeadStudyContext is the cancellable LiveDeadStudy.
func LiveDeadStudyContext(ctx context.Context, s *Suite) (*report.Table, error) {
	all, err := s.AllContext(ctx)
	if err != nil {
		return nil, err
	}
	tech := power.Default()
	t := report.NewTable("Extension: live vs dead intervals (D-cache, 70nm) — Section 3.1's claim",
		"benchmark", "dead mass share", "OPT-Hybrid (length only)", "dead-aware hybrid", "delta")
	for _, bd := range all {
		deadMass := bd.DCache.MassWhere(func(l uint64, f interval.Flags) bool {
			return f&interval.DeadEnd != 0
		})
		share := float64(deadMass) / float64(bd.DCache.Mass())
		lengthOnly, err := leakage.Evaluate(tech, bd.DCache, leakage.OPTHybrid{})
		if err != nil {
			return nil, err
		}
		deadAware, err := leakage.Evaluate(tech, bd.DCache, leakage.DeadAwareHybrid{})
		if err != nil {
			return nil, err
		}
		t.MustAddRow(bd.Name,
			report.Pct(share),
			report.Pct(lengthOnly.Savings),
			report.Pct(deadAware.Savings),
			fmt.Sprintf("%.2f pts", (deadAware.Savings-lengthOnly.Savings)*100),
		)
	}
	return t, nil
}

// BreakdownTable explains Figure 8's OPT-Hybrid bars: where the residual
// energy goes, per benchmark and cache, in the terms the calibration notes
// use (active mass, drowsy retention, transitions, induced misses,
// residual sleep leakage).
func BreakdownTable(s *Suite) (*report.Table, error) {
	return BreakdownTableContext(context.Background(), s)
}

// BreakdownTableContext is the cancellable BreakdownTable.
func BreakdownTableContext(ctx context.Context, s *Suite) (*report.Table, error) {
	all, err := s.AllContext(ctx)
	if err != nil {
		return nil, err
	}
	tech := power.Default()
	t := report.NewTable("Extension: OPT-Hybrid residual energy breakdown (70nm, % of baseline)",
		"benchmark", "cache", "savings", "active", "drowsy", "transitions", "induced miss", "sleep leak")
	for _, bd := range all {
		for _, side := range []struct {
			label string
			dist  *interval.Distribution
		}{{"I", bd.ICache}, {"D", bd.DCache}} {
			br, err := leakage.HybridBreakdown(tech, side.dist)
			if err != nil {
				return nil, err
			}
			t.MustAddRow(bd.Name, side.label,
				report.Pct(br.Savings), report.Pct(br.ActiveShare),
				report.Pct(br.DrowsyShare), report.Pct(br.TransitionShare),
				report.Pct(br.InducedMissShare), report.Pct(br.SleepShare))
		}
	}
	return t, nil
}
