package experiments

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"leakbound/internal/telemetry"
	"leakbound/internal/workload"
)

// TestSuiteAllConcurrentRace is the -race regression for the event-sink
// contract: several goroutines drive Suite.All() on the same suite at
// once, so every per-benchmark sink (and its unsynchronized sinkErr) runs
// inside the bounded pool while other callers race on Data's cache. The
// sink state must stay single-goroutine-owned per cpu.Run call.
func TestSuiteAllConcurrentRace(t *testing.T) {
	s := MustNew(WithScale(0.02))
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			all, err := s.All()
			if err != nil {
				t.Error(err)
				return
			}
			if len(all) != len(workload.Names()) {
				t.Errorf("got %d benchmarks, want %d", len(all), len(workload.Names()))
			}
		}()
	}
	wg.Wait()
}

// TestSuiteAllReportsTelemetry checks the acceptance shape of a full-suite
// snapshot: per-benchmark simulation time, event counts, and disk-cache
// hit/miss counters all present after All().
func TestSuiteAllReportsTelemetry(t *testing.T) {
	dir := t.TempDir()
	s := MustNew(WithScale(0.02), WithCacheDir(dir))
	if _, err := s.All(); err != nil {
		t.Fatal(err)
	}
	// Second pass must be served from the disk cache.
	s2 := MustNew(WithScale(0.02), WithCacheDir(dir))
	if _, err := s2.All(); err != nil {
		t.Fatal(err)
	}

	snap := telemetry.Default().Snapshot()
	suite, ok := snap["suite"]
	if !ok {
		t.Fatal("snapshot missing suite scope")
	}
	for _, name := range workload.Names() {
		if _, ok := suite.Gauges["sim_ms/"+name]; !ok {
			t.Errorf("missing per-benchmark simulation time sim_ms/%s", name)
		}
		if _, ok := suite.Gauges["events/"+name]; !ok {
			t.Errorf("missing per-benchmark event count events/%s", name)
		}
	}
	dc, ok := snap["diskcache"]
	if !ok {
		t.Fatal("snapshot missing diskcache scope")
	}
	if dc.Counters["hits"] == 0 {
		t.Error("diskcache hits = 0 after cached re-run")
	}
	if dc.Counters["misses"] == 0 {
		t.Error("diskcache misses = 0 after cold run")
	}
	pool, ok := snap["pool"]
	if !ok {
		t.Fatal("snapshot missing pool scope")
	}
	if pool.Counters["tasks_completed"] < uint64(2*len(workload.Names())) {
		t.Errorf("pool tasks_completed = %d, want >= %d",
			pool.Counters["tasks_completed"], 2*len(workload.Names()))
	}

	var buf bytes.Buffer
	if err := snap.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"cpu:", "interval:", "prefetch:", "suite:", "diskcache:", "pool:"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("text snapshot missing %q", want)
		}
	}
}
