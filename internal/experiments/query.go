package experiments

// The exported query surface for the serving layer (cmd/leakaged): every
// figure and table of the suite is a closed-form function of
// (technology x policy x benchmark x cache side), and these helpers
// expose that space as parseable, parameterized queries instead of the
// fixed figure set the batch CLIs print. All evaluations route through
// the suite's EvaluateGrid, so served cells share the same telemetry
// ("grid" scope) and worker bound as the batch sweeps.

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"leakbound/internal/leakage"
	"leakbound/internal/power"
)

// Sentinel errors for query parsing; match with errors.Is.
var (
	// ErrUnknownPolicy reports a policy name outside PolicyNames.
	ErrUnknownPolicy = fmt.Errorf("experiments: unknown policy")

	// ErrUnknownCacheSide reports a cache-side selector outside {i, d}.
	ErrUnknownCacheSide = fmt.Errorf("experiments: unknown cache side")

	// ErrUnknownTechnology reports a technology name with no built-in node.
	ErrUnknownTechnology = fmt.Errorf("experiments: unknown technology")
)

// PolicyNames lists the canonical spellings ParsePolicy accepts, in
// presentation order. Parameterized policies take an optional "@theta"
// suffix (e.g. "opt-sleep@5088").
func PolicyNames() []string {
	return []string{
		"active", "opt-drowsy", "opt-sleep", "opt-hybrid",
		"sleep-decay", "periodic-drowsy", "prefetch-a", "prefetch-b",
	}
}

// ParsePolicy builds a leakage policy from a query spelling: one of
// PolicyNames, case-insensitive, with an optional "@theta" suffix for the
// parameterized schemes. A zero/absent theta falls back to the
// technology's drowsy-sleep inflection point b for opt-sleep and
// sleep-decay (the paper's own default), and to 2000 cycles for
// periodic-drowsy.
func ParsePolicy(spec string, tech power.Technology) (leakage.Policy, error) {
	name := strings.ToLower(strings.TrimSpace(spec))
	var theta uint64
	if at := strings.IndexByte(name, '@'); at >= 0 {
		v, err := strconv.ParseUint(name[at+1:], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: bad theta in %q: %w", ErrUnknownPolicy, spec, err)
		}
		theta, name = v, name[:at]
	}
	inflectionB := func() (uint64, error) {
		if theta > 0 {
			return theta, nil
		}
		_, b, err := tech.InflectionPoints()
		if err != nil {
			return 0, err
		}
		return uint64(b + 0.5), nil
	}
	switch name {
	case "active":
		return leakage.AlwaysActive{}, nil
	case "opt-drowsy":
		return leakage.OPTDrowsy{}, nil
	case "opt-sleep":
		th, err := inflectionB()
		if err != nil {
			return nil, err
		}
		return leakage.OPTSleep{Theta: th}, nil
	case "opt-hybrid":
		return leakage.OPTHybrid{SleepTheta: theta}, nil
	case "sleep-decay":
		th, err := inflectionB()
		if err != nil {
			return nil, err
		}
		return leakage.SleepDecay{Theta: th}, nil
	case "periodic-drowsy":
		if theta == 0 {
			theta = 2000
		}
		return leakage.PeriodicDrowsy{Window: theta}, nil
	case "prefetch-a":
		return leakage.PrefetchA(), nil
	case "prefetch-b":
		return leakage.PrefetchB(), nil
	default:
		return nil, fmt.Errorf("%w: %q (known: %s)", ErrUnknownPolicy, spec, strings.Join(PolicyNames(), ", "))
	}
}

// ParseCacheSide maps a query selector onto the study's two L1 subjects:
// "i"/"icache"/"instruction" or "d"/"dcache"/"data".
func ParseCacheSide(s string) (iCache bool, err error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "i", "icache", "instruction", "":
		return true, nil
	case "d", "dcache", "data":
		return false, nil
	default:
		return false, fmt.Errorf("%w: %q (want i or d)", ErrUnknownCacheSide, s)
	}
}

// ParseTechnology resolves a built-in node by name ("70nm", "100nm",
// "130nm", "180nm"); the empty string selects power.Default().
func ParseTechnology(name string) (power.Technology, error) {
	if strings.TrimSpace(name) == "" {
		return power.Default(), nil
	}
	t, err := power.TechnologyByName(strings.TrimSpace(name))
	if err != nil {
		return power.Technology{}, fmt.Errorf("%w: %w", ErrUnknownTechnology, err)
	}
	return t, nil
}

// CellEvaluation is one served (benchmark x cache x technology x policy)
// cell: the evaluation plus the coordinates that produced it.
type CellEvaluation struct {
	Benchmark  string  `json:"benchmark"`
	Cache      string  `json:"cache"`
	Technology string  `json:"technology"`
	Policy     string  `json:"policy"`
	Energy     float64 `json:"energy"`
	Baseline   float64 `json:"baseline"`
	Savings    float64 `json:"savings"`
}

// EvaluateCellContext evaluates one policy on one benchmark's cache at one
// technology node, simulating the benchmark on first use (shared through
// the suite's singleflight) and evaluating on the suite's grid.
func (s *Suite) EvaluateCellContext(ctx context.Context, benchmark string, iCache bool, tech power.Technology, pol leakage.Policy) (CellEvaluation, error) {
	bd, err := s.DataContext(ctx, benchmark)
	if err != nil {
		return CellEvaluation{}, err
	}
	dist := bd.ICache
	side := "i"
	if !iCache {
		dist = bd.DCache
		side = "d"
	}
	evs, err := s.EvaluateGrid(ctx, []Cell{{Tech: tech, Policy: pol, Dist: dist,
		Label: fmt.Sprintf("query/%s/%s/%s/%s", benchmark, side, tech.Name, pol.Name())}})
	if err != nil {
		return CellEvaluation{}, err
	}
	return CellEvaluation{
		Benchmark:  benchmark,
		Cache:      side,
		Technology: tech.Name,
		Policy:     evs[0].Policy,
		Energy:     evs[0].Energy,
		Baseline:   evs[0].Baseline,
		Savings:    evs[0].Savings,
	}, nil
}

// SweepPoint is one theta sample of a parameterized sweep: the
// benchmark-averaged savings of the scheme with that minimum sleepable
// interval length.
type SweepPoint struct {
	Theta   uint64  `json:"theta"`
	Savings float64 `json:"savings"`
}

// SweepThetaContext generalizes Figure 7 into a parameterized query:
// for each theta it evaluates the scheme ("opt-sleep" or "opt-hybrid",
// per ParsePolicy with the theta substituted) on every benchmark's chosen
// cache at tech, and averages — the cells run concurrently on the grid,
// the reduction in deterministic loop order.
func (s *Suite) SweepThetaContext(ctx context.Context, scheme string, iCache bool, tech power.Technology, thetas []uint64) ([]SweepPoint, error) {
	if len(thetas) == 0 {
		return nil, fmt.Errorf("%w: empty theta sweep", ErrBadOption)
	}
	all, err := s.AllContext(ctx)
	if err != nil {
		return nil, err
	}
	cells := make([]Cell, 0, len(thetas)*len(all))
	for _, theta := range thetas {
		pol, err := ParsePolicy(fmt.Sprintf("%s@%d", scheme, theta), tech)
		if err != nil {
			return nil, err
		}
		for _, bd := range all {
			dist := bd.ICache
			if !iCache {
				dist = bd.DCache
			}
			cells = append(cells, Cell{Tech: tech, Policy: pol, Dist: dist,
				Label: fmt.Sprintf("sweep/%s@%d/%s", scheme, theta, bd.Name)})
		}
	}
	evs, err := s.EvaluateGrid(ctx, cells)
	if err != nil {
		return nil, err
	}
	out := make([]SweepPoint, 0, len(thetas))
	k := 0
	for _, theta := range thetas {
		var sum float64
		for range all {
			sum += evs[k].Savings
			k++
		}
		out = append(out, SweepPoint{Theta: theta, Savings: sum / float64(len(all))})
	}
	return out, nil
}

// Workers reports the suite's resolved parallelism bound (WithWorkers,
// defaulting to GOMAXPROCS); the serving layer sizes its admission
// semaphore off it so HTTP concurrency and simulation concurrency share
// one budget.
func (s *Suite) Workers() int { return s.poolWorkers() }
