package experiments

// The exported query surface for the serving layer (cmd/leakaged): every
// figure and table of the suite is a closed-form function of
// (technology x policy x benchmark x cache side), and these helpers
// expose that space as parseable, parameterized queries instead of the
// fixed figure set the batch CLIs print. All evaluations route through
// the suite's EvaluateGrid, so served cells share the same telemetry
// ("grid" scope) and worker bound as the batch sweeps.

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"leakbound/internal/leakage"
	"leakbound/internal/power"
	"leakbound/internal/telemetry"
)

// Sentinel errors for query parsing; match with errors.Is.
var (
	// ErrUnknownPolicy reports a policy name outside PolicyNames.
	ErrUnknownPolicy = fmt.Errorf("experiments: unknown policy")

	// ErrUnknownCacheSide reports a cache-side selector outside {i, d}.
	ErrUnknownCacheSide = fmt.Errorf("experiments: unknown cache side")

	// ErrUnknownTechnology reports a technology name with no built-in node.
	ErrUnknownTechnology = fmt.Errorf("experiments: unknown technology")
)

// PolicyNames lists the canonical spellings ParsePolicy accepts, in
// registration (presentation) order — the registry is the single source of
// truth. Parameterized policies take an optional "@value" positional
// suffix (e.g. "opt-sleep@5088") or "@key=value,..." pairs.
func PolicyNames() []string { return leakage.PolicyNames() }

// ParsePolicySpec parses a query spelling into a structured policy spec
// against the default registry's grammar ("scheme", "scheme@value",
// "scheme@key=value,..."), case/space folded. Errors wrap
// ErrUnknownPolicy so the serving layer's 400 mapping matches on one
// sentinel for every parse failure.
func ParsePolicySpec(spec string) (leakage.PolicySpec, error) {
	ps, err := leakage.DefaultRegistry().ParseSpec(spec)
	if err != nil {
		return leakage.PolicySpec{}, fmt.Errorf("%w: %w", ErrUnknownPolicy, err)
	}
	return ps, nil
}

// BuildPolicy constructs the policy a spec describes at one technology
// node via the default registry; validation failures wrap
// ErrUnknownPolicy like parse failures.
func BuildPolicy(ps leakage.PolicySpec, tech power.Technology) (leakage.Policy, error) {
	pol, err := leakage.DefaultRegistry().Build(ps, tech)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrUnknownPolicy, err)
	}
	return pol, nil
}

// ParsePolicy builds a leakage policy from a query spelling — a thin
// compat shim over ParsePolicySpec + BuildPolicy. Every pre-registry
// spelling keeps parsing bit-identically: a zero/absent theta falls back
// to the technology's drowsy-sleep inflection point b for opt-sleep and
// sleep-decay (the paper's own default) and to 2000 cycles for
// periodic-drowsy, and — as the legacy parser did — a numeric "@theta"
// suffix on a scheme with no positional parameter (e.g. "active@5") is
// accepted and ignored.
func ParsePolicy(spec string, tech power.Technology) (leakage.Policy, error) {
	ps, err := ParsePolicySpec(spec)
	if err != nil {
		if bare, ok := stripIgnoredTheta(spec); ok {
			return BuildPolicy(leakage.PolicySpec{Scheme: bare}, tech)
		}
		return nil, err
	}
	return BuildPolicy(ps, tech)
}

// stripIgnoredTheta reproduces the legacy parser's one permissive corner:
// "scheme@123" succeeded even when scheme took no parameter, silently
// dropping the theta. It reports the bare scheme name when spec has that
// shape — a registered scheme without a positional parameter followed by
// a well-formed base-10 uint.
func stripIgnoredTheta(spec string) (string, bool) {
	s := strings.ToLower(strings.TrimSpace(spec))
	at := strings.IndexByte(s, '@')
	if at < 0 {
		return "", false
	}
	name, suffix := s[:at], s[at+1:]
	reg, ok := leakage.DefaultRegistry().Lookup(name)
	if !ok || reg.Positional != "" {
		return "", false
	}
	if _, err := strconv.ParseUint(suffix, 10, 64); err != nil {
		return "", false
	}
	return name, true
}

// ParseCacheSide maps a query selector onto the study's two L1 subjects:
// "i"/"icache"/"instruction" or "d"/"dcache"/"data".
func ParseCacheSide(s string) (iCache bool, err error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "i", "icache", "instruction", "":
		return true, nil
	case "d", "dcache", "data":
		return false, nil
	default:
		return false, fmt.Errorf("%w: %q (want i or d)", ErrUnknownCacheSide, s)
	}
}

// ParseTechnology resolves a built-in node by name ("70nm", "100nm",
// "130nm", "180nm"); the empty string selects power.Default().
func ParseTechnology(name string) (power.Technology, error) {
	if strings.TrimSpace(name) == "" {
		return power.Default(), nil
	}
	t, err := power.TechnologyByName(strings.TrimSpace(name))
	if err != nil {
		return power.Technology{}, fmt.Errorf("%w: %w", ErrUnknownTechnology, err)
	}
	return t, nil
}

// CellEvaluation is one served (benchmark x cache x technology x policy)
// cell: the evaluation plus the coordinates that produced it.
type CellEvaluation struct {
	Benchmark  string  `json:"benchmark"`
	Cache      string  `json:"cache"`
	Technology string  `json:"technology"`
	Policy     string  `json:"policy"`
	Energy     float64 `json:"energy"`
	Baseline   float64 `json:"baseline"`
	Savings    float64 `json:"savings"`
}

// EvaluateCellContext evaluates one policy on one benchmark's cache at one
// technology node, simulating the benchmark on first use (shared through
// the suite's singleflight) and evaluating on the suite's grid.
func (s *Suite) EvaluateCellContext(ctx context.Context, benchmark string, iCache bool, tech power.Technology, pol leakage.Policy) (CellEvaluation, error) {
	bd, err := s.DataContext(ctx, benchmark)
	if err != nil {
		return CellEvaluation{}, err
	}
	dist, agg := bd.Side(iCache)
	side := "i"
	if !iCache {
		side = "d"
	}
	evs, err := s.EvaluateGrid(ctx, []Cell{{Tech: tech, Policy: pol, Dist: dist, Agg: agg,
		Label: fmt.Sprintf("query/%s/%s/%s/%s", benchmark, side, tech.Name, pol.Name())}})
	if err != nil {
		return CellEvaluation{}, err
	}
	return CellEvaluation{
		Benchmark:  benchmark,
		Cache:      side,
		Technology: tech.Name,
		Policy:     evs[0].Policy,
		Energy:     evs[0].Energy,
		Baseline:   evs[0].Baseline,
		Savings:    evs[0].Savings,
	}, nil
}

// SweepPoint is one theta sample of a parameterized sweep: the
// benchmark-averaged savings of the scheme with that minimum sleepable
// interval length.
type SweepPoint struct {
	Theta   uint64  `json:"theta"`
	Savings float64 `json:"savings"`
}

// ParamSweepPoint is one sample of a generalized parameter sweep: the
// benchmark-averaged savings of the scheme with that parameter value.
type ParamSweepPoint struct {
	Value   leakage.ParamValue `json:"value"`
	Savings float64            `json:"savings"`
}

// SweepParamContext generalizes Figure 7 into a parameterized query over
// any declared scheme parameter: for each value it builds the scheme with
// that parameter substituted, evaluates it on every benchmark's chosen
// cache at tech, and averages. An empty param selects the scheme's
// positional parameter.
//
// Dense sweeps are the aggregate kernel's home turf: each benchmark task
// answers the whole value list in one leakage.EvaluateMany pass over the
// suite's cached prefix aggregates — O(values x log buckets) per
// benchmark instead of the pre-aggregate O(values x buckets) walk — and
// the reduction runs in deterministic value-major, benchmark-inner order,
// matching the sequential loop the grid path used.
func (s *Suite) SweepParamContext(ctx context.Context, scheme, param string, iCache bool, tech power.Technology, values []leakage.ParamValue) ([]ParamSweepPoint, error) {
	pols, name, err := resolveSweepPolicies(scheme, param, tech, values)
	if err != nil {
		return nil, err
	}
	all, err := s.AllContext(ctx)
	if err != nil {
		return nil, err
	}
	sc := s.metrics.Scope("sweep")
	res := make([][]leakage.Evaluation, len(all))
	pool := telemetry.NewPoolIn(s.metrics, s.poolWorkers())
	for bi, bd := range all {
		bi, bd := bi, bd
		pool.Go(func() error {
			if err := ctx.Err(); err != nil {
				return err
			}
			_, agg := bd.Side(iCache)
			evs, err := leakage.EvaluateMany(tech, agg, pols)
			if err != nil {
				return fmt.Errorf("experiments: sweep %s/%s: %w", name, bd.Name, err)
			}
			res[bi] = evs
			return nil
		})
	}
	err = pool.Wait()
	if cerr := ctx.Err(); cerr != nil {
		return nil, cerr
	}
	if err != nil {
		return nil, err
	}
	sc.Counter("points").Add(uint64(len(values)))
	sc.Counter("evaluations").Add(uint64(len(values) * len(all)))
	out := make([]ParamSweepPoint, 0, len(values))
	for vi, v := range values {
		var sum float64
		for bi := range all {
			sum += res[bi][vi].Savings
		}
		out = append(out, ParamSweepPoint{Value: v, Savings: sum / float64(len(all))})
	}
	return out, nil
}

// resolveSweepPolicies validates a (scheme, param, values) sweep request
// against the default registry and builds one policy per value at tech;
// shared by the suite-wide and scenario-scoped parameter sweeps. It
// returns the canonical scheme name for error labels.
func resolveSweepPolicies(scheme, param string, tech power.Technology, values []leakage.ParamValue) ([]leakage.Policy, string, error) {
	if len(values) == 0 {
		return nil, "", fmt.Errorf("%w: empty parameter sweep", ErrBadOption)
	}
	name := strings.ToLower(strings.TrimSpace(scheme))
	reg, ok := leakage.DefaultRegistry().Lookup(name)
	if !ok {
		return nil, "", fmt.Errorf("%w: %q (known: %s)", ErrUnknownPolicy, scheme, strings.Join(PolicyNames(), ", "))
	}
	param = strings.ToLower(strings.TrimSpace(param))
	if param == "" {
		if reg.Positional == "" {
			return nil, "", fmt.Errorf("%w: scheme %q has no positional parameter to sweep", ErrUnknownPolicy, scheme)
		}
		param = reg.Positional
	}
	if _, ok := reg.Schema(param); !ok {
		return nil, "", fmt.Errorf("%w: scheme %q has no parameter %q", ErrUnknownPolicy, scheme, param)
	}
	pols := make([]leakage.Policy, len(values))
	for vi, v := range values {
		pol, err := BuildPolicy(leakage.PolicySpec{Scheme: name, Params: leakage.Params{param: v}}, tech)
		if err != nil {
			return nil, "", err
		}
		pols[vi] = pol
	}
	return pols, name, nil
}

// SweepThetaContext is the theta-specific compat shim over
// SweepParamContext: it sweeps the scheme's positional parameter
// ("opt-sleep", "opt-hybrid", "sleep-decay", ...) across the given uint
// values, exactly as the pre-registry sweep did.
func (s *Suite) SweepThetaContext(ctx context.Context, scheme string, iCache bool, tech power.Technology, thetas []uint64) ([]SweepPoint, error) {
	if len(thetas) == 0 {
		return nil, fmt.Errorf("%w: empty theta sweep", ErrBadOption)
	}
	values := make([]leakage.ParamValue, len(thetas))
	for i, theta := range thetas {
		values[i] = leakage.Uint(theta)
	}
	pts, err := s.SweepParamContext(ctx, scheme, "", iCache, tech, values)
	if err != nil {
		return nil, err
	}
	out := make([]SweepPoint, len(pts))
	for i, p := range pts {
		out[i] = SweepPoint{Theta: thetas[i], Savings: p.Savings}
	}
	return out, nil
}

// Workers reports the suite's resolved parallelism bound (WithWorkers,
// defaulting to GOMAXPROCS); the serving layer sizes its admission
// semaphore off it so HTTP concurrency and simulation concurrency share
// one budget.
func (s *Suite) Workers() int { return s.poolWorkers() }
