package experiments

import (
	"errors"
	"strings"
	"testing"

	"leakbound/internal/power"
)

// FuzzParsePolicy throws arbitrary query spellings at the policy parser:
// it must never panic, every failure must be matchable as
// ErrUnknownPolicy (the serving layer maps that sentinel to a 400), and
// parsing must be deterministic — the same spec yields the same policy.
func FuzzParsePolicy(f *testing.F) {
	for _, name := range PolicyNames() {
		f.Add(name)
		f.Add(name + "@5088")
	}
	f.Add("")
	f.Add("  Opt-Sleep@2048  ")
	f.Add("opt-sleep@")
	f.Add("opt-sleep@-1")
	f.Add("opt-sleep@18446744073709551615")
	f.Add("opt-sleep@18446744073709551616") // one past MaxUint64
	f.Add("opt-hybrid@0")
	f.Add("periodic-drowsy@")
	f.Add("bogus@@3")
	f.Add("@123")
	f.Add("opt-sleep@0x10")
	f.Add("active@1@2")

	tech := power.Default()
	f.Fuzz(func(t *testing.T, spec string) {
		pol, err := ParsePolicy(spec, tech)
		if err != nil {
			if !errors.Is(err, ErrUnknownPolicy) {
				t.Fatalf("ParsePolicy(%q) error %v is not matchable as ErrUnknownPolicy", spec, err)
			}
			return
		}
		if pol == nil || pol.Name() == "" {
			t.Fatalf("ParsePolicy(%q) succeeded with an unusable policy %#v", spec, pol)
		}
		// Deterministic: a second parse of the same spec produces the same
		// policy.
		again, err := ParsePolicy(spec, tech)
		if err != nil {
			t.Fatalf("ParsePolicy(%q) second parse failed: %v", spec, err)
		}
		if again.Name() != pol.Name() {
			t.Fatalf("ParsePolicy(%q) is nondeterministic: %q then %q", spec, pol.Name(), again.Name())
		}
		// Canonical spellings are case- and whitespace-insensitive.
		folded, err := ParsePolicy(strings.ToUpper(" "+spec+" "), tech)
		if err != nil || folded.Name() != pol.Name() {
			t.Fatalf("ParsePolicy(%q) not case/space-insensitive: %v %v", spec, folded, err)
		}
	})
}
