package experiments

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"leakbound/internal/power"
)

// FuzzParsePolicy throws arbitrary query spellings at the policy parser:
// it must never panic, every failure must be matchable as
// ErrUnknownPolicy (the serving layer maps that sentinel to a 400), and
// parsing must be deterministic — the same spec yields the same policy.
// Specs accepted by the structured registry grammar additionally
// round-trip through their canonical String() spelling to an equal spec
// and a deep-equal policy.
func FuzzParsePolicy(f *testing.F) {
	for _, name := range PolicyNames() {
		f.Add(name)
		f.Add(name + "@5088")
	}
	f.Add("")
	f.Add("  Opt-Sleep@2048  ")
	f.Add("opt-sleep@")
	f.Add("opt-sleep@-1")
	f.Add("opt-sleep@18446744073709551615")
	f.Add("opt-sleep@18446744073709551616") // one past MaxUint64
	f.Add("opt-hybrid@0")
	f.Add("periodic-drowsy@")
	f.Add("bogus@@3")
	f.Add("@123")
	f.Add("opt-sleep@0x10")
	f.Add("active@1@2")
	// The structured spec grammar: named parameters, lists, and the legacy
	// ignored-theta compat spelling.
	f.Add("opt-sleep@theta=8192")
	f.Add("coloring@colors=4,frames=512")
	f.Add("coloring@16")
	f.Add("waymemo@accuracy=0.9")
	f.Add("amc@theta=8000,tag-fraction=0.06")
	f.Add("opt-sleep@theta=1,theta=2")
	f.Add("coloring@bogus=1")
	f.Add("waymemo@accuracy=nan")
	f.Add("active@5")
	f.Add("opt-sleep@=5")

	tech := power.Default()
	f.Fuzz(func(t *testing.T, spec string) {
		pol, err := ParsePolicy(spec, tech)
		if err != nil {
			if !errors.Is(err, ErrUnknownPolicy) {
				t.Fatalf("ParsePolicy(%q) error %v is not matchable as ErrUnknownPolicy", spec, err)
			}
			return
		}
		if pol == nil || pol.Name() == "" {
			t.Fatalf("ParsePolicy(%q) succeeded with an unusable policy %#v", spec, pol)
		}
		// Deterministic: a second parse of the same spec produces the same
		// policy.
		again, err := ParsePolicy(spec, tech)
		if err != nil {
			t.Fatalf("ParsePolicy(%q) second parse failed: %v", spec, err)
		}
		if again.Name() != pol.Name() {
			t.Fatalf("ParsePolicy(%q) is nondeterministic: %q then %q", spec, pol.Name(), again.Name())
		}
		// Canonical spellings are case- and whitespace-insensitive.
		folded, err := ParsePolicy(strings.ToUpper(" "+spec+" "), tech)
		if err != nil || folded.Name() != pol.Name() {
			t.Fatalf("ParsePolicy(%q) not case/space-insensitive: %v %v", spec, folded, err)
		}
		// Specs that parse under the structured grammar round-trip through
		// the canonical String() spelling to an equal spec and policy. (A
		// spec accepted only through the legacy ignored-theta compat path,
		// e.g. "active@5", has no structured parse and is exempt.)
		ps, specErr := ParsePolicySpec(spec)
		if specErr != nil {
			return
		}
		back, err := ParsePolicySpec(ps.String())
		if err != nil {
			t.Fatalf("canonical %q of %q does not reparse: %v", ps.String(), spec, err)
		}
		if back.String() != ps.String() {
			t.Fatalf("canonical spelling unstable: %q -> %q", ps.String(), back.String())
		}
		canonical, err := BuildPolicy(back, tech)
		if err != nil {
			t.Fatalf("canonical %q of %q does not build: %v", ps.String(), spec, err)
		}
		if !reflect.DeepEqual(canonical, pol) {
			t.Fatalf("canonical %q builds %#v, original %q builds %#v", ps.String(), canonical, spec, pol)
		}
	})
}
