package experiments

// Property test for the streaming tentpole: the per-event golden path
// (cpu.Run with a one-event-at-a-time sink and standalone Classify/Observe
// calls), the fused single-pass streaming path (cpu.RunStream with
// ClassifyObserve and shared stride tables), and the ring/sharded path
// must produce byte-identical interval distributions, engine statistics
// and leakage evaluations — for randomized workloads, not just the six
// built-in benchmarks. Runs under -race in CI (make race covers ./...).

import (
	"context"
	"fmt"
	"testing"

	"leakbound/internal/interval"
	"leakbound/internal/leakage"
	"leakbound/internal/power"
	"leakbound/internal/prefetch"
	"leakbound/internal/sim/cache"
	"leakbound/internal/sim/cpu"
	"leakbound/internal/sim/trace"
	"leakbound/internal/workload"
)

// splitmix64 derives the per-seed parameter stream; fixed constants keep
// every derivation reproducible from the seed alone.
func splitmix64(x *uint64) uint64 {
	*x += 0x9E3779B97F4A7C15
	z := *x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// seededWorkload builds a randomized multi-phase workload whose every
// parameter derives from seed. Patterns are stateful cursors, so each
// pipeline run gets its own fresh build (identical by construction)
// rather than replaying a shared instance.
func seededWorkload(t *testing.T, seed uint64) workload.Workload {
	t.Helper()
	s := seed
	b := workload.NewBuilder(fmt.Sprintf("prop-%016x", seed))
	phases := 2 + int(splitmix64(&s)%2)
	for p := 0; p < phases; p++ {
		seq := b.Sequential((16+splitmix64(&s)%48)<<10, 8+8*(splitmix64(&s)%8))
		chase := b.Chase(256+int(splitmix64(&s)%1536), 64, splitmix64(&s))
		strided := b.Strided(64<<10, 4<<10, 512, 2+int(splitmix64(&s)%4))
		hot := b.Hot(1 + int(splitmix64(&s)%16))
		b.Phase(workload.PhaseSpec{
			BodyInstrs: 24 + int(splitmix64(&s)%120),
			Iterations: 300 + int(splitmix64(&s)%900),
			MemEvery:   2 + int(splitmix64(&s)%3),
			Loads:      []workload.Pattern{seq, chase, strided},
			Stores:     []workload.Pattern{hot},
		})
	}
	w, err := b.Build()
	if err != nil {
		t.Fatalf("seed %#x: building workload: %v", seed, err)
	}
	return w
}

// equivParts builds the fresh hierarchy, classifiers and engines every
// pipeline variant starts from.
func equivParts(t *testing.T) (*cache.Hierarchy, *prefetch.Classifier, *prefetch.Classifier, *prefetch.Engine, *prefetch.Engine) {
	t.Helper()
	hier, err := cache.NewHierarchy(cache.AlphaLike())
	if err != nil {
		t.Fatal(err)
	}
	iEng, err := prefetch.NewEngine(prefetch.DefaultEngineConfig(prefetch.ForICache()))
	if err != nil {
		t.Fatal(err)
	}
	dEng, err := prefetch.NewEngine(prefetch.DefaultEngineConfig(prefetch.ForDCache()))
	if err != nil {
		t.Fatal(err)
	}
	iClass := prefetch.MustNewClassifier(prefetch.ForICache())
	dClass := prefetch.MustNewClassifier(prefetch.ForDCache())
	return hier, iClass, dClass, iEng, dEng
}

// simulateGolden is the reference pipeline: one sink callback per event,
// collectors on the classic Classify/Observe interface, engines probing
// their own private stride tables. Everything the fused streaming path
// optimized away is still present here, which is exactly why it anchors
// the equivalence.
func simulateGolden(t *testing.T, name string, w workload.Workload) (*BenchmarkData, error) {
	hier, iClass, dClass, iEng, dEng := equivParts(t)
	iCol, err := interval.NewCollector(trace.L1I, uint32(hier.L1I().Config().NumLines()), iClass)
	if err != nil {
		return nil, err
	}
	dCol, err := interval.NewCollector(trace.L1D, uint32(hier.L1D().Config().NumLines()), dClass)
	if err != nil {
		return nil, err
	}
	l2Col, err := interval.NewCollector(trace.L2, uint32(hier.L2().Config().NumLines()), nil)
	if err != nil {
		return nil, err
	}
	var sinkErr error
	res, err := cpu.Run(w, hier, cpu.DefaultConfig(), func(e trace.Event) {
		if sinkErr != nil {
			return
		}
		switch e.Cache {
		case trace.L1I:
			sinkErr = iCol.Add(e)
			iEng.Access(e)
		case trace.L1D:
			sinkErr = dCol.Add(e)
			dEng.Access(e)
		case trace.L2:
			sinkErr = l2Col.Add(e)
		}
	})
	if err != nil {
		return nil, err
	}
	if sinkErr != nil {
		return nil, sinkErr
	}
	return finishData(name, res, iCol, dCol, l2Col, iEng, dEng)
}

// requireSameData fails the test if two pipeline outputs differ anywhere
// a bit can differ: simulation result, all three distributions, engine
// stats, and the leakage evaluations computed from the distributions.
func requireSameData(t *testing.T, label string, a, b *BenchmarkData) {
	t.Helper()
	if a.Result != b.Result {
		t.Errorf("%s: results differ: %+v vs %+v", label, a.Result, b.Result)
	}
	if !a.ICache.Equal(b.ICache) {
		t.Errorf("%s: I-cache distributions differ", label)
	}
	if !a.DCache.Equal(b.DCache) {
		t.Errorf("%s: D-cache distributions differ", label)
	}
	if !a.L2Cache.Equal(b.L2Cache) {
		t.Errorf("%s: L2 distributions differ", label)
	}
	if a.IEngine != b.IEngine {
		t.Errorf("%s: I-engine stats differ: %+v vs %+v", label, a.IEngine, b.IEngine)
	}
	if a.DEngine != b.DEngine {
		t.Errorf("%s: D-engine stats differ: %+v vs %+v", label, a.DEngine, b.DEngine)
	}
	tech := power.Default()
	for _, c := range []struct {
		cache  string
		da, db *interval.Distribution
	}{{"icache", a.ICache, b.ICache}, {"dcache", a.DCache, b.DCache}} {
		ba, err := leakage.HybridBreakdown(tech, c.da)
		if err != nil {
			t.Fatalf("%s/%s: %v", label, c.cache, err)
		}
		bb, err := leakage.HybridBreakdown(tech, c.db)
		if err != nil {
			t.Fatalf("%s/%s: %v", label, c.cache, err)
		}
		if ba != bb {
			t.Errorf("%s/%s: leakage breakdowns differ: %+v vs %+v", label, c.cache, ba, bb)
		}
	}
}

// TestStreamingEquivalenceRandomWorkloads is the tentpole's property
// test: for randomized workload seeds, the fused streaming pipeline and
// the ring/sharded pipeline must match the per-event golden pipeline bit
// for bit.
func TestStreamingEquivalenceRandomWorkloads(t *testing.T) {
	seeds := []uint64{1, 0xDECAF, 0xC0FFEE42}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed_%#x", seed), func(t *testing.T) {
			t.Parallel()
			name := fmt.Sprintf("prop-%016x", seed)

			golden, err := simulateGolden(t, name, seededWorkload(t, seed))
			if err != nil {
				t.Fatalf("golden: %v", err)
			}

			hier, iClass, dClass, iEng, dEng := equivParts(t)
			fused, err := simulateInline(context.Background(), name,
				seededWorkload(t, seed), hier, iClass, dClass, iEng, dEng)
			if err != nil {
				t.Fatalf("inline: %v", err)
			}

			hier, iClass, dClass, iEng, dEng = equivParts(t)
			ring, err := simulateRing(context.Background(), name,
				seededWorkload(t, seed), hier, iClass, dClass, iEng, dEng, 4)
			if err != nil {
				t.Fatalf("ring: %v", err)
			}

			requireSameData(t, "golden-vs-inline", golden, fused)
			requireSameData(t, "golden-vs-ring", golden, ring)
		})
	}
}
