package experiments

// The Pareto view of the policy space: leakage savings alone rank the
// oracles, but the sleep-based schemes buy their savings with induced
// misses the drowsy schemes never pay. ParetoFrontierContext evaluates
// both axes — benchmark-averaged normalized leakage (energy / always-on
// baseline) and induced re-fetches per 1000 intervals — for any set of
// policy specs and marks the non-dominated frontier, which by
// construction contains the paper's OPT-Hybrid bound.

import (
	"context"
	"fmt"
	"strings"

	"leakbound/internal/leakage"
	"leakbound/internal/power"
	"leakbound/internal/report"
	"leakbound/internal/telemetry"
)

// ParetoPoint is one policy's position in the (normalized leakage,
// induced miss rate) plane, benchmark-averaged on one cache side.
type ParetoPoint struct {
	// Spec is the canonical spec string that built the policy.
	Spec string `json:"spec"`
	// Policy is the built policy's display name.
	Policy string `json:"policy"`
	// NormalizedLeakage is the benchmark-averaged ratio of the policy's
	// leakage energy to the always-active baseline (lower is better;
	// 1 - savings).
	NormalizedLeakage float64 `json:"normalized_leakage"`
	// InducedMissRate is the benchmark-averaged induced re-fetches per
	// 1000 intervals (lower is better; 0 for the drowsy-only schemes).
	InducedMissRate float64 `json:"induced_miss_rate"`
	// Frontier marks the point as non-dominated: no other evaluated point
	// is at least as good on both axes and strictly better on one.
	Frontier bool `json:"frontier"`
}

// DefaultParetoSpecs returns one representative per technique family with
// its default parameters, in registration order — the default population
// for the frontier query. Registered refinements (Registration.Refines)
// are skipped: a refinement dominates its base scheme by construction
// (strictly more oracle information), so including both would collapse
// the technique-level frontier into a family-internal comparison. Callers
// wanting the refinements on the plot pass them explicitly.
func DefaultParetoSpecs() []leakage.PolicySpec {
	regs := leakage.DefaultRegistry().Schemes()
	specs := make([]leakage.PolicySpec, 0, len(regs))
	for _, reg := range regs {
		if reg.Refines != "" {
			continue
		}
		specs = append(specs, leakage.PolicySpec{Scheme: reg.Name})
	}
	return specs
}

// ParetoFrontierContext evaluates every spec on every benchmark's chosen
// cache at tech and returns the points in spec order with the
// non-dominated set marked. A nil/empty specs slice evaluates
// DefaultParetoSpecs.
//
// The population runs on the aggregate kernel: one parallel task per
// benchmark answers the whole spec list — both axes — with
// leakage.EvaluateMany and the aggregate miss folds over the suite's
// cached prefix summaries, so the population costs O(specs x log buckets)
// per benchmark instead of a full distribution walk per (spec, benchmark)
// cell. The reductions and the dominance pass are sequential and
// deterministic (spec-major, benchmark-inner, matching the pre-aggregate
// loop order).
func (s *Suite) ParetoFrontierContext(ctx context.Context, iCache bool, tech power.Technology, specs []leakage.PolicySpec) ([]ParetoPoint, error) {
	if len(specs) == 0 {
		specs = DefaultParetoSpecs()
	}
	policies := make([]leakage.Policy, len(specs))
	for i, spec := range specs {
		pol, err := BuildPolicy(spec, tech)
		if err != nil {
			return nil, err
		}
		policies[i] = pol
	}
	all, err := s.AllContext(ctx)
	if err != nil {
		return nil, err
	}
	evsAll := make([][]leakage.Evaluation, len(all))
	rates := make([][]float64, len(all))
	missErrs := make([][]error, len(all))
	pool := telemetry.NewPoolIn(s.metrics, s.poolWorkers())
	for bi, bd := range all {
		bi, bd := bi, bd
		pool.Go(func() error {
			if err := ctx.Err(); err != nil {
				return err
			}
			_, agg := bd.Side(iCache)
			evs, err := leakage.EvaluateMany(tech, agg, policies)
			if err != nil {
				return fmt.Errorf("experiments: pareto %s: %w", bd.Name, err)
			}
			evsAll[bi] = evs
			rates[bi] = make([]float64, len(policies))
			missErrs[bi] = make([]error, len(policies))
			for si, pol := range policies {
				// Miss-fold errors are per (spec, benchmark): stash them and
				// surface the first one in deterministic reduction order
				// below, not in completion order.
				rates[bi][si], missErrs[bi][si] = leakage.InducedMissRateAggregate(tech, agg, pol)
			}
			return nil
		})
	}
	err = pool.Wait()
	if cerr := ctx.Err(); cerr != nil {
		return nil, cerr
	}
	if err != nil {
		return nil, err
	}
	points := make([]ParetoPoint, len(specs))
	for i, pol := range policies {
		var leak, miss float64
		for bi := range all {
			leak += evsAll[bi][i].Energy / evsAll[bi][i].Baseline
			if err := missErrs[bi][i]; err != nil {
				return nil, fmt.Errorf("experiments: pareto %q: %w", specs[i], err)
			}
			miss += rates[bi][i]
		}
		n := float64(len(all))
		points[i] = ParetoPoint{
			Spec:              specs[i].String(),
			Policy:            pol.Name(),
			NormalizedLeakage: leak / n,
			InducedMissRate:   miss / n,
		}
	}
	markFrontier(points)
	return points, nil
}

// markFrontier sets Frontier on every non-dominated point: p is dominated
// iff some q is at least as good on both axes and strictly better on one.
// Coincident points are mutually non-dominating, so duplicates of a
// frontier point stay on the frontier.
func markFrontier(points []ParetoPoint) {
	for i := range points {
		dominated := false
		for j := range points {
			if i == j {
				continue
			}
			p, q := points[i], points[j]
			if q.NormalizedLeakage <= p.NormalizedLeakage && q.InducedMissRate <= p.InducedMissRate &&
				(q.NormalizedLeakage < p.NormalizedLeakage || q.InducedMissRate < p.InducedMissRate) {
				dominated = true
				break
			}
		}
		points[i].Frontier = !dominated
	}
}

// ParetoTableContext renders the frontier query as a table: one row per
// spec with both axes and the frontier mark.
func (s *Suite) ParetoTableContext(ctx context.Context, iCache bool, tech power.Technology, specs []leakage.PolicySpec) (*report.Table, error) {
	points, err := s.ParetoFrontierContext(ctx, iCache, tech, specs)
	if err != nil {
		return nil, err
	}
	side := "(a) Instruction Cache"
	if !iCache {
		side = "(b) Data Cache"
	}
	t := report.NewTable("Pareto "+side+": normalized leakage vs induced misses per scheme",
		"spec", "policy", "normalized leakage", "misses/1K intervals", "frontier")
	for _, p := range points {
		mark := ""
		if p.Frontier {
			mark = "*"
		}
		t.MustAddRow(p.Spec, p.Policy,
			fmt.Sprintf("%.4f", p.NormalizedLeakage),
			fmt.Sprintf("%.3f", p.InducedMissRate), mark)
	}
	return t, nil
}

// TechniqueFamiliesTableContext evaluates the related-work technique
// families against the paper's bound, Figure-8 style: cache coloring at
// three granularities (Mittal, arXiv:1309.5647), way memoization at each
// benchmark's measured prefetch-engine accuracy (Ishihara & Fallah,
// arXiv:0710.4703), and the realizable Prefetch-B, all as savings
// relative to OPT-Hybrid's oracle ceiling.
func (s *Suite) TechniqueFamiliesTableContext(ctx context.Context, iCache bool, tech power.Technology) (*report.Table, error) {
	all, err := s.AllContext(ctx)
	if err != nil {
		return nil, err
	}
	fixed := []leakage.Policy{
		leakage.OPTHybrid{},
		leakage.Coloring{Colors: 2, Frames: leakage.DefaultColoringFrames},
		leakage.Coloring{Colors: 8, Frames: leakage.DefaultColoringFrames},
		leakage.Coloring{Colors: 64, Frames: leakage.DefaultColoringFrames},
		leakage.PrefetchB(),
	}
	// One policy slot per benchmark row: the fixed set plus a WayMemo at
	// that benchmark's measured engine accuracy.
	perBench := make([][]leakage.Policy, len(all))
	cells := make([]Cell, 0, len(all)*(len(fixed)+1))
	for bi, bd := range all {
		dist, agg := bd.Side(iCache)
		acc := bd.IEngine.Accuracy()
		if !iCache {
			acc = bd.DEngine.Accuracy()
		}
		pols := append(append([]leakage.Policy{}, fixed...), leakage.WayMemo{Accuracy: acc})
		perBench[bi] = pols
		for _, p := range pols {
			cells = append(cells, Cell{Tech: tech, Policy: p, Dist: dist, Agg: agg,
				Label: fmt.Sprintf("families/%s/%s", bd.Name, p.Name())})
		}
	}
	evs, err := s.EvaluateGrid(ctx, cells)
	if err != nil {
		return nil, err
	}
	side := "(a) Instruction Cache"
	if !iCache {
		side = "(b) Data Cache"
	}
	headers := []string{"benchmark"}
	for _, p := range fixed {
		headers = append(headers, p.Name())
	}
	headers = append(headers, "WayMemo(engine)")
	t := report.NewTable("Technique families "+side+": savings vs the OPT-Hybrid bound", headers...)
	nPols := len(fixed) + 1
	avg := make([]float64, nPols)
	k := 0
	for _, bd := range all {
		row := []string{bd.Name}
		for i := 0; i < nPols; i++ {
			row = append(row, report.Pct(evs[k].Savings))
			avg[i] += evs[k].Savings / float64(len(all))
			k++
		}
		t.MustAddRow(row...)
	}
	avgRow := []string{"average"}
	for _, v := range avg {
		avgRow = append(avgRow, report.Pct(v))
	}
	t.MustAddRow(avgRow...)
	return t, nil
}

// PolicyTable renders the default registry as a table — the single source
// of truth behind README's policy list and the "policies" CLI item: one
// row per scheme with its parameters (positional first) and doc line.
func PolicyTable() *report.Table {
	t := report.NewTable("Registered policy schemes", "scheme", "parameters", "description")
	for _, reg := range leakage.DefaultRegistry().Schemes() {
		params := make([]string, 0, len(reg.Params))
		for _, p := range reg.Params {
			name := p.Name
			if p.Name == reg.Positional {
				name += " (positional)"
			}
			params = append(params, fmt.Sprintf("%s %s, default %s", name, p.Kind, p.Default))
		}
		cell := "-"
		if len(params) > 0 {
			cell = strings.Join(params, "; ")
		}
		t.MustAddRow(reg.Name, cell, reg.Doc)
	}
	return t
}
