package experiments

import (
	"bytes"
	"context"
	"os"
	"reflect"
	"testing"

	"leakbound/internal/leakage"
	"leakbound/internal/power"
)

// TestGoldenResultsUnchanged is the registry's regression anchor: with every
// policy now built through the registered factories, the scale-1 suite must
// render Figure 8 (both cache sides) and Table 2 byte-identically to the
// committed RESULTS.txt. It also evaluates every registered scheme at its
// defaults on the same suite first, so a registration whose factory perturbs
// shared state would be caught here rather than in a report diff.
func TestGoldenResultsUnchanged(t *testing.T) {
	if testing.Short() {
		t.Skip("scale-1 golden check skipped in -short")
	}
	golden, err := os.ReadFile("../../RESULTS.txt")
	if err != nil {
		t.Fatalf("read RESULTS.txt: %v", err)
	}
	tech, err := power.TechnologyByName("70nm")
	if err != nil {
		t.Fatalf("70nm: %v", err)
	}
	s := MustNew(WithScale(1))

	// Every registered scheme builds and evaluates at defaults.
	for _, name := range PolicyNames() {
		pol, err := ParsePolicy(name, tech)
		if err != nil {
			t.Fatalf("ParsePolicy(%q): %v", name, err)
		}
		ev, err := s.EvaluateCellContext(context.Background(), "gzip", true, tech, pol)
		if err != nil {
			t.Fatalf("evaluate %q: %v", name, err)
		}
		if ev.Baseline <= 0 {
			t.Fatalf("%q: non-positive baseline %g", name, ev.Baseline)
		}
	}

	// The legacy theta spelling still builds the exact legacy policy value.
	pol, err := ParsePolicy("opt-sleep@8192", tech)
	if err != nil {
		t.Fatalf(`ParsePolicy("opt-sleep@8192"): %v`, err)
	}
	if !reflect.DeepEqual(pol, leakage.OPTSleep{Theta: 8192}) {
		t.Fatalf(`ParsePolicy("opt-sleep@8192") = %#v, want leakage.OPTSleep{Theta: 8192}`, pol)
	}

	check := func(section string, buf []byte) {
		t.Helper()
		if !bytes.Contains(golden, buf) {
			t.Errorf("%s output no longer matches RESULTS.txt; got:\n%s", section, buf)
		}
	}
	for _, iCache := range []bool{true, false} {
		tbl, err := Figure8Table(s, iCache)
		if err != nil {
			t.Fatalf("Figure8Table(iCache=%v): %v", iCache, err)
		}
		var buf bytes.Buffer
		if err := tbl.Render(&buf); err != nil {
			t.Fatalf("render figure 8: %v", err)
		}
		check("Figure 8", buf.Bytes())
	}
	tbl, err := Table2(s)
	if err != nil {
		t.Fatalf("Table2: %v", err)
	}
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatalf("render table 2: %v", err)
	}
	check("Table 2", buf.Bytes())
}
