package experiments

// The concurrent evaluation grid. Policy evaluation over a cached
// distribution is pure CPU work with no shared state, so the sweeps behind
// Figure 7, Figure 8 and Table 2 — each a nest of loops over
// (technology x policy x distribution) — fan their cells out over the
// suite's worker pool instead of evaluating them one by one.
//
// Determinism: EvaluateGrid writes each cell's result into the slot the
// caller assigned it, so scheduling order never leaks into the output.
// Callers reduce the returned slice in the exact order the sequential
// loops used, keeping every floating-point sum bit-identical to the
// pre-grid implementation (TestGridMatchesSequential pins this).

import (
	"context"
	"fmt"
	"math"
	"time"

	"leakbound/internal/interval"
	"leakbound/internal/leakage"
	"leakbound/internal/power"
	"leakbound/internal/telemetry"
)

// Cell is one (technology, policy, distribution) evaluation of the grid.
type Cell struct {
	Tech   power.Technology
	Policy leakage.Policy
	Dist   *interval.Distribution
	// Agg, when set, is the distribution's prefix-aggregate summary: the
	// cell evaluates through the closed-form fast path
	// (leakage.EvaluateAggregate), falling back to the reference walk for
	// policies without a declared closed form. When nil the cell always
	// takes the reference walk over Dist.
	Agg *interval.Aggregates
	// Label names the cell in errors and telemetry; optional (the index is
	// used when empty).
	Label string
}

// EvaluateGrid evaluates every cell concurrently over the suite's worker
// pool (WithWorkers) and returns evaluations indexed exactly like cells:
// out[i] is the evaluation of cells[i] regardless of completion order.
// Cancelling ctx skips cells not yet started and returns ctx.Err(); per-cell
// metrics land in the "grid" telemetry scope either way.
func (s *Suite) EvaluateGrid(ctx context.Context, cells []Cell) ([]leakage.Evaluation, error) {
	out := make([]leakage.Evaluation, len(cells))
	sc := s.metrics.Scope("grid")
	evaluated := sc.Counter("cells_evaluated")
	failed := sc.Counter("cells_failed")
	skipped := sc.Counter("cells_skipped")
	cellNS := sc.Histogram("cell_ns")
	pool := telemetry.NewPoolIn(s.metrics, s.poolWorkers())
	for i := range cells {
		i := i
		pool.Go(func() error {
			if err := ctx.Err(); err != nil {
				skipped.Add(1)
				return err
			}
			//lint:ignore determinism wall clock feeds the cell_ns telemetry histogram only, never the evaluated energies
			start := time.Now()
			var ev leakage.Evaluation
			var err error
			if cells[i].Agg != nil {
				ev, err = leakage.EvaluateAggregate(cells[i].Tech, cells[i].Agg, cells[i].Policy)
			} else {
				ev, err = leakage.Evaluate(cells[i].Tech, cells[i].Dist, cells[i].Policy)
			}
			if err != nil {
				failed.Add(1)
				label := cells[i].Label
				if label == "" {
					label = fmt.Sprintf("#%d", i)
				}
				return fmt.Errorf("experiments: grid cell %s: %w", label, err)
			}
			out[i] = ev
			evaluated.Add(1)
			cellNS.Record(uint64(time.Since(start).Nanoseconds()))
			return nil
		})
	}
	err := pool.Wait()
	if cerr := ctx.Err(); cerr != nil {
		return nil, cerr
	}
	if err != nil {
		return nil, err
	}
	return out, nil
}

// table2Policy builds the policy for one Table 2 scheme at one technology
// node (OPT-Sleep's theta is that node's drowsy-sleep inflection point).
func table2Policy(scheme string, tech power.Technology) (leakage.Policy, error) {
	_, b, err := tech.InflectionPoints()
	if err != nil {
		return nil, err
	}
	switch scheme {
	case "OPT-Drowsy":
		return leakage.OPTDrowsy{}, nil
	case "OPT-Sleep":
		return leakage.OPTSleep{Theta: uint64(math.Round(b))}, nil
	case "OPT-Hybrid":
		return leakage.OPTHybrid{}, nil
	default:
		return nil, fmt.Errorf("%w: %q", ErrUnknownScheme, scheme)
	}
}
