package experiments

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"leakbound/internal/leakage"
	"leakbound/internal/power"
	"leakbound/internal/telemetry"
	"leakbound/internal/workload"
	"leakbound/internal/workload/spec"
)

// testSpec parses a tiny workload spec, varying name and seed so tests
// can mint distinct scenarios cheaply.
func testSpec(t *testing.T, name string, seed uint64) *spec.Spec {
	t.Helper()
	raw := fmt.Sprintf(`{"version":1,"name":%q,"seed":%d,"phases":[
		{"body_instrs":200,"iterations":60,"mix":[
			{"kernel":"loop","bytes":16384},{"kernel":"hot","lines":8}]},
		{"body_instrs":150,"iterations":40,"mem_every":4,
		 "schedule":{"kind":"bursty","steps":2,"duty":0.5},
		 "mix":[{"kernel":"chase","elems":128}]}]}`, name, seed)
	s, err := spec.Parse([]byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestWithScenariosValidation(t *testing.T) {
	good := testSpec(t, "good-spec", 1)
	cases := []struct {
		label string
		opt   Option
	}{
		{"nil scenario", WithScenarios(nil)},
		{"builtin shadow", WithScenarios(testSpec(t, "gzip", 1))},
		{"duplicate", WithScenarios(good, testSpec(t, "good-spec", 2))},
	}
	for _, tc := range cases {
		if _, err := New(WithScale(0.02), tc.opt); !errors.Is(err, ErrBadOption) {
			t.Errorf("%s: got %v, want ErrBadOption", tc.label, err)
		}
	}
	if _, err := New(WithScale(0.02), WithScenarios(good)); err != nil {
		t.Errorf("valid scenario rejected: %v", err)
	}
}

func TestScenarioNamesAndLookup(t *testing.T) {
	sc := testSpec(t, "extra-bench", 7)
	s := MustNew(WithScale(0.02), WithScenarios(sc), WithMetrics(telemetry.NewRegistry()))
	names := s.BenchmarkNames()
	builtin := workload.Names()
	if len(names) != len(builtin)+1 || names[len(names)-1] != "extra-bench" {
		t.Fatalf("BenchmarkNames = %v", names)
	}
	for i, n := range builtin {
		if names[i] != n {
			t.Fatalf("builtin order broken: %v", names)
		}
	}
	if !s.KnownBenchmark("gzip") || !s.KnownBenchmark("extra-bench") {
		t.Error("known benchmarks not recognized")
	}
	if s.KnownBenchmark("nope") {
		t.Error("unknown benchmark recognized")
	}
	if got := len(s.Scenarios()); got != 1 {
		t.Errorf("Scenarios() returned %d entries", got)
	}

	// A suite without scenarios serves exactly the builtin set — the
	// golden-output safety property: registration is purely additive.
	plain := MustNew(WithScale(0.02), WithMetrics(telemetry.NewRegistry()))
	if got := plain.BenchmarkNames(); len(got) != len(builtin) {
		t.Errorf("default suite names = %v", got)
	}
}

func TestScenarioThroughSuite(t *testing.T) {
	sc := testSpec(t, "extra-bench", 7)
	s := MustNew(WithScale(0.5), WithScenarios(sc), WithMetrics(telemetry.NewRegistry()))

	// Resolves by name like any benchmark, and joins AllContext.
	d, err := s.Data("extra-bench")
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "extra-bench" || d.Result.Cycles == 0 {
		t.Fatalf("bad scenario data: %+v", d.Result)
	}
	if d.IAgg == nil || d.DAgg == nil {
		t.Fatal("scenario data missing aggregates")
	}
	all, err := s.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(workload.Names())+1 || all[len(all)-1].Name != "extra-bench" {
		t.Fatalf("AllContext did not include the scenario: %d entries", len(all))
	}
	if all[len(all)-1] != d {
		t.Error("AllContext re-simulated the scenario instead of sharing")
	}

	// Same spec + same scale in a fresh suite is bit-identical.
	s2 := MustNew(WithScale(0.5), WithScenarios(testSpec(t, "extra-bench", 7)), WithMetrics(telemetry.NewRegistry()))
	d2, err := s2.Data("extra-bench")
	if err != nil {
		t.Fatal(err)
	}
	if !d.ICache.Equal(d2.ICache) || !d.DCache.Equal(d2.DCache) {
		t.Error("scenario simulation not deterministic across suites")
	}
	if d.Result != d2.Result {
		t.Errorf("scenario results differ: %+v vs %+v", d.Result, d2.Result)
	}
}

func TestScenarioDiskCache(t *testing.T) {
	dir := t.TempDir()
	sc := testSpec(t, "cached-bench", 3)
	s1 := MustNew(WithScale(0.5), WithScenarios(sc), WithCacheDir(dir), WithMetrics(telemetry.NewRegistry()))
	d1, err := s1.Data("cached-bench")
	if err != nil {
		t.Fatal(err)
	}
	s2 := MustNew(WithScale(0.5), WithScenarios(sc), WithCacheDir(dir), WithMetrics(telemetry.NewRegistry()))
	d2 := s2.loadCached(s2.scenarioCacheKey("cached-bench", sc.Digest()), "cached-bench")
	if d2 == nil {
		t.Fatal("scenario cache miss after store")
	}
	if !d1.ICache.Equal(d2.ICache) {
		t.Error("cached scenario distribution differs")
	}
	// A changed spec (same name, different digest) must miss.
	other := testSpec(t, "cached-bench", 4)
	if other.Digest() == sc.Digest() {
		t.Fatal("digests collide")
	}
	if s2.loadCached(s2.scenarioCacheKey("cached-bench", other.Digest()), "cached-bench") != nil {
		t.Error("stale cache entry served for edited spec")
	}
}

func TestDataForScenarioAdhoc(t *testing.T) {
	ctx := context.Background()
	s := MustNew(WithScale(0.5), WithMetrics(telemetry.NewRegistry()))

	sc := testSpec(t, "adhoc-bench", 11)
	d1, err := s.DataForScenarioContext(ctx, sc)
	if err != nil {
		t.Fatal(err)
	}
	if d1.Name != "adhoc-bench" {
		t.Fatalf("Name = %q", d1.Name)
	}
	// Second request for the same digest reuses the cached result.
	d2, err := s.DataForScenarioContext(ctx, sc)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Error("same digest re-simulated")
	}
	// Ad-hoc entries never leak into the benchmark namespace.
	if s.KnownBenchmark("adhoc-bench") {
		t.Error("ad-hoc scenario registered itself")
	}
	if _, err := s.DataContext(ctx, "adhoc-bench"); !errors.Is(err, workload.ErrUnknownBenchmark) {
		t.Errorf("ad-hoc name resolved by DataContext: %v", err)
	}
	for _, n := range s.SortedNames() {
		if n == "adhoc-bench" {
			t.Error("ad-hoc entry listed in SortedNames")
		}
	}
	if _, err := s.DataForScenarioContext(ctx, nil); !errors.Is(err, ErrBadOption) {
		t.Errorf("nil scenario: %v", err)
	}

	// The ad-hoc window is bounded: the oldest digest is evicted.
	for i := 0; i < adhocDataCap+1; i++ {
		if _, err := s.DataForScenarioContext(ctx, testSpec(t, "churn", uint64(100+i))); err != nil {
			t.Fatal(err)
		}
	}
	s.mu.Lock()
	order, first := len(s.adhocOrder), 0
	for key := range s.data {
		if key == "adhoc:"+sc.Digest() {
			first++
		}
	}
	s.mu.Unlock()
	if order != adhocDataCap {
		t.Errorf("adhocOrder holds %d entries, want %d", order, adhocDataCap)
	}
	if first != 0 {
		t.Error("oldest ad-hoc entry not evicted")
	}
}

func TestDataForScenarioRegisteredShares(t *testing.T) {
	ctx := context.Background()
	sc := testSpec(t, "shared-bench", 5)
	s := MustNew(WithScale(0.5), WithScenarios(sc), WithMetrics(telemetry.NewRegistry()))
	dReg, err := s.DataContext(ctx, "shared-bench")
	if err != nil {
		t.Fatal(err)
	}
	dAdhoc, err := s.DataForScenarioContext(ctx, testSpec(t, "shared-bench", 5))
	if err != nil {
		t.Fatal(err)
	}
	if dReg != dAdhoc {
		t.Error("matching registered scenario not shared with ad-hoc request")
	}
}

func TestEvaluateScenarioCell(t *testing.T) {
	ctx := context.Background()
	s := MustNew(WithScale(0.5), WithMetrics(telemetry.NewRegistry()))
	sc := testSpec(t, "cell-bench", 9)
	tech := power.Default()
	pol, err := ParsePolicy("opt-hybrid", tech)
	if err != nil {
		t.Fatal(err)
	}
	cell, err := s.EvaluateScenarioCellContext(ctx, sc, true, tech, pol)
	if err != nil {
		t.Fatal(err)
	}
	if cell.Benchmark != "cell-bench" || cell.Cache != "i" {
		t.Fatalf("bad coordinates: %+v", cell)
	}
	if cell.Baseline <= 0 || cell.Energy <= 0 || cell.Energy > cell.Baseline {
		t.Errorf("implausible energies: %+v", cell)
	}
}

func TestSweepParamScenario(t *testing.T) {
	ctx := context.Background()
	s := MustNew(WithScale(0.5), WithMetrics(telemetry.NewRegistry()))
	sc := testSpec(t, "sweep-bench", 13)
	tech := power.Default()
	values := []leakage.ParamValue{leakage.Uint(1000), leakage.Uint(10000), leakage.Uint(100000)}
	pts, err := s.SweepParamScenarioContext(ctx, sc, "opt-sleep", "", true, tech, values)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(values) {
		t.Fatalf("got %d points, want %d", len(pts), len(values))
	}
	for i, p := range pts {
		if p.Value != values[i] {
			t.Errorf("point %d value = %v", i, p.Value)
		}
	}
	if _, err := s.SweepParamScenarioContext(ctx, sc, "no-such-scheme", "", true, tech, values); !errors.Is(err, ErrUnknownPolicy) {
		t.Errorf("unknown scheme: %v", err)
	}
	if _, err := s.SweepParamScenarioContext(ctx, sc, "opt-sleep", "", true, tech, nil); !errors.Is(err, ErrBadOption) {
		t.Errorf("empty values: %v", err)
	}
}
