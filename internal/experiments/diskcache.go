package experiments

// Optional on-disk caching of per-benchmark simulation products. The
// simulations are deterministic, so a (benchmark, scale, format-version)
// key fully identifies the result; repeated experiment runs — and
// cross-session parameter sweeps — then skip straight to policy
// evaluation.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"leakbound/internal/interval"
	"leakbound/internal/prefetch"
	"leakbound/internal/sim/cpu"
)

// cacheVersion invalidates old cache entries whenever the simulator,
// workloads, or the distribution format change behaviourally.
const cacheVersion = 3

// cacheMeta is the JSON sidecar holding everything but the distributions.
type cacheMeta struct {
	Version int
	Name    string
	Scale   float64
	Result  cpu.Result
	IEngine prefetch.EngineStats
	DEngine prefetch.EngineStats
}

func (s *Suite) cacheKey(name string) string {
	return fmt.Sprintf("%s_%g_v%d", name, s.scale, cacheVersion)
}

// scenarioCacheKey keys a scenario entry by name plus a spec-digest
// prefix, so editing a spec (same name, new digest) never serves a stale
// simulation.
func (s *Suite) scenarioCacheKey(name, digest string) string {
	if len(digest) > 16 {
		digest = digest[:16]
	}
	return fmt.Sprintf("%s_%s_%g_v%d", name, digest, s.scale, cacheVersion)
}

// loadCached returns the cached benchmark data under key, or nil if
// absent/invalid. Every lookup lands in the "diskcache" hit/miss
// counters — a miss means a fresh simulation follows, whether the cache
// is disabled, cold, or stale.
func (s *Suite) loadCached(key, name string) (d *BenchmarkData) {
	// Touching both counters up front keeps them visible (at zero) in every
	// snapshot, even before the first hit or miss of the other kind.
	dc := s.metrics.Scope("diskcache")
	hits, misses := dc.Counter("hits"), dc.Counter("misses")
	defer func() {
		if d != nil {
			hits.Add(1)
		} else {
			misses.Add(1)
		}
	}()
	if s.cacheDir == "" {
		return nil
	}
	base := filepath.Join(s.cacheDir, key)
	metaRaw, err := os.ReadFile(base + ".json")
	if err != nil {
		return nil
	}
	var meta cacheMeta
	if err := json.Unmarshal(metaRaw, &meta); err != nil {
		return nil
	}
	if meta.Version != cacheVersion || meta.Name != name || meta.Scale != s.scale {
		return nil
	}
	load := func(suffix string) *interval.Distribution {
		f, err := os.Open(base + suffix)
		if err != nil {
			return nil
		}
		defer f.Close()
		d, err := interval.ReadDistribution(f)
		if err != nil {
			return nil
		}
		return d
	}
	iDist := load(".icache")
	dDist := load(".dcache")
	l2Dist := load(".l2")
	if iDist == nil || dDist == nil || l2Dist == nil {
		return nil
	}
	// Sanity: the cached distributions must be mutually consistent.
	if iDist.TotalCycles != meta.Result.Cycles || dDist.TotalCycles != meta.Result.Cycles {
		return nil
	}
	return &BenchmarkData{
		Name: name, Result: meta.Result,
		ICache: iDist, DCache: dDist, L2Cache: l2Dist,
		IEngine: meta.IEngine, DEngine: meta.DEngine,
	}
}

// storeCached best-effort persists the benchmark data; failures are
// silently ignored (the cache is an optimization, not a dependency).
func (s *Suite) storeCached(key string, d *BenchmarkData) {
	if s.cacheDir == "" {
		return
	}
	if err := os.MkdirAll(s.cacheDir, 0o755); err != nil {
		return
	}
	base := filepath.Join(s.cacheDir, key)
	meta := cacheMeta{
		Version: cacheVersion, Name: d.Name, Scale: s.scale,
		Result: d.Result, IEngine: d.IEngine, DEngine: d.DEngine,
	}
	raw, err := json.Marshal(meta)
	if err != nil {
		return
	}
	store := func(suffix string, dist *interval.Distribution) bool {
		f, err := os.Create(base + suffix + ".tmp")
		if err != nil {
			return false
		}
		if err := interval.WriteDistribution(f, dist); err != nil {
			f.Close()
			os.Remove(base + suffix + ".tmp")
			return false
		}
		if err := f.Close(); err != nil {
			os.Remove(base + suffix + ".tmp")
			return false
		}
		return os.Rename(base+suffix+".tmp", base+suffix) == nil
	}
	if !store(".icache", d.ICache) || !store(".dcache", d.DCache) || !store(".l2", d.L2Cache) {
		return
	}
	// The JSON sidecar goes last: its presence marks the entry complete.
	tmp := base + ".json.tmp"
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return
	}
	if os.Rename(tmp, base+".json") == nil {
		s.metrics.Scope("diskcache").Counter("stores").Add(1)
	}
}

// osWriteFileHelper is a test seam for corrupting cache entries.
func osWriteFileHelper(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
