package experiments

import (
	"math"
	"strings"
	"testing"

	"leakbound/internal/power"
)

// testSuite simulates at a reduced scale; shared across tests in this
// package to keep the suite's cache warm.
var testSuiteShared = MustNew(WithScale(0.12))

func TestNewSuiteValidation(t *testing.T) {
	if _, err := New(WithScale(0)); err == nil {
		t.Error("zero scale accepted")
	}
	if _, err := New(WithScale(-1)); err == nil {
		t.Error("negative scale accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNew did not panic")
		}
	}()
	MustNew(WithScale(0))
}

func TestSuiteDataCaching(t *testing.T) {
	s := testSuiteShared
	a, err := s.Data("gzip")
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Data("gzip")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("Data did not cache")
	}
	if _, err := s.Data("nope"); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if a.ICache.Mass() != uint64(a.ICache.NumFrames)*a.ICache.TotalCycles {
		t.Error("I-cache mass conservation violated")
	}
	if a.DCache.Mass() != uint64(a.DCache.NumFrames)*a.DCache.TotalCycles {
		t.Error("D-cache mass conservation violated")
	}
}

func TestSuiteAll(t *testing.T) {
	all, err := testSuiteShared.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 6 {
		t.Fatalf("got %d benchmarks", len(all))
	}
	want := []string{"ammp", "applu", "gcc", "gzip", "mesa", "vortex"}
	for i, bd := range all {
		if bd.Name != want[i] {
			t.Errorf("benchmark %d = %s, want %s", i, bd.Name, want[i])
		}
		if bd.Result.Cycles < 103084 {
			t.Errorf("%s: only %d cycles — below the 180nm inflection point, results meaningless",
				bd.Name, bd.Result.Cycles)
		}
	}
	if got := len(testSuiteShared.SortedNames()); got != 6 {
		t.Errorf("SortedNames = %d entries", got)
	}
}

func TestFigure1(t *testing.T) {
	tab := Figure1()
	out := tab.String()
	if !strings.Contains(out, "1999") || !strings.Contains(out, "2009") {
		t.Errorf("Figure 1 years missing:\n%s", out)
	}
	s := Figure1Series()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Monotonically increasing leakage share.
	for i := 1; i < len(s.Y); i++ {
		if s.Y[i] <= s.Y[i-1] {
			t.Errorf("ITRS share not increasing at %g", s.X[i])
		}
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	tab, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	out := tab.String()
	for _, want := range []string{"1057", "5088", "10328", "103084"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %s:\n%s", want, out)
		}
	}
}

func TestTable2Shape(t *testing.T) {
	s := testSuiteShared
	tab, err := Table2(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 8 { // Vdd, Vth, 2 caches x 3 schemes
		t.Fatalf("Table 2 has %d rows:\n%s", len(tab.Rows), tab.String())
	}
	// Paper's qualitative claims:
	// 1. OPT-Hybrid savings increase as technology scales down (both caches).
	for _, iCache := range []bool{true, false} {
		techs := power.Technologies()
		prev := math.Inf(1)
		for i := len(techs) - 1; i >= 0; i-- { // 180nm -> 70nm
			v, err := Table2Value(s, "OPT-Hybrid", iCache, techs[i])
			if err != nil {
				t.Fatal(err)
			}
			_ = prev
			prev = v
		}
		v70, _ := Table2Value(s, "OPT-Hybrid", iCache, techs[0])
		v180, _ := Table2Value(s, "OPT-Hybrid", iCache, techs[3])
		if v70 <= v180 {
			t.Errorf("iCache=%v: hybrid savings at 70nm (%.3f) not above 180nm (%.3f)", iCache, v70, v180)
		}
		// 2. At 180nm drowsy beats sleep; at 70nm sleep beats drowsy.
		d180, _ := Table2Value(s, "OPT-Drowsy", iCache, techs[3])
		s180, _ := Table2Value(s, "OPT-Sleep", iCache, techs[3])
		if s180 >= d180 {
			t.Errorf("iCache=%v: at 180nm sleep (%.3f) beat drowsy (%.3f)", iCache, s180, d180)
		}
		d70, _ := Table2Value(s, "OPT-Drowsy", iCache, techs[0])
		s70, _ := Table2Value(s, "OPT-Sleep", iCache, techs[0])
		if s70 <= d70 {
			t.Errorf("iCache=%v: at 70nm drowsy (%.3f) beat sleep (%.3f)", iCache, d70, s70)
		}
		// 3. OPT-Drowsy sits near 2/3 everywhere.
		if math.Abs(d70-2.0/3) > 0.02 {
			t.Errorf("iCache=%v: OPT-Drowsy at 70nm = %.3f, want ~0.667", iCache, d70)
		}
	}
	if _, err := Table2Value(s, "bogus", true, power.Default()); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestTable3(t *testing.T) {
	out := Table3().String()
	for _, want := range []string{"Prefetch-A", "Prefetch-B", "drowsy", "sleep"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 3 missing %q:\n%s", want, out)
		}
	}
}

func TestFigure7Shape(t *testing.T) {
	s := testSuiteShared
	for _, iCache := range []bool{true, false} {
		sleep, hybrid, err := Figure7(s, iCache)
		if err != nil {
			t.Fatal(err)
		}
		if len(sleep.X) != len(Figure7Thetas()) {
			t.Fatalf("sweep length %d", len(sleep.X))
		}
		// Paper's qualitative claims for Figure 7:
		for i := range sleep.X {
			// 1. Hybrid never loses to pure sleep.
			if hybrid.Y[i] < sleep.Y[i]-1e-9 {
				t.Errorf("iCache=%v theta=%g: hybrid %.4f below sleep %.4f",
					iCache, sleep.X[i], hybrid.Y[i], sleep.Y[i])
			}
		}
		// 2. Pure sleep degrades as theta grows; the gap to hybrid widens.
		if sleep.Y[0] <= sleep.Y[len(sleep.Y)-1] {
			t.Errorf("iCache=%v: sleep savings did not fall as theta grew (%.4f -> %.4f)",
				iCache, sleep.Y[0], sleep.Y[len(sleep.Y)-1])
		}
		gapStart := hybrid.Y[0] - sleep.Y[0]
		gapEnd := hybrid.Y[len(hybrid.Y)-1] - sleep.Y[len(sleep.Y)-1]
		if gapEnd <= gapStart {
			t.Errorf("iCache=%v: drowsy usefulness did not grow with theta (gap %.4f -> %.4f)",
				iCache, gapStart, gapEnd)
		}
	}
	// 3. The sleep-mode degradation is steeper for the I-cache than the
	// D-cache (the paper: sleep plays a bigger role in the D-cache).
	iSleep, _, err := Figure7(s, true)
	if err != nil {
		t.Fatal(err)
	}
	dSleep, _, err := Figure7(s, false)
	if err != nil {
		t.Fatal(err)
	}
	iDrop := iSleep.Y[0] - iSleep.Y[len(iSleep.Y)-1]
	dDrop := dSleep.Y[0] - dSleep.Y[len(dSleep.Y)-1]
	if iDrop <= dDrop {
		t.Errorf("I-cache sleep drop (%.4f) not steeper than D-cache (%.4f)", iDrop, dDrop)
	}
}

func TestFigure8Orderings(t *testing.T) {
	s := testSuiteShared
	idx := map[string]int{}
	for i, p := range Figure8Policies() {
		idx[p.Name()] = i
	}
	for _, iCache := range []bool{true, false} {
		rows, err := Figure8(s, iCache)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 7 {
			t.Fatalf("rows = %d, want 6 benchmarks + average", len(rows))
		}
		avg := rows[len(rows)-1]
		if avg.Benchmark != "average" {
			t.Fatalf("last row is %q", avg.Benchmark)
		}
		get := func(name string) float64 { return avg.Savings[idx[name]] }
		// The paper's dominance chain on the averages.
		if !(get("OPT-Hybrid") >= get("OPT-Sleep(10000)") &&
			get("OPT-Sleep(10000)") >= get("Sleep(10000)")) {
			t.Errorf("iCache=%v: hybrid/oracle/decay ordering broken: %.3f %.3f %.3f",
				iCache, get("OPT-Hybrid"), get("OPT-Sleep(10000)"), get("Sleep(10000)"))
		}
		if get("OPT-Hybrid") <= get("OPT-Drowsy") {
			t.Errorf("iCache=%v: hybrid not above drowsy", iCache)
		}
		if get("Prefetch-B") <= get("Prefetch-A") {
			t.Errorf("iCache=%v: Prefetch-B (%.3f) not above Prefetch-A (%.3f)",
				iCache, get("Prefetch-B"), get("Prefetch-A"))
		}
		if get("Prefetch-B") >= get("OPT-Hybrid") {
			t.Errorf("iCache=%v: Prefetch-B beat the oracle", iCache)
		}
		// Headline magnitudes (loose bands; exact values in EXPERIMENTS.md).
		if h := get("OPT-Hybrid"); h < 0.90 || h > 0.999 {
			t.Errorf("iCache=%v: OPT-Hybrid = %.3f outside (0.90, 0.999)", iCache, h)
		}
	}
}

func TestFigure8TableRenders(t *testing.T) {
	tab, err := Figure8Table(testSuiteShared, true)
	if err != nil {
		t.Fatal(err)
	}
	out := tab.String()
	if !strings.Contains(out, "average") || !strings.Contains(out, "OPT-Hybrid") {
		t.Errorf("Figure 8 table malformed:\n%s", out)
	}
}

func TestFigure9Shape(t *testing.T) {
	s := testSuiteShared
	iP, err := Figure9(s, true)
	if err != nil {
		t.Fatal(err)
	}
	dP, err := Figure9(s, false)
	if err != nil {
		t.Fatal(err)
	}
	// The paper: I-cache prefetchability comes from next-line only; the
	// D-cache adds a stride component.
	if iP.NLShare() <= 0.05 {
		t.Errorf("I-cache NL share %.3f implausibly low", iP.NLShare())
	}
	if iP.PrefetchableShare() >= 0.6 {
		t.Errorf("I-cache prefetchable share %.3f implausibly high", iP.PrefetchableShare())
	}
	if dP.StrideShare() <= 0 {
		t.Error("D-cache stride share is zero — applu's strided sweeps not detected")
	}
	if dP.NLShare() <= dP.StrideShare() {
		t.Errorf("D-cache NL (%.3f) not above stride (%.3f)", dP.NLShare(), dP.StrideShare())
	}
	tab, err := Figure9Table(s, false)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tab.String(), "P-stride") {
		t.Error("Figure 9 table malformed")
	}
}

func TestFigure10Envelope(t *testing.T) {
	pts, err := Figure10()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) == 0 {
		t.Fatal("no envelope points")
	}
	// Regimes appear in order active -> drowsy -> sleep as length grows.
	seen := []string{}
	for _, p := range pts {
		name := p.Best.String()
		if len(seen) == 0 || seen[len(seen)-1] != name {
			seen = append(seen, name)
		}
	}
	want := "active,drowsy,sleep"
	if strings.Join(seen, ",") != want {
		t.Errorf("regime order = %v, want %s", seen, want)
	}
	tab, err := Figure10Table()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tab.String(), "envelope") {
		t.Error("Figure 10 table malformed")
	}
}

func TestGapToOptimal(t *testing.T) {
	pb, opt, gap, err := GapToOptimal(testSuiteShared, true)
	if err != nil {
		t.Fatal(err)
	}
	if gap < 0 {
		t.Errorf("Prefetch-B (%.3f) above optimal (%.3f)", pb, opt)
	}
	if gap > 0.25 {
		t.Errorf("gap to optimal %.3f implausibly large", gap)
	}
}

func TestMassProfile(t *testing.T) {
	d, err := testSuiteShared.Data("gzip")
	if err != nil {
		t.Fatal(err)
	}
	prof := MassProfile(d.ICache)
	var total float64
	for _, v := range prof {
		total += v
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("mass profile sums to %g", total)
	}
}
