package experiments

// Tests for the parallel pipeline: sharded collection must be
// bit-identical to sequential collection, the evaluation grid must be
// bit-identical to the sequential evaluation loops it replaced,
// cancellation must be prompt and leak-free, and the singleflight gate
// must collapse concurrent simulations of one benchmark into one run.

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"leakbound/internal/leakage"
	"leakbound/internal/power"
	"leakbound/internal/telemetry"
)

// TestShardedSuiteMatchesSequential pins the tentpole invariant end to
// end: a suite collecting with 4 shards per cache produces byte-identical
// distributions and identical simulation results to a 1-worker
// (inline, sequential) suite.
func TestShardedSuiteMatchesSequential(t *testing.T) {
	seq := MustNew(WithScale(0.05), WithWorkers(1), WithMetrics(telemetry.NewRegistry()))
	par := MustNew(WithScale(0.05), WithWorkers(4), WithMetrics(telemetry.NewRegistry()))
	for _, name := range []string{"gzip", "vortex"} {
		sd, err := seq.Data(name)
		if err != nil {
			t.Fatal(err)
		}
		pd, err := par.Data(name)
		if err != nil {
			t.Fatal(err)
		}
		if sd.Result != pd.Result {
			t.Errorf("%s: results differ: %+v vs %+v", name, sd.Result, pd.Result)
		}
		if !sd.ICache.Equal(pd.ICache) {
			t.Errorf("%s: I-cache distributions differ between 1 and 4 shards", name)
		}
		if !sd.DCache.Equal(pd.DCache) {
			t.Errorf("%s: D-cache distributions differ between 1 and 4 shards", name)
		}
		if !sd.L2Cache.Equal(pd.L2Cache) {
			t.Errorf("%s: L2 distributions differ between 1 and 4 shards", name)
		}
		if sd.IEngine != pd.IEngine || sd.DEngine != pd.DEngine {
			t.Errorf("%s: prefetch engine stats differ between shard counts", name)
		}
		// Conservation must hold on the sharded output too.
		if pd.ICache.Mass() != uint64(pd.ICache.NumFrames)*pd.Result.Cycles {
			t.Errorf("%s: sharded I-cache violates mass conservation", name)
		}
	}
}

// TestGridMatchesSequential is the golden check for the evaluation grid:
// Figure 7, Figure 8 and Table 2 values computed through EvaluateGrid must
// equal — bit for bit, not approximately — a sequential re-evaluation in
// the original loop order. The grid now evaluates through the aggregate
// fast path (Cell.Agg), so the sequential oracle here is
// leakage.EvaluateAggregate over the same cached summaries: scheduling
// order must still never leak into the output. Fast-path agreement with
// the reference bucket walk is pinned separately in
// leakage.TestEvaluateAggregateMatchesReference.
func TestGridMatchesSequential(t *testing.T) {
	s := testSuiteShared
	all, err := s.All()
	if err != nil {
		t.Fatal(err)
	}
	tech := power.Default()

	// Figure 8, I-cache side.
	rows, err := Figure8(s, true)
	if err != nil {
		t.Fatal(err)
	}
	policies := Figure8Policies()
	wantAvg := make([]float64, len(policies))
	for r, bd := range all {
		for i, p := range policies {
			ev, err := leakage.EvaluateAggregate(tech, bd.IAgg, p)
			if err != nil {
				t.Fatal(err)
			}
			if rows[r].Savings[i] != ev.Savings {
				t.Fatalf("fig8 %s/%s: grid %v != sequential %v",
					bd.Name, p.Name(), rows[r].Savings[i], ev.Savings)
			}
			wantAvg[i] += ev.Savings / float64(len(all))
		}
	}
	for i := range policies {
		if rows[len(rows)-1].Savings[i] != wantAvg[i] {
			t.Fatalf("fig8 average[%d]: grid %v != sequential %v",
				i, rows[len(rows)-1].Savings[i], wantAvg[i])
		}
	}

	// Figure 7, D-cache side: the per-theta averages must match the
	// sequential accumulation order exactly.
	sleep, hybrid, err := Figure7(s, false)
	if err != nil {
		t.Fatal(err)
	}
	for ti, theta := range Figure7Thetas() {
		var sSum, hSum float64
		for _, bd := range all {
			sEv, err := leakage.EvaluateAggregate(tech, bd.DAgg, leakage.OPTSleep{Theta: theta})
			if err != nil {
				t.Fatal(err)
			}
			hEv, err := leakage.EvaluateAggregate(tech, bd.DAgg, leakage.OPTHybrid{SleepTheta: theta})
			if err != nil {
				t.Fatal(err)
			}
			sSum += sEv.Savings
			hSum += hEv.Savings
		}
		n := float64(len(all))
		if sleep.Y[ti] != sSum/n || hybrid.Y[ti] != hSum/n {
			t.Fatalf("fig7 theta=%d: grid (%v, %v) != sequential (%v, %v)",
				theta, sleep.Y[ti], hybrid.Y[ti], sSum/n, hSum/n)
		}
	}

	// One Table 2 cell per scheme.
	for _, scheme := range []string{"OPT-Drowsy", "OPT-Sleep", "OPT-Hybrid"} {
		got, err := Table2Value(s, scheme, false, tech)
		if err != nil {
			t.Fatal(err)
		}
		pol, err := table2Policy(scheme, tech)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, bd := range all {
			ev, err := leakage.EvaluateAggregate(tech, bd.DAgg, pol)
			if err != nil {
				t.Fatal(err)
			}
			sum += ev.Savings
		}
		if want := sum / float64(len(all)); got != want {
			t.Fatalf("table2 %s: grid %v != sequential %v", scheme, got, want)
		}
	}
}

// TestAllContextCancelNoLeak cancels a suite-wide simulation mid-flight:
// AllContext must return ctx.Err() promptly, and every pipeline goroutine
// (pool workers, shard workers) must drain afterwards.
func TestAllContextCancelNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	reg := telemetry.NewRegistry()
	s := MustNew(WithScale(0.5), WithWorkers(4), WithMetrics(reg))
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := s.AllContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v, want prompt return", elapsed)
	}
	// All pipeline goroutines must exit; poll because worker teardown
	// finishes just after AllContext returns.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after cancellation", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
	// A subsequent call on a fresh context must still work (the failed
	// singleflight entries must not wedge the suite).
	if _, err := s.DataContext(context.Background(), "gzip"); err != nil {
		t.Fatalf("suite unusable after cancellation: %v", err)
	}
}

// TestDataSingleflight pins the Data race fix: many concurrent requests
// for one benchmark must run exactly one simulation.
func TestDataSingleflight(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := MustNew(WithScale(0.02), WithMetrics(reg))
	const callers = 8
	results := make([]*BenchmarkData, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i], errs[i] = s.DataContext(context.Background(), "gzip")
		}()
	}
	wg.Wait()
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if results[i] != results[0] {
			t.Fatalf("caller %d got a different *BenchmarkData — duplicate simulation", i)
		}
	}
	if got := reg.Scope("suite").Counter("fresh_sims").Value(); got != 1 {
		t.Fatalf("fresh_sims = %d, want 1 (singleflight collapsed %d callers)", got, callers)
	}
}

// TestWaiterCancellationDoesNotPoison verifies one caller's context does
// not decide another's fate: a waiter with a cancelled context gets
// context.Canceled while the patient caller still gets data.
func TestWaiterCancellationDoesNotPoison(t *testing.T) {
	s := MustNew(WithScale(0.05), WithMetrics(telemetry.NewRegistry()))
	leaderDone := make(chan error, 1)
	go func() {
		_, err := s.DataContext(context.Background(), "vortex")
		leaderDone <- err
	}()
	// Give the leader a head start, then join as a waiter with an
	// already-cancelled context.
	time.Sleep(10 * time.Millisecond)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.DataContext(ctx, "vortex"); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter got %v, want context.Canceled", err)
	}
	if err := <-leaderDone; err != nil {
		t.Fatalf("leader poisoned by waiter's cancellation: %v", err)
	}
}

// TestOptionsValidation exercises the functional options API and its
// sentinel errors.
func TestOptionsValidation(t *testing.T) {
	if _, err := New(WithScale(0)); !errors.Is(err, ErrNonPositiveScale) {
		t.Errorf("WithScale(0): got %v, want ErrNonPositiveScale", err)
	}
	if _, err := New(WithScale(-3)); !errors.Is(err, ErrNonPositiveScale) {
		t.Errorf("WithScale(-3): got %v, want ErrNonPositiveScale", err)
	}
	if _, err := New(nil); !errors.Is(err, ErrBadOption) {
		t.Errorf("nil option: got %v, want ErrBadOption", err)
	}
	if _, err := New(WithMetrics(nil)); !errors.Is(err, ErrBadOption) {
		t.Errorf("WithMetrics(nil): got %v, want ErrBadOption", err)
	}
	s, err := New(WithScale(0.5), WithWorkers(3), WithCacheDir(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	if s.Scale() != 0.5 {
		t.Errorf("scale = %g, want 0.5", s.Scale())
	}
	if s.poolWorkers() != 3 {
		t.Errorf("poolWorkers = %d, want 3", s.poolWorkers())
	}
	if def := MustNew(); def.poolWorkers() != runtime.GOMAXPROCS(0) {
		t.Errorf("default poolWorkers = %d, want GOMAXPROCS", def.poolWorkers())
	}
	if _, err := Table2Value(testSuiteShared, "OPT-Bogus", true, power.Default()); !errors.Is(err, ErrUnknownScheme) {
		t.Errorf("unknown scheme: got %v, want ErrUnknownScheme", err)
	}
}

// TestEvaluateGridErrors verifies grid failures carry the underlying
// sentinel and the cell label.
func TestEvaluateGridErrors(t *testing.T) {
	s := MustNew(WithMetrics(telemetry.NewRegistry()))
	cells := []Cell{{Tech: power.Default(), Policy: leakage.OPTDrowsy{}, Dist: nil, Label: "bad/cell"}}
	_, err := s.EvaluateGrid(context.Background(), cells)
	if !errors.Is(err, leakage.ErrNilDistribution) {
		t.Fatalf("got %v, want leakage.ErrNilDistribution", err)
	}
	if !strings.Contains(err.Error(), "bad/cell") {
		t.Fatalf("error %q does not name the failing cell", err)
	}
}
