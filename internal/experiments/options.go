package experiments

// The context-aware options API. experiments.New(opts...) is the only
// constructor; the deprecated NewSuite/MustNewSuite scale-only wrappers
// are gone now that every call site uses options.

import (
	"errors"
	"fmt"
	"runtime"

	"leakbound/internal/telemetry"
)

// Sentinel errors for option validation; match with errors.Is.
var (
	// ErrNonPositiveScale reports a workload scale <= 0.
	ErrNonPositiveScale = errors.New("experiments: non-positive scale")

	// ErrBadOption reports an invalid functional-option argument.
	ErrBadOption = errors.New("experiments: bad option")

	// ErrUnknownScheme reports a Table 2 scheme name outside
	// {OPT-Drowsy, OPT-Sleep, OPT-Hybrid}.
	ErrUnknownScheme = errors.New("experiments: unknown Table 2 scheme")
)

// Option configures a Suite at construction.
type Option func(*Suite) error

// WithScale sets the workload scale (1.0 = the full study length; smaller
// for tests). The default is DefaultScale.
func WithScale(scale float64) Option {
	return func(s *Suite) error {
		if scale <= 0 {
			return fmt.Errorf("%w: %g", ErrNonPositiveScale, scale)
		}
		s.scale = scale
		return nil
	}
}

// WithCacheDir enables on-disk caching of per-benchmark simulation
// products under dir; the empty string disables caching (the default).
func WithCacheDir(dir string) Option {
	return func(s *Suite) error {
		s.cacheDir = dir
		return nil
	}
}

// WithMetrics directs the suite's telemetry (simulation timings, grid cell
// metrics, disk-cache hits, pool utilization) into reg instead of the
// process-wide default registry. Useful for tests and for isolating
// concurrent sweeps.
func WithMetrics(reg *telemetry.Registry) Option {
	return func(s *Suite) error {
		if reg == nil {
			return fmt.Errorf("%w: nil telemetry registry", ErrBadOption)
		}
		s.metrics = reg
		return nil
	}
}

// WithWorkers bounds the suite's parallelism: the benchmark fan-out of
// All, the shard count of each benchmark's interval collection, and the
// worker count of the evaluation grid. n <= 0 (the default) means
// GOMAXPROCS, resolved at each use.
func WithWorkers(n int) Option {
	return func(s *Suite) error {
		s.workers = n
		return nil
	}
}

// New creates a Suite from functional options. With no options the suite
// runs at DefaultScale, with no disk cache, reporting into the default
// telemetry registry, parallelized over GOMAXPROCS workers.
func New(opts ...Option) (*Suite, error) {
	s := &Suite{
		scale:    DefaultScale,
		metrics:  telemetry.Default(),
		data:     make(map[string]*BenchmarkData),
		inflight: make(map[string]*inflightSim),
	}
	for _, opt := range opts {
		if opt == nil {
			return nil, fmt.Errorf("%w: nil option", ErrBadOption)
		}
		if err := opt(s); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// MustNew is New that panics on bad options.
func MustNew(opts ...Option) *Suite {
	s, err := New(opts...)
	if err != nil {
		panic(err)
	}
	return s
}

// poolWorkers resolves the configured worker bound.
func (s *Suite) poolWorkers() int {
	if s.workers > 0 {
		return s.workers
	}
	return runtime.GOMAXPROCS(0)
}
