package experiments

import (
	"context"
	"errors"
	"math"
	"testing"

	"leakbound/internal/leakage"
	"leakbound/internal/power"
)

// TestDefaultParetoSpecs: the default population covers every registered
// family exactly once and excludes the registered refinements, which
// dominate their base scheme by construction.
func TestDefaultParetoSpecs(t *testing.T) {
	specs := DefaultParetoSpecs()
	byScheme := map[string]bool{}
	for _, s := range specs {
		if byScheme[s.Scheme] {
			t.Errorf("scheme %q listed twice", s.Scheme)
		}
		byScheme[s.Scheme] = true
		reg, ok := leakage.DefaultRegistry().Lookup(s.Scheme)
		if !ok {
			t.Errorf("spec %q not registered", s.Scheme)
		}
		if reg.Refines != "" {
			t.Errorf("refinement %q (of %q) in the default population", s.Scheme, reg.Refines)
		}
	}
	for _, want := range []string{"opt-hybrid", "opt-drowsy", "coloring", "waymemo"} {
		if !byScheme[want] {
			t.Errorf("default population missing %q", want)
		}
	}
	if byScheme["opt-hybrid-dead"] || byScheme["opt-hybrid-wb"] {
		t.Error("oracle refinements must not shadow opt-hybrid in the default population")
	}
}

// TestParetoFrontierContext: the default frontier contains OPT-Hybrid,
// dominates always-active, and the marks agree with the dominance
// definition; explicitly requested refinements still evaluate.
func TestParetoFrontierContext(t *testing.T) {
	s := MustNew(WithScale(0.02))
	ctx := context.Background()
	points, err := s.ParetoFrontierContext(ctx, true, power.Default(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) < 8 {
		t.Fatalf("default population has %d points, want >= 8", len(points))
	}
	var hybrid *ParetoPoint
	for i := range points {
		if points[i].Spec == "opt-hybrid" {
			hybrid = &points[i]
		}
		if points[i].Spec == "active" && points[i].Frontier {
			t.Error("always-active on the frontier despite opt-drowsy dominating it")
		}
		if points[i].NormalizedLeakage < 0 || points[i].InducedMissRate < 0 {
			t.Errorf("%s: negative axis: %+v", points[i].Spec, points[i])
		}
	}
	if hybrid == nil {
		t.Fatal("opt-hybrid missing from the default population")
	}
	if !hybrid.Frontier {
		t.Errorf("opt-hybrid not on the frontier: %+v", *hybrid)
	}
	for i, p := range points {
		dominated := false
		for j, q := range points {
			if i == j {
				continue
			}
			if q.NormalizedLeakage <= p.NormalizedLeakage && q.InducedMissRate <= p.InducedMissRate &&
				(q.NormalizedLeakage < p.NormalizedLeakage || q.InducedMissRate < p.InducedMissRate) {
				dominated = true
				break
			}
		}
		if p.Frontier == dominated {
			t.Errorf("%s: frontier=%v but dominated=%v", p.Spec, p.Frontier, dominated)
		}
	}
	// An explicit population may include the refinements; the dead-block
	// oracle then dominates its base.
	explicit, err := s.ParetoFrontierContext(ctx, true, power.Default(), []leakage.PolicySpec{
		{Scheme: "opt-hybrid"}, {Scheme: "opt-hybrid-dead"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(explicit) != 2 || !explicit[1].Frontier {
		t.Errorf("explicit refinement population: %+v", explicit)
	}
	if _, err := s.ParetoFrontierContext(ctx, true, power.Default(),
		[]leakage.PolicySpec{{Scheme: "nope"}}); !errors.Is(err, ErrUnknownPolicy) {
		t.Errorf("unknown spec error = %v, want ErrUnknownPolicy", err)
	}
}

// TestParetoTableContext: the rendered table has one row per point with
// the frontier mark.
func TestParetoTableContext(t *testing.T) {
	s := MustNew(WithScale(0.02))
	tbl, err := s.ParetoTableContext(context.Background(), false, power.Default(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(tbl.Rows), len(DefaultParetoSpecs()); got != want {
		t.Errorf("pareto table has %d rows, want %d", got, want)
	}
}

// TestTechniqueFamiliesTable: the Figure-8-style related-work table has a
// row per benchmark plus the average, with the three coloring
// granularities ordered coarse to fine.
func TestTechniqueFamiliesTable(t *testing.T) {
	s := MustNew(WithScale(0.02))
	tbl, err := s.TechniqueFamiliesTableContext(context.Background(), true, power.Default())
	if err != nil {
		t.Fatal(err)
	}
	all, err := s.All()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(tbl.Rows), len(all)+1; got != want {
		t.Errorf("families table has %d rows, want %d", got, want)
	}
	if tbl.Rows[len(tbl.Rows)-1][0] != "average" {
		t.Errorf("last row is %q, want average", tbl.Rows[len(tbl.Rows)-1][0])
	}
	if got, want := len(tbl.Headers), 7; got != want {
		t.Errorf("families table has %d columns, want %d", got, want)
	}
}

// TestSweepParamContext: the generalized sweep reproduces the theta
// ladder bit for bit on opt-sleep's positional, sweeps a float parameter
// on waymemo, and rejects unknown schemes and undeclared parameters.
func TestSweepParamContext(t *testing.T) {
	s := MustNew(WithScale(0.02))
	ctx := context.Background()
	tech := power.Default()

	thetas := []uint64{1057, 5000, 20000}
	legacy, err := s.SweepThetaContext(ctx, "opt-sleep", true, tech, thetas)
	if err != nil {
		t.Fatal(err)
	}
	values := make([]leakage.ParamValue, len(thetas))
	for i, th := range thetas {
		values[i] = leakage.Uint(th)
	}
	general, err := s.SweepParamContext(ctx, "opt-sleep", "theta", true, tech, values)
	if err != nil {
		t.Fatal(err)
	}
	if len(general) != len(legacy) {
		t.Fatalf("generalized sweep has %d points, legacy %d", len(general), len(legacy))
	}
	for i := range general {
		if general[i].Savings != legacy[i].Savings {
			t.Errorf("point %d: generalized savings %v != legacy %v", i, general[i].Savings, legacy[i].Savings)
		}
	}

	accs := []leakage.ParamValue{leakage.Float(0.5), leakage.Float(1)}
	pts, err := s.SweepParamContext(ctx, "waymemo", "accuracy", true, tech, accs)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[0].Savings > pts[1].Savings+1e-12 {
		t.Errorf("waymemo accuracy sweep not monotone: %+v", pts)
	}
	for _, p := range pts {
		if math.IsNaN(p.Savings) {
			t.Errorf("NaN savings: %+v", p)
		}
	}

	if _, err := s.SweepParamContext(ctx, "nope", "theta", true, tech, values); !errors.Is(err, ErrUnknownPolicy) {
		t.Errorf("unknown scheme error = %v, want ErrUnknownPolicy", err)
	}
	if _, err := s.SweepParamContext(ctx, "opt-sleep", "bogus", true, tech, values); !errors.Is(err, ErrUnknownPolicy) {
		t.Errorf("undeclared parameter error = %v, want ErrUnknownPolicy", err)
	}
	if _, err := s.SweepParamContext(ctx, "opt-sleep", "theta", true, tech, nil); !errors.Is(err, ErrBadOption) {
		t.Errorf("empty sweep error = %v, want ErrBadOption", err)
	}
}

// TestPolicyTable: the registry-driven table has one row per registered
// scheme, in registration order.
func TestPolicyTable(t *testing.T) {
	tbl := PolicyTable()
	names := leakage.PolicyNames()
	if len(tbl.Rows) != len(names) {
		t.Fatalf("policy table has %d rows, want %d", len(tbl.Rows), len(names))
	}
	for i, row := range tbl.Rows {
		if row[0] != names[i] {
			t.Errorf("row %d scheme = %q, want %q", i, row[0], names[i])
		}
		if row[2] == "" {
			t.Errorf("scheme %q has no description", row[0])
		}
	}
}

// TestParsePolicyCompat pins the legacy spellings the API redesign must
// keep parsing: ignored thetas on unparameterized schemes, and the new
// named-parameter grammar resolving to the same concrete policies.
func TestParsePolicyCompat(t *testing.T) {
	tech := power.Default()
	for _, c := range []struct{ legacy, structured string }{
		{"opt-sleep@8192", "opt-sleep@theta=8192"},
		{"periodic-drowsy@4000", "periodic-drowsy@window=4000"},
		{"opt-hybrid@0", "opt-hybrid"},
	} {
		a, err := ParsePolicy(c.legacy, tech)
		if err != nil {
			t.Fatalf("ParsePolicy(%q): %v", c.legacy, err)
		}
		b, err := ParsePolicy(c.structured, tech)
		if err != nil {
			t.Fatalf("ParsePolicy(%q): %v", c.structured, err)
		}
		if a != b {
			t.Errorf("%q builds %#v, %q builds %#v", c.legacy, a, c.structured, b)
		}
	}
	// A theta on a scheme with no positional parameter is ignored for
	// backward compatibility with the pre-registry parser.
	for _, spec := range []string{"active@5", "prefetch-a@12", "opt-drowsy@123"} {
		if _, err := ParsePolicy(spec, tech); err != nil {
			t.Errorf("legacy ignored-theta spelling %q rejected: %v", spec, err)
		}
	}
	// But not silently on schemes where it would mean something else.
	if _, err := ParsePolicy("active@junk", tech); !errors.Is(err, ErrUnknownPolicy) {
		t.Errorf("non-numeric ignored theta error = %v, want ErrUnknownPolicy", err)
	}
}

// TestMarkFrontier covers the dominance pass's edge cases: duplicate
// points, ties on one axis, and degenerate populations. The pass is a
// pure deterministic function of the point values — index order never
// affects who lands on the frontier.
func TestMarkFrontier(t *testing.T) {
	pt := func(leak, miss float64) ParetoPoint {
		return ParetoPoint{NormalizedLeakage: leak, InducedMissRate: miss}
	}
	cases := []struct {
		name   string
		points []ParetoPoint
		want   []bool
	}{
		{"empty", nil, nil},
		{"single", []ParetoPoint{pt(0.5, 1)}, []bool{true}},
		{"single duplicated", []ParetoPoint{pt(0.5, 1), pt(0.5, 1)}, []bool{true, true}},
		{
			// Coincident points are mutually non-dominating: both stay.
			"duplicates among others",
			[]ParetoPoint{pt(0.3, 2), pt(0.3, 2), pt(0.2, 3), pt(0.5, 2.5)},
			[]bool{true, true, true, false},
		},
		{
			// A tie on one axis with strict improvement on the other
			// dominates.
			"tie on leakage axis",
			[]ParetoPoint{pt(0.4, 1), pt(0.4, 2)},
			[]bool{true, false},
		},
		{
			"tie on miss axis",
			[]ParetoPoint{pt(0.4, 1), pt(0.3, 1)},
			[]bool{false, true},
		},
		{
			// A strict chain: only the best survives.
			"chain",
			[]ParetoPoint{pt(0.5, 3), pt(0.4, 2), pt(0.3, 1)},
			[]bool{false, false, true},
		},
		{
			// A proper frontier: each point trades one axis for the other.
			"trade-off curve",
			[]ParetoPoint{pt(0.2, 5), pt(0.3, 2), pt(0.5, 0), pt(0.4, 4), pt(0.6, 0)},
			[]bool{true, true, true, false, false},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pts := append([]ParetoPoint(nil), tc.points...)
			markFrontier(pts)
			for i := range pts {
				if pts[i].Frontier != tc.want[i] {
					t.Fatalf("point %d (%.2f, %.2f): frontier = %v, want %v",
						i, pts[i].NormalizedLeakage, pts[i].InducedMissRate, pts[i].Frontier, tc.want[i])
				}
			}
			// Index order must not matter: reverse and re-mark.
			rev := make([]ParetoPoint, len(pts))
			for i := range pts {
				rev[len(pts)-1-i] = ParetoPoint{
					NormalizedLeakage: pts[i].NormalizedLeakage,
					InducedMissRate:   pts[i].InducedMissRate,
				}
			}
			markFrontier(rev)
			for i := range rev {
				if rev[i].Frontier != tc.want[len(pts)-1-i] {
					t.Fatalf("reversed point %d: frontier = %v, want %v",
						i, rev[i].Frontier, tc.want[len(pts)-1-i])
				}
			}
		})
	}
}
