package experiments

import (
	"context"
	"strconv"
	"strings"
	"testing"

	"leakbound/internal/interval"
	"leakbound/internal/leakage"
	"leakbound/internal/power"
	"leakbound/internal/sim/cache"
	"leakbound/internal/sim/trace"
)

func TestExtendedSchemesTable(t *testing.T) {
	tab, err := ExtendedSchemesTable(testSuiteShared)
	if err != nil {
		t.Fatal(err)
	}
	out := tab.String()
	for _, want := range []string{"Drowsy(2000)", "Adaptive decay", "AMC", "OPT-Hybrid"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
	// The bounds rows must dominate their implementable counterparts:
	// parse the rendered percentages back out.
	val := func(label string, col int) float64 {
		for _, row := range tab.Rows {
			if row[0] == label {
				v, err := strconv.ParseFloat(strings.TrimSuffix(row[col], "%"), 64)
				if err != nil {
					t.Fatalf("bad cell %q", row[col])
				}
				return v
			}
		}
		t.Fatalf("row %q not found", label)
		return 0
	}
	for col := 1; col <= 2; col++ {
		if val("OPT-Drowsy (bound)", col) < val("Drowsy(2000) periodic", col) {
			t.Errorf("col %d: periodic drowsy beat its bound", col)
		}
		if val("OPT-Hybrid (bound)", col) < val("Adaptive decay (feedback)", col) {
			t.Errorf("col %d: adaptive decay beat the hybrid bound", col)
		}
		if val("Adaptive decay (feedback)", col) < val("AMC (tags alive)", col) {
			t.Errorf("col %d: AMC beat tag-free adaptive decay", col)
		}
	}
}

func TestL2Study(t *testing.T) {
	tab, err := L2Study(testSuiteShared)
	if err != nil {
		t.Fatal(err)
	}
	out := tab.String()
	if !strings.Contains(out, "average") {
		t.Fatalf("no average row:\n%s", out)
	}
	// The L2's frames are touched only on L1 misses: its oracle savings
	// must be at least as high as the L1 D-cache's on every benchmark.
	all, err := testSuiteShared.All()
	if err != nil {
		t.Fatal(err)
	}
	tech := power.Default()
	for _, bd := range all {
		l2, err := leakage.Evaluate(tech, bd.L2Cache, leakage.OPTHybrid{})
		if err != nil {
			t.Fatal(err)
		}
		l1, err := leakage.Evaluate(tech, bd.DCache, leakage.OPTHybrid{})
		if err != nil {
			t.Fatal(err)
		}
		if l2.Savings < l1.Savings-0.02 {
			t.Errorf("%s: L2 oracle savings %.3f below L1D %.3f", bd.Name, l2.Savings, l1.Savings)
		}
		if l2.Savings < 0.9 {
			t.Errorf("%s: L2 savings %.3f implausibly low for a 32x oversized cache", bd.Name, l2.Savings)
		}
		// Conservation on the L2 distribution too.
		if bd.L2Cache.Mass() != uint64(bd.L2Cache.NumFrames)*bd.L2Cache.TotalCycles {
			t.Errorf("%s: L2 mass conservation violated", bd.Name)
		}
	}
}

func TestWritebackAblation(t *testing.T) {
	tab, err := WritebackAblation(testSuiteShared)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4:\n%s", len(tab.Rows), tab.String())
	}
	// Savings must be non-increasing as the write-back cost grows.
	var prev float64 = 101
	for _, row := range tab.Rows {
		v, err := strconv.ParseFloat(strings.TrimSuffix(row[1], "%"), 64)
		if err != nil {
			t.Fatalf("bad cell %q", row[1])
		}
		if v > prev+1e-9 {
			t.Errorf("savings increased with write-back cost: %v", tab.Rows)
		}
		prev = v
	}
	// The free row must show zero delta.
	if !strings.Contains(tab.Rows[0][2], "+0.00") {
		t.Errorf("free row delta = %q", tab.Rows[0][2])
	}
}

func TestTemperatureSweep(t *testing.T) {
	tab, err := TemperatureSweepContext(context.Background(), testSuiteShared, "gzip")
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d:\n%s", len(tab.Rows), tab.String())
	}
	// The inflection point must shrink monotonically with temperature.
	var prevB float64 = 1e18
	for _, row := range tab.Rows {
		b, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatalf("bad inflection cell %q", row[2])
		}
		if b >= prevB {
			t.Errorf("inflection not shrinking with temperature: %v", tab.Rows)
		}
		prevB = b
	}
	if _, err := TemperatureSweepContext(context.Background(), testSuiteShared, "nope"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestDirtyIntervalsCollected(t *testing.T) {
	// The D-cache sees stores, so its distribution must contain
	// dirty-flagged intervals; the I-cache (fetch-only) must not.
	d, err := testSuiteShared.Data("mesa")
	if err != nil {
		t.Fatal(err)
	}
	dDirty := d.DCache.Count(func(l uint64, f interval.Flags) bool { return f&interval.Dirty != 0 })
	if dDirty == 0 {
		t.Error("no dirty intervals in the D-cache distribution")
	}
	iDirty := d.ICache.Count(func(l uint64, f interval.Flags) bool { return f&interval.Dirty != 0 })
	if iDirty != 0 {
		t.Errorf("%d dirty intervals in the fetch-only I-cache", iDirty)
	}
}

func TestPrefetcherQualityTable(t *testing.T) {
	tab, err := PrefetcherQualityTable(testSuiteShared)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 7 {
		t.Fatalf("rows = %d, want 6 benchmarks + average:\n%s", len(tab.Rows), tab.String())
	}
	// Every benchmark's engines must have seen traffic and produced rates
	// within [0,1]; the loop-structured codes must show high I coverage.
	all, err := testSuiteShared.All()
	if err != nil {
		t.Fatal(err)
	}
	for _, bd := range all {
		for _, st := range []struct {
			label string
			cov   float64
			acc   float64
			iss   uint64
		}{
			{"I", bd.IEngine.Coverage(), bd.IEngine.Accuracy(), bd.IEngine.Issued},
			{"D", bd.DEngine.Coverage(), bd.DEngine.Accuracy(), bd.DEngine.Issued},
		} {
			if st.iss == 0 {
				t.Errorf("%s/%s: engine issued nothing", bd.Name, st.label)
			}
			if st.cov < 0 || st.cov > 1 || st.acc < 0 || st.acc > 1 {
				t.Errorf("%s/%s: rates out of range (cov %g acc %g)", bd.Name, st.label, st.cov, st.acc)
			}
		}
	}
	// Sequential code makes next-line I-prefetch highly effective for the
	// tight-loop benchmarks.
	gz, _ := testSuiteShared.Data("gzip")
	if gz.IEngine.Coverage() < 0.5 {
		t.Errorf("gzip I coverage %.3f implausibly low for straight-line loops", gz.IEngine.Coverage())
	}
	// applu's strided sweeps must make its D-side accuracy the best of the
	// suite (stride prefetch locks on).
	ap, _ := testSuiteShared.Data("applu")
	for _, bd := range all {
		if bd.Name != "applu" && bd.DEngine.Accuracy() > ap.DEngine.Accuracy() {
			t.Errorf("%s D accuracy %.3f above applu's %.3f (stride should dominate)",
				bd.Name, bd.DEngine.Accuracy(), ap.DEngine.Accuracy())
		}
	}
}

func TestSimulateCustom(t *testing.T) {
	hc := cache.AlphaLike()
	dist, res, err := SimulateCustom("gzip", 0.05, hc, trace.L1D)
	if err != nil {
		t.Fatal(err)
	}
	if dist.Mass() != uint64(dist.NumFrames)*res.Cycles {
		t.Error("custom simulation violates mass conservation")
	}
	if _, _, err := SimulateCustom("nope", 0.05, hc, trace.L1D); err == nil {
		t.Error("unknown benchmark accepted")
	}
	bad := hc
	bad.L1D.SizeBytes = 1000
	if _, _, err := SimulateCustom("gzip", 0.05, bad, trace.L1D); err == nil {
		t.Error("bad hierarchy accepted")
	}
}

func TestGeometrySweep(t *testing.T) {
	if testing.Short() {
		t.Skip("geometry sweep simulates 30 configurations")
	}
	tab, err := GeometrySweepContext(context.Background(), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(GeometrySweepPoints()) {
		t.Fatalf("rows = %d:\n%s", len(tab.Rows), tab.String())
	}
	// The recoverable fraction must grow with cache size: OPT-Hybrid at
	// 128KB above OPT-Hybrid at 16KB.
	parse := func(row int, col int) float64 {
		v, err := strconv.ParseFloat(strings.TrimSuffix(tab.Rows[row][col], "%"), 64)
		if err != nil {
			t.Fatalf("bad cell %q", tab.Rows[row][col])
		}
		return v
	}
	if parse(3, 3) <= parse(0, 3) {
		t.Errorf("OPT-Hybrid savings did not grow with cache size:\n%s", tab.String())
	}
	if _, err := GeometrySweepContext(context.Background(), 0); err == nil {
		t.Error("zero scale accepted")
	}
}

func TestDiskCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	// First suite simulates and stores.
	s1 := MustNew(WithScale(0.03), WithCacheDir(dir))
	d1, err := s1.Data("gzip")
	if err != nil {
		t.Fatal(err)
	}
	// Second suite must load identical data from disk without simulating;
	// verify by comparing the distributions exactly.
	s2 := MustNew(WithScale(0.03), WithCacheDir(dir))
	d2 := s2.loadCached(s2.cacheKey("gzip"), "gzip")
	if d2 == nil {
		t.Fatal("cache miss after store")
	}
	if !d1.ICache.Equal(d2.ICache) || !d1.DCache.Equal(d2.DCache) || !d1.L2Cache.Equal(d2.L2Cache) {
		t.Error("cached distributions differ from originals")
	}
	if d1.Result != d2.Result {
		t.Errorf("cached result differs: %+v vs %+v", d1.Result, d2.Result)
	}
	if d1.IEngine != d2.IEngine || d1.DEngine != d2.DEngine {
		t.Error("cached engine stats differ")
	}
	// A different scale must miss.
	s3 := MustNew(WithScale(0.04), WithCacheDir(dir))
	if s3.loadCached(s3.cacheKey("gzip"), "gzip") != nil {
		t.Error("cache hit across scales")
	}
	// Corrupt a distribution file: the loader must reject, not crash.
	key := s2.cacheKey("gzip")
	if err := osWriteFileHelper(dir+"/"+key+".icache", []byte("garbage")); err != nil {
		t.Fatal(err)
	}
	if s2.loadCached(key, "gzip") != nil {
		t.Error("corrupted cache accepted")
	}
}

func TestLiveDeadStudy(t *testing.T) {
	tab, err := LiveDeadStudy(testSuiteShared)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d:\n%s", len(tab.Rows), tab.String())
	}
	for _, row := range tab.Rows {
		share, err := strconv.ParseFloat(strings.TrimSuffix(row[1], "%"), 64)
		if err != nil {
			t.Fatalf("bad share cell %q", row[1])
		}
		if share <= 0 {
			t.Errorf("%s: zero dead mass — eviction tracking broken", row[0])
		}
		lengthOnly, _ := strconv.ParseFloat(strings.TrimSuffix(row[2], "%"), 64)
		deadAware, _ := strconv.ParseFloat(strings.TrimSuffix(row[3], "%"), 64)
		// Dead knowledge can only help...
		if deadAware < lengthOnly-1e-9 {
			t.Errorf("%s: dead-aware oracle below length-only", row[0])
		}
		// ...and per the paper's Section 3.1 claim, by very little.
		if deadAware-lengthOnly > 3.0 {
			t.Errorf("%s: dead knowledge added %.2f points — the paper's claim "+
				"(small contribution) does not reproduce", row[0], deadAware-lengthOnly)
		}
	}
}

func TestDeadEndFlagsCollected(t *testing.T) {
	d, err := testSuiteShared.Data("vortex")
	if err != nil {
		t.Fatal(err)
	}
	dead := d.DCache.Count(func(l uint64, f interval.Flags) bool { return f&interval.DeadEnd != 0 })
	live := d.DCache.Count(func(l uint64, f interval.Flags) bool {
		return f.Interior() && f&interval.DeadEnd == 0
	})
	if dead == 0 {
		t.Error("no dead-ending intervals in a thrashing D-cache")
	}
	if live == 0 {
		t.Error("no live intervals")
	}
	// Hits vastly outnumber misses, so live intervals must dominate counts.
	if dead >= live {
		t.Errorf("dead (%d) >= live (%d): miss flagging suspicious", dead, live)
	}
}

func TestBreakdownTable(t *testing.T) {
	tab, err := BreakdownTable(testSuiteShared)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 12 { // 6 benchmarks x 2 caches
		t.Fatalf("rows = %d:\n%s", len(tab.Rows), tab.String())
	}
	for _, row := range tab.Rows {
		var sum float64
		for _, cell := range row[2:] {
			v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "%"), 64)
			if err != nil {
				t.Fatalf("bad cell %q", cell)
			}
			sum += v
		}
		if sum < 99.0 || sum > 101.0 {
			t.Errorf("%s/%s: components sum to %.2f%%, want ~100%%", row[0], row[1], sum)
		}
	}
}

func TestIntervalStats(t *testing.T) {
	d, err := testSuiteShared.Data("gcc")
	if err != nil {
		t.Fatal(err)
	}
	s, h, err := IntervalStats(d.ICache)
	if err != nil {
		t.Fatal(err)
	}
	if s.N() == 0 || h.Total() == 0 {
		t.Fatal("empty stats")
	}
	if int64(h.Total()) != s.N() {
		t.Errorf("histogram total %d != summary N %d", h.Total(), s.N())
	}
	// The summary's total mass must equal the distribution's interior mass.
	interior := d.ICache.MassWhere(func(l uint64, f interval.Flags) bool { return f.Interior() })
	if uint64(s.Sum()) != interior {
		t.Errorf("summary mass %.0f != interior mass %d", s.Sum(), interior)
	}
	tab, err := IntervalStatsTable("t", d.ICache)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 3 {
		t.Errorf("stats table too small:\n%s", tab.String())
	}
	// Count shares (all but the summary row) must sum to ~100%.
	var sum float64
	for _, row := range tab.Rows[:len(tab.Rows)-1] {
		v, err := strconv.ParseFloat(strings.TrimSuffix(row[1], "%"), 64)
		if err != nil {
			t.Fatalf("bad cell %q", row[1])
		}
		sum += v
	}
	if sum < 99 || sum > 101 {
		t.Errorf("count shares sum to %.2f%%", sum)
	}
	empty := interval.NewDistribution(1, 1)
	if _, err := IntervalStatsTable("t", empty); err == nil {
		t.Error("empty distribution accepted")
	}
}
