package experiments

import (
	"context"
	"errors"
	"math"
	"testing"

	"leakbound/internal/leakage"
	"leakbound/internal/power"
)

func TestParsePolicyNames(t *testing.T) {
	tech := power.Default()
	// Every advertised name must parse.
	for _, name := range PolicyNames() {
		pol, err := ParsePolicy(name, tech)
		if err != nil {
			t.Errorf("ParsePolicy(%q): %v", name, err)
			continue
		}
		if pol == nil {
			t.Errorf("ParsePolicy(%q): nil policy", name)
		}
	}
	// Case and whitespace are forgiven.
	if _, err := ParsePolicy("  OPT-Sleep  ", tech); err != nil {
		t.Errorf("case-insensitive parse failed: %v", err)
	}
	if _, err := ParsePolicy("nope", tech); !errors.Is(err, ErrUnknownPolicy) {
		t.Errorf("unknown policy error = %v, want ErrUnknownPolicy", err)
	}
	if _, err := ParsePolicy("opt-sleep@abc", tech); !errors.Is(err, ErrUnknownPolicy) {
		t.Errorf("bad theta error = %v, want ErrUnknownPolicy", err)
	}
}

func TestParsePolicyTheta(t *testing.T) {
	tech := power.Default()
	pol, err := ParsePolicy("opt-sleep@5000", tech)
	if err != nil {
		t.Fatal(err)
	}
	if got := pol.(leakage.OPTSleep).Theta; got != 5000 {
		t.Errorf("explicit theta = %d, want 5000", got)
	}
	// Default theta is the technology's drowsy-sleep inflection point b.
	pol, err = ParsePolicy("opt-sleep", tech)
	if err != nil {
		t.Fatal(err)
	}
	_, b, err := tech.InflectionPoints()
	if err != nil {
		t.Fatal(err)
	}
	if got := pol.(leakage.OPTSleep).Theta; got != uint64(b+0.5) {
		t.Errorf("default theta = %d, want inflection b = %d", got, uint64(b+0.5))
	}
	pol, err = ParsePolicy("periodic-drowsy", tech)
	if err != nil {
		t.Fatal(err)
	}
	if got := pol.(leakage.PeriodicDrowsy).Window; got != 2000 {
		t.Errorf("periodic-drowsy default window = %d, want 2000", got)
	}
}

func TestParseCacheSide(t *testing.T) {
	for _, s := range []string{"i", "I", "icache", "instruction", ""} {
		ic, err := ParseCacheSide(s)
		if err != nil || !ic {
			t.Errorf("ParseCacheSide(%q) = %v, %v; want true, nil", s, ic, err)
		}
	}
	for _, s := range []string{"d", "dcache", "Data"} {
		ic, err := ParseCacheSide(s)
		if err != nil || ic {
			t.Errorf("ParseCacheSide(%q) = %v, %v; want false, nil", s, ic, err)
		}
	}
	if _, err := ParseCacheSide("l2"); !errors.Is(err, ErrUnknownCacheSide) {
		t.Errorf("ParseCacheSide(l2) error = %v, want ErrUnknownCacheSide", err)
	}
}

func TestParseTechnology(t *testing.T) {
	tech, err := ParseTechnology("")
	if err != nil || tech.Name != power.Default().Name {
		t.Errorf("empty selector = %v (%v), want default node", tech.Name, err)
	}
	tech, err = ParseTechnology(" 180nm ")
	if err != nil || tech.Name != "180nm" {
		t.Errorf("180nm selector = %v (%v)", tech.Name, err)
	}
	if _, err := ParseTechnology("12nm"); !errors.Is(err, ErrUnknownTechnology) {
		t.Errorf("unknown node error = %v, want ErrUnknownTechnology", err)
	}
}

// TestEvaluateCellMatchesDirect: the served cell must agree with a direct
// leakage evaluation of the same distribution.
func TestEvaluateCellMatchesDirect(t *testing.T) {
	s := MustNew(WithScale(0.02))
	ctx := context.Background()
	tech := power.Default()
	pol, err := ParsePolicy("opt-hybrid", tech)
	if err != nil {
		t.Fatal(err)
	}
	cell, err := s.EvaluateCellContext(ctx, "gzip", true, tech, pol)
	if err != nil {
		t.Fatal(err)
	}
	if cell.Benchmark != "gzip" || cell.Cache != "i" || cell.Technology != tech.Name {
		t.Errorf("cell coordinates = %+v", cell)
	}
	bd, err := s.DataContext(ctx, "gzip")
	if err != nil {
		t.Fatal(err)
	}
	want, err := leakage.Evaluate(tech, bd.ICache, pol)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cell.Savings-want.Savings) > 1e-12 || math.Abs(cell.Energy-want.Energy) > 1e-9 {
		t.Errorf("cell = %+v, direct = %+v", cell, want)
	}
	if cell.Savings <= 0 || cell.Savings > 1 {
		t.Errorf("savings = %v out of (0, 1]", cell.Savings)
	}
}

// TestSweepThetaContext: sweeping opt-sleep across thetas yields one point
// per theta, and savings never increase as theta grows (a larger minimum
// sleepable interval can only shrink the sleepable fraction).
func TestSweepThetaContext(t *testing.T) {
	s := MustNew(WithScale(0.02))
	ctx := context.Background()
	thetas := []uint64{1057, 5000, 20000}
	points, err := s.SweepThetaContext(ctx, "opt-sleep", true, power.Default(), thetas)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(thetas) {
		t.Fatalf("got %d points, want %d", len(points), len(thetas))
	}
	for i, p := range points {
		if p.Theta != thetas[i] {
			t.Errorf("point %d theta = %d, want %d", i, p.Theta, thetas[i])
		}
		if p.Savings < 0 || p.Savings > 1 {
			t.Errorf("point %d savings = %v out of [0, 1]", i, p.Savings)
		}
	}
	for i := 1; i < len(points); i++ {
		if points[i].Savings > points[i-1].Savings+1e-12 {
			t.Errorf("savings increased with theta: %v -> %v", points[i-1], points[i])
		}
	}
	if _, err := s.SweepThetaContext(ctx, "opt-sleep", true, power.Default(), nil); err == nil {
		t.Error("empty theta sweep accepted")
	}
}

func TestSuiteWorkers(t *testing.T) {
	if got := MustNew(WithScale(0.02), WithWorkers(3)).Workers(); got != 3 {
		t.Errorf("Workers() = %d, want 3", got)
	}
	if got := MustNew(WithScale(0.02)).Workers(); got < 1 {
		t.Errorf("default Workers() = %d, want >= 1", got)
	}
}
