package experiments

// Calibration regression tests: wide bands around the paper-shape results
// so that future changes to the workload generators or energy model that
// silently break the reproduction fail loudly here. Exact values live in
// EXPERIMENTS.md; these bands are deliberately generous because the shared
// test suite runs at reduced scale.

import (
	"testing"
)

// figure8Avg fetches the average row of Figure 8 as a name->savings map.
func figure8Avg(t *testing.T, iCache bool) map[string]float64 {
	t.Helper()
	rows, err := Figure8(testSuiteShared, iCache)
	if err != nil {
		t.Fatal(err)
	}
	avg := rows[len(rows)-1]
	out := map[string]float64{}
	for i, p := range Figure8Policies() {
		out[p.Name()] = avg.Savings[i]
	}
	return out
}

func inBand(t *testing.T, label string, v, lo, hi float64) {
	t.Helper()
	if v < lo || v > hi {
		t.Errorf("%s = %.3f outside calibration band [%.2f, %.2f]", label, v, lo, hi)
	}
}

func TestCalibrationBandsICache(t *testing.T) {
	avg := figure8Avg(t, true)
	// Paper: 66.4 / ~70.4 / ~80.4 / 96.4 / ~80.4 / ~91.1.
	inBand(t, "I OPT-Drowsy", avg["OPT-Drowsy"], 0.64, 0.68)
	inBand(t, "I Sleep(10K)", avg["Sleep(10000)"], 0.62, 0.88)
	inBand(t, "I OPT-Sleep(10K)", avg["OPT-Sleep(10000)"], 0.72, 0.92)
	inBand(t, "I OPT-Hybrid", avg["OPT-Hybrid"], 0.92, 0.995)
	inBand(t, "I Prefetch-A", avg["Prefetch-A"], 0.70, 0.92)
	inBand(t, "I Prefetch-B", avg["Prefetch-B"], 0.84, 0.97)
}

func TestCalibrationBandsDCache(t *testing.T) {
	avg := figure8Avg(t, false)
	// Paper: 66.1 / ~84.1 / ~87.1 / 99.1 / - / 92.4.
	inBand(t, "D OPT-Drowsy", avg["OPT-Drowsy"], 0.64, 0.68)
	inBand(t, "D Sleep(10K)", avg["Sleep(10000)"], 0.55, 0.92)
	inBand(t, "D OPT-Sleep(10K)", avg["OPT-Sleep(10000)"], 0.75, 0.95)
	inBand(t, "D OPT-Hybrid", avg["OPT-Hybrid"], 0.92, 0.998)
	inBand(t, "D Prefetch-B", avg["Prefetch-B"], 0.72, 0.96)
}

func TestCalibrationImprovementFactor(t *testing.T) {
	// The paper's headline: the oracle leaves roughly 5x less leakage than
	// OPT-Sleep(10K) on the instruction cache. Band: [2.5, 9].
	avg := figure8Avg(t, true)
	factor := (1 - avg["OPT-Sleep(10000)"]) / (1 - avg["OPT-Hybrid"])
	if factor < 2.5 || factor > 9 {
		t.Errorf("I-cache improvement factor %.2f outside [2.5, 9] (paper: 5.3)", factor)
	}
}

func TestCalibrationBenchmarkCharacter(t *testing.T) {
	// Per-benchmark shape: the loop codes must out-save the irregular
	// codes on the I-cache under sleep-family policies.
	rows, err := Figure8(testSuiteShared, true)
	if err != nil {
		t.Fatal(err)
	}
	get := func(bench, policy string) float64 {
		for _, r := range rows {
			if r.Benchmark == bench {
				for i, p := range Figure8Policies() {
					if p.Name() == policy {
						return r.Savings[i]
					}
				}
			}
		}
		t.Fatalf("missing %s/%s", bench, policy)
		return 0
	}
	if get("applu", "OPT-Sleep(10000)") <= get("gcc", "OPT-Sleep(10000)") {
		t.Error("applu (tiny loop code) did not out-save gcc (300KB irregular code) on the I-cache")
	}
	// gcc's large footprint must make it one of the two worst I-cache
	// decay performers.
	worse := 0
	for _, name := range []string{"ammp", "applu", "gzip", "mesa", "vortex"} {
		if get(name, "Sleep(10000)") < get("gcc", "Sleep(10000)") {
			worse++
		}
	}
	if worse > 1 {
		t.Errorf("gcc not among the worst decay performers (%d benchmarks below it)", worse)
	}
}

func TestCalibrationPrefetchability(t *testing.T) {
	// Figure 9 bands: I-cache NL near the paper's 23%; D-cache stride
	// present but small; short intervals dominate counts.
	iP, err := Figure9(testSuiteShared, true)
	if err != nil {
		t.Fatal(err)
	}
	if nl := iP.NLShare(); nl < 0.10 || nl > 0.45 {
		t.Errorf("I NL share %.3f outside [0.10, 0.45] (paper: 0.23)", nl)
	}
	short := float64(iP.ShortCount) / float64(iP.Total())
	if short < 0.4 {
		t.Errorf("I short-interval count share %.3f — the (0,6] bucket must dominate", short)
	}
	dP, err := Figure9(testSuiteShared, false)
	if err != nil {
		t.Fatal(err)
	}
	if st := dP.StrideShare(); st <= 0 || st > 0.12 {
		t.Errorf("D stride share %.4f outside (0, 0.12] (paper: 0.051)", st)
	}
}
