package experiments

import (
	"context"
	"fmt"
	"math"

	"leakbound/internal/interval"
	"leakbound/internal/leakage"
	"leakbound/internal/power"
	"leakbound/internal/prefetch"
	"leakbound/internal/report"
	"leakbound/internal/stats"
)

// Figure7Thetas is the sweep of minimum sleep interval lengths the paper
// plots: from the 70nm drowsy-sleep inflection point up to 10000 cycles.
func Figure7Thetas() []uint64 {
	return []uint64{1057, 1200, 1500, 2000, 3000, 4000, 5000, 6000, 7000, 8000, 9000, 10000}
}

// Figure7 compares the pure sleep method against the hybrid (sleep+drowsy)
// method while sweeping the minimum interval length that may be put to
// sleep. Results are averaged across all benchmarks, as in the paper.
// iCache selects Figure 7(a) (instruction cache) vs 7(b) (data cache).
// It is Figure7Context with a background context.
func Figure7(s *Suite, iCache bool) (sleep, hybrid *report.Series, err error) {
	return Figure7Context(context.Background(), s, iCache)
}

// Figure7Context is the cancellable Figure7. The (theta x benchmark x
// {sleep, hybrid}) cells evaluate concurrently on the suite's grid; the
// per-theta averages are then reduced in the sequential loop order, so the
// series are bit-identical to a sequential evaluation.
func Figure7Context(ctx context.Context, s *Suite, iCache bool) (sleep, hybrid *report.Series, err error) {
	all, err := s.AllContext(ctx)
	if err != nil {
		return nil, nil, err
	}
	tech := power.Default()
	thetas := Figure7Thetas()
	cells := make([]Cell, 0, 2*len(thetas)*len(all))
	for _, theta := range thetas {
		for _, bd := range all {
			dist, agg := bd.Side(iCache)
			cells = append(cells,
				Cell{Tech: tech, Policy: leakage.OPTSleep{Theta: theta}, Dist: dist, Agg: agg,
					Label: fmt.Sprintf("fig7/%s/sleep@%d", bd.Name, theta)},
				Cell{Tech: tech, Policy: leakage.OPTHybrid{SleepTheta: theta}, Dist: dist, Agg: agg,
					Label: fmt.Sprintf("fig7/%s/hybrid@%d", bd.Name, theta)})
		}
	}
	evs, err := s.EvaluateGrid(ctx, cells)
	if err != nil {
		return nil, nil, err
	}
	sleep = &report.Series{Name: "Sleep"}
	hybrid = &report.Series{Name: "Sleep+Drowsy"}
	i := 0
	for _, theta := range thetas {
		var sSum, hSum float64
		for range all {
			sSum += evs[i].Savings
			hSum += evs[i+1].Savings
			i += 2
		}
		n := float64(len(all))
		sleep.Add(float64(theta), sSum/n)
		hybrid.Add(float64(theta), hSum/n)
	}
	return sleep, hybrid, nil
}

// Figure8Policies returns the six schemes of Figure 8 in bar order.
func Figure8Policies() []leakage.Policy {
	return []leakage.Policy{
		leakage.OPTDrowsy{},
		leakage.SleepDecay{Theta: 10000},
		leakage.OPTSleep{Theta: 10000},
		leakage.OPTHybrid{},
		leakage.PrefetchA(),
		leakage.PrefetchB(),
	}
}

// Figure8Row holds one benchmark's (or the average's) savings per scheme.
type Figure8Row struct {
	Benchmark string
	// Savings is keyed by policy name, in Figure8Policies order.
	Savings []float64
}

// Figure8 evaluates the six schemes on every benchmark plus the average,
// for one cache side, at 70nm. It is Figure8Context with a background
// context.
func Figure8(s *Suite, iCache bool) ([]Figure8Row, error) {
	return Figure8Context(context.Background(), s, iCache)
}

// Figure8Context is the cancellable Figure8. The (benchmark x scheme)
// cells evaluate concurrently on the suite's grid; rows and averages are
// reduced in the sequential loop order, bit-identical to a sequential
// evaluation.
func Figure8Context(ctx context.Context, s *Suite, iCache bool) ([]Figure8Row, error) {
	all, err := s.AllContext(ctx)
	if err != nil {
		return nil, err
	}
	tech := power.Default()
	policies := Figure8Policies()
	cells := make([]Cell, 0, len(all)*len(policies))
	for _, bd := range all {
		dist, agg := bd.Side(iCache)
		for _, p := range policies {
			cells = append(cells, Cell{Tech: tech, Policy: p, Dist: dist, Agg: agg,
				Label: fmt.Sprintf("fig8/%s/%s", bd.Name, p.Name())})
		}
	}
	evs, err := s.EvaluateGrid(ctx, cells)
	if err != nil {
		return nil, err
	}
	rows := make([]Figure8Row, 0, len(all)+1)
	avg := make([]float64, len(policies))
	k := 0
	for _, bd := range all {
		row := Figure8Row{Benchmark: bd.Name, Savings: make([]float64, len(policies))}
		for i := range policies {
			row.Savings[i] = evs[k].Savings
			avg[i] += evs[k].Savings / float64(len(all))
			k++
		}
		rows = append(rows, row)
	}
	rows = append(rows, Figure8Row{Benchmark: "average", Savings: avg})
	return rows, nil
}

// Figure8Table renders Figure 8 as a table (benchmarks x schemes). It is
// Figure8TableContext with a background context.
func Figure8Table(s *Suite, iCache bool) (*report.Table, error) {
	return Figure8TableContext(context.Background(), s, iCache)
}

// Figure8TableContext is the cancellable Figure8Table.
func Figure8TableContext(ctx context.Context, s *Suite, iCache bool) (*report.Table, error) {
	rows, err := Figure8Context(ctx, s, iCache)
	if err != nil {
		return nil, err
	}
	side := "(a) Instruction Cache"
	if !iCache {
		side = "(b) Data Cache"
	}
	headers := []string{"benchmark"}
	for _, p := range Figure8Policies() {
		headers = append(headers, p.Name())
	}
	t := report.NewTable("Figure 8"+side+": leakage power savings per scheme", headers...)
	for _, r := range rows {
		cells := []string{r.Benchmark}
		for _, v := range r.Savings {
			cells = append(cells, report.Pct(v))
		}
		t.MustAddRow(cells...)
	}
	return t, nil
}

// Figure9 computes the prefetchability breakdown of cache access intervals
// by length regime, aggregated over all benchmarks, for one cache side.
// The paper reports next-line prefetchability of 23% for the instruction
// cache, and 16.3% next-line + 5.1% stride for the data cache. It is
// Figure9Context with a background context.
func Figure9(s *Suite, iCache bool) (prefetch.Prefetchability, error) {
	return Figure9Context(context.Background(), s, iCache)
}

// Figure9Context is the cancellable Figure9.
func Figure9Context(ctx context.Context, s *Suite, iCache bool) (prefetch.Prefetchability, error) {
	iDist, dDist, err := s.MergedDistributionsContext(ctx)
	if err != nil {
		return prefetch.Prefetchability{}, err
	}
	dist := iDist
	if !iCache {
		dist = dDist
	}
	a, b, err := power.Default().InflectionPoints()
	if err != nil {
		return prefetch.Prefetchability{}, err
	}
	return prefetch.Analyze(dist, a, b), nil
}

// Figure9Table renders the Figure 9 breakdown. It is Figure9TableContext
// with a background context.
func Figure9Table(s *Suite, iCache bool) (*report.Table, error) {
	return Figure9TableContext(context.Background(), s, iCache)
}

// Figure9TableContext is the cancellable Figure9Table.
func Figure9TableContext(ctx context.Context, s *Suite, iCache bool) (*report.Table, error) {
	p, err := Figure9Context(ctx, s, iCache)
	if err != nil {
		return nil, err
	}
	side := "(a) Instruction Cache"
	if !iCache {
		side = "(b) Data Cache"
	}
	t := report.NewTable("Figure 9"+side+": prefetchability of intervals",
		"regime", "share of intervals", "P-NL", "P-stride")
	total := float64(p.Total())
	if total == 0 {
		return nil, fmt.Errorf("experiments: no interior intervals for Figure 9")
	}
	t.MustAddRow(fmt.Sprintf("(0, %.0f]", p.A),
		report.Pct(float64(p.ShortCount)/total), "-", "-")
	t.MustAddRow(fmt.Sprintf("(%.0f, %.0f]", p.A, p.B),
		report.Pct(float64(p.MidCount)/total),
		report.Pct(float64(p.MidNL)/total),
		report.Pct(float64(p.MidStride)/total))
	t.MustAddRow(fmt.Sprintf("(%.0f, +inf)", p.B),
		report.Pct(float64(p.LongCount)/total),
		report.Pct(float64(p.LongNL)/total),
		report.Pct(float64(p.LongStride)/total))
	t.MustAddRow("total prefetchable",
		report.Pct(p.PrefetchableShare()),
		report.Pct(p.NLShare()),
		report.Pct(p.StrideShare()))
	return t, nil
}

// Figure10Lengths returns log-spaced interval lengths spanning the three
// regimes at 70nm, for sampling the energy envelope.
func Figure10Lengths() []float64 {
	var out []float64
	for l := 1.0; l <= 1e5; l *= 1.5 {
		out = append(out, math.Round(l))
	}
	return out
}

// Figure10 samples the three per-mode energy curves and their lower
// envelope (the E(Ii, Tj) function of the appendix) at 70nm.
func Figure10() ([]leakage.EnvelopePoint, error) {
	tech := power.Default()
	m := leakage.NewModel(tech)
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m.EnvelopeSeries(Figure10Lengths()), nil
}

// Figure10Table renders Figure 10 as a table of energies per mode; +Inf
// cells (mode does not fit) render as "-".
func Figure10Table() (*report.Table, error) {
	pts, err := Figure10()
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Figure 10: energy per interval length and operating mode (70nm, model units)",
		"interval", "active", "drowsy", "sleep", "envelope", "best mode")
	fm := func(v float64) string {
		if math.IsInf(v, 1) {
			return "-"
		}
		return fmt.Sprintf("%.2f", v)
	}
	for _, p := range pts {
		t.MustAddRow(
			fmt.Sprintf("%.0f", p.Length),
			fm(p.Active), fm(p.Drowsy), fm(p.Sleep), fm(p.Minimum),
			p.Best.String(),
		)
	}
	return t, nil
}

// GapToOptimal reports the paper's Section 5.2 headline: how close
// Prefetch-B comes to OPT-Hybrid, for one cache side (paper: within 5.3%
// for the instruction cache, 6.7% for the data cache). It is
// GapToOptimalContext with a background context.
func GapToOptimal(s *Suite, iCache bool) (prefetchB, optHybrid, gap float64, err error) {
	return GapToOptimalContext(context.Background(), s, iCache)
}

// GapToOptimalContext is the cancellable GapToOptimal.
func GapToOptimalContext(ctx context.Context, s *Suite, iCache bool) (prefetchB, optHybrid, gap float64, err error) {
	rows, err := Figure8Context(ctx, s, iCache)
	if err != nil {
		return 0, 0, 0, err
	}
	avg := rows[len(rows)-1]
	policies := Figure8Policies()
	for i, p := range policies {
		switch p.Name() {
		case "OPT-Hybrid":
			optHybrid = avg.Savings[i]
		case "Prefetch-B":
			prefetchB = avg.Savings[i]
		}
	}
	return prefetchB, optHybrid, optHybrid - prefetchB, nil
}

// MassProfile summarizes a distribution's interval mass by the regimes the
// study cares about; used in EXPERIMENTS.md and diagnostics.
func MassProfile(d *interval.Distribution) map[string]float64 {
	total := float64(d.Mass())
	if total == 0 {
		return nil
	}
	share := func(lo, hi float64) float64 {
		return float64(d.MassWhere(func(l uint64, f interval.Flags) bool {
			return float64(l) > lo && float64(l) <= hi
		})) / total
	}
	return map[string]float64{
		"(0,6]":       share(0, 6),
		"(6,1057]":    share(6, 1057),
		"(1057,10K]":  share(1057, 10000),
		"(10K,103K]":  share(10000, 103084),
		"(103K,+inf)": share(103084, math.Inf(1)),
	}
}

// IntervalStats summarizes a distribution's interior interval lengths: a
// moment summary plus a log2-bucketed histogram, the diagnostic view
// cmd/leakagesim prints alongside policy savings.
func IntervalStats(d *interval.Distribution) (*stats.Summary, *stats.Histogram, error) {
	h, err := stats.NewLogHistogram(1, 1<<24, 2)
	if err != nil {
		return nil, nil, err
	}
	var s stats.Summary
	d.Each(func(length uint64, flags interval.Flags, count uint64) bool {
		if !flags.Interior() {
			return true
		}
		s.AddN(float64(length), int64(count))
		h.AddN(float64(length), int64(count))
		return true
	})
	return &s, h, nil
}

// IntervalStatsTable renders the histogram as regime rows with count and
// mass shares.
func IntervalStatsTable(title string, d *interval.Distribution) (*report.Table, error) {
	s, h, err := IntervalStats(d)
	if err != nil {
		return nil, err
	}
	t := report.NewTable(title, "interval length", "count share", "mass share")
	if h.Total() == 0 {
		return nil, fmt.Errorf("experiments: no interior intervals")
	}
	bounds, counts := h.Buckets()
	lower := 0.0
	totalMass := h.WeightedTotal()
	// Mass per bucket needs a second pass keyed by the same bounds.
	massH, err := stats.NewLogHistogram(1, 1<<24, 2)
	if err != nil {
		return nil, err
	}
	d.Each(func(length uint64, flags interval.Flags, count uint64) bool {
		if flags.Interior() {
			massH.AddN(float64(length), int64(length*count))
		}
		return true
	})
	_, masses := massH.Buckets()
	for i, b := range bounds {
		if counts[i] == 0 {
			lower = b
			continue
		}
		label := fmt.Sprintf("(%.0f, %.0f]", lower, b)
		if math.IsInf(b, 1) {
			label = fmt.Sprintf("(%.0f, +inf)", lower)
		}
		t.MustAddRow(label,
			report.Pct(float64(counts[i])/float64(h.Total())),
			report.Pct(float64(masses[i])/totalMass))
		lower = b
	}
	t.MustAddRow("summary",
		fmt.Sprintf("n=%d", s.N()),
		fmt.Sprintf("mean %.0f, max %.0f", s.Mean(), s.Max()))
	return t, nil
}
