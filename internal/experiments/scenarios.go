package experiments

// Scenario integration: the suite's benchmark set is the built-in six
// plus any registered scenarios — spec-compiled workloads and recorded
// traces (internal/workload/spec) — evaluated through exactly the same
// simulate-once / evaluate-many pipeline, disk cache, and telemetry as
// the builtins. A second, ad-hoc path (DataForScenarioContext) serves
// one-shot scenarios that arrive at query time (a spec POSTed to
// leakaged) without registering them: results are keyed by spec digest
// and retained in a small bounded window.

import (
	"context"
	"fmt"
	"strings"

	"leakbound/internal/leakage"
	"leakbound/internal/power"
	"leakbound/internal/workload"
)

// Scenario is a benchmark defined outside the built-in workload set: a
// named, content-addressed workload factory. *spec.Spec and *spec.Replay
// (and anything spec.LoadDir returns) satisfy it structurally — the suite
// deliberately does not import the spec package, so recorded traces,
// compiled specs, and test doubles all plug in the same way.
type Scenario interface {
	// ScenarioName is the benchmark name the scenario serves under.
	ScenarioName() string
	// ScenarioDigest content-addresses the scenario (hex SHA-256 of the
	// canonical spec or trace bytes); it keys disk-cache entries so a
	// changed definition never serves a stale simulation.
	ScenarioDigest() string
	// Workload instantiates the scenario at a scale (recorded traces are
	// fixed-length and may ignore it).
	Workload(scale float64) (workload.Workload, error)
}

// adhocDataCap bounds how many ad-hoc scenario results (one per distinct
// POSTed spec digest) the suite retains in memory; the oldest entry is
// evicted beyond that. Registered benchmarks are never evicted.
const adhocDataCap = 8

// WithScenarios registers extra benchmarks alongside the built-in six.
// Registered scenarios appear in BenchmarkNames, are simulated by
// AllContext (so they join every sweep, table, and Pareto population),
// and resolve by name through DataContext. Names must be non-empty, free
// of path/key separators, distinct from the builtins, and mutually
// distinct.
func WithScenarios(scs ...Scenario) Option {
	return func(s *Suite) error {
		for _, sc := range scs {
			if sc == nil {
				return fmt.Errorf("%w: nil scenario", ErrBadOption)
			}
			name := sc.ScenarioName()
			if name == "" {
				return fmt.Errorf("%w: scenario with empty name", ErrBadOption)
			}
			if strings.ContainsAny(name, ":/\\ \t\n") {
				return fmt.Errorf("%w: scenario name %q contains reserved characters", ErrBadOption, name)
			}
			if workload.Validate(name) == nil {
				return fmt.Errorf("%w: scenario %q shadows a built-in benchmark", ErrBadOption, name)
			}
			if _, dup := s.scenarioIdx[name]; dup {
				return fmt.Errorf("%w: duplicate scenario %q", ErrBadOption, name)
			}
			if sc.ScenarioDigest() == "" {
				return fmt.Errorf("%w: scenario %q has an empty digest", ErrBadOption, name)
			}
			if s.scenarioIdx == nil {
				s.scenarioIdx = make(map[string]Scenario)
			}
			s.scenarioIdx[name] = sc
			s.scenarios = append(s.scenarios, sc)
		}
		return nil
	}
}

// BenchmarkNames returns the suite's full benchmark set in presentation
// order: the built-in six, then registered scenarios in registration
// order. This is the set AllContext simulates.
func (s *Suite) BenchmarkNames() []string {
	names := workload.Names()
	for _, sc := range s.scenarios {
		names = append(names, sc.ScenarioName())
	}
	return names
}

// KnownBenchmark reports whether name resolves in this suite — as a
// built-in workload or a registered scenario.
func (s *Suite) KnownBenchmark(name string) bool {
	if workload.Validate(name) == nil {
		return true
	}
	_, ok := s.scenarioIdx[name]
	return ok
}

// Scenarios returns the registered scenarios in registration order.
func (s *Suite) Scenarios() []Scenario {
	out := make([]Scenario, len(s.scenarios))
	copy(out, s.scenarios)
	return out
}

// DataForScenarioContext returns simulation products for a scenario that
// need not be registered — the serving layer's path for specs that
// arrive in a request body. Results are keyed by the scenario's digest:
// repeated queries for the same spec reuse one simulation (singleflight
// plus a bounded in-memory window of adhocDataCap entries, plus the disk
// cache if enabled), and a registered scenario with the same name and
// digest shares the registered entry outright.
func (s *Suite) DataForScenarioContext(ctx context.Context, sc Scenario) (*BenchmarkData, error) {
	if sc == nil {
		return nil, fmt.Errorf("%w: nil scenario", ErrBadOption)
	}
	name, digest := sc.ScenarioName(), sc.ScenarioDigest()
	if name == "" {
		return nil, fmt.Errorf("%w: scenario with empty name", ErrBadOption)
	}
	if digest == "" {
		return nil, fmt.Errorf("%w: scenario %q has an empty digest", ErrBadOption, name)
	}
	if reg, ok := s.scenarioIdx[name]; ok && reg.ScenarioDigest() == digest {
		return s.DataContext(ctx, name)
	}
	return s.dataByKey(ctx, "adhoc:"+digest, true, func(ctx context.Context) (*BenchmarkData, error) {
		return s.produceWorkload(ctx, name, s.scenarioCacheKey(name, digest), false,
			func() (workload.Workload, error) { return sc.Workload(s.scale) })
	})
}

// EvaluateScenarioCellContext evaluates one policy on an ad-hoc
// scenario's cache at one technology node — EvaluateCellContext for a
// scenario passed by value instead of by registered name.
func (s *Suite) EvaluateScenarioCellContext(ctx context.Context, sc Scenario, iCache bool, tech power.Technology, pol leakage.Policy) (CellEvaluation, error) {
	bd, err := s.DataForScenarioContext(ctx, sc)
	if err != nil {
		return CellEvaluation{}, err
	}
	dist, agg := bd.Side(iCache)
	side := "i"
	if !iCache {
		side = "d"
	}
	evs, err := s.EvaluateGrid(ctx, []Cell{{Tech: tech, Policy: pol, Dist: dist, Agg: agg,
		Label: fmt.Sprintf("query/adhoc/%s/%s/%s", side, tech.Name, pol.Name())}})
	if err != nil {
		return CellEvaluation{}, err
	}
	return CellEvaluation{
		Benchmark:  bd.Name,
		Cache:      side,
		Technology: tech.Name,
		Policy:     evs[0].Policy,
		Energy:     evs[0].Energy,
		Baseline:   evs[0].Baseline,
		Savings:    evs[0].Savings,
	}, nil
}

// SweepParamScenarioContext sweeps a scheme parameter over a single
// ad-hoc scenario's chosen cache: the scenario-scoped counterpart of
// SweepParamContext, answering the whole value list in one
// leakage.EvaluateMany pass over the scenario's prefix aggregates.
// Points carry the scenario's own savings, not a suite average.
func (s *Suite) SweepParamScenarioContext(ctx context.Context, sc Scenario, scheme, param string, iCache bool, tech power.Technology, values []leakage.ParamValue) ([]ParamSweepPoint, error) {
	pols, name, err := resolveSweepPolicies(scheme, param, tech, values)
	if err != nil {
		return nil, err
	}
	bd, err := s.DataForScenarioContext(ctx, sc)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	_, agg := bd.Side(iCache)
	evs, err := leakage.EvaluateMany(tech, agg, pols)
	if err != nil {
		return nil, fmt.Errorf("experiments: sweep %s/%s: %w", name, bd.Name, err)
	}
	msc := s.metrics.Scope("sweep")
	msc.Counter("points").Add(uint64(len(values)))
	msc.Counter("evaluations").Add(uint64(len(values)))
	out := make([]ParamSweepPoint, 0, len(values))
	for vi, v := range values {
		out = append(out, ParamSweepPoint{Value: v, Savings: evs[vi].Savings})
	}
	return out, nil
}
