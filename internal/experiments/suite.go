// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 4 and 5): Table 1 (inflection points), Table 2
// (technology scaling), Table 3 (prefetch scheme definitions), Figure 1
// (ITRS projection), Figure 7 (hybrid vs sleep sweep), Figure 8 (scheme
// comparison per benchmark), Figure 9 (prefetchability), and Figure 10
// (the energy lower envelope).
//
// A Suite simulates each benchmark once — through the Alpha-like hierarchy,
// with prefetch classifiers attached — and caches the flagged interval
// distributions; every experiment then evaluates policies over those
// distributions, exactly as the limit study separates trace collection from
// policy analysis.
//
// Simulation is a single streaming pass: the workload generator feeds the
// CPU model, which feeds the interval collectors and prefetch engines
// through reused struct-of-arrays batches (internal/sim/stream) — no
// intermediate trace is ever materialized. The pipeline is parallel at two
// levels, both governed by WithWorkers: benchmarks fan out across a
// bounded pool (AllContext), and within one benchmark the batches can be
// shipped over an SPSC ring to frame-sharded collectors
// (interval.ShardedCollector). Parallel results are bit-identical to the
// sequential path, so shard and worker counts are pure performance knobs.
// Long sweeps are cancellable: every entry point has a ...Context variant
// that returns ctx.Err() promptly, flushing partial telemetry on the way
// out.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"leakbound/internal/interval"
	"leakbound/internal/prefetch"
	"leakbound/internal/sim/cache"
	"leakbound/internal/sim/cpu"
	"leakbound/internal/sim/stream"
	"leakbound/internal/sim/trace"
	"leakbound/internal/telemetry"
	"leakbound/internal/workload"
)

// BenchmarkData holds one benchmark's simulation products.
type BenchmarkData struct {
	Name   string
	Result cpu.Result
	// ICache and DCache are the flagged interval distributions for the two
	// L1 caches (the study's subjects).
	ICache *interval.Distribution
	DCache *interval.Distribution
	// L2Cache is the unified L2's distribution — not part of the paper's
	// study, collected for the L2 extension experiment. Its events are
	// L1 misses only, so most of its 32768 frames idle for very long
	// stretches.
	L2Cache *interval.Distribution
	// IEngine and DEngine are the hardware prefetch engines' statistics
	// over the same run: the implementable counterpart of the oracle
	// prefetchability flags (Section 5's premise that next-line + stride
	// capture most misses).
	IEngine prefetch.EngineStats
	DEngine prefetch.EngineStats
	// IAgg, DAgg and L2Agg are the prefix-aggregate summaries of the three
	// distributions (interval.Aggregates), built once when the benchmark is
	// produced and shared by every dense sweep and Pareto population. They
	// are read-only after construction and safe for concurrent use.
	IAgg  *interval.Aggregates
	DAgg  *interval.Aggregates
	L2Agg *interval.Aggregates
}

// buildAggregates summarizes the three distributions. Called once on the
// producing goroutine before the BenchmarkData is shared: the walk also
// compacts each distribution's tail, so later concurrent walks are
// race-free (see interval.Distribution.Each).
func (d *BenchmarkData) buildAggregates() {
	d.IAgg = interval.NewAggregates(d.ICache)
	d.DAgg = interval.NewAggregates(d.DCache)
	d.L2Agg = interval.NewAggregates(d.L2Cache)
}

// Side returns the distribution and its aggregates for one L1 side
// (true = I-cache, false = D-cache).
func (d *BenchmarkData) Side(iCache bool) (*interval.Distribution, *interval.Aggregates) {
	if iCache {
		return d.ICache, d.IAgg
	}
	return d.DCache, d.DAgg
}

// Suite lazily simulates benchmarks at a fixed scale and caches results.
// It is safe for concurrent use; concurrent requests for the same
// benchmark are deduplicated (singleflight), so a benchmark simulates at
// most once per suite no matter how many experiments race for it.
// Construct with New (see options.go).
type Suite struct {
	scale   float64
	workers int
	metrics *telemetry.Registry

	// scenarios extend the benchmark set beyond the built-in six
	// (WithScenarios); both are fixed at construction and read-only after,
	// so lookups need no lock. scenarioIdx indexes them by name.
	scenarios   []Scenario
	scenarioIdx map[string]Scenario

	mu       sync.Mutex
	data     map[string]*BenchmarkData
	inflight map[string]*inflightSim
	// adhocOrder tracks insertion order of ad-hoc scenario entries in data
	// (keys carry the "adhoc:" prefix) for bounded LRU-ish eviction; see
	// DataForScenarioContext.
	adhocOrder []string
	cacheDir   string // optional on-disk cache (see diskcache.go)
}

// inflightSim is the per-benchmark singleflight gate: the leader closes
// done after publishing d/err, and waiters read them only after <-done.
type inflightSim struct {
	done chan struct{}
	d    *BenchmarkData
	err  error
}

// DefaultScale is the workload scale used by the experiment binaries: the
// full study length (roughly 5-10M instructions per benchmark, a few
// million simulated cycles — comfortably above the 180nm inflection point
// of 103084 cycles).
const DefaultScale = 1.0

// Scale returns the suite's workload scale.
func (s *Suite) Scale() float64 { return s.scale }

// Data returns the simulation products for one benchmark, simulating on
// first use. It is DataContext with a background context.
func (s *Suite) Data(name string) (*BenchmarkData, error) {
	return s.DataContext(context.Background(), name)
}

// DataContext returns the simulation products for one benchmark,
// simulating on first use. Concurrent callers for the same benchmark
// share one simulation: the first caller (the leader) simulates while the
// rest wait on its result — or on their own ctx, whichever finishes
// first. If the leader fails, waiters retry rather than inheriting an
// error that may belong to the leader's cancelled context.
func (s *Suite) DataContext(ctx context.Context, name string) (*BenchmarkData, error) {
	return s.dataByKey(ctx, name, false, func(ctx context.Context) (*BenchmarkData, error) {
		return s.produce(ctx, name)
	})
}

// dataByKey is the shared singleflight core behind DataContext (key =
// benchmark name) and DataForScenarioContext (key = "adhoc:" + digest;
// benchmark names can never contain a colon, so the key spaces are
// disjoint). adhoc entries are retained in a small bounded window rather
// than forever — see adhocDataCap.
func (s *Suite) dataByKey(ctx context.Context, key string, adhoc bool, produce func(context.Context) (*BenchmarkData, error)) (*BenchmarkData, error) {
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		s.mu.Lock()
		if d, ok := s.data[key]; ok {
			s.mu.Unlock()
			return d, nil
		}
		if c, ok := s.inflight[key]; ok {
			s.mu.Unlock()
			select {
			case <-c.done:
				if c.err == nil {
					return c.d, nil
				}
				// Leader failed — maybe its own context was cancelled.
				// Loop: a deterministic failure will fail again under this
				// caller's leadership; a leader-only cancellation must not
				// poison everyone else.
				continue
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		c := &inflightSim{done: make(chan struct{})}
		s.inflight[key] = c
		s.mu.Unlock()

		d, err := produce(ctx)
		s.mu.Lock()
		delete(s.inflight, key)
		if err == nil {
			if adhoc {
				s.adhocOrder = append(s.adhocOrder, key)
				if len(s.adhocOrder) > adhocDataCap {
					delete(s.data, s.adhocOrder[0])
					s.adhocOrder = s.adhocOrder[1:]
				}
			}
			s.data[key] = d
		}
		s.mu.Unlock()
		c.d, c.err = d, err
		close(c.done)
		return d, err
	}
}

// produce loads one benchmark from the disk cache or simulates it; called
// only by a singleflight leader, so it never runs twice concurrently for
// the same name. The name is resolved against the registered scenarios
// first, then the built-in workload set.
func (s *Suite) produce(ctx context.Context, name string) (*BenchmarkData, error) {
	if sc, ok := s.scenarioIdx[name]; ok {
		return s.produceWorkload(ctx, name, s.scenarioCacheKey(name, sc.ScenarioDigest()), true,
			func() (workload.Workload, error) { return sc.Workload(s.scale) })
	}
	return s.produceWorkload(ctx, name, s.cacheKey(name), true,
		func() (workload.Workload, error) { return workload.New(name, s.scale) })
}

// produceWorkload runs the disk-cache-or-simulate pipeline for one
// resolved workload. key is the disk-cache key; perName gates the
// per-benchmark telemetry gauges — registered names are a closed set
// fixed at construction, but ad-hoc scenarios (one per POSTed spec) are
// not, so they only feed the aggregate counters.
func (s *Suite) produceWorkload(ctx context.Context, name, key string, perName bool, mk func() (workload.Workload, error)) (*BenchmarkData, error) {
	if d := s.loadCached(key, name); d != nil {
		d.buildAggregates()
		return d, nil
	}
	//lint:ignore determinism wall clock feeds the sim_ms/sim_ns telemetry only, never the simulation products
	start := time.Now()
	sc := s.metrics.Scope("suite")
	w, err := mk()
	if err != nil {
		return nil, err
	}
	d, err := simulate(ctx, name, w, s.poolWorkers())
	if err != nil {
		if ctx.Err() != nil {
			// Partial-telemetry flush on cancellation: the abandoned work
			// still shows up in the snapshot.
			sc.Counter("sims_cancelled").Add(1)
			if perName {
				//lint:ignore telemetryscope registered benchmark names are a closed set (BenchmarkNames(), fixed at construction), so cardinality is bounded and snapshots stay deterministic
				sc.Gauge("cancelled_after_ms/" + name).Set(time.Since(start).Milliseconds())
			}
		}
		return nil, err
	}
	elapsed := time.Since(start)
	sc.Counter("fresh_sims").Add(1)
	if perName {
		//lint:ignore telemetryscope registered benchmark names are a closed set (BenchmarkNames(), fixed at construction), so cardinality is bounded and snapshots stay deterministic
		sc.Gauge("sim_ms/" + name).Set(elapsed.Milliseconds())
		//lint:ignore telemetryscope registered benchmark names are a closed set (BenchmarkNames(), fixed at construction), so cardinality is bounded and snapshots stay deterministic
		sc.Gauge("events/" + name).Set(int64(d.Result.L1I.Accesses + d.Result.L1D.Accesses + d.Result.L2.Accesses))
	} else {
		sc.Counter("adhoc_sims").Add(1)
	}
	sc.Histogram("sim_ns").Record(uint64(elapsed.Nanoseconds()))
	s.storeCached(key, d)
	d.buildAggregates()
	return d, nil
}

// All simulates every benchmark in parallel and returns them in
// presentation order. It is AllContext with a background context.
func (s *Suite) All() ([]*BenchmarkData, error) {
	return s.AllContext(context.Background())
}

// AllContext simulates every benchmark in parallel — through a bounded,
// metric-instrumented worker pool (WithWorkers, default GOMAXPROCS),
// never an unbounded goroutine fan-out — and returns them in presentation
// order. Cancelling ctx aborts in-flight simulations at their next
// cancellation check, skips queued ones, and returns ctx.Err().
func (s *Suite) AllContext(ctx context.Context) ([]*BenchmarkData, error) {
	names := s.BenchmarkNames()
	out := make([]*BenchmarkData, len(names))
	pool := telemetry.NewPoolIn(s.metrics, s.poolWorkers())
	for i, name := range names {
		i, name := i, name
		pool.Go(func() error {
			if err := ctx.Err(); err != nil {
				return err
			}
			d, err := s.DataContext(ctx, name)
			if err != nil {
				return fmt.Errorf("experiments: %s: %w", name, err)
			}
			out[i] = d
			return nil
		})
	}
	err := pool.Wait()
	if cerr := ctx.Err(); cerr != nil {
		return nil, cerr
	}
	if err != nil {
		return nil, err
	}
	return out, nil
}

// simulate runs one resolved workload through the paper's machine
// configuration and collects flagged interval distributions for all three
// caches in a single streaming pass: the generator feeds the CPU model,
// which feeds the collectors through reused struct-of-arrays batches, and
// no intermediate trace is ever materialized. shards selects the
// collection topology — <=1 collects in-line on the simulation goroutine
// (the single-core fast path), >1 ships batches through an SPSC ring to a
// consumer that fans events out to frame-sharded collectors. The outputs
// are bit-identical either way.
func simulate(ctx context.Context, name string, w workload.Workload, shards int) (*BenchmarkData, error) {
	hier, err := cache.NewHierarchy(cache.AlphaLike())
	if err != nil {
		return nil, err
	}
	iClass, err := prefetch.NewClassifier(prefetch.ForICache())
	if err != nil {
		return nil, err
	}
	dClass, err := prefetch.NewClassifier(prefetch.ForDCache())
	if err != nil {
		return nil, err
	}
	iEng, err := prefetch.NewEngine(prefetch.DefaultEngineConfig(prefetch.ForICache()))
	if err != nil {
		return nil, err
	}
	dEng, err := prefetch.NewEngine(prefetch.DefaultEngineConfig(prefetch.ForDCache()))
	if err != nil {
		return nil, err
	}
	if shards <= 1 {
		return simulateInline(ctx, name, w, hier, iClass, dClass, iEng, dEng)
	}
	return simulateRing(ctx, name, w, hier, iClass, dClass, iEng, dEng, shards)
}

// finisher closes a collector at the simulation horizon; satisfied by both
// interval.Collector and interval.ShardedCollector.
type finisher interface {
	Finish(totalCycles uint64) (*interval.Distribution, error)
}

// finishData closes the three collectors and both engines into a
// BenchmarkData.
func finishData(name string, res cpu.Result, iCol, dCol, l2Col finisher, iEng, dEng *prefetch.Engine) (*BenchmarkData, error) {
	iDist, err := iCol.Finish(res.Cycles)
	if err != nil {
		return nil, err
	}
	dDist, err := dCol.Finish(res.Cycles)
	if err != nil {
		return nil, err
	}
	l2Dist, err := l2Col.Finish(res.Cycles)
	if err != nil {
		return nil, err
	}
	return &BenchmarkData{
		Name: name, Result: res,
		ICache: iDist, DCache: dDist, L2Cache: l2Dist,
		IEngine: iEng.Finish(), DEngine: dEng.Finish(),
	}, nil
}

// simulateInline is the single-goroutine streaming path: the CPU model
// hands each full batch straight to the collectors and engines on the
// same goroutine, so the whole pipeline shares one batch buffer and the
// per-event cost is a handful of column reads.
func simulateInline(ctx context.Context, name string, w workload.Workload, hier *cache.Hierarchy,
	iClass, dClass *prefetch.Classifier, iEng, dEng *prefetch.Engine) (*BenchmarkData, error) {
	iCol, err := interval.NewCollector(trace.L1I, uint32(hier.L1I().Config().NumLines()), iClass)
	if err != nil {
		return nil, err
	}
	dCol, err := interval.NewCollector(trace.L1D, uint32(hier.L1D().Config().NumLines()), dClass)
	if err != nil {
		return nil, err
	}
	l2Col, err := interval.NewCollector(trace.L2, uint32(hier.L2().Config().NumLines()), nil)
	if err != nil {
		return nil, err
	}
	// The engines run right behind the classifiers on the same event
	// stream, so they can read the classifiers' stride tables instead of
	// maintaining bit-identical copies.
	if err := iEng.ShareStrides(iClass); err != nil {
		return nil, err
	}
	if err := dEng.ShareStrides(dClass); err != nil {
		return nil, err
	}
	// One fused pass per batch: each event's columns are loaded once and
	// dispatched to its cache's collector and engine together, instead of
	// five separate filtered scans over the same batch.
	res, err := cpu.RunStreamContext(ctx, w, hier, cpu.DefaultConfig(), func(b *stream.Batch) error {
		n := b.Len()
		for i := 0; i < n; i++ {
			cycle, lineAddr, pc := b.Cycles[i], b.LineAddrs[i], b.PCs[i]
			frame, kind, miss := b.Frames[i], b.Kinds[i], b.Misses[i]
			switch b.Caches[i] {
			case trace.L1I:
				if err := iCol.AddCols(cycle, lineAddr, pc, frame, trace.L1I, kind, miss); err != nil {
					return err
				}
				iEng.AccessCols(cycle, lineAddr, pc, kind, miss)
			case trace.L1D:
				if err := dCol.AddCols(cycle, lineAddr, pc, frame, trace.L1D, kind, miss); err != nil {
					return err
				}
				dEng.AccessCols(cycle, lineAddr, pc, kind, miss)
			case trace.L2:
				if err := l2Col.AddCols(cycle, lineAddr, pc, frame, trace.L2, kind, miss); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return finishData(name, res, iCol, dCol, l2Col, iEng, dEng)
}

// simulateRing is the decoupled streaming path for shards > 1: batches
// travel through an SPSC ring to a consumer goroutine, which fans events
// out to frame-sharded collectors (producer-side classification happens on
// the consumer, where global stream order is still visible). On
// cancellation the deferred Close calls release the shard workers and
// flush partial telemetry (TestAllContextCancelNoLeak exercises this).
func simulateRing(ctx context.Context, name string, w workload.Workload, hier *cache.Hierarchy,
	iClass, dClass *prefetch.Classifier, iEng, dEng *prefetch.Engine, shards int) (*BenchmarkData, error) {
	iCol, err := interval.NewShardedCollector(trace.L1I, uint32(hier.L1I().Config().NumLines()), iClass, shards)
	if err != nil {
		return nil, err
	}
	defer iCol.Close()
	dCol, err := interval.NewShardedCollector(trace.L1D, uint32(hier.L1D().Config().NumLines()), dClass, shards)
	if err != nil {
		return nil, err
	}
	defer dCol.Close()
	l2Col, err := interval.NewShardedCollector(trace.L2, uint32(hier.L2().Config().NumLines()), nil, shards)
	if err != nil {
		return nil, err
	}
	defer l2Col.Close()

	ring := stream.NewRing(4, stream.DefaultBatchEvents)
	var consumeErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		consumeErr = ring.Consume(func(b *stream.Batch) error {
			for i, n := 0, b.Len(); i < n; i++ {
				e := b.Event(i)
				switch e.Cache {
				case trace.L1I:
					if err := iCol.Add(e); err != nil {
						return err
					}
					iEng.Access(e)
				case trace.L1D:
					if err := dCol.Add(e); err != nil {
						return err
					}
					dEng.Access(e)
				case trace.L2:
					if err := l2Col.Add(e); err != nil {
						return err
					}
				}
			}
			return nil
		})
	}()
	res, err := cpu.RunRingContext(ctx, w, hier, cpu.DefaultConfig(), ring)
	// RunRingContext closes the ring on every exit path, so the consumer
	// always drains and terminates; wait for it before touching collector
	// or engine state.
	<-done
	if err != nil {
		return nil, err
	}
	if consumeErr != nil {
		return nil, fmt.Errorf("experiments: collecting %s: %w", name, consumeErr)
	}
	return finishData(name, res, iCol, dCol, l2Col, iEng, dEng)
}

// MergedDistributions returns suite-wide merged I- and D-cache
// distributions (used by Figure 9's aggregate prefetchability). It is
// MergedDistributionsContext with a background context.
func (s *Suite) MergedDistributions() (iDist, dDist *interval.Distribution, err error) {
	return s.MergedDistributionsContext(context.Background())
}

// MergedDistributionsContext is the cancellable MergedDistributions.
func (s *Suite) MergedDistributionsContext(ctx context.Context) (iDist, dDist *interval.Distribution, err error) {
	all, err := s.AllContext(ctx)
	if err != nil {
		return nil, nil, err
	}
	iDist = interval.NewDistribution(0, 0)
	dDist = interval.NewDistribution(0, 0)
	for _, d := range all {
		if err := iDist.Merge(d.ICache); err != nil {
			return nil, nil, err
		}
		if err := dDist.Merge(d.DCache); err != nil {
			return nil, nil, err
		}
	}
	return iDist, dDist, nil
}

// SortedNames returns the benchmark names the suite has simulated so far;
// primarily for diagnostics.
func (s *Suite) SortedNames() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.data))
	for n := range s.data {
		// Ad-hoc scenario entries are keyed "adhoc:<digest>", not by
		// benchmark name; they are a cache, not part of the suite's set.
		if !strings.Contains(n, ":") {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}
