// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 4 and 5): Table 1 (inflection points), Table 2
// (technology scaling), Table 3 (prefetch scheme definitions), Figure 1
// (ITRS projection), Figure 7 (hybrid vs sleep sweep), Figure 8 (scheme
// comparison per benchmark), Figure 9 (prefetchability), and Figure 10
// (the energy lower envelope).
//
// A Suite simulates each benchmark once — through the Alpha-like hierarchy,
// with prefetch classifiers attached — and caches the flagged interval
// distributions; every experiment then evaluates policies over those
// distributions, exactly as the limit study separates trace collection from
// policy analysis.
package experiments

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"leakbound/internal/interval"
	"leakbound/internal/prefetch"
	"leakbound/internal/sim/cache"
	"leakbound/internal/sim/cpu"
	"leakbound/internal/sim/trace"
	"leakbound/internal/telemetry"
	"leakbound/internal/workload"
)

// BenchmarkData holds one benchmark's simulation products.
type BenchmarkData struct {
	Name   string
	Result cpu.Result
	// ICache and DCache are the flagged interval distributions for the two
	// L1 caches (the study's subjects).
	ICache *interval.Distribution
	DCache *interval.Distribution
	// L2Cache is the unified L2's distribution — not part of the paper's
	// study, collected for the L2 extension experiment. Its events are
	// L1 misses only, so most of its 32768 frames idle for very long
	// stretches.
	L2Cache *interval.Distribution
	// IEngine and DEngine are the hardware prefetch engines' statistics
	// over the same run: the implementable counterpart of the oracle
	// prefetchability flags (Section 5's premise that next-line + stride
	// capture most misses).
	IEngine prefetch.EngineStats
	DEngine prefetch.EngineStats
}

// Suite lazily simulates benchmarks at a fixed scale and caches results.
// It is safe for concurrent use.
type Suite struct {
	scale float64

	mu       sync.Mutex
	data     map[string]*BenchmarkData
	cacheDir string // optional on-disk cache (see diskcache.go)
}

// DefaultScale is the workload scale used by the experiment binaries: the
// full study length (roughly 5-10M instructions per benchmark, a few
// million simulated cycles — comfortably above the 180nm inflection point
// of 103084 cycles).
const DefaultScale = 1.0

// NewSuite creates a suite; scale stretches benchmark lengths (1.0 = the
// study length, smaller for tests).
func NewSuite(scale float64) (*Suite, error) {
	if scale <= 0 {
		return nil, fmt.Errorf("experiments: non-positive scale %g", scale)
	}
	return &Suite{scale: scale, data: make(map[string]*BenchmarkData)}, nil
}

// MustNewSuite is NewSuite that panics on bad input.
func MustNewSuite(scale float64) *Suite {
	s, err := NewSuite(scale)
	if err != nil {
		panic(err)
	}
	return s
}

// Scale returns the suite's workload scale.
func (s *Suite) Scale() float64 { return s.scale }

// Data returns the simulation products for one benchmark, simulating on
// first use.
func (s *Suite) Data(name string) (*BenchmarkData, error) {
	s.mu.Lock()
	if d, ok := s.data[name]; ok {
		s.mu.Unlock()
		return d, nil
	}
	s.mu.Unlock()

	d := s.loadCached(name)
	if d == nil {
		start := time.Now()
		var err error
		d, err = simulate(name, s.scale)
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		sc := telemetry.Default().Scope("suite")
		sc.Counter("fresh_sims").Add(1)
		sc.Gauge("sim_ms/" + name).Set(elapsed.Milliseconds())
		sc.Gauge("events/" + name).Set(int64(d.Result.L1I.Accesses + d.Result.L1D.Accesses + d.Result.L2.Accesses))
		sc.Histogram("sim_ns").Record(uint64(elapsed.Nanoseconds()))
		s.storeCached(d)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if prev, ok := s.data[name]; ok {
		return prev, nil // another goroutine won the race; results are identical
	}
	s.data[name] = d
	return d, nil
}

// All simulates every benchmark in parallel — through a bounded,
// metric-instrumented worker pool (GOMAXPROCS workers), never an
// unbounded goroutine fan-out — and returns them in presentation order.
func (s *Suite) All() ([]*BenchmarkData, error) {
	names := workload.Names()
	out := make([]*BenchmarkData, len(names))
	pool := telemetry.NewPool(0)
	for i, name := range names {
		i, name := i, name
		pool.Go(func() error {
			d, err := s.Data(name)
			if err != nil {
				return fmt.Errorf("experiments: %s: %w", name, err)
			}
			out[i] = d
			return nil
		})
	}
	if err := pool.Wait(); err != nil {
		return nil, err
	}
	return out, nil
}

// simulate runs one benchmark through the paper's machine configuration and
// collects flagged interval distributions for both L1 caches.
func simulate(name string, scale float64) (*BenchmarkData, error) {
	w, err := workload.New(name, scale)
	if err != nil {
		return nil, err
	}
	hier, err := cache.NewHierarchy(cache.AlphaLike())
	if err != nil {
		return nil, err
	}
	iClass, err := prefetch.NewClassifier(prefetch.ForICache())
	if err != nil {
		return nil, err
	}
	dClass, err := prefetch.NewClassifier(prefetch.ForDCache())
	if err != nil {
		return nil, err
	}
	iCol, err := interval.NewCollector(trace.L1I, uint32(hier.L1I().Config().NumLines()), iClass)
	if err != nil {
		return nil, err
	}
	dCol, err := interval.NewCollector(trace.L1D, uint32(hier.L1D().Config().NumLines()), dClass)
	if err != nil {
		return nil, err
	}
	l2Col, err := interval.NewCollector(trace.L2, uint32(hier.L2().Config().NumLines()), nil)
	if err != nil {
		return nil, err
	}
	iEng, err := prefetch.NewEngine(prefetch.DefaultEngineConfig(prefetch.ForICache()))
	if err != nil {
		return nil, err
	}
	dEng, err := prefetch.NewEngine(prefetch.DefaultEngineConfig(prefetch.ForDCache()))
	if err != nil {
		return nil, err
	}
	// sinkErr needs no synchronization: cpu.Run's documented contract is
	// that the sink runs synchronously on this goroutine and never after
	// Run returns (each Suite simulation owns its own collectors/engines;
	// TestSuiteAllConcurrentRace exercises this under -race).
	var sinkErr error
	res, err := cpu.Run(w, hier, cpu.DefaultConfig(), func(e trace.Event) {
		if sinkErr != nil {
			return
		}
		switch e.Cache {
		case trace.L1I:
			sinkErr = iCol.Add(e)
			iEng.Access(e)
		case trace.L1D:
			sinkErr = dCol.Add(e)
			dEng.Access(e)
		case trace.L2:
			sinkErr = l2Col.Add(e)
		}
	})
	if err != nil {
		return nil, err
	}
	if sinkErr != nil {
		return nil, fmt.Errorf("experiments: collecting %s: %w", name, sinkErr)
	}
	iDist, err := iCol.Finish(res.Cycles)
	if err != nil {
		return nil, err
	}
	dDist, err := dCol.Finish(res.Cycles)
	if err != nil {
		return nil, err
	}
	l2Dist, err := l2Col.Finish(res.Cycles)
	if err != nil {
		return nil, err
	}
	return &BenchmarkData{
		Name: name, Result: res,
		ICache: iDist, DCache: dDist, L2Cache: l2Dist,
		IEngine: iEng.Finish(), DEngine: dEng.Finish(),
	}, nil
}

// MergedDistributions returns suite-wide merged I- and D-cache
// distributions (used by Figure 9's aggregate prefetchability).
func (s *Suite) MergedDistributions() (iDist, dDist *interval.Distribution, err error) {
	all, err := s.All()
	if err != nil {
		return nil, nil, err
	}
	iDist = interval.NewDistribution(0, 0)
	dDist = interval.NewDistribution(0, 0)
	for _, d := range all {
		if err := iDist.Merge(d.ICache); err != nil {
			return nil, nil, err
		}
		if err := dDist.Merge(d.DCache); err != nil {
			return nil, nil, err
		}
	}
	return iDist, dDist, nil
}

// SortedNames returns the benchmark names the suite has simulated so far;
// primarily for diagnostics.
func (s *Suite) SortedNames() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.data))
	for n := range s.data {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// cacheAlphaLike and traceL1D re-export fixed values for tests in this
// package without extra imports in every file.
func cacheAlphaLike() cache.HierarchyConfig { return cache.AlphaLike() }
func traceL1D() trace.CacheID               { return trace.L1D }
