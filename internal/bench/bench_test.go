package bench

import (
	"errors"
	"math"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: leakbound
cpu: Intel(R) Xeon(R) CPU @ 2.10GHz
BenchmarkSuiteAll-4            	       3	1680533621 ns/op	249670440 B/op	   97577 allocs/op
BenchmarkPipelineSimulateGzip-4	      25	  48123456 ns/op	32500000 B/op	    6406 allocs/op
BenchmarkCodecRoundTrip-4      	    1000	   1200000 ns/op	 512.00 MB/s	  100000 B/op	      12 allocs/op
PASS
ok  	leakbound	12.345s
`

func TestParse(t *testing.T) {
	out, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if out.CPU != "Intel(R) Xeon(R) CPU @ 2.10GHz" {
		t.Errorf("CPU = %q", out.CPU)
	}
	if out.GOOS != "linux" || out.GOARCH != "amd64" {
		t.Errorf("GOOS/GOARCH = %q/%q", out.GOOS, out.GOARCH)
	}
	if out.GOMAXPROCS != 4 {
		t.Errorf("GOMAXPROCS = %d, want 4", out.GOMAXPROCS)
	}
	if len(out.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(out.Results))
	}
	r := out.Results[0]
	if r.Name != "BenchmarkSuiteAll" {
		t.Errorf("name = %q (suffix should be stripped)", r.Name)
	}
	if r.Iterations != 3 || r.NsPerOp != 1680533621 || r.BytesPerOp != 249670440 || r.AllocsPerOp != 97577 {
		t.Errorf("unexpected measurements: %+v", r)
	}
	codec := out.Results[2]
	if got := codec.Metrics["MB/s"]; got != 512 {
		t.Errorf("MB/s metric = %v, want 512", got)
	}
}

func TestParseFoldsRepeatsToBest(t *testing.T) {
	in := `BenchmarkX-2	10	200 ns/op	60 B/op	4 allocs/op
BenchmarkX-2	10	100 ns/op	40 B/op	2 allocs/op
BenchmarkX-2	10	150 ns/op	50 B/op	3 allocs/op
`
	out, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(out.Results) != 1 {
		t.Fatalf("got %d results, want 1 merged", len(out.Results))
	}
	r := out.Results[0]
	if r.NsPerOp != 100 || r.BytesPerOp != 40 || r.AllocsPerOp != 2 {
		t.Errorf("best-of = %+v, want 100/40/2", r)
	}
	if r.Iterations != 30 {
		t.Errorf("iterations = %d, want summed 30", r.Iterations)
	}
}

func TestParseCustomMetrics(t *testing.T) {
	in := "BenchmarkY	5	10 ns/op	1234 instr/s	0 B/op	0 allocs/op\n"
	out, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got := out.Results[0].Metrics["instr/s"]; got != 1234 {
		t.Errorf("instr/s = %v", got)
	}
	if out.GOMAXPROCS != 0 {
		t.Errorf("GOMAXPROCS = %d, want 0 for suffix-less names", out.GOMAXPROCS)
	}
}

func TestParseNoBenchmarks(t *testing.T) {
	_, err := Parse(strings.NewReader("PASS\nok  \tleakbound\t0.1s\n"))
	if !errors.Is(err, ErrNoBenchmarks) {
		t.Fatalf("err = %v, want ErrNoBenchmarks", err)
	}
}

func snap(cpu string, results ...Result) *Snapshot {
	return &Snapshot{
		SchemaVersion: SchemaVersion,
		Date:          "2026-08-07",
		Host:          Host{GoVersion: "go1.24.0", GOOS: "linux", GOARCH: "amd64", CPU: cpu, GOMAXPROCS: 1},
		Results:       results,
	}
}

func res(name string, ns, allocs float64) Result {
	return Result{Name: name, Iterations: 1, NsPerOp: ns, AllocsPerOp: allocs}
}

func TestCompareAllocRegressionFailsEvenCrossCPU(t *testing.T) {
	base := snap("cpuA", res("BenchmarkX", 100, 10))
	cur := snap("cpuB", res("BenchmarkX", 100, 20))
	deltas := Compare(base, cur, CompareOptions{})
	if len(deltas) != 1 || deltas[0].Severity != Fail {
		t.Fatalf("deltas = %+v, want single Fail", deltas)
	}
	if !strings.Contains(deltas[0].Reason, "allocs/op") {
		t.Errorf("reason = %q", deltas[0].Reason)
	}
}

func TestCompareNsRegressionSameCPUFails(t *testing.T) {
	base := snap("cpuA", res("BenchmarkX", 100, 10))
	cur := snap("cpuA", res("BenchmarkX", 130, 10))
	deltas := Compare(base, cur, CompareOptions{})
	if deltas[0].Severity != Fail {
		t.Fatalf("severity = %v, want Fail: %+v", deltas[0].Severity, deltas[0])
	}
	if math.Abs(deltas[0].NsRatio-1.3) > 1e-9 {
		t.Errorf("NsRatio = %v", deltas[0].NsRatio)
	}
}

func TestCompareNsRegressionCrossCPUWarns(t *testing.T) {
	base := snap("cpuA", res("BenchmarkX", 100, 10))
	cur := snap("cpuB", res("BenchmarkX", 500, 10))
	deltas := Compare(base, cur, CompareOptions{})
	if deltas[0].Severity != Warn {
		t.Fatalf("severity = %v, want Warn for cross-CPU timing", deltas[0].Severity)
	}
}

func TestCompareWithinThresholdOK(t *testing.T) {
	base := snap("cpuA", res("BenchmarkX", 100, 100))
	cur := snap("cpuA", res("BenchmarkX", 115, 101)) // +15% ns, +1% allocs
	deltas := Compare(base, cur, CompareOptions{})
	if deltas[0].Severity != OK {
		t.Fatalf("severity = %v, want OK: %+v", deltas[0].Severity, deltas[0])
	}
}

func TestCompareZeroAllocNoiseGuard(t *testing.T) {
	// 0 -> 0.4 allocs/op (rounding noise on an alloc-free benchmark) must
	// not trip the gate; 0 -> 1 must.
	base := snap("cpuA", res("BenchmarkX", 100, 0), res("BenchmarkY", 100, 0))
	cur := snap("cpuA", Result{Name: "BenchmarkX", NsPerOp: 100, AllocsPerOp: 0.4},
		Result{Name: "BenchmarkY", NsPerOp: 100, AllocsPerOp: 1})
	deltas := Compare(base, cur, CompareOptions{})
	byName := map[string]Delta{}
	for _, d := range deltas {
		byName[d.Name] = d
	}
	if byName["BenchmarkX"].Severity != OK {
		t.Errorf("0->0.4 should be OK, got %v", byName["BenchmarkX"].Severity)
	}
	if byName["BenchmarkY"].Severity != Fail {
		t.Errorf("0->1 should Fail, got %v", byName["BenchmarkY"].Severity)
	}
}

func TestCompareWarnOnlyDemotes(t *testing.T) {
	base := snap("cpuA", res("BenchmarkX", 100, 10))
	cur := snap("cpuA", res("BenchmarkX", 100, 50))
	deltas := Compare(base, cur, CompareOptions{WarnOnly: true})
	if deltas[0].Severity != Warn {
		t.Fatalf("severity = %v, want Warn in warn-only mode", deltas[0].Severity)
	}
	if AnyFail(deltas) {
		t.Error("AnyFail should be false in warn-only mode")
	}
}

func TestCompareMissingFailsNewWarns(t *testing.T) {
	base := snap("cpuA", res("BenchmarkGone", 100, 10))
	cur := snap("cpuA", res("BenchmarkNew", 100, 10))
	deltas := Compare(base, cur, CompareOptions{})
	if len(deltas) != 2 {
		t.Fatalf("got %d deltas, want 2", len(deltas))
	}
	for _, d := range deltas {
		switch d.Name {
		case "BenchmarkGone":
			if d.Severity != Fail {
				t.Errorf("missing benchmark severity = %v, want Fail", d.Severity)
			}
		case "BenchmarkNew":
			if d.Severity != Warn {
				t.Errorf("new benchmark severity = %v, want Warn", d.Severity)
			}
		}
	}
	if !AnyFail(deltas) {
		t.Error("a benchmark missing from the current run must fail the gate")
	}
	// Warn-only demotes the missing-benchmark failure like any other.
	for _, d := range Compare(base, cur, CompareOptions{WarnOnly: true}) {
		if d.Severity == Fail {
			t.Errorf("%s severity = Fail in warn-only mode", d.Name)
		}
	}
}

func TestCompareImprovementOK(t *testing.T) {
	base := snap("cpuA", res("BenchmarkX", 1000, 1000))
	cur := snap("cpuA", res("BenchmarkX", 100, 50))
	deltas := Compare(base, cur, CompareOptions{})
	if deltas[0].Severity != OK {
		t.Fatalf("improvement flagged: %+v", deltas[0])
	}
}

func TestMarkdownTable(t *testing.T) {
	base := snap("cpuA", res("BenchmarkX", 2e9, 100))
	cur := snap("cpuB", res("BenchmarkX", 1e6, 10))
	deltas := Compare(base, cur, CompareOptions{})
	table := MarkdownTable(base, cur, deltas)
	for _, want := range []string{
		"BENCH_2026-08-07.json",
		"| BenchmarkX |",
		"2.00s → 1.0ms",
		"100 → 10",
		"differs from this host",
	} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
}

func TestSeverityString(t *testing.T) {
	if OK.String() != "ok" || Warn.String() != "warn" || Fail.String() != "FAIL" {
		t.Errorf("Severity strings: %v %v %v", OK, Warn, Fail)
	}
}
