// Package bench implements the repo's benchmark snapshot discipline: it
// parses `go test -bench -benchmem` output into a stable JSON schema
// (BENCH_<date>[_label].json at the repo root), and compares a fresh run
// against a committed baseline so performance claims are made against
// numbers in the tree, not prose in a PR description.
//
// The schema records, per benchmark: ns/op, B/op, allocs/op, and any
// custom metrics ReportMetric emitted, plus enough host metadata (go
// version, GOMAXPROCS, CPU model) for a comparator to decide which
// dimensions are portable. Allocations per op are hardware-independent —
// a regression there is a regression on every machine — while ns/op is
// only comparable between identical hosts, so Compare demotes timing
// deltas to warnings when the CPU differs.
package bench

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's measurements.
type Result struct {
	// Name is the benchmark name with the -N GOMAXPROCS suffix stripped
	// (it is recorded once, in Snapshot.Host).
	Name string `json:"name"`
	// Iterations is the b.N the harness settled on.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the headline wall-clock cost.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp come from -benchmem.
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Metrics holds custom b.ReportMetric units (e.g. "instr/s").
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Host describes the machine a snapshot was taken on.
type Host struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	CPU        string `json:"cpu,omitempty"`
	GOMAXPROCS int    `json:"gomaxprocs,omitempty"`
}

// Snapshot is one committed BENCH_*.json: a benchmark run frozen in time.
type Snapshot struct {
	// SchemaVersion guards future format changes.
	SchemaVersion int `json:"schema_version"`
	// Date is the YYYY-MM-DD the snapshot was taken (from the filename
	// discipline, supplied by the harness — not read from a clock here).
	Date string `json:"date"`
	// Label distinguishes multiple snapshots on one day and sorts after
	// the date (e.g. "r1-materialized", "r2-streaming").
	Label string `json:"label,omitempty"`
	// Commit is the abbreviated git revision, if the harness knew it.
	Commit  string   `json:"commit,omitempty"`
	Host    Host     `json:"host"`
	Results []Result `json:"results"`
}

// SchemaVersion is the current snapshot format version.
const SchemaVersion = 1

// ErrNoBenchmarks reports parse input with no benchmark lines at all —
// almost always a harness wiring bug worth failing loudly on.
var ErrNoBenchmarks = errors.New("bench: no benchmark result lines in input")

// RunOutput is everything Parse extracts from one `go test -bench` run:
// the results plus the host hints the test binary printed in its
// preamble (cpu:, goos:, goarch:) and the GOMAXPROCS suffix of the
// benchmark names.
type RunOutput struct {
	Results    []Result
	CPU        string
	GOOS       string
	GOARCH     string
	GOMAXPROCS int
}

// benchLine matches one `go test -bench` result line, e.g.
//
//	BenchmarkSuiteAll-4   3  1680533621 ns/op  249670440 B/op  97577 allocs/op
//
// The tail pairs (value unit) are split generically so custom
// ReportMetric units survive.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(-(\d+))?\s+(\d+)\s+(.*)$`)

// Parse reads `go test -bench -benchmem` output and extracts results and
// host hints. Lines that are not benchmark results (PASS, test logs) are
// ignored. Repeated runs of one benchmark (-count>1) fold into each
// dimension's minimum — best-of-N, the standard benchmark noise filter:
// scheduler preemption, GC pauses and pool-goroutine wakeups only ever
// add time and allocations, so the minimum is the least-contaminated
// sample of what the code itself costs. Custom ReportMetric values keep
// their average, since their direction of "better" is unknown here.
func Parse(r io.Reader) (*RunOutput, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	out := &RunOutput{}
	order := []string{}
	acc := map[string]*Result{}
	counts := map[string]int64{}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "cpu: "):
			out.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		case strings.HasPrefix(line, "goos: "):
			out.GOOS = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			out.GOARCH = strings.TrimPrefix(line, "goarch: ")
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		if m[3] != "" {
			if p, err := strconv.Atoi(m[3]); err == nil {
				out.GOMAXPROCS = p
			}
		}
		iters, err := strconv.ParseInt(m[4], 10, 64)
		if err != nil {
			continue
		}
		res := Result{Name: m[1], Iterations: iters}
		if err := parseMeasurements(m[5], &res); err != nil {
			return nil, fmt.Errorf("bench: line %q: %w", sc.Text(), err)
		}
		if prev, ok := acc[res.Name]; ok {
			mergeBest(prev, &res, counts[res.Name])
			counts[res.Name]++
			continue
		}
		order = append(order, res.Name)
		r := res
		acc[res.Name] = &r
		counts[res.Name] = 1
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(order) == 0 {
		return nil, ErrNoBenchmarks
	}
	for _, name := range order {
		out.Results = append(out.Results, *acc[name])
	}
	return out, nil
}

// parseMeasurements splits the "<value> <unit> <value> <unit> ..." tail.
func parseMeasurements(tail string, res *Result) error {
	fields := strings.Fields(tail)
	if len(fields)%2 != 0 {
		return fmt.Errorf("odd measurement field count %d", len(fields))
	}
	for i := 0; i < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return fmt.Errorf("bad measurement value %q: %w", fields[i], err)
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			res.NsPerOp = v
		case "B/op":
			res.BytesPerOp = v
		case "allocs/op":
			res.AllocsPerOp = v
		case "MB/s":
			// Throughput is derivable from ns/op; keep it as a metric.
			fallthrough
		default:
			if res.Metrics == nil {
				res.Metrics = map[string]float64{}
			}
			res.Metrics[unit] = v
		}
	}
	return nil
}

// mergeBest folds sample `next` into `into`, which already aggregates n
// samples: minimum for the core dimensions, running average for custom
// metrics.
func mergeBest(into *Result, next *Result, n int64) {
	into.NsPerOp = min(into.NsPerOp, next.NsPerOp)
	into.BytesPerOp = min(into.BytesPerOp, next.BytesPerOp)
	into.AllocsPerOp = min(into.AllocsPerOp, next.AllocsPerOp)
	into.Iterations += next.Iterations
	w := float64(n)
	for k, v := range next.Metrics {
		if into.Metrics == nil {
			into.Metrics = map[string]float64{}
		}
		into.Metrics[k] = (into.Metrics[k]*w + v) / (w + 1)
	}
}

// Severity classifies one comparison row.
type Severity int

const (
	// OK: within thresholds (or an improvement).
	OK Severity = iota
	// Warn: a regression on a dimension that is not portable across the
	// baseline and current hosts (ns/op with differing CPUs), or a
	// benchmark present on only one side.
	Warn
	// Fail: a regression the gate must block on.
	Fail
)

// String implements fmt.Stringer.
func (s Severity) String() string {
	switch s {
	case OK:
		return "ok"
	case Warn:
		return "warn"
	case Fail:
		return "FAIL"
	default:
		return fmt.Sprintf("Severity(%d)", int(s))
	}
}

// Delta is one benchmark's baseline-vs-current comparison.
type Delta struct {
	Name     string
	Severity Severity
	// Reason is empty for OK rows.
	Reason string
	// NsRatio and AllocRatio are current/baseline (1.0 = unchanged;
	// 0 when the benchmark is missing on either side).
	NsRatio    float64
	AllocRatio float64
	Base, Cur  *Result
}

// CompareOptions tunes the regression gate.
type CompareOptions struct {
	// NsThreshold is the fractional ns/op regression tolerated before the
	// row fails (0.20 = +20%). Zero means the default 0.20.
	NsThreshold float64
	// AllocThreshold is the fractional allocs/op regression tolerated.
	// Allocation counts are near-deterministic, but map growth and pool
	// scheduling wiggle by a few percent; default 0.02.
	AllocThreshold float64
	// WarnOnly demotes every Fail to Warn (the gate reports but passes).
	WarnOnly bool
}

func (o CompareOptions) nsThreshold() float64 {
	if o.NsThreshold == 0 {
		return 0.20
	}
	return o.NsThreshold
}

func (o CompareOptions) allocThreshold() float64 {
	if o.AllocThreshold == 0 {
		return 0.02
	}
	return o.AllocThreshold
}

// Compare evaluates current against base benchmark-by-benchmark.
//
// Gate policy: an allocs/op regression beyond the tolerance always fails
// (allocation counts do not depend on the host), an ns/op regression
// beyond the threshold fails only when both snapshots come from the same
// CPU model — otherwise the timing row is a warning, because comparing
// wall-clock across different machines (a laptop baseline vs a CI
// runner) would gate PRs on hardware, not code. A new benchmark with no
// baseline warns; a baseline benchmark missing from the current run
// fails (WarnOnly demotes it like any other failure) — a dropped bench
// must update the baseline, not silently leave the gate.
func Compare(base, current *Snapshot, opts CompareOptions) []Delta {
	sameCPU := base.Host.CPU != "" && base.Host.CPU == current.Host.CPU
	baseBy := map[string]*Result{}
	for i := range base.Results {
		baseBy[base.Results[i].Name] = &base.Results[i]
	}
	curSeen := map[string]bool{}
	var deltas []Delta
	for i := range current.Results {
		cur := &current.Results[i]
		curSeen[cur.Name] = true
		b, ok := baseBy[cur.Name]
		if !ok {
			deltas = append(deltas, Delta{
				Name: cur.Name, Severity: Warn, Cur: cur,
				Reason: "new benchmark (no baseline)",
			})
			continue
		}
		d := Delta{Name: cur.Name, Base: b, Cur: cur}
		if b.NsPerOp > 0 {
			d.NsRatio = cur.NsPerOp / b.NsPerOp
		}
		if b.AllocsPerOp > 0 {
			d.AllocRatio = cur.AllocsPerOp / b.AllocsPerOp
		} else if cur.AllocsPerOp == 0 {
			d.AllocRatio = 1
		}
		switch {
		case b.AllocsPerOp >= 0 && cur.AllocsPerOp > b.AllocsPerOp*(1+opts.allocThreshold())+0.5:
			// +0.5 keeps 0→0.4 rounding noise from tripping the gate on
			// allocation-free benchmarks.
			d.Severity = Fail
			d.Reason = fmt.Sprintf("allocs/op %.1f -> %.1f (+%.1f%%)",
				b.AllocsPerOp, cur.AllocsPerOp, pct(d.AllocRatio))
		case d.NsRatio > 1+opts.nsThreshold():
			d.Reason = fmt.Sprintf("ns/op %.0f -> %.0f (+%.1f%%)",
				b.NsPerOp, cur.NsPerOp, pct(d.NsRatio))
			if sameCPU {
				d.Severity = Fail
			} else {
				d.Severity = Warn
				d.Reason += " [different CPU than baseline: advisory]"
			}
		default:
			d.Severity = OK
		}
		if d.Severity == Fail && opts.WarnOnly {
			d.Severity = Warn
			d.Reason += " [warn-only mode]"
		}
		deltas = append(deltas, d)
	}
	for name, b := range baseBy {
		if !curSeen[name] {
			// A benchmark that vanished from the run is a gate failure, not
			// a warning: a silently-dropped bench would otherwise let its
			// regressions ride for free. Renames must update the baseline.
			d := Delta{
				Name: name, Severity: Fail, Base: b,
				Reason: "benchmark missing from current run",
			}
			if opts.WarnOnly {
				d.Severity = Warn
				d.Reason += " [warn-only mode]"
			}
			deltas = append(deltas, d)
		}
	}
	sort.Slice(deltas, func(i, j int) bool { return deltas[i].Name < deltas[j].Name })
	return deltas
}

func pct(ratio float64) float64 { return (ratio - 1) * 100 }

// AnyFail reports whether any delta carries gate-blocking severity.
func AnyFail(deltas []Delta) bool {
	for _, d := range deltas {
		if d.Severity == Fail {
			return true
		}
	}
	return false
}

// MarkdownTable renders the comparison as a GitHub-flavored markdown
// table for the Actions job summary.
func MarkdownTable(base, current *Snapshot, deltas []Delta) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "### Benchmark comparison vs `%s`\n\n", baselineName(base))
	if base.Host.CPU != current.Host.CPU {
		fmt.Fprintf(&sb, "> baseline CPU (`%s`) differs from this host (`%s`): ns/op deltas are advisory, allocs/op deltas gate.\n\n",
			orUnknown(base.Host.CPU), orUnknown(current.Host.CPU))
	}
	sb.WriteString("| benchmark | ns/op (base → cur) | Δns | allocs/op (base → cur) | Δallocs | status |\n")
	sb.WriteString("|---|---:|---:|---:|---:|---|\n")
	for _, d := range deltas {
		ns, dns := "–", "–"
		al, dal := "–", "–"
		if d.Base != nil && d.Cur != nil {
			ns = fmt.Sprintf("%s → %s", humanNs(d.Base.NsPerOp), humanNs(d.Cur.NsPerOp))
			al = fmt.Sprintf("%.0f → %.0f", d.Base.AllocsPerOp, d.Cur.AllocsPerOp)
			if d.NsRatio > 0 {
				dns = fmt.Sprintf("%+.1f%%", pct(d.NsRatio))
			}
			if d.AllocRatio > 0 {
				dal = fmt.Sprintf("%+.1f%%", pct(d.AllocRatio))
			}
		}
		status := d.Severity.String()
		if d.Reason != "" {
			status += ": " + d.Reason
		}
		fmt.Fprintf(&sb, "| %s | %s | %s | %s | %s | %s |\n", d.Name, ns, dns, al, dal, status)
	}
	return sb.String()
}

func baselineName(s *Snapshot) string {
	n := "BENCH_" + s.Date
	if s.Label != "" {
		n += "_" + s.Label
	}
	return n + ".json"
}

func orUnknown(s string) string {
	if s == "" {
		return "unknown"
	}
	return s
}

func humanNs(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.1fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}
