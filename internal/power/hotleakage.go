package power

// This file is the HotLeakage-like analytical substrate: a simplified
// BSIM3-style subthreshold + gate leakage model that derives per-line
// leakage power from first principles (Vdd, Vth, temperature, geometry)
// instead of taking it from a table.
//
// The paper obtains its leakage numbers from HotLeakage (Zhang et al.,
// UVa TR CS-2003-05). We cannot run that tool here, so the built-in
// technology table in power.go is calibrated against the paper's own
// results — but this model exists to validate the table's *trends*:
// tests assert that the analytical model reproduces the ordering and the
// rough ratios the calibrated table uses (leakage grows steeply as Vth
// falls with scaling; drowsy mode at reduced Vdd cuts leakage roughly
// threefold via the DIBL effect).

import (
	"errors"
	"fmt"
	"math"
)

// Physical constants.
const (
	boltzmann      = 1.380649e-23 // J/K
	electronCharge = 1.602177e-19 // C
)

// LeakageParams describes one process corner for the analytical model.
type LeakageParams struct {
	// Vdd is the supply voltage (V); Vth the threshold voltage (V).
	Vdd, Vth float64
	// TempK is the junction temperature in Kelvin (HotLeakage's default
	// operating point is 353K / 80C).
	TempK float64
	// N is the subthreshold swing coefficient (typically 1.3–1.7).
	N float64
	// I0 is the per-transistor reference current at Vgs=Vth (A),
	// technology dependent; it absorbs W/L and mobility.
	I0 float64
	// DIBL is the drain-induced barrier lowering coefficient (V/V): how
	// much the effective threshold drops per volt of Vds. This is the
	// term that makes drowsy (low-Vdd) mode effective.
	DIBL float64
	// TransistorsPerLine is the number of leaking transistors in one
	// cache line's SRAM cells and peripherals (a 64B line with 6T cells
	// plus tag/periphery is on the order of 4000).
	TransistorsPerLine float64
	// PeripheryFraction is the share of a line's leakage that comes from
	// peripheral circuits (wordline drivers, precharge, local decode)
	// which stay at full Vdd even when the cell array is drowsed. This is
	// why practical drowsy caches save ~3x rather than the 10-25x the
	// cell array alone would suggest. Zero means "cells only".
	PeripheryFraction float64
}

// Validate checks physical plausibility.
func (p LeakageParams) Validate() error {
	if p.Vdd <= 0 || p.Vth <= 0 {
		return fmt.Errorf("power: non-positive voltages Vdd=%g Vth=%g", p.Vdd, p.Vth)
	}
	if p.Vth >= p.Vdd {
		return fmt.Errorf("power: Vth %g not below Vdd %g", p.Vth, p.Vdd)
	}
	if p.TempK < 200 || p.TempK > 500 {
		return fmt.Errorf("power: implausible temperature %gK", p.TempK)
	}
	if p.N < 1 || p.N > 3 {
		return fmt.Errorf("power: implausible swing coefficient %g", p.N)
	}
	if p.I0 <= 0 || p.DIBL < 0 || p.DIBL > 0.5 {
		return fmt.Errorf("power: implausible I0=%g or DIBL=%g", p.I0, p.DIBL)
	}
	if p.TransistorsPerLine <= 0 {
		return errors.New("power: non-positive transistors per line")
	}
	if p.PeripheryFraction < 0 || p.PeripheryFraction >= 1 {
		return fmt.Errorf("power: periphery fraction %g outside [0,1)", p.PeripheryFraction)
	}
	return nil
}

// thermalVoltage returns kT/q in volts.
func (p LeakageParams) thermalVoltage() float64 {
	return boltzmann * p.TempK / electronCharge
}

// SubthresholdCurrent returns the per-transistor subthreshold leakage
// current (A) at the given supply voltage, using the standard BSIM-style
// expression
//
//	I_sub = I0 * exp((-Vth + DIBL*Vds) / (n*vT)) * (1 - exp(-Vds/vT))
//
// with the gate off (Vgs = 0) and Vds = vdd.
func (p LeakageParams) SubthresholdCurrent(vdd float64) float64 {
	vt := p.thermalVoltage()
	exponent := (-p.Vth + p.DIBL*vdd) / (p.N * vt)
	return p.I0 * math.Exp(exponent) * (1 - math.Exp(-vdd/vt))
}

// LinePower returns the leakage power (W) of one cache line at the given
// supply voltage: P = V * I_sub * transistors. Roughly half the
// transistors in a 6T cell leak at any state; that factor is absorbed
// into TransistorsPerLine.
func (p LeakageParams) LinePower(vdd float64) float64 {
	return vdd * p.SubthresholdCurrent(vdd) * p.TransistorsPerLine
}

// DrowsyRatio returns P(drowsy)/P(active) when drowsy mode holds the cell
// array at vddLow instead of Vdd while the peripheral circuits stay at
// full supply. Data retention needs vddLow comfortably above Vth; 1.5*Vth
// is the customary choice (Flautner et al.).
func (p LeakageParams) DrowsyRatio(vddLow float64) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if vddLow <= p.Vth {
		return 0, fmt.Errorf("power: drowsy voltage %g below retention limit Vth=%g", vddLow, p.Vth)
	}
	if vddLow >= p.Vdd {
		return 0, fmt.Errorf("power: drowsy voltage %g not below Vdd %g", vddLow, p.Vdd)
	}
	cellRatio := p.LinePower(vddLow) / p.LinePower(p.Vdd)
	return p.PeripheryFraction + (1-p.PeripheryFraction)*cellRatio, nil
}

// DefaultDrowsyVoltage returns the conventional retention voltage,
// 1.5 * Vth.
func (p LeakageParams) DefaultDrowsyVoltage() float64 { return 1.5 * p.Vth }

// AnalyticalNode bundles the model inputs for one of the paper's
// technology nodes. I0 scales up as feature size shrinks (thinner oxide,
// shorter channels); DIBL worsens similarly.
type AnalyticalNode struct {
	FeatureNm int
	Params    LeakageParams
}

// AnalyticalNodes returns model parameters for the paper's four nodes at
// HotLeakage's 353K operating point. The I0/DIBL values follow the ITRS
// scaling trend; they are representative, not vendor data.
func AnalyticalNodes() []AnalyticalNode {
	return []AnalyticalNode{
		{70, LeakageParams{Vdd: 0.9, Vth: 0.1902, TempK: 353, N: 1.5, I0: 9.0e-8, DIBL: 0.15, TransistorsPerLine: 4000, PeripheryFraction: 0.28}},
		{100, LeakageParams{Vdd: 1.0, Vth: 0.2607, TempK: 353, N: 1.5, I0: 6.0e-8, DIBL: 0.12, TransistorsPerLine: 4000, PeripheryFraction: 0.28}},
		{130, LeakageParams{Vdd: 1.5, Vth: 0.3353, TempK: 353, N: 1.5, I0: 4.0e-8, DIBL: 0.10, TransistorsPerLine: 4000, PeripheryFraction: 0.28}},
		{180, LeakageParams{Vdd: 2.0, Vth: 0.3979, TempK: 353, N: 1.5, I0: 2.5e-8, DIBL: 0.08, TransistorsPerLine: 4000, PeripheryFraction: 0.28}},
	}
}

// TemperatureScaledTechnology returns a copy of tech with its leakage
// powers scaled from the reference temperature (353K) to tempK using the
// analytical model's exponential temperature dependence; the dynamic
// induced-miss energy CD is temperature-independent, so the drowsy-sleep
// inflection point shifts with temperature — hotter silicon leaks more,
// making sleep attractive for shorter intervals.
func TemperatureScaledTechnology(tech Technology, tempK float64) (Technology, error) {
	if tempK < 233 || tempK > 425 {
		return Technology{}, fmt.Errorf("power: temperature %gK outside model range", tempK)
	}
	var node *AnalyticalNode
	for _, n := range AnalyticalNodes() {
		if n.FeatureNm == tech.FeatureNm {
			nn := n
			node = &nn
			break
		}
	}
	if node == nil {
		return Technology{}, fmt.Errorf("power: no analytical node for %s", tech.Name)
	}
	ref := node.Params
	hot := ref
	hot.TempK = tempK
	scale := hot.LinePower(hot.Vdd) / ref.LinePower(ref.Vdd)
	out := tech
	out.Name = fmt.Sprintf("%s@%.0fK", tech.Name, tempK)
	out.PActive *= scale
	out.PDrowsy *= scale
	out.PSleep *= scale
	out.CounterLeak *= scale
	// CD unchanged: dynamic energy does not scale with temperature.
	return out, nil
}
