package power_test

import (
	"fmt"

	"leakbound/internal/power"
)

// The paper's central calculation: the two inflection points that divide
// interval lengths into active-, drowsy- and sleep-optimal regimes.
func ExampleTechnology_InflectionPoints() {
	tech := power.Default() // the 70nm node
	a, b, err := tech.InflectionPoints()
	if err != nil {
		panic(err)
	}
	fmt.Printf("active-drowsy: %.0f cycles\n", a)
	fmt.Printf("drowsy-sleep:  %.0f cycles\n", b)
	// Output:
	// active-drowsy: 6 cycles
	// drowsy-sleep:  1057 cycles
}

// Calibrating the induced-miss energy from a target inflection point —
// how the built-in technology table reproduces the paper's Table 1.
func ExampleCalibrateCD() {
	dur := power.PaperDurations()
	pa := 0.8
	cd, err := power.CalibrateCD(pa, pa/3, pa/100, dur, 1057)
	if err != nil {
		panic(err)
	}
	fmt.Printf("CD = %.1f model units\n", cd)
	// Output:
	// CD = 247.3 model units
}

// Equations 1 and 2: the energy a line spends covering an interval with
// each mode, at the crossing point both are equal by construction.
func ExampleTechnology_SleepEnergy() {
	tech := power.Default()
	_, b, _ := tech.InflectionPoints()
	fmt.Printf("at b: sleep %.1f vs drowsy %.1f\n", tech.SleepEnergy(b), tech.DrowsyEnergy(b))
	// Output:
	// at b: sleep 285.1 vs drowsy 285.1
}
