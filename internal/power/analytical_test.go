package power

import (
	"testing"
	"testing/quick"
)

// HotLeakage-like model tests

func TestLeakageParamsValidate(t *testing.T) {
	good := AnalyticalNodes()[0].Params
	if err := good.Validate(); err != nil {
		t.Fatalf("reference params rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*LeakageParams)
	}{
		{"zero vdd", func(p *LeakageParams) { p.Vdd = 0 }},
		{"vth above vdd", func(p *LeakageParams) { p.Vth = p.Vdd + 0.1 }},
		{"frozen", func(p *LeakageParams) { p.TempK = 100 }},
		{"molten", func(p *LeakageParams) { p.TempK = 600 }},
		{"bad swing", func(p *LeakageParams) { p.N = 0.5 }},
		{"zero i0", func(p *LeakageParams) { p.I0 = 0 }},
		{"absurd dibl", func(p *LeakageParams) { p.DIBL = 0.9 }},
		{"no transistors", func(p *LeakageParams) { p.TransistorsPerLine = 0 }},
	}
	for _, c := range cases {
		p := good
		c.mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestLeakageGrowsAsVthFalls(t *testing.T) {
	// The core HotLeakage trend the calibrated table encodes: smaller
	// feature size (lower Vth) leaks more per line, despite lower Vdd.
	nodes := AnalyticalNodes()
	for i := 1; i < len(nodes); i++ {
		smaller, larger := nodes[i-1], nodes[i]
		ps := smaller.Params.LinePower(smaller.Params.Vdd)
		pl := larger.Params.LinePower(larger.Params.Vdd)
		if ps <= pl {
			t.Errorf("%dnm leakage (%g W) not above %dnm (%g W)",
				smaller.FeatureNm, ps, larger.FeatureNm, pl)
		}
	}
}

func TestLeakageGrowsWithTemperature(t *testing.T) {
	p := AnalyticalNodes()[0].Params
	cold, hot := p, p
	cold.TempK = 300
	hot.TempK = 380
	if hot.LinePower(hot.Vdd) <= cold.LinePower(cold.Vdd) {
		t.Error("leakage did not grow with temperature")
	}
}

func TestDrowsyRatioNearTable(t *testing.T) {
	// The calibrated table uses PDrowsy/PActive = 1/3 (forced by the
	// paper's Table 2). The analytical model at the conventional 1.5*Vth
	// retention voltage must land in the same regime — within a factor of
	// ~2 of one third — at every node.
	for _, n := range AnalyticalNodes() {
		r, err := n.Params.DrowsyRatio(n.Params.DefaultDrowsyVoltage())
		if err != nil {
			t.Fatalf("%dnm: %v", n.FeatureNm, err)
		}
		if r <= 0 || r >= 1 {
			t.Fatalf("%dnm: ratio %g outside (0,1)", n.FeatureNm, r)
		}
		if r < 1.0/6 || r > 2.0/3 {
			t.Errorf("%dnm: drowsy ratio %g far from the table's 1/3", n.FeatureNm, r)
		}
	}
}

func TestDrowsyRatioErrors(t *testing.T) {
	p := AnalyticalNodes()[0].Params
	if _, err := p.DrowsyRatio(p.Vth); err == nil {
		t.Error("retention below Vth accepted")
	}
	if _, err := p.DrowsyRatio(p.Vdd); err == nil {
		t.Error("drowsy voltage at Vdd accepted")
	}
	bad := p
	bad.I0 = 0
	if _, err := bad.DrowsyRatio(0.3); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestDrowsyRatioMonotoneInVoltage(t *testing.T) {
	// Lower retention voltage, lower leakage — monotone in (Vth, Vdd).
	p := AnalyticalNodes()[0].Params
	f := func(raw uint8) bool {
		lo := p.Vth + 0.01 + float64(raw)/255*(p.Vdd-p.Vth-0.03)
		hi := lo + 0.01
		if hi >= p.Vdd {
			return true
		}
		rLo, err1 := p.DrowsyRatio(lo)
		rHi, err2 := p.DrowsyRatio(hi)
		return err1 == nil && err2 == nil && rLo < rHi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTemperatureScaledTechnology(t *testing.T) {
	base := Default()
	hot, err := TemperatureScaledTechnology(base, 400)
	if err != nil {
		t.Fatal(err)
	}
	if hot.PActive <= base.PActive {
		t.Error("hotter node does not leak more")
	}
	if hot.CD != base.CD {
		t.Error("dynamic energy changed with temperature")
	}
	if err := hot.Validate(); err != nil {
		t.Errorf("scaled technology invalid: %v", err)
	}
	// The inflection point must shrink when leakage rises but CD stays:
	// sleep becomes worthwhile for shorter intervals on hot silicon.
	_, bBase, err := base.InflectionPoints()
	if err != nil {
		t.Fatal(err)
	}
	_, bHot, err := hot.InflectionPoints()
	if err != nil {
		t.Fatal(err)
	}
	if bHot >= bBase {
		t.Errorf("inflection did not shrink with temperature: %g -> %g", bBase, bHot)
	}
	cold, err := TemperatureScaledTechnology(base, 300)
	if err != nil {
		t.Fatal(err)
	}
	_, bCold, err := cold.InflectionPoints()
	if err != nil {
		t.Fatal(err)
	}
	if bCold <= bBase {
		t.Errorf("inflection did not grow when cooled: %g -> %g", bBase, bCold)
	}
}

func TestTemperatureScaledErrors(t *testing.T) {
	if _, err := TemperatureScaledTechnology(Default(), 100); err == nil {
		t.Error("absurd temperature accepted")
	}
	odd := Default()
	odd.FeatureNm = 45
	if _, err := TemperatureScaledTechnology(odd, 360); err == nil {
		t.Error("unknown node accepted")
	}
}

// CACTI-like model tests

func TestCacheGeometryValidate(t *testing.T) {
	if err := L2Geometry().Validate(); err != nil {
		t.Fatalf("L2 geometry rejected: %v", err)
	}
	if err := (CacheGeometry{}).Validate(); err == nil {
		t.Error("zero geometry accepted")
	}
	if err := (CacheGeometry{SizeBytes: 1000, BlockBytes: 64, Assoc: 3}).Validate(); err == nil {
		t.Error("non-dividing geometry accepted")
	}
}

func TestAccessEnergyParamsValidate(t *testing.T) {
	good := AnalyticalAccessNodes()[70]
	if err := good.Validate(); err != nil {
		t.Fatalf("reference params rejected: %v", err)
	}
	bad := good
	bad.Vdd = 0
	if bad.Validate() == nil {
		t.Error("zero vdd accepted")
	}
	bad = good
	bad.BitlineSwing = 0
	if bad.Validate() == nil {
		t.Error("zero swing accepted")
	}
	bad = good
	bad.BitlineCapPerCell = -1
	if bad.Validate() == nil {
		t.Error("negative capacitance accepted")
	}
}

func TestReadEnergyPositiveAndGeometryMonotone(t *testing.T) {
	p := AnalyticalAccessNodes()[70]
	small := CacheGeometry{SizeBytes: 64 << 10, BlockBytes: 64, Assoc: 2}
	eSmall, err := p.ReadEnergy(small)
	if err != nil {
		t.Fatal(err)
	}
	eLarge, err := p.ReadEnergy(L2Geometry())
	if err != nil {
		t.Fatal(err)
	}
	if eSmall <= 0 || eLarge <= 0 {
		t.Fatalf("non-positive energies: %g, %g", eSmall, eLarge)
	}
	if eLarge <= eSmall {
		t.Errorf("2MB read (%g J) not above 64KB read (%g J)", eLarge, eSmall)
	}
	if _, err := p.ReadEnergy(CacheGeometry{}); err == nil {
		t.Error("bad geometry accepted")
	}
	bad := p
	bad.Vdd = -1
	if _, err := bad.ReadEnergy(small); err == nil {
		t.Error("bad params accepted")
	}
}

func TestInducedMissEnergyTrend(t *testing.T) {
	// The paper's stated mechanism for the shrinking inflection point:
	// "the dynamic energy consumption caused by an induced miss decreases
	// with technology scaling down". The analytical model must reproduce
	// the same ordering the calibrated CD table uses.
	var prev float64
	for i, nm := range []int{70, 100, 130, 180} {
		e, err := InducedMissEnergy(nm)
		if err != nil {
			t.Fatal(err)
		}
		if e <= 0 {
			t.Fatalf("%dnm: non-positive energy %g", nm, e)
		}
		if i > 0 && e <= prev {
			t.Errorf("induced-miss energy not increasing with feature size: %dnm %g <= previous %g", nm, e, prev)
		}
		prev = e
	}
	if _, err := InducedMissEnergy(45); err == nil {
		t.Error("unknown node accepted")
	}
}

func TestAnalyticalAndCalibratedCDAgreeOnTrend(t *testing.T) {
	// Both the analytical CACTI-like model and the calibrated table must
	// rank CD identically across nodes (monotone in feature size).
	techs := Technologies()
	for i := 1; i < len(techs); i++ {
		eA, err := InducedMissEnergy(techs[i-1].FeatureNm)
		if err != nil {
			t.Fatal(err)
		}
		eB, err := InducedMissEnergy(techs[i].FeatureNm)
		if err != nil {
			t.Fatal(err)
		}
		analyticalOrder := eA < eB
		calibratedOrder := techs[i-1].CD < techs[i].CD
		if analyticalOrder != calibratedOrder {
			t.Errorf("CD ordering disagrees between analytical and calibrated models at %s vs %s",
				techs[i-1].Name, techs[i].Name)
		}
	}
}

func TestSubthresholdCurrentShape(t *testing.T) {
	p := AnalyticalNodes()[0].Params
	// Current must be positive and increase with Vds (DIBL term).
	i1 := p.SubthresholdCurrent(0.3)
	i2 := p.SubthresholdCurrent(0.9)
	if i1 <= 0 || i2 <= i1 {
		t.Errorf("subthreshold current shape wrong: I(0.3)=%g I(0.9)=%g", i1, i2)
	}
}

func BenchmarkReadEnergy(b *testing.B) {
	p := AnalyticalAccessNodes()[70]
	g := L2Geometry()
	for i := 0; i < b.N; i++ {
		if _, err := p.ReadEnergy(g); err != nil {
			b.Fatal(err)
		}
	}
}
