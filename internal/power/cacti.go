package power

// This file is the CACTI-like analytical substrate: a simplified cache
// access-energy model (decoder, wordline, bitline, sense amplifier, output
// drive) that derives the dynamic energy of a cache read from geometry and
// supply voltage.
//
// The paper obtains the induced-miss re-fetch energy C_D from CACTI 3.0
// (Shivakumar & Jouppi, WRL-2001-2). We cannot run CACTI here, so the
// technology table calibrates C_D against the paper's published inflection
// points — and this model validates the calibration's *trend*: an induced
// miss reads a 64-byte block out of the 2MB L2, and its energy must fall
// as Vdd scales down (E ~ C*Vdd^2) while per-line leakage rises, which is
// exactly the mechanism the paper cites for the shrinking drowsy-sleep
// inflection point.

import (
	"fmt"
	"math"
)

// CacheGeometry describes the array being read.
type CacheGeometry struct {
	SizeBytes  int
	BlockBytes int
	Assoc      int
}

// Validate checks the geometry.
func (g CacheGeometry) Validate() error {
	if g.SizeBytes <= 0 || g.BlockBytes <= 0 || g.Assoc <= 0 {
		return fmt.Errorf("power: bad cache geometry %+v", g)
	}
	if g.SizeBytes%(g.BlockBytes*g.Assoc) != 0 {
		return fmt.Errorf("power: geometry %+v does not divide into sets", g)
	}
	return nil
}

// L2Geometry returns the paper's 2MB direct-mapped L2 with 64B blocks —
// the array an induced miss reads.
func L2Geometry() CacheGeometry {
	return CacheGeometry{SizeBytes: 2 << 20, BlockBytes: 64, Assoc: 1}
}

// AccessEnergyParams holds the per-node electrical constants of the
// analytical model.
type AccessEnergyParams struct {
	// Vdd is the supply voltage (V).
	Vdd float64
	// BitlineCapPerCell is the capacitance one cell adds to its bitline
	// (F); scales down with feature size.
	BitlineCapPerCell float64
	// WordlineCapPerCell is the capacitance one cell adds to its wordline
	// (F).
	WordlineCapPerCell float64
	// SenseampEnergy is the per-column sense energy (J).
	SenseampEnergy float64
	// DecodeEnergyPerBit is the energy per decoded address bit (J).
	DecodeEnergyPerBit float64
	// BitlineSwing is the fraction of Vdd the bitlines swing during a
	// read (low-swing sensing; typically 0.1–0.2).
	BitlineSwing float64
}

// Validate checks plausibility.
func (p AccessEnergyParams) Validate() error {
	if p.Vdd <= 0 {
		return fmt.Errorf("power: non-positive Vdd %g", p.Vdd)
	}
	if p.BitlineCapPerCell <= 0 || p.WordlineCapPerCell <= 0 {
		return fmt.Errorf("power: non-positive capacitances")
	}
	if p.SenseampEnergy < 0 || p.DecodeEnergyPerBit < 0 {
		return fmt.Errorf("power: negative component energies")
	}
	if p.BitlineSwing <= 0 || p.BitlineSwing > 1 {
		return fmt.Errorf("power: bitline swing %g outside (0,1]", p.BitlineSwing)
	}
	return nil
}

// ReadEnergy returns the energy (J) of reading one block from the array:
//
//	E = E_decode + E_wordline + E_bitline + E_sense + E_output
//
// using the standard CV^2 terms over the geometry's row/column structure.
func (p AccessEnergyParams) ReadEnergy(g CacheGeometry) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if err := g.Validate(); err != nil {
		return 0, err
	}
	sets := g.SizeBytes / (g.BlockBytes * g.Assoc)
	rowBits := float64(g.BlockBytes*g.Assoc) * 8 // cells on one wordline
	colCells := float64(sets)                    // cells on one bitline

	addressBits := math.Log2(float64(sets))
	eDecode := addressBits * p.DecodeEnergyPerBit

	// Wordline: drive the full row's gate capacitance rail to rail.
	cWordline := rowBits * p.WordlineCapPerCell
	eWordline := cWordline * p.Vdd * p.Vdd

	// Bitlines: each of the row's columns discharges a bitline loaded by
	// every cell in the column, but only through a partial swing.
	cBitline := colCells * p.BitlineCapPerCell
	vSwing := p.Vdd * p.BitlineSwing
	eBitline := rowBits * cBitline * p.Vdd * vSwing

	eSense := rowBits * p.SenseampEnergy

	// Output drive: move the selected block (not the whole row) off-array
	// at full swing over a bus capacitance comparable to one bitline.
	eOutput := float64(g.BlockBytes*8) * cBitline * 0.1 * p.Vdd * p.Vdd

	return eDecode + eWordline + eBitline + eSense + eOutput, nil
}

// AnalyticalAccessNodes returns representative electrical constants per
// technology node; capacitances shrink with feature size, which together
// with the falling Vdd drives read energy down as technology scales.
func AnalyticalAccessNodes() map[int]AccessEnergyParams {
	return map[int]AccessEnergyParams{
		70:  {Vdd: 0.9, BitlineCapPerCell: 0.8e-15, WordlineCapPerCell: 0.10e-15, SenseampEnergy: 1.2e-14, DecodeEnergyPerBit: 3.0e-13, BitlineSwing: 0.12},
		100: {Vdd: 1.0, BitlineCapPerCell: 1.1e-15, WordlineCapPerCell: 0.14e-15, SenseampEnergy: 1.8e-14, DecodeEnergyPerBit: 4.5e-13, BitlineSwing: 0.12},
		130: {Vdd: 1.5, BitlineCapPerCell: 1.5e-15, WordlineCapPerCell: 0.19e-15, SenseampEnergy: 2.6e-14, DecodeEnergyPerBit: 6.5e-13, BitlineSwing: 0.12},
		180: {Vdd: 2.0, BitlineCapPerCell: 2.0e-15, WordlineCapPerCell: 0.26e-15, SenseampEnergy: 3.8e-14, DecodeEnergyPerBit: 9.0e-13, BitlineSwing: 0.12},
	}
}

// InducedMissEnergy returns the analytical model's estimate of the dynamic
// energy of one induced miss at the given node: an L2 read plus the L1
// fill (modelled as an L1-geometry write at comparable cost to a read).
func InducedMissEnergy(featureNm int) (float64, error) {
	params, ok := AnalyticalAccessNodes()[featureNm]
	if !ok {
		return 0, fmt.Errorf("power: no access-energy node for %dnm", featureNm)
	}
	l2, err := params.ReadEnergy(L2Geometry())
	if err != nil {
		return 0, err
	}
	l1, err := params.ReadEnergy(CacheGeometry{SizeBytes: 64 << 10, BlockBytes: 64, Assoc: 2})
	if err != nil {
		return 0, err
	}
	return l2 + l1, nil
}
