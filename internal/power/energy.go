package power

import (
	"fmt"
	"math"
)

// This file implements Equations 1–3 of the paper: the energy a cache line
// consumes over one access interval under each operating mode, and the two
// inflection points that divide interval lengths into active-, drowsy- and
// sleep-optimal regimes.

// ActiveEnergy returns the leakage energy of a line left fully on for an
// interval of length cycles.
func (t Technology) ActiveEnergy(cycles float64) float64 {
	return t.PActive * cycles
}

// DrowsyEnergy returns Equation 2: the energy of covering an interval of
// the given length with drowsy mode (transition down, low-voltage rest,
// transition up). Transition segments are charged at full active power —
// this is what makes the Figure 10 lower envelope continuous at the
// active–drowsy point: E_drowsy(a) = a * PActive exactly. Valid for
// cycles >= DrowsyOverhead; below that the caller must keep the line
// active.
func (t Technology) DrowsyEnergy(cycles float64) float64 {
	d := t.Durations
	rest := cycles - float64(d.DrowsyOverhead())
	return float64(d.DrowsyOverhead())*t.PActive + rest*t.PDrowsy
}

// SleepEnergy returns Equation 1: the energy of covering an interval with
// sleep (gated-Vdd) mode, including the induced-miss re-fetch energy CD.
// As with DrowsyEnergy, transition segments (s1, s3) and the post-wake wait
// (s4) are charged at active power. Valid for cycles >= SleepOverhead.
func (t Technology) SleepEnergy(cycles float64) float64 {
	d := t.Durations
	rest := cycles - float64(d.SleepOverhead())
	return float64(d.SleepOverhead())*t.PActive + rest*t.PSleep + t.CD
}

// SleepEnergyNoRefetch returns the sleep-mode energy without the
// induced-miss cost; used for a frame's trailing gap (nothing re-fetches
// after the program ends) and for compulsory fills (the first access to a
// block pays its miss in the baseline too).
func (t Technology) SleepEnergyNoRefetch(cycles float64) float64 {
	return t.SleepEnergy(cycles) - t.CD
}

// InflectionPoints returns the pair (a, b) of Definition 3:
//
//   - a, the active–drowsy point, is the total drowsy transition time
//     d1+d3 — any shorter interval cannot complete the voltage swing.
//   - b, the drowsy–sleep point, solves E_sleep(b) = E_drowsy(b)
//     (Equation 3). Both energies are affine in the interval length, so
//     the solution is exact: b = (alphaS - alphaD) / (PDrowsy - PSleep),
//     where alphaS and alphaD collect the length-independent terms.
//
// An error is returned if the parameters admit no crossover at or above the
// sleep overhead (sleep would then never win, e.g. CD too large).
func (t Technology) InflectionPoints() (a, b float64, err error) {
	if err := t.Validate(); err != nil {
		return 0, 0, err
	}
	d := t.Durations
	a = float64(d.DrowsyOverhead())
	// E_sleep(L) = alphaS + PSleep*L ; E_drowsy(L) = alphaD + PDrowsy*L.
	alphaS := t.SleepEnergy(float64(d.SleepOverhead())) - t.PSleep*float64(d.SleepOverhead())
	alphaD := t.DrowsyEnergy(float64(d.DrowsyOverhead())) - t.PDrowsy*float64(d.DrowsyOverhead())
	b = (alphaS - alphaD) / (t.PDrowsy - t.PSleep)
	if math.IsNaN(b) || math.IsInf(b, 0) {
		return 0, 0, fmt.Errorf("power: %s: degenerate inflection (PDrowsy=%g PSleep=%g)",
			t.Name, t.PDrowsy, t.PSleep)
	}
	if b < float64(d.SleepOverhead()) {
		return 0, 0, fmt.Errorf("power: %s: inflection %g below sleep overhead %d; sleep never wins",
			t.Name, b, d.SleepOverhead())
	}
	if b <= a {
		return 0, 0, fmt.Errorf("power: %s: inflection b=%g not above a=%g (Lemma 1 violated)",
			t.Name, b, a)
	}
	return a, b, nil
}

// TransitionEnergies returns the edge weights of the generalized model
// (Figure 6): the energy of each mode transition, with transition segments
// charged at active power (the line is driving a voltage swing).
type TransitionEnergies struct {
	EAD float64 // Active -> Drowsy
	EDA float64 // Drowsy -> Active
	EAS float64 // Active -> Sleep
	ESA float64 // Sleep -> Active (includes the post-wake wait s4, excludes CD)
}

// Transitions computes the generalized model's edge weights for t.
func (t Technology) Transitions() TransitionEnergies {
	d := t.Durations
	return TransitionEnergies{
		EAD: float64(d.D1) * t.PActive,
		EDA: float64(d.D3) * t.PActive,
		EAS: float64(d.S1) * t.PActive,
		ESA: float64(d.S3+d.S4) * t.PActive,
	}
}
