package power

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPaperDurations(t *testing.T) {
	d := PaperDurations()
	if d.S1 != 30 || d.S3 != 3 || d.S4 != 4 || d.D1 != 3 || d.D3 != 3 {
		t.Errorf("durations %+v do not match Section 4.2", d)
	}
	if d.SleepOverhead() != 37 {
		t.Errorf("sleep overhead = %d, want 37", d.SleepOverhead())
	}
	if d.DrowsyOverhead() != 6 {
		t.Errorf("drowsy overhead = %d, want 6 (the active-drowsy point)", d.DrowsyOverhead())
	}
	if err := d.Validate(); err != nil {
		t.Errorf("paper durations invalid: %v", err)
	}
}

func TestDurationsValidate(t *testing.T) {
	bad := []Durations{
		{S1: 0, S3: 3, S4: 4, D1: 3, D3: 3},
		{S1: 30, S3: -1, S4: 4, D1: 3, D3: 3},
		{S1: 30, S3: 3, S4: -1, D1: 3, D3: 3},
		{S1: 30, S3: 3, S4: 4, D1: 0, D3: 3},
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("case %d: bad durations accepted: %+v", i, d)
		}
	}
}

func TestTechnologiesTable(t *testing.T) {
	techs := Technologies()
	if len(techs) != 4 {
		t.Fatalf("got %d technologies, want 4", len(techs))
	}
	wantNm := []int{70, 100, 130, 180}
	wantVdd := []float64{0.9, 1.0, 1.5, 2.0}
	wantVth := []float64{0.1902, 0.2607, 0.3353, 0.3979}
	for i, tech := range techs {
		if tech.FeatureNm != wantNm[i] {
			t.Errorf("tech %d feature = %d, want %d", i, tech.FeatureNm, wantNm[i])
		}
		if tech.Vdd != wantVdd[i] || tech.Vth != wantVth[i] {
			t.Errorf("%s Vdd/Vth = %g/%g, want %g/%g (Table 2)",
				tech.Name, tech.Vdd, tech.Vth, wantVdd[i], wantVth[i])
		}
		if err := tech.Validate(); err != nil {
			t.Errorf("%s invalid: %v", tech.Name, err)
		}
	}
	// Leakage grows as feature size shrinks; CD shrinks.
	for i := 1; i < len(techs); i++ {
		if techs[i-1].PActive <= techs[i].PActive {
			t.Errorf("PActive not decreasing with larger feature: %s=%g vs %s=%g",
				techs[i-1].Name, techs[i-1].PActive, techs[i].Name, techs[i].PActive)
		}
		if techs[i-1].CD >= techs[i].CD {
			t.Errorf("CD not increasing with larger feature: %s=%g vs %s=%g",
				techs[i-1].Name, techs[i-1].CD, techs[i].Name, techs[i].CD)
		}
	}
}

func TestInflectionMatchesTable1(t *testing.T) {
	// The headline calibration check: recomputing the drowsy-sleep
	// inflection point from the calibrated parameters must reproduce the
	// paper's Table 1 to within rounding.
	want := map[string]float64{"70nm": 1057, "100nm": 5088, "130nm": 10328, "180nm": 103084}
	for _, tech := range Technologies() {
		a, b, err := tech.InflectionPoints()
		if err != nil {
			t.Fatalf("%s: %v", tech.Name, err)
		}
		if a != 6 {
			t.Errorf("%s: active-drowsy point = %g, want 6", tech.Name, a)
		}
		if math.Abs(b-want[tech.Name]) > 0.5 {
			t.Errorf("%s: drowsy-sleep point = %g, want %g (Table 1)", tech.Name, b, want[tech.Name])
		}
	}
}

func TestPublishedInflection(t *testing.T) {
	if v, ok := PublishedInflection(70); !ok || v != 1057 {
		t.Errorf("PublishedInflection(70) = %g, %v", v, ok)
	}
	if _, ok := PublishedInflection(45); ok {
		t.Error("unlisted node returned a value")
	}
}

func TestTechnologyByName(t *testing.T) {
	tech, err := TechnologyByName("130nm")
	if err != nil || tech.FeatureNm != 130 {
		t.Errorf("TechnologyByName(130nm) = %+v, %v", tech, err)
	}
	if _, err := TechnologyByName("7nm"); err == nil {
		t.Error("unknown node accepted")
	}
	if Default().FeatureNm != 70 {
		t.Error("Default is not 70nm")
	}
}

func TestCalibrateCDRoundTrip(t *testing.T) {
	// Calibrating CD for a target and then re-solving the inflection must
	// return the target, for arbitrary sane parameters.
	f := func(paRaw, targetRaw uint16) bool {
		pa := 0.05 + float64(paRaw)/65535.0*2 // (0.05, 2.05)
		pd := pa / 3
		ps := pa / 100
		dur := PaperDurations()
		// Stay above the minimum achievable inflection (CD=0 already puts
		// the crossover near 101 cycles for these power ratios).
		target := 150 + float64(targetRaw)
		cd, err := CalibrateCD(pa, pd, ps, dur, target)
		if err != nil {
			return false
		}
		tech := Technology{
			Name: "synthetic", PActive: pa, PDrowsy: pd, PSleep: ps,
			CD: cd, Durations: dur,
		}
		_, b, err := tech.InflectionPoints()
		if err != nil {
			// Small targets can land below the overhead bound; that is a
			// legitimate rejection, not a round-trip failure.
			return target < 2*float64(dur.SleepOverhead())
		}
		return math.Abs(b-target) < 1e-6*target+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCalibrateCDErrors(t *testing.T) {
	dur := PaperDurations()
	if _, err := CalibrateCD(1, 0.01, 0.3, dur, 1000); err == nil {
		t.Error("pd <= ps accepted")
	}
	if _, err := CalibrateCD(1, 0.3, 0.01, dur, 10); err == nil {
		t.Error("target below sleep overhead accepted")
	}
	if _, err := CalibrateCD(1, 0.3, 0.01, Durations{}, 1000); err == nil {
		t.Error("bad durations accepted")
	}
	if _, err := CalibrateCD(1, 0.3, 0.01, dur, 37.5); err == nil {
		t.Error("negative-CD target accepted")
	}
}

func TestEnergyEquationsAtBoundary(t *testing.T) {
	tech := Default()
	d := tech.Durations
	// At exactly the drowsy overhead, there is no low-voltage rest: energy
	// is just the two transitions.
	got := tech.DrowsyEnergy(float64(d.DrowsyOverhead()))
	tr := tech.Transitions()
	if math.Abs(got-(tr.EAD+tr.EDA)) > 1e-12 {
		t.Errorf("drowsy energy at overhead = %g, want transitions %g", got, tr.EAD+tr.EDA)
	}
	// At exactly the sleep overhead: transitions plus CD.
	gotS := tech.SleepEnergy(float64(d.SleepOverhead()))
	if math.Abs(gotS-(tr.EAS+tr.ESA+tech.CD)) > 1e-12 {
		t.Errorf("sleep energy at overhead = %g, want %g", gotS, tr.EAS+tr.ESA+tech.CD)
	}
	if math.Abs(tech.SleepEnergyNoRefetch(1000)-(tech.SleepEnergy(1000)-tech.CD)) > 1e-12 {
		t.Error("SleepEnergyNoRefetch inconsistent")
	}
}

func TestModeOrderingAroundInflections(t *testing.T) {
	// Below b drowsy must beat sleep; above b sleep must win; below a
	// nothing beats active (active is cheapest only for tiny intervals —
	// check at the definitional boundary instead of energy comparison).
	for _, tech := range Technologies() {
		_, b, err := tech.InflectionPoints()
		if err != nil {
			t.Fatal(err)
		}
		at := func(L float64) (eA, eD, eS float64) {
			return tech.ActiveEnergy(L), tech.DrowsyEnergy(L), tech.SleepEnergy(L)
		}
		_, eD, eS := at(b * 0.9)
		if eS <= eD {
			t.Errorf("%s: sleep (%g) beat drowsy (%g) below b", tech.Name, eS, eD)
		}
		_, eD, eS = at(b * 1.1)
		if eS >= eD {
			t.Errorf("%s: sleep (%g) did not beat drowsy (%g) above b", tech.Name, eS, eD)
		}
		eA, eD, _ := at(100)
		if eD >= eA {
			t.Errorf("%s: drowsy (%g) not below active (%g) at L=100", tech.Name, eD, eA)
		}
		// At the inflection, the two energies cross.
		_, eD, eS = at(b)
		if math.Abs(eD-eS) > 1e-6*eD {
			t.Errorf("%s: at b=%g energies differ: drowsy %g sleep %g", tech.Name, b, eD, eS)
		}
	}
}

func TestInflectionMonotoneInCD(t *testing.T) {
	// Larger induced-miss energy pushes the crossover later (Equation 3).
	tech := Default()
	_, b1, err := tech.InflectionPoints()
	if err != nil {
		t.Fatal(err)
	}
	tech.CD *= 2
	_, b2, err := tech.InflectionPoints()
	if err != nil {
		t.Fatal(err)
	}
	if b2 <= b1 {
		t.Errorf("doubling CD moved inflection %g -> %g (not later)", b1, b2)
	}
}

func TestInflectionLemma1Property(t *testing.T) {
	// Lemma 1: a < b for any parameter set that solves at all.
	f := func(paRaw, cdRaw uint16) bool {
		pa := 0.1 + float64(paRaw)/65535.0
		tech := Technology{
			Name: "prop", PActive: pa, PDrowsy: pa / 3, PSleep: pa / 100,
			CD: float64(cdRaw) / 100, Durations: PaperDurations(),
		}
		a, b, err := tech.InflectionPoints()
		if err != nil {
			return true // no crossover is a legal outcome
		}
		return a < b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTechnologyValidateRejects(t *testing.T) {
	good := Default()
	cases := []struct {
		name string
		mut  func(*Technology)
	}{
		{"zero active", func(x *Technology) { x.PActive = 0 }},
		{"drowsy <= sleep", func(x *Technology) { x.PDrowsy = x.PSleep }},
		{"active <= drowsy", func(x *Technology) { x.PActive = x.PDrowsy }},
		{"negative sleep", func(x *Technology) { x.PSleep = -1; x.PDrowsy = 0.1 }},
		{"negative CD", func(x *Technology) { x.CD = -1 }},
		{"negative counter", func(x *Technology) { x.CounterLeak = -1 }},
		{"bad durations", func(x *Technology) { x.Durations.S1 = 0 }},
	}
	for _, c := range cases {
		tech := good
		c.mut(&tech)
		if err := tech.Validate(); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestTransitions(t *testing.T) {
	tech := Default()
	tr := tech.Transitions()
	if tr.EAD <= 0 || tr.EDA <= 0 || tr.EAS <= 0 || tr.ESA <= 0 {
		t.Errorf("non-positive transition energy: %+v", tr)
	}
	// Sleep transitions move a bigger voltage swing over more cycles: the
	// sleep pair must cost more than the drowsy pair.
	if tr.EAS+tr.ESA <= tr.EAD+tr.EDA {
		t.Errorf("sleep transitions (%g) not above drowsy transitions (%g)",
			tr.EAS+tr.ESA, tr.EAD+tr.EDA)
	}
}

func BenchmarkInflectionPoints(b *testing.B) {
	tech := Default()
	for i := 0; i < b.N; i++ {
		if _, _, err := tech.InflectionPoints(); err != nil {
			b.Fatal(err)
		}
	}
}
