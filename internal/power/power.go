// Package power provides the circuit-level parameters of the limit study:
// per-technology leakage power for each cache-line operating mode, mode
// transition timings, and the dynamic energy of an induced miss (the
// re-fetch a slept line pays on its next access).
//
// The paper obtains leakage power from HotLeakage and dynamic energy from
// CACTI; neither tool is available here, so this package keeps the
// *structure* of those models and calibrates the absolute constants against
// the paper's own published numbers (Tables 1 and 2) — see DESIGN.md §4:
//
//   - Drowsy leakage is one third of active leakage. This ratio is implied
//     directly by the paper: OPT-Drowsy saturates at ≈66.6% savings in
//     Table 2 for every technology.
//   - Sleep (gated-Vdd) leakage is 1% of active leakage.
//   - Active leakage per line grows as feature size shrinks, following the
//     ITRS trend of Figure 1.
//   - The induced-miss energy C_D is solved from the published drowsy–sleep
//     inflection point of Table 1 (CalibrateCD), and decreases with feature
//     size exactly as the paper states ("the dynamic energy consumption
//     caused by an induced miss decreases with technology scaling down").
//
// All powers are in consistent arbitrary units (power × cycles = energy);
// every result the study reports is a ratio, so only the relative values
// matter.
package power

import (
	"errors"
	"fmt"
)

// Durations holds the mode-transition timings of Figure 4, in cycles. The
// paper uses s1=30, s3=d1=d3=3, s4=4 (Section 4.2, from Li et al. DATE'04);
// s2 and d2 depend on the interval length.
type Durations struct {
	S1 int // high -> off (entering sleep)
	S3 int // off -> high (waking from sleep)
	S4 int // extra wait: L2 fetch latency D minus s3
	D1 int // high -> low (entering drowsy)
	D3 int // low -> high (waking from drowsy)
}

// PaperDurations returns the values used throughout the paper's empirical
// study.
func PaperDurations() Durations {
	return Durations{S1: 30, S3: 3, S4: 4, D1: 3, D3: 3}
}

// Validate checks that all durations are positive.
func (d Durations) Validate() error {
	if d.S1 <= 0 || d.S3 <= 0 || d.S4 < 0 || d.D1 <= 0 || d.D3 <= 0 {
		return fmt.Errorf("power: non-positive durations %+v", d)
	}
	return nil
}

// SleepOverhead returns s1+s3+s4: the minimum interval length that can
// physically hold a sleep transition.
func (d Durations) SleepOverhead() int { return d.S1 + d.S3 + d.S4 }

// DrowsyOverhead returns d1+d3, which is also the active–drowsy inflection
// point a (Definition 3 in the appendix).
func (d Durations) DrowsyOverhead() int { return d.D1 + d.D3 }

// Technology bundles every circuit parameter the generalized model of
// Section 3.3 takes as input for one process node.
type Technology struct {
	Name      string  // e.g. "70nm"
	FeatureNm int     // feature size
	Vdd       float64 // supply voltage (V), from Table 2
	Vth       float64 // threshold voltage (V), from Table 2

	// Per-line, per-cycle leakage power in each operating mode.
	PActive float64
	PDrowsy float64
	PSleep  float64

	// CD is the dynamic energy of an induced miss: re-fetching a slept
	// line from L2 (obtained from CACTI in the paper, calibrated here).
	CD float64

	// WBEnergy is the dynamic energy of writing a dirty line back to L2
	// before gating it. The paper does not model this cost, so the
	// built-in nodes leave it at zero; the write-back ablation
	// (internal/experiments) sets it to a CACTI-like L2-write estimate.
	WBEnergy float64

	// CounterLeak is the extra per-line, per-cycle leakage of the decay
	// counter hardware used by the non-oracle Sleep(θ) scheme
	// (footnote 2 of the paper).
	CounterLeak float64

	Durations Durations
}

// Validate checks parameter sanity.
func (t Technology) Validate() error {
	if t.PActive <= 0 {
		return fmt.Errorf("power: %s: non-positive active power %g", t.Name, t.PActive)
	}
	if t.PDrowsy <= t.PSleep {
		return fmt.Errorf("power: %s: drowsy power %g not above sleep power %g",
			t.Name, t.PDrowsy, t.PSleep)
	}
	if t.PActive <= t.PDrowsy {
		return fmt.Errorf("power: %s: active power %g not above drowsy power %g",
			t.Name, t.PActive, t.PDrowsy)
	}
	if t.PSleep < 0 {
		return fmt.Errorf("power: %s: negative sleep power %g", t.Name, t.PSleep)
	}
	if t.CD < 0 {
		return fmt.Errorf("power: %s: negative induced-miss energy %g", t.Name, t.CD)
	}
	if t.WBEnergy < 0 {
		return fmt.Errorf("power: %s: negative write-back energy %g", t.Name, t.WBEnergy)
	}
	if t.CounterLeak < 0 {
		return fmt.Errorf("power: %s: negative counter leakage %g", t.Name, t.CounterLeak)
	}
	return t.Durations.Validate()
}

// publishedInflection is Table 1 of the paper: the drowsy–sleep inflection
// point in cycles per technology. These are calibration targets, not values
// the experiments read back — Table 1 is regenerated from the calibrated
// parameters through the generic solver in internal/leakage.
var publishedInflection = map[int]float64{
	70:  1057,
	100: 5088,
	130: 10328,
	180: 103084,
}

// PublishedInflection returns the paper's Table 1 value for a feature size,
// with ok=false for nodes the paper does not list.
func PublishedInflection(featureNm int) (cycles float64, ok bool) {
	v, ok := publishedInflection[featureNm]
	return v, ok
}

// CalibrateCD solves for the induced-miss energy C_D that places the
// drowsy–sleep inflection point exactly at targetB cycles, given the leakage
// powers and transition durations. From Equations 1–3 with transition
// segments charged at active power:
//
//	E_sleep(L)  = (s1+s3+s4)·Pa + (L−s1−s3−s4)·Ps + CD
//	E_drowsy(L) = (d1+d3)·Pa + (L−d1−d3)·Pd
//
// Setting E_sleep(targetB) = E_drowsy(targetB) and solving for CD.
func CalibrateCD(pa, pd, ps float64, dur Durations, targetB float64) (float64, error) {
	if err := dur.Validate(); err != nil {
		return 0, err
	}
	if pd <= ps {
		return 0, errors.New("power: calibration needs PDrowsy > PSleep")
	}
	if targetB < float64(dur.SleepOverhead()) {
		return 0, fmt.Errorf("power: target inflection %g below sleep overhead %d",
			targetB, dur.SleepOverhead())
	}
	ed := float64(dur.DrowsyOverhead())*pa + (targetB-float64(dur.DrowsyOverhead()))*pd
	esNoCD := float64(dur.SleepOverhead())*pa + (targetB-float64(dur.SleepOverhead()))*ps
	cd := ed - esNoCD
	if cd < 0 {
		return 0, fmt.Errorf("power: calibration yields negative CD %g (target %g too small)", cd, targetB)
	}
	return cd, nil
}

// nodeSpec drives the construction of the built-in technology table.
type nodeSpec struct {
	featureNm int
	vdd, vth  float64 // Table 2 of the paper
	pActive   float64 // relative leakage per line per cycle, ITRS trend
}

// The active-leakage trend: leakage grows steeply as Vth drops with scaling.
var nodeSpecs = []nodeSpec{
	{70, 0.9, 0.1902, 0.80},
	{100, 1.0, 0.2607, 0.40},
	{130, 1.5, 0.3353, 0.20},
	{180, 2.0, 0.3979, 0.05},
}

const (
	drowsyRatio  = 1.0 / 3 // PDrowsy/PActive; forced by Table 2 (≈66.6% OPT-Drowsy)
	sleepRatio   = 0.01    // PSleep/PActive
	counterRatio = 0.004   // decay counter leakage per line, fraction of PActive
)

// Technologies returns the four calibrated process nodes of the paper
// (70, 100, 130, 180 nm), in that order. The construction cannot fail for
// the built-in table; errors would indicate a broken constant and panic.
func Technologies() []Technology {
	out := make([]Technology, 0, len(nodeSpecs))
	for _, s := range nodeSpecs {
		t, err := buildNode(s)
		if err != nil {
			panic(fmt.Sprintf("power: built-in node %dnm failed calibration: %v", s.featureNm, err))
		}
		out = append(out, t)
	}
	return out
}

func buildNode(s nodeSpec) (Technology, error) {
	dur := PaperDurations()
	target, ok := PublishedInflection(s.featureNm)
	if !ok {
		return Technology{}, fmt.Errorf("no published inflection for %dnm", s.featureNm)
	}
	pa := s.pActive
	pd := pa * drowsyRatio
	ps := pa * sleepRatio
	cd, err := CalibrateCD(pa, pd, ps, dur, target)
	if err != nil {
		return Technology{}, err
	}
	t := Technology{
		Name:        fmt.Sprintf("%dnm", s.featureNm),
		FeatureNm:   s.featureNm,
		Vdd:         s.vdd,
		Vth:         s.vth,
		PActive:     pa,
		PDrowsy:     pd,
		PSleep:      ps,
		CD:          cd,
		CounterLeak: pa * counterRatio,
		Durations:   dur,
	}
	return t, t.Validate()
}

// TechnologyByName returns the built-in node with the given name (e.g.
// "70nm").
func TechnologyByName(name string) (Technology, error) {
	for _, t := range Technologies() {
		if t.Name == name {
			return t, nil
		}
	}
	return Technology{}, fmt.Errorf("power: unknown technology %q", name)
}

// Default returns the 70nm node the paper uses for its main study
// (Section 4.2: "the most advanced technology that will be reached in a few
// years according to ITRS").
func Default() Technology {
	t, err := TechnologyByName("70nm")
	if err != nil {
		panic(err)
	}
	return t
}
