// Package stats provides the small statistical toolkit used throughout
// leakbound: streaming summaries, fixed- and log-bucketed histograms, and
// weighted aggregation helpers.
//
// The experiment harness relies on these types to summarize cache access
// interval distributions (Section 3.1 of the paper) and to average results
// across benchmarks, so they are written for exactness and reproducibility
// rather than raw speed: all accumulation is in float64 with compensated
// summation where it matters.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Summary accumulates a stream of float64 observations and reports the usual
// moments. The zero value is ready to use.
type Summary struct {
	n    int64
	sum  float64
	comp float64 // Kahan compensation for sum
	sum2 float64
	min  float64
	max  float64
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	if s.n == 0 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	s.n++
	// Kahan summation: keeps benchmark-averaging stable when mixing very
	// long (1e9-cycle) and very short intervals.
	y := x - s.comp
	t := s.sum + y
	s.comp = (t - s.sum) - y
	s.sum = t
	s.sum2 += x * x
}

// AddN records the observation x with integer multiplicity n.
func (s *Summary) AddN(x float64, n int64) {
	if n <= 0 {
		return
	}
	if s.n == 0 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	s.n += n
	fn := float64(n)
	y := x*fn - s.comp
	t := s.sum + y
	s.comp = (t - s.sum) - y
	s.sum = t
	s.sum2 += x * x * fn
}

// Merge folds other into s.
func (s *Summary) Merge(other *Summary) {
	if other.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *other
		return
	}
	if other.min < s.min {
		s.min = other.min
	}
	if other.max > s.max {
		s.max = other.max
	}
	s.n += other.n
	s.sum += other.sum
	s.sum2 += other.sum2
}

// N returns the number of observations.
func (s *Summary) N() int64 { return s.n }

// Sum returns the total of all observations.
func (s *Summary) Sum() float64 { return s.sum }

// Mean returns the arithmetic mean, or 0 for an empty summary.
func (s *Summary) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Variance returns the population variance, or 0 for fewer than 2 samples.
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	m := s.Mean()
	v := s.sum2/float64(s.n) - m*m
	if v < 0 {
		return 0 // numerical noise
	}
	return v
}

// StdDev returns the population standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Min returns the smallest observation, or 0 for an empty summary.
func (s *Summary) Min() float64 {
	if s.n == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest observation, or 0 for an empty summary.
func (s *Summary) Max() float64 {
	if s.n == 0 {
		return 0
	}
	return s.max
}

// String renders a compact human-readable form.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g min=%.4g max=%.4g",
		s.n, s.Mean(), s.StdDev(), s.Min(), s.Max())
}

// Histogram is a bucketed counter over a partition of [0, +inf) described by
// ascending bucket upper bounds. An observation x lands in the first bucket
// whose bound is >= x; values above the last bound land in the overflow
// bucket. Counts carry int64 multiplicities so interval populations in the
// hundreds of millions are exact.
type Histogram struct {
	bounds   []float64
	counts   []int64
	overflow int64
	total    int64
	weighted float64 // sum of x*count, for mass-weighted shares
}

// NewHistogram builds a histogram over the given ascending upper bounds.
func NewHistogram(bounds []float64) (*Histogram, error) {
	if len(bounds) == 0 {
		return nil, errors.New("stats: histogram needs at least one bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			return nil, fmt.Errorf("stats: bounds not ascending at %d (%g <= %g)",
				i, bounds[i], bounds[i-1])
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]int64, len(b))}, nil
}

// MustHistogram is NewHistogram that panics on bad bounds; for package-level
// fixed bucket tables.
func MustHistogram(bounds []float64) *Histogram {
	h, err := NewHistogram(bounds)
	if err != nil {
		panic(err)
	}
	return h
}

// NewLogHistogram builds buckets at powers of base from lo up to hi
// inclusive (e.g. lo=1, hi=1e6, base=2 -> 1,2,4,...).
func NewLogHistogram(lo, hi, base float64) (*Histogram, error) {
	if lo <= 0 || hi <= lo || base <= 1 {
		return nil, fmt.Errorf("stats: bad log histogram spec lo=%g hi=%g base=%g", lo, hi, base)
	}
	var bounds []float64
	for x := lo; x <= hi*(1+1e-12); x *= base {
		bounds = append(bounds, x)
	}
	return NewHistogram(bounds)
}

// Add records one observation.
func (h *Histogram) Add(x float64) { h.AddN(x, 1) }

// AddN records x with multiplicity n.
func (h *Histogram) AddN(x float64, n int64) {
	if n <= 0 {
		return
	}
	h.total += n
	h.weighted += x * float64(n)
	i := sort.SearchFloat64s(h.bounds, x)
	if i == len(h.bounds) {
		h.overflow += n
		return
	}
	h.counts[i] += n
}

// Total returns the number of recorded observations.
func (h *Histogram) Total() int64 { return h.total }

// WeightedTotal returns sum(x * multiplicity) over all observations.
func (h *Histogram) WeightedTotal() float64 { return h.weighted }

// Buckets returns copies of the bounds and counts; the final returned count
// is the overflow bucket (bound +Inf).
func (h *Histogram) Buckets() (bounds []float64, counts []int64) {
	bounds = make([]float64, len(h.bounds)+1)
	copy(bounds, h.bounds)
	bounds[len(bounds)-1] = math.Inf(1)
	counts = make([]int64, len(h.counts)+1)
	copy(counts, h.counts)
	counts[len(counts)-1] = h.overflow
	return bounds, counts
}

// CountAtMost returns how many observations were <= bound; bound must be one
// of the configured bounds or +Inf.
func (h *Histogram) CountAtMost(bound float64) int64 {
	if math.IsInf(bound, 1) {
		return h.total
	}
	i := sort.SearchFloat64s(h.bounds, bound)
	if i == len(h.bounds) || h.bounds[i] != bound {
		return -1
	}
	var c int64
	for j := 0; j <= i; j++ {
		c += h.counts[j]
	}
	return c
}

// Share returns the fraction of observations in (lower, upper]; lower may be
// 0 and upper may be +Inf.
func (h *Histogram) Share(lower, upper float64) float64 {
	if h.total == 0 {
		return 0
	}
	hi := h.CountAtMost(upper)
	var lo int64
	if lower > 0 {
		lo = h.CountAtMost(lower)
	}
	if hi < 0 || lo < 0 {
		return math.NaN()
	}
	return float64(hi-lo) / float64(h.total)
}

// Quantile returns the smallest bucket bound q of the mass sits at or below,
// a coarse quantile suitable for bucketed data. q must be in [0,1].
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 || q < 0 || q > 1 {
		return math.NaN()
	}
	target := int64(math.Ceil(q * float64(h.total)))
	if target == 0 {
		target = 1
	}
	var c int64
	for i, n := range h.counts {
		c += n
		if c >= target {
			return h.bounds[i]
		}
	}
	return math.Inf(1)
}

// Percentile computes an exact percentile of a sample slice (p in [0,100]),
// using linear interpolation between closest ranks. The input is not
// modified.
func Percentile(sample []float64, p float64) (float64, error) {
	if len(sample) == 0 {
		return 0, errors.New("stats: percentile of empty sample")
	}
	if p < 0 || p > 100 {
		return 0, fmt.Errorf("stats: percentile %g out of [0,100]", p)
	}
	s := make([]float64, len(sample))
	copy(s, sample)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0], nil
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo], nil
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac, nil
}

// WeightedMean returns sum(w_i * x_i) / sum(w_i). It errors on mismatched
// lengths or non-positive total weight.
func WeightedMean(xs, ws []float64) (float64, error) {
	if len(xs) != len(ws) {
		return 0, fmt.Errorf("stats: weighted mean length mismatch %d vs %d", len(xs), len(ws))
	}
	var num, den float64
	for i, x := range xs {
		if ws[i] < 0 {
			return 0, fmt.Errorf("stats: negative weight %g at %d", ws[i], i)
		}
		num += x * ws[i]
		den += ws[i]
	}
	if den == 0 {
		return 0, errors.New("stats: zero total weight")
	}
	return num / den, nil
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of strictly positive values.
func GeoMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, errors.New("stats: geomean of empty slice")
	}
	var s float64
	for i, x := range xs {
		if x <= 0 {
			return 0, fmt.Errorf("stats: geomean needs positive values, got %g at %d", x, i)
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs))), nil
}
