package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= eps*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.N() != 0 || s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.StdDev() != 0 {
		t.Fatalf("empty summary not all-zero: %s", s.String())
	}
}

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, x := range []float64{1, 2, 3, 4, 5} {
		s.Add(x)
	}
	if s.N() != 5 {
		t.Errorf("N = %d, want 5", s.N())
	}
	if !almostEqual(s.Mean(), 3, 1e-12) {
		t.Errorf("Mean = %g, want 3", s.Mean())
	}
	if !almostEqual(s.Variance(), 2, 1e-12) {
		t.Errorf("Variance = %g, want 2", s.Variance())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Errorf("Min/Max = %g/%g, want 1/5", s.Min(), s.Max())
	}
	if s.Sum() != 15 {
		t.Errorf("Sum = %g, want 15", s.Sum())
	}
}

func TestSummaryAddN(t *testing.T) {
	var a, b Summary
	for i := 0; i < 7; i++ {
		a.Add(4.5)
	}
	b.AddN(4.5, 7)
	if a.N() != b.N() || !almostEqual(a.Sum(), b.Sum(), 1e-12) || !almostEqual(a.Variance(), b.Variance(), 1e-9) {
		t.Errorf("AddN mismatch: %s vs %s", a.String(), b.String())
	}
	b.AddN(1, 0)  // no-op
	b.AddN(1, -3) // no-op
	if b.N() != 7 {
		t.Errorf("non-positive multiplicity changed N: %d", b.N())
	}
}

func TestSummaryMerge(t *testing.T) {
	var a, b, all Summary
	data := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	for i, x := range data {
		all.Add(x)
		if i < 4 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(&b)
	if a.N() != all.N() || !almostEqual(a.Mean(), all.Mean(), 1e-12) ||
		!almostEqual(a.Variance(), all.Variance(), 1e-9) ||
		a.Min() != all.Min() || a.Max() != all.Max() {
		t.Errorf("merge mismatch: %s vs %s", a.String(), all.String())
	}
	var empty Summary
	a.Merge(&empty) // no-op
	if a.N() != all.N() {
		t.Errorf("merging empty changed N")
	}
	var c Summary
	c.Merge(&all)
	if c.N() != all.N() || c.Mean() != all.Mean() {
		t.Errorf("merge into empty mismatch")
	}
}

func TestSummaryMergeMatchesConcat(t *testing.T) {
	f := func(xs, ys []int32) bool {
		var a, b, all Summary
		for _, x := range xs {
			a.Add(float64(x))
			all.Add(float64(x))
		}
		for _, y := range ys {
			b.Add(float64(y))
			all.Add(float64(y))
		}
		a.Merge(&b)
		return a.N() == all.N() && almostEqual(a.Sum(), all.Sum(), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(nil); err == nil {
		t.Error("empty bounds accepted")
	}
	if _, err := NewHistogram([]float64{1, 1}); err == nil {
		t.Error("non-ascending bounds accepted")
	}
	if _, err := NewHistogram([]float64{2, 1}); err == nil {
		t.Error("descending bounds accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustHistogram did not panic on bad bounds")
		}
	}()
	MustHistogram([]float64{5, 5})
}

func TestHistogramBuckets(t *testing.T) {
	h := MustHistogram([]float64{6, 1057})
	h.Add(1)       // -> bucket (0,6]
	h.Add(6)       // boundary -> (0,6]
	h.Add(7)       // -> (6,1057]
	h.Add(1057)    // boundary -> (6,1057]
	h.Add(1058)    // -> overflow
	h.AddN(1e6, 3) // -> overflow x3
	bounds, counts := h.Buckets()
	if len(bounds) != 3 || len(counts) != 3 {
		t.Fatalf("buckets len = %d/%d, want 3/3", len(bounds), len(counts))
	}
	if counts[0] != 2 || counts[1] != 2 || counts[2] != 4 {
		t.Errorf("counts = %v, want [2 2 4]", counts)
	}
	if !math.IsInf(bounds[2], 1) {
		t.Errorf("last bound = %g, want +Inf", bounds[2])
	}
	if h.Total() != 8 {
		t.Errorf("Total = %d, want 8", h.Total())
	}
}

func TestHistogramShare(t *testing.T) {
	h := MustHistogram([]float64{6, 1057})
	for i := 0; i < 10; i++ {
		h.Add(3)
	}
	for i := 0; i < 30; i++ {
		h.Add(100)
	}
	for i := 0; i < 60; i++ {
		h.Add(5000)
	}
	if got := h.Share(0, 6); !almostEqual(got, 0.1, 1e-12) {
		t.Errorf("Share(0,6] = %g, want 0.1", got)
	}
	if got := h.Share(6, 1057); !almostEqual(got, 0.3, 1e-12) {
		t.Errorf("Share(6,1057] = %g, want 0.3", got)
	}
	if got := h.Share(1057, math.Inf(1)); !almostEqual(got, 0.6, 1e-12) {
		t.Errorf("Share(1057,inf) = %g, want 0.6", got)
	}
	if got := h.Share(7, 100); !math.IsNaN(got) {
		t.Errorf("Share at non-bound = %g, want NaN", got)
	}
}

func TestHistogramCountAtMost(t *testing.T) {
	h := MustHistogram([]float64{10, 20, 30})
	h.AddN(5, 2)
	h.AddN(15, 3)
	h.AddN(25, 4)
	h.AddN(99, 5)
	if c := h.CountAtMost(10); c != 2 {
		t.Errorf("CountAtMost(10) = %d, want 2", c)
	}
	if c := h.CountAtMost(20); c != 5 {
		t.Errorf("CountAtMost(20) = %d, want 5", c)
	}
	if c := h.CountAtMost(math.Inf(1)); c != 14 {
		t.Errorf("CountAtMost(inf) = %d, want 14", c)
	}
	if c := h.CountAtMost(11); c != -1 {
		t.Errorf("CountAtMost at non-bound = %d, want -1", c)
	}
}

func TestLogHistogram(t *testing.T) {
	h, err := NewLogHistogram(1, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	bounds, _ := h.Buckets()
	want := []float64{1, 2, 4, 8}
	for i, b := range want {
		if bounds[i] != b {
			t.Errorf("bound[%d] = %g, want %g", i, bounds[i], b)
		}
	}
	if _, err := NewLogHistogram(0, 8, 2); err == nil {
		t.Error("lo=0 accepted")
	}
	if _, err := NewLogHistogram(1, 8, 1); err == nil {
		t.Error("base=1 accepted")
	}
	if _, err := NewLogHistogram(8, 1, 2); err == nil {
		t.Error("hi<lo accepted")
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := MustHistogram([]float64{1, 2, 3, 4})
	for i := 0; i < 100; i++ {
		h.Add(float64(i%4) + 0.5)
	}
	if q := h.Quantile(0.5); q != 2 {
		t.Errorf("Quantile(0.5) = %g, want 2", q)
	}
	if q := h.Quantile(1.0); q != 4 {
		t.Errorf("Quantile(1.0) = %g, want 4", q)
	}
	var empty Histogram
	if !math.IsNaN(empty.Quantile(0.5)) {
		t.Error("quantile of empty histogram not NaN")
	}
}

func TestHistogramSharesSumToOne(t *testing.T) {
	f := func(raw []uint16) bool {
		h := MustHistogram([]float64{6, 1057})
		for _, r := range raw {
			h.Add(float64(r) + 0.5)
		}
		if h.Total() == 0 {
			return true
		}
		total := h.Share(0, 6) + h.Share(6, 1057) + h.Share(1057, math.Inf(1))
		return almostEqual(total, 1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPercentile(t *testing.T) {
	sample := []float64{15, 20, 35, 40, 50}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 15},
		{100, 50},
		{50, 35},
		{25, 20},
	}
	for _, c := range cases {
		got, err := Percentile(sample, c.p)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Percentile(%g) = %g, want %g", c.p, got, c.want)
		}
	}
	// input must not be mutated
	if sample[0] != 15 || sample[4] != 50 {
		t.Error("Percentile mutated input")
	}
	if _, err := Percentile(nil, 50); err == nil {
		t.Error("empty sample accepted")
	}
	if _, err := Percentile(sample, -1); err == nil {
		t.Error("negative percentile accepted")
	}
	if _, err := Percentile(sample, 101); err == nil {
		t.Error("percentile > 100 accepted")
	}
}

func TestPercentileSingle(t *testing.T) {
	got, err := Percentile([]float64{42}, 73)
	if err != nil || got != 42 {
		t.Errorf("Percentile single = %g, %v", got, err)
	}
}

func TestWeightedMean(t *testing.T) {
	got, err := WeightedMean([]float64{1, 3}, []float64{1, 1})
	if err != nil || got != 2 {
		t.Errorf("WeightedMean = %g, %v; want 2", got, err)
	}
	got, err = WeightedMean([]float64{10, 20}, []float64{3, 1})
	if err != nil || !almostEqual(got, 12.5, 1e-12) {
		t.Errorf("WeightedMean = %g, %v; want 12.5", got, err)
	}
	if _, err := WeightedMean([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := WeightedMean([]float64{1}, []float64{0}); err == nil {
		t.Error("zero total weight accepted")
	}
	if _, err := WeightedMean([]float64{1}, []float64{-1}); err == nil {
		t.Error("negative weight accepted")
	}
}

func TestMeanAndGeoMean(t *testing.T) {
	if m := Mean(nil); m != 0 {
		t.Errorf("Mean(nil) = %g", m)
	}
	if m := Mean([]float64{2, 4, 6}); m != 4 {
		t.Errorf("Mean = %g, want 4", m)
	}
	g, err := GeoMean([]float64{1, 100})
	if err != nil || !almostEqual(g, 10, 1e-9) {
		t.Errorf("GeoMean = %g, %v; want 10", g, err)
	}
	if _, err := GeoMean([]float64{1, 0}); err == nil {
		t.Error("GeoMean accepted zero")
	}
	if _, err := GeoMean(nil); err == nil {
		t.Error("GeoMean accepted empty")
	}
}

func TestSummaryPropertyMeanWithinBounds(t *testing.T) {
	f := func(xs []int32) bool {
		var s Summary
		ok := true
		for _, x := range xs {
			s.Add(float64(x))
		}
		if s.N() > 0 {
			m := s.Mean()
			ok = m >= s.Min()-1e-9*math.Abs(s.Min())-1e-9 &&
				m <= s.Max()+1e-9*math.Abs(s.Max())+1e-9
		}
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkSummaryAdd(b *testing.B) {
	var s Summary
	for i := 0; i < b.N; i++ {
		s.Add(float64(i & 1023))
	}
}

func BenchmarkHistogramAdd(b *testing.B) {
	h := MustHistogram([]float64{6, 64, 512, 1057, 8192, 65536})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Add(float64(i & 65535))
	}
}
