package workload

import (
	"testing"
)

const testScale = 0.02

func TestNames(t *testing.T) {
	n := Names()
	want := []string{"ammp", "applu", "gcc", "gzip", "mesa", "vortex"}
	if len(n) != len(want) {
		t.Fatalf("Names() = %v", n)
	}
	for i := range want {
		if n[i] != want[i] {
			t.Errorf("Names()[%d] = %q, want %q", i, n[i], want[i])
		}
	}
	// Returned slice must be a copy.
	n[0] = "hacked"
	if Names()[0] != "ammp" {
		t.Error("Names() exposes internal slice")
	}
}

func TestNewUnknown(t *testing.T) {
	if _, err := New("specfake", 1); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if _, err := New("gzip", 0); err == nil {
		t.Error("zero scale accepted")
	}
	if _, err := New("gzip", -1); err == nil {
		t.Error("negative scale accepted")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew did not panic")
		}
	}()
	MustNew("nope", 1)
}

func TestValidate(t *testing.T) {
	for _, n := range Names() {
		if err := Validate(n); err != nil {
			t.Errorf("Validate(%q) = %v", n, err)
		}
	}
	if err := Validate("zzz"); err == nil {
		t.Error("Validate accepted unknown name")
	}
}

func TestAll(t *testing.T) {
	ws, err := All(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 6 {
		t.Fatalf("All returned %d workloads", len(ws))
	}
	for i, w := range ws {
		if w.Name() != Names()[i] {
			t.Errorf("All()[%d] = %q, want %q", i, w.Name(), Names()[i])
		}
		if w.Description() == "" {
			t.Errorf("%s: empty description", w.Name())
		}
	}
}

func TestDeterminism(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			collect := func() []Instr {
				w := MustNew(name, testScale)
				var out []Instr
				w.Emit(func(in Instr) bool {
					out = append(out, in)
					return len(out) < 50000
				})
				return out
			}
			a, b := collect(), collect()
			if len(a) != len(b) {
				t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("instr %d differs: %+v vs %+v", i, a[i], b[i])
				}
			}
		})
	}
}

func TestEmitRestartable(t *testing.T) {
	w := MustNew("gzip", testScale)
	first := func() Instr {
		var got Instr
		w.Emit(func(in Instr) bool { got = in; return false })
		return got
	}
	a, b := first(), first()
	if a != b {
		t.Errorf("restart differs: %+v vs %+v", a, b)
	}
}

func TestEarlyStop(t *testing.T) {
	w := MustNew("gcc", 1)
	n := 0
	w.Emit(func(in Instr) bool {
		n++
		return n < 100
	})
	if n != 100 {
		t.Errorf("emitted %d after stop at 100", n)
	}
}

func TestStreamShape(t *testing.T) {
	// Each benchmark must have a plausible memory-op fraction and non-empty
	// stream; PC values must be in the text segment, data addresses in the
	// data segment.
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			w := MustNew(name, testScale)
			var total, mem uint64
			bad := false
			w.Emit(func(in Instr) bool {
				total++
				if in.PC < textBase || in.PC >= dataBase {
					bad = true
					return false
				}
				if in.Kind != Op {
					mem++
					if in.Addr < dataBase {
						bad = true
						return false
					}
				}
				return total < 300000
			})
			if bad {
				t.Fatal("address outside its segment")
			}
			if total < 1000 {
				t.Fatalf("stream too short: %d", total)
			}
			frac := float64(mem) / float64(total)
			if frac < 0.03 || frac > 0.5 {
				t.Errorf("memory fraction %0.3f out of plausible [0.03, 0.5]", frac)
			}
		})
	}
}

func TestScaleStretchesLength(t *testing.T) {
	count := func(scale float64) uint64 {
		w := MustNew("ammp", scale)
		n, _ := Count(w)
		return n
	}
	small, large := count(0.15), count(0.6)
	if large <= small {
		t.Errorf("scale did not stretch: %d -> %d", small, large)
	}
}

func TestFootprints(t *testing.T) {
	// Code footprints must follow the modelled programs' relative sizes:
	// gcc and vortex large, ammp/applu/gzip small.
	fp := map[string]int{}
	for _, name := range Names() {
		// A larger scale lets gcc/vortex visit a representative share of
		// their code populations.
		w := MustNew(name, 0.2)
		c, d := Footprint(w)
		if c == 0 || d == 0 {
			t.Fatalf("%s: empty footprint (%d code, %d data)", name, c, d)
		}
		fp[name] = c
	}
	if fp["gcc"] <= fp["gzip"]*2 {
		t.Errorf("gcc code footprint (%d lines) not much larger than gzip (%d)", fp["gcc"], fp["gzip"])
	}
	if fp["vortex"] <= fp["ammp"]*2 {
		t.Errorf("vortex code footprint (%d) not much larger than ammp (%d)", fp["vortex"], fp["ammp"])
	}
}

func TestDataWorkingSets(t *testing.T) {
	// Data working sets must exceed the 64KB L1D (1024 lines) for the
	// benchmarks the paper characterizes as cache-straining.
	for _, name := range []string{"ammp", "applu", "vortex", "mesa"} {
		w := MustNew(name, 0.05)
		_, d := Footprint(w)
		if d < 2048 {
			t.Errorf("%s: data footprint %d lines, want > 2048 (128KB)", name, d)
		}
	}
}

func TestInstrKindString(t *testing.T) {
	if Op.String() != "op" || Load.String() != "load" || Store.String() != "store" {
		t.Error("kind strings wrong")
	}
	if InstrKind(9).String() != "InstrKind(9)" {
		t.Error("unknown kind string wrong")
	}
}

func TestRoutineExec(t *testing.T) {
	r := newRoutine(0x1000, 10)
	if r.end() != 0x1000+40 {
		t.Errorf("end = %#x", r.end())
	}
	e := &emitter{yield: func(in Instr) bool { return true }}
	var got []Instr
	e.yield = func(in Instr) bool { got = append(got, in); return true }
	r.exec(e, ld(0xAA00), st(0xBB00))
	if len(got) != 10 {
		t.Fatalf("emitted %d, want 10", len(got))
	}
	var loads, stores int
	for i, in := range got {
		if in.PC != 0x1000+uint64(i)*4 {
			t.Errorf("instr %d PC = %#x", i, in.PC)
		}
		switch in.Kind {
		case Load:
			loads++
		case Store:
			stores++
		}
	}
	if loads != 1 || stores != 1 {
		t.Errorf("loads=%d stores=%d, want 1/1", loads, stores)
	}
}

func TestRoutineExecOverflowRefs(t *testing.T) {
	r := newRoutine(0x1000, 2)
	var got []Instr
	e := &emitter{yield: func(in Instr) bool { got = append(got, in); return true }}
	r.exec(e, ld(1<<28), ld(2<<28), ld(3<<28), ld(4<<28))
	if len(got) != 4 {
		t.Fatalf("emitted %d, want 4 (2 body + 2 overflow)", len(got))
	}
	for _, in := range got {
		if in.Kind != Load {
			t.Errorf("non-load in all-refs exec: %+v", in)
		}
	}
}

func TestChaseTableIsFullCycle(t *testing.T) {
	const n = 257
	ct := newChaseTable(0x1000, n, 64, 1)
	seen := map[uint64]bool{}
	for i := 0; i < n; i++ {
		a := ct.next()
		if seen[a] {
			t.Fatalf("revisited %#x before full cycle at step %d", a, i)
		}
		seen[a] = true
	}
	if len(seen) != n {
		t.Errorf("cycle covered %d of %d elements", len(seen), n)
	}
}

func TestSeqCursorWraps(t *testing.T) {
	c := newSeqCursor(100, 64, 32)
	addrs := []uint64{c.next(), c.next(), c.next()}
	want := []uint64{100, 132, 100}
	for i := range want {
		if addrs[i] != want[i] {
			t.Errorf("addr[%d] = %d, want %d", i, addrs[i], want[i])
		}
	}
}

func TestRNGDeterministic(t *testing.T) {
	a, b := newRNG(7), newRNG(7)
	for i := 0; i < 100; i++ {
		if a.next() != b.next() {
			t.Fatal("rng not deterministic")
		}
	}
	c := newRNG(8)
	same := true
	a2 := newRNG(7)
	for i := 0; i < 10; i++ {
		if a2.next() != c.next() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := newRNG(3)
	for i := 0; i < 1000; i++ {
		v := r.intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("intn out of range: %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("intn(0) did not panic")
		}
	}()
	r.intn(0)
}

func TestRNGFloatRange(t *testing.T) {
	r := newRNG(11)
	for i := 0; i < 1000; i++ {
		f := r.float()
		if f < 0 || f >= 1 {
			t.Fatalf("float out of range: %g", f)
		}
	}
}

func TestRNGGeometricMean(t *testing.T) {
	r := newRNG(5)
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		v := r.geometric(10)
		if v < 1 {
			t.Fatalf("geometric returned %d < 1", v)
		}
		sum += float64(v)
	}
	mean := sum / n
	if mean < 7 || mean > 14 {
		t.Errorf("geometric mean = %g, want near 10", mean)
	}
	if v := r.geometric(0.5); v < 1 {
		t.Errorf("geometric(<1) = %d", v)
	}
}

func BenchmarkEmitGzip(b *testing.B) {
	w := MustNew("gzip", 1)
	b.ResetTimer()
	n := 0
	w.Emit(func(in Instr) bool {
		n++
		return n < b.N
	})
}

func TestHotCursorBursts(t *testing.T) {
	h := newHotCursor(0x1000, 3)
	// Four consecutive touches of one line (ld/st alternating), then the
	// cursor advances to the next line.
	var lines []uint64
	var kinds []InstrKind
	for i := 0; i < 12; i++ {
		a := h.next()
		lines = append(lines, a.addr>>6)
		kinds = append(kinds, a.kind)
	}
	for i := 0; i < 4; i++ {
		if lines[i] != lines[0] {
			t.Fatalf("burst broke at %d: %v", i, lines[:4])
		}
	}
	if lines[4] == lines[0] {
		t.Error("cursor did not advance after a burst")
	}
	if lines[8] == lines[4] {
		t.Error("cursor did not advance after second burst")
	}
	if kinds[0] != Load || kinds[1] != Store || kinds[2] != Load || kinds[3] != Store {
		t.Errorf("burst kinds = %v, want ld/st/ld/st", kinds[:4])
	}
	// Wraps around the region.
	h2 := newHotCursor(0x1000, 1)
	for i := 0; i < 8; i++ {
		if h2.next().addr>>6 != 0x1000>>6 {
			t.Fatal("single-line cursor left its line")
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("zero-line cursor did not panic")
		}
	}()
	newHotCursor(0x1000, 0)
}

func TestStrideWalkerGeometry(t *testing.T) {
	// 1KB region, 256B blocks, 128B stride, 2 passes per block.
	w := newStrideWalker(0x10000, 1024, 256, 128, 2)
	var addrs []uint64
	for i := 0; i < 10; i++ {
		addrs = append(addrs, w.next())
	}
	// Block 0 pass 1: 0x10000, 0x10080; pass 2: same; then block 1.
	want := []uint64{
		0x10000, 0x10080, // pass 1
		0x10000, 0x10080, // pass 2
		0x10100, 0x10180, // block 1 pass 1
		0x10100, 0x10180, // block 1 pass 2
		0x10200, 0x10280, // block 2
	}
	for i := range want {
		if addrs[i] != want[i] {
			t.Fatalf("addr[%d] = %#x, want %#x (full: %#x)", i, addrs[i], want[i], addrs)
		}
	}
	// Skipped lines (odd 64B lines within the stride) are never emitted.
	w2 := newStrideWalker(0x20000, 512, 512, 128, 1)
	seen := map[uint64]bool{}
	for i := 0; i < 64; i++ {
		seen[w2.next()] = true
	}
	for a := range seen {
		if (a-0x20000)%128 != 0 {
			t.Errorf("off-stride address %#x emitted", a)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("bad walker geometry did not panic")
		}
	}()
	newStrideWalker(0, 0, 0, 0, 0)
}

func TestStrideWalkerWrapsRegion(t *testing.T) {
	// Region of 2 blocks: after both blocks' passes the walker returns to
	// block 0.
	w := newStrideWalker(0x30000, 512, 256, 128, 1)
	var first uint64 = w.next()
	// Exhaust block 0 (2 steps) and block 1 (2 steps).
	w.next()
	w.next()
	w.next()
	if got := w.next(); got != first {
		t.Errorf("walker did not wrap: got %#x, want %#x", got, first)
	}
}
