package workload

// This file holds the shared machinery the six benchmark generators are
// built from: an emitter that pushes instructions to the consumer, routines
// (straight-line code regions with interleaved memory references), and a
// handful of reusable access-pattern kernels (sequential sweep, strided
// sweep, pointer chase, hashed/irregular access).

// emitter wraps the consumer callback and tracks early termination.
type emitter struct {
	yield   func(Instr) bool
	stopped bool
	emitted uint64
}

// op emits a non-memory instruction at pc.
func (e *emitter) op(pc uint64) {
	if e.stopped {
		return
	}
	e.emitted++
	if !e.yield(Instr{PC: pc, Kind: Op}) {
		e.stopped = true
	}
}

// load emits a load at pc reading addr.
func (e *emitter) load(pc, addr uint64) {
	if e.stopped {
		return
	}
	e.emitted++
	if !e.yield(Instr{PC: pc, Addr: addr, Kind: Load}) {
		e.stopped = true
	}
}

// store emits a store at pc writing addr.
func (e *emitter) store(pc, addr uint64) {
	if e.stopped {
		return
	}
	e.emitted++
	if !e.yield(Instr{PC: pc, Addr: addr, Kind: Store}) {
		e.stopped = true
	}
}

// access is a memory reference to interleave into a routine body.
type access struct {
	kind InstrKind // Load or Store
	addr uint64
}

// ld and st build access values tersely.
func ld(addr uint64) access { return access{kind: Load, addr: addr} }
func st(addr uint64) access { return access{kind: Store, addr: addr} }

// routine is a straight-line code region: n instructions starting at base,
// 4 bytes apart (Alpha-style fixed-width encoding). Executing it models one
// pass through a loop body or one call of a leaf function.
type routine struct {
	base uint64
	n    int
}

// newRoutine allocates a routine of n instructions at base.
func newRoutine(base uint64, n int) routine {
	if n <= 0 {
		panic("workload: routine with no instructions")
	}
	return routine{base: base, n: n}
}

// end returns the first PC past the routine, for laying out code regions.
func (r routine) end() uint64 { return r.base + uint64(r.n)*4 }

// exec emits one execution of the routine with the given memory references
// spread evenly through the body. If there are more refs than instructions,
// the extras are emitted back-to-back at the tail.
func (r routine) exec(e *emitter, refs ...access) {
	if e.stopped {
		return
	}
	nr := len(refs)
	k := 0
	for i := 0; i < r.n && !e.stopped; i++ {
		pc := r.base + uint64(i)*4
		if k < nr && i >= (k*r.n)/nr {
			switch refs[k].kind {
			case Store:
				e.store(pc, refs[k].addr)
			default:
				e.load(pc, refs[k].addr)
			}
			k++
			continue
		}
		e.op(pc)
	}
	// Overflow refs (rare): emit at the final PC.
	for ; k < nr && !e.stopped; k++ {
		pc := r.base + uint64(r.n-1)*4
		if refs[k].kind == Store {
			e.store(pc, refs[k].addr)
		} else {
			e.load(pc, refs[k].addr)
		}
	}
}

// execRefs emits one execution of the routine with a memory reference every
// `every` instructions; gen produces the k-th reference. This is how large
// loop bodies reach a realistic load/store density (~1/3 of instructions)
// without enumerating hundreds of variadic arguments.
func (r routine) execRefs(e *emitter, every int, gen func(k int) access) {
	if e.stopped {
		return
	}
	if every <= 0 {
		every = 3
	}
	k := 0
	for i := 0; i < r.n && !e.stopped; i++ {
		pc := r.base + uint64(i)*4
		if i%every == every-1 {
			ref := gen(k)
			k++
			if ref.kind == Store {
				e.store(pc, ref.addr)
			} else {
				e.load(pc, ref.addr)
			}
			continue
		}
		e.op(pc)
	}
}

// codeLayout hands out non-overlapping code regions, modelling the text
// segment of the synthetic program.
type codeLayout struct{ next uint64 }

// newCodeLayout starts the text segment at base.
func newCodeLayout(base uint64) *codeLayout { return &codeLayout{next: base} }

// routine carves the next n-instruction region.
func (c *codeLayout) routine(n int) routine {
	r := newRoutine(c.next, n)
	c.next = r.end()
	return r
}

// skip leaves a gap (cold code that is never executed, e.g. error paths).
func (c *codeLayout) skip(bytes uint64) { c.next += bytes }

// chaseTable builds a deterministic pseudo-random cyclic permutation over
// nElems slots of elemBytes each at base, modelling a linked structure
// (ammp's neighbor lists, vortex's object graph). Walking it defeats both
// next-line and stride prefetching, like real pointer chasing.
type chaseTable struct {
	base      uint64
	elemBytes uint64
	perm      []uint32
	pos       uint32
}

// newChaseTable builds the permutation with the given seed.
func newChaseTable(base uint64, nElems int, elemBytes uint64, seed uint64) *chaseTable {
	if nElems <= 0 || elemBytes == 0 {
		panic("workload: bad chase table geometry")
	}
	perm := make([]uint32, nElems)
	for i := range perm {
		perm[i] = uint32(i)
	}
	r := newRNG(seed)
	// Sattolo's algorithm: a single cycle covering all elements.
	for i := nElems - 1; i > 0; i-- {
		j := r.intn(i)
		perm[i], perm[j] = perm[j], perm[i]
	}
	return &chaseTable{base: base, elemBytes: elemBytes, perm: perm}
}

// next follows one pointer and returns the address of the element visited.
func (t *chaseTable) next() uint64 {
	t.pos = t.perm[t.pos]
	return t.base + uint64(t.pos)*t.elemBytes
}

// hotCursor produces the hot-tier reference stream: short bursts of loads
// and stores to the same line (accumulators, locals, loop counters)
// rotating slowly through a small stack-like region. The back-to-back
// same-line reuse is what populates the short-interval counts of Figure 9
// — those intervals are too short for any power-saving mode and count as
// non-prefetchable.
type hotCursor struct {
	region uint64
	lines  int
	pos    int
	k      int
}

// newHotCursor builds a cursor over `lines` 64-byte lines at region.
func newHotCursor(region uint64, lines int) *hotCursor {
	if lines <= 0 {
		panic("workload: hot cursor needs lines")
	}
	return &hotCursor{region: region, lines: lines}
}

// next returns the next hot reference: four consecutive touches of one line
// (load, store, load, store), then the cursor advances to the next line.
func (h *hotCursor) next() access {
	addr := h.region + uint64(h.pos)*64 + uint64(h.k)*8
	var a access
	if h.k%2 == 0 {
		a = ld(addr)
	} else {
		a = st(addr)
	}
	h.k++
	if h.k == 4 {
		h.k = 0
		h.pos = (h.pos + 1) % h.lines
	}
	return a
}

// strideWalker sweeps a block of a region with a fixed multi-line stride,
// re-sweeping the same block several times before moving to the next one —
// the blocked loop nests of dense numeric codes. Because the stride skips
// lines, the skipped neighbours are never touched and next-line prefetching
// can never predict these accesses; the per-PC stride predictor can.
type strideWalker struct {
	region     uint64
	regionSize uint64
	blockSize  uint64
	stride     uint64
	maxPasses  int

	blockOff uint64
	pos      uint64
	passes   int
}

// newStrideWalker validates and builds a walker. stride should be a
// multiple of 64 that is at least 128 to keep the skipped-line property.
func newStrideWalker(region, regionSize, blockSize, stride uint64, maxPasses int) *strideWalker {
	if regionSize == 0 || blockSize == 0 || stride == 0 || blockSize > regionSize || maxPasses <= 0 {
		panic("workload: bad stride walker geometry")
	}
	return &strideWalker{
		region: region, regionSize: regionSize,
		blockSize: blockSize, stride: stride, maxPasses: maxPasses,
	}
}

// next returns the next address in the blocked sweep.
func (w *strideWalker) next() uint64 {
	a := w.region + w.blockOff + w.pos
	w.pos += w.stride
	if w.pos >= w.blockSize {
		w.pos = 0
		w.passes++
		if w.passes >= w.maxPasses {
			w.passes = 0
			w.blockOff += w.blockSize
			if w.blockOff+w.blockSize > w.regionSize {
				w.blockOff = 0
			}
		}
	}
	return a
}

// seqCursor walks an array region sequentially with a fixed byte stride,
// wrapping at the end; models streaming buffers and unit-stride sweeps.
type seqCursor struct {
	base   uint64
	size   uint64
	stride uint64
	off    uint64
}

// newSeqCursor builds a cursor over [base, base+size) advancing by stride.
func newSeqCursor(base, size, stride uint64) *seqCursor {
	if size == 0 || stride == 0 {
		panic("workload: bad seq cursor geometry")
	}
	return &seqCursor{base: base, size: size, stride: stride}
}

// next returns the current address and advances.
func (s *seqCursor) next() uint64 {
	a := s.base + s.off
	s.off += s.stride
	if s.off >= s.size {
		s.off = 0
	}
	return a
}
