package workload

// The six SPEC2000 stand-ins. Each generator documents the program behaviour
// it models and the locality character it reproduces; parameters were tuned
// against the paper's aggregate results (see EXPERIMENTS.md).
//
// Every benchmark is built from up to four locality tiers, which is what
// shapes the per-frame interval distribution the limit study consumes:
//
//   - hot: the innermost loop; its cache lines see sub-1057-cycle reuse
//     (the drowsy regime), and its stack/accumulator lines see back-to-back
//     reuse (the active regime and the bulk of Figure 9's short-interval
//     counts);
//   - warm: the main working loop (~2.5K instructions / ~8KB of data)
//     re-visited every few thousand cycles — the (b, 10K] regime that
//     separates OPT-Sleep(b) from OPT-Sleep(10K);
//   - tepid: per-phase code and data re-visited every few tens of
//     thousands of cycles — the regime where decay's fixed 10K wait hurts;
//   - cold: large structures touched rarely or never (the deep-sleep
//     regime that dominates total savings).
//
// Code lives at Alpha-style text addresses (0x40_0000+); data regions are
// spread far apart so distinct structures never alias in the caches.

const (
	textBase = 0x0040_0000
	dataBase = 0x1000_0000
	// Regions are spaced ~16MB apart; no synthetic structure is larger.
	// The stride is deliberately NOT a multiple of the 2MB L2 size — the
	// extra 192KB+some lines stagger successive regions across L2 sets,
	// like a real allocator would, instead of piling every structure onto
	// the same direct-mapped sets.
	regionStride = (16 << 20) + (192 << 10) + 13*64
)

func dataRegion(i int) uint64 { return dataBase + uint64(i)*regionStride }

// line64 returns the address of the i-th 64-byte line in a region.
func line64(region uint64, i int) uint64 { return region + uint64(i)*64 }

// gzip

// gzipWL models 164.gzip: a compact compression kernel over streaming
// input/output, an 8KB hot hash region, a 32KB sliding window probed at
// random lags, and a per-block Huffman builder. Most of the I-cache is
// never touched; D-cache traffic is a mix of streams (next-line
// prefetchable) and hash probes (not).
type gzipWL struct{ scale float64 }

func newGzip(scale float64) *gzipWL { return &gzipWL{scale: scale} }

func (g *gzipWL) Name() string { return "gzip" }

func (g *gzipWL) Description() string {
	return "LZ77 compressor: tiny hot loops, streaming buffers, 32KB window, hash tables"
}

func (g *gzipWL) Emit(yield func(Instr) bool) {
	e := &emitter{yield: yield}
	r := newRNG(0xA11CE)
	code := newCodeLayout(textBase)
	inner := code.routine(280)    // hot: literal/match decision
	deflate := code.routine(2500) // warm: main compression body
	huffman := code.routine(3400) // tepid: per-block tree build
	startup := make([]routine, 8) // once-only code: option parsing, table init
	for i := range startup {
		startup[i] = code.routine(320)
	}
	code.skip(170 << 10) // cold code: inflate, error paths (never executed)

	hot := newHotCursor(dataRegion(0), 12) // hot spill area
	hash := dataRegion(1)                  // 8KB warm hash region
	window := dataRegion(2)                // 32KB window, random-lag probes (tepid)
	freq := dataRegion(3)                  // 4KB frequency tables
	input := newSeqCursor(dataRegion(4), 2<<20, 64)
	outBuf := newSeqCursor(dataRegion(5), 2<<20, 64)

	blocks := int(270 * g.scale)
	if blocks < 1 {
		blocks = 1
	}
	n := 0
	mix := func(k int) access {
		n++
		switch {
		case n%64 == 0:
			return ld(input.next()) // streaming input (next-line friendly)
		case n%64 == 32:
			return st(outBuf.next()) // streaming output
		case n%16 == 1:
			return ld(line64(hash, r.intn(128))) // warm hash region
		case n%32 == 3:
			return st(line64(hash, r.intn(128)))
		case n%128 == 5:
			return ld(line64(window, r.intn(512))) // tepid window probes
		case n%64 == 7:
			return ld(line64(freq, r.intn(64)))
		default:
			return hot.next()
		}
	}
	// Startup: one pass through initialization code, touching the CRC and
	// tree tables once.
	si := 0
	for _, rt := range startup {
		rt.execRefs(e, 3, func(k int) access {
			si++
			if k%3 == 0 {
				return st(line64(window, si%512))
			}
			return hot.next()
		})
	}
	for b := 0; b < blocks && !e.stopped; b++ {
		for i := 0; i < 7 && !e.stopped; i++ {
			deflate.execRefs(e, 3, mix)
			for j := 0; j < 3 && !e.stopped; j++ {
				inner.execRefs(e, 3, mix)
			}
		}
		// Per-block Huffman build: tepid code, frequency-table sweeps.
		fi := 0
		huffman.execRefs(e, 3, func(k int) access {
			fi++
			if k%4 == 0 {
				return ld(line64(freq, fi%64))
			}
			return hot.next()
		})
	}
}

// gcc

// gccWL models 176.gcc: a very large, irregularly traversed code footprint
// (hundreds of KB of compiler passes) around a warm driver core. Each
// compiled function exercises a random, non-contiguous cluster of pass
// routines for several passes — so cluster code is re-entered every few
// thousand cycles, the full footprint cycles at much longer range, and a
// routine's address-space neighbour is usually NOT in the cluster (which is
// what keeps most long I-cache intervals un-prefetchable, as in real,
// branchy compiler code). Data is AST pointer chasing within a per-function
// arena plus hot symbol/stack traffic.
type gccWL struct{ scale float64 }

func newGcc(scale float64) *gccWL { return &gccWL{scale: scale} }

func (g *gccWL) Name() string { return "gcc" }

func (g *gccWL) Description() string {
	return "compiler: ~300KB irregular code, per-function pass loops, AST pointer chasing"
}

func (g *gccWL) Emit(yield func(Instr) bool) {
	e := &emitter{yield: yield}
	r := newRNG(0x6CC)
	code := newCodeLayout(textBase)
	driver := code.routine(1900) // warm: scheduling, bookkeeping
	const numRoutines = 1400
	routines := make([]routine, numRoutines)
	for i := range routines {
		routines[i] = code.routine(52)
	}
	const arenaLines = 4096 // 256KB of AST nodes, sliced into per-phase arenas
	astArena := dataRegion(0)
	symtab := dataRegion(1)                // 8KB warm symbol region
	hot := newHotCursor(dataRegion(2), 12) // hot spill area

	phases := int(160 * g.scale)
	if phases < 1 {
		phases = 1
	}
	cluster := make([]routine, 0, 64)
	n := 0
	for ph := 0; ph < phases && !e.stopped; ph++ {
		// Random, non-contiguous cluster of pass routines for this function.
		cluster = cluster[:0]
		size := 36 + r.intn(20)
		for i := 0; i < size; i++ {
			cluster = append(cluster, routines[r.intn(numRoutines)])
		}
		arena := (ph / 2) % 8 // per-function arena slice, reused across 2 phases
		arenaBase := astArena + uint64(arena)*(arenaLines/8)*64
		arenaSeq := newSeqCursor(arenaBase, (arenaLines/8)*64, 64)
		mix := func(k int) access {
			n++
			switch {
			case n%128 == 0:
				return ld(arenaSeq.next()) // allocation-order AST walk
			case n%128 == 61:
				return ld(line64(arenaBase, r.intn(arenaLines/8))) // random AST chase
			case n%16 == 1:
				return ld(line64(symtab, r.intn(128))) // warm
			case n%32 == 3:
				return st(line64(symtab, r.intn(128)))
			default:
				return hot.next()
			}
		}
		passes := 6 + r.intn(4)
		for p := 0; p < passes && !e.stopped; p++ {
			driver.execRefs(e, 3, mix)
			for _, rt := range cluster {
				rt.execRefs(e, 3, mix)
			}
		}
	}
}

// mesa

// mesaWL models 177.mesa: software 3D rendering. The transform/raster/
// texture kernels form a warm loop re-entered per batch of primitives;
// per-frame setup code is tepid and visited in varying order; the
// framebuffer and depth buffer are swept sequentially once per frame (long
// unit-stride store streams, next-line prefetchable); the active texture
// tile is a warm 8KB region.
type mesaWL struct{ scale float64 }

func newMesa(scale float64) *mesaWL { return &mesaWL{scale: scale} }

func (m *mesaWL) Name() string { return "mesa" }

func (m *mesaWL) Description() string {
	return "software renderer: per-batch kernel reuse, framebuffer/vertex sweeps, texture tiles"
}

func (m *mesaWL) Emit(yield func(Instr) bool) {
	e := &emitter{yield: yield}
	r := newRNG(0x3E5A)
	code := newCodeLayout(textBase)
	transform := code.routine(820)
	raster := code.routine(980)
	texture := code.routine(620)
	setup := make([]routine, 14)
	for i := range setup {
		setup[i] = code.routine(380)
	}
	startup := make([]routine, 10) // once-only: context creation, mipmap build
	for i := range startup {
		startup[i] = code.routine(300)
	}
	code.skip(110 << 10)

	hot := newHotCursor(dataRegion(0), 12)              // hot locals
	texRegion := dataRegion(1)                          // texture atlas; 8KB active tile
	vertices := newSeqCursor(dataRegion(2), 96<<10, 64) // vertex array
	fb := newSeqCursor(dataRegion(3), 512<<10, 64)      // framebuffer
	zbuf := newSeqCursor(dataRegion(4), 256<<10, 128)   // depth buffer, 2-line stride
	matrices := dataRegion(5)                           // transform state

	frames := int(135 * m.scale)
	if frames < 1 {
		frames = 1
	}
	n := 0
	// Startup: build display lists and mipmaps once.
	si := 0
	for _, rt := range startup {
		rt.execRefs(e, 3, func(k int) access {
			si++
			if k%3 == 0 {
				return st(line64(texRegion, si%2048))
			}
			return hot.next()
		})
	}
	for f := 0; f < frames && !e.stopped; f++ {
		tile := texRegion + uint64(f%16)*8192
		mix := func(k int) access {
			n++
			switch {
			case n%48 == 0:
				return st(fb.next()) // streaming framebuffer (next-line friendly)
			case n%96 == 13:
				return ld(zbuf.next())
			case n%96 == 61:
				return st(zbuf.next())
			case n%144 == 7:
				return ld(vertices.next())
			case n%16 == 1:
				return ld(line64(tile, r.intn(128))) // warm texture tile
			case n%64 == 3:
				return ld(line64(matrices, r.intn(32)))
			default:
				return hot.next()
			}
		}
		// Per-frame setup, visited in a frame-dependent order (branchy).
		for i := range setup {
			setup[(i*5+f)%len(setup)].execRefs(e, 3, mix)
		}
		for batch := 0; batch < 8 && !e.stopped; batch++ {
			transform.execRefs(e, 3, mix)
			raster.execRefs(e, 3, mix)
			texture.execRefs(e, 3, mix)
		}
	}
}

// vortex

// vortexWL models 255.vortex: an object-oriented database. A warm memory-
// management/dispatch core runs on every transaction; a large cold routine
// population is visited through a drifting working window (call-graph
// locality, mostly un-prefetchable); the heap is traversed by pointer with
// hot freelist and index-root traffic.
type vortexWL struct{ scale float64 }

func newVortex(scale float64) *vortexWL { return &vortexWL{scale: scale} }

func (v *vortexWL) Name() string { return "vortex" }

func (v *vortexWL) Description() string {
	return "OO database: call-heavy ~220KB code, heap pointer chasing, index probes"
}

func (v *vortexWL) Emit(yield func(Instr) bool) {
	e := &emitter{yield: yield}
	r := newRNG(0x50F7)
	code := newCodeLayout(textBase)
	core := code.routine(2300) // warm: allocator, locking, dispatch
	const numCold = 820
	cold := make([]routine, numCold)
	for i := range cold {
		cold[i] = code.routine(64)
	}
	startup := make([]routine, 12) // once-only: schema load, recovery
	for i := range startup {
		startup[i] = code.routine(280)
	}
	heap := newChaseTable(dataRegion(0), 8192, 64, 0x50F71) // 512KB object heap, pointer-walked
	heapSeq := newSeqCursor(dataRegion(0), 8192*64, 64)     // sequential buffer/scan ops
	index := dataRegion(1)                                  // hot roots (8KB) + cold leaves
	freelist := dataRegion(2)                               // hot allocator state
	hot := newHotCursor(dataRegion(3), 12)

	txns := int(2600 * v.scale)
	if txns < 1 {
		txns = 1
	}
	window := 0
	n := 0
	mix := func(k int) access {
		n++
		switch {
		case n%112 == 0:
			return ld(heap.next()) // heap chase: un-prefetchable
		case n%112 == 57:
			return ld(heapSeq.next()) // sequential scans: next-line friendly
		case n%224 == 85:
			return st(heap.next())
		case n%16 == 1:
			return ld(line64(index, r.intn(128))) // warm index roots
		case n%192 == 3:
			return ld(line64(index, 2048+r.intn(2048))) // cold leaves
		case n%32 == 5:
			return ld(line64(freelist, r.intn(16)))
		case n%64 == 21:
			return st(line64(freelist, r.intn(16)))
		default:
			return hot.next()
		}
	}
	// Startup: load the schema and warm the buffer pool once.
	si := 0
	for _, rt := range startup {
		rt.execRefs(e, 3, func(k int) access {
			si++
			if k%3 == 0 {
				return ld(line64(index, si%4096))
			}
			return hot.next()
		})
	}
	for t := 0; t < txns && !e.stopped; t++ {
		if t%90 == 89 {
			window = (window + 40) % numCold // workload drift
		}
		core.execRefs(e, 3, mix)
		calls := 5 + r.intn(6)
		for c := 0; c < calls && !e.stopped; c++ {
			var rt routine
			if r.intn(10) < 8 {
				rt = cold[(window+r.intn(110))%numCold]
			} else {
				rt = cold[r.intn(numCold)]
			}
			rt.execRefs(e, 3, mix)
		}
	}
}

// ammp

// ammpWL models 188.ammp: molecular dynamics. A small force-evaluation
// kernel (warm) runs over a large atom set: sequential sweeps over the atom
// records interleaved with neighbor-list pointer chasing, plus a hot
// force-field parameter table. Very long D-cache reuse distances dominate;
// the paper singles ammp out as a leakage-study favourite precisely for
// this behaviour.
type ammpWL struct{ scale float64 }

func newAmmp(scale float64) *ammpWL { return &ammpWL{scale: scale} }

func (a *ammpWL) Name() string { return "ammp" }

func (a *ammpWL) Description() string {
	return "molecular dynamics: small kernels, neighbor-list chasing over a large atom set"
}

func (a *ammpWL) Emit(yield func(Instr) bool) {
	e := &emitter{yield: yield}
	r := newRNG(0xA332)
	code := newCodeLayout(textBase)
	force := code.routine(2800)       // warm: non-bonded force kernel
	inner := code.routine(260)        // hot: pair interaction
	neighborUpd := code.routine(2600) // tepid: list rebuild
	startup := make([]routine, 8)     // once-only: topology parse, setup
	for i := range startup {
		startup[i] = code.routine(300)
	}
	code.skip(56 << 10)

	const nAtoms = 9000
	atoms := newChaseTable(dataRegion(0), nAtoms, 96, 0xA3321) // ~845KB atom records
	atomSeq := newSeqCursor(dataRegion(0), nAtoms*96, 96)
	velocities := newSeqCursor(dataRegion(1), nAtoms*24, 24)
	params := dataRegion(2) // 8KB warm parameter table
	hot := newHotCursor(dataRegion(3), 12)

	steps := int(64 * a.scale)
	if steps < 1 {
		steps = 1
	}
	n := 0
	mix := func(k int) access {
		n++
		switch {
		case n%112 == 0 || n%224 == 57:
			return ld(atomSeq.next()) // sequential atom sweep (next-line friendly)
		case n%192 == 5:
			return ld(atoms.next()) // neighbor chase: un-prefetchable
		case n%384 == 101:
			return ld(atoms.next())
		case n%384 == 293:
			return st(velocities.next())
		case n%16 == 1:
			return ld(line64(params, r.intn(128))) // warm parameters
		default:
			return hot.next()
		}
	}
	// Startup: parse the molecular topology once.
	si := 0
	for _, rt := range startup {
		rt.execRefs(e, 3, func(k int) access {
			si++
			if k%3 == 0 {
				return st(atomSeq.next())
			}
			return hot.next()
		})
	}
	for s := 0; s < steps && !e.stopped; s++ {
		for g := 0; g < 30 && !e.stopped; g++ {
			force.execRefs(e, 3, mix)
			for j := 0; j < 3 && !e.stopped; j++ {
				inner.execRefs(e, 3, mix)
			}
		}
		// Periodic neighbor-list rebuild (tepid code, streaming data).
		{
			for g := 0; g < 6 && !e.stopped; g++ {
				neighborUpd.execRefs(e, 3, func(k int) access {
					switch {
					case k%24 == 0:
						return st(atomSeq.next())
					case k%48 == 13:
						return ld(atoms.next())
					default:
						return hot.next()
					}
				})
			}
		}
	}
}

// applu

// appluWL models 173.applu: an SSOR CFD solver over a 3D grid. A handful of
// kernel loops (genuinely small code) sweep five large arrays along
// different dimensions with constant strides (unit, row, and plane) —
// exactly the access shape the stride prefetcher exists for — plus a warm
// coefficient block. applu's I-cache is mostly idle, its D-cache dominated
// by long, regular intervals.
type appluWL struct{ scale float64 }

func newApplu(scale float64) *appluWL { return &appluWL{scale: scale} }

func (a *appluWL) Name() string { return "applu" }

func (a *appluWL) Description() string {
	return "SSOR CFD solver: strided sweeps (unit/row/plane) over five large 3D arrays"
}

func (a *appluWL) Emit(yield func(Instr) bool) {
	e := &emitter{yield: yield}
	r := newRNG(0xAB1)
	code := newCodeLayout(textBase)
	rhs := code.routine(900)
	jacld := code.routine(760)
	blts := code.routine(560)
	buts := code.routine(560)
	l2norm := code.routine(300)
	startup := make([]routine, 6) // once-only: grid setup, coefficient init
	for i := range startup {
		startup[i] = code.routine(280)
	}
	code.skip(28 << 10)

	// 32^3 grid, 8-byte elements: each array is 256KB; the five arrays
	// together fit the 2MB L2, as the real applu working set does once
	// blocked.
	const (
		cells     = 32 * 32 * 32
		elem      = 8
		arraySize = cells * elem
	)
	arr := func(i int) uint64 { return dataRegion(i) }
	coeff := dataRegion(8) // 8KB warm coefficient block
	hot := newHotCursor(dataRegion(9), 12)

	// Blocked, strided sweeps: each solver kernel re-sweeps blocks of its
	// arrays with multi-line strides (128B-256B) before moving on — the
	// skipped lines are never touched, so next-line prefetch cannot
	// predict these accesses and only the per-PC stride predictor can.
	// (The rapid block rotation means the two-confirmation predictor locks
	// on only part of the closings; EXPERIMENTS.md quantifies the
	// resulting under-representation of P-stride against the paper.)
	w0 := newStrideWalker(arr(0), arraySize, 32<<10, 128, 4)
	w1 := newStrideWalker(arr(1), arraySize, 32<<10, 128, 4)
	w2 := newStrideWalker(arr(2), arraySize, 32<<10, 192, 3)
	w3 := newStrideWalker(arr(3), arraySize, 32<<10, 128, 6)
	w4 := newStrideWalker(arr(4), arraySize, 32<<10, 256, 5)

	hotMix := func(k int) access {
		if k%16 == 5 {
			return ld(line64(coeff, r.intn(128)))
		}
		return hot.next()
	}
	mixFor := func(a, b *strideWalker) func(int) access {
		return func(k int) access {
			switch k % 8 {
			case 0, 2:
				return ld(a.next())
			case 4:
				return ld(b.next())
			case 6:
				return st(a.next())
			default:
				return hotMix(k)
			}
		}
	}

	iters := int(9 * a.scale)
	if iters < 1 {
		iters = 1
	}
	// Startup: initialize the grid once.
	si := 0
	for _, rt := range startup {
		rt.execRefs(e, 3, func(k int) access {
			si++
			if k%3 == 0 {
				return st(arr(3) + uint64(si%4096)*64)
			}
			return hot.next()
		})
	}
	for it := 0; it < iters && !e.stopped; it++ {
		for i := 0; i < 160 && !e.stopped; i++ {
			rhs.execRefs(e, 3, mixFor(w0, w1))
		}
		for i := 0; i < 140 && !e.stopped; i++ {
			jacld.execRefs(e, 3, mixFor(w2, w3))
		}
		for i := 0; i < 150 && !e.stopped; i++ {
			blts.execRefs(e, 3, mixFor(w4, w0))
		}
		for i := 0; i < 150 && !e.stopped; i++ {
			buts.execRefs(e, 3, mixFor(w4, w2))
		}
		for i := 0; i < 120 && !e.stopped; i++ {
			l2norm.execRefs(e, 3, mixFor(w2, w1))
		}
	}
}
