package workload

import (
	"testing"
)

func TestBuilderBasic(t *testing.T) {
	b := NewBuilder("toy")
	hot := b.Hot(8)
	stream := b.Sequential(1<<20, 64)
	w, err := b.Phase(PhaseSpec{
		BodyInstrs: 120,
		Iterations: 50,
		Loads:      []Pattern{hot, stream},
		Stores:     []Pattern{hot},
	}).Build()
	if err != nil {
		t.Fatal(err)
	}
	if w.Name() != "toy" {
		t.Errorf("name = %q", w.Name())
	}
	total, memFrac := Count(w)
	if total != 120*50 {
		t.Errorf("total = %d, want 6000", total)
	}
	if memFrac < 0.25 || memFrac > 0.4 {
		t.Errorf("mem fraction %g, want ~1/3", memFrac)
	}
}

func TestBuilderDeterministic(t *testing.T) {
	build := func() Workload {
		b := NewBuilder("det")
		chase := b.Chase(1024, 64, 42)
		hot := b.Hot(4)
		w, err := b.Phase(PhaseSpec{
			BodyInstrs: 60, Iterations: 100,
			Loads: []Pattern{chase, hot}, Weights: []int{1, 3},
		}).Build()
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	collect := func(w Workload) []Instr {
		var out []Instr
		w.Emit(func(in Instr) bool { out = append(out, in); return true })
		return out
	}
	a, b := collect(build()), collect(build())
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("instr %d differs", i)
		}
	}
}

func TestBuilderWeights(t *testing.T) {
	b := NewBuilder("w")
	heavy := b.Hot(4)
	light := b.Sequential(1<<16, 64)
	w, err := b.Phase(PhaseSpec{
		BodyInstrs: 300, Iterations: 100,
		Loads:   []Pattern{heavy, light},
		Weights: []int{9, 1},
	}).Build()
	if err != nil {
		t.Fatal(err)
	}
	// ~90% of refs must land in the hot region, ~10% in the stream.
	var hotN, streamN int
	w.Emit(func(in Instr) bool {
		if in.Kind == Load {
			if in.Addr >= dataRegion(17) && in.Addr < dataRegion(18) {
				streamN++
			} else {
				hotN++
			}
		}
		return true
	})
	ratio := float64(hotN) / float64(hotN+streamN)
	if ratio < 0.85 || ratio > 0.95 {
		t.Errorf("hot ratio = %.3f, want ~0.9", ratio)
	}
}

func TestBuilderMultiPhase(t *testing.T) {
	b := NewBuilder("phased")
	s1 := b.Strided(256<<10, 32<<10, 128, 2)
	s2 := b.Sequential(64<<10, 64)
	w, err := b.
		Phase(PhaseSpec{BodyInstrs: 100, Iterations: 20, Loads: []Pattern{s1}}).
		Phase(PhaseSpec{BodyInstrs: 200, Iterations: 10, Stores: []Pattern{s2}}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	total, _ := Count(w)
	if total != 100*20+200*10 {
		t.Errorf("total = %d", total)
	}
	// The phases use distinct code regions.
	codeLines := map[uint64]bool{}
	w.Emit(func(in Instr) bool { codeLines[in.PC>>6] = true; return true })
	if len(codeLines) < (100+200)/16-2 {
		t.Errorf("code footprint %d lines, want ~%d", len(codeLines), (100+200)/16)
	}
}

func TestBuilderErrors(t *testing.T) {
	if _, err := NewBuilder("e").Build(); err == nil {
		t.Error("no phases accepted")
	}
	b := NewBuilder("e2")
	if _, err := b.Phase(PhaseSpec{BodyInstrs: 0, Iterations: 1, Loads: []Pattern{b.Hot(1)}}).Build(); err == nil {
		t.Error("zero body accepted")
	}
	b = NewBuilder("e3")
	if _, err := b.Phase(PhaseSpec{BodyInstrs: 10, Iterations: 1}).Build(); err == nil {
		t.Error("no patterns accepted")
	}
	b = NewBuilder("e4")
	p := b.Hot(1)
	if _, err := b.Phase(PhaseSpec{
		BodyInstrs: 10, Iterations: 1, Loads: []Pattern{p}, Weights: []int{1, 2},
	}).Build(); err == nil {
		t.Error("mismatched weights accepted")
	}
	b = NewBuilder("e5")
	p = b.Hot(1)
	if _, err := b.Phase(PhaseSpec{
		BodyInstrs: 10, Iterations: 1, Loads: []Pattern{p}, Weights: []int{0},
	}).Build(); err == nil {
		t.Error("zero weight accepted")
	}
	// Pattern constructor errors propagate to Build.
	b = NewBuilder("e6")
	bad := b.Sequential(0, 0)
	if _, err := b.Phase(PhaseSpec{BodyInstrs: 10, Iterations: 1, Loads: []Pattern{bad}}).Build(); err == nil {
		t.Error("bad sequential pattern accepted")
	}
	b = NewBuilder("e7")
	_ = b.Chase(0, 0, 1)
	if _, err := b.Build(); err == nil {
		t.Error("bad chase pattern accepted")
	}
	b = NewBuilder("e8")
	_ = b.Strided(10, 100, 64, 1)
	if _, err := b.Build(); err == nil {
		t.Error("bad strided pattern accepted")
	}
	b = NewBuilder("e9")
	_ = b.Hot(0)
	if _, err := b.Build(); err == nil {
		t.Error("bad hot pattern accepted")
	}
	if NewBuilder("").name == "" {
		t.Error("empty name not defaulted")
	}
}

func TestBuilderDefaultMemEvery(t *testing.T) {
	b := NewBuilder("d")
	w, err := b.Phase(PhaseSpec{
		BodyInstrs: 90, Iterations: 10, Loads: []Pattern{b.Hot(2)},
	}).Build()
	if err != nil {
		t.Fatal(err)
	}
	_, frac := Count(w)
	if frac < 0.3 || frac > 0.37 {
		t.Errorf("default density %g, want ~1/3", frac)
	}
}
