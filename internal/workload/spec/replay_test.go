package spec

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"leakbound/internal/interval"
	"leakbound/internal/leakage"
	"leakbound/internal/power"
	"leakbound/internal/prefetch"
	"leakbound/internal/sim/cache"
	"leakbound/internal/sim/cpu"
	"leakbound/internal/sim/stream"
	"leakbound/internal/sim/trace"
	"leakbound/internal/workload"
)

func TestRecordReplayRoundTrip(t *testing.T) {
	s, err := Parse(validSpec())
	if err != nil {
		t.Fatal(err)
	}
	w, err := s.Compile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := Record(&buf, w)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("recorded zero instructions")
	}
	r, err := ReadReplay(bytes.NewReader(buf.Bytes()), "replayed")
	if err != nil {
		t.Fatal(err)
	}
	if uint64(r.Len()) != n {
		t.Fatalf("replay has %d instrs, recorded %d", r.Len(), n)
	}
	orig := collect(w, 0)
	played := collect(r, 0)
	if !reflect.DeepEqual(orig, played) {
		t.Fatal("replayed stream differs from the original")
	}
	// The scenario shape: name, digest, scale-independence.
	if r.ScenarioName() != "replayed" {
		t.Errorf("ScenarioName = %q", r.ScenarioName())
	}
	if len(r.ScenarioDigest()) != 64 {
		t.Errorf("digest %q is not hex sha256", r.ScenarioDigest())
	}
	for _, scale := range []float64{0.25, 1, 4} {
		rw, err := r.Workload(scale)
		if err != nil {
			t.Fatal(err)
		}
		if got := len(collect(rw, 0)); uint64(got) != n {
			t.Errorf("scale %g changed replay length to %d", scale, got)
		}
	}
}

func TestReadReplayRejectsCacheEvents(t *testing.T) {
	var st trace.Stream
	if err := st.Append(trace.Event{Cycle: 0, Cache: trace.L1D, Kind: trace.Load}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.WriteTagged(&buf, trace.CacheEvents, &st); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadReplay(bytes.NewReader(buf.Bytes()), "x"); err == nil {
		t.Fatal("cache-event trace accepted as replay")
	}
	// v1 files are cache events by definition.
	buf.Reset()
	if err := trace.Write(&buf, &st); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadReplay(bytes.NewReader(buf.Bytes()), "x"); err == nil {
		t.Fatal("v1 trace accepted as replay")
	}
	if _, err := ReadReplay(bytes.NewReader(nil), "Bad Name!"); err == nil {
		t.Fatal("invalid replay name accepted")
	}
}

func TestReplayFile(t *testing.T) {
	s, err := Parse(validSpec())
	if err != nil {
		t.Fatal(err)
	}
	w, err := s.Compile(0.25)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "my-recording.trc")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Record(f, w); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := ReplayFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if r.ScenarioName() != "my-recording" {
		t.Errorf("name from file = %q", r.ScenarioName())
	}
	if _, err := ReplayFile(filepath.Join(dir, "missing.trc")); err == nil {
		t.Error("missing file accepted")
	}
}

// simulateBoth runs a workload through the paper's hierarchy with interval
// collection on both L1 sides, exactly as the experiment suite does, and
// returns the serialized distributions (byte comparison catches any drift,
// including flags and tails).
func simulateBoth(t *testing.T, w workload.Workload) (iRaw, dRaw []byte, iDist, dDist *interval.Distribution) {
	t.Helper()
	hier, err := cache.NewHierarchy(cache.AlphaLike())
	if err != nil {
		t.Fatal(err)
	}
	iClass, err := prefetch.NewClassifier(prefetch.ForICache())
	if err != nil {
		t.Fatal(err)
	}
	dClass, err := prefetch.NewClassifier(prefetch.ForDCache())
	if err != nil {
		t.Fatal(err)
	}
	iCol, err := interval.NewCollector(trace.L1I, uint32(hier.L1I().Config().NumLines()), iClass)
	if err != nil {
		t.Fatal(err)
	}
	dCol, err := interval.NewCollector(trace.L1D, uint32(hier.L1D().Config().NumLines()), dClass)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cpu.RunStreamContext(context.Background(), w, hier, cpu.DefaultConfig(), func(b *stream.Batch) error {
		for i, n := 0, b.Len(); i < n; i++ {
			e := b.Event(i)
			switch e.Cache {
			case trace.L1I:
				if err := iCol.Add(e); err != nil {
					return err
				}
			case trace.L1D:
				if err := dCol.Add(e); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	iDist, err = iCol.Finish(res.Cycles)
	if err != nil {
		t.Fatal(err)
	}
	dDist, err = dCol.Finish(res.Cycles)
	if err != nil {
		t.Fatal(err)
	}
	var ib, db bytes.Buffer
	if err := interval.WriteDistribution(&ib, iDist); err != nil {
		t.Fatal(err)
	}
	if err := interval.WriteDistribution(&db, dDist); err != nil {
		t.Fatal(err)
	}
	return ib.Bytes(), db.Bytes(), iDist, dDist
}

// TestRecordReplayEquivalence is the pinned guarantee of the trace-replay
// path: a spec-compiled workload recorded through the trace codec and
// replayed must produce byte-identical interval distributions and
// bit-identical leakage results. `make race` runs this under the race
// detector.
func TestRecordReplayEquivalence(t *testing.T) {
	s, err := Parse(validSpec())
	if err != nil {
		t.Fatal(err)
	}
	w, err := s.Compile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := Record(&buf, w); err != nil {
		t.Fatal(err)
	}
	r, err := ReadReplay(bytes.NewReader(buf.Bytes()), "replayed")
	if err != nil {
		t.Fatal(err)
	}

	iOrig, dOrig, iDistO, dDistO := simulateBoth(t, w)
	iPlay, dPlay, iDistP, dDistP := simulateBoth(t, r)
	if !bytes.Equal(iOrig, iPlay) {
		t.Error("I-cache distributions differ between original and replay")
	}
	if !bytes.Equal(dOrig, dPlay) {
		t.Error("D-cache distributions differ between original and replay")
	}

	tech := power.Default()
	for _, pol := range []leakage.Policy{&leakage.OPTHybrid{}, &leakage.OPTDrowsy{}} {
		for _, side := range []struct {
			name string
			o, p *interval.Distribution
		}{{"icache", iDistO, iDistP}, {"dcache", dDistO, dDistP}} {
			evO, err := leakage.Evaluate(tech, side.o, pol)
			if err != nil {
				t.Fatal(err)
			}
			evP, err := leakage.Evaluate(tech, side.p, pol)
			if err != nil {
				t.Fatal(err)
			}
			if evO != evP {
				t.Errorf("%s/%s: leakage evaluation differs: %+v vs %+v",
					pol.Name(), side.name, evO, evP)
			}
		}
	}
}
