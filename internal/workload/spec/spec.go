// Package spec defines the declarative workload-spec format: a versioned,
// stdlib-only JSON description of a synthetic program — phases of weighted
// kernel mixes (loop / stride / pointer-chase / hot-scalar / mixed) under a
// phase schedule (steady, bursty, ramp, spike, drain) — that compiles
// deterministically onto workload.Builder. The same spec + seed always
// produces the identical instruction stream, so spec-defined scenarios slot
// into the experiment pipeline with the same bit-identity guarantees as the
// builtin six benchmarks.
//
// The package also provides recorded-trace scenarios: Record captures any
// Workload's instruction stream to the trace codec's v2 container, and
// Replay plays a recording back as a Workload, bit-identically.
//
// The grammar, compiler lowering, and replay semantics are documented in
// DESIGN.md §14.
package spec

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"
)

// Version is the only spec format version this package reads.
const Version = 1

// Schedule kinds.
const (
	ScheduleSteady = "steady" // uniform intensity (the default)
	ScheduleBursty = "bursty" // alternating active bursts and hot-only lulls
	ScheduleRamp   = "ramp"   // intensity grows step by step
	ScheduleSpike  = "spike"  // one step in the middle runs magnitude× hotter
	ScheduleDrain  = "drain"  // intensity decays step by step (reverse ramp)
)

// Kernel names a mix entry can use.
const (
	KernelLoop   = "loop"   // sequential sweep over a region
	KernelStride = "stride" // blocked multi-line-stride sweep
	KernelChase  = "chase"  // pointer chase over a permutation table
	KernelHot    = "hot"    // hot-scalar bursts over a few lines
	KernelMixed  = "mixed"  // canned blend: hot + stream + chase + store
)

// Validation limits. They bound memory and run length so that a hostile
// spec (fuzzing, the HTTP body path) cannot allocate or loop unboundedly.
const (
	maxNameLen    = 64
	maxPhases     = 64
	maxMix        = 32
	maxBodyInstrs = 1 << 20
	maxIterations = 1 << 28
	maxMemEvery   = 64
	maxColdCode   = 1 << 30
	maxSteps      = 64
	maxMagnitude  = 64
	maxWeight     = 1024
	maxRegion     = 1 << 30
	maxChaseElems = 1 << 16
	maxElemBytes  = 1 << 16
	maxHotLines   = 4096
)

// Spec is the top-level workload description.
type Spec struct {
	// Version must be 1.
	Version int `json:"version"`
	// Name identifies the scenario (lowercase, [a-z0-9._-], starts with a
	// letter). It must not collide with a builtin benchmark name when the
	// spec is registered with the suite.
	Name string `json:"name"`
	// Seed drives every pseudo-random choice the compiler makes (chase
	// permutations); the same spec + seed is bit-identical.
	Seed uint64 `json:"seed"`
	// Phases execute in order.
	Phases []Phase `json:"phases"`
}

// Phase is one loop nest: a code body executed for a number of iterations,
// referencing a weighted mix of data-access kernels under a schedule.
type Phase struct {
	// Name is optional, for documentation.
	Name string `json:"name,omitempty"`
	// BodyInstrs is the loop body length in instructions; its cache lines
	// are the phase's I-cache footprint.
	BodyInstrs int `json:"body_instrs"`
	// Iterations executes the body this many times (scaled by the suite's
	// workload scale).
	Iterations int `json:"iterations"`
	// MemEvery places one memory reference every N instructions
	// (default 3 — the ~1/3 density of real code).
	MemEvery int `json:"mem_every,omitempty"`
	// ColdCodeBytes leaves a never-executed text gap after this phase
	// (error paths, unexercised features).
	ColdCodeBytes uint64 `json:"cold_code_bytes,omitempty"`
	// Schedule shapes intensity over the phase (default steady).
	Schedule *Schedule `json:"schedule,omitempty"`
	// Mix is the weighted kernel rotation the phase's references cycle
	// through.
	Mix []MixEntry `json:"mix"`
}

// Schedule expresses cohort-style dynamics as iteration multipliers: the
// phase's iterations are split into chunks whose relative sizes follow the
// schedule shape. Bursty lulls run a hot-only quiet mix, so the phase's
// data structures idle between bursts — exactly the long-interval traffic
// the leakage study cares about.
type Schedule struct {
	Kind string `json:"kind"`
	// Steps is the number of schedule steps (bursts for bursty; intensity
	// steps for ramp/spike/drain). Defaults: bursty/ramp/drain 4, spike 5.
	Steps int `json:"steps,omitempty"`
	// Duty is the active fraction of each bursty period, in (0,1)
	// (default 0.5). Only valid for bursty.
	Duty float64 `json:"duty,omitempty"`
	// Magnitude is how many times hotter the spike step runs (default 8).
	// Only valid for spike.
	Magnitude int `json:"magnitude,omitempty"`
}

// MixEntry is one kernel in a phase's rotation. Weight biases the rotation
// (nil means 1; an explicit 0 disables the entry). Geometry fields apply
// per kernel:
//
//	loop:   bytes (required), stride (default 64), store
//	stride: bytes (required), block (default min(bytes, 32KB)),
//	        stride (default 128), passes (default 4)
//	chase:  elems (required), elem_bytes (default 64)
//	hot:    lines (default 12)
//	mixed:  bytes (required)
type MixEntry struct {
	Kernel    string `json:"kernel"`
	Weight    *int   `json:"weight,omitempty"`
	Bytes     uint64 `json:"bytes,omitempty"`
	Stride    uint64 `json:"stride,omitempty"`
	Block     uint64 `json:"block,omitempty"`
	Passes    int    `json:"passes,omitempty"`
	Elems     int    `json:"elems,omitempty"`
	ElemBytes uint64 `json:"elem_bytes,omitempty"`
	Lines     int    `json:"lines,omitempty"`
	Store     bool   `json:"store,omitempty"`
}

// ValidationError is a spec validation failure with the position of the
// offending field, e.g. "spec.phases[2].mix: weights sum to 0".
type ValidationError struct {
	Path string
	Msg  string
}

// Error implements error.
func (e *ValidationError) Error() string { return e.Path + ": " + e.Msg }

// errAt builds a positional validation error.
func errAt(path, format string, args ...any) error {
	return &ValidationError{Path: path, Msg: fmt.Sprintf(format, args...)}
}

// Parse strictly decodes, validates, and canonicalizes a spec: unknown
// fields are rejected, every constraint is checked with a positional
// message, and defaults are filled in so Canonical() is a fixed point
// (Parse(s.Canonical()) reproduces s exactly).
func Parse(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	// Exactly one JSON value: trailing garbage is a malformed spec.
	if dec.More() {
		return nil, errAt("spec", "trailing data after spec object")
	}
	if err := s.normalize(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Validate checks every constraint and reports the first violation with
// its position. It does not modify the spec.
func (s *Spec) Validate() error {
	if s.Version != Version {
		return errAt("spec.version", "unsupported version %d (want %d)", s.Version, Version)
	}
	if err := validateName("spec.name", s.Name); err != nil {
		return err
	}
	if len(s.Phases) == 0 {
		return errAt("spec.phases", "at least one phase required")
	}
	if len(s.Phases) > maxPhases {
		return errAt("spec.phases", "%d phases exceeds limit %d", len(s.Phases), maxPhases)
	}
	for i := range s.Phases {
		if err := s.Phases[i].validate(fmt.Sprintf("spec.phases[%d]", i)); err != nil {
			return err
		}
	}
	return nil
}

// normalize validates and fills defaults in place; idempotent.
func (s *Spec) normalize() error {
	if err := s.Validate(); err != nil {
		return err
	}
	for i := range s.Phases {
		s.Phases[i].fillDefaults()
	}
	return nil
}

// Canonical returns the canonical JSON encoding. The spec must be
// normalized (as returned by Parse); Canonical is then a fixed point of
// Parse and the input to Digest.
func (s *Spec) Canonical() []byte {
	raw, err := json.Marshal(s)
	if err != nil {
		// Spec contains only marshalable types; this cannot happen.
		panic("spec: canonical marshal failed: " + err.Error())
	}
	return raw
}

// Digest returns the hex sha256 of the canonical encoding — the identity
// the suite's disk cache and the daemon's ETags key scenario results on.
func (s *Spec) Digest() string {
	sum := sha256.Sum256(s.Canonical())
	return hex.EncodeToString(sum[:])
}

// validateName enforces the scenario-name charset: lowercase ASCII letter
// first, then [a-z0-9._-].
func validateName(path, name string) error {
	if name == "" {
		return errAt(path, "name required")
	}
	if len(name) > maxNameLen {
		return errAt(path, "name %q exceeds %d characters", name, maxNameLen)
	}
	for i, r := range name {
		ok := (r >= 'a' && r <= 'z') ||
			(i > 0 && ((r >= '0' && r <= '9') || r == '.' || r == '_' || r == '-'))
		if !ok {
			return errAt(path, "name %q: invalid character %q (want lowercase [a-z0-9._-], starting with a letter)", name, r)
		}
	}
	return nil
}

// validate checks one phase at the given path.
func (p *Phase) validate(path string) error {
	if p.Name != "" {
		if err := validateName(path+".name", p.Name); err != nil {
			return err
		}
	}
	if p.BodyInstrs <= 0 || p.BodyInstrs > maxBodyInstrs {
		return errAt(path+".body_instrs", "must be in [1, %d], got %d", maxBodyInstrs, p.BodyInstrs)
	}
	if p.Iterations <= 0 || p.Iterations > maxIterations {
		return errAt(path+".iterations", "must be in [1, %d], got %d", maxIterations, p.Iterations)
	}
	if p.MemEvery < 0 || p.MemEvery > maxMemEvery {
		return errAt(path+".mem_every", "must be in [0, %d], got %d", maxMemEvery, p.MemEvery)
	}
	if p.ColdCodeBytes > maxColdCode {
		return errAt(path+".cold_code_bytes", "%d exceeds limit %d", p.ColdCodeBytes, maxColdCode)
	}
	if p.Schedule != nil {
		if err := p.Schedule.validate(path + ".schedule"); err != nil {
			return err
		}
	}
	if len(p.Mix) == 0 {
		return errAt(path+".mix", "at least one kernel required")
	}
	if len(p.Mix) > maxMix {
		return errAt(path+".mix", "%d entries exceeds limit %d", len(p.Mix), maxMix)
	}
	totalWeight := 0
	for i := range p.Mix {
		if err := p.Mix[i].validate(fmt.Sprintf("%s.mix[%d]", path, i)); err != nil {
			return err
		}
		if w := p.Mix[i].Weight; w != nil {
			totalWeight += *w
		} else {
			totalWeight++
		}
	}
	if totalWeight == 0 {
		return errAt(path+".mix", "weights sum to 0")
	}
	return nil
}

// fillDefaults canonicalizes one phase after validation.
func (p *Phase) fillDefaults() {
	if p.MemEvery == 0 {
		p.MemEvery = 3
	}
	if p.Schedule == nil {
		p.Schedule = &Schedule{Kind: ScheduleSteady}
	}
	p.Schedule.fillDefaults()
	for i := range p.Mix {
		p.Mix[i].fillDefaults()
	}
}

// validate checks schedule shape constraints.
func (sc *Schedule) validate(path string) error {
	switch sc.Kind {
	case ScheduleSteady:
		if sc.Steps != 0 || sc.Duty != 0 || sc.Magnitude != 0 {
			return errAt(path, "steady takes no steps/duty/magnitude")
		}
	case ScheduleBursty:
		if sc.Steps < 0 || sc.Steps > maxSteps {
			return errAt(path+".steps", "must be in [1, %d], got %d", maxSteps, sc.Steps)
		}
		if sc.Duty != 0 && (sc.Duty <= 0 || sc.Duty >= 1) {
			return errAt(path+".duty", "must be in (0, 1), got %g", sc.Duty)
		}
		if sc.Magnitude != 0 {
			return errAt(path+".magnitude", "does not apply to kind %q", sc.Kind)
		}
	case ScheduleRamp, ScheduleDrain:
		if sc.Steps < 0 || sc.Steps == 1 || sc.Steps > maxSteps {
			return errAt(path+".steps", "must be in [2, %d], got %d", maxSteps, sc.Steps)
		}
		if sc.Duty != 0 {
			return errAt(path+".duty", "does not apply to kind %q", sc.Kind)
		}
		if sc.Magnitude != 0 {
			return errAt(path+".magnitude", "does not apply to kind %q", sc.Kind)
		}
	case ScheduleSpike:
		if sc.Steps < 0 || (sc.Steps > 0 && sc.Steps < 3) || sc.Steps > maxSteps {
			return errAt(path+".steps", "must be in [3, %d], got %d", maxSteps, sc.Steps)
		}
		if sc.Magnitude < 0 || sc.Magnitude == 1 || sc.Magnitude > maxMagnitude {
			return errAt(path+".magnitude", "must be in [2, %d], got %d", maxMagnitude, sc.Magnitude)
		}
		if sc.Duty != 0 {
			return errAt(path+".duty", "does not apply to kind %q", sc.Kind)
		}
	default:
		return errAt(path+".kind", "unknown schedule kind %q (want %s)", sc.Kind,
			strings.Join([]string{ScheduleSteady, ScheduleBursty, ScheduleRamp, ScheduleSpike, ScheduleDrain}, "|"))
	}
	return nil
}

// fillDefaults canonicalizes a validated schedule.
func (sc *Schedule) fillDefaults() {
	switch sc.Kind {
	case ScheduleBursty:
		if sc.Steps == 0 {
			sc.Steps = 4
		}
		if sc.Duty == 0 {
			sc.Duty = 0.5
		}
	case ScheduleRamp, ScheduleDrain:
		if sc.Steps == 0 {
			sc.Steps = 4
		}
	case ScheduleSpike:
		if sc.Steps == 0 {
			sc.Steps = 5
		}
		if sc.Magnitude == 0 {
			sc.Magnitude = 8
		}
	}
}

// validate checks one mix entry: weight range, kernel name, per-kernel
// geometry, and that no field foreign to the kernel is set.
func (m *MixEntry) validate(path string) error {
	if m.Weight != nil && (*m.Weight < 0 || *m.Weight > maxWeight) {
		return errAt(path+".weight", "must be in [0, %d], got %d", maxWeight, *m.Weight)
	}
	if err := m.forbidForeign(path); err != nil {
		return err
	}
	switch m.Kernel {
	case KernelLoop:
		if m.Bytes < 64 || m.Bytes > maxRegion {
			return errAt(path+".bytes", "must be in [64, %d], got %d", maxRegion, m.Bytes)
		}
		if m.Stride > m.Bytes {
			return errAt(path+".stride", "stride %d exceeds region of %d bytes", m.Stride, m.Bytes)
		}
	case KernelStride:
		if m.Bytes < 128 || m.Bytes > maxRegion {
			return errAt(path+".bytes", "must be in [128, %d], got %d", maxRegion, m.Bytes)
		}
		block := m.Block
		if block == 0 {
			block = defaultBlock(m.Bytes)
		}
		if block < 64 || block > m.Bytes {
			return errAt(path+".block", "must be in [64, bytes], got %d", m.Block)
		}
		stride := m.Stride
		if stride == 0 {
			stride = defaultStride(block)
		}
		if stride < 64 || stride > block {
			return errAt(path+".stride", "must be in [64, block], got %d", m.Stride)
		}
		if m.Passes < 0 || m.Passes > 64 {
			return errAt(path+".passes", "must be in [1, 64], got %d", m.Passes)
		}
	case KernelChase:
		if m.Elems < 2 || m.Elems > maxChaseElems {
			return errAt(path+".elems", "must be in [2, %d], got %d", maxChaseElems, m.Elems)
		}
		if m.ElemBytes != 0 && (m.ElemBytes < 8 || m.ElemBytes > maxElemBytes) {
			return errAt(path+".elem_bytes", "must be in [8, %d], got %d", maxElemBytes, m.ElemBytes)
		}
	case KernelHot:
		if m.Lines < 0 || m.Lines > maxHotLines {
			return errAt(path+".lines", "must be in [1, %d], got %d", maxHotLines, m.Lines)
		}
	case KernelMixed:
		if m.Bytes < 4096 || m.Bytes > maxRegion {
			return errAt(path+".bytes", "must be in [4096, %d], got %d", maxRegion, m.Bytes)
		}
	default:
		return errAt(path+".kernel", "unknown kernel %q (want %s)", m.Kernel,
			strings.Join([]string{KernelLoop, KernelStride, KernelChase, KernelHot, KernelMixed}, "|"))
	}
	return nil
}

// kernelFields maps each kernel to the geometry fields it accepts.
var kernelFields = map[string]map[string]bool{
	KernelLoop:   {"bytes": true, "stride": true, "store": true},
	KernelStride: {"bytes": true, "block": true, "stride": true, "passes": true},
	KernelChase:  {"elems": true, "elem_bytes": true},
	KernelHot:    {"lines": true},
	KernelMixed:  {"bytes": true},
}

// forbidForeign rejects geometry fields that do not apply to the kernel;
// an unknown kernel is reported by validate's switch instead.
func (m *MixEntry) forbidForeign(path string) error {
	allowed, known := kernelFields[m.Kernel]
	if !known {
		return nil
	}
	set := []struct {
		name string
		used bool
	}{
		{"bytes", m.Bytes != 0},
		{"stride", m.Stride != 0},
		{"block", m.Block != 0},
		{"passes", m.Passes != 0},
		{"elems", m.Elems != 0},
		{"elem_bytes", m.ElemBytes != 0},
		{"lines", m.Lines != 0},
		{"store", m.Store},
	}
	for _, f := range set {
		if f.used && !allowed[f.name] {
			return errAt(path, "field %q does not apply to kernel %q", f.name, m.Kernel)
		}
	}
	return nil
}

// fillDefaults canonicalizes a validated mix entry.
func (m *MixEntry) fillDefaults() {
	if m.Weight == nil {
		one := 1
		m.Weight = &one
	}
	switch m.Kernel {
	case KernelLoop:
		if m.Stride == 0 {
			m.Stride = 64
		}
	case KernelStride:
		if m.Block == 0 {
			m.Block = defaultBlock(m.Bytes)
		}
		if m.Stride == 0 {
			m.Stride = defaultStride(m.Block)
		}
		if m.Passes == 0 {
			m.Passes = 4
		}
	case KernelChase:
		if m.ElemBytes == 0 {
			m.ElemBytes = 64
		}
	case KernelHot:
		if m.Lines == 0 {
			m.Lines = 12
		}
	}
}

// defaultBlock picks the stride kernel's default re-sweep block.
func defaultBlock(regionBytes uint64) uint64 {
	if regionBytes < 32<<10 {
		return regionBytes
	}
	return 32 << 10
}

// defaultStride picks the stride kernel's default line-skipping stride,
// never exceeding the block it sweeps.
func defaultStride(block uint64) uint64 {
	if block < 128 {
		return block
	}
	return 128
}
