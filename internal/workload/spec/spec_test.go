package spec

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"

	"leakbound/internal/workload"
)

// validSpec returns a spec JSON exercising every kernel and a schedule.
func validSpec() []byte {
	return []byte(`{
		"version": 1,
		"name": "test-mix",
		"seed": 42,
		"phases": [
			{
				"name": "warmup",
				"body_instrs": 400,
				"iterations": 20,
				"mix": [
					{"kernel": "hot", "lines": 8},
					{"kernel": "loop", "weight": 2, "bytes": 65536, "stride": 64}
				]
			},
			{
				"body_instrs": 900,
				"iterations": 60,
				"mem_every": 4,
				"cold_code_bytes": 8192,
				"schedule": {"kind": "bursty", "steps": 3, "duty": 0.25},
				"mix": [
					{"kernel": "chase", "weight": 1, "elems": 512},
					{"kernel": "stride", "bytes": 262144, "block": 32768, "stride": 128, "passes": 4},
					{"kernel": "loop", "weight": 3, "bytes": 131072, "store": true},
					{"kernel": "mixed", "bytes": 16384}
				]
			}
		]
	}`)
}

func TestParseValid(t *testing.T) {
	s, err := Parse(validSpec())
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "test-mix" || s.Seed != 42 || len(s.Phases) != 2 {
		t.Fatalf("parsed spec: %+v", s)
	}
	// Defaults filled.
	if s.Phases[0].MemEvery != 3 {
		t.Errorf("mem_every default = %d, want 3", s.Phases[0].MemEvery)
	}
	if s.Phases[0].Schedule == nil || s.Phases[0].Schedule.Kind != ScheduleSteady {
		t.Errorf("schedule default = %+v", s.Phases[0].Schedule)
	}
	if w := s.Phases[0].Mix[0].Weight; w == nil || *w != 1 {
		t.Errorf("weight default = %v", w)
	}
	if s.Phases[1].Mix[2].Stride != 64 {
		t.Errorf("loop stride default = %d", s.Phases[1].Mix[2].Stride)
	}
	if s.Phases[1].Mix[0].ElemBytes != 64 {
		t.Errorf("elem_bytes default = %d", s.Phases[1].Mix[0].ElemBytes)
	}
}

func TestCanonicalFixedPoint(t *testing.T) {
	s, err := Parse(validSpec())
	if err != nil {
		t.Fatal(err)
	}
	canon := s.Canonical()
	s2, err := Parse(canon)
	if err != nil {
		t.Fatalf("reparse of canonical form: %v", err)
	}
	if !reflect.DeepEqual(s, s2) {
		t.Errorf("canonical reparse differs:\n%+v\n%+v", s, s2)
	}
	if !bytes.Equal(canon, s2.Canonical()) {
		t.Error("canonical encoding is not a fixed point")
	}
	if s.Digest() != s2.Digest() {
		t.Error("digest changed across canonical round trip")
	}
	if len(s.Digest()) != 64 {
		t.Errorf("digest %q is not hex sha256", s.Digest())
	}
}

// TestValidationMessages pins the positional error format, including the
// exact "weights sum to 0" message the issue specifies.
func TestValidationMessages(t *testing.T) {
	cases := []struct {
		name string
		json string
		want string
	}{
		{
			"weights sum to zero",
			`{"version":1,"name":"x","phases":[
				{"body_instrs":100,"iterations":1,"mix":[{"kernel":"hot"}]},
				{"body_instrs":100,"iterations":1,"mix":[{"kernel":"hot"}]},
				{"body_instrs":100,"iterations":1,"mix":[
					{"kernel":"hot","weight":0},{"kernel":"loop","weight":0,"bytes":4096}]}]}`,
			"spec.phases[2].mix: weights sum to 0",
		},
		{
			"bad version",
			`{"version":7,"name":"x","phases":[]}`,
			"spec.version: unsupported version 7",
		},
		{
			"missing name",
			`{"version":1,"phases":[]}`,
			"spec.name: name required",
		},
		{
			"bad name charset",
			`{"version":1,"name":"Nope!","phases":[]}`,
			"spec.name: name \"Nope!\"",
		},
		{
			"no phases",
			`{"version":1,"name":"x","phases":[]}`,
			"spec.phases: at least one phase required",
		},
		{
			"bad body",
			`{"version":1,"name":"x","phases":[{"body_instrs":0,"iterations":1,"mix":[{"kernel":"hot"}]}]}`,
			"spec.phases[0].body_instrs:",
		},
		{
			"bad kernel",
			`{"version":1,"name":"x","phases":[{"body_instrs":10,"iterations":1,"mix":[{"kernel":"zap"}]}]}`,
			"spec.phases[0].mix[0].kernel: unknown kernel \"zap\"",
		},
		{
			"foreign field",
			`{"version":1,"name":"x","phases":[{"body_instrs":10,"iterations":1,"mix":[{"kernel":"loop","bytes":4096,"lines":4}]}]}`,
			"spec.phases[0].mix[0]: field \"lines\" does not apply to kernel \"loop\"",
		},
		{
			"bad schedule kind",
			`{"version":1,"name":"x","phases":[{"body_instrs":10,"iterations":1,"schedule":{"kind":"diurnal"},"mix":[{"kernel":"hot"}]}]}`,
			"spec.phases[0].schedule.kind: unknown schedule kind \"diurnal\"",
		},
		{
			"steady with steps",
			`{"version":1,"name":"x","phases":[{"body_instrs":10,"iterations":1,"schedule":{"kind":"steady","steps":3},"mix":[{"kernel":"hot"}]}]}`,
			"spec.phases[0].schedule: steady takes no steps/duty/magnitude",
		},
		{
			"bad duty",
			`{"version":1,"name":"x","phases":[{"body_instrs":10,"iterations":1,"schedule":{"kind":"bursty","duty":1.5},"mix":[{"kernel":"hot"}]}]}`,
			"spec.phases[0].schedule.duty: must be in (0, 1)",
		},
		{
			"chase without elems",
			`{"version":1,"name":"x","phases":[{"body_instrs":10,"iterations":1,"mix":[{"kernel":"chase"}]}]}`,
			"spec.phases[0].mix[0].elems:",
		},
		{
			"negative weight",
			`{"version":1,"name":"x","phases":[{"body_instrs":10,"iterations":1,"mix":[{"kernel":"hot","weight":-1}]}]}`,
			"spec.phases[0].mix[0].weight:",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.json))
			if err == nil {
				t.Fatal("expected error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not contain %q", err, tc.want)
			}
			var ve *ValidationError
			if !errors.As(err, &ve) {
				t.Errorf("error is %T, not *ValidationError", err)
			}
		})
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	_, err := Parse([]byte(`{"version":1,"name":"x","frobnicate":true,"phases":[]}`))
	if err == nil {
		t.Fatal("unknown top-level field accepted")
	}
	_, err = Parse([]byte(`{"version":1,"name":"x","phases":[{"body_instrs":10,"iterations":1,"mix":[{"kernel":"hot","color":"red"}]}]}`))
	if err == nil {
		t.Fatal("unknown mix field accepted")
	}
	_, err = Parse([]byte(`{"version":1,"name":"x","phases":[]} trailing`))
	if err == nil {
		t.Fatal("trailing data accepted")
	}
}

func TestCompileDeterminism(t *testing.T) {
	s, err := Parse(validSpec())
	if err != nil {
		t.Fatal(err)
	}
	w1, err := s.Compile(1)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := s.Compile(1)
	if err != nil {
		t.Fatal(err)
	}
	a := collect(w1, 0)
	if len(a) == 0 {
		t.Fatal("compiled workload emitted nothing")
	}
	if !reflect.DeepEqual(a, collect(w2, 0)) {
		t.Error("two compilations of the same spec differ")
	}
	// Restartability: a second Emit on the same Workload is identical.
	if !reflect.DeepEqual(a, collect(w1, 0)) {
		t.Error("second Emit differs from the first")
	}
}

func TestCompileSeedChangesStream(t *testing.T) {
	src := validSpec()
	s1, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Parse(bytes.Replace(src, []byte(`"seed": 42`), []byte(`"seed": 43`), 1))
	if err != nil {
		t.Fatal(err)
	}
	if s1.Digest() == s2.Digest() {
		t.Fatal("different seeds, same digest")
	}
	w1, err := s1.Compile(1)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := s2.Compile(1)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(collect(w1, 0), collect(w2, 0)) {
		t.Error("different seeds produced identical streams (chase tables should differ)")
	}
}

func TestCompileScale(t *testing.T) {
	s, err := Parse(validSpec())
	if err != nil {
		t.Fatal(err)
	}
	full, err := s.Compile(1)
	if err != nil {
		t.Fatal(err)
	}
	half, err := s.Compile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	nFull, _ := workload.Count(full)
	nHalf, _ := workload.Count(half)
	if nHalf >= nFull || nHalf == 0 {
		t.Errorf("scale 0.5 emitted %d instrs vs %d at scale 1", nHalf, nFull)
	}
	if _, err := s.Compile(0); err == nil {
		t.Error("scale 0 accepted")
	}
}

func TestCompileEarlyStop(t *testing.T) {
	s, err := Parse(validSpec())
	if err != nil {
		t.Fatal(err)
	}
	w, err := s.Compile(1)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	w.Emit(func(workload.Instr) bool {
		n++
		return n < 10
	})
	if n != 10 {
		t.Errorf("yield=false stopped after %d instrs, want 10", n)
	}
}

func TestScheduleShapes(t *testing.T) {
	for _, kind := range []string{ScheduleSteady, ScheduleBursty, ScheduleRamp, ScheduleSpike, ScheduleDrain} {
		sched := `"schedule":{"kind":"` + kind + `"},`
		if kind == ScheduleSteady {
			sched = ""
		}
		src := `{"version":1,"name":"s-` + kind + `","seed":7,"phases":[
			{"body_instrs":300,"iterations":64,` + sched + `
			 "mix":[{"kernel":"loop","bytes":65536}]}]}`
		s, err := Parse([]byte(src))
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		w, err := s.Compile(1)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		total, memFrac := workload.Count(w)
		if total == 0 {
			t.Errorf("%s: empty stream", kind)
		}
		if memFrac <= 0 || memFrac >= 1 {
			t.Errorf("%s: memFrac %g out of range", kind, memFrac)
		}
	}
}

// TestScheduleSplitPreservesIterations checks the exact-integer split.
func TestScheduleSplitPreservesIterations(t *testing.T) {
	for _, sc := range []*Schedule{
		{Kind: ScheduleSteady},
		{Kind: ScheduleBursty, Steps: 3, Duty: 0.25},
		{Kind: ScheduleRamp, Steps: 5},
		{Kind: ScheduleDrain, Steps: 4},
		{Kind: ScheduleSpike, Steps: 7, Magnitude: 10},
	} {
		chunks := scheduleChunks(sc)
		for _, total := range []int{1, 7, 100, 12345} {
			got := splitIterations(total, chunks)
			sum := 0
			for _, n := range got {
				sum += n
			}
			if sum != total {
				t.Errorf("%s/%d: split sums to %d", sc.Kind, total, sum)
			}
		}
	}
}

func TestSpecScenarioShape(t *testing.T) {
	s, err := Parse(validSpec())
	if err != nil {
		t.Fatal(err)
	}
	if s.ScenarioName() != "test-mix" {
		t.Errorf("ScenarioName = %q", s.ScenarioName())
	}
	if s.ScenarioDigest() != s.Digest() {
		t.Error("ScenarioDigest != Digest")
	}
	w, err := s.Workload(0.25)
	if err != nil {
		t.Fatal(err)
	}
	if w.Name() != "test-mix" {
		t.Errorf("workload name = %q", w.Name())
	}
	if w.Description() == "" {
		t.Error("empty description")
	}
}

// collect gathers up to limit instructions (0 = all).
func collect(w workload.Workload, limit int) []workload.Instr {
	var out []workload.Instr
	w.Emit(func(in workload.Instr) bool {
		out = append(out, in)
		return limit == 0 || len(out) < limit
	})
	return out
}
