package spec

// Recorded-trace scenarios: Record captures a Workload's instruction
// stream into the trace codec's v2 container (content kind
// InstrRecording), and Replay plays a recording back as a Workload whose
// Emit reproduces the original stream bit-identically. The mapping is
// lossless: Cycle carries the instruction index, LineAddr the byte
// address, PC the static address, and Kind maps Op→Fetch, Load→Load,
// Store→Store.

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"leakbound/internal/sim/trace"
	"leakbound/internal/workload"
)

// Record writes wl's full instruction stream to w as an instruction
// recording and returns the number of instructions captured.
func Record(w io.Writer, wl workload.Workload) (uint64, error) {
	tw, err := trace.NewWriter(w, trace.InstrRecording, 0)
	if err != nil {
		return 0, err
	}
	var idx uint64
	var emitErr error
	wl.Emit(func(in workload.Instr) bool {
		e := trace.Event{
			Cycle:    idx,
			LineAddr: in.Addr,
			PC:       in.PC,
			Cache:    trace.L1I,
			Kind:     recordKind(in.Kind),
		}
		if err := tw.Append(e); err != nil {
			emitErr = err
			return false
		}
		idx++
		return true
	})
	if emitErr != nil {
		return idx, emitErr
	}
	return idx, tw.Close()
}

// recordKind maps an instruction kind onto the trace codec's access kinds.
func recordKind(k workload.InstrKind) trace.Kind {
	switch k {
	case workload.Load:
		return trace.Load
	case workload.Store:
		return trace.Store
	default:
		return trace.Fetch
	}
}

// replayKind inverts recordKind.
func replayKind(k trace.Kind) workload.InstrKind {
	switch k {
	case trace.Load:
		return workload.Load
	case trace.Store:
		return workload.Store
	default:
		return workload.Op
	}
}

// Replay is a recorded instruction stream played back as a Workload. It
// also implements the suite's Scenario shape (ScenarioName /
// ScenarioDigest / Workload), so recordings register next to spec-defined
// and builtin benchmarks. Replays are fixed recordings: the suite's scale
// does not stretch them.
type Replay struct {
	name   string
	digest string
	instrs []workload.Instr
}

// Name implements workload.Workload.
func (r *Replay) Name() string { return r.name }

// Description implements workload.Workload.
func (r *Replay) Description() string {
	return fmt.Sprintf("recorded-trace replay (%d instructions)", len(r.instrs))
}

// Emit implements workload.Workload: the identical stream on every call.
//
//lint:hotpath
func (r *Replay) Emit(yield func(workload.Instr) bool) {
	for _, in := range r.instrs {
		//lint:ignore hotalloc yield is the workload iterator contract; the consumer's call site devirtualizes after inlining
		if !yield(in) {
			return
		}
	}
}

// Len returns the number of recorded instructions.
func (r *Replay) Len() int { return len(r.instrs) }

// ScenarioName names the scenario for suite registration.
func (r *Replay) ScenarioName() string { return r.name }

// ScenarioDigest is the hex sha256 of the recording's raw bytes.
func (r *Replay) ScenarioDigest() string { return r.digest }

// Workload returns the replay itself; recordings have a fixed length, so
// scale is ignored.
func (r *Replay) Workload(scale float64) (workload.Workload, error) { return r, nil }

// ReadReplay decodes an instruction recording into a Replay named name.
// Files holding timed cache events (tracegen's default output) are
// rejected: they have lost the instruction stream and cannot be replayed.
func ReadReplay(rd io.Reader, name string) (*Replay, error) {
	if err := validateName("replay.name", name); err != nil {
		return nil, err
	}
	h := sha256.New()
	tg, err := trace.ReadTagged(io.TeeReader(rd, h))
	if err != nil {
		return nil, err
	}
	if tg.Content != trace.InstrRecording {
		return nil, fmt.Errorf("spec: trace holds %s, not an instruction recording (record with tracegen -record)", tg.Content)
	}
	instrs := make([]workload.Instr, len(tg.Stream.Events))
	for i := range tg.Stream.Events {
		e := &tg.Stream.Events[i]
		instrs[i] = workload.Instr{
			PC:   e.PC,
			Addr: e.LineAddr,
			Kind: replayKind(e.Kind),
		}
	}
	return &Replay{
		name:   name,
		digest: hex.EncodeToString(h.Sum(nil)),
		instrs: instrs,
	}, nil
}

// ReplayFile loads a recording from path; the scenario takes the file's
// base name without extension.
func ReplayFile(path string) (*Replay, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	r, err := ReadReplay(f, name)
	if err != nil {
		return nil, fmt.Errorf("spec: %s: %w", path, err)
	}
	return r, nil
}
