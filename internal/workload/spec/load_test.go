package spec

import (
	"os"
	"path/filepath"
	"testing"
)

func TestLoadFileAndDir(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("b-spec.json", `{"version":1,"name":"beta","seed":2,"phases":[
		{"body_instrs":64,"iterations":2,"mix":[{"kernel":"hot"}]}]}`)
	write("a-spec.json", `{"version":1,"name":"alpha","seed":1,"phases":[
		{"body_instrs":64,"iterations":2,"mix":[{"kernel":"loop","bytes":4096}]}]}`)
	write("notes.txt", "ignored")

	// A recording rides along as a .trc.
	s, err := Parse([]byte(`{"version":1,"name":"rec","seed":3,"phases":[
		{"body_instrs":64,"iterations":2,"mix":[{"kernel":"hot"}]}]}`))
	if err != nil {
		t.Fatal(err)
	}
	w, err := s.Compile(1)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(filepath.Join(dir, "c-recording.trc"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Record(f, w); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	srcs, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, src := range srcs {
		names = append(names, src.ScenarioName())
	}
	// Sorted by file name: a-spec, b-spec, c-recording.
	want := []string{"alpha", "beta", "c-recording"}
	if len(names) != len(want) {
		t.Fatalf("loaded %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("loaded %v, want %v", names, want)
		}
	}
	for _, src := range srcs {
		wl, err := src.Workload(1)
		if err != nil {
			t.Fatalf("%s: %v", src.ScenarioName(), err)
		}
		if n := len(collect(wl, 16)); n == 0 {
			t.Errorf("%s: empty workload", src.ScenarioName())
		}
		if src.ScenarioDigest() == "" {
			t.Errorf("%s: empty digest", src.ScenarioName())
		}
	}

	// Errors: duplicate scenario names, invalid spec, bad extension.
	write("z-dup.json", `{"version":1,"name":"alpha","seed":9,"phases":[
		{"body_instrs":64,"iterations":2,"mix":[{"kernel":"hot"}]}]}`)
	if _, err := LoadDir(dir); err == nil {
		t.Error("duplicate scenario names accepted")
	}
	if err := os.Remove(filepath.Join(dir, "z-dup.json")); err != nil {
		t.Fatal(err)
	}
	write("broken.json", `{"version":99}`)
	if _, err := LoadDir(dir); err == nil {
		t.Error("invalid spec accepted")
	}
	if _, err := LoadFile(filepath.Join(dir, "notes.txt")); err == nil {
		t.Error("unsupported extension accepted")
	}
	if _, err := LoadDir(filepath.Join(dir, "missing")); err == nil {
		t.Error("missing dir accepted")
	}
}
