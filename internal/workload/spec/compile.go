package spec

// The compiler lowers a validated spec onto workload.Builder. Lowering is
// fully deterministic: the spec's seed derives every chase permutation, the
// schedule split uses exact integer arithmetic, and the compiled Workload
// rebuilds its Builder state on every Emit call so the stream is
// restartable (the Workload contract) and bit-identical across calls.

import (
	"fmt"

	"leakbound/internal/workload"
)

// Compile lowers the spec to a deterministic Workload at the given scale.
// Scale stretches per-phase iteration counts exactly as it stretches the
// builtin benchmarks. The spec is normalized (validated + defaults filled)
// in place.
func (s *Spec) Compile(scale float64) (workload.Workload, error) {
	if scale <= 0 {
		return nil, fmt.Errorf("spec: non-positive scale %g", scale)
	}
	if err := s.normalize(); err != nil {
		return nil, err
	}
	c := &compiled{spec: s, scale: scale}
	// Lower once eagerly so geometry errors surface at compile time, not
	// mid-emission.
	if _, err := c.lower(); err != nil {
		return nil, err
	}
	return c, nil
}

// ScenarioName names the scenario for suite registration
// (experiments.Scenario).
func (s *Spec) ScenarioName() string { return s.Name }

// ScenarioDigest identifies the scenario's content for cache keys
// (experiments.Scenario).
func (s *Spec) ScenarioDigest() string { return s.Digest() }

// Workload compiles the spec at the suite's scale (experiments.Scenario).
func (s *Spec) Workload(scale float64) (workload.Workload, error) {
	return s.Compile(scale)
}

// compiled is a spec bound to a scale. Emit re-lowers on every call: the
// Builder's access-pattern cursors are stateful, so sharing one lowering
// across Emit calls would break restartability.
type compiled struct {
	spec  *Spec
	scale float64
}

// Name implements workload.Workload.
func (c *compiled) Name() string { return c.spec.Name }

// Description implements workload.Workload.
func (c *compiled) Description() string {
	return fmt.Sprintf("spec-defined workload (%d phases, seed %d)", len(c.spec.Phases), c.spec.Seed)
}

// Emit implements workload.Workload.
func (c *compiled) Emit(yield func(workload.Instr) bool) {
	wl, err := c.lower()
	if err != nil {
		// Compile already lowered this exact spec successfully and lowering
		// is deterministic, so this is unreachable.
		panic("spec: re-lowering validated spec failed: " + err.Error())
	}
	wl.Emit(yield)
}

// lower builds the Builder program for the spec.
func (c *compiled) lower() (workload.Workload, error) {
	b := workload.NewBuilder(c.spec.Name)
	for pi := range c.spec.Phases {
		ph := &c.spec.Phases[pi]
		loads, stores, weights := c.phasePatterns(b, pi, ph)
		chunks := scheduleChunks(ph.Schedule)
		iters := splitIterations(scaledIters(ph.Iterations, c.scale), chunks)
		// The quiet pattern is shared by every lull of this phase: a few
		// hot lines keep the core busy while the phase's data structures
		// idle — which is what opens the long intervals bursty traffic
		// exists to create.
		var quiet workload.Pattern
		first := true
		for ci, ch := range chunks {
			if iters[ci] == 0 {
				continue
			}
			ps := workload.PhaseSpec{
				BodyInstrs: ph.BodyInstrs,
				Iterations: iters[ci],
				MemEvery:   ph.MemEvery,
				ReuseBody:  !first,
			}
			if ch.quiet {
				if quiet == nil {
					quiet = b.Hot(4)
				}
				ps.Loads = []workload.Pattern{quiet}
			} else {
				ps.Loads, ps.Stores, ps.Weights = loads, stores, weights
			}
			b.Phase(ps)
			first = false
		}
		if ph.ColdCodeBytes > 0 {
			b.SkipCode(ph.ColdCodeBytes)
		}
	}
	return b.Build()
}

// phasePatterns instantiates the phase's kernel mix once, so pattern
// cursors carry across schedule chunks (the data structure persists while
// the schedule modulates how hard it is driven).
func (c *compiled) phasePatterns(b *workload.Builder, pi int, ph *Phase) (loads, stores []workload.Pattern, weights []int) {
	var loadW, storeW []int
	chaseIdx := 0
	addLoad := func(p workload.Pattern, w int) {
		loads = append(loads, p)
		loadW = append(loadW, w)
	}
	addStore := func(p workload.Pattern, w int) {
		stores = append(stores, p)
		storeW = append(storeW, w)
	}
	chaseSeed := func() uint64 {
		chaseIdx++
		return deriveSeed(c.spec.Seed, pi, chaseIdx)
	}
	for i := range ph.Mix {
		m := &ph.Mix[i]
		w := *m.Weight
		if w == 0 {
			continue // explicitly disabled entry
		}
		switch m.Kernel {
		case KernelLoop:
			p := b.Sequential(m.Bytes, m.Stride)
			if m.Store {
				addStore(p, w)
			} else {
				addLoad(p, w)
			}
		case KernelStride:
			addLoad(b.Strided(m.Bytes, m.Block, m.Stride, m.Passes), w)
		case KernelChase:
			addLoad(b.Chase(m.Elems, m.ElemBytes, chaseSeed()), w)
		case KernelHot:
			addLoad(b.Hot(m.Lines), w)
		case KernelMixed:
			// A canned blend of the four behaviours over one footprint:
			// dominant hot-scalar traffic, a streaming sweep, a pointer
			// chase, and a write-back stream.
			addLoad(b.Hot(12), 4*w)
			addLoad(b.Sequential(m.Bytes, 64), 2*w)
			addLoad(b.Chase(mixedChaseElems(m.Bytes), 64, chaseSeed()), w)
			addStore(b.Sequential(m.Bytes, 64), w)
		}
	}
	weights = append(loadW, storeW...)
	return loads, stores, weights
}

// mixedChaseElems sizes the mixed kernel's chase table to a quarter of the
// footprint, within the chase limits.
func mixedChaseElems(bytes uint64) int {
	elems := bytes / 256
	if elems < 2 {
		elems = 2
	}
	if elems > maxChaseElems {
		elems = maxChaseElems
	}
	return int(elems)
}

// deriveSeed mixes the spec seed with the chase's position so every chase
// table gets an independent, reproducible permutation (SplitMix64 finalizer,
// the same generator the workload kernels use).
func deriveSeed(seed uint64, phase, entry int) uint64 {
	z := seed + 0x9E3779B97F4A7C15*uint64(phase*maxMix+entry+1)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// chunk is one schedule slice: a relative share of the phase's iterations,
// optionally run against the quiet (hot-only) mix.
type chunk struct {
	share int
	quiet bool
}

// scheduleChunks expands a canonical schedule into its chunk sequence.
func scheduleChunks(sc *Schedule) []chunk {
	switch sc.Kind {
	case ScheduleBursty:
		// Each burst period = an active chunk and a quiet lull, split by
		// duty in 1/16 granularity so the shares stay exact integers.
		active := int(sc.Duty*16 + 0.5)
		if active < 1 {
			active = 1
		}
		if active > 15 {
			active = 15
		}
		out := make([]chunk, 0, 2*sc.Steps)
		for i := 0; i < sc.Steps; i++ {
			out = append(out, chunk{share: active}, chunk{share: 16 - active, quiet: true})
		}
		return out
	case ScheduleRamp:
		out := make([]chunk, sc.Steps)
		for i := range out {
			out[i] = chunk{share: i + 1}
		}
		return out
	case ScheduleDrain:
		out := make([]chunk, sc.Steps)
		for i := range out {
			out[i] = chunk{share: sc.Steps - i}
		}
		return out
	case ScheduleSpike:
		out := make([]chunk, sc.Steps)
		for i := range out {
			out[i] = chunk{share: 1}
		}
		out[sc.Steps/2].share = sc.Magnitude
		return out
	default: // steady
		return []chunk{{share: 1}}
	}
}

// scaledIters applies the suite scale to a phase's iteration count.
func scaledIters(iters int, scale float64) int {
	n := int(float64(iters) * scale)
	if n < 1 {
		n = 1
	}
	return n
}

// splitIterations distributes total iterations across chunks proportionally
// to their shares with exact cumulative rounding: the chunk counts always
// sum to total, and the split is identical on every run.
func splitIterations(total int, chunks []chunk) []int {
	sum := 0
	for _, ch := range chunks {
		sum += ch.share
	}
	out := make([]int, len(chunks))
	acc, assigned := 0, 0
	for i, ch := range chunks {
		acc += ch.share
		want := total * acc / sum
		out[i] = want - assigned
		assigned = want
	}
	return out
}
