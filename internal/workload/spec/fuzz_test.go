package spec

import (
	"bytes"
	"reflect"
	"testing"

	"leakbound/internal/workload"
)

// FuzzParseSpec throws arbitrary bytes at the spec parser. Three properties
// must hold for anything that parses:
//
//  1. canonicalization is a fixed point: Parse(s.Canonical()) reproduces s
//     exactly (struct and bytes);
//  2. validation never panics, whatever the input;
//  3. compilation is deterministic: two compilations of the same spec emit
//     the identical instruction prefix.
func FuzzParseSpec(f *testing.F) {
	f.Add(validSpec())
	f.Add([]byte(`{"version":1,"name":"tiny","seed":1,"phases":[
		{"body_instrs":64,"iterations":2,"mix":[{"kernel":"hot"}]}]}`))
	f.Add([]byte(`{"version":1,"name":"sched","seed":9,"phases":[
		{"body_instrs":128,"iterations":32,
		 "schedule":{"kind":"spike","steps":5,"magnitude":8},
		 "mix":[{"kernel":"chase","elems":64},{"kernel":"loop","bytes":4096,"store":true}]}]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":1,"name":"x","phases":[{"body_instrs":1,"iterations":1,"mix":[{"kernel":"hot","weight":0}]}]}`))
	f.Add([]byte(`not json`))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse(data)
		if err != nil {
			return
		}
		// Fixed point.
		canon := s.Canonical()
		s2, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form failed to reparse: %v\n%s", err, canon)
		}
		if !reflect.DeepEqual(s, s2) {
			t.Fatalf("canonical reparse differs:\n%+v\n%+v", s, s2)
		}
		if !bytes.Equal(canon, s2.Canonical()) {
			t.Fatal("canonical encoding is not a fixed point")
		}
		if s.Digest() != s2.Digest() {
			t.Fatal("digest unstable across canonical round trip")
		}
		// Deterministic compilation. The tiny scale and the emission cap
		// keep fuzz iterations fast even for maximal specs.
		w1, err := s.Compile(0.01)
		if err != nil {
			t.Fatalf("validated spec failed to compile: %v", err)
		}
		w2, err := s.Compile(0.01)
		if err != nil {
			t.Fatalf("second compile of the same spec failed: %v", err)
		}
		const limit = 4096
		a, b := collect(w1, limit), collect(w2, limit)
		if !reflect.DeepEqual(a, b) {
			t.Fatal("two compilations emitted different streams")
		}
		if len(a) == 0 {
			t.Fatal("compiled workload emitted nothing")
		}
	})
}

// FuzzReadReplay exercises the recording decoder: arbitrary bytes must
// never panic, and whatever decodes must replay deterministically.
func FuzzReadReplay(f *testing.F) {
	s, err := Parse([]byte(`{"version":1,"name":"seed","seed":3,"phases":[
		{"body_instrs":64,"iterations":4,"mix":[{"kernel":"hot"},{"kernel":"loop","bytes":4096}]}]}`))
	if err != nil {
		f.Fatal(err)
	}
	w, err := s.Compile(1)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := Record(&buf, w); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("LKBTRC02"))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := ReadReplay(bytes.NewReader(data), "fuzz")
		if err != nil {
			return
		}
		if !reflect.DeepEqual(collect(r, 0), collect(r, 0)) {
			t.Fatal("replay is not restartable")
		}
	})
}

// A maximal-ish spec should still compile and emit within bounds when
// scaled down — the guard the fuzz emission cap relies on.
func TestCompileTinyScaleBounded(t *testing.T) {
	s, err := Parse(validSpec())
	if err != nil {
		t.Fatal(err)
	}
	w, err := s.Compile(0.01)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	w.Emit(func(workload.Instr) bool {
		n++
		return n < 1<<20
	})
	if n == 0 {
		t.Fatal("no instructions at tiny scale")
	}
}
