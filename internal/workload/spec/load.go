package spec

// Loading scenario sources from disk: a .json file is a workload spec, a
// .trc file is a recorded instruction trace. Both present the same
// Scenario shape to the suite, so `-specs dir` on the binaries evaluates a
// directory of either kind next to the builtin benchmarks.

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"leakbound/internal/workload"
)

// Source is a scenario loaded from disk: either a *Spec or a *Replay. It
// structurally matches the experiments package's Scenario interface.
type Source interface {
	// ScenarioName identifies the scenario among the suite's benchmarks.
	ScenarioName() string
	// ScenarioDigest identifies the scenario's content (for cache keys).
	ScenarioDigest() string
	// Workload materializes the scenario at the suite's scale.
	Workload(scale float64) (workload.Workload, error)
}

// LoadFile loads one scenario source by extension (.json spec, .trc
// recording).
func LoadFile(path string) (Source, error) {
	switch ext := filepath.Ext(path); ext {
	case ".json":
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		s, err := Parse(data)
		if err != nil {
			return nil, fmt.Errorf("spec: %s: %w", path, err)
		}
		return s, nil
	case ".trc":
		return ReplayFile(path)
	default:
		return nil, fmt.Errorf("spec: %s: unsupported extension %q (want .json or .trc)", path, ext)
	}
}

// LoadDir loads every .json and .trc file directly under dir, sorted by
// file name so registration order is stable. Other files are ignored;
// duplicate scenario names and invalid sources are errors.
func LoadDir(dir string) ([]Source, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if ext := filepath.Ext(e.Name()); ext == ".json" || ext == ".trc" {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	out := make([]Source, 0, len(names))
	seen := make(map[string]string, len(names))
	for _, n := range names {
		src, err := LoadFile(filepath.Join(dir, n))
		if err != nil {
			return nil, err
		}
		name := src.ScenarioName()
		if prev, dup := seen[name]; dup {
			return nil, fmt.Errorf("spec: %s and %s both define scenario %q", prev, n, name)
		}
		seen[name] = n
		out = append(out, src)
	}
	return out, nil
}
