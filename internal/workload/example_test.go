package workload_test

import (
	"fmt"

	"leakbound/internal/workload"
)

// Composing a custom workload from access-pattern kernels: a tight loop
// over hot scalars and a streamed buffer.
func ExampleBuilder() {
	b := workload.NewBuilder("example")
	hot := b.Hot(4)
	stream := b.Sequential(1<<20, 64)
	w, err := b.Phase(workload.PhaseSpec{
		BodyInstrs: 90,
		Iterations: 100,
		Loads:      []workload.Pattern{hot, stream},
		Weights:    []int{3, 1},
	}).Build()
	if err != nil {
		panic(err)
	}
	total, memFrac := workload.Count(w)
	fmt.Printf("%s: %d instructions, %.0f%% memory ops\n", w.Name(), total, 100*memFrac)
	// Output:
	// example: 9000 instructions, 33% memory ops
}

// The six SPEC2000 stand-ins are fully deterministic generators.
func ExampleNew() {
	w, err := workload.New("gzip", 0.01)
	if err != nil {
		panic(err)
	}
	var first workload.Instr
	w.Emit(func(in workload.Instr) bool { first = in; return false })
	fmt.Printf("%s starts in the text segment: %v\n", w.Name(), first.PC >= 0x40_0000 && first.PC < 0x1000_0000)
	// Output:
	// gzip starts in the text segment: true
}
