package workload

import "math"

// rng is a SplitMix64 pseudo-random generator. We use our own tiny generator
// instead of math/rand so traces are bit-identical across Go releases — the
// calibration numbers in EXPERIMENTS.md depend on exact streams.
type rng struct{ state uint64 }

// newRNG seeds the generator; distinct seeds give independent streams.
func newRNG(seed uint64) *rng { return &rng{state: seed} }

// next returns the next 64 random bits.
func (r *rng) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// intn returns a value in [0, n). n must be positive.
func (r *rng) intn(n int) int {
	if n <= 0 {
		panic("workload: rng.intn with non-positive n")
	}
	return int(r.next() % uint64(n))
}

// float returns a value in [0, 1).
func (r *rng) float() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// geometric returns a sample from a discretized exponential distribution
// with the given mean (>= 1), clamped to [1, 64*mean]; used for burst and
// phase lengths.
func (r *rng) geometric(mean float64) int {
	if mean < 1 {
		mean = 1
	}
	u := r.float()
	if u >= 1 {
		u = 0.999999999
	}
	x := 1 + int(-mean*math.Log(1-u))
	if hi := int(64 * mean); x > hi {
		x = hi
	}
	return x
}
