package workload

// Builder: a public, composable way to construct custom workloads from the
// same kernels the SPEC2000 stand-ins use. A downstream user studying their
// own application's leakage potential describes it as phases of loop nests
// over access patterns — sequential streams, strided sweeps, pointer
// chases, hot scalars — and gets a deterministic Workload that plugs into
// the simulator and the whole experiment pipeline.

import (
	"errors"
	"fmt"
)

// Pattern is a data access pattern a phase can reference.
type Pattern interface {
	// next returns the next address of the pattern.
	next() uint64
}

// patternFunc adapts a closure.
type patternFunc func() uint64

func (f patternFunc) next() uint64 { return f() }

// Builder accumulates phases and produces a Workload.
type Builder struct {
	name   string
	code   *codeLayout
	region int
	phases []builderPhase
	err    error
}

// builderPhase is one (loop body x iterations) unit.
type builderPhase struct {
	body   routine
	iters  int
	every  int
	refs   []refSpec
	hotIdx int
}

// refSpec is one reference slot in a phase's rotation.
type refSpec struct {
	pattern Pattern
	store   bool
	weight  int
}

// NewBuilder starts a workload named name. Code regions are carved from
// the standard text base; data regions from the standard data segment.
func NewBuilder(name string) *Builder {
	if name == "" {
		name = "custom"
	}
	return &Builder{
		name: name,
		code: newCodeLayout(textBase),
	}
}

// dataRegionFor hands out non-overlapping data regions.
func (b *Builder) nextRegion() uint64 {
	r := dataRegion(16 + b.region) // past the built-in benchmarks' regions
	b.region++
	return r
}

// Sequential returns a pattern streaming through size bytes with the given
// stride, wrapping at the end.
func (b *Builder) Sequential(size, stride uint64) Pattern {
	if b.err != nil {
		return patternFunc(func() uint64 { return 0 })
	}
	if size == 0 || stride == 0 {
		b.err = errors.New("workload: sequential pattern needs size and stride")
		return patternFunc(func() uint64 { return 0 })
	}
	c := newSeqCursor(b.nextRegion(), size, stride)
	return patternFunc(c.next)
}

// Strided returns a blocked multi-line-stride pattern (the CFD shape that
// only stride prefetching predicts).
func (b *Builder) Strided(regionSize, blockSize, stride uint64, passes int) Pattern {
	if b.err != nil {
		return patternFunc(func() uint64 { return 0 })
	}
	if regionSize == 0 || blockSize == 0 || blockSize > regionSize || stride == 0 || passes <= 0 {
		b.err = errors.New("workload: bad strided pattern geometry")
		return patternFunc(func() uint64 { return 0 })
	}
	w := newStrideWalker(b.nextRegion(), regionSize, blockSize, stride, passes)
	return patternFunc(w.next)
}

// Chase returns a pointer-chasing pattern over elems records of elemBytes
// (a full-cycle pseudo-random permutation — defeats all prefetching).
func (b *Builder) Chase(elems int, elemBytes uint64, seed uint64) Pattern {
	if b.err != nil {
		return patternFunc(func() uint64 { return 0 })
	}
	if elems <= 0 || elemBytes == 0 {
		b.err = errors.New("workload: bad chase pattern geometry")
		return patternFunc(func() uint64 { return 0 })
	}
	t := newChaseTable(b.nextRegion(), elems, elemBytes, seed)
	return patternFunc(t.next)
}

// Hot returns a hot-scalar pattern: bursts of loads/stores to a small set
// of lines (stack, accumulators).
func (b *Builder) Hot(lines int) Pattern {
	if b.err != nil {
		return patternFunc(func() uint64 { return 0 })
	}
	if lines <= 0 {
		b.err = errors.New("workload: hot pattern needs lines")
		return patternFunc(func() uint64 { return 0 })
	}
	h := newHotCursor(b.nextRegion(), lines)
	return patternFunc(func() uint64 { return h.next().addr })
}

// SkipCode leaves a gap in the text segment before the next phase's body —
// cold code (error paths, unexercised features) that occupies I-cache
// address space without ever being fetched. Real programs are mostly cold
// code; this is how a custom workload models that footprint.
func (b *Builder) SkipCode(bytes uint64) *Builder {
	if b.err == nil && bytes > 0 {
		b.code.skip(bytes)
	}
	return b
}

// PhaseSpec describes one phase of the workload.
type PhaseSpec struct {
	// BodyInstrs is the loop body length in instructions (its cache lines
	// are this phase's code footprint).
	BodyInstrs int
	// Iterations executes the body this many times.
	Iterations int
	// MemEvery places one memory reference every N instructions
	// (default 3: the ~1/3 load/store density of real code).
	MemEvery int
	// Loads and Stores give the access patterns the references rotate
	// through; Weights (optional, parallel to Loads then Stores) bias the
	// rotation. At least one pattern is required.
	Loads  []Pattern
	Stores []Pattern
	// Weights, if non-nil, must have len(Loads)+len(Stores) entries.
	Weights []int
	// ReuseBody re-executes the previous phase's code region instead of
	// carving new text: the same loop body re-entered later in the
	// program. Schedule chunks of one logical phase share their I-cache
	// footprint this way. BodyInstrs is ignored when set.
	ReuseBody bool
}

// Phase appends a phase; call Build to finalize.
func (b *Builder) Phase(spec PhaseSpec) *Builder {
	if b.err != nil {
		return b
	}
	if spec.ReuseBody && len(b.phases) == 0 {
		b.err = errors.New("workload: ReuseBody with no previous phase")
		return b
	}
	if (!spec.ReuseBody && spec.BodyInstrs <= 0) || spec.Iterations <= 0 {
		b.err = fmt.Errorf("workload: phase needs positive body (%d) and iterations (%d)",
			spec.BodyInstrs, spec.Iterations)
		return b
	}
	if len(spec.Loads)+len(spec.Stores) == 0 {
		b.err = errors.New("workload: phase needs at least one access pattern")
		return b
	}
	if spec.Weights != nil && len(spec.Weights) != len(spec.Loads)+len(spec.Stores) {
		b.err = fmt.Errorf("workload: %d weights for %d patterns",
			len(spec.Weights), len(spec.Loads)+len(spec.Stores))
		return b
	}
	every := spec.MemEvery
	if every <= 0 {
		every = 3
	}
	var refs []refSpec
	idx := 0
	for _, p := range spec.Loads {
		w := 1
		if spec.Weights != nil {
			w = spec.Weights[idx]
		}
		if w <= 0 {
			b.err = fmt.Errorf("workload: non-positive weight at %d", idx)
			return b
		}
		refs = append(refs, refSpec{pattern: p, weight: w})
		idx++
	}
	for _, p := range spec.Stores {
		w := 1
		if spec.Weights != nil {
			w = spec.Weights[idx]
		}
		if w <= 0 {
			b.err = fmt.Errorf("workload: non-positive weight at %d", idx)
			return b
		}
		refs = append(refs, refSpec{pattern: p, store: true, weight: w})
		idx++
	}
	var body routine
	if spec.ReuseBody {
		body = b.phases[len(b.phases)-1].body
	} else {
		body = b.code.routine(spec.BodyInstrs)
	}
	b.phases = append(b.phases, builderPhase{
		body:  body,
		iters: spec.Iterations,
		every: every,
		refs:  refs,
	})
	return b
}

// Build finalizes the workload; it errors if any prior step failed.
func (b *Builder) Build() (Workload, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.phases) == 0 {
		return nil, errors.New("workload: no phases")
	}
	return &builtWorkload{name: b.name, phases: b.phases}, nil
}

// builtWorkload replays the composed phases.
type builtWorkload struct {
	name   string
	phases []builderPhase
}

func (w *builtWorkload) Name() string { return w.name }

func (w *builtWorkload) Description() string {
	return fmt.Sprintf("custom workload (%d phases)", len(w.phases))
}

func (w *builtWorkload) Emit(yield func(Instr) bool) {
	e := &emitter{yield: yield}
	for pi := range w.phases {
		ph := &w.phases[pi]
		// Weighted rotation over the phase's patterns; deterministic.
		total := 0
		for _, r := range ph.refs {
			total += r.weight
		}
		pick := func(k int) refSpec {
			slot := k % total
			for _, r := range ph.refs {
				if slot < r.weight {
					return r
				}
				slot -= r.weight
			}
			return ph.refs[len(ph.refs)-1]
		}
		for it := 0; it < ph.iters && !e.stopped; it++ {
			ph.body.execRefs(e, ph.every, func(k int) access {
				r := pick(k)
				if r.store {
					return st(r.pattern.next())
				}
				return ld(r.pattern.next())
			})
		}
	}
}
