// Package workload provides deterministic synthetic stand-ins for the six
// SPEC2000 benchmarks the paper simulates (ammp, applu, gcc, gzip, mesa,
// vortex).
//
// The original study ran Alpha AXP binaries on SimpleScalar; those binaries
// and that toolchain are unavailable here, so each benchmark is replaced by
// a generator that reproduces the program's published locality character:
// code footprint, hot-loop structure, data working-set size and access
// pattern (sequential, strided, pointer-chasing, or irregular). The limit
// study consumes only the distribution of per-frame cache access intervals,
// so matching those distributions preserves the behaviour the paper
// measures. See DESIGN.md §4 for the substitution rationale and
// EXPERIMENTS.md for paper-vs-measured numbers.
//
// All generators are fully deterministic: the same name and scale always
// produce the identical instruction stream.
package workload

import (
	"errors"
	"fmt"
	"sort"
)

// ErrUnknownBenchmark is wrapped by New and Validate when the requested
// name is not one of the builtin six; callers match it with errors.Is.
var ErrUnknownBenchmark = errors.New("unknown benchmark")

// InstrKind classifies an emitted instruction.
type InstrKind uint8

const (
	// Op is a non-memory instruction (ALU, branch, ...).
	Op InstrKind = iota
	// Load reads memory at Addr.
	Load
	// Store writes memory at Addr.
	Store
)

// String implements fmt.Stringer.
func (k InstrKind) String() string {
	switch k {
	case Op:
		return "op"
	case Load:
		return "load"
	case Store:
		return "store"
	default:
		return fmt.Sprintf("InstrKind(%d)", uint8(k))
	}
}

// Instr is one dynamic instruction: its static address (PC) and, for memory
// operations, the effective byte address.
type Instr struct {
	PC   uint64
	Addr uint64 // valid for Load/Store
	Kind InstrKind
}

// Workload produces a deterministic instruction stream. Emit pushes
// instructions to yield until the stream ends or yield returns false.
type Workload interface {
	// Name is the benchmark identifier (e.g. "gzip").
	Name() string
	// Description summarizes what program behaviour the generator models.
	Description() string
	// Emit generates the instruction stream. It stops early if yield
	// returns false. Emit is restartable: each call replays the identical
	// stream from the start.
	Emit(yield func(Instr) bool)
}

// Benchmarks in the paper's suite, in the order of Figure 8.
var benchmarkNames = []string{"ammp", "applu", "gcc", "gzip", "mesa", "vortex"}

// Names returns the benchmark names in the paper's presentation order.
func Names() []string {
	out := make([]string, len(benchmarkNames))
	copy(out, benchmarkNames)
	return out
}

// New constructs the named benchmark at the given scale. Scale stretches
// dynamic instruction counts: 1.0 is the default study length (roughly 8M
// instructions), smaller values shrink runs proportionally for tests.
func New(name string, scale float64) (Workload, error) {
	if scale <= 0 {
		return nil, fmt.Errorf("workload: non-positive scale %g", scale)
	}
	switch name {
	case "ammp":
		return newAmmp(scale), nil
	case "applu":
		return newApplu(scale), nil
	case "gcc":
		return newGcc(scale), nil
	case "gzip":
		return newGzip(scale), nil
	case "mesa":
		return newMesa(scale), nil
	case "vortex":
		return newVortex(scale), nil
	default:
		return nil, fmt.Errorf("workload: %w %q (known: %v)", ErrUnknownBenchmark, name, Names())
	}
}

// MustNew is New that panics on error; for fixed experiment tables.
func MustNew(name string, scale float64) Workload {
	w, err := New(name, scale)
	if err != nil {
		panic(err)
	}
	return w
}

// All returns every benchmark at the given scale, in presentation order.
func All(scale float64) ([]Workload, error) {
	out := make([]Workload, 0, len(benchmarkNames))
	for _, n := range benchmarkNames {
		w, err := New(n, scale)
		if err != nil {
			return nil, err
		}
		out = append(out, w)
	}
	return out, nil
}

// Count runs the workload to completion and returns the number of
// instructions and the load/store fraction; used by tests and calibration.
func Count(w Workload) (total uint64, memFrac float64) {
	var mem uint64
	w.Emit(func(in Instr) bool {
		total++
		if in.Kind != Op {
			mem++
		}
		return true
	})
	if total > 0 {
		memFrac = float64(mem) / float64(total)
	}
	return total, memFrac
}

// Footprint runs the workload and returns the distinct 64-byte code and data
// line counts; used to sanity-check generator working sets.
func Footprint(w Workload) (codeLines, dataLines int) {
	code := make(map[uint64]struct{})
	data := make(map[uint64]struct{})
	w.Emit(func(in Instr) bool {
		code[in.PC>>6] = struct{}{}
		if in.Kind != Op {
			data[in.Addr>>6] = struct{}{}
		}
		return true
	})
	return len(code), len(data)
}

// Validate checks that name is a known benchmark.
func Validate(name string) error {
	i := sort.SearchStrings(benchmarkNames, name)
	if i < len(benchmarkNames) && benchmarkNames[i] == name {
		return nil
	}
	return fmt.Errorf("workload: %w %q", ErrUnknownBenchmark, name)
}
