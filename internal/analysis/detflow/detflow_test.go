package detflow_test

import (
	"testing"

	"leakbound/internal/analysis/analysistest"
	"leakbound/internal/analysis/detflow"
)

func TestDetflow(t *testing.T) {
	analysistest.Run(t, "testdata", detflow.Analyzer,
		"example.com/internal/leakage",
		"example.com/store",
	)
}
