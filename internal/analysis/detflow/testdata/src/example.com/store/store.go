// Package store is not a result package, but its Digest method is a sink
// by name: digests must be reproducible wherever they are computed.
package store

import "example.com/util"

// Store owns a content digest.
type Store struct {
	entries []string
}

// Digest is a sink by name.
func (s *Store) Digest() int64 {
	return util.Wrap() // want `call chain reaches time.Now \(via util.Wrap → util.Stamp\)`
}

// List is neither in a result package nor a Digest: tainted calls here
// are not findings.
func (s *Store) List(m map[string]int) []string {
	return util.Collect(m)
}
