// Package telemetry mirrors the real observability layer: it reads the
// clock by design and is a taint barrier.
package telemetry

import "time"

// TimeIt reads the wall clock for an observational measurement.
func TimeIt() int64 { return time.Now().UnixNano() }
