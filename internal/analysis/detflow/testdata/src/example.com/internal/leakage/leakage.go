// Package leakage is a result-producing sink package: taint reaching any
// of its functions through a call chain is a finding at the call site.
package leakage

import (
	"time"

	"example.com/internal/telemetry"
	"example.com/util"
)

// Evaluate reaches time.Now two calls deep.
func Evaluate(n int) int64 {
	return int64(n) + util.Wrap() // want `call chain reaches time.Now \(via util.Wrap → util.Stamp\)`
}

// Keys reaches map-iteration-order dependence one call deep.
func Keys(m map[string]int) []string {
	return util.Collect(m) // want `call chain reaches map iteration order \(via util.Collect\)`
}

// KeysSorted calls the clean variant: no finding.
func KeysSorted(m map[string]int) []string {
	return util.CollectSorted(m)
}

// Reviewed calls a source that carries a determinism suppression: the
// human sign-off holds transitively.
func Reviewed() int64 {
	return util.Sanctioned()
}

// Observed calls into the telemetry barrier: observational clock reads do
// not taint results.
func Observed() int64 {
	return telemetry.TimeIt()
}

// Direct uses the clock in its own body — that is the intraprocedural
// determinism analyzer's finding, not detflow's, so nothing is reported
// here by this analyzer.
func Direct() time.Time {
	return time.Now()
}
