// Package util holds the nondeterminism sources the sink fixtures reach
// through call chains. No findings are reported here — taint is reported
// at the sink boundary.
package util

import (
	"sort"
	"time"
)

// Stamp is a direct clock source.
func Stamp() time.Time { return time.Now() }

// Wrap is one call away from the source, so sinks calling it are two
// calls deep.
func Wrap() int64 { return Stamp().UnixNano() }

// Sanctioned reads the clock under a reviewed determinism suppression:
// the site does not taint.
func Sanctioned() int64 {
	//lint:ignore determinism timing feeds a local log only, never results
	t := time.Now()
	return t.UnixNano()
}

// Collect appends in map iteration order without sorting.
func Collect(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// CollectSorted follows the collect-then-sort contract and stays clean.
func CollectSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
